// Terminal line charts for the experiment harness: every "figure" bench
// renders its series as ASCII so the curve shapes are inspectable without
// leaving the terminal (CSV files carry the exact numbers).
#pragma once

#include <string>
#include <vector>

namespace fedvr::bench {

struct Series {
  std::string label;
  std::vector<double> x;
  std::vector<double> y;
};

struct ChartOptions {
  std::size_t width = 72;   // plot columns
  std::size_t height = 18;  // plot rows
  std::string title;
  std::string y_label;
  std::string x_label;
  bool log_y = false;
  bool log_x = false;
};

/// Renders the series into a multi-line string. Each series is drawn with
/// its own marker character and listed in a legend. Non-finite values are
/// skipped.
[[nodiscard]] std::string render_chart(const std::vector<Series>& series,
                                       const ChartOptions& options);

}  // namespace fedvr::bench
