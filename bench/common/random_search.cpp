#include "common/random_search.h"

#include <cstdio>

#include "util/error.h"
#include "util/rng.h"

namespace fedvr::bench {

SearchResult random_search(
    std::shared_ptr<const nn::Model> model, const data::FederatedDataset& fed,
    const std::function<core::AlgorithmSpec(const core::HyperParams&)>&
        make_spec,
    const SearchSpace& space, std::size_t budget, std::size_t rounds,
    double smoothness_L, std::uint64_t seed) {
  FEDVR_CHECK(budget >= 1);
  FEDVR_CHECK(!space.taus.empty() && !space.betas.empty() &&
              !space.mus.empty() && !space.batches.empty());
  util::Rng rng = util::fork(seed, 0, 0, util::stream::kSearch);

  SearchResult best;
  best.best_accuracy = -1.0;
  for (std::size_t trial = 0; trial < budget; ++trial) {
    core::HyperParams hp;
    hp.tau = space.taus[rng.below(space.taus.size())];
    hp.beta = space.betas[rng.below(space.betas.size())];
    hp.mu = space.mus[rng.below(space.mus.size())];
    hp.batch_size = space.batches[rng.below(space.batches.size())];
    hp.smoothness_L = smoothness_L;
    const auto spec = make_spec(hp);

    fl::TrainerOptions run_cfg;
    run_cfg.rounds = rounds;
    run_cfg.seed = seed;  // fixed data/init seed: only hyperparams vary
    const auto trace = core::run_federated(model, fed, spec, run_cfg);
    const auto [acc, round] = trace.best_accuracy();
    std::printf("  trial %2zu: tau=%-3zu beta=%-4.1f mu=%-5.2f B=%-3zu -> "
                "acc %.2f%% @ round %zu\n",
                trial + 1, hp.tau, hp.beta, hp.mu, hp.batch_size, 100.0 * acc,
                round);
    if (acc > best.best_accuracy) {
      best.hp = hp;
      best.spec = spec;
      best.best_accuracy = acc;
      best.best_round = round;
    }
  }
  return best;
}

}  // namespace fedvr::bench
