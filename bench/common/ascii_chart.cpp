#include "common/ascii_chart.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>

#include "util/error.h"

namespace fedvr::bench {

namespace {
constexpr char kMarkers[] = {'*', 'o', '+', 'x', '#', '@', '%', '&'};

struct Range {
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  void absorb(double v) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  [[nodiscard]] bool valid() const { return lo <= hi; }
  [[nodiscard]] double span() const { return hi > lo ? hi - lo : 1.0; }
};
}  // namespace

std::string render_chart(const std::vector<Series>& series,
                         const ChartOptions& options) {
  FEDVR_CHECK_MSG(!series.empty(), "chart needs at least one series");
  FEDVR_CHECK(options.width >= 16 && options.height >= 4);

  auto y_of = [&](double y) {
    return options.log_y ? std::log10(std::max(y, 1e-300)) : y;
  };
  auto x_of = [&](double x) {
    return options.log_x ? std::log10(std::max(x, 1e-300)) : x;
  };

  Range xr, yr;
  for (const auto& s : series) {
    FEDVR_CHECK_MSG(s.x.size() == s.y.size(),
                    "series '" << s.label << "' has mismatched x/y sizes");
    for (std::size_t i = 0; i < s.x.size(); ++i) {
      if (!std::isfinite(s.x[i]) || !std::isfinite(s.y[i])) continue;
      xr.absorb(x_of(s.x[i]));
      yr.absorb(y_of(s.y[i]));
    }
  }
  FEDVR_CHECK_MSG(xr.valid() && yr.valid(),
                  "chart has no finite data points");

  // Grid of (height x width) cells, filled bottom-up.
  std::vector<std::string> grid(options.height,
                                std::string(options.width, ' '));
  for (std::size_t si = 0; si < series.size(); ++si) {
    const char marker = kMarkers[si % (sizeof kMarkers)];
    const auto& s = series[si];
    for (std::size_t i = 0; i < s.x.size(); ++i) {
      if (!std::isfinite(s.x[i]) || !std::isfinite(s.y[i])) continue;
      const double tx = (x_of(s.x[i]) - xr.lo) / xr.span();
      const double ty = (y_of(s.y[i]) - yr.lo) / yr.span();
      const auto col = static_cast<std::size_t>(std::llround(
          tx * static_cast<double>(options.width - 1)));
      const auto row = static_cast<std::size_t>(std::llround(
          (1.0 - ty) * static_cast<double>(options.height - 1)));
      grid[row][col] = marker;
    }
  }

  std::ostringstream out;
  if (!options.title.empty()) out << "  " << options.title << "\n";
  char buf[64];
  for (std::size_t row = 0; row < options.height; ++row) {
    // y-axis tick on the first, middle, and last rows.
    double tick = yr.hi - (yr.span() * static_cast<double>(row)) /
                              static_cast<double>(options.height - 1);
    if (options.log_y) tick = std::pow(10.0, tick);
    if (row == 0 || row == options.height - 1 ||
        row == options.height / 2) {
      std::snprintf(buf, sizeof buf, "%10.4g |", tick);
    } else {
      std::snprintf(buf, sizeof buf, "%10s |", "");
    }
    out << buf << grid[row] << "\n";
  }
  out << std::string(11, ' ') << '+' << std::string(options.width, '-')
      << "\n";
  const double x_lo_disp = options.log_x ? std::pow(10.0, xr.lo) : xr.lo;
  const double x_hi_disp = options.log_x ? std::pow(10.0, xr.hi) : xr.hi;
  std::snprintf(buf, sizeof buf, "%10s  %-10.4g", "", x_lo_disp);
  out << buf;
  const std::string xhi = [&] {
    char b2[32];
    std::snprintf(b2, sizeof b2, "%.4g", x_hi_disp);
    return std::string(b2);
  }();
  const std::size_t pad =
      options.width > xhi.size() + 10 ? options.width - xhi.size() - 10 : 1;
  out << std::string(pad, ' ') << xhi << "\n";
  if (!options.x_label.empty() || !options.y_label.empty() ||
      options.log_x || options.log_y) {
    out << "            x: " << options.x_label
        << (options.y_label.empty() ? "" : ",  y: " + options.y_label)
        << (options.log_y ? " (log-y)" : "")
        << (options.log_x ? " (log-x)" : "") << "\n";
  }
  out << "  legend:";
  for (std::size_t si = 0; si < series.size(); ++si) {
    out << "  [" << kMarkers[si % (sizeof kMarkers)] << "] "
        << series[si].label;
  }
  out << "\n";
  return out.str();
}

}  // namespace fedvr::bench
