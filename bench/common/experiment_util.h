// Shared setup for the experiment harness binaries (one per paper
// table/figure).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/ascii_chart.h"
#include "core/fedproxvr.h"
#include "util/csv.h"
#include "data/image_datasets.h"
#include "data/synthetic.h"
#include "nn/models.h"

namespace fedvr::bench {

/// Pools all device training shards (for smoothness estimation).
[[nodiscard]] data::Dataset pool_train(const data::FederatedDataset& fed);

/// Estimates L on the pooled training data at a fresh initialization.
[[nodiscard]] double estimate_task_smoothness(const nn::Model& model,
                                              const data::FederatedDataset& fed,
                                              std::uint64_t seed);

/// Loss and accuracy series from traces, ready for render_chart.
[[nodiscard]] std::vector<Series> loss_series(
    const std::vector<fl::TrainingTrace>& traces);
[[nodiscard]] std::vector<Series> accuracy_series(
    const std::vector<fl::TrainingTrace>& traces);

/// Writes every trace as CSV under results/<prefix>_<algorithm>.csv and
/// logs the paths.
void write_traces(const std::vector<fl::TrainingTrace>& traces,
                  const std::string& prefix);

/// Prints a paper-style summary row per trace:
///   algorithm | final loss | best accuracy | round of best accuracy.
void print_summary_table(const std::vector<fl::TrainingTrace>& traces);

}  // namespace fedvr::bench
