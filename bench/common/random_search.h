// Random hyperparameter search used by the Table 1 / Table 2 benches.
//
// The paper: "we conduct a random search on carefully chosen ranges of
// hyperparameters to determine which combination ... would yield the
// highest test accuracy with respect to each algorithm."
#pragma once

#include <functional>

#include "core/fedproxvr.h"

namespace fedvr::bench {

struct SearchSpace {
  std::vector<std::size_t> taus = {5, 10, 20};
  std::vector<double> betas = {5.0, 7.0, 9.0, 10.0};
  std::vector<double> mus = {0.01, 0.1, 0.5};  // ignored for FedAvg
  std::vector<std::size_t> batches = {16, 32};
};

struct SearchResult {
  core::HyperParams hp;           // the winning combination
  core::AlgorithmSpec spec;       // spec built from it
  double best_accuracy = 0.0;     // pooled-test accuracy
  std::size_t best_round = 0;     // round achieving it (the tables' T)
};

/// Draws `budget` random combinations from `space`, trains each for
/// `rounds` rounds, and returns the combination with the highest test
/// accuracy. `make_spec` builds the algorithm from each combination
/// (e.g. core::fedavg or core::fedproxvr_svrg). Deterministic in `seed`.
[[nodiscard]] SearchResult random_search(
    std::shared_ptr<const nn::Model> model, const data::FederatedDataset& fed,
    const std::function<core::AlgorithmSpec(const core::HyperParams&)>&
        make_spec,
    const SearchSpace& space, std::size_t budget, std::size_t rounds,
    double smoothness_L, std::uint64_t seed);

}  // namespace fedvr::bench
