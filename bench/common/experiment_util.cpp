#include "common/experiment_util.h"

#include <algorithm>
#include <cstdio>

#include "theory/smoothness.h"
#include "util/csv.h"

namespace fedvr::bench {

data::Dataset pool_train(const data::FederatedDataset& fed) {
  data::Dataset pooled(fed.train.front().sample_shape(), 0,
                       fed.train.front().num_classes());
  for (const auto& d : fed.train) pooled.append(d);
  return pooled;
}

double estimate_task_smoothness(const nn::Model& model,
                                const data::FederatedDataset& fed,
                                std::uint64_t seed) {
  const data::Dataset pooled = pool_train(fed);
  util::Rng rng(seed);
  const auto w = model.initial_parameters(rng);
  return theory::estimate_smoothness(model, pooled, w, rng);
}

std::vector<Series> loss_series(
    const std::vector<fl::TrainingTrace>& traces) {
  std::vector<Series> out;
  out.reserve(traces.size());
  for (const auto& t : traces) {
    Series s;
    s.label = t.algorithm;
    for (const auto& r : t.rounds) {
      s.x.push_back(static_cast<double>(r.round));
      s.y.push_back(r.train_loss);
    }
    out.push_back(std::move(s));
  }
  return out;
}

std::vector<Series> accuracy_series(
    const std::vector<fl::TrainingTrace>& traces) {
  std::vector<Series> out;
  out.reserve(traces.size());
  for (const auto& t : traces) {
    Series s;
    s.label = t.algorithm;
    for (const auto& r : t.rounds) {
      s.x.push_back(static_cast<double>(r.round));
      s.y.push_back(r.test_accuracy);
    }
    out.push_back(std::move(s));
  }
  return out;
}

namespace {
std::string sanitize(std::string name) {
  for (char& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return name;
}
}  // namespace

void write_traces(const std::vector<fl::TrainingTrace>& traces,
                  const std::string& prefix) {
  const std::string dir = util::ensure_results_dir();
  for (const auto& t : traces) {
    const std::string path =
        dir + "/" + prefix + "_" + sanitize(t.algorithm) + ".csv";
    t.write_csv(path);
    std::printf("wrote %s\n", path.c_str());
  }
}

void print_summary_table(const std::vector<fl::TrainingTrace>& traces) {
  std::printf("%-20s  %12s  %12s  %10s\n", "algorithm", "final_loss",
              "best_acc", "at_round");
  for (const auto& t : traces) {
    const auto [acc, round] = t.best_accuracy();
    std::printf("%-20s  %12.5f  %11.2f%%  %10zu\n", t.algorithm.c_str(),
                t.back().train_loss, 100.0 * acc, round);
  }
}

}  // namespace fedvr::bench
