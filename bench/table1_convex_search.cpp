// Table 1: best-hyperparameter test accuracies on the convex task
// (multinomial logistic regression, Fashion-MNIST federation).
//
// Paper's row format: Algorithm | tau | beta | mu | B | T | Accuracy, with
// FedAvg 84.02%, FedProxVR(SVRG) 84.12%, FedProxVR(SARAH) 84.21%. Absolute
// accuracies here depend on the (procedural) dataset; the reproduced shape
// is the ordering: both FedProxVR variants meet or beat FedAvg.
#include <cstdio>
#include <string>

#include "common/experiment_util.h"
#include "common/random_search.h"
#include "util/csv.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  using namespace fedvr;

  std::size_t devices = 25, rounds = 20, budget = 6, pool = 2500, side = 28;
  std::string data_dir = "data";
  std::uint64_t seed = 1;
  util::Flags flags("table1_convex_search",
                    "Table 1: random hyperparameter search, convex task");
  flags.add("devices", &devices, "number of devices (paper: 100)");
  flags.add("rounds", &rounds, "rounds per trial (paper: ~1000)");
  flags.add("budget", &budget, "random-search trials per algorithm");
  flags.add("pool", &pool, "procedural pool size");
  flags.add("side", &side, "image side for procedural fallback");
  flags.add("data_dir", &data_dir, "directory with real IDX files");
  flags.add("seed", &seed, "master seed");
  flags.parse(argc, argv);

  data::ImageDatasetConfig cfg;
  cfg.family = data::ImageFamily::kFashion;
  cfg.data_dir = data_dir;
  cfg.side = side;
  cfg.pool_size = pool;
  cfg.shard.num_devices = devices;
  cfg.shard.min_samples = 37;
  cfg.shard.max_samples = 1350;
  cfg.shard.seed = seed;
  cfg.seed = seed;
  const auto dataset = data::make_federated_images(cfg);
  const auto model = nn::make_logistic_regression(
      dataset.fed.train.front().feature_dim(), 10);
  const double L = bench::estimate_task_smoothness(*model, dataset.fed, seed);
  std::printf("convex task, %zu devices, L = %.3f, %zu trials/algorithm\n\n",
              devices, L, budget);

  bench::SearchSpace space;  // defaults mirror the paper's ranges

  struct Row {
    std::string algorithm;
    bench::SearchResult result;
  };
  std::vector<Row> rows;
  const std::pair<std::string,
                  core::AlgorithmSpec (*)(const core::HyperParams&)>
      algorithms[] = {{"FedAvg", core::fedavg},
                      {"FedProxVR (SVRG)", core::fedproxvr_svrg},
                      {"FedProxVR (SARAH)", core::fedproxvr_sarah}};
  for (const auto& [name, factory] : algorithms) {
    std::printf("searching %s:\n", name.c_str());
    auto result = bench::random_search(model, dataset.fed, factory, space,
                                       budget, rounds, L, seed);
    rows.push_back({name, std::move(result)});
    std::printf("\n");
  }

  const std::string dir = util::ensure_results_dir();
  util::CsvWriter csv(dir + "/table1_convex.csv",
                      {"algorithm", "tau", "beta", "mu", "B", "T",
                       "accuracy"});
  std::printf("Table 1: best hyperparameters per algorithm (convex task)\n");
  std::printf("%-20s %5s %6s %6s %4s %5s %10s\n", "Algorithm", "tau", "beta",
              "mu", "B", "T", "Accuracy");
  for (const auto& row : rows) {
    const auto& hp = row.result.hp;
    const double mu = row.algorithm == "FedAvg" ? 0.0 : hp.mu;
    std::printf("%-20s %5zu %6.1f %6.2f %4zu %5zu %9.2f%%\n",
                row.algorithm.c_str(), hp.tau, hp.beta, mu, hp.batch_size,
                row.result.best_round, 100.0 * row.result.best_accuracy);
    csv.builder()
        .add(row.algorithm)
        .add(hp.tau)
        .add(hp.beta)
        .add(mu)
        .add(hp.batch_size)
        .add(row.result.best_round)
        .add(row.result.best_accuracy)
        .commit();
  }
  std::printf("\n(paper, real Fashion-MNIST, T~1000: FedAvg 84.02%%, "
              "SVRG 84.12%%, SARAH 84.21%%)\n");
  std::printf("wrote %s/table1_convex.csv\n", dir.c_str());
  return 0;
}
