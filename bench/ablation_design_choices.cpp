// Ablation: the two design choices DESIGN.md calls out.
//
//  (1) Iterate selection (Algorithm 1 line 10): the analysis returns a
//      uniformly random inner iterate; practical implementations (§5)
//      return the last. Compares both.
//  (2) Client participation: the paper assumes full participation; FedAvg
//      deployments sample a subset per round. Sweeps devices-per-round.
#include <cstdio>
#include <vector>

#include "common/experiment_util.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  using namespace fedvr;

  std::size_t devices = 20, rounds = 25, tau = 20, batch = 4;
  double beta = 5.0, mu = 0.1;
  std::uint64_t seed = 1;
  util::Flags flags("ablation_design_choices",
                    "iterate-selection rule and client sampling ablations");
  flags.add("devices", &devices, "number of devices");
  flags.add("rounds", &rounds, "global rounds");
  flags.add("tau", &tau, "local iterations");
  flags.add("batch", &batch, "mini-batch size");
  flags.add("beta", &beta, "step parameter");
  flags.add("mu", &mu, "proximal penalty");
  flags.add("seed", &seed, "master seed");
  flags.parse(argc, argv);

  data::SyntheticConfig cfg;
  cfg.num_devices = devices;
  cfg.min_samples = 40;
  cfg.max_samples = 300;
  cfg.seed = seed;
  const auto fed = data::make_synthetic(cfg);
  const auto model =
      nn::make_logistic_regression(cfg.dim, cfg.num_classes);
  const double L = bench::estimate_task_smoothness(*model, fed, seed);
  std::printf("Synthetic, %zu devices, L = %.3f\n\n", devices, L);

  core::HyperParams hp;
  hp.beta = beta;
  hp.smoothness_L = L;
  hp.tau = tau;
  hp.mu = mu;
  hp.batch_size = batch;

  // --- (1) iterate selection ---
  std::printf("(1) iterate selection (FedProxVR-SARAH)\n");
  std::printf("%-16s  %12s  %12s\n", "selection", "final_loss", "best_acc");
  std::vector<fl::TrainingTrace> selection_traces;
  for (const auto selection : {opt::IterateSelection::kLast,
                               opt::IterateSelection::kUniformRandom}) {
    auto hp_sel = hp;
    hp_sel.selection = selection;
    auto spec = core::fedproxvr_sarah(hp_sel);
    spec.name = selection == opt::IterateSelection::kLast
                    ? "last iterate"
                    : "uniform random";
    fl::TrainerOptions run_cfg;
    run_cfg.rounds = rounds;
    run_cfg.seed = seed;
    auto trace = core::run_federated(model, fed, spec, run_cfg);
    std::printf("%-16s  %12.5f  %11.2f%%\n", spec.name.c_str(),
                trace.back().train_loss,
                100.0 * trace.best_accuracy().first);
    selection_traces.push_back(std::move(trace));
  }

  // --- (2) client sampling ---
  std::printf("\n(2) devices per round (FedProxVR-SVRG)\n");
  std::printf("%-16s  %12s  %12s\n", "participants", "final_loss",
              "best_acc");
  for (std::size_t participants :
       {devices, devices / 2, std::max<std::size_t>(devices / 5, 1)}) {
    auto spec = core::fedproxvr_svrg(hp);
    fl::TrainerOptions run_cfg;
    run_cfg.rounds = rounds;
    run_cfg.seed = seed;
    if (participants < devices) run_cfg.devices_per_round = participants;
    const auto trace = core::run_federated(model, fed, spec, run_cfg);
    std::printf("%5zu / %-8zu  %12.5f  %11.2f%%\n", participants, devices,
                trace.back().train_loss,
                100.0 * trace.best_accuracy().first);
  }

  bench::write_traces(selection_traces, "ablation_selection");
  return 0;
}
