// Ablation: uplink sparsification vs accuracy and communication volume.
//
// The paper reduces communication by running more local iterations (large
// tau); compressing the uplink is the orthogonal lever (its ref. [13]).
// This bench runs FedProxVR(SVRG) with dense, top-k, and rand-k uplinks and
// reports final loss vs cumulative bytes — loss-per-byte is the figure of
// merit.
#include <cstdio>
#include <memory>
#include <vector>

#include "common/experiment_util.h"
#include "fl/compression.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  using namespace fedvr;

  std::size_t devices = 12, rounds = 25, tau = 30, batch = 4;
  double beta = 5.0, mu = 0.1;
  std::uint64_t seed = 1;
  util::Flags flags("ablation_compression",
                    "uplink sparsification: accuracy vs bytes");
  flags.add("devices", &devices, "number of devices");
  flags.add("rounds", &rounds, "global rounds");
  flags.add("tau", &tau, "local iterations");
  flags.add("batch", &batch, "mini-batch size");
  flags.add("beta", &beta, "step parameter");
  flags.add("mu", &mu, "proximal penalty");
  flags.add("seed", &seed, "master seed");
  flags.parse(argc, argv);

  data::SyntheticConfig cfg;
  cfg.num_devices = devices;
  cfg.min_samples = 40;
  cfg.max_samples = 200;
  cfg.seed = seed;
  const auto fed = data::make_synthetic(cfg);
  const auto model =
      nn::make_logistic_regression(cfg.dim, cfg.num_classes);
  const double L = bench::estimate_task_smoothness(*model, fed, seed);

  struct Variant {
    std::string name;
    std::shared_ptr<const fl::Compressor> compressor;  // null = dense
  };
  const std::vector<Variant> variants = {
      {"dense uplink", nullptr},
      {"top-k 20%", std::make_shared<fl::TopKCompressor>(0.2)},
      {"top-k 5%", std::make_shared<fl::TopKCompressor>(0.05)},
      {"rand-k 20%", std::make_shared<fl::RandKCompressor>(0.2)},
  };

  core::HyperParams hp;
  hp.beta = beta;
  hp.smoothness_L = L;
  hp.tau = tau;
  hp.mu = mu;
  hp.batch_size = batch;

  std::printf("%-14s  %12s  %12s  %14s\n", "uplink", "final_loss",
              "best_acc", "comm_megabytes");
  const std::string dir = util::ensure_results_dir();
  util::CsvWriter csv(dir + "/ablation_compression.csv",
                      {"uplink", "final_loss", "best_accuracy",
                       "comm_bytes"});
  std::vector<fl::TrainingTrace> traces;
  for (const auto& variant : variants) {
    auto spec = core::fedproxvr_svrg(hp);
    spec.name = variant.name;
    fl::TrainerOptions run_cfg;
    run_cfg.rounds = rounds;
    run_cfg.seed = seed;
    run_cfg.uplink_compressor = variant.compressor;
    auto trace = core::run_federated(model, fed, spec, run_cfg);
    std::printf("%-14s  %12.5f  %11.2f%%  %14.3f\n", variant.name.c_str(),
                trace.back().train_loss,
                100.0 * trace.best_accuracy().first,
                static_cast<double>(trace.back().comm_bytes) / 1e6);
    csv.builder()
        .add(variant.name)
        .add(trace.back().train_loss)
        .add(trace.best_accuracy().first)
        .add(trace.back().comm_bytes)
        .commit();
    traces.push_back(std::move(trace));
  }
  std::printf("\n%s\n",
              bench::render_chart(
                  bench::loss_series(traces),
                  {.title = "loss under uplink sparsification",
                   .y_label = "training loss",
                   .x_label = "global round",
                   .log_y = true})
                  .c_str());
  std::printf("wrote %s/ablation_compression.csv\n", dir.c_str());
  return 0;
}
