// Ablation: fixed vs diminishing step size.
//
// The paper fixes eta = 1/(beta L) and argues (footnote 1, §4.2) that "a
// fixed step size is more practical than [a] diminishing step size". This
// bench compares the two schedules at matched initial eta for FedProxVR
// and FedAvg: diminishing steps smooth the curve but slow progress, which
// is the trade-off behind the paper's choice.
#include <cstdio>
#include <vector>

#include "common/experiment_util.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  using namespace fedvr;

  std::size_t devices = 15, rounds = 30, tau = 40, batch = 1;
  double beta = 5.0, mu = 0.1, decay = 0.1;
  std::uint64_t seed = 1;
  util::Flags flags("ablation_step_schedule",
                    "fixed vs diminishing step size (paper §4.2 footnote)");
  flags.add("devices", &devices, "number of devices");
  flags.add("rounds", &rounds, "global rounds");
  flags.add("tau", &tau, "local iterations");
  flags.add("batch", &batch, "mini-batch size");
  flags.add("beta", &beta, "step parameter");
  flags.add("mu", &mu, "proximal penalty");
  flags.add("decay", &decay, "diminishing decay: eta_t = eta/(1+decay t)");
  flags.add("seed", &seed, "master seed");
  flags.parse(argc, argv);

  data::SyntheticConfig cfg;
  cfg.num_devices = devices;
  cfg.min_samples = 40;
  cfg.max_samples = 200;
  cfg.seed = seed;
  const auto fed = data::make_synthetic(cfg);
  const auto model =
      nn::make_logistic_regression(cfg.dim, cfg.num_classes);
  const double L = bench::estimate_task_smoothness(*model, fed, seed);
  std::printf("Synthetic, %zu devices, L = %.3f, decay = %g\n\n", devices, L,
              decay);

  std::vector<fl::TrainingTrace> traces;
  for (const auto schedule :
       {opt::StepSchedule::kConstant, opt::StepSchedule::kDiminishing}) {
    for (const bool variance_reduced : {true, false}) {
      core::HyperParams hp;
      hp.beta = beta;
      hp.smoothness_L = L;
      hp.tau = tau;
      hp.mu = mu;
      hp.batch_size = batch;
      auto spec =
          variance_reduced ? core::fedproxvr_sarah(hp) : core::fedavg(hp);
      spec.options.schedule = schedule;
      spec.options.schedule_decay = decay;
      spec.name += schedule == opt::StepSchedule::kConstant
                       ? " fixed-eta"
                       : " diminishing-eta";
      fl::TrainerOptions run_cfg;
      run_cfg.rounds = rounds;
      run_cfg.seed = seed;
      traces.push_back(core::run_federated(model, fed, spec, run_cfg));
    }
  }

  std::printf("%-32s  %12s  %12s\n", "configuration", "final_loss",
              "min_loss");
  for (const auto& t : traces) {
    std::printf("%-32s  %12.5f  %12.5f\n", t.algorithm.c_str(),
                t.back().train_loss, t.min_train_loss());
  }
  std::printf("\n%s\n",
              bench::render_chart(bench::loss_series(traces),
                                  {.title = "fixed vs diminishing step size",
                                   .y_label = "training loss",
                                   .x_label = "global round",
                                   .log_y = true})
                  .c_str());
  bench::write_traces(traces, "ablation_schedule");
  return 0;
}
