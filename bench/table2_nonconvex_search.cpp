// Table 2: best-hyperparameter test accuracies on the non-convex task (the
// two-layer CNN, MNIST federation).
//
// Paper's rows: FedAvg 93.52%, FedProxVR(SVRG) 94.06%, FedProxVR(SARAH)
// 93.75% with 10 devices on real MNIST. Defaults shrink the CNN for one
// core (see fig3); the reproduced shape is FedProxVR >= FedAvg.
#include <cstdio>
#include <string>

#include "common/experiment_util.h"
#include "common/random_search.h"
#include "util/csv.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  using namespace fedvr;

  std::size_t devices = 5, rounds = 10, budget = 8, pool = 700, side = 12,
              conv1 = 8, conv2 = 16;
  std::string data_dir = "data";
  std::uint64_t seed = 1;
  util::Flags flags("table2_nonconvex_search",
                    "Table 2: random hyperparameter search, CNN task");
  flags.add("devices", &devices, "number of devices (paper: 10)");
  flags.add("rounds", &rounds, "rounds per trial (paper: ~1000)");
  flags.add("budget", &budget, "random-search trials per algorithm");
  flags.add("pool", &pool, "procedural pool size");
  flags.add("side", &side, "image side (paper: 28)");
  flags.add("conv1", &conv1, "conv1 channels (paper: 32)");
  flags.add("conv2", &conv2, "conv2 channels (paper: 64)");
  flags.add("data_dir", &data_dir, "directory with real IDX files");
  flags.add("seed", &seed, "master seed");
  flags.parse(argc, argv);

  data::ImageDatasetConfig cfg;
  cfg.family = data::ImageFamily::kDigits;
  cfg.data_dir = data_dir;
  cfg.side = side;
  cfg.pool_size = pool;
  cfg.shard.num_devices = devices;
  cfg.shard.min_samples = 50;
  cfg.shard.max_samples = 300;
  cfg.shard.seed = seed;
  cfg.seed = seed;
  const auto dataset = data::make_federated_images(cfg);

  nn::CnnConfig cnn;
  cnn.side = side;
  cnn.conv1_channels = conv1;
  cnn.conv2_channels = conv2;
  const auto model = nn::make_two_layer_cnn(cnn);
  const double L = bench::estimate_task_smoothness(*model, dataset.fed, seed);
  std::printf("CNN task (%zu params), %zu devices, L = %.3f, %zu "
              "trials/algorithm\n\n",
              model->num_parameters(), devices, L, budget);

  bench::SearchSpace space;
  space.mus = {0.01, 0.1};        // the paper's best CNN mu is 0.01
  space.batches = {4, 16};        // small batches stress gradient variance
  space.taus = {10, 20, 30};
  space.betas = {4.0, 6.0, 9.0};

  struct Row {
    std::string algorithm;
    bench::SearchResult result;
  };
  std::vector<Row> rows;
  const std::pair<std::string,
                  core::AlgorithmSpec (*)(const core::HyperParams&)>
      algorithms[] = {{"FedAvg", core::fedavg},
                      {"FedProxVR (SVRG)", core::fedproxvr_svrg},
                      {"FedProxVR (SARAH)", core::fedproxvr_sarah}};
  for (const auto& [name, factory] : algorithms) {
    std::printf("searching %s:\n", name.c_str());
    auto result = bench::random_search(model, dataset.fed, factory, space,
                                       budget, rounds, L, seed);
    rows.push_back({name, std::move(result)});
    std::printf("\n");
  }

  const std::string dir = util::ensure_results_dir();
  util::CsvWriter csv(dir + "/table2_nonconvex.csv",
                      {"algorithm", "tau", "beta", "mu", "B", "T",
                       "accuracy"});
  std::printf("Table 2: best hyperparameters per algorithm (CNN task)\n");
  std::printf("%-20s %5s %6s %6s %4s %5s %10s\n", "Algorithm", "tau", "beta",
              "mu", "B", "T", "Accuracy");
  for (const auto& row : rows) {
    const auto& hp = row.result.hp;
    const double mu = row.algorithm == "FedAvg" ? 0.0 : hp.mu;
    std::printf("%-20s %5zu %6.1f %6.2f %4zu %5zu %9.2f%%\n",
                row.algorithm.c_str(), hp.tau, hp.beta, mu, hp.batch_size,
                row.result.best_round, 100.0 * row.result.best_accuracy);
    csv.builder()
        .add(row.algorithm)
        .add(hp.tau)
        .add(hp.beta)
        .add(mu)
        .add(hp.batch_size)
        .add(row.result.best_round)
        .add(row.result.best_accuracy)
        .commit();
  }
  std::printf("\n(paper, real MNIST, T~1000: FedAvg 93.52%%, SVRG 94.06%%, "
              "SARAH 93.75%%)\n");
  std::printf("wrote %s/table2_nonconvex.csv\n", dir.c_str());
  return 0;
}
