// Ablation: empirical validation of Theorem 1.
//
// Runs FedProxVR(SARAH) on the Synthetic task with every constant in
// Theorem 1 *measured from the run itself*:
//   L      — Hessian power iteration on pooled data,
//   sigma^2 — gradient-divergence probe (Assumption 1, eq. 5),
//   theta  — the worst measured local accuracy across devices/rounds
//            (solver diagnostics, eq. 11),
//   Delta  — F̄(w0) minus the best loss seen (stand-in for F̄(w*)).
// It then checks the claim
//   (1/T) sum_s ||grad F̄(w̄^(s))||^2  <=  Delta / (Theta T)     (eq. 17)
// for several horizons T, printing measured vs bound. mu is chosen large
// enough to make Theta positive given the measured heterogeneity.
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/experiment_util.h"
#include "theory/bounds.h"
#include "theory/heterogeneity.h"
#include "util/csv.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  using namespace fedvr;

  std::size_t devices = 10, rounds = 25, tau = 150, batch = 1;
  double beta = 8.0, lambda = 0.05;
  std::uint64_t seed = 1;
  util::Flags flags("ablation_theorem1_bound",
                    "empirical check of Theorem 1's convergence bound");
  flags.add("devices", &devices, "number of devices");
  flags.add("rounds", &rounds, "global rounds T");
  flags.add("tau", &tau, "local iterations (large tau -> small theta)");
  flags.add("batch", &batch, "mini-batch size");
  flags.add("beta", &beta, "step parameter");
  flags.add("lambda", &lambda,
            "assumed bounded-nonconvexity constant (convex task: small)");
  flags.add("seed", &seed, "master seed");
  flags.parse(argc, argv);

  data::SyntheticConfig cfg;
  cfg.num_devices = devices;
  cfg.alpha = 0.5;
  cfg.beta = 0.5;
  cfg.min_samples = 60;
  cfg.max_samples = 200;
  cfg.seed = seed;
  const auto fed = data::make_synthetic(cfg);
  const auto model =
      nn::make_logistic_regression(cfg.dim, cfg.num_classes);

  // Measure the problem constants.
  const double L = bench::estimate_task_smoothness(*model, fed, seed);
  util::Rng het_rng(seed + 1);
  const auto het = theory::estimate_heterogeneity(*model, fed, het_rng);
  std::printf("measured constants: L = %.3f, sigma_bar^2 = %.3f\n", L,
              het.sigma_bar_sq);

  // Pick mu from the theory: large enough that Theta > 0 even at the
  // theta ceiling theta < (2(1+sigma^2))^{-1/2}; scan upward.
  const theory::ProblemConstants pc{.L = L,
                                    .lambda = lambda,
                                    .sigma_bar_sq = het.sigma_bar_sq};
  double mu = 2.0 * L;
  while (theory::federated_factor(0.05, mu, pc) <= 0.0 && mu < 1e6 * L) {
    mu *= 1.5;
  }
  std::printf("chosen mu = %.3f (mu/L = %.1f)\n", mu, mu / L);

  // Run with diagnostics + gradient-norm evaluation.
  core::HyperParams hp;
  hp.beta = beta;
  hp.smoothness_L = L;
  hp.tau = tau;
  hp.mu = mu;
  hp.batch_size = batch;
  hp.diagnostics = true;
  fl::TrainerOptions run_cfg;
  run_cfg.rounds = rounds;
  run_cfg.seed = seed;
  run_cfg.eval_grad_norm = true;
  run_cfg.collect_theta = true;
  run_cfg.eval_initial = true;
  const auto trace = core::run_federated(model, fed,
                                         core::fedproxvr_sarah(hp), run_cfg);

  // Measured theta: worst round-mean across the run.
  double theta = 0.0;
  for (const auto& r : trace.rounds) {
    theta = std::max(theta, r.mean_local_theta);
  }
  const double theta_ceiling =
      1.0 / std::sqrt(2.0 * (1.0 + het.sigma_bar_sq));
  std::printf("measured theta = %.4f (Theorem-1 ceiling %.4f)\n", theta,
              theta_ceiling);
  if (theta >= theta_ceiling) {
    std::printf("theta exceeds the ceiling: Theorem 1 does not apply at "
                "these settings; raise tau.\n");
    return 0;
  }
  const double Theta = theory::federated_factor(theta, mu, pc);
  std::printf("federated factor Theta = %.6f\n\n", Theta);

  const double initial_loss = trace.rounds.front().train_loss;  // round 0
  const double best_loss = trace.min_train_loss();
  const double delta = initial_loss - best_loss;

  std::printf("%6s  %16s  %16s  %8s\n", "T", "mean ||grad||^2",
              "bound D/(Theta T)", "holds");
  const std::string dir = util::ensure_results_dir();
  util::CsvWriter csv(dir + "/ablation_theorem1.csv",
                      {"T", "mean_grad_norm_sq", "bound", "holds"});
  double running_sum = 0.0;
  std::size_t count = 0;
  bool all_hold = true;
  for (const auto& r : trace.rounds) {
    if (r.round == 0) continue;  // the sum starts at s = 1
    running_sum += r.grad_norm_sq;
    ++count;
    const double mean_gap = running_sum / static_cast<double>(count);
    const double bound =
        theory::global_rounds_needed(delta, Theta, 1.0) /
        static_cast<double>(count);  // Delta/(Theta T)
    const bool holds = mean_gap <= bound;
    all_hold = all_hold && holds;
    if (count % 5 == 0 || count == 1 ||
        r.round == trace.rounds.back().round) {
      std::printf("%6zu  %16.6f  %16.6f  %8s\n", count, mean_gap, bound,
                  holds ? "yes" : "NO");
    }
    csv.builder().add(count).add(mean_gap).add(bound)
        .add(holds ? "yes" : "no").commit();
  }
  std::printf("\nTheorem 1 bound %s across all horizons.\n",
              all_hold ? "holds" : "VIOLATED");
  std::printf("wrote %s/ablation_theorem1.csv\n", dir.c_str());
  return 0;
}
