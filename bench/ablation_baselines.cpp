// All five algorithms side by side on one heterogeneous task:
// FedAvg [20], FedProx [16], FedGD [31], FedProxVR(SVRG), FedProxVR(SARAH).
//
// The paper's §1-§2 positioning in one run: GD-based updates (FedGD) cost
// n gradients per inner step; the prox alone (FedProx) stabilizes but
// keeps SGD's noise floor; variance reduction (FedProxVR) improves on both
// at matched (beta, tau, B). Also reports cost columns: per-sample
// gradient evaluations and bytes moved, so the quality/cost trade-off is
// explicit.
#include <array>
#include <cstdio>

#include "common/experiment_util.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  using namespace fedvr;

  std::size_t devices = 15, rounds = 30, tau = 100, batch = 1;
  double beta = 4.0, mu = 0.5;
  std::uint64_t seed = 1;
  util::Flags flags("ablation_baselines",
                    "all five algorithms on one heterogeneous task");
  flags.add("devices", &devices, "number of devices");
  flags.add("rounds", &rounds, "global rounds");
  flags.add("tau", &tau, "local iterations");
  flags.add("batch", &batch, "mini-batch size");
  flags.add("beta", &beta, "step parameter");
  flags.add("mu", &mu, "proximal penalty (FedProx / FedProxVR)");
  flags.add("seed", &seed, "master seed");
  flags.parse(argc, argv);

  data::SyntheticConfig cfg;
  cfg.num_devices = devices;
  cfg.min_samples = 40;
  cfg.max_samples = 200;
  cfg.seed = seed;
  const auto fed = data::make_synthetic(cfg);
  const auto model =
      nn::make_logistic_regression(cfg.dim, cfg.num_classes);
  const double L = bench::estimate_task_smoothness(*model, fed, seed);
  std::printf("Synthetic, %zu devices, L = %.3f, tau = %zu, B = %zu\n\n",
              devices, L, tau, batch);

  core::HyperParams hp;
  hp.beta = beta;
  hp.smoothness_L = L;
  hp.tau = tau;
  hp.mu = mu;
  hp.batch_size = batch;
  const std::array specs = {core::fedavg(hp), core::fedprox(hp),
                            core::fedgd(hp), core::fedproxvr_svrg(hp),
                            core::fedproxvr_sarah(hp)};
  fl::TrainerOptions run_cfg;
  run_cfg.rounds = rounds;
  run_cfg.seed = seed;
  const auto traces = core::compare_algorithms(model, fed, specs, run_cfg);

  std::printf("%-18s  %12s  %10s  %16s  %10s\n", "algorithm", "final_loss",
              "best_acc", "sample_grads", "comm_MB");
  const std::string dir = util::ensure_results_dir();
  util::CsvWriter csv(dir + "/ablation_baselines.csv",
                      {"algorithm", "final_loss", "best_accuracy",
                       "sample_grad_evals", "comm_bytes"});
  for (const auto& t : traces) {
    std::printf("%-18s  %12.5f  %9.2f%%  %16zu  %10.3f\n",
                t.algorithm.c_str(), t.back().train_loss,
                100.0 * t.best_accuracy().first,
                t.back().sample_grad_evals,
                static_cast<double>(t.back().comm_bytes) / 1e6);
    csv.builder()
        .add(t.algorithm)
        .add(t.back().train_loss)
        .add(t.best_accuracy().first)
        .add(t.back().sample_grad_evals)
        .add(t.back().comm_bytes)
        .commit();
  }
  std::printf("\n%s\n",
              bench::render_chart(bench::loss_series(traces),
                                  {.title = "five algorithms, one task",
                                   .y_label = "training loss",
                                   .x_label = "global round",
                                   .log_y = true})
                  .c_str());
  std::printf("wrote %s/ablation_baselines.csv\n", dir.c_str());
  return 0;
}
