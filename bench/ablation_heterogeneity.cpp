// Ablation: data heterogeneity (sigma-bar^2) vs convergence.
//
// Theorem 1's federated factor shrinks as sigma-bar^2 grows (Remark 2), so
// more heterogeneous federations should converge more slowly at matched
// hyperparameters. This bench builds three federations of increasing
// measured heterogeneity — an IID split, Synthetic(0,0) (per-device models,
// shared scale), and Synthetic(1,1) — runs the same FedProxVR(SARAH)
// configuration on each, and reports measured sigma-bar^2 alongside the
// convergence speed.
#include <cstdio>
#include <string>
#include <vector>

#include "common/experiment_util.h"
#include "theory/heterogeneity.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  using namespace fedvr;

  std::size_t devices = 12, rounds = 30, tau = 20, batch = 4;
  double beta = 5.0, mu = 0.1;
  std::uint64_t seed = 1;
  util::Flags flags("ablation_heterogeneity",
                    "sigma-bar^2 vs convergence speed (Remark 2)");
  flags.add("devices", &devices, "number of devices");
  flags.add("rounds", &rounds, "global rounds");
  flags.add("tau", &tau, "local iterations");
  flags.add("batch", &batch, "mini-batch size");
  flags.add("beta", &beta, "step parameter");
  flags.add("mu", &mu, "proximal penalty");
  flags.add("seed", &seed, "master seed");
  flags.parse(argc, argv);

  data::SyntheticConfig base;
  base.num_devices = devices;
  base.min_samples = 40;
  base.max_samples = 200;
  base.seed = seed;

  struct Variant {
    std::string name;
    data::FederatedDataset fed;
  };
  std::vector<Variant> variants;
  variants.push_back({"IID split", data::make_synthetic_iid(base)});
  {
    auto cfg = base;
    cfg.alpha = 0.0;
    cfg.beta = 0.0;
    variants.push_back({"Synthetic(0,0)", data::make_synthetic(cfg)});
  }
  {
    auto cfg = base;
    cfg.alpha = 1.0;
    cfg.beta = 1.0;
    variants.push_back({"Synthetic(1,1)", data::make_synthetic(cfg)});
  }

  const auto model =
      nn::make_logistic_regression(base.dim, base.num_classes);

  std::printf("%-16s  %12s  %12s  %12s  %12s\n", "federation", "sigma^2",
              "L", "loss@10", "final_loss");
  std::vector<fl::TrainingTrace> traces;
  const std::string dir = util::ensure_results_dir();
  util::CsvWriter csv(dir + "/ablation_heterogeneity.csv",
                      {"federation", "sigma_bar_sq", "L", "loss_at_10",
                       "final_loss"});
  for (auto& variant : variants) {
    util::Rng het_rng(seed + 2);
    const auto het =
        theory::estimate_heterogeneity(*model, variant.fed, het_rng);
    const double L =
        bench::estimate_task_smoothness(*model, variant.fed, seed);
    core::HyperParams hp;
    hp.beta = beta;
    hp.smoothness_L = L;
    hp.tau = tau;
    hp.mu = mu;
    hp.batch_size = batch;
    fl::TrainerOptions run_cfg;
    run_cfg.rounds = rounds;
    run_cfg.seed = seed;
    auto spec = core::fedproxvr_sarah(hp);
    spec.name = variant.name;
    auto trace = core::run_federated(model, variant.fed, spec, run_cfg);
    const double loss_at_10 =
        trace.rounds[std::min<std::size_t>(9, trace.rounds.size() - 1)]
            .train_loss;
    std::printf("%-16s  %12.3f  %12.2f  %12.5f  %12.5f\n",
                variant.name.c_str(), het.sigma_bar_sq, L, loss_at_10,
                trace.back().train_loss);
    csv.builder()
        .add(variant.name)
        .add(het.sigma_bar_sq)
        .add(L)
        .add(loss_at_10)
        .add(trace.back().train_loss)
        .commit();
    traces.push_back(std::move(trace));
  }
  std::printf("\n%s\n",
              bench::render_chart(
                  bench::loss_series(traces),
                  {.title = "training loss under increasing heterogeneity",
                   .y_label = "training loss",
                   .x_label = "global round",
                   .log_y = true})
                  .c_str());
  std::printf("wrote %s/ablation_heterogeneity.csv\n", dir.c_str());
  return 0;
}
