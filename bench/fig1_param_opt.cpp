// Fig. 1: effect of the weight factor gamma = d_cmp/d_com on the optimal
// FedProxVR parameters (beta*, mu*, tau*, theta*, Theta*) obtained by
// numerically solving problem (23)-(24), for two heterogeneity levels.
//
// Paper setting: L = 1, lambda = 0.5, sigma-bar^2 in {0.2, 0.8}.
// Expected shape (§4.3): gamma -> 0 pushes beta* (and tau*) up — do more
// local work when communication is the bottleneck; growing gamma shrinks
// beta* and raises mu* / theta*; larger sigma^2 raises mu* and beta* while
// lowering theta* and Theta*.
#include <cmath>
#include <cstdio>
#include <vector>

#include "common/ascii_chart.h"
#include "theory/param_opt.h"
#include "util/csv.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  using namespace fedvr;

  double L = 1.0, lambda = 0.5;
  std::size_t points = 13;
  double gamma_lo = 1e-4, gamma_hi = 1.0;
  util::Flags flags("fig1_param_opt",
                    "Fig. 1: optimal parameters vs weight factor gamma");
  flags.add("L", &L, "smoothness constant");
  flags.add("lambda", &lambda, "bounded non-convexity constant");
  flags.add("points", &points, "gamma samples (log-spaced)");
  flags.add("gamma_lo", &gamma_lo, "smallest gamma");
  flags.add("gamma_hi", &gamma_hi, "largest gamma");
  flags.parse(argc, argv);

  std::vector<double> gammas(points);
  for (std::size_t i = 0; i < points; ++i) {
    const double t = points == 1 ? 0.0
                                 : static_cast<double>(i) /
                                       static_cast<double>(points - 1);
    gammas[i] = std::exp(std::log(gamma_lo) +
                         t * (std::log(gamma_hi) - std::log(gamma_lo)));
  }

  const std::string dir = util::ensure_results_dir();
  util::CsvWriter csv(dir + "/fig1_param_opt.csv",
                      {"sigma_bar_sq", "gamma", "beta", "mu", "tau", "theta",
                       "Theta", "objective"});

  std::vector<bench::Series> beta_series, mu_series, theta_series,
      big_theta_series;
  for (double sigma2 : {0.2, 0.8}) {
    const theory::ProblemConstants pc{.L = L,
                                      .lambda = lambda,
                                      .sigma_bar_sq = sigma2};
    std::printf("\n=== sigma_bar^2 = %.1f (L = %g, lambda = %g) ===\n",
                sigma2, L, lambda);
    std::printf("%10s  %9s  %9s  %10s  %8s  %9s  %12s\n", "gamma", "beta*",
                "mu*", "tau*", "theta*", "Theta*", "objective");
    bench::Series bs{.label = "beta* (s2=" + std::to_string(sigma2).substr(0, 3) + ")", .x = {}, .y = {}};
    bench::Series ms = bs, ts = bs, Ts = bs;
    ms.label = "mu* (s2=" + std::to_string(sigma2).substr(0, 3) + ")";
    ts.label = "theta* (s2=" + std::to_string(sigma2).substr(0, 3) + ")";
    Ts.label = "Theta* (s2=" + std::to_string(sigma2).substr(0, 3) + ")";
    for (double gamma : gammas) {
      const auto p = theory::optimize_parameters(gamma, pc);
      if (!p) {
        std::printf("%10.5f  infeasible\n", gamma);
        continue;
      }
      std::printf("%10.5f  %9.2f  %9.2f  %10.1f  %8.4f  %9.5f  %12.1f\n",
                  gamma, p->beta, p->mu, p->tau, p->theta, p->Theta,
                  p->objective);
      csv.builder()
          .add(sigma2)
          .add(gamma)
          .add(p->beta)
          .add(p->mu)
          .add(p->tau)
          .add(p->theta)
          .add(p->Theta)
          .add(p->objective)
          .commit();
      bs.x.push_back(gamma);
      bs.y.push_back(p->beta);
      ms.x.push_back(gamma);
      ms.y.push_back(p->mu);
      ts.x.push_back(gamma);
      ts.y.push_back(p->theta);
      Ts.x.push_back(gamma);
      Ts.y.push_back(p->Theta);
    }
    beta_series.push_back(std::move(bs));
    mu_series.push_back(std::move(ms));
    theta_series.push_back(std::move(ts));
    big_theta_series.push_back(std::move(Ts));
  }

  std::printf("\n%s\n",
              bench::render_chart(
                  beta_series, {.title = "Fig. 1a: optimal beta vs gamma",
                                .y_label = "beta*",
                                .x_label = "gamma",
                                .log_y = true,
                                .log_x = true})
                  .c_str());
  std::printf("%s\n",
              bench::render_chart(
                  mu_series, {.title = "Fig. 1b: optimal mu vs gamma",
                              .y_label = "mu*",
                              .x_label = "gamma",
                              .log_x = true})
                  .c_str());
  std::printf("%s\n",
              bench::render_chart(
                  theta_series, {.title = "Fig. 1c: optimal theta vs gamma",
                                 .y_label = "theta*",
                                 .x_label = "gamma",
                                 .log_x = true})
                  .c_str());
  std::printf("%s\n",
              bench::render_chart(big_theta_series,
                                  {.title = "Fig. 1d: Theta vs gamma",
                                   .y_label = "Theta*",
                                   .x_label = "gamma",
                                   .log_x = true})
                  .c_str());
  std::printf("wrote %s/fig1_param_opt.csv\n", dir.c_str());
  return 0;
}
