// Ablation: empirical relevance of Lemma 1's tau bounds.
//
// Sweeps tau at fixed beta on the convex Synthetic task and reports, per
// tau, the final loss and a curve-roughness statistic (mean |loss_{s+1} -
// loss_s| over the second half of training). The paper's Fig. 2(c)
// observation — pushing tau above the Lemma-1 budget makes the learning
// curves fluctuate noticeably — shows up as roughness growing with tau
// beyond the bound, while the bound itself is printed for reference.
#include <cmath>
#include <cstdio>
#include <vector>

#include "common/experiment_util.h"
#include "theory/bounds.h"
#include "util/csv.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  using namespace fedvr;

  std::size_t devices = 15, rounds = 30, batch = 1;
  double beta = 5.0;
  std::uint64_t seed = 1;
  util::Flags flags("ablation_lemma1_bounds",
                    "empirical effect of tau relative to Lemma 1's budget");
  flags.add("devices", &devices, "number of devices");
  flags.add("rounds", &rounds, "global rounds");
  flags.add("batch", &batch, "mini-batch size");
  flags.add("beta", &beta, "step parameter");
  flags.add("seed", &seed, "master seed");
  flags.parse(argc, argv);

  data::SyntheticConfig cfg;
  cfg.num_devices = devices;
  cfg.min_samples = 40;
  cfg.max_samples = 300;
  cfg.seed = seed;
  const auto fed = data::make_synthetic(cfg);
  const auto model =
      nn::make_logistic_regression(cfg.dim, cfg.num_classes);
  const double L = bench::estimate_task_smoothness(*model, fed, seed);

  const double sarah_budget = theory::tau_upper_sarah(beta);
  const auto svrg_budget = theory::tau_upper_svrg(beta);
  std::printf("beta = %g: Lemma-1 tau budgets — SARAH %.1f, SVRG %s\n\n",
              beta, sarah_budget,
              svrg_budget ? std::to_string(*svrg_budget).c_str() : "none");

  const std::vector<std::size_t> taus = {
      2, 5, static_cast<std::size_t>(sarah_budget),
      static_cast<std::size_t>(4 * sarah_budget),
      static_cast<std::size_t>(16 * sarah_budget)};

  const std::string dir = util::ensure_results_dir();
  util::CsvWriter csv(dir + "/ablation_lemma1.csv",
                      {"estimator", "tau", "vs_budget", "final_loss",
                       "roughness"});
  for (const opt::Estimator estimator :
       {opt::Estimator::kSvrg, opt::Estimator::kSarah}) {
    std::printf("%s:\n%8s  %10s  %12s  %12s\n",
                opt::estimator_name(estimator), "tau", "vs_budget",
                "final_loss", "roughness");
    for (std::size_t tau : taus) {
      core::HyperParams hp;
      hp.beta = beta;
      hp.smoothness_L = L;
      hp.tau = tau;
      hp.mu = 0.1;
      hp.batch_size = batch;
      auto spec = estimator == opt::Estimator::kSvrg
                      ? core::fedproxvr_svrg(hp)
                      : core::fedproxvr_sarah(hp);
      fl::TrainerOptions run_cfg;
      run_cfg.rounds = rounds;
      run_cfg.seed = seed;
      const auto trace = core::run_federated(model, fed, spec, run_cfg);
      double roughness = 0.0;
      std::size_t count = 0;
      for (std::size_t i = trace.rounds.size() / 2;
           i + 1 < trace.rounds.size(); ++i) {
        roughness += std::abs(trace.rounds[i + 1].train_loss -
                              trace.rounds[i].train_loss);
        ++count;
      }
      roughness /= static_cast<double>(std::max<std::size_t>(count, 1));
      const double budget = estimator == opt::Estimator::kSarah
                                ? sarah_budget
                                : svrg_budget.value_or(0.0);
      const char* vs = static_cast<double>(tau) <= budget ? "within"
                                                          : "above";
      std::printf("%8zu  %10s  %12.5f  %12.6f\n", tau, vs,
                  trace.back().train_loss, roughness);
      csv.builder()
          .add(opt::estimator_name(estimator))
          .add(tau)
          .add(vs)
          .add(trace.back().train_loss)
          .add(roughness)
          .commit();
    }
    std::printf("\n");
  }
  std::printf("wrote %s/ablation_lemma1.csv\n", dir.c_str());
  return 0;
}
