// Micro-benchmarks (google-benchmark) for the hot kernels underneath the
// experiment harness: GEMM, im2col, the vector ops in the solver's inner
// loop, the prox step, and one full LocalSolver inner iteration on both
// tasks. Not tied to a paper table; used to track substrate performance.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "data/synthetic.h"
#include "nn/models.h"
#include "opt/local_solver.h"
#include "tensor/im2col.h"
#include "tensor/kernels.h"
#include "tensor/vecops.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace {

using namespace fedvr;

void BM_GemmSquare(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(1);
  std::vector<double> a(n * n), b(n * n), c(n * n);
  for (auto& v : a) v = rng.normal();
  for (auto& v : b) v = rng.normal();
  for (auto _ : state) {
    tensor::gemm_packed(tensor::Trans::kNo, tensor::Trans::kNo, n, n, n, 1.0,
                        a, b, 0.0, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * n * n * n));
}
BENCHMARK(BM_GemmSquare)->Arg(32)->Arg(64)->Arg(128)->Arg(256)->Arg(512);

// The exact GEMM shapes the CNN's conv layers hit through im2col:
// m = out_channels, n = out_pixels, k = col_rows. Range(0) selects the layer.
void BM_GemmConvShape(benchmark::State& state) {
  const tensor::ConvGeometry g =
      state.range(0) == 1
          ? tensor::ConvGeometry{.channels = 1,
                                 .height = 28,
                                 .width = 28,
                                 .kernel_h = 5,
                                 .kernel_w = 5,
                                 .pad = 2,
                                 .stride = 1}
          : tensor::ConvGeometry{.channels = 32,
                                 .height = 14,
                                 .width = 14,
                                 .kernel_h = 5,
                                 .kernel_w = 5,
                                 .pad = 2,
                                 .stride = 1};
  const std::size_t m = state.range(0) == 1 ? 32 : 64;  // out channels
  const std::size_t n = g.out_pixels();
  const std::size_t k = g.col_rows();
  util::Rng rng(4);
  std::vector<double> w(m * k), cols(k * n), out(m * n);
  for (auto& v : w) v = rng.normal();
  for (auto& v : cols) v = rng.normal();
  for (auto _ : state) {
    tensor::gemm_packed(tensor::Trans::kNo, tensor::Trans::kNo, m, n, k, 1.0,
                        w, cols, 0.0, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * m * n * k));
}
BENCHMARK(BM_GemmConvShape)->Arg(1)->Arg(2);

// Same 256^3 GEMM with the global pool pinned to range(1) threads (0 =
// hardware default), to expose the threaded-vs-serial kernel speedup.
// reset_global is safe here: benchmarks run one at a time, nothing else is
// in flight.
void BM_GemmPoolSize(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::ThreadPool::reset_global(static_cast<std::size_t>(state.range(1)));
  util::Rng rng(1);
  std::vector<double> a(n * n), b(n * n), c(n * n);
  for (auto& v : a) v = rng.normal();
  for (auto& v : b) v = rng.normal();
  for (auto _ : state) {
    tensor::gemm_packed(tensor::Trans::kNo, tensor::Trans::kNo, n, n, n, 1.0,
                        a, b, 0.0, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * n * n * n));
  util::ThreadPool::reset_global(0);
}
BENCHMARK(BM_GemmPoolSize)
    ->Args({256, 1})   // serial kernel
    ->Args({256, 0});  // full hardware pool

void BM_Im2col28x28(benchmark::State& state) {
  tensor::ConvGeometry g{.channels = 1,
                         .height = 28,
                         .width = 28,
                         .kernel_h = 5,
                         .kernel_w = 5,
                         .pad = 2,
                         .stride = 1};
  util::Rng rng(2);
  std::vector<double> image(g.image_size());
  for (auto& v : image) v = rng.uniform();
  std::vector<double> cols(g.col_rows() * g.out_pixels());
  for (auto _ : state) {
    tensor::im2col(g, image, cols);
    benchmark::DoNotOptimize(cols.data());
  }
}
BENCHMARK(BM_Im2col28x28);

void BM_AxpyProxStep(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(3);
  std::vector<double> w(n), v(n), anchor(n), out(n);
  for (auto& x : w) x = rng.normal();
  for (auto& x : v) x = rng.normal();
  for (auto& x : anchor) x = rng.normal();
  for (auto _ : state) {
    tensor::copy(w, out);
    tensor::axpy(-0.01, v, out);
    tensor::prox_quadratic(out, anchor, 0.01, 0.5, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_AxpyProxStep)->Arg(1 << 10)->Arg(1 << 16);

void BM_LogisticMinibatchGradient(benchmark::State& state) {
  const std::size_t dim = 60, classes = 10, batch = 32;
  const auto model = nn::make_logistic_regression(dim, classes);
  data::SyntheticConfig cfg;
  cfg.dim = dim;
  cfg.num_classes = classes;
  const auto ds = data::make_synthetic_device(cfg, 0, 256);
  util::Rng rng(5);
  auto w = model->initial_parameters(rng);
  std::vector<double> grad(w.size());
  std::vector<std::size_t> idx(batch);
  for (auto& i : idx) i = rng.below(ds.size());
  for (auto _ : state) {
    benchmark::DoNotOptimize(model->loss_and_gradient(w, ds, idx, grad));
  }
}
BENCHMARK(BM_LogisticMinibatchGradient);

void BM_CnnMinibatchGradient(benchmark::State& state) {
  nn::CnnConfig cfg;
  cfg.side = 12;
  cfg.conv1_channels = 8;
  cfg.conv2_channels = 16;
  const auto model = nn::make_two_layer_cnn(cfg);
  data::Dataset ds(tensor::Shape({1, 12, 12}), 64, 10);
  util::Rng rng(7);
  for (std::size_t i = 0; i < ds.size(); ++i) {
    for (auto& v : ds.mutable_sample(i)) v = rng.uniform();
    ds.set_label(i, static_cast<int>(rng.below(10)));
  }
  auto w = model->initial_parameters(rng);
  std::vector<double> grad(w.size());
  std::vector<std::size_t> idx(8);
  for (auto& i : idx) i = rng.below(ds.size());
  for (auto _ : state) {
    benchmark::DoNotOptimize(model->loss_and_gradient(w, ds, idx, grad));
  }
}
BENCHMARK(BM_CnnMinibatchGradient);

void BM_LocalSolverRound(benchmark::State& state) {
  const std::size_t dim = 60, classes = 10;
  const auto model = nn::make_logistic_regression(dim, classes);
  data::SyntheticConfig cfg;
  cfg.dim = dim;
  cfg.num_classes = classes;
  const auto ds = data::make_synthetic_device(cfg, 0, 200);
  opt::LocalSolverOptions opts;
  opts.estimator =
      state.range(0) == 0 ? opt::Estimator::kSgd
      : state.range(0) == 1 ? opt::Estimator::kSvrg
                            : opt::Estimator::kSarah;
  opts.tau = 20;
  opts.eta = 0.01;
  opts.mu = 0.1;
  opts.batch_size = 32;
  const opt::LocalSolver solver(model, opts);
  util::Rng rng(9);
  const auto anchor = model->initial_parameters(rng);
  for (auto _ : state) {
    util::Rng inner(11);
    benchmark::DoNotOptimize(solver.solve(ds, anchor, inner));
  }
}
BENCHMARK(BM_LocalSolverRound)
    ->Arg(0)  // SGD
    ->Arg(1)  // SVRG
    ->Arg(2); // SARAH

}  // namespace

BENCHMARK_MAIN();
