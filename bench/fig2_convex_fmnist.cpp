// Fig. 2: convergence of FedProxVR (SVRG / SARAH) vs FedAvg on a convex
// task (multinomial logistic regression) over a non-IID Fashion-MNIST
// federation, batch B = 32, for three hyperparameter settings:
//   (a) beta = 5,  tau = 10      (small step budget)
//   (b) beta = 7,  tau = 20      (larger beta and tau: faster convergence)
//   (c) beta = 5,  tau >> Lemma-1 upper bound (expect noisier curves)
//
// The paper uses 100 devices and ~1000 rounds on real Fashion-MNIST; the
// defaults here are scaled for one core (30 devices, 25 rounds, procedural
// images — see DESIGN.md §3). Use --devices 100 --rounds 200 --pool 12000
// to approach paper scale. Real IDX files in --data_dir are used if found.
#include <array>
#include <cstdio>
#include <string>
#include <vector>

#include "common/experiment_util.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  using namespace fedvr;

  std::size_t devices = 20, rounds = 15, batch = 32, pool = 2000, side = 28;
  std::uint64_t seed = 1;
  std::string data_dir = "data";
  double mu = 0.1;
  util::Flags flags("fig2_convex_fmnist",
                    "Fig. 2: convex task on Fashion-MNIST, FedProxVR vs "
                    "FedAvg");
  flags.add("devices", &devices, "number of devices (paper: 100)");
  flags.add("rounds", &rounds, "global rounds (paper: ~1000)");
  flags.add("batch", &batch, "mini-batch size (paper: 32)");
  flags.add("pool", &pool, "procedural pool size");
  flags.add("side", &side, "image side for procedural fallback");
  flags.add("mu", &mu, "proximal penalty for FedProxVR");
  flags.add("data_dir", &data_dir, "directory with real IDX files");
  flags.add("seed", &seed, "master seed");
  flags.parse(argc, argv);

  data::ImageDatasetConfig cfg;
  cfg.family = data::ImageFamily::kFashion;
  cfg.data_dir = data_dir;
  cfg.side = side;
  cfg.pool_size = pool;
  cfg.shard.num_devices = devices;
  cfg.shard.min_samples = 37;
  cfg.shard.max_samples = 1350;  // the paper's Fashion-MNIST range
  cfg.shard.seed = seed;
  cfg.seed = seed;
  const auto dataset = data::make_federated_images(cfg);
  std::printf("Fashion federation: %zu devices, %zu train samples (%s)\n",
              dataset.fed.num_devices(), dataset.fed.total_train_size(),
              dataset.used_real_files ? "real IDX" : "procedural");

  const std::size_t dim = dataset.fed.train.front().feature_dim();
  const auto model = nn::make_logistic_regression(dim, 10);
  const double L = bench::estimate_task_smoothness(*model, dataset.fed, seed);
  std::printf("estimated smoothness L = %.3f\n\n", L);

  struct Setting {
    const char* name;
    double beta;
    std::size_t tau;
  };
  // Setting (c): tau = 60 far exceeds the SARAH Lemma-1 budget
  // (5*25-20)/8 ~ 13 at beta = 5 (and the SVRG budget is smaller still).
  const std::array<Setting, 3> settings = {
      Setting{"(a) beta=5, tau=10", 5.0, 10},
      Setting{"(b) beta=7, tau=20", 7.0, 20},
      Setting{"(c) beta=5, tau=60 (above Lemma-1 bound)", 5.0, 60}};

  for (const auto& setting : settings) {
    core::HyperParams hp;
    hp.beta = setting.beta;
    hp.smoothness_L = L;
    hp.tau = setting.tau;
    hp.mu = mu;
    hp.batch_size = batch;
    const std::array specs = {core::fedavg(hp), core::fedproxvr_svrg(hp),
                              core::fedproxvr_sarah(hp)};
    fl::TrainerOptions run_cfg;
    run_cfg.rounds = rounds;
    run_cfg.seed = seed;
    std::printf("==== %s ====\n", setting.name);
    const auto traces =
        core::compare_algorithms(model, dataset.fed, specs, run_cfg);
    bench::print_summary_table(traces);
    std::printf("\n%s\n",
                bench::render_chart(bench::loss_series(traces),
                                    {.title = std::string("Fig. 2 loss, ") +
                                              setting.name,
                                     .y_label = "training loss",
                                     .x_label = "global round"})
                    .c_str());
    std::printf("%s\n",
                bench::render_chart(bench::accuracy_series(traces),
                                    {.title =
                                         std::string("Fig. 2 accuracy, ") +
                                         setting.name,
                                     .y_label = "test accuracy",
                                     .x_label = "global round"})
                    .c_str());
    std::string prefix = "fig2_";
    prefix += setting.name[1];  // a / b / c
    bench::write_traces(traces, prefix);
  }
  return 0;
}
