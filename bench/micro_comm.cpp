// Micro-benchmarks for the comm subsystem: wire-format encode/decode
// throughput per dtype (bytes/s of input vector processed), sparse framing,
// and the full Channel::uplink pipeline (EF + TopK + encode + decode).
// Snapshot with tools/bench_json.py --binary build/bench/micro_comm
// --out BENCH_comm.json.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "comm/channel.h"
#include "comm/message.h"
#include "util/rng.h"

namespace {

using namespace fedvr;

constexpr std::size_t kDim = 1 << 16;  // 64k coordinates (512 KiB of f64)

std::vector<double> random_vector(std::size_t n) {
  util::Rng rng(7);
  std::vector<double> v(n);
  for (auto& x : v) x = rng.normal();
  return v;
}

comm::DType dtype_arg(std::int64_t r) {
  return static_cast<comm::DType>(r);
}

// Input throughput: bytes of float64 vector serialized per second. Wire
// output is smaller for f32/q8; BENCH_comm.json captures the rate at which
// updates can be pushed into the encoder.
void BM_EncodeDense(benchmark::State& state) {
  const auto v = random_vector(kDim);
  const comm::DType dtype = dtype_arg(state.range(0));
  for (auto _ : state) {
    const comm::Message msg = comm::Message::encode_dense(v, dtype);
    benchmark::DoNotOptimize(msg.bytes().data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kDim * sizeof(double)));
  state.SetLabel(comm::dtype_name(dtype));
}
BENCHMARK(BM_EncodeDense)->Arg(0)->Arg(1)->Arg(2);

void BM_DecodeDense(benchmark::State& state) {
  const auto v = random_vector(kDim);
  const comm::DType dtype = dtype_arg(state.range(0));
  const comm::Message msg = comm::Message::encode_dense(v, dtype);
  std::vector<double> out(kDim);
  for (auto _ : state) {
    msg.decode(out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kDim * sizeof(double)));
  state.SetLabel(comm::dtype_name(dtype));
}
BENCHMARK(BM_DecodeDense)->Arg(0)->Arg(1)->Arg(2);

// Sparse framing overhead: a 10%-dense TopK-shaped delta round trip.
void BM_EncodeDecodeSparse(benchmark::State& state) {
  auto v = random_vector(kDim);
  for (std::size_t i = 0; i < kDim; ++i) {
    if (i % 10 != 0) v[i] = 0.0;
  }
  std::vector<double> out(kDim);
  for (auto _ : state) {
    const comm::Message msg =
        comm::Message::encode_nonzeros(v, comm::DType::kFloat64);
    msg.decode(out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kDim * sizeof(double)));
}
BENCHMARK(BM_EncodeDecodeSparse);

// The whole uplink seam per update: EF compensate + TopK(10%) + serialize +
// decode + EF absorb — what one device pays per communication round.
void BM_ChannelUplink(benchmark::State& state) {
  comm::ChannelOptions opts;
  opts.compressor = std::make_shared<comm::TopKCompressor>(0.1);
  opts.error_feedback = true;
  opts.uplink_dtype = comm::DType::kInt8Block;
  comm::Channel channel(opts, 1, kDim);
  const auto base = random_vector(kDim);
  std::vector<double> delta(kDim);
  util::Rng rng(3);
  for (auto _ : state) {
    delta = base;
    const std::size_t bytes = channel.uplink(0, delta, rng);
    benchmark::DoNotOptimize(bytes);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kDim * sizeof(double)));
}
BENCHMARK(BM_ChannelUplink);

}  // namespace

BENCHMARK_MAIN();
