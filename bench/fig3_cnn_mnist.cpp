// Fig. 3: convergence of FedProxVR vs FedAvg on the non-convex task — the
// paper's two-layer CNN — over a non-IID MNIST federation, batch B = 64.
//
// The paper runs 10 devices on real 28x28 MNIST with 32/64-channel convs.
// Single-core defaults shrink the input (12x12) and channels (8/16), which
// keeps the architecture and all code paths identical; scale up with
// --side 28 --conv1 32 --conv2 64 --batch 64 --rounds 100.
#include <array>
#include <cstdio>
#include <string>

#include "common/experiment_util.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  using namespace fedvr;

  std::size_t devices = 6, rounds = 12, batch = 4, pool = 800, side = 12,
              conv1 = 8, conv2 = 16, tau = 30;
  double beta = 4.0, mu = 0.01, smoothness = 0.0;
  std::string data_dir = "data";
  std::uint64_t seed = 1;
  util::Flags flags("fig3_cnn_mnist",
                    "Fig. 3: non-convex CNN task on MNIST, FedProxVR vs "
                    "FedAvg");
  flags.add("devices", &devices, "number of devices (paper: 10)");
  flags.add("rounds", &rounds, "global rounds (paper: ~1000)");
  flags.add("batch", &batch, "mini-batch size (paper: 64)");
  flags.add("pool", &pool, "procedural pool size");
  flags.add("side", &side, "image side (paper: 28)");
  flags.add("conv1", &conv1, "conv1 channels (paper: 32)");
  flags.add("conv2", &conv2, "conv2 channels (paper: 64)");
  flags.add("tau", &tau, "local iterations");
  flags.add("beta", &beta, "step parameter");
  flags.add("mu", &mu, "proximal penalty (paper best: 0.01)");
  flags.add("L", &smoothness, "smoothness estimate; 0 = estimate from data");
  flags.add("data_dir", &data_dir, "directory with real IDX files");
  flags.add("seed", &seed, "master seed");
  flags.parse(argc, argv);

  data::ImageDatasetConfig cfg;
  cfg.family = data::ImageFamily::kDigits;
  cfg.data_dir = data_dir;
  cfg.side = side;
  cfg.pool_size = pool;
  cfg.shard.num_devices = devices;
  cfg.shard.min_samples = 50;
  cfg.shard.max_samples = 300;
  cfg.shard.seed = seed;
  cfg.seed = seed;
  const auto dataset = data::make_federated_images(cfg);

  nn::CnnConfig cnn;
  cnn.side = side;
  cnn.conv1_channels = conv1;
  cnn.conv2_channels = conv2;
  const auto model = nn::make_two_layer_cnn(cnn);
  std::printf("MNIST federation: %zu devices, %zu train samples (%s); CNN "
              "with %zu parameters\n",
              dataset.fed.num_devices(), dataset.fed.total_train_size(),
              dataset.used_real_files ? "real IDX" : "procedural",
              model->num_parameters());

  double L = smoothness;
  if (L <= 0.0) {
    L = bench::estimate_task_smoothness(*model, dataset.fed, seed);
  }
  std::printf("smoothness L = %.3f (local curvature at init)\n\n", L);

  core::HyperParams hp;
  hp.beta = beta;
  hp.smoothness_L = L;
  hp.tau = tau;
  hp.mu = mu;
  hp.batch_size = batch;
  const std::array specs = {core::fedavg(hp), core::fedproxvr_svrg(hp),
                            core::fedproxvr_sarah(hp)};
  fl::TrainerOptions run_cfg;
  run_cfg.rounds = rounds;
  run_cfg.seed = seed;
  const auto traces =
      core::compare_algorithms(model, dataset.fed, specs, run_cfg);
  bench::print_summary_table(traces);
  std::printf("\n%s\n",
              bench::render_chart(bench::loss_series(traces),
                                  {.title = "Fig. 3: CNN training loss",
                                   .y_label = "training loss",
                                   .x_label = "global round"})
                  .c_str());
  std::printf("%s\n",
              bench::render_chart(bench::accuracy_series(traces),
                                  {.title = "Fig. 3: CNN test accuracy",
                                   .y_label = "test accuracy",
                                   .x_label = "global round"})
                  .c_str());
  bench::write_traces(traces, "fig3");
  return 0;
}
