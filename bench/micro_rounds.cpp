// End-to-end round throughput for the federated engines: full training
// rounds on the paper's Synthetic federation with a logistic-regression
// model, reported as device activations/s and local updates/s, plus the
// arena heap traffic per round — the observable behind the zero-allocation
// claim (allocs_per_round stays ~0 once the per-thread arenas and the
// per-device solver workspaces are warm).
//
// Snapshot with tools/bench_json.py --binary build/bench/micro_rounds
// --out BENCH_rounds.json.
#include <benchmark/benchmark.h>

#include <cstddef>
#include <memory>

#include "core/proxskip.h"
#include "data/federation.h"
#include "data/synthetic.h"
#include "fl/trainer.h"
#include "nn/models.h"
#include "opt/local_solver.h"
#include "tensor/arena.h"

namespace {

using namespace fedvr;

constexpr std::size_t kDevices = 12;
constexpr std::size_t kDim = 60;       // FedProx Synthetic feature dim
constexpr std::size_t kClasses = 10;
constexpr std::size_t kTau = 10;       // inner iterations per round
constexpr std::size_t kBatch = 8;
constexpr std::size_t kRounds = 5;     // global rounds per timed run

data::FederatedDataset synthetic_fed() {
  data::SyntheticConfig cfg;
  cfg.num_devices = kDevices;
  cfg.dim = kDim;
  cfg.num_classes = kClasses;
  cfg.min_samples = 40;
  cfg.max_samples = 160;
  cfg.seed = 5;
  return data::make_synthetic(cfg);
}

opt::LocalSolverOptions solver_options() {
  opt::LocalSolverOptions o;
  o.estimator = opt::Estimator::kSvrg;
  o.tau = kTau;
  o.eta = 0.05;
  o.mu = 0.1;
  o.batch_size = kBatch;
  return o;
}

// Shared skeleton: one warm run primes the thread-pool arenas and the
// trainer's workspace pool outside the timing loop, then the heap-event
// delta across the timed runs is charged per round.
void run_trainer_bench(benchmark::State& state, const fl::TrainerOptions& topts,
                       std::size_t updates_per_activation) {
  const auto fed = synthetic_fed();
  const auto model = nn::make_logistic_regression(kDim, kClasses);
  const fl::Trainer trainer(model, fed, topts);
  const opt::LocalSolver solver(model, solver_options());
  (void)trainer.run(solver, "warm");
  const std::uint64_t heap_before = tensor::arena_heap_events();
  std::size_t runs = 0;
  for (auto _ : state) {
    const auto trace = trainer.run(solver, "bench");
    benchmark::DoNotOptimize(trace.final_param_hash);
    ++runs;
  }
  const double rounds = static_cast<double>(runs * kRounds);
  const double activations = rounds * static_cast<double>(kDevices);
  state.counters["devices_per_second"] =
      benchmark::Counter(activations, benchmark::Counter::kIsRate);
  state.counters["updates_per_second"] = benchmark::Counter(
      activations * static_cast<double>(updates_per_activation),
      benchmark::Counter::kIsRate);
  state.counters["allocs_per_round"] =
      static_cast<double>(tensor::arena_heap_events() - heap_before) / rounds;
}

// FedProxVR (Algorithm 1, kSvrg): the paper's main engine.
void BM_RoundFedProxVR(benchmark::State& state) {
  fl::TrainerOptions topts;
  topts.rounds = kRounds;
  topts.seed = 3;
  topts.eval_every = kRounds;  // one metric pass per run, not per round
  run_trainer_bench(state, topts, kTau);
}
BENCHMARK(BM_RoundFedProxVR)->Unit(benchmark::kMillisecond);

// Same engine with the fault stack on: crashes, stragglers, lossy uplinks
// and corruption, exercising survivor reweighting and server-side
// validation on every round.
void BM_RoundFedProxVRFaults(benchmark::State& state) {
  fl::TrainerOptions topts;
  topts.rounds = kRounds;
  topts.seed = 3;
  topts.eval_every = kRounds;
  fl::FaultModelConfig faults;
  faults.dropout_prob = 0.1;
  faults.straggler_prob = 0.2;
  faults.uplink_loss_prob = 0.05;
  faults.corrupt_prob = 0.05;
  topts.faults = fl::FaultModel(faults);
  run_trainer_bench(state, topts, kTau);
}
BENCHMARK(BM_RoundFedProxVRFaults)->Unit(benchmark::kMillisecond);

// Event-driven sampled rounds on a large virtual fleet: N = 10⁵ devices,
// m = 64 sampled participants per round, shards materialized on demand
// through data::VirtualFederation. The fleet never fits a slab — the
// per-round cost is O(m·dim), so devices_per_second here measures *sampled
// activations* (the fleet size only pays at construction, outside the
// timing loop). Global metric passes are O(N) and disabled.
void BM_RoundSampledLargeFleet(benchmark::State& state) {
  constexpr std::size_t kFleet = 100000;
  constexpr std::size_t kSampled = 64;
  data::SyntheticConfig cfg;
  cfg.num_devices = kFleet;
  cfg.dim = kDim;
  cfg.num_classes = kClasses;
  cfg.min_samples = 40;
  cfg.max_samples = 160;
  cfg.seed = 5;
  const auto fleet = std::make_shared<data::VirtualFederation>(
      data::make_synthetic_virtual(cfg));
  const auto model = nn::make_logistic_regression(kDim, kClasses);
  fl::TrainerOptions topts;
  topts.rounds = kRounds;
  topts.seed = 3;
  topts.devices_per_round = kSampled;
  topts.eval_every = kRounds + 1;  // no O(N) metric pass in the loop
  topts.eval_final = false;
  const fl::Trainer trainer(model, fleet, topts);
  const opt::LocalSolver solver(model, solver_options());
  (void)trainer.run(solver, "warm");
  const std::uint64_t heap_before = tensor::arena_heap_events();
  std::size_t runs = 0;
  for (auto _ : state) {
    const auto trace = trainer.run(solver, "bench");
    benchmark::DoNotOptimize(trace.final_param_hash);
    ++runs;
  }
  const double rounds = static_cast<double>(runs * kRounds);
  const double activations = rounds * static_cast<double>(kSampled);
  state.counters["devices_per_second"] =
      benchmark::Counter(activations, benchmark::Counter::kIsRate);
  state.counters["updates_per_second"] = benchmark::Counter(
      activations * static_cast<double>(kTau), benchmark::Counter::kIsRate);
  state.counters["allocs_per_round"] =
      static_cast<double>(tensor::arena_heap_events() - heap_before) / rounds;
}
BENCHMARK(BM_RoundSampledLargeFleet)->Unit(benchmark::kMillisecond);

// ProxSkip-VR (eq. 19): one local SVRG step per device per iteration, with
// ~skip_prob of the iterations communicating. An "activation" here is one
// device-iteration; updates == activations (tau = 1).
void BM_RoundProxSkipVR(benchmark::State& state) {
  const auto fed = synthetic_fed();
  const auto model = nn::make_logistic_regression(kDim, kClasses);
  core::ProxSkipVROptions opts;
  opts.iterations = kRounds * kTau;  // comparable local-step budget
  opts.seed = 3;
  opts.step_size = 0.05;
  opts.skip_prob = 0.2;
  opts.batch_size = kBatch;
  opts.eval_every = opts.iterations;
  (void)core::run_proxskip_vr(model, fed, opts, "warm");
  const std::uint64_t heap_before = tensor::arena_heap_events();
  std::size_t runs = 0;
  for (auto _ : state) {
    const auto trace = core::run_proxskip_vr(model, fed, opts, "bench");
    benchmark::DoNotOptimize(trace.final_param_hash);
    ++runs;
  }
  const double iters = static_cast<double>(runs * opts.iterations);
  const double activations = iters * static_cast<double>(kDevices);
  state.counters["devices_per_second"] =
      benchmark::Counter(activations, benchmark::Counter::kIsRate);
  state.counters["updates_per_second"] =
      benchmark::Counter(activations, benchmark::Counter::kIsRate);
  state.counters["allocs_per_round"] =
      static_cast<double>(tensor::arena_heap_events() - heap_before) / iters;
}
BENCHMARK(BM_RoundProxSkipVR)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
