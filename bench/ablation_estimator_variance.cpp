// Ablation: estimator error along the inner loop.
//
// Measures E ||v_t - grad F_n(w_t)||^2 for SGD, SVRG (eq. 8b) and SARAH
// (eq. 8a) on one device of the Synthetic task, averaged over repetitions.
// This is the mechanism behind the paper's results: variance reduction
// keeps the stochastic direction close to the true gradient as the iterate
// drifts from the anchor, whereas SGD's error stays at the sampling-noise
// floor. It also probes Remark 1(5)'s SARAH-vs-SVRG stability comparison
// empirically.
#include <cstdio>
#include <vector>

#include "common/ascii_chart.h"
#include "data/synthetic.h"
#include "nn/models.h"
#include "opt/local_solver.h"
#include "tensor/vecops.h"
#include "util/csv.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  using namespace fedvr;

  std::size_t tau = 60, batch = 1, repeats = 20, samples = 300;
  double eta = 0.02, mu = 0.1;
  std::uint64_t seed = 1;
  util::Flags flags("ablation_estimator_variance",
                    "estimator error ||v_t - grad F(w_t)||^2 along the "
                    "inner loop");
  flags.add("tau", &tau, "inner iterations");
  flags.add("batch", &batch, "mini-batch size");
  flags.add("repeats", &repeats, "independent repetitions to average");
  flags.add("samples", &samples, "device dataset size");
  flags.add("eta", &eta, "step size");
  flags.add("mu", &mu, "proximal penalty");
  flags.add("seed", &seed, "master seed");
  flags.parse(argc, argv);

  data::SyntheticConfig cfg;
  cfg.seed = seed;
  const auto ds = data::make_synthetic_device(cfg, 0, samples);
  const auto model =
      nn::make_logistic_regression(cfg.dim, cfg.num_classes);
  util::Rng init_rng(seed);
  const auto anchor = model->initial_parameters(init_rng);
  const auto full_idx = nn::all_indices(ds.size());

  const std::string dir = util::ensure_results_dir();
  util::CsvWriter csv(dir + "/ablation_estimator_variance.csv",
                      {"estimator", "t", "mean_sq_error"});

  std::vector<bench::Series> series;
  for (const opt::Estimator estimator :
       {opt::Estimator::kSgd, opt::Estimator::kSvrg,
        opt::Estimator::kSarah}) {
    std::vector<double> total_sq_error(tau + 1, 0.0);
    std::vector<double> true_grad(model->num_parameters());
    for (std::size_t rep = 0; rep < repeats; ++rep) {
      opt::LocalSolverOptions opts;
      opts.estimator = estimator;
      opts.tau = tau;
      opts.eta = eta;
      opts.mu = mu;
      opts.batch_size = batch;
      opts.observer = [&](std::size_t t, std::span<const double> v,
                          std::span<const double> w) {
        (void)model->loss_and_gradient(w, ds, full_idx, true_grad);
        total_sq_error[t] += tensor::squared_distance(v, true_grad);
      };
      const opt::LocalSolver solver(model, opts);
      util::Rng rng = util::fork(seed, rep + 1, 0, 7);
      (void)solver.solve(ds, anchor, rng);
    }
    bench::Series s;
    s.label = opt::estimator_name(estimator);
    std::printf("%s:\n  t:    ", opt::estimator_name(estimator));
    for (std::size_t t = 1; t <= tau; t += tau / 6) std::printf("%9zu", t);
    std::printf("\n  err:  ");
    for (std::size_t t = 1; t <= tau; ++t) {
      const double mean = total_sq_error[t] / static_cast<double>(repeats);
      csv.builder().add(opt::estimator_name(estimator)).add(t).add(mean)
          .commit();
      s.x.push_back(static_cast<double>(t));
      s.y.push_back(mean);
      if ((t - 1) % (tau / 6) == 0) std::printf("%9.4f", mean);
    }
    std::printf("\n\n");
    series.push_back(std::move(s));
  }

  std::printf("%s\n",
              bench::render_chart(
                  series,
                  {.title = "Panel A: estimator error vs inner iteration t "
                            "(one round from a random anchor)",
                   .y_label = "mean squared error",
                   .x_label = "inner iteration t",
                   .log_y = true})
                  .c_str());

  // ---- Panel B: error across outer rounds. ----
  // Within one round from a random anchor, drift makes the VR corrections
  // stale (Panel A). The mechanism that wins is the anchor refresh: as
  // rounds progress and the anchor approaches the optimum, SVRG/SARAH error
  // collapses while SGD stays at its sampling-noise floor. One device makes
  // FedProxVR exactly prox-SVRG/-SARAH on the local problem.
  const std::size_t outer_rounds = 12;
  util::CsvWriter round_csv(dir + "/ablation_estimator_variance_rounds.csv",
                            {"estimator", "round", "mean_sq_error"});
  std::vector<bench::Series> round_series;
  for (const opt::Estimator estimator :
       {opt::Estimator::kSgd, opt::Estimator::kSvrg,
        opt::Estimator::kSarah}) {
    bench::Series s;
    s.label = opt::estimator_name(estimator);
    std::vector<double> anchor_w = anchor;
    std::vector<double> true_grad(model->num_parameters());
    for (std::size_t round = 1; round <= outer_rounds; ++round) {
      double round_error = 0.0;
      std::size_t observations = 0;
      opt::LocalSolverOptions opts;
      opts.estimator = estimator;
      opts.tau = tau;
      opts.eta = eta;
      opts.mu = mu;
      opts.batch_size = batch;
      opts.observer = [&](std::size_t, std::span<const double> v,
                          std::span<const double> w) {
        (void)model->loss_and_gradient(w, ds, full_idx, true_grad);
        round_error += tensor::squared_distance(v, true_grad);
        ++observations;
      };
      const opt::LocalSolver solver(model, opts);
      util::Rng rng = util::fork(seed, round, 1, 7);
      auto result = solver.solve(ds, anchor_w, rng);
      anchor_w = std::move(result.w);
      const double mean = round_error / static_cast<double>(observations);
      round_csv.builder()
          .add(opt::estimator_name(estimator))
          .add(round)
          .add(mean)
          .commit();
      s.x.push_back(static_cast<double>(round));
      s.y.push_back(mean);
    }
    round_series.push_back(std::move(s));
  }
  std::printf("%s\n",
              bench::render_chart(
                  round_series,
                  {.title = "Panel B: mean estimator error per outer round "
                            "(anchor refresh at work)",
                   .y_label = "mean squared error",
                   .x_label = "outer round s",
                   .log_y = true})
                  .c_str());
  std::printf("wrote %s/ablation_estimator_variance.csv and _rounds.csv\n",
              dir.c_str());
  return 0;
}
