// Fig. 4: effect of the proximal penalty mu on FedProxVR convergence, on
// the heterogeneous Synthetic dataset (convex task).
//
// Two step-size regimes reproduce the full trade-off the paper describes:
//   Panel A (aggressive step, beta < 1): without the prox (mu = 0) the loss
//     spikes and oscillates — the paper's "diverges when mu = 0"; raising
//     mu progressively stabilizes training.
//   Panel B (conservative step, beta ~ 4): every mu converges, and larger
//     mu converges more slowly — the "mu also reflects the trade-off
//     between smoothness and convergence speed" observation.
#include <cstdio>
#include <string>
#include <vector>

#include "check/check.h"
#include "common/experiment_util.h"
#include "util/flags.h"

namespace {

using namespace fedvr;

void run_panel(const char* title, const char* prefix, double beta, double L,
               std::size_t tau, std::size_t batch, std::size_t rounds,
               std::uint64_t seed,
               const std::shared_ptr<const nn::Model>& model,
               const data::FederatedDataset& fed,
               const std::vector<double>& mus) {
  std::printf("==== %s (beta = %g) ====\n", title, beta);
  std::vector<fl::TrainingTrace> traces;
  for (double mu : mus) {
    core::HyperParams hp;
    hp.beta = beta;
    hp.smoothness_L = L;
    hp.tau = tau;
    hp.mu = mu;
    hp.batch_size = batch;
    auto spec = core::fedproxvr_svrg(hp);
    char label[64];
    std::snprintf(label, sizeof label, "mu=%g", mu);
    spec.name = label;
    fl::TrainerOptions run_cfg;
    run_cfg.rounds = rounds;
    run_cfg.seed = seed;
    run_cfg.eval_initial = true;  // round-0 loss anchors the blow-up check
    traces.push_back(core::run_federated(model, fed, spec, run_cfg));
  }
  std::printf("%-12s  %12s  %12s  %12s  %10s\n", "setting", "final_loss",
              "min_loss", "max_loss", "unstable");
  for (const auto& t : traces) {
    // A spike above 2x the initial loss F(w0) marks the mu = 0 blow-up.
    const bool unstable =
        t.max_train_loss() > 2.0 * t.rounds.front().train_loss;
    std::printf("%-12s  %12.5f  %12.5f  %12.5f  %10s\n", t.algorithm.c_str(),
                t.back().train_loss, t.min_train_loss(), t.max_train_loss(),
                unstable ? "yes" : "no");
  }
  std::printf("\n%s\n",
              bench::render_chart(
                  bench::loss_series(traces),
                  {.title = std::string("Fig. 4 ") + title,
                   .y_label = "training loss",
                   .x_label = "global round",
                   .log_y = true})
                  .c_str());
  bench::write_traces(traces, prefix);
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t devices = 20, rounds = 40, tau = 100, batch = 1;
  double beta_aggressive = 0.1, beta_conservative = 4.0, alpha = 1.0;
  std::uint64_t seed = 1;
  util::Flags flags("fig4_mu_effect",
                    "Fig. 4: proximal penalty mu vs FedProxVR convergence");
  flags.add("devices", &devices, "number of devices (paper: 100)");
  flags.add("rounds", &rounds, "global rounds");
  flags.add("tau", &tau, "local iterations (long runs stress mu = 0)");
  flags.add("batch", &batch, "mini-batch size");
  flags.add("beta_aggressive", &beta_aggressive,
            "step parameter for the unstable panel");
  flags.add("beta_conservative", &beta_conservative,
            "step parameter for the stable panel");
  flags.add("alpha", &alpha, "Synthetic(alpha, alpha) heterogeneity");
  flags.add("seed", &seed, "master seed");
  flags.parse(argc, argv);

  // Panel A deliberately drives mu = 0 into instability; the fedvr::check
  // NaN guards would abort the run before the divergence we want to plot.
  check::set_enabled(false);

  data::SyntheticConfig cfg;
  cfg.num_devices = devices;
  cfg.alpha = alpha;
  cfg.beta = alpha;
  cfg.min_samples = 37;
  cfg.max_samples = 500;
  cfg.seed = seed;
  const auto fed = data::make_synthetic(cfg);
  const auto model =
      nn::make_logistic_regression(cfg.dim, cfg.num_classes);
  const double L = bench::estimate_task_smoothness(*model, fed, seed);
  std::printf("Synthetic federation: %zu devices, %zu samples, L = %.3f\n\n",
              fed.num_devices(), fed.total_train_size(), L);

  const std::vector<double> mus = {0.0, 0.1, 0.5, 2.0};
  run_panel("Panel A: aggressive step — mu = 0 blows up", "fig4a",
            beta_aggressive, L, tau, batch, rounds, seed, model, fed, mus);
  run_panel("Panel B: conservative step — larger mu is slower", "fig4b",
            beta_conservative, L, tau, batch, rounds, seed, model, fed, mus);
  return 0;
}
