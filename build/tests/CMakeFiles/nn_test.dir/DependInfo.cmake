
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/nn/checkpoint_test.cpp" "tests/CMakeFiles/nn_test.dir/nn/checkpoint_test.cpp.o" "gcc" "tests/CMakeFiles/nn_test.dir/nn/checkpoint_test.cpp.o.d"
  "/root/repo/tests/nn/layers_test.cpp" "tests/CMakeFiles/nn_test.dir/nn/layers_test.cpp.o" "gcc" "tests/CMakeFiles/nn_test.dir/nn/layers_test.cpp.o.d"
  "/root/repo/tests/nn/linear_models_test.cpp" "tests/CMakeFiles/nn_test.dir/nn/linear_models_test.cpp.o" "gcc" "tests/CMakeFiles/nn_test.dir/nn/linear_models_test.cpp.o.d"
  "/root/repo/tests/nn/loss_test.cpp" "tests/CMakeFiles/nn_test.dir/nn/loss_test.cpp.o" "gcc" "tests/CMakeFiles/nn_test.dir/nn/loss_test.cpp.o.d"
  "/root/repo/tests/nn/mlp_test.cpp" "tests/CMakeFiles/nn_test.dir/nn/mlp_test.cpp.o" "gcc" "tests/CMakeFiles/nn_test.dir/nn/mlp_test.cpp.o.d"
  "/root/repo/tests/nn/model_test.cpp" "tests/CMakeFiles/nn_test.dir/nn/model_test.cpp.o" "gcc" "tests/CMakeFiles/nn_test.dir/nn/model_test.cpp.o.d"
  "/root/repo/tests/nn/sequential_reuse_test.cpp" "tests/CMakeFiles/nn_test.dir/nn/sequential_reuse_test.cpp.o" "gcc" "tests/CMakeFiles/nn_test.dir/nn/sequential_reuse_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/fedvr_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/fedvr_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/fedvr_data.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/fedvr_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fedvr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
