
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/util/csv_test.cpp" "tests/CMakeFiles/util_test.dir/util/csv_test.cpp.o" "gcc" "tests/CMakeFiles/util_test.dir/util/csv_test.cpp.o.d"
  "/root/repo/tests/util/error_test.cpp" "tests/CMakeFiles/util_test.dir/util/error_test.cpp.o" "gcc" "tests/CMakeFiles/util_test.dir/util/error_test.cpp.o.d"
  "/root/repo/tests/util/flags_test.cpp" "tests/CMakeFiles/util_test.dir/util/flags_test.cpp.o" "gcc" "tests/CMakeFiles/util_test.dir/util/flags_test.cpp.o.d"
  "/root/repo/tests/util/log_test.cpp" "tests/CMakeFiles/util_test.dir/util/log_test.cpp.o" "gcc" "tests/CMakeFiles/util_test.dir/util/log_test.cpp.o.d"
  "/root/repo/tests/util/rng_test.cpp" "tests/CMakeFiles/util_test.dir/util/rng_test.cpp.o" "gcc" "tests/CMakeFiles/util_test.dir/util/rng_test.cpp.o.d"
  "/root/repo/tests/util/stopwatch_test.cpp" "tests/CMakeFiles/util_test.dir/util/stopwatch_test.cpp.o" "gcc" "tests/CMakeFiles/util_test.dir/util/stopwatch_test.cpp.o.d"
  "/root/repo/tests/util/thread_pool_test.cpp" "tests/CMakeFiles/util_test.dir/util/thread_pool_test.cpp.o" "gcc" "tests/CMakeFiles/util_test.dir/util/thread_pool_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/fedvr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
