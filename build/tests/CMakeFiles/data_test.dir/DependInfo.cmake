
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/data/dataset_test.cpp" "tests/CMakeFiles/data_test.dir/data/dataset_test.cpp.o" "gcc" "tests/CMakeFiles/data_test.dir/data/dataset_test.cpp.o.d"
  "/root/repo/tests/data/federated_split_test.cpp" "tests/CMakeFiles/data_test.dir/data/federated_split_test.cpp.o" "gcc" "tests/CMakeFiles/data_test.dir/data/federated_split_test.cpp.o.d"
  "/root/repo/tests/data/idx_loader_test.cpp" "tests/CMakeFiles/data_test.dir/data/idx_loader_test.cpp.o" "gcc" "tests/CMakeFiles/data_test.dir/data/idx_loader_test.cpp.o.d"
  "/root/repo/tests/data/image_datasets_test.cpp" "tests/CMakeFiles/data_test.dir/data/image_datasets_test.cpp.o" "gcc" "tests/CMakeFiles/data_test.dir/data/image_datasets_test.cpp.o.d"
  "/root/repo/tests/data/procedural_images_test.cpp" "tests/CMakeFiles/data_test.dir/data/procedural_images_test.cpp.o" "gcc" "tests/CMakeFiles/data_test.dir/data/procedural_images_test.cpp.o.d"
  "/root/repo/tests/data/procedural_sweep_test.cpp" "tests/CMakeFiles/data_test.dir/data/procedural_sweep_test.cpp.o" "gcc" "tests/CMakeFiles/data_test.dir/data/procedural_sweep_test.cpp.o.d"
  "/root/repo/tests/data/synthetic_test.cpp" "tests/CMakeFiles/data_test.dir/data/synthetic_test.cpp.o" "gcc" "tests/CMakeFiles/data_test.dir/data/synthetic_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/data/CMakeFiles/fedvr_data.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/fedvr_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fedvr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
