
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/fl/compression_test.cpp" "tests/CMakeFiles/fl_test.dir/fl/compression_test.cpp.o" "gcc" "tests/CMakeFiles/fl_test.dir/fl/compression_test.cpp.o.d"
  "/root/repo/tests/fl/metrics_test.cpp" "tests/CMakeFiles/fl_test.dir/fl/metrics_test.cpp.o" "gcc" "tests/CMakeFiles/fl_test.dir/fl/metrics_test.cpp.o.d"
  "/root/repo/tests/fl/trainer_test.cpp" "tests/CMakeFiles/fl_test.dir/fl/trainer_test.cpp.o" "gcc" "tests/CMakeFiles/fl_test.dir/fl/trainer_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fl/CMakeFiles/fedvr_fl.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/fedvr_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/fedvr_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/fedvr_data.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/fedvr_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fedvr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
