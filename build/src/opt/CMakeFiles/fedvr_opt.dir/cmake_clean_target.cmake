file(REMOVE_RECURSE
  "libfedvr_opt.a"
)
