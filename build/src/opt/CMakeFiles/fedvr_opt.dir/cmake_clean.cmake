file(REMOVE_RECURSE
  "CMakeFiles/fedvr_opt.dir/local_solver.cpp.o"
  "CMakeFiles/fedvr_opt.dir/local_solver.cpp.o.d"
  "libfedvr_opt.a"
  "libfedvr_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedvr_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
