# Empty dependencies file for fedvr_opt.
# This may be replaced when dependencies are built.
