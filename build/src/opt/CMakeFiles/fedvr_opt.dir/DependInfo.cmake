
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/opt/local_solver.cpp" "src/opt/CMakeFiles/fedvr_opt.dir/local_solver.cpp.o" "gcc" "src/opt/CMakeFiles/fedvr_opt.dir/local_solver.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/fedvr_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/fedvr_data.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/fedvr_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fedvr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
