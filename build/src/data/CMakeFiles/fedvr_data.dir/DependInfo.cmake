
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/dataset.cpp" "src/data/CMakeFiles/fedvr_data.dir/dataset.cpp.o" "gcc" "src/data/CMakeFiles/fedvr_data.dir/dataset.cpp.o.d"
  "/root/repo/src/data/federated_split.cpp" "src/data/CMakeFiles/fedvr_data.dir/federated_split.cpp.o" "gcc" "src/data/CMakeFiles/fedvr_data.dir/federated_split.cpp.o.d"
  "/root/repo/src/data/idx_loader.cpp" "src/data/CMakeFiles/fedvr_data.dir/idx_loader.cpp.o" "gcc" "src/data/CMakeFiles/fedvr_data.dir/idx_loader.cpp.o.d"
  "/root/repo/src/data/image_datasets.cpp" "src/data/CMakeFiles/fedvr_data.dir/image_datasets.cpp.o" "gcc" "src/data/CMakeFiles/fedvr_data.dir/image_datasets.cpp.o.d"
  "/root/repo/src/data/procedural_images.cpp" "src/data/CMakeFiles/fedvr_data.dir/procedural_images.cpp.o" "gcc" "src/data/CMakeFiles/fedvr_data.dir/procedural_images.cpp.o.d"
  "/root/repo/src/data/synthetic.cpp" "src/data/CMakeFiles/fedvr_data.dir/synthetic.cpp.o" "gcc" "src/data/CMakeFiles/fedvr_data.dir/synthetic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/fedvr_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fedvr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
