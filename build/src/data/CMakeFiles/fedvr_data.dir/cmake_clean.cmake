file(REMOVE_RECURSE
  "CMakeFiles/fedvr_data.dir/dataset.cpp.o"
  "CMakeFiles/fedvr_data.dir/dataset.cpp.o.d"
  "CMakeFiles/fedvr_data.dir/federated_split.cpp.o"
  "CMakeFiles/fedvr_data.dir/federated_split.cpp.o.d"
  "CMakeFiles/fedvr_data.dir/idx_loader.cpp.o"
  "CMakeFiles/fedvr_data.dir/idx_loader.cpp.o.d"
  "CMakeFiles/fedvr_data.dir/image_datasets.cpp.o"
  "CMakeFiles/fedvr_data.dir/image_datasets.cpp.o.d"
  "CMakeFiles/fedvr_data.dir/procedural_images.cpp.o"
  "CMakeFiles/fedvr_data.dir/procedural_images.cpp.o.d"
  "CMakeFiles/fedvr_data.dir/synthetic.cpp.o"
  "CMakeFiles/fedvr_data.dir/synthetic.cpp.o.d"
  "libfedvr_data.a"
  "libfedvr_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedvr_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
