# Empty dependencies file for fedvr_data.
# This may be replaced when dependencies are built.
