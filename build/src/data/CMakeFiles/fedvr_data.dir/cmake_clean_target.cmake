file(REMOVE_RECURSE
  "libfedvr_data.a"
)
