# Empty dependencies file for fedvr_theory.
# This may be replaced when dependencies are built.
