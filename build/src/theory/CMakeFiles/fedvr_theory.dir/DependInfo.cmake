
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/theory/bounds.cpp" "src/theory/CMakeFiles/fedvr_theory.dir/bounds.cpp.o" "gcc" "src/theory/CMakeFiles/fedvr_theory.dir/bounds.cpp.o.d"
  "/root/repo/src/theory/heterogeneity.cpp" "src/theory/CMakeFiles/fedvr_theory.dir/heterogeneity.cpp.o" "gcc" "src/theory/CMakeFiles/fedvr_theory.dir/heterogeneity.cpp.o.d"
  "/root/repo/src/theory/param_opt.cpp" "src/theory/CMakeFiles/fedvr_theory.dir/param_opt.cpp.o" "gcc" "src/theory/CMakeFiles/fedvr_theory.dir/param_opt.cpp.o.d"
  "/root/repo/src/theory/smoothness.cpp" "src/theory/CMakeFiles/fedvr_theory.dir/smoothness.cpp.o" "gcc" "src/theory/CMakeFiles/fedvr_theory.dir/smoothness.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/fedvr_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/fedvr_data.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/fedvr_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fedvr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
