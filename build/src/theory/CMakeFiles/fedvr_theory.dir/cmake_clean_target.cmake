file(REMOVE_RECURSE
  "libfedvr_theory.a"
)
