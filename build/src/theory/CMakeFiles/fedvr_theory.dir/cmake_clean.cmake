file(REMOVE_RECURSE
  "CMakeFiles/fedvr_theory.dir/bounds.cpp.o"
  "CMakeFiles/fedvr_theory.dir/bounds.cpp.o.d"
  "CMakeFiles/fedvr_theory.dir/heterogeneity.cpp.o"
  "CMakeFiles/fedvr_theory.dir/heterogeneity.cpp.o.d"
  "CMakeFiles/fedvr_theory.dir/param_opt.cpp.o"
  "CMakeFiles/fedvr_theory.dir/param_opt.cpp.o.d"
  "CMakeFiles/fedvr_theory.dir/smoothness.cpp.o"
  "CMakeFiles/fedvr_theory.dir/smoothness.cpp.o.d"
  "libfedvr_theory.a"
  "libfedvr_theory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedvr_theory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
