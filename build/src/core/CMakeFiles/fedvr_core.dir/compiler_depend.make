# Empty compiler generated dependencies file for fedvr_core.
# This may be replaced when dependencies are built.
