file(REMOVE_RECURSE
  "CMakeFiles/fedvr_core.dir/algorithms.cpp.o"
  "CMakeFiles/fedvr_core.dir/algorithms.cpp.o.d"
  "CMakeFiles/fedvr_core.dir/fedproxvr.cpp.o"
  "CMakeFiles/fedvr_core.dir/fedproxvr.cpp.o.d"
  "CMakeFiles/fedvr_core.dir/heterogeneous.cpp.o"
  "CMakeFiles/fedvr_core.dir/heterogeneous.cpp.o.d"
  "libfedvr_core.a"
  "libfedvr_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedvr_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
