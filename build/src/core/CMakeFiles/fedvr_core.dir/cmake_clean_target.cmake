file(REMOVE_RECURSE
  "libfedvr_core.a"
)
