file(REMOVE_RECURSE
  "CMakeFiles/fedvr_fl.dir/compression.cpp.o"
  "CMakeFiles/fedvr_fl.dir/compression.cpp.o.d"
  "CMakeFiles/fedvr_fl.dir/metrics.cpp.o"
  "CMakeFiles/fedvr_fl.dir/metrics.cpp.o.d"
  "CMakeFiles/fedvr_fl.dir/trainer.cpp.o"
  "CMakeFiles/fedvr_fl.dir/trainer.cpp.o.d"
  "libfedvr_fl.a"
  "libfedvr_fl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedvr_fl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
