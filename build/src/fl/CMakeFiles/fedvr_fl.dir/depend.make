# Empty dependencies file for fedvr_fl.
# This may be replaced when dependencies are built.
