file(REMOVE_RECURSE
  "libfedvr_fl.a"
)
