
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/activation.cpp" "src/nn/CMakeFiles/fedvr_nn.dir/activation.cpp.o" "gcc" "src/nn/CMakeFiles/fedvr_nn.dir/activation.cpp.o.d"
  "/root/repo/src/nn/checkpoint.cpp" "src/nn/CMakeFiles/fedvr_nn.dir/checkpoint.cpp.o" "gcc" "src/nn/CMakeFiles/fedvr_nn.dir/checkpoint.cpp.o.d"
  "/root/repo/src/nn/conv2d.cpp" "src/nn/CMakeFiles/fedvr_nn.dir/conv2d.cpp.o" "gcc" "src/nn/CMakeFiles/fedvr_nn.dir/conv2d.cpp.o.d"
  "/root/repo/src/nn/dense.cpp" "src/nn/CMakeFiles/fedvr_nn.dir/dense.cpp.o" "gcc" "src/nn/CMakeFiles/fedvr_nn.dir/dense.cpp.o.d"
  "/root/repo/src/nn/feedforward.cpp" "src/nn/CMakeFiles/fedvr_nn.dir/feedforward.cpp.o" "gcc" "src/nn/CMakeFiles/fedvr_nn.dir/feedforward.cpp.o.d"
  "/root/repo/src/nn/linear_models.cpp" "src/nn/CMakeFiles/fedvr_nn.dir/linear_models.cpp.o" "gcc" "src/nn/CMakeFiles/fedvr_nn.dir/linear_models.cpp.o.d"
  "/root/repo/src/nn/loss.cpp" "src/nn/CMakeFiles/fedvr_nn.dir/loss.cpp.o" "gcc" "src/nn/CMakeFiles/fedvr_nn.dir/loss.cpp.o.d"
  "/root/repo/src/nn/model.cpp" "src/nn/CMakeFiles/fedvr_nn.dir/model.cpp.o" "gcc" "src/nn/CMakeFiles/fedvr_nn.dir/model.cpp.o.d"
  "/root/repo/src/nn/models.cpp" "src/nn/CMakeFiles/fedvr_nn.dir/models.cpp.o" "gcc" "src/nn/CMakeFiles/fedvr_nn.dir/models.cpp.o.d"
  "/root/repo/src/nn/pool.cpp" "src/nn/CMakeFiles/fedvr_nn.dir/pool.cpp.o" "gcc" "src/nn/CMakeFiles/fedvr_nn.dir/pool.cpp.o.d"
  "/root/repo/src/nn/sequential.cpp" "src/nn/CMakeFiles/fedvr_nn.dir/sequential.cpp.o" "gcc" "src/nn/CMakeFiles/fedvr_nn.dir/sequential.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/fedvr_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/fedvr_data.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fedvr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
