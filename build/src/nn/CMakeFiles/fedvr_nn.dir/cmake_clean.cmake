file(REMOVE_RECURSE
  "CMakeFiles/fedvr_nn.dir/activation.cpp.o"
  "CMakeFiles/fedvr_nn.dir/activation.cpp.o.d"
  "CMakeFiles/fedvr_nn.dir/checkpoint.cpp.o"
  "CMakeFiles/fedvr_nn.dir/checkpoint.cpp.o.d"
  "CMakeFiles/fedvr_nn.dir/conv2d.cpp.o"
  "CMakeFiles/fedvr_nn.dir/conv2d.cpp.o.d"
  "CMakeFiles/fedvr_nn.dir/dense.cpp.o"
  "CMakeFiles/fedvr_nn.dir/dense.cpp.o.d"
  "CMakeFiles/fedvr_nn.dir/feedforward.cpp.o"
  "CMakeFiles/fedvr_nn.dir/feedforward.cpp.o.d"
  "CMakeFiles/fedvr_nn.dir/linear_models.cpp.o"
  "CMakeFiles/fedvr_nn.dir/linear_models.cpp.o.d"
  "CMakeFiles/fedvr_nn.dir/loss.cpp.o"
  "CMakeFiles/fedvr_nn.dir/loss.cpp.o.d"
  "CMakeFiles/fedvr_nn.dir/model.cpp.o"
  "CMakeFiles/fedvr_nn.dir/model.cpp.o.d"
  "CMakeFiles/fedvr_nn.dir/models.cpp.o"
  "CMakeFiles/fedvr_nn.dir/models.cpp.o.d"
  "CMakeFiles/fedvr_nn.dir/pool.cpp.o"
  "CMakeFiles/fedvr_nn.dir/pool.cpp.o.d"
  "CMakeFiles/fedvr_nn.dir/sequential.cpp.o"
  "CMakeFiles/fedvr_nn.dir/sequential.cpp.o.d"
  "libfedvr_nn.a"
  "libfedvr_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedvr_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
