# Empty compiler generated dependencies file for fedvr_nn.
# This may be replaced when dependencies are built.
