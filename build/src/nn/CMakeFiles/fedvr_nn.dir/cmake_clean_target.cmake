file(REMOVE_RECURSE
  "libfedvr_nn.a"
)
