file(REMOVE_RECURSE
  "CMakeFiles/fedvr_tensor.dir/im2col.cpp.o"
  "CMakeFiles/fedvr_tensor.dir/im2col.cpp.o.d"
  "CMakeFiles/fedvr_tensor.dir/kernels.cpp.o"
  "CMakeFiles/fedvr_tensor.dir/kernels.cpp.o.d"
  "CMakeFiles/fedvr_tensor.dir/random_init.cpp.o"
  "CMakeFiles/fedvr_tensor.dir/random_init.cpp.o.d"
  "CMakeFiles/fedvr_tensor.dir/tensor.cpp.o"
  "CMakeFiles/fedvr_tensor.dir/tensor.cpp.o.d"
  "CMakeFiles/fedvr_tensor.dir/vecops.cpp.o"
  "CMakeFiles/fedvr_tensor.dir/vecops.cpp.o.d"
  "libfedvr_tensor.a"
  "libfedvr_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedvr_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
