# Empty compiler generated dependencies file for fedvr_tensor.
# This may be replaced when dependencies are built.
