file(REMOVE_RECURSE
  "libfedvr_tensor.a"
)
