# Empty dependencies file for fedvr_util.
# This may be replaced when dependencies are built.
