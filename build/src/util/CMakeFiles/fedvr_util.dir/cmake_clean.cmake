file(REMOVE_RECURSE
  "CMakeFiles/fedvr_util.dir/csv.cpp.o"
  "CMakeFiles/fedvr_util.dir/csv.cpp.o.d"
  "CMakeFiles/fedvr_util.dir/flags.cpp.o"
  "CMakeFiles/fedvr_util.dir/flags.cpp.o.d"
  "CMakeFiles/fedvr_util.dir/log.cpp.o"
  "CMakeFiles/fedvr_util.dir/log.cpp.o.d"
  "CMakeFiles/fedvr_util.dir/rng.cpp.o"
  "CMakeFiles/fedvr_util.dir/rng.cpp.o.d"
  "CMakeFiles/fedvr_util.dir/thread_pool.cpp.o"
  "CMakeFiles/fedvr_util.dir/thread_pool.cpp.o.d"
  "libfedvr_util.a"
  "libfedvr_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fedvr_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
