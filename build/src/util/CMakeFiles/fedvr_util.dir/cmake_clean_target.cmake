file(REMOVE_RECURSE
  "libfedvr_util.a"
)
