# Empty compiler generated dependencies file for param_planner.
# This may be replaced when dependencies are built.
