file(REMOVE_RECURSE
  "CMakeFiles/param_planner.dir/param_planner.cpp.o"
  "CMakeFiles/param_planner.dir/param_planner.cpp.o.d"
  "param_planner"
  "param_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/param_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
