# Empty compiler generated dependencies file for time_to_target.
# This may be replaced when dependencies are built.
