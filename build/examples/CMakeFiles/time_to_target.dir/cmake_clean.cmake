file(REMOVE_RECURSE
  "CMakeFiles/time_to_target.dir/time_to_target.cpp.o"
  "CMakeFiles/time_to_target.dir/time_to_target.cpp.o.d"
  "time_to_target"
  "time_to_target.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/time_to_target.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
