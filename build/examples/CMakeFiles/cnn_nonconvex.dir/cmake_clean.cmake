file(REMOVE_RECURSE
  "CMakeFiles/cnn_nonconvex.dir/cnn_nonconvex.cpp.o"
  "CMakeFiles/cnn_nonconvex.dir/cnn_nonconvex.cpp.o.d"
  "cnn_nonconvex"
  "cnn_nonconvex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cnn_nonconvex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
