# Empty dependencies file for cnn_nonconvex.
# This may be replaced when dependencies are built.
