# Empty dependencies file for fig4_mu_effect.
# This may be replaced when dependencies are built.
