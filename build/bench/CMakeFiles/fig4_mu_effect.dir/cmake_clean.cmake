file(REMOVE_RECURSE
  "CMakeFiles/fig4_mu_effect.dir/fig4_mu_effect.cpp.o"
  "CMakeFiles/fig4_mu_effect.dir/fig4_mu_effect.cpp.o.d"
  "fig4_mu_effect"
  "fig4_mu_effect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_mu_effect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
