file(REMOVE_RECURSE
  "CMakeFiles/fig2_convex_fmnist.dir/fig2_convex_fmnist.cpp.o"
  "CMakeFiles/fig2_convex_fmnist.dir/fig2_convex_fmnist.cpp.o.d"
  "fig2_convex_fmnist"
  "fig2_convex_fmnist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_convex_fmnist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
