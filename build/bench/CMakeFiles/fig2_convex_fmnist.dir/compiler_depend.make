# Empty compiler generated dependencies file for fig2_convex_fmnist.
# This may be replaced when dependencies are built.
