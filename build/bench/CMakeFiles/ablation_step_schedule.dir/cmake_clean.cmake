file(REMOVE_RECURSE
  "CMakeFiles/ablation_step_schedule.dir/ablation_step_schedule.cpp.o"
  "CMakeFiles/ablation_step_schedule.dir/ablation_step_schedule.cpp.o.d"
  "ablation_step_schedule"
  "ablation_step_schedule.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_step_schedule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
