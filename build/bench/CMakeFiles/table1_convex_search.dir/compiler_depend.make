# Empty compiler generated dependencies file for table1_convex_search.
# This may be replaced when dependencies are built.
