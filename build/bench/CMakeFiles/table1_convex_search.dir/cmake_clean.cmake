file(REMOVE_RECURSE
  "CMakeFiles/table1_convex_search.dir/table1_convex_search.cpp.o"
  "CMakeFiles/table1_convex_search.dir/table1_convex_search.cpp.o.d"
  "table1_convex_search"
  "table1_convex_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_convex_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
