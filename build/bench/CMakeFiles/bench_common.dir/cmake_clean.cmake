file(REMOVE_RECURSE
  "../lib/libbench_common.a"
  "../lib/libbench_common.pdb"
  "CMakeFiles/bench_common.dir/common/ascii_chart.cpp.o"
  "CMakeFiles/bench_common.dir/common/ascii_chart.cpp.o.d"
  "CMakeFiles/bench_common.dir/common/experiment_util.cpp.o"
  "CMakeFiles/bench_common.dir/common/experiment_util.cpp.o.d"
  "CMakeFiles/bench_common.dir/common/random_search.cpp.o"
  "CMakeFiles/bench_common.dir/common/random_search.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
