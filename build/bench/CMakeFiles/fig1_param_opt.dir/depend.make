# Empty dependencies file for fig1_param_opt.
# This may be replaced when dependencies are built.
