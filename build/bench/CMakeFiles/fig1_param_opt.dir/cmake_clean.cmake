file(REMOVE_RECURSE
  "CMakeFiles/fig1_param_opt.dir/fig1_param_opt.cpp.o"
  "CMakeFiles/fig1_param_opt.dir/fig1_param_opt.cpp.o.d"
  "fig1_param_opt"
  "fig1_param_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_param_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
