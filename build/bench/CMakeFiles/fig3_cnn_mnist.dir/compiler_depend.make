# Empty compiler generated dependencies file for fig3_cnn_mnist.
# This may be replaced when dependencies are built.
