file(REMOVE_RECURSE
  "CMakeFiles/fig3_cnn_mnist.dir/fig3_cnn_mnist.cpp.o"
  "CMakeFiles/fig3_cnn_mnist.dir/fig3_cnn_mnist.cpp.o.d"
  "fig3_cnn_mnist"
  "fig3_cnn_mnist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_cnn_mnist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
