# Empty dependencies file for ablation_estimator_variance.
# This may be replaced when dependencies are built.
