file(REMOVE_RECURSE
  "CMakeFiles/ablation_estimator_variance.dir/ablation_estimator_variance.cpp.o"
  "CMakeFiles/ablation_estimator_variance.dir/ablation_estimator_variance.cpp.o.d"
  "ablation_estimator_variance"
  "ablation_estimator_variance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_estimator_variance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
