# Empty compiler generated dependencies file for ablation_theorem1_bound.
# This may be replaced when dependencies are built.
