file(REMOVE_RECURSE
  "CMakeFiles/ablation_theorem1_bound.dir/ablation_theorem1_bound.cpp.o"
  "CMakeFiles/ablation_theorem1_bound.dir/ablation_theorem1_bound.cpp.o.d"
  "ablation_theorem1_bound"
  "ablation_theorem1_bound.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_theorem1_bound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
