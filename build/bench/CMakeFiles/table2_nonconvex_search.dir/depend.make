# Empty dependencies file for table2_nonconvex_search.
# This may be replaced when dependencies are built.
