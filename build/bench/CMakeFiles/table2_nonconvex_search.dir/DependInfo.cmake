
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/table2_nonconvex_search.cpp" "bench/CMakeFiles/table2_nonconvex_search.dir/table2_nonconvex_search.cpp.o" "gcc" "bench/CMakeFiles/table2_nonconvex_search.dir/table2_nonconvex_search.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/fedvr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/fl/CMakeFiles/fedvr_fl.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/fedvr_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/theory/CMakeFiles/fedvr_theory.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/fedvr_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/fedvr_data.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/fedvr_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fedvr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
