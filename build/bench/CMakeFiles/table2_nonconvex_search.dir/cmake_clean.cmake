file(REMOVE_RECURSE
  "CMakeFiles/table2_nonconvex_search.dir/table2_nonconvex_search.cpp.o"
  "CMakeFiles/table2_nonconvex_search.dir/table2_nonconvex_search.cpp.o.d"
  "table2_nonconvex_search"
  "table2_nonconvex_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_nonconvex_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
