file(REMOVE_RECURSE
  "CMakeFiles/ablation_lemma1_bounds.dir/ablation_lemma1_bounds.cpp.o"
  "CMakeFiles/ablation_lemma1_bounds.dir/ablation_lemma1_bounds.cpp.o.d"
  "ablation_lemma1_bounds"
  "ablation_lemma1_bounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_lemma1_bounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
