#!/usr/bin/env python3
"""Run the micro_kernels benchmark binary and snapshot results as JSON.

Produces BENCH_kernels.json at the repo root (or --out): a trimmed,
stable-ordered subset of google-benchmark's JSON output plus build context,
suitable for committing as a performance baseline and diffing across PRs.

Usage:
    python3 tools/bench_json.py --binary build/bench/micro_kernels
    python3 tools/bench_json.py --binary ... --min-time 0.01 --out /tmp/b.json
"""

import argparse
import json
import pathlib
import subprocess
import sys


def run_benchmark(binary: pathlib.Path, min_time: float,
                  benchmark_filter: str) -> dict:
    cmd = [
        str(binary),
        "--benchmark_format=json",
        # Old libbenchmark releases parse min_time with stod, so a plain
        # float string (no "s" suffix) works everywhere.
        f"--benchmark_min_time={min_time:g}",
    ]
    if benchmark_filter:
        cmd.append(f"--benchmark_filter={benchmark_filter}")
    proc = subprocess.run(cmd, stdout=subprocess.PIPE, check=True)
    return json.loads(proc.stdout)


def summarize(raw: dict) -> dict:
    ctx = raw.get("context", {})
    rows = []
    for b in raw.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        row = {
            "name": b["name"],
            "real_time_ns": round(b["real_time"], 1),
            "cpu_time_ns": round(b["cpu_time"], 1),
            "iterations": b["iterations"],
        }
        # The *_ns keys are literal only for ns-unit benchmarks; ms-unit
        # ones (micro_rounds) carry their unit explicitly.
        if b.get("time_unit", "ns") != "ns":
            row["time_unit"] = b["time_unit"]
        if "items_per_second" in b:
            # items == FLOPs for the GEMM benchmarks, so this is FLOP/s.
            row["items_per_second"] = round(b["items_per_second"], 1)
        if "bytes_per_second" in b:
            # Serialization benchmarks report input throughput in bytes/s.
            row["bytes_per_second"] = round(b["bytes_per_second"], 1)
        # Round-throughput counters (micro_rounds): device activations/s,
        # local solver updates/s, and arena heap events per round (the
        # zero-allocation steady-state observable — expected ~0).
        for key in ("devices_per_second", "updates_per_second",
                    "allocs_per_round"):
            if key in b:
                row[key] = round(b[key], 2)
        if b.get("label"):
            row["label"] = b["label"]
        rows.append(row)
    rows.sort(key=lambda r: r["name"])
    return {
        "context": {
            "host_name": ctx.get("host_name", ""),
            "num_cpus": ctx.get("num_cpus", 0),
            "mhz_per_cpu": ctx.get("mhz_per_cpu", 0),
            "library_build_type": ctx.get("library_build_type", ""),
        },
        "benchmarks": rows,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--binary", required=True, type=pathlib.Path,
                        help="path to the built micro_kernels executable")
    parser.add_argument("--out", type=pathlib.Path,
                        default=pathlib.Path(__file__).resolve().parent.parent
                        / "BENCH_kernels.json",
                        help="output JSON path (default: repo root)")
    parser.add_argument("--min-time", type=float, default=0.1,
                        help="--benchmark_min_time per benchmark, seconds")
    parser.add_argument("--filter", default="",
                        help="optional --benchmark_filter regex")
    args = parser.parse_args()

    if not args.binary.exists():
        print(f"error: benchmark binary not found: {args.binary}",
              file=sys.stderr)
        return 1
    raw = run_benchmark(args.binary, args.min_time, args.filter)
    summary = summarize(raw)
    args.out.write_text(json.dumps(summary, indent=2) + "\n")
    print(f"wrote {args.out} ({len(summary['benchmarks'])} benchmarks)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
