#!/usr/bin/env python3
"""Textual lint rules that need no parse: include hygiene + NOLINT policy.

Run from the repository root (CI does):  python3 tools/lint.py
Catalog:                                 python3 tools/lint.py --list-rules

Semantic rules (no-std-rand, no-naked-new, aggregation-in-seam,
compression-in-seam, and the determinism/concurrency invariants) moved
to the token/AST analyzer — `python3 tools/analyze` (fedvr-analyze) —
which matches call expressions instead of regexes and so stopped the
false-positive classes a line regex cannot avoid (identifiers containing
'new', compress() on non-Compressor types, ...). What stays here is
exactly what a *line* can decide without a parse:

  no-iostream-in-headers
                    <iostream> in a header pulls the global ios_base::Init
                    static into every TU and invites debug-print creep;
                    headers stream into std::ostream& or util::log instead.

  headers-obs-free  Outside src/obs/, headers must not include obs headers.
                    Observability is an implementation detail of .cpp files
                    (thread_pool.cpp, trainer.cpp): keeping it out of
                    interfaces means -DFEDVR_OBS_DISABLED rebuilds touch
                    only leaf objects, and no public API depends on it.

  nolint-needs-reason
                    clang-tidy suppressions must be scoped and justified:
                    `NOLINT(check-name) -- why` (or NOLINTNEXTLINE /
                    NOLINTBEGIN). A bare NOLINT silences *every* check on
                    the line forever and reviews cannot tell why it is
                    there. Same policy as the analyzer's lint:allow tags.

False positives are silenced with `// lint:allow(<rule>) <why>` on the
offending line or the line directly above it — the justification is
mandatory and shows up in review.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"

HEADER_SUFFIXES = {".h", ".hpp"}
CPP_SUFFIXES = {".h", ".hpp", ".cpp", ".cc"}

ALLOW = re.compile(r"//\s*lint:allow\(([a-z-]+)\)\s+\S")

# NOLINT with a (check) scope and a trailing justification is fine;
# anything else NOLINT-shaped is a violation.
NOLINT_ANY = re.compile(r"\bNOLINT(NEXTLINE|BEGIN|END)?\b")
NOLINT_JUSTIFIED = re.compile(
    r"\bNOLINT(?:NEXTLINE|BEGIN)?\([\w.-]+(?:\s*,\s*[\w.-]+)*\)\s*--\s*\S"
    r"|\bNOLINTEND\b")

# (rule, pattern, file-filter, message)
RULES = [
    (
        "no-iostream-in-headers",
        re.compile(r'#\s*include\s*<iostream>'),
        lambda p: p.suffix in HEADER_SUFFIXES,
        "headers must not include <iostream>; take a std::ostream& "
        "or use util/log.h",
    ),
    (
        "headers-obs-free",
        re.compile(r'#\s*include\s*"obs/'),
        lambda p: p.suffix in HEADER_SUFFIXES
        and (SRC / "obs") not in p.parents,
        "observability stays out of interfaces: include obs/ headers "
        "from .cpp files only",
    ),
    (
        "nolint-needs-reason",
        NOLINT_ANY,
        lambda p: True,
        "NOLINT must name its check and reason: "
        "`NOLINT(check-name) -- why` (NOLINTEND closes a justified "
        "NOLINTBEGIN and needs no reason of its own)",
    ),
]

def lint_file(path: Path) -> list[str]:
    errors = []
    rel = path.relative_to(REPO)
    prev_allow = None
    for lineno, raw in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        allow = ALLOW.search(raw) or prev_allow
        prev_allow = ALLOW.search(raw)
        for rule, pattern, applies, message in RULES:
            if not applies(path):
                continue
            # Every remaining rule targets directives or comments, so the
            # raw line is the haystack (no comment/string stripping).
            if not pattern.search(raw):
                continue
            if rule == "nolint-needs-reason" and NOLINT_JUSTIFIED.search(raw):
                continue
            if allow and allow.group(1) == rule:
                continue
            errors.append(f"{rel}:{lineno}: [{rule}] {message}")
    return errors


def list_rules() -> str:
    width = max(len(rule) for rule, *_ in RULES)
    return "\n".join(f"{rule.ljust(width)}  {message}"
                     for rule, _, _, message in RULES)


def main() -> int:
    if "--list-rules" in sys.argv[1:]:
        print(list_rules())
        return 0
    files = sorted(
        p
        for p in SRC.rglob("*")
        if p.suffix in CPP_SUFFIXES and p.is_file()
    )
    if not files:
        print("tools/lint.py: no sources found under src/", file=sys.stderr)
        return 2
    errors = []
    for path in files:
        errors.extend(lint_file(path))
    for e in errors:
        print(e)
    print(
        f"tools/lint.py: {len(files)} files checked, "
        f"{len(errors)} violation(s)"
    )
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
