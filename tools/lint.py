#!/usr/bin/env python3
"""Project-specific lint rules that clang-tidy cannot express.

Run from the repository root (CI does):  python3 tools/lint.py

Rules, each tied to a repo invariant:

  no-std-rand       std::rand / srand / std::random_device outside
                    src/util/rng.*: every random draw must flow through
                    util::Rng so runs are reproducible from one seed (the
                    determinism test hashes parameter vectors on exactly
                    this assumption).

  no-iostream-in-headers
                    <iostream> in a header pulls the global ios_base::Init
                    static into every TU and invites debug-print creep;
                    headers stream into std::ostream& or util::log instead.

  headers-obs-free  Outside src/obs/, headers must not include obs headers.
                    Observability is an implementation detail of .cpp files
                    (thread_pool.cpp, trainer.cpp): keeping it out of
                    interfaces means -DFEDVR_OBS_DISABLED rebuilds touch
                    only leaf objects, and no public API depends on it.

  no-naked-new      `new` / `delete` outside make_unique/make_shared: all
                    ownership in this codebase is RAII (unique_ptr /
                    vector); a naked new is either a leak or a smell.

  aggregation-in-seam
                    tensor::accumulate_weighted — the line-12 weighted-
                    average primitive — outside src/fl/aggregation.* (or its
                    definition in src/tensor/vecops.*): server-side update
                    aggregation must flow through the fl::Aggregator seam so
                    the Byzantine defenses (rejection, quarantine, robust
                    rules) cannot be bypassed by a hand-rolled average.

  compression-in-seam
                    Compressor::compress() calls outside src/comm/: uplink
                    compression must flow through comm::Channel, which owns
                    the error-feedback recursion and measures wire bytes
                    from serialized messages. A raw compress() call silently
                    drops both (the convergence fix AND the accounting).

False positives are silenced with `// lint:allow(<rule>) <why>` on the
offending line or the line directly above it — the justification is
mandatory and shows up in review.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"

HEADER_SUFFIXES = {".h", ".hpp"}
CPP_SUFFIXES = {".h", ".hpp", ".cpp", ".cc"}

ALLOW = re.compile(r"//\s*lint:allow\(([a-z-]+)\)\s+\S")

# (rule, pattern, file-filter, message)
RULES = [
    (
        "no-std-rand",
        re.compile(r"\b(std::rand\b|std::srand\b|\bsrand\s*\(|std::random_device\b)"),
        lambda p: not (p.parent == SRC / "util" and p.stem == "rng"),
        "random draws must go through util::Rng (seeded, fork-able) "
        "so training runs stay reproducible",
    ),
    (
        "no-iostream-in-headers",
        re.compile(r'#\s*include\s*<iostream>'),
        lambda p: p.suffix in HEADER_SUFFIXES,
        "headers must not include <iostream>; take a std::ostream& "
        "or use util/log.h",
    ),
    (
        "headers-obs-free",
        re.compile(r'#\s*include\s*"obs/'),
        lambda p: p.suffix in HEADER_SUFFIXES
        and (SRC / "obs") not in p.parents,
        "observability stays out of interfaces: include obs/ headers "
        "from .cpp files only",
    ),
    (
        "no-naked-new",
        re.compile(r"(?<![:\w])new\s+[A-Za-z_:][\w:<>, ]*[({\[]|\bdelete\s+\w|\bdelete\[\]"),
        lambda p: True,
        "no naked new/delete; use std::make_unique / std::make_shared "
        "or a container",
    ),
    (
        "aggregation-in-seam",
        re.compile(r"\baccumulate_weighted\b"),
        lambda p: not (
            (p.parent == SRC / "fl" and p.stem == "aggregation")
            or (p.parent == SRC / "tensor" and p.stem == "vecops")
        ),
        "line-12 weighted averaging belongs behind the fl::Aggregator seam "
        "(src/fl/aggregation.*); hand-rolled averages bypass the server's "
        "Byzantine defenses",
    ),
    (
        "compression-in-seam",
        re.compile(r"(\.|->)\s*compress\s*\("),
        lambda p: (SRC / "comm") not in p.parents and p.parent != SRC / "comm",
        "uplink compression belongs behind the comm::Channel seam "
        "(src/comm/channel.*): a raw Compressor::compress() call skips "
        "error feedback and the measured wire-byte accounting",
    ),
]

COMMENT_OR_STRING = re.compile(r'//.*$|"(?:[^"\\]|\\.)*"')


def strippable(line: str) -> str:
    """Blanks out comments and string literals so rules match only code."""
    return COMMENT_OR_STRING.sub(lambda m: " " * len(m.group(0)), line)


def lint_file(path: Path) -> list[str]:
    errors = []
    rel = path.relative_to(REPO)
    prev_allow = None
    for lineno, raw in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        allow = ALLOW.search(raw) or prev_allow
        prev_allow = ALLOW.search(raw)
        code = strippable(raw)
        for rule, pattern, applies, message in RULES:
            if not applies(path):
                continue
            # Include rules must look at the raw line (the pattern IS the
            # directive); code rules look at comment/string-stripped text.
            haystack = raw if pattern.pattern.startswith("#") else code
            if not pattern.search(haystack):
                continue
            if allow and allow.group(1) == rule:
                continue
            errors.append(f"{rel}:{lineno}: [{rule}] {message}")
    return errors


def main() -> int:
    files = sorted(
        p
        for p in SRC.rglob("*")
        if p.suffix in CPP_SUFFIXES and p.is_file()
    )
    if not files:
        print("tools/lint.py: no sources found under src/", file=sys.stderr)
        return 2
    errors = []
    for path in files:
        errors.extend(lint_file(path))
    for e in errors:
        print(e)
    print(
        f"tools/lint.py: {len(files)} files checked, "
        f"{len(errors)} violation(s)"
    )
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
