"""fedvr-analyze command line.

Local invocation (from the repo root):

    python3 tools/analyze                        # scan src/ (token or clang)
    python3 tools/analyze --compdb build/compile_commands.json
    python3 tools/analyze --list-rules
    python3 tools/analyze --json findings.json   # machine-readable output

Exit codes: 0 clean, 1 findings, 2 usage/infrastructure error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from . import clang_frontend, rules, token_frontend
from .baseline import Baseline
from .compdb import CompDB
from .facts import Finding

SOURCE_SUFFIXES = {".h", ".hpp", ".cpp", ".cc"}


def _gather_files(root: Path, paths: list[str],
                  excludes: list[str]) -> list[Path]:
    out: list[Path] = []
    for p in paths:
        base = (root / p) if not Path(p).is_absolute() else Path(p)
        if base.is_file():
            out.append(base)
        elif base.is_dir():
            out.extend(sorted(
                f for f in base.rglob("*")
                if f.is_file() and f.suffix in SOURCE_SUFFIXES))
        else:
            print(f"fedvr-analyze: no such path: {base}", file=sys.stderr)
    def excluded(f: Path) -> bool:
        rel = f.relative_to(root).as_posix() if f.is_relative_to(root) else str(f)
        return any(rel == e or rel.startswith(e.rstrip("/") + "/")
                   for e in excludes)
    return [f for f in out if not excluded(f)]


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(
        prog="fedvr-analyze",
        description="AST/token-level determinism & concurrency analysis "
                    "for the fedvr sources")
    ap.add_argument("--root", type=Path, default=None,
                    help="repository root (default: two levels up from "
                         "this package)")
    ap.add_argument("--paths", nargs="*", default=["src"],
                    help="files or directories to scan, relative to --root "
                         "(default: src)")
    ap.add_argument("--exclude", action="append", default=[],
                    help="root-relative path prefix to skip (repeatable)")
    ap.add_argument("--compdb", type=Path, default=None,
                    help="compile_commands.json (used by the clang frontend "
                         "for per-TU flags; optional for the token frontend)")
    ap.add_argument("--frontend", choices=["auto", "token", "clang"],
                    default="auto",
                    help="auto prefers libclang when clang.cindex + a "
                         "loadable libclang exist, else token (default)")
    ap.add_argument("--baseline", type=Path, default=None,
                    help="suppression baseline JSON (default: "
                         "tools/analyze/baseline.json under --root)")
    ap.add_argument("--write-baseline", action="store_true",
                    help="write the current findings to the baseline file "
                         "and exit 0")
    ap.add_argument("--json", type=Path, default=None, metavar="OUT",
                    help="also write findings as JSON to OUT")
    ap.add_argument("--list-rules", action="store_true",
                    help="print the rule catalog and exit")
    args = ap.parse_args(argv)

    if args.list_rules:
        print(rules.list_rules())
        return 0

    root = (args.root or Path(__file__).resolve().parent.parent.parent).resolve()
    baseline_path = args.baseline or root / "tools" / "analyze" / "baseline.json"

    frontend = args.frontend
    if frontend == "auto":
        frontend = "clang" if clang_frontend.available() else "token"
    if frontend == "clang" and not clang_frontend.available():
        print("fedvr-analyze: --frontend clang requested but clang.cindex/"
              "libclang is unavailable", file=sys.stderr)
        return 2

    compdb = None
    if args.compdb is not None:
        if args.compdb.exists():
            compdb = CompDB.load(args.compdb)
        else:
            print(f"fedvr-analyze: warning: no compilation database at "
                  f"{args.compdb}; falling back to a plain source walk",
                  file=sys.stderr)

    files = _gather_files(root, args.paths, args.exclude)
    if not files:
        print("fedvr-analyze: no sources found", file=sys.stderr)
        return 2

    findings: list[Finding] = []
    scanned = 0
    for f in files:
        rel = f.relative_to(root).as_posix() if f.is_relative_to(root) else f.as_posix()
        try:
            text = f.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as e:
            print(f"fedvr-analyze: cannot read {rel}: {e}", file=sys.stderr)
            return 2
        if frontend == "clang":
            parse_args = compdb.args_for(f) if compdb else None
            try:
                ff = clang_frontend.extract(rel, text, f, parse_args)
            except clang_frontend.FrontendUnavailable as e:
                print(f"fedvr-analyze: clang frontend failed ({e}); "
                      "re-run with --frontend token", file=sys.stderr)
                return 2
        else:
            ff = token_frontend.extract(rel, text)
        findings.extend(rules.evaluate(ff))
        scanned += 1

    # Nested expressions (Rng(fork(...))) can surface the same hazard
    # through more than one fact; one report per (rule, file, line).
    findings = sorted({(x.rule, x.file, x.line): x for x in findings}.values(),
                      key=lambda x: (x.file, x.line, x.rule))

    if args.write_baseline:
        Baseline.write(baseline_path, root, findings)
        print(f"fedvr-analyze: wrote {len(findings)} baseline entr"
              f"{'y' if len(findings) == 1 else 'ies'} to {baseline_path}")
        return 0

    baseline = Baseline.load(baseline_path)
    reported = baseline.filter(root, findings)
    suppressed = len(findings) - len(reported)

    if args.json is not None:
        args.json.write_text(json.dumps({
            "frontend": frontend,
            "scanned": scanned,
            "findings": [
                {"rule": x.rule, "file": x.file, "line": x.line,
                 "message": x.message} for x in reported],
            "baselined": suppressed,
        }, indent=2) + "\n", encoding="utf-8")

    for x in reported:
        print(x.render())
    print(f"fedvr-analyze [{frontend}]: {scanned} files scanned, "
          f"{len(reported)} finding(s)"
          + (f", {suppressed} baselined" if suppressed else ""))
    return 1 if reported else 0
