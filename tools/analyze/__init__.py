"""fedvr-analyze: AST/token-level determinism & concurrency analysis.

The repo's headline guarantee — runs are bit-identical across thread-pool
sizes from a single seed — is enforced at three layers:

  1. runtime hash regressions (tests/check/determinism_test.cpp),
  2. textual lint for header hygiene (tools/lint.py),
  3. this package: structural analysis of the sources, driven by
     compile_commands.json, that catches determinism hazards *before*
     they reach a hash mismatch.

Two frontends produce one shared fact stream (tools/analyze/facts.py):

  * clang_frontend — libclang via the `clang.cindex` Python bindings,
    used when the bindings and a loadable libclang are present.
  * token_frontend — a self-contained C++ lexer + scope/decl tracker,
    always available; the reference implementation the fixture suite
    pins down.

Rules live in rules.py; the CLI in cli.py.  Run `python3 tools/analyze
--list-rules` for the catalog, and see DESIGN.md §14 for the rationale
behind each invariant and the suppression policy.
"""

__version__ = "1.0"
