"""Token/scope frontend: extracts facts.py facts from lexed C++.

Always available (pure Python, no libclang), and the reference
implementation the fixture suite in tests/tools/ pins down. The
heuristics are deliberately conservative and documented per rule in
DESIGN.md §14; structural blind spots (writes hidden behind function
calls, lambdas stored in std::function members) are listed there too.
"""

from __future__ import annotations

import re

from . import lexer
from .facts import (
    BannedUseFact,
    FileFacts,
    FpAccumulationFact,
    HotLoopAllocFact,
    ParallelWriteFact,
    RngSeedFact,
    UnorderedIterationFact,
    WallclockFact,
)
from .lexer import Tok, match_backward, match_forward, split_top_level

ALLOW_RE = re.compile(r"//\s*lint:allow\(([a-z0-9-]+)\)\s+\S")

# Entry points whose lambda arguments run concurrently. for_each_device is
# the repo's local wrapper in src/core/proxskip.cpp that forwards to
# ThreadPool::parallel_for.
PARALLEL_ENTRY_NAMES = {"parallel_for", "parallel_ranges", "submit", "for_each_device"}

# Ambient-time sources. The *_clock names fire on any use (they are type
# names); the function-style names require a following "(".
WALLCLOCK_TYPE_NAMES = {"system_clock", "steady_clock", "high_resolution_clock"}
WALLCLOCK_FN_NAMES = {
    "time", "clock", "clock_gettime", "gettimeofday", "timespec_get",
    "localtime", "gmtime", "mktime", "difftime",
}

# Container growth calls that may allocate; inside a hot-path loop body
# they should be hoisted into a reused workspace buffer instead.
GROWTH_CALL_NAMES = {"resize", "push_back", "emplace_back"}

# Identifiers that must never appear in a (seed, device, round, stream)
# derivation: wall time, addresses, or ambient randomness.
RNG_BANNED_ATOMS = {
    "time", "clock", "now", "rand", "random_device", "gettimeofday",
    "this", "reinterpret_cast", "uintptr_t", "intptr_t",
    "system_clock", "steady_clock", "high_resolution_clock",
}

_TYPE_KEYWORDS = {
    "auto", "double", "float", "bool", "int", "long", "short", "unsigned",
    "signed", "char", "size_t", "uint64_t", "int64_t", "uint32_t", "int32_t",
    "uint8_t", "ptrdiff_t",
}

_ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^="}


class _Loop:
    __slots__ = ("kind", "vars", "header", "body", "line")

    def __init__(self, kind: str, vars_: set[str], header: tuple[int, int],
                 body: tuple[int, int], line: int):
        self.kind = kind      # "range" | "indexed"
        self.vars = vars_
        self.header = header  # token index range of the for(...) header
        self.body = body      # token index range of the loop body
        self.line = line


class _Lambda:
    __slots__ = ("start", "body", "cap_default", "ref_caps", "val_caps",
                 "caps_this", "params", "line")

    def __init__(self):
        self.start = -1
        self.body = (0, 0)
        self.cap_default = ""   # "&", "=", or ""
        self.ref_caps: set[str] = set()
        self.val_caps: set[str] = set()
        self.caps_this = False
        self.params: set[str] = set()
        self.line = 0


def extract(path: str, text: str) -> FileFacts:
    toks, comments = lexer.lex(text)
    ff = FileFacts(path=path)
    for c in comments:
        m = ALLOW_RE.search(c.text)
        if m:
            ff.allows[c.line] = m.group(1)
    sc = _Scanner(toks)
    ff.facts = sc.run()
    return ff


class _Scanner:
    def __init__(self, toks: list[Tok]):
        self.toks = toks
        self.n = len(toks)
        self.facts = []
        self.fp_scalars: set[str] = set()
        self.fp_arrays: set[str] = set()
        self.unordered_vars: set[str] = set()
        self.atomic_vars: set[str] = set()
        self.loops: list[_Loop] = []
        self.lambda_defs: dict[str, _Lambda] = {}
        self.reserved_vars: set[str] = set()

    # ---------------------------------------------------------------- decls
    def _collect_decls(self) -> None:
        toks = self.toks
        for i, t in enumerate(toks):
            if t.kind != "id":
                continue
            if t.text in ("double", "float"):
                j = i + 1
                # `double x`, `double& x`, `const double* x` — skip refs.
                while j < self.n and toks[j].text in ("&", "*", "const"):
                    j += 1
                if j < self.n and toks[j].kind == "id":
                    self.fp_scalars.add(toks[j].text)
            elif t.text in ("vector", "span", "array", "unordered_map",
                            "unordered_set", "atomic"):
                j = i + 1
                if j >= self.n or toks[j].text != "<":
                    continue
                close = self._match_angle(j)
                if close < 0:
                    continue
                inner = {x.text for x in toks[j : close + 1]}
                k = close + 1
                while k < self.n and toks[k].text in ("&", "*", "const"):
                    k += 1
                if k >= self.n or toks[k].kind != "id":
                    continue
                name = toks[k].text
                if t.text in ("unordered_map", "unordered_set"):
                    self.unordered_vars.add(name)
                elif t.text == "atomic":
                    self.atomic_vars.add(name)
                elif "double" in inner or "float" in inner:
                    self.fp_arrays.add(name)

    def _match_angle(self, i: int) -> int:
        """toks[i] == '<'; match the closing '>' treating '>>' as two."""
        depth = 0
        for j in range(i, min(self.n, i + 256)):
            t = self.toks[j].text
            if t == "<":
                depth += 1
            elif t == ">":
                depth -= 1
                if depth == 0:
                    return j
            elif t == ">>":
                depth -= 2
                if depth <= 0:
                    return j
            elif t in (";", "{"):
                return -1
        return -1

    # ---------------------------------------------------------------- loops
    def _collect_loops(self) -> None:
        toks = self.toks
        for i, t in enumerate(toks):
            if t.text != "for" or t.kind != "id":
                continue
            if i + 1 >= self.n or toks[i + 1].text != "(":
                continue
            close = match_forward(toks, i + 1, "(", ")")
            if close >= self.n:
                continue
            header = (i + 2, close)
            body = self._statement_after(close + 1)
            colon = self._top_level_colon(header)
            if colon >= 0:
                var = ""
                for j in range(colon - 1, header[0] - 1, -1):
                    if toks[j].kind == "id":
                        var = toks[j].text
                        break
                self.loops.append(
                    _Loop("range", {var} if var else set(), header, body, t.line))
            else:
                vars_: set[str] = set()
                semi = header[0]
                while semi < header[1] and toks[semi].text != ";":
                    semi += 1
                for j in range(header[0], semi):
                    if (toks[j].kind == "id" and j + 1 < self.n
                            and toks[j + 1].text in ("=", "{")):
                        vars_.add(toks[j].text)
                self.loops.append(_Loop("indexed", vars_, header, body, t.line))

    def _top_level_colon(self, header: tuple[int, int]) -> int:
        depth = 0
        for j in range(header[0], header[1]):
            t = self.toks[j].text
            if t in ("(", "[", "{"):
                depth += 1
            elif t in (")", "]", "}"):
                depth -= 1
            elif t == ":" and depth == 0:
                return j
            elif t == "?" and depth == 0:
                return -1  # ternary in a classic-for condition
        return -1

    def _statement_after(self, i: int) -> tuple[int, int]:
        """Body token range starting at i: a {...} block or one statement."""
        if i < self.n and self.toks[i].text == "{":
            return (i + 1, match_forward(self.toks, i, "{", "}"))
        depth = 0
        for j in range(i, self.n):
            t = self.toks[j].text
            if t in ("(", "[", "{"):
                depth += 1
            elif t in (")", "]", "}"):
                depth -= 1
            elif t == ";" and depth == 0:
                return (i, j)
        return (i, self.n)

    def _enclosing_loops(self, idx: int) -> list[_Loop]:
        """Innermost-first list of loops whose body contains token idx."""
        out = [lp for lp in self.loops if lp.body[0] <= idx < lp.body[1]]
        out.sort(key=lambda lp: lp.body[1] - lp.body[0])
        return out

    # -------------------------------------------------------------- lambdas
    def _parse_lambda(self, i: int) -> _Lambda | None:
        """toks[i] == '[' opening a capture list; returns None if this is
        not a lambda (subscript etc.)."""
        toks = self.toks
        close = match_forward(toks, i, "[", "]")
        if close >= self.n:
            return None
        lam = _Lambda()
        lam.start = i
        lam.line = toks[i].line
        for lo, hi in split_top_level(toks, i + 1, close, ","):
            seg = [toks[j].text for j in range(lo, hi)]
            if not seg:
                continue
            if seg == ["&"]:
                lam.cap_default = "&"
            elif seg == ["="]:
                lam.cap_default = "="
            elif seg[0] == "&" and len(seg) >= 2:
                lam.ref_caps.add(seg[-1])
            elif seg == ["this"] or seg[0] == "*":
                lam.caps_this = True
            else:
                lam.val_caps.add(seg[-1])
        j = close + 1
        if j < self.n and toks[j].text == "(":
            pclose = match_forward(toks, j, "(", ")")
            for lo, hi in split_top_level(toks, j + 1, pclose, ","):
                for k in range(hi - 1, lo - 1, -1):
                    if toks[k].kind == "id":
                        lam.params.add(toks[k].text)
                        break
            j = pclose + 1
        # Skip specifiers (mutable, noexcept, -> ret) up to the body.
        while j < self.n and toks[j].text != "{":
            if toks[j].text in (";", ")", ","):
                return None  # `[i]` subscript or array literal — not a lambda
            j += 1
        if j >= self.n:
            return None
        lam.body = (j + 1, match_forward(toks, j, "{", "}"))
        return lam

    def _collect_lambda_defs(self) -> None:
        """`auto name = [caps](params){...};` → name → lambda."""
        toks = self.toks
        for i in range(self.n - 2):
            if (toks[i].kind == "id" and toks[i + 1].text == "="
                    and toks[i + 2].text == "["):
                lam = self._parse_lambda(i + 2)
                if lam is not None:
                    self.lambda_defs[toks[i].text] = lam

    def _lambda_writes(self, lam: _Lambda, entry: str) -> None:
        """Emits ParallelWriteFact for suspicious writes in `lam`'s body."""
        toks = self.toks
        body_locals: set[str] = set(lam.params)
        lo, hi = lam.body
        # Loop variables of loops nested in the body are per-invocation
        # state too (range-for refs like `for (auto& i : idx)` have no
        # `type id =` shape for the decl scan below to catch).
        for lp in self.loops:
            if lo <= lp.header[0] and lp.header[1] <= hi:
                body_locals |= lp.vars
        for k in range(lo, hi):
            op = toks[k].text
            if toks[k].kind != "punct":
                continue
            if op in ("++", "--"):
                # ++x / x++ / ++arr[i]
                tgt, sub, chain_start = None, None, -1
                if k + 1 < hi and toks[k + 1].kind == "id":
                    tgt, chain_start = toks[k + 1].text, k + 1
                elif toks[k - 1].kind == "id":
                    tgt, chain_start = toks[k - 1].text, k - 1
                elif toks[k - 1].text == "]":
                    tgt, sub, chain_start = self._lhs_chain(k)
                if tgt is None:
                    continue
                self._classify_write(lam, entry, toks[k].line, tgt, sub,
                                     body_locals)
                continue
            if op not in _ASSIGN_OPS:
                continue
            tgt, sub, chain_start = self._lhs_chain(k)
            if tgt is None:
                continue
            # Declaration with initializer (`double t = ...`): the token
            # before the chain is part of a type. Record as body-local.
            prev = toks[chain_start - 1] if chain_start > 0 else None
            if prev is not None and sub is None and (
                    prev.text in _TYPE_KEYWORDS or prev.text in ("&", "*", ">")
                    or (prev.kind == "id" and prev.text not in ("return",))):
                if op == "=" and (prev.text in _TYPE_KEYWORDS
                                  or prev.text in ("&", "*", ">")):
                    body_locals.add(tgt)
                    continue
                if op == "=" and prev.kind == "id" and chain_start >= 2 and \
                        toks[chain_start - 2].text in _TYPE_KEYWORDS | {"::", "const", ">", "&", "*"}:
                    # `std::size_t lo = ...`, `const std::size_t len = ...`
                    body_locals.add(tgt)
                    continue
            self._classify_write(lam, entry, toks[k].line, tgt, sub,
                                 body_locals)
        # Loop variables declared in for-headers inside the body count as
        # locals too (handled above via the `type id =` pattern since the
        # header tokens are in the body range only for nested loops — the
        # for-init decl matches the same `type id =` shape).

    def _member_base(self, i: int) -> str:
        """Base identifier of the postfix chain before a `.member` /
        `->member` token at i (`locals[device].resize` → "locals")."""
        j = i - 2
        while j >= 0:
            t = self.toks[j]
            if t.text == "]":
                open_ = match_backward(self.toks, j, "[", "]")
                if open_ < 0:
                    return ""
                j = open_ - 1
            elif t.kind == "id":
                if j >= 1 and self.toks[j - 1].text in (".", "->", "::"):
                    j -= 2
                    continue
                return t.text
            else:
                return ""
        return ""

    def _collect_reserved(self) -> None:
        """Containers reserve()d anywhere in the file: push_back on them
        is amortized-allocation-free, so the hot-loop rule exempts it."""
        for i, t in enumerate(self.toks):
            if (t.text == "reserve" and i >= 2
                    and self.toks[i - 1].text in (".", "->")
                    and i + 1 < self.n and self.toks[i + 1].text == "("):
                base = self._member_base(i)
                if base:
                    self.reserved_vars.add(base)

    def _lhs_chain(self, k: int):
        """Walks back from the assignment op at k over a postfix chain
        (`a.b[i]`, `v[j]`, `x`): returns (base ident, subscript token
        texts or None, chain start index)."""
        toks = self.toks
        j = k - 1
        sub: list[str] | None = None
        while j >= 0:
            t = toks[j]
            if t.text == "]":
                open_ = match_backward(toks, j, "[", "]")
                if open_ < 0:
                    return None, None, -1
                inner = [toks[x].text for x in range(open_ + 1, j)]
                sub = inner if sub is None else inner + sub
                j = open_ - 1
            elif t.text == ")":
                return None, None, -1  # f(...) = — not a var write we track
            elif t.kind == "id":
                if j >= 1 and toks[j - 1].text in (".", "->", "::"):
                    j -= 2
                    continue
                return t.text, sub, j
            else:
                return None, None, -1
        return None, None, -1

    def _classify_write(self, lam: _Lambda, entry: str, line: int, tgt: str,
                        sub: list[str] | None, body_locals: set[str]) -> None:
        if tgt in body_locals:
            return
        if tgt in self.atomic_vars:
            return
        # Is the target reachable by reference from outside the lambda?
        by_ref = False
        if lam.cap_default == "&":
            by_ref = tgt not in lam.val_caps
        elif tgt in lam.ref_caps:
            by_ref = True
        elif (lam.caps_this or lam.cap_default == "&") and tgt.endswith("_"):
            by_ref = True  # repo convention: trailing underscore = member
        if not by_ref:
            return
        if sub is not None:
            idx_ids = {s for s in sub}
            if idx_ids & lam.params:
                return  # indexed by the range argument: disjoint by contract
            if idx_ids & body_locals:
                # Indexed through a per-invocation local (derived from the
                # range argument): accepted, documented heuristic.
                return
            detail = (f"writes '{tgt}[{' '.join(sub)}]' — index does not "
                      "derive from the lambda's range parameter")
        else:
            detail = f"writes captured '{tgt}' with no per-range indexing"
        self.facts.append(ParallelWriteFact(line=line, entry=entry,
                                            target=tgt, detail=detail))

    # ----------------------------------------------------------------- main
    def run(self):
        self._collect_decls()
        self._collect_loops()
        self._collect_lambda_defs()
        self._collect_reserved()
        toks = self.toks
        seen_lambda_starts: set[int] = set()

        for i, t in enumerate(toks):
            if t.kind != "id":
                continue
            nxt = toks[i + 1].text if i + 1 < self.n else ""
            prev = toks[i - 1].text if i > 0 else ""
            prev2 = toks[i - 2].text if i > 1 else ""

            # ---- parallel entry points -----------------------------------
            if t.text in PARALLEL_ENTRY_NAMES and nxt == "(":
                close = match_forward(toks, i + 1, "(", ")")
                for lo, hi in split_top_level(toks, i + 2, close, ","):
                    if lo >= hi:
                        continue
                    if toks[lo].text == "[":
                        lam = self._parse_lambda(lo)
                        if lam is not None:
                            seen_lambda_starts.add(lam.start)
                            self._lambda_writes(lam, t.text)
                    elif hi - lo == 1 and toks[lo].kind == "id":
                        lam = self.lambda_defs.get(toks[lo].text)
                        if lam is not None and lam.start not in seen_lambda_starts:
                            seen_lambda_starts.add(lam.start)
                            self._lambda_writes(lam, t.text)

            # ---- wallclock -----------------------------------------------
            if t.text in WALLCLOCK_TYPE_NAMES:
                self.facts.append(WallclockFact(line=t.line, name=t.text))
            elif t.text in WALLCLOCK_FN_NAMES and nxt == "(" and \
                    prev not in (".", "->"):
                # skip declarations/definitions: `int time(...)` style —
                # preceded by a type keyword means this *declares* time.
                if prev in _TYPE_KEYWORDS:
                    pass
                else:
                    self.facts.append(WallclockFact(line=t.line, name=t.text))

            # ---- rng seed derivations ------------------------------------
            if t.text == "fork" and nxt == "(" and prev in ("::", ".", "->"):
                self._rng_fact(i, "fork")
            elif t.text == "reseed" and nxt == "(":
                self._rng_fact(i, "reseed")
            elif t.text == "Rng":
                if nxt == "(":
                    self._rng_fact(i, "Rng")
                elif nxt and i + 2 < self.n and toks[i + 1].kind == "id":
                    after = toks[i + 2].text
                    if after in ("(", "{"):
                        self._rng_fact(i + 1, "Rng")
                    elif after == "=":
                        # Rng r = <expr>; — scan the initializer expression,
                        # unless it is itself a fork()/Rng() call (those
                        # emit their own fact; don't double-report).
                        end = i + 3
                        depth = 0
                        while end < self.n:
                            tt = toks[end].text
                            if tt in ("(", "[", "{"):
                                depth += 1
                            elif tt in (")", "]", "}"):
                                depth -= 1
                            elif tt == ";" and depth == 0:
                                break
                            end += 1
                        init_ids = {toks[j].text for j in range(i + 3, end)
                                    if toks[j].kind == "id"}
                        if not init_ids & {"fork", "Rng", "reseed"}:
                            self._rng_span_fact(i + 3, end, "Rng")

            # ---- ported regex rules --------------------------------------
            if t.text in ("rand", "srand") and (
                    (prev == "::" and prev2 == "std") or
                    (t.text == "srand" and nxt == "(")):
                self.facts.append(BannedUseFact(t.line, "std-rand", t.text))
            elif t.text == "random_device" and prev == "::" and prev2 == "std":
                self.facts.append(BannedUseFact(t.line, "std-rand", t.text))
            elif t.text == "new" and (nxt == "(" or (i + 1 < self.n and
                                                     toks[i + 1].kind == "id")):
                self.facts.append(BannedUseFact(t.line, "new", "new"))
                if self._enclosing_loops(i):
                    self.facts.append(HotLoopAllocFact(t.line, "new", "new"))
            elif t.text == "delete" and i + 1 < self.n and (
                    toks[i + 1].kind == "id" or nxt == "["):
                self.facts.append(BannedUseFact(t.line, "delete", "delete"))
            elif t.text == "accumulate_weighted":
                self.facts.append(
                    BannedUseFact(t.line, "accumulate-weighted", t.text))
            elif t.text == "compress" and nxt == "(" and prev in (".", "->"):
                self.facts.append(
                    BannedUseFact(t.line, "compress-call", t.text))

            # ---- hot-loop allocations ------------------------------------
            if t.text == "vector" and nxt == "<" and self._enclosing_loops(i):
                close = self._match_angle(i + 1)
                if close >= 0:
                    k = close + 1
                    # Only sized constructions (`vector<double> g(dim)`):
                    # a reference binding (`vector<double>& g = ws.g`)
                    # aliases an existing buffer and a default-constructed
                    # vector allocates nothing.
                    if (k < self.n and toks[k].kind == "id"
                            and k + 1 < self.n
                            and toks[k + 1].text in ("(", "{")):
                        self.facts.append(HotLoopAllocFact(
                            t.line, "vector-construct",
                            f"std::vector {toks[k].text}(...)"))
            elif (t.text in GROWTH_CALL_NAMES and nxt == "("
                    and prev in (".", "->") and self._enclosing_loops(i)):
                base = self._member_base(i)
                if not (t.text in ("push_back", "emplace_back")
                        and base in self.reserved_vars):
                    kind = "resize" if t.text == "resize" else "push-back"
                    spelling = f"{base}.{t.text}()" if base else f"{t.text}()"
                    self.facts.append(
                        HotLoopAllocFact(t.line, kind, spelling))

            # ---- fp accumulation -----------------------------------------
            if nxt == "+=":
                self._fp_accum(i)

        # `v[j] += ...` — the += follows a ']'; handle via a second pass
        # over += tokens whose LHS ends in a subscript.
        for k, t in enumerate(toks):
            if t.text == "+=" and k > 0 and toks[k - 1].text == "]":
                self._fp_accum_at_op(k)
        self._emit_unordered()
        return self.facts

    def _rng_fact(self, i: int, callee: str) -> None:
        """toks[i+1] == '(' (or '{'): argument list of a seed derivation."""
        opener = self.toks[i + 1].text
        closer = ")" if opener == "(" else "}"
        close = match_forward(self.toks, i + 1, opener, closer)
        self._rng_span_fact(i + 2, close, callee)

    def _rng_span_fact(self, lo: int, hi: int, callee: str) -> None:
        texts = []
        address_of = False
        for j in range(lo, hi):
            t = self.toks[j]
            texts.append(t.text)
            if t.text == "&":
                p = self.toks[j - 1].text if j > 0 else "("
                if p in ("(", ",", "=", "+", "-", "*", "/", "return", "{"):
                    address_of = True
        if not texts:
            return
        line = self.toks[lo].line if lo < self.n else 0
        self.facts.append(RngSeedFact(line=line, callee=callee,
                                      arg_tokens=tuple(texts),
                                      address_of=address_of))

    def _fp_accum(self, i: int) -> None:
        """toks[i] is the LHS ident directly before a `+=`."""
        self._fp_accum_at_op(i + 1)

    def _fp_accum_at_op(self, k: int) -> None:
        toks = self.toks
        tgt, sub, _ = self._lhs_chain(k)
        if tgt is None:
            return
        if sub is None:
            if tgt not in self.fp_scalars:
                return
        else:
            if tgt not in self.fp_arrays and tgt not in self.fp_scalars:
                return
        encl = self._enclosing_loops(k)
        if not encl:
            return
        inner = encl[0]
        all_vars: set[str] = set()
        for lp in encl:
            all_vars |= lp.vars
        # RHS token span: op+1 .. top-level ';'
        rhs_ids: set[str] = set()
        depth = 0
        for j in range(k + 1, self.n):
            tt = toks[j].text
            if tt in ("(", "[", "{"):
                depth += 1
            elif tt in (")", "]", "}"):
                depth -= 1
            elif tt == ";" and depth <= 0:
                break
            if toks[j].kind == "id":
                rhs_ids.add(tt)
        declared_in_loop = False
        for j in range(inner.body[0], k):
            if (toks[j].text in ("double", "float") and j + 1 < self.n
                    and toks[j + 1].text == tgt):
                declared_in_loop = True
                break
        # Also: declared in the innermost loop header (fp loop counter).
        for j in range(inner.header[0], inner.header[1]):
            if (toks[j].text in ("double", "float") and j + 1 < self.n
                    and toks[j + 1].text == tgt):
                declared_in_loop = True
        self.facts.append(FpAccumulationFact(
            line=toks[k].line,
            lhs=tgt,
            loop_kind=inner.kind,
            rhs_uses_loop_var=bool(rhs_ids & all_vars),
            lhs_declared_in_loop=declared_in_loop,
            lhs_indexed_by_loop_var=bool(sub) and bool(set(sub) & all_vars),
        ))

    # -------------------------------------------------------- unordered ----
    def _emit_unordered(self) -> None:
        toks = self.toks
        for lp in self.loops:
            if lp.kind != "range":
                continue
            colon = self._top_level_colon(lp.header)
            if colon < 0:
                continue
            iterable_ids = {toks[j].text
                            for j in range(colon + 1, lp.header[1])
                            if toks[j].kind == "id"}
            hit = iterable_ids & self.unordered_vars
            if hit:
                self.facts.append(UnorderedIterationFact(
                    line=lp.line, container=sorted(hit)[0]))
        # Explicit iterator walks: `x.begin()` on an unordered container.
        for i, t in enumerate(toks):
            if (t.text in ("begin", "cbegin") and i >= 2
                    and toks[i - 1].text in (".", "->")
                    and toks[i - 2].text in self.unordered_vars
                    and i + 1 < self.n and toks[i + 1].text == "("):
                self.facts.append(UnorderedIterationFact(
                    line=t.line, container=toks[i - 2].text))
