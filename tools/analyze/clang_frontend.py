"""libclang frontend: the same fact schema, extracted from a real AST.

Used when the `clang.cindex` Python bindings and a loadable libclang are
both present (e.g. `apt install python3-clang libclang1-XX`); the CLI's
`--frontend auto` probes via `available()` and silently falls back to
the token frontend otherwise, so nothing in CI or ctest hard-depends on
libclang being installed.

What the AST buys over tokens: type-accurate unordered-container
detection (typedefs, `auto`, members), type-accurate floating-point
compound assignment, and call-expression-accurate wallclock / seam
facts. Lambda *capture* analysis stays delegated to the token frontend:
clang's C API does not expose capture lists, and the token heuristic is
the documented contract the fixtures pin down — both frontends must
agree on it.
"""

from __future__ import annotations

import os
from pathlib import Path

from . import token_frontend
from .facts import (
    BannedUseFact,
    FileFacts,
    FpAccumulationFact,
    RngSeedFact,
    UnorderedIterationFact,
    WallclockFact,
)

_CINDEX = None
_INDEX = None


class FrontendUnavailable(RuntimeError):
    pass


def _load_cindex():
    global _CINDEX
    if _CINDEX is not None:
        return _CINDEX
    try:
        from clang import cindex  # type: ignore[import-not-found]
    except ImportError as e:
        raise FrontendUnavailable(f"clang.cindex not importable: {e}") from e
    if "CLANG_LIBRARY_FILE" in os.environ:
        cindex.Config.set_library_file(os.environ["CLANG_LIBRARY_FILE"])
    _CINDEX = cindex
    return cindex


def available() -> bool:
    try:
        _index()
        return True
    except FrontendUnavailable:
        return False


def _index():
    global _INDEX
    if _INDEX is None:
        ci = _load_cindex()
        try:
            _INDEX = ci.Index.create()
        except Exception as e:  # libclang .so missing/unloadable
            raise FrontendUnavailable(f"libclang unavailable: {e}") from e
    return _INDEX


def extract(path: str, text: str, abs_path: Path,
            parse_args: list[str] | None) -> FileFacts:
    ci = _load_cindex()
    index = _index()
    args = list(parse_args or [])
    if not any(a.startswith("-std=") for a in args):
        args.append("-std=c++20")
    try:
        tu = index.parse(str(abs_path), args=args,
                         unsaved_files=[(str(abs_path), text)],
                         options=0)
    except Exception as e:
        raise FrontendUnavailable(f"parse failed for {path}: {e}") from e

    # Capture analysis (and the allow-comment table) come from the token
    # frontend; AST passes below *replace* the token facts for the fact
    # kinds where the AST is strictly more precise.
    ff = token_frontend.extract(path, text)
    kept = [f for f in ff.facts
            if not isinstance(f, (RngSeedFact, UnorderedIterationFact,
                                  WallclockFact, FpAccumulationFact,
                                  BannedUseFact))]
    ff.facts = kept

    ck = ci.CursorKind
    main_file = str(abs_path)

    def in_main(cursor) -> bool:
        loc = cursor.location
        return loc.file is not None and str(loc.file) == main_file

    def tokens_of(cursor) -> list[str]:
        return [t.spelling for t in cursor.get_tokens()]

    def loop_stack_walk(cursor, loops):
        """Recursive walk carrying the enclosing-loop stack."""
        kind = cursor.kind
        if in_main(cursor):
            _visit(cursor, loops)
        new_loops = loops
        if kind in (ck.FOR_STMT, ck.CXX_FOR_RANGE_STMT):
            loop_vars = set()
            for ch in cursor.get_children():
                if ch.kind in (ck.DECL_STMT, ck.VAR_DECL):
                    for d in ([ch] if ch.kind == ck.VAR_DECL
                              else ch.get_children()):
                        if d.kind == ck.VAR_DECL and d.spelling:
                            loop_vars.add(d.spelling)
                break  # only the first child (init / range decl)
            ext = cursor.extent
            new_loops = loops + [
                ("range" if kind == ck.CXX_FOR_RANGE_STMT else "indexed",
                 loop_vars, (ext.start.offset, ext.end.offset))]
        for ch in cursor.get_children():
            loop_stack_walk(ch, new_loops)

    def _visit(cursor, loops):
        kind = cursor.kind
        line = cursor.location.line
        if kind == ck.CXX_FOR_RANGE_STMT:
            # Children: loop-variable decl, range expression, body — scan
            # everything before the body for an unordered range type.
            for ch in cursor.get_children():
                if ch.kind == ck.COMPOUND_STMT:
                    break
                t = ch.type.spelling if ch.type else ""
                if "unordered_map" in t or "unordered_set" in t:
                    ff.facts.append(UnorderedIterationFact(
                        line=line, container=ch.spelling or "<range>"))
                    break
        elif kind in (ck.DECL_REF_EXPR, ck.TYPE_REF):
            name = cursor.spelling.split("::")[-1] if cursor.spelling else ""
            if name in token_frontend.WALLCLOCK_TYPE_NAMES:
                ff.facts.append(WallclockFact(line=line, name=name))
        elif kind == ck.CALL_EXPR:
            name = cursor.spelling or ""
            if name in ("begin", "cbegin"):
                ch = next(iter(cursor.get_children()), None)
                t = ch.type.spelling if ch is not None and ch.type else ""
                if "unordered_map" in t or "unordered_set" in t:
                    ff.facts.append(UnorderedIterationFact(
                        line=line, container=ch.spelling or "<container>"))
            elif name in token_frontend.WALLCLOCK_FN_NAMES:
                # `sched.time()` on a domain type is not ambient time —
                # only free functions (::time, std::time, clock_gettime).
                ref = cursor.referenced
                if ref is None or ref.kind != ck.CXX_METHOD:
                    ff.facts.append(WallclockFact(line=line, name=name))
            elif name in ("fork", "reseed", "Rng"):
                args_txt = tuple(
                    t for child in list(cursor.get_children())[1:]
                    for t in tokens_of(child))
                if args_txt:
                    ff.facts.append(RngSeedFact(
                        line=line, callee=name, arg_tokens=args_txt,
                        address_of="&" in args_txt))
            elif name in ("rand", "srand"):
                ff.facts.append(BannedUseFact(line, "std-rand", name))
            elif name == "accumulate_weighted":
                ff.facts.append(
                    BannedUseFact(line, "accumulate-weighted", name))
            elif name == "compress":
                ff.facts.append(BannedUseFact(line, "compress-call", name))
        elif kind == ck.VAR_DECL:
            # Rng constructions surface as CALL_EXPRs (handled above);
            # here only ambient-randomness declarations matter.
            t = cursor.type.spelling if cursor.type else ""
            if "random_device" in t:
                ff.facts.append(
                    BannedUseFact(line, "std-rand", "random_device"))
        elif kind == ck.CXX_NEW_EXPR:
            ff.facts.append(BannedUseFact(line, "new", "new"))
        elif kind == ck.CXX_DELETE_EXPR:
            ff.facts.append(BannedUseFact(line, "delete", "delete"))
        elif kind == ck.COMPOUND_ASSIGNMENT_OPERATOR and loops:
            toks = tokens_of(cursor)
            if "+=" not in toks:
                return
            children = list(cursor.get_children())
            if not children:
                return
            lhs = children[0]
            lhs_type = lhs.type.spelling if lhs.type else ""
            if not any(fp in lhs_type for fp in ("double", "float")):
                return
            op_idx = toks.index("+=")
            lhs_toks, rhs_toks = toks[:op_idx], toks[op_idx + 1:]
            inner_kind, _, inner_ext = loops[-1]
            all_vars = set().union(*(v for _, v, _ in loops))
            lhs_base = next((t for t in lhs_toks if t.isidentifier()), "")
            sub_ids = set(lhs_toks[1:]) & all_vars
            # Per-iteration accumulator? Follow the LHS var's declaration:
            # if it sits inside the innermost loop's extent it is a
            # loop-local, not a cross-collection reduction.
            declared_in_loop = False
            ref = None
            stack = [lhs]
            while stack:
                c = stack.pop()
                if c.kind == ck.DECL_REF_EXPR and c.referenced is not None:
                    ref = c.referenced
                    break
                stack.extend(c.get_children())
            if ref is not None and ref.location.file is not None and \
                    str(ref.location.file) == main_file:
                off = ref.location.offset
                declared_in_loop = inner_ext[0] <= off < inner_ext[1]
            ff.facts.append(FpAccumulationFact(
                line=line, lhs=lhs_base or "<expr>", loop_kind=inner_kind,
                rhs_uses_loop_var=bool(set(rhs_toks) & all_vars),
                lhs_declared_in_loop=declared_in_loop,
                lhs_indexed_by_loop_var=bool(sub_ids)))

    # Only recurse into top-level declarations from the main file (the
    # included headers' bodies are parsed but not re-analyzed here; each
    # header is analyzed as its own scan entry).
    for top in tu.cursor.get_children():
        if in_main(top):
            loop_stack_walk(top, [])
    return ff
