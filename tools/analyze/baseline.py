"""Committed suppression baseline.

A baseline entry accepts one finding wholesale — (rule, file, content
hash of the offending line) — so accepted findings survive unrelated
line-number churn but resurface the moment the flagged code changes.
Preferred suppression is the inline `// lint:allow(<rule>) <why>` (it
carries its justification in the diff); the baseline exists for bulk
adoption on a legacy tree. This repo's committed baseline is empty —
every real finding was either fixed or inline-justified — and CI keeps
it that way by failing on any non-baselined finding.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from .facts import Finding


def _line_key(root: Path, finding: Finding) -> str:
    try:
        lines = (root / finding.file).read_text(encoding="utf-8").splitlines()
        content = lines[finding.line - 1].strip() if finding.line <= len(lines) else ""
    except OSError:
        content = ""
    h = hashlib.sha256(content.encode("utf-8")).hexdigest()[:16]
    return f"{finding.rule}:{finding.file}:{h}"


class Baseline:
    def __init__(self, keys: set[str]):
        self.keys = keys

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        if not path.exists():
            return cls(set())
        data = json.loads(path.read_text(encoding="utf-8"))
        return cls({e["key"] for e in data.get("entries", [])})

    def filter(self, root: Path, findings: list[Finding]) -> list[Finding]:
        return [f for f in findings if _line_key(root, f) not in self.keys]

    @staticmethod
    def write(path: Path, root: Path, findings: list[Finding]) -> None:
        entries = [
            {"key": _line_key(root, f), "note": f.render()}
            for f in sorted(findings, key=lambda x: (x.file, x.line, x.rule))
        ]
        path.write_text(
            json.dumps({"version": 1, "entries": entries}, indent=2) + "\n",
            encoding="utf-8")
