"""compile_commands.json loader.

The token frontend only needs the file *list* (and works without a
database at all, by walking src/); the clang frontend also needs each
TU's flags so libclang parses with the project's include paths and
standard. CMake exports the database when configured with
CMAKE_EXPORT_COMPILE_COMMANDS=ON (on by default in this repo's
top-level CMakeLists.txt).
"""

from __future__ import annotations

import json
import shlex
from pathlib import Path

# Driver arguments libclang must not see (they are for the compiler
# process, not the parser).
_DROP_EXACT = {"-c", "-fPIC", "-pipe"}
_DROP_PREFIX = ("-o", "-M", "-fdiagnostics", "-W", "-fsanitize")
_KEEP_PREFIX = ("-I", "-D", "-std=", "-isystem", "-include", "-U")


class CompDB:
    def __init__(self, entries: dict[str, list[str]]):
        # absolute source path -> parse args
        self.entries = entries

    @classmethod
    def load(cls, path: Path) -> "CompDB":
        raw = json.loads(path.read_text(encoding="utf-8"))
        entries: dict[str, list[str]] = {}
        for e in raw:
            directory = Path(e.get("directory", "."))
            src = Path(e["file"])
            if not src.is_absolute():
                src = directory / src
            if "arguments" in e:
                argv = list(e["arguments"])
            else:
                argv = shlex.split(e.get("command", ""))
            entries[str(src.resolve())] = cls._parse_args(argv, directory)
        return cls(entries)

    @staticmethod
    def _parse_args(argv: list[str], directory: Path) -> list[str]:
        out: list[str] = []
        skip_next = False
        for a in argv[1:]:  # argv[0] is the compiler
            if skip_next:
                skip_next = False
                continue
            if a == "-o":
                skip_next = True
                continue
            if a in _DROP_EXACT:
                continue
            if a.startswith(_KEEP_PREFIX):
                # Make relative include dirs absolute for out-of-dir parses.
                if a.startswith("-I") and len(a) > 2 and not Path(a[2:]).is_absolute():
                    a = "-I" + str((directory / a[2:]).resolve())
                out.append(a)
                continue
            if a.startswith(_DROP_PREFIX) or a.startswith("-"):
                continue
            # bare path: the source file itself — drop.
        return out

    def args_for(self, src: Path) -> list[str] | None:
        """Parse args for src, or for a sibling TU in the same directory
        (headers are not compiled, but a neighbour's flags fit)."""
        key = str(src.resolve())
        if key in self.entries:
            return self.entries[key]
        parent = str(src.resolve().parent)
        for k, v in self.entries.items():
            if str(Path(k).parent) == parent:
                return v
        return next(iter(self.entries.values()), None)
