"""The fact schema both frontends emit and all rules consume.

A *fact* is a structural observation about one translation unit — "a
range-for iterates an unordered container here", "this lambda passed to
parallel_for writes a by-ref capture without indexing by its range
parameter". Facts carry no policy: whether a fact becomes a finding
(and in which directories, with which escape hatches) is decided by
tools/analyze/rules.py, so the clang and token frontends stay
interchangeable.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class RngSeedFact:
    """A util::Rng construction / util::fork / reseed call; arg_tokens is
    the flat token spelling of every argument expression."""
    line: int
    callee: str  # "Rng" | "fork" | "reseed"
    arg_tokens: tuple[str, ...] = ()
    address_of: bool = False  # a unary & appears inside the arguments


@dataclass(frozen=True)
class UnorderedIterationFact:
    """Range-for (or explicit .begin() walk) over a container declared
    std::unordered_map / std::unordered_set."""
    line: int
    container: str


@dataclass(frozen=True)
class ParallelWriteFact:
    """A write inside a lambda handed to a parallel entry point
    (ThreadPool::parallel_for / parallel_ranges / submit or a registered
    wrapper) that targets state captured by reference, where the index —
    if any — does not derive from the lambda's own range parameter."""
    line: int
    entry: str       # the parallel entry point the lambda flows into
    target: str      # the written variable
    detail: str      # human description of why the write is suspect


@dataclass(frozen=True)
class WallclockFact:
    """std::chrono::{system,steady,high_resolution}_clock, ::time(),
    clock_gettime(), ... — any ambient-time read."""
    line: int
    name: str


@dataclass(frozen=True)
class FpAccumulationFact:
    """`lhs += rhs` on a floating-point target inside a loop whose
    accumulation order follows a collection (range-for, or the rhs
    indexes/calls through the loop variable)."""
    line: int
    lhs: str
    loop_kind: str               # "range" | "indexed"
    rhs_uses_loop_var: bool
    lhs_declared_in_loop: bool   # per-iteration local: not a reduction
    lhs_indexed_by_loop_var: bool  # element-wise disjoint update


@dataclass(frozen=True)
class BannedUseFact:
    """Single-identifier facts backing the rules ported from the old
    regex lint: std::rand family, naked new/delete, accumulate_weighted
    outside the aggregator seam, Compressor::compress outside comm."""
    line: int
    kind: str  # "std-rand" | "new" | "delete" | "accumulate-weighted" | "compress-call"
    spelling: str


@dataclass(frozen=True)
class HotLoopAllocFact:
    """A heap allocation (or potential growth) inside a loop body: a
    sized vector construction, a .resize()/.push_back()/.emplace_back()
    growth call, or a new-expression. Hot-path directories must hoist
    these into reused workspace buffers (push_back is exempt when the
    container was reserve()d in the same file)."""
    line: int
    kind: str  # "vector-construct" | "resize" | "push-back" | "new"
    spelling: str


Fact = (
    RngSeedFact
    | UnorderedIterationFact
    | ParallelWriteFact
    | WallclockFact
    | FpAccumulationFact
    | BannedUseFact
    | HotLoopAllocFact
)


@dataclass(frozen=True)
class Finding:
    rule: str
    file: str  # repo-root-relative, forward slashes
    line: int
    message: str

    def render(self) -> str:
        return f"{self.file}:{self.line}: [{self.rule}] {self.message}"


@dataclass
class FileFacts:
    """Everything extracted from one source file."""
    path: str  # repo-root-relative
    facts: list[Fact] = field(default_factory=list)
    # lines carrying `// lint:allow(<rule>) <why>` → rule name, and the
    # set of lines where *any* comment sits (for allow-on-line-above).
    allows: dict[int, str] = field(default_factory=dict)
