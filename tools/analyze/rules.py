"""Rule catalog: turns frontend facts into findings, with path scoping.

Every rule guards a repo invariant (see DESIGN.md §14 for the long-form
rationale). Scoping is expressed against repo-root-relative paths so the
fixture tree under tests/tools/fixtures can mirror the real layout.

Suppression: `// lint:allow(<rule>) <why>` on the finding's line or the
line directly above (the why is mandatory — ALLOW_RE in the frontends
refuses a bare tag), plus the committed baseline (tools/analyze/
baseline.json) for findings accepted wholesale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from .facts import (
    BannedUseFact,
    FileFacts,
    Finding,
    FpAccumulationFact,
    HotLoopAllocFact,
    ParallelWriteFact,
    RngSeedFact,
    UnorderedIterationFact,
    WallclockFact,
)
from .token_frontend import RNG_BANNED_ATOMS

REDUCTION_DIRS = ("src/fl/", "src/core/", "src/comm/")
UNORDERED_DIRS = REDUCTION_DIRS + ("src/tensor/",)

# Sanctioned reduction helpers: the only places fp accumulation over
# device/update collections may live (fl::Aggregator seam — the flat rules
# in aggregation.* plus the hierarchical tree in hierarchy.* — and the
# tensor primitives they call).
FP_SEAM_FILES = ("src/fl/aggregation.", "src/fl/hierarchy.",
                 "src/tensor/vecops.")

# Files allowed to perform line-12 weighted averaging directly (the
# Aggregator implementations themselves and the vecops they delegate to).
AGGREGATION_SEAM_FILES = FP_SEAM_FILES

WALLCLOCK_EXEMPT = ("src/obs/", "src/util/stopwatch.h")

# Directories/files whose loops are per-round / per-iteration hot paths: a
# heap allocation inside one multiplies by rounds × devices × iterations.
# The event-engine files run once per round over every participant, so they
# are held to the same standard as the solvers.
HOT_LOOP_DIRS = ("src/opt/", "src/tensor/", "src/core/",
                 "src/fl/event_engine.", "src/fl/hierarchy.")


def _under(path: str, prefixes: tuple[str, ...]) -> bool:
    return any(path.startswith(p) for p in prefixes)


@dataclass(frozen=True)
class Rule:
    name: str
    description: str
    applies: Callable[[str], bool]
    # fact type this rule consumes; evaluation below dispatches on it.


RULES: list[Rule] = [
    Rule(
        "rng-fork-discipline",
        "util::Rng seeds must derive from (seed, device, round, stream) — "
        "never wall time, addresses, or ambient randomness; anything else "
        "breaks run-to-run reproducibility from a single seed",
        lambda p: not p.startswith("src/util/rng."),
    ),
    Rule(
        "no-unordered-iteration-in-reduction",
        "range-for over std::unordered_map/set in fl/core/comm/tensor: "
        "iteration order is implementation-defined and feeds aggregation "
        "or serialization, so it must not be observable",
        lambda p: _under(p, UNORDERED_DIRS),
    ),
    Rule(
        "parallel-capture-safety",
        "lambdas given to ThreadPool::parallel_for/parallel_ranges/submit "
        "may write by-ref captures only through indices derived from the "
        "range argument (disjoint slices); anything else is a data race "
        "or a pool-size-dependent result",
        lambda p: p.startswith("src/"),
    ),
    Rule(
        "no-wallclock-outside-obs",
        "ambient time (std::chrono clocks, time(), clock_gettime(), ...) "
        "is allowed only in src/obs/ and src/util/stopwatch.h: simulated "
        "time comes from the eq. 19 timing model, and wall time in an "
        "algorithm path makes runs irreproducible",
        lambda p: p.startswith("src/") and not _under(p, WALLCLOCK_EXEMPT),
    ),
    Rule(
        "fp-reduction-in-seam",
        "floating-point += reduction over a device/update collection "
        "belongs in fl::Aggregator / tensor::vecops helpers, where the "
        "accumulation order is pinned (ascending, serial) and audited",
        lambda p: _under(p, REDUCTION_DIRS) and not _under(p, FP_SEAM_FILES),
    ),
    Rule(
        "no-alloc-in-hot-loop",
        "heap allocation inside a loop in the solver/tensor/core hot "
        "paths (sized vector construction, resize/push_back growth, new): "
        "construct the buffer once in a SolverWorkspace / tensor::Workspace "
        "and reuse it; reserve() ahead of the loop exempts push_back",
        lambda p: _under(p, HOT_LOOP_DIRS),
    ),
    # ---- ported from tools/lint.py (now call/token-expression precise) ----
    Rule(
        "no-std-rand",
        "random draws must go through util::Rng (seeded, fork-able) so "
        "training runs stay reproducible",
        lambda p: not p.startswith("src/util/rng."),
    ),
    Rule(
        "no-naked-new",
        "no naked new/delete; use std::make_unique / std::make_shared or "
        "a container",
        lambda p: p.startswith("src/"),
    ),
    Rule(
        "aggregation-in-seam",
        "line-12 weighted averaging belongs behind the fl::Aggregator seam "
        "(src/fl/aggregation.*); hand-rolled averages bypass the server's "
        "Byzantine defenses",
        lambda p: not _under(p, AGGREGATION_SEAM_FILES),
    ),
    Rule(
        "compression-in-seam",
        "uplink compression belongs behind the comm::Channel seam "
        "(src/comm/channel.*): a raw Compressor::compress() call skips "
        "error feedback and the measured wire-byte accounting",
        lambda p: not p.startswith("src/comm/"),
    ),
]

RULES_BY_NAME = {r.name: r for r in RULES}


def _rule_on(name: str, path: str) -> bool:
    return RULES_BY_NAME[name].applies(path)


def evaluate(ff: FileFacts) -> list[Finding]:
    """All findings for one file, before allow/baseline filtering."""
    p = ff.path
    out: list[Finding] = []
    for f in ff.facts:
        if isinstance(f, RngSeedFact):
            if not _rule_on("rng-fork-discipline", p):
                continue
            banned = sorted(set(f.arg_tokens) & RNG_BANNED_ATOMS)
            if f.address_of:
                banned.append("address-of")
            if banned:
                out.append(Finding(
                    "rng-fork-discipline", p, f.line,
                    f"{f.callee}() seed derivation uses "
                    f"{', '.join(banned)}; seeds must be pure functions of "
                    "(seed, device, round, stream tag)"))
        elif isinstance(f, UnorderedIterationFact):
            if _rule_on("no-unordered-iteration-in-reduction", p):
                out.append(Finding(
                    "no-unordered-iteration-in-reduction", p, f.line,
                    f"iteration over unordered container '{f.container}': "
                    "order is implementation-defined; use a sorted "
                    "container or iterate a sorted key copy"))
        elif isinstance(f, ParallelWriteFact):
            if _rule_on("parallel-capture-safety", p):
                out.append(Finding(
                    "parallel-capture-safety", p, f.line,
                    f"lambda passed to {f.entry}() {f.detail}"))
        elif isinstance(f, WallclockFact):
            if _rule_on("no-wallclock-outside-obs", p):
                out.append(Finding(
                    "no-wallclock-outside-obs", p, f.line,
                    f"'{f.name}' reads ambient time outside src/obs/ and "
                    "src/util/stopwatch.h"))
        elif isinstance(f, FpAccumulationFact):
            if not _rule_on("fp-reduction-in-seam", p):
                continue
            if f.lhs_declared_in_loop or f.lhs_indexed_by_loop_var:
                continue  # per-iteration local / element-wise disjoint
            if f.loop_kind == "range" or f.rhs_uses_loop_var:
                out.append(Finding(
                    "fp-reduction-in-seam", p, f.line,
                    f"fp accumulation '{f.lhs} +=' over a collection "
                    "outside the sanctioned reduction helpers "
                    "(fl::Aggregator / tensor::vecops)"))
        elif isinstance(f, HotLoopAllocFact):
            if _rule_on("no-alloc-in-hot-loop", p):
                out.append(Finding(
                    "no-alloc-in-hot-loop", p, f.line,
                    f"'{f.spelling}' inside a loop body allocates every "
                    "iteration; hoist it into a reused workspace buffer "
                    "(reserve() ahead of the loop exempts push_back)"))
        elif isinstance(f, BannedUseFact):
            if f.kind == "std-rand" and _rule_on("no-std-rand", p):
                out.append(Finding(
                    "no-std-rand", p, f.line,
                    RULES_BY_NAME["no-std-rand"].description))
            elif f.kind in ("new", "delete") and _rule_on("no-naked-new", p):
                out.append(Finding(
                    "no-naked-new", p, f.line,
                    RULES_BY_NAME["no-naked-new"].description))
            elif (f.kind == "accumulate-weighted"
                  and _rule_on("aggregation-in-seam", p)):
                out.append(Finding(
                    "aggregation-in-seam", p, f.line,
                    RULES_BY_NAME["aggregation-in-seam"].description))
            elif (f.kind == "compress-call"
                  and _rule_on("compression-in-seam", p)):
                out.append(Finding(
                    "compression-in-seam", p, f.line,
                    RULES_BY_NAME["compression-in-seam"].description))
    return _apply_allows(ff, out)


def _apply_allows(ff: FileFacts, findings: list[Finding]) -> list[Finding]:
    kept = []
    for fi in findings:
        allow = ff.allows.get(fi.line) or ff.allows.get(fi.line - 1)
        if allow == fi.rule:
            continue
        kept.append(fi)
    return kept


def list_rules() -> str:
    width = max(len(r.name) for r in RULES)
    lines = [f"{r.name.ljust(width)}  {r.description}" for r in RULES]
    return "\n".join(lines)
