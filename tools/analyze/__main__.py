"""Entry point so `python3 tools/analyze` works from the repo root.

Python runs a directory by putting it on sys.path and executing its
__main__.py as a top-level script, which breaks relative imports — so
bootstrap the package through its parent directory instead.
"""

import sys
from pathlib import Path

if __package__ in (None, ""):
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
    from analyze.cli import main  # type: ignore[no-redef]
else:
    from .cli import main

if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:  # e.g. `... --list-rules | head`
        sys.exit(0)
