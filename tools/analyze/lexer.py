"""A small C++ lexer: tokens with line numbers, comments kept separately.

This is not a full C++ grammar — it is exactly enough structure for the
token frontend to reason about scopes, declarations, capture lists, and
call argument lists without the false positives a line-regex scanner
suffers (matches inside strings, comments, or split across lines).

Handled: line/block comments, string literals (including raw strings and
encoding prefixes), char literals, digit separators (1'000'000),
preprocessor directives (skipped, with continuations), and the multi-char
operators the frontends care about (`::`, `->`, `+=`, `==`, ...).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Tok:
    text: str
    line: int
    kind: str  # "id" | "num" | "str" | "chr" | "punct"


@dataclass(frozen=True)
class Comment:
    text: str
    line: int  # line the comment starts on


_PUNCT3 = ("<<=", ">>=", "...", "->*")
_PUNCT2 = (
    "::", "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=",
    "&&", "||", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
)

_ID_START = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_")
_ID_CONT = _ID_START | set("0123456789")
_RAW_PREFIXES = ("R", "u8R", "uR", "UR", "LR")


def lex(text: str) -> tuple[list[Tok], list[Comment]]:
    toks: list[Tok] = []
    comments: list[Comment] = []
    i, n, line = 0, len(text), 1
    at_line_start = True  # only whitespace seen since the last newline

    def skip_string(j: int) -> int:
        """j points at the opening quote; returns index past the close."""
        quote = text[j]
        j += 1
        while j < n:
            c = text[j]
            if c == "\\":
                j += 2
                continue
            if c == quote or c == "\n":  # unterminated: bail at EOL
                return j + 1 if c == quote else j
            j += 1
        return j

    while i < n:
        c = text[i]
        if c == "\n":
            line += 1
            i += 1
            at_line_start = True
            continue
        if c in " \t\r\f\v":
            i += 1
            continue
        # Preprocessor line (with backslash continuations). Include-based
        # rules live in tools/lint.py; the frontends never see pp tokens.
        if c == "#" and at_line_start:
            while i < n:
                if text[i] == "\\" and i + 1 < n and text[i + 1] == "\n":
                    line += 1
                    i += 2
                    continue
                if text[i] == "\n":
                    break
                i += 1
            continue
        at_line_start = False
        # Comments.
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            j = n if j == -1 else j
            comments.append(Comment(text[i:j], line))
            i = j
            continue
        if c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n - 2 if j == -1 else j
            body = text[i : j + 2]
            comments.append(Comment(body, line))
            line += body.count("\n")
            i = j + 2
            continue
        # Numbers (before char literals: C++14 digit separators use ').
        if c.isdigit() or (c == "." and i + 1 < n and text[i + 1].isdigit()):
            j = i + 1
            while j < n:
                d = text[j]
                if d.isalnum() or d in "._":
                    j += 1
                elif d == "'" and j + 1 < n and text[j + 1].isalnum():
                    j += 1  # digit separator
                elif d in "+-" and text[j - 1] in "eEpP":
                    j += 1  # exponent sign
                else:
                    break
            toks.append(Tok(text[i:j], line, "num"))
            i = j
            continue
        # Identifiers (and raw/encoded string prefixes).
        if c in _ID_START:
            j = i + 1
            while j < n and text[j] in _ID_CONT:
                j += 1
            word = text[i:j]
            if j < n and text[j] == '"' and word in _RAW_PREFIXES and word.endswith("R"):
                # Raw string: R"delim( ... )delim"
                k = j + 1
                delim_end = text.find("(", k)
                if delim_end != -1:
                    delim = text[k:delim_end]
                    close = text.find(")" + delim + '"', delim_end)
                    close = n if close == -1 else close + len(delim) + 2
                    line += text[i:close].count("\n")
                    toks.append(Tok('""', line, "str"))
                    i = close
                    continue
            if j < n and text[j] in "\"'" and word in ("u8", "u", "U", "L"):
                lit_end = skip_string(j)
                toks.append(Tok('""', line, "str"))
                i = lit_end
                continue
            toks.append(Tok(word, line, "id"))
            i = j
            continue
        # Plain string / char literals.
        if c == '"':
            j = skip_string(i)
            toks.append(Tok('""', line, "str"))
            i = j
            continue
        if c == "'":
            j = skip_string(i)
            toks.append(Tok("''", line, "chr"))
            i = j
            continue
        # Punctuation, longest match first.
        for group in (_PUNCT3, _PUNCT2):
            tail = text[i : i + len(group[0])]
            if tail in group:
                toks.append(Tok(tail, line, "punct"))
                i += len(tail)
                break
        else:
            toks.append(Tok(c, line, "punct"))
            i += 1
    return toks, comments


def match_forward(toks: list[Tok], i: int, open_: str, close: str) -> int:
    """toks[i] is `open_`; returns the index of the matching `close`
    (or len(toks) if unbalanced)."""
    depth = 0
    for j in range(i, len(toks)):
        t = toks[j].text
        if t == open_:
            depth += 1
        elif t == close:
            depth -= 1
            if depth == 0:
                return j
    return len(toks)


def match_backward(toks: list[Tok], i: int, open_: str, close: str) -> int:
    """toks[i] is `close`; returns the index of the matching `open_`
    (or -1 if unbalanced)."""
    depth = 0
    for j in range(i, -1, -1):
        t = toks[j].text
        if t == close:
            depth += 1
        elif t == open_:
            depth -= 1
            if depth == 0:
                return j
    return -1


def split_top_level(toks: list[Tok], lo: int, hi: int, sep: str) -> list[tuple[int, int]]:
    """Splits toks[lo:hi] at depth-0 occurrences of `sep`; returns
    (start, end) index pairs. Depth counts (), [], {} and <> shallowly
    enough for argument lists."""
    parts: list[tuple[int, int]] = []
    depth = 0
    start = lo
    for j in range(lo, hi):
        t = toks[j].text
        if t in ("(", "[", "{"):
            depth += 1
        elif t in (")", "]", "}"):
            depth -= 1
        elif t == sep and depth == 0:
            parts.append((start, j))
            start = j + 1
    parts.append((start, hi))
    return parts
