#include "obs/obs.h"

#include <chrono>

namespace fedvr::obs {

namespace detail {
std::atomic<bool> g_enabled{false};
}  // namespace detail

bool set_enabled(bool on) {
  return detail::g_enabled.exchange(on, std::memory_order_relaxed);
}

namespace {
using Clock = std::chrono::steady_clock;

Clock::time_point epoch() {
  static const Clock::time_point t0 = Clock::now();
  return t0;
}

// Force epoch capture during static initialization so concurrent first
// calls from worker threads agree on t0 (magic statics are thread-safe
// anyway; this just pins the epoch early).
[[maybe_unused]] const Clock::time_point g_epoch_init = epoch();
}  // namespace

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           epoch())
          .count());
}

}  // namespace fedvr::obs
