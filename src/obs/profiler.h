// fedvr::obs round profiler: per-round, per-phase, per-device wall-clock
// accounting for the federated engine.
//
// The trainer owns one RoundProfiler per run. Each round it brackets the
// four phases (broadcast, local solve, aggregate, eval) with ScopedPhase
// and reports every participating device's solve time. From those samples
// the profiler estimates the paper's §4.3 timing-model parameters:
//   d_com ≈ mean per-round non-compute time (broadcast + aggregate),
//   d_cmp ≈ mean device solve seconds per inner iteration,
// so a measured round_time(tau) = d_com + d_cmp*tau can be compared against
// the analytic eq. 19 model (fl/timing_model.h).
//
// A disabled profiler (the default) is a null sink: every method returns
// immediately.
#pragma once

#include <array>
#include <cstddef>
#include <vector>

#include "obs/obs.h"

namespace fedvr::obs {

enum class Phase : std::size_t {
  kBroadcast = 0,   // participant selection + model distribution bookkeeping
  kLocalSolve = 1,  // device-parallel local solver execution
  kAggregate = 2,   // weighted averaging + cost accounting
  kEval = 3,        // global loss / accuracy / grad-norm evaluation
};
inline constexpr std::size_t kNumPhases = 4;

[[nodiscard]] const char* phase_name(Phase phase);

struct DeviceSample {
  double solve_seconds = -1.0;  // < 0: device did not participate this round
  std::size_t inner_iterations = 0;
};

struct RoundProfile {
  std::size_t round = 0;
  /// Seconds spent in each phase during this round only (index by Phase).
  std::array<double, kNumPhases> phase_seconds{};
  std::vector<DeviceSample> devices;

  [[nodiscard]] double phase(Phase p) const {
    return phase_seconds[static_cast<std::size_t>(p)];
  }
};

/// Cumulative per-phase seconds across all profiled rounds.
struct PhaseTotals {
  std::array<double, kNumPhases> seconds{};

  [[nodiscard]] double phase(Phase p) const {
    return seconds[static_cast<std::size_t>(p)];
  }
  [[nodiscard]] double sum() const {
    double s = 0.0;
    for (double v : seconds) s += v;
    return s;
  }
};

/// Measured counterpart of fl::TimingModel, in wall-clock seconds.
struct TimingEstimate {
  double d_com = -1.0;  // mean broadcast+aggregate seconds per round
  double d_cmp = -1.0;  // mean device solve seconds per inner iteration
  std::size_t rounds = 0;

  [[nodiscard]] bool valid() const {
    return rounds > 0 && d_com >= 0.0 && d_cmp >= 0.0;
  }
  /// Measured analogue of eq. 19's per-round time d_com + d_cmp * tau.
  [[nodiscard]] double round_time(std::size_t tau) const {
    return d_com + d_cmp * static_cast<double>(tau);
  }
};

class RoundProfiler {
 public:
  /// A profiler constructed disabled never records anything.
  explicit RoundProfiler(bool collect) : collect_(collect) {}

  [[nodiscard]] bool collecting() const { return collect_; }

  /// Starts round `round` with `num_devices` device slots. Ends any round
  /// still open.
  void begin_round(std::size_t round, std::size_t num_devices);
  void end_round();

  /// Reports one device's local-solve wall time. Thread-safe as long as
  /// each device index is reported by one thread per round (the trainer's
  /// parallel_for guarantees that).
  void record_device(std::size_t device, double solve_seconds,
                     std::size_t inner_iterations);

  /// Adds to the current round's phase time; ScopedPhase is the usual way.
  void add_phase_seconds(Phase phase, double seconds);

  /// RAII phase bracket (no-op when the profiler is disabled).
  class ScopedPhase {
   public:
    ScopedPhase(RoundProfiler& profiler, Phase phase)
        : profiler_(profiler.collect_ ? &profiler : nullptr), phase_(phase) {
      if (profiler_ != nullptr) start_ns_ = now_ns();
    }
    ScopedPhase(const ScopedPhase&) = delete;
    ScopedPhase& operator=(const ScopedPhase&) = delete;
    ~ScopedPhase() {
      if (profiler_ != nullptr) {
        profiler_->add_phase_seconds(
            phase_, static_cast<double>(now_ns() - start_ns_) / 1e9);
      }
    }

   private:
    RoundProfiler* profiler_;
    Phase phase_;
    std::uint64_t start_ns_ = 0;
  };

  /// Completed rounds, oldest first.
  [[nodiscard]] const std::vector<RoundProfile>& rounds() const {
    return rounds_;
  }

  /// Cumulative per-phase totals over completed and open rounds.
  [[nodiscard]] const PhaseTotals& totals() const { return totals_; }

  /// Timing-model estimate from everything recorded so far (completed
  /// rounds only). Invalid until one round with device samples completes.
  [[nodiscard]] TimingEstimate estimate() const;

 private:
  bool collect_;
  bool round_open_ = false;
  RoundProfile current_;
  std::vector<RoundProfile> rounds_;
  PhaseTotals totals_;
};

}  // namespace fedvr::obs
