// fedvr::obs scoped trace spans.
//
//   void solve_round() {
//     OBS_SPAN("round.local_solve");
//     ...
//   }
//
// When collection is enabled (obs::set_enabled(true)), each span records
// {name, start, end, thread, depth} into a per-thread ring buffer; when
// disabled, OBS_SPAN costs one relaxed load. Buffers are fixed-size and
// overwrite oldest-first (spans_dropped() reports losses). Export as Chrome
// trace_event JSON — open in chrome://tracing or https://ui.perfetto.dev —
// or as an aggregated per-name JSONL summary.
//
// Span names must be string literals (or otherwise outlive the export):
// only the pointer is recorded on the hot path.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "obs/obs.h"

namespace fedvr::obs {

struct SpanRecord {
  const char* name = nullptr;  // static string; never owned
  std::uint64_t start_ns = 0;  // obs::now_ns() epoch
  std::uint64_t end_ns = 0;
  std::uint32_t thread_id = 0;  // dense per-thread id (detail::thread_slot)
  std::uint32_t depth = 0;      // nesting depth on its thread at entry
};

namespace detail {
void record_span(const SpanRecord& r);
std::uint32_t& span_depth();  // thread-local nesting depth
}  // namespace detail

/// RAII span. Prefer the OBS_SPAN macro, which names the local for you.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) {
    if (enabled()) {
      name_ = name;
      start_ns_ = now_ns();
      depth_ = detail::span_depth()++;
    }
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  ~ScopedSpan() {
    if (name_ != nullptr) {
      --detail::span_depth();
      detail::record_span(
          {name_, start_ns_, now_ns(), /*thread_id=*/0, depth_});
    }
  }

 private:
  const char* name_ = nullptr;  // nullptr: disabled at entry, record nothing
  std::uint64_t start_ns_ = 0;
  std::uint32_t depth_ = 0;
};

/// All spans recorded so far, across every thread, sorted by start time.
[[nodiscard]] std::vector<SpanRecord> collect_spans();

/// Spans lost to ring-buffer overwrite since the last clear_spans().
[[nodiscard]] std::uint64_t spans_dropped();

/// Discards all recorded spans (buffers stay allocated).
void clear_spans();

/// Chrome trace_event JSON ("X" complete events, ts/dur in microseconds).
void write_chrome_trace(std::ostream& os);
void write_chrome_trace_file(const std::string& path);

/// One JSON object per distinct span name, ordered by name:
///   {"type":"span_summary","name":"...","count":N,"total_us":X,
///    "mean_us":X,"min_us":X,"max_us":X}
void write_span_summary_jsonl(std::ostream& os);
void write_span_summary_jsonl_file(const std::string& path);

}  // namespace fedvr::obs

#if defined(FEDVR_OBS_DISABLED)
#define OBS_SPAN(name) \
  do {                 \
  } while (0)
#else
#define FEDVR_OBS_CONCAT_IMPL(a, b) a##b
#define FEDVR_OBS_CONCAT(a, b) FEDVR_OBS_CONCAT_IMPL(a, b)
#define OBS_SPAN(name)                                       \
  ::fedvr::obs::ScopedSpan FEDVR_OBS_CONCAT(fedvr_obs_span_, \
                                            __COUNTER__)(name)
#endif
