#include "obs/trace.h"

#include <algorithm>
#include <charconv>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>

#include "obs/registry.h"  // detail::thread_slot
#include "util/error.h"

namespace fedvr::obs {

namespace {

constexpr std::size_t kRingCapacity = 1 << 14;  // 16k spans/thread, ~512 KiB

// Per-thread ring buffer. Only its owner thread pushes; exporters read
// under the same (practically uncontended) mutex.
class SpanBuffer {
 public:
  explicit SpanBuffer(std::uint32_t thread_id) : thread_id_(thread_id) {
    ring_.reserve(kRingCapacity);
  }

  void push(SpanRecord r) {
    r.thread_id = thread_id_;
    std::scoped_lock lock(mutex_);
    if (ring_.size() < kRingCapacity) {
      ring_.push_back(r);
    } else {
      ring_[head_] = r;
      head_ = (head_ + 1) % kRingCapacity;
      ++dropped_;
    }
  }

  void drain_into(std::vector<SpanRecord>& out) const {
    std::scoped_lock lock(mutex_);
    // Oldest-first: [head_, end) then [0, head_).
    for (std::size_t i = head_; i < ring_.size(); ++i) out.push_back(ring_[i]);
    for (std::size_t i = 0; i < head_; ++i) out.push_back(ring_[i]);
  }

  [[nodiscard]] std::uint64_t dropped() const {
    std::scoped_lock lock(mutex_);
    return dropped_;
  }

  void clear() {
    std::scoped_lock lock(mutex_);
    ring_.clear();
    head_ = 0;
    dropped_ = 0;
  }

 private:
  mutable std::mutex mutex_;
  std::vector<SpanRecord> ring_;
  std::size_t head_ = 0;  // index of the oldest record once the ring is full
  std::uint64_t dropped_ = 0;
  std::uint32_t thread_id_;
};

// Buffers are shared_ptrs held by a global list so exports see spans from
// threads that have already exited.
struct BufferDirectory {
  std::mutex mutex;
  std::vector<std::shared_ptr<SpanBuffer>> buffers;
};

BufferDirectory& directory() {
  // Worker threads may record spans during process teardown, after static
  // destructors run, so the directory must outlive every static.
  // lint:allow(no-naked-new) intentionally leaked teardown-safe singleton
  static BufferDirectory* dir = new BufferDirectory();
  return *dir;
}

SpanBuffer& thread_buffer() {
  thread_local const std::shared_ptr<SpanBuffer> buffer = [] {
    auto b = std::make_shared<SpanBuffer>(
        static_cast<std::uint32_t>(detail::thread_slot()));
    auto& dir = directory();
    std::scoped_lock lock(dir.mutex);
    dir.buffers.push_back(b);
    return b;
  }();
  return *buffer;
}

void append_double(std::string& out, double v) {
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  out.append(buf, res.ptr);
}

}  // namespace

namespace detail {

void record_span(const SpanRecord& r) { thread_buffer().push(r); }

std::uint32_t& span_depth() {
  thread_local std::uint32_t depth = 0;
  return depth;
}

}  // namespace detail

std::vector<SpanRecord> collect_spans() {
  std::vector<std::shared_ptr<SpanBuffer>> buffers;
  {
    auto& dir = directory();
    std::scoped_lock lock(dir.mutex);
    buffers = dir.buffers;
  }
  std::vector<SpanRecord> all;
  for (const auto& b : buffers) b->drain_into(all);
  std::stable_sort(all.begin(), all.end(),
                   [](const SpanRecord& a, const SpanRecord& b) {
                     return a.start_ns != b.start_ns
                                ? a.start_ns < b.start_ns
                                : a.end_ns > b.end_ns;  // parents first
                   });
  return all;
}

std::uint64_t spans_dropped() {
  std::vector<std::shared_ptr<SpanBuffer>> buffers;
  {
    auto& dir = directory();
    std::scoped_lock lock(dir.mutex);
    buffers = dir.buffers;
  }
  std::uint64_t total = 0;
  for (const auto& b : buffers) total += b->dropped();
  return total;
}

void clear_spans() {
  auto& dir = directory();
  std::scoped_lock lock(dir.mutex);
  for (const auto& b : dir.buffers) b->clear();
}

void write_chrome_trace(std::ostream& os) {
  const auto spans = collect_spans();
  os << "{\"traceEvents\":[";
  std::string line;
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const auto& s = spans[i];
    line.clear();
    if (i > 0) line += ',';
    line += "\n{\"name\":\"";
    line += s.name;
    line += "\",\"cat\":\"fedvr\",\"ph\":\"X\",\"pid\":0,\"tid\":";
    line += std::to_string(s.thread_id);
    line += ",\"ts\":";
    append_double(line, static_cast<double>(s.start_ns) / 1e3);
    line += ",\"dur\":";
    append_double(line, static_cast<double>(s.end_ns - s.start_ns) / 1e3);
    line += ",\"args\":{\"depth\":";
    line += std::to_string(s.depth);
    line += "}}";
    os << line;
  }
  os << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

void write_chrome_trace_file(const std::string& path) {
  std::ofstream out(path);
  FEDVR_CHECK_MSG(out.good(), "cannot open '" << path << "' for writing");
  write_chrome_trace(out);
}

void write_span_summary_jsonl(std::ostream& os) {
  struct Agg {
    std::uint64_t count = 0;
    double total_us = 0.0;
    double min_us = 0.0;
    double max_us = 0.0;
  };
  std::map<std::string, Agg> by_name;  // ordered => deterministic output
  for (const auto& s : collect_spans()) {
    const double us = static_cast<double>(s.end_ns - s.start_ns) / 1e3;
    auto& a = by_name[s.name];
    if (a.count == 0) {
      a.min_us = us;
      a.max_us = us;
    } else {
      a.min_us = std::min(a.min_us, us);
      a.max_us = std::max(a.max_us, us);
    }
    ++a.count;
    a.total_us += us;
  }
  std::string line;
  for (const auto& [name, a] : by_name) {
    line.clear();
    line += "{\"type\":\"span_summary\",\"name\":\"";
    line += name;
    line += "\",\"count\":";
    line += std::to_string(a.count);
    line += ",\"total_us\":";
    append_double(line, a.total_us);
    line += ",\"mean_us\":";
    append_double(line, a.total_us / static_cast<double>(a.count));
    line += ",\"min_us\":";
    append_double(line, a.min_us);
    line += ",\"max_us\":";
    append_double(line, a.max_us);
    line += "}\n";
    os << line;
  }
}

void write_span_summary_jsonl_file(const std::string& path) {
  std::ofstream out(path);
  FEDVR_CHECK_MSG(out.good(), "cannot open '" << path << "' for writing");
  write_span_summary_jsonl(out);
}

}  // namespace fedvr::obs
