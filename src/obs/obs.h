// fedvr::obs — observability core: the global enable flag and the trace
// clock shared by the metrics registry (registry.h), scoped spans (trace.h),
// and the round profiler (profiler.h).
//
// Everything in this subsystem is off by default and near-free when off:
// instrumentation sites guard on enabled(), a single relaxed atomic load.
// The subsystem deliberately has no dependencies on the rest of fedvr (only
// header-only util/error.h), so any layer — util, tensor, opt, fl — may
// instrument itself without dependency cycles.
#pragma once

#include <atomic>
#include <cstdint>

namespace fedvr::obs {

namespace detail {
extern std::atomic<bool> g_enabled;
}  // namespace detail

/// True when observability is collecting. Hot paths check this before
/// touching any counter or span; a relaxed load, typically one instruction.
// TSAN: relaxed is sufficient — the flag gates *whether* to record, never
// publishes data. A thread that reads a stale value records (or skips) a
// few extra samples around the toggle; both outcomes are race-free because
// every metric it would touch is itself atomic or mutex-guarded.
inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

/// Turns collection on or off process-wide. Returns the previous value so
/// scoped users (e.g. fl::Trainer) can restore it.
bool set_enabled(bool on);

/// Monotonic nanoseconds since the first obs call in the process. All span
/// timestamps share this epoch, so traces from different threads line up.
[[nodiscard]] std::uint64_t now_ns();

}  // namespace fedvr::obs
