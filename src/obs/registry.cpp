#include "obs/registry.h"

#include <charconv>
#include <fstream>

#include "util/error.h"

namespace fedvr::obs {

namespace detail {

std::size_t thread_slot() {
  // TSAN: relaxed fetch_add only needs atomicity of the ticket draw; each
  // thread's slot is then thread_local and never written again.
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t slot =
      next.fetch_add(1, std::memory_order_relaxed);
  return slot;
}

namespace {
// Shortest round-trip decimal form — deterministic, locale-independent
// JSON numbers ("0.1", not "0.10000000000000001").
void append_double(std::string& out, double v) {
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  out.append(buf, res.ptr);
}
}  // namespace

}  // namespace detail

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)), counts_(bounds_.size() + 1) {
  FEDVR_CHECK_MSG(!bounds_.empty(), "histogram needs at least one bucket");
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    FEDVR_CHECK_MSG(bounds_[i - 1] < bounds_[i],
                    "histogram bounds must be strictly increasing");
  }
}

void Histogram::record(double v) {
  std::size_t b = 0;
  while (b < bounds_.size() && v > bounds_[b]) ++b;
  counts_[b].add(1);
  count_.add(1);
  sum_.add(v);
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot s;
  s.bounds = bounds_;
  s.counts.reserve(counts_.size());
  for (const auto& c : counts_) s.counts.push_back(c.value());
  s.count = count_.value();
  s.sum = sum_.value();
  return s;
}

void Histogram::reset() {
  for (auto& c : counts_) c.reset();
  count_.reset();
  sum_.reset();
}

Registry& Registry::global() {
  static Registry registry;  // construct-on-first-use; lives until exit
  return registry;
}

Counter& Registry::counter(std::string_view name) {
  std::scoped_lock lock(mutex_);
  FEDVR_CHECK_MSG(!gauges_.contains(name) && !histograms_.contains(name),
                  "metric '" << name << "' already registered as another type");
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  std::scoped_lock lock(mutex_);
  FEDVR_CHECK_MSG(!counters_.contains(name) && !histograms_.contains(name),
                  "metric '" << name << "' already registered as another type");
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name,
                               std::vector<double> upper_bounds) {
  std::scoped_lock lock(mutex_);
  FEDVR_CHECK_MSG(!counters_.contains(name) && !gauges_.contains(name),
                  "metric '" << name << "' already registered as another type");
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(std::move(upper_bounds)))
             .first;
  } else {
    FEDVR_CHECK_MSG(upper_bounds.empty() ||
                        upper_bounds == it->second->bounds(),
                    "histogram '" << name
                                  << "' re-registered with different bounds");
  }
  return *it->second;
}

MetricsSnapshot Registry::snapshot() const {
  std::scoped_lock lock(mutex_);
  MetricsSnapshot s;
  s.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    s.counters.push_back({name, c->value()});
  }
  s.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    s.gauges.push_back({name, g->value()});
  }
  s.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    s.histograms.push_back({name, h->snapshot()});
  }
  return s;
}

void Registry::reset_values() {
  std::scoped_lock lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

void MetricsSnapshot::write_jsonl(std::ostream& os) const {
  std::string line;
  for (const auto& c : counters) {
    line.clear();
    line += "{\"type\":\"counter\",\"name\":\"";
    line += c.name;
    line += "\",\"value\":";
    line += std::to_string(c.value);
    line += "}\n";
    os << line;
  }
  for (const auto& g : gauges) {
    line.clear();
    line += "{\"type\":\"gauge\",\"name\":\"";
    line += g.name;
    line += "\",\"value\":";
    detail::append_double(line, g.value);
    line += "}\n";
    os << line;
  }
  for (const auto& h : histograms) {
    line.clear();
    line += "{\"type\":\"histogram\",\"name\":\"";
    line += h.name;
    line += "\",\"count\":";
    line += std::to_string(h.data.count);
    line += ",\"sum\":";
    detail::append_double(line, h.data.sum);
    line += ",\"buckets\":[";
    for (std::size_t i = 0; i < h.data.counts.size(); ++i) {
      if (i > 0) line += ',';
      line += "{\"le\":";
      if (i < h.data.bounds.size()) {
        detail::append_double(line, h.data.bounds[i]);
      } else {
        line += "\"inf\"";
      }
      line += ",\"count\":";
      line += std::to_string(h.data.counts[i]);
      line += '}';
    }
    line += "]}\n";
    os << line;
  }
}

void MetricsSnapshot::write_jsonl_file(const std::string& path) const {
  std::ofstream out(path);
  FEDVR_CHECK_MSG(out.good(), "cannot open '" << path << "' for writing");
  write_jsonl(out);
}

}  // namespace fedvr::obs
