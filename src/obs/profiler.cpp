#include "obs/profiler.h"

#include "util/error.h"

namespace fedvr::obs {

const char* phase_name(Phase phase) {
  switch (phase) {
    case Phase::kBroadcast: return "broadcast";
    case Phase::kLocalSolve: return "local_solve";
    case Phase::kAggregate: return "aggregate";
    case Phase::kEval: return "eval";
  }
  return "?";
}

void RoundProfiler::begin_round(std::size_t round, std::size_t num_devices) {
  if (!collect_) return;
  if (round_open_) end_round();
  current_ = RoundProfile{};
  current_.round = round;
  current_.devices.assign(num_devices, DeviceSample{});
  round_open_ = true;
}

void RoundProfiler::end_round() {
  if (!collect_ || !round_open_) return;
  rounds_.push_back(std::move(current_));
  current_ = RoundProfile{};
  round_open_ = false;
}

void RoundProfiler::record_device(std::size_t device, double solve_seconds,
                                  std::size_t inner_iterations) {
  if (!collect_) return;
  FEDVR_CHECK_MSG(round_open_, "record_device outside begin/end_round");
  FEDVR_CHECK_MSG(device < current_.devices.size(),
                  "device " << device << " out of range");
  current_.devices[device] = {solve_seconds, inner_iterations};
}

void RoundProfiler::add_phase_seconds(Phase phase, double seconds) {
  if (!collect_) return;
  const auto p = static_cast<std::size_t>(phase);
  if (round_open_) current_.phase_seconds[p] += seconds;
  totals_.seconds[p] += seconds;
}

TimingEstimate RoundProfiler::estimate() const {
  TimingEstimate est;
  if (rounds_.empty()) return est;
  double com_seconds = 0.0;
  double solve_seconds = 0.0;
  std::size_t solve_iterations = 0;
  for (const auto& r : rounds_) {
    com_seconds += r.phase(Phase::kBroadcast) + r.phase(Phase::kAggregate);
    for (const auto& d : r.devices) {
      if (d.solve_seconds < 0.0) continue;
      solve_seconds += d.solve_seconds;
      solve_iterations += d.inner_iterations;
    }
  }
  est.rounds = rounds_.size();
  est.d_com = com_seconds / static_cast<double>(rounds_.size());
  est.d_cmp = solve_iterations > 0
                  ? solve_seconds / static_cast<double>(solve_iterations)
                  : 0.0;
  return est;
}

}  // namespace fedvr::obs
