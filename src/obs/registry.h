// fedvr::obs metrics registry: named counters, gauges, and fixed-bucket
// histograms, snapshotable at any time.
//
// Hot-path cost model:
//   * Counter::add — one relaxed fetch_add on a per-thread shard (wait-free,
//     no cache-line ping-pong between threads).
//   * Gauge::set — one relaxed store; Gauge::add — a CAS loop (gauges are
//     not meant for per-element hot loops).
//   * Histogram::record — bucket search (branchless-ish linear scan over a
//     handful of bounds) + one relaxed fetch_add.
// Registration (counter()/gauge()/histogram()) takes a mutex and should be
// done once per site; the FEDVR_OBS_COUNT macro caches the handle in a
// function-local static so steady-state cost is the enabled() check plus
// the shard increment.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "obs/obs.h"

namespace fedvr::obs {

namespace detail {
/// Small dense per-thread slot used to pick counter shards.
[[nodiscard]] std::size_t thread_slot();
}  // namespace detail

/// Monotonically increasing integer metric. Sharded across cache-line-sized
/// slots so concurrent writers on different threads do not contend.
class Counter {
 public:
  static constexpr std::size_t kShards = 16;

  // TSAN: relaxed fetch_add on an atomic shard is race-free by definition;
  // no ordering is needed because no other data is published through it.
  void add(std::uint64_t delta = 1) {
    shards_[detail::thread_slot() % kShards].v.fetch_add(
        delta, std::memory_order_relaxed);
  }

  /// Sum over shards. Not a point-in-time linearizable read while writers
  /// are active, but exact once writers have quiesced (e.g. after a
  /// parallel_for returns).
  // TSAN: relaxed loads concurrent with writers are intentional — the sum
  // may be stale but never torn; quiescence (pool join / future.get) gives
  // the happens-before edge that makes the final read exact.
  [[nodiscard]] std::uint64_t value() const {
    std::uint64_t total = 0;
    for (const auto& s : shards_) total += s.v.load(std::memory_order_relaxed);
    return total;
  }

  void reset() {
    for (auto& s : shards_) s.v.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> v{0};
  };
  std::array<Shard, kShards> shards_{};
};

/// Last-write-wins floating-point metric (e.g. queue depth, utilization).
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }

  // TSAN: the relaxed CAS loop is lock-free read-modify-write on a single
  // atomic; concurrent add() calls serialize through the CAS, so no update
  // is lost and no ordering beyond the atomicity itself is required.
  void add(double delta) {
    double cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur + delta,
                                     std::memory_order_relaxed)) {
    }
  }

  [[nodiscard]] double value() const {
    return v_.load(std::memory_order_relaxed);
  }

  void reset() { set(0.0); }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed-bucket histogram: bounds are upper edges (v <= bound), with an
/// implicit +inf overflow bucket. Bounds are set at registration and never
/// change.
class Histogram {
 public:
  /// `upper_bounds` must be non-empty and strictly increasing.
  explicit Histogram(std::vector<double> upper_bounds);

  void record(double v);

  struct Snapshot {
    std::vector<double> bounds;         // upper edges, excluding +inf
    std::vector<std::uint64_t> counts;  // bounds.size() + 1 (last = overflow)
    std::uint64_t count = 0;
    double sum = 0.0;
  };
  [[nodiscard]] Snapshot snapshot() const;

  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }

  void reset();

 private:
  std::vector<double> bounds_;
  std::vector<Counter> counts_;  // one per bucket; sharded like counters
  Counter count_;
  Gauge sum_;
};

/// A point-in-time copy of every registered metric, ordered by name.
struct MetricsSnapshot {
  struct CounterValue {
    std::string name;
    std::uint64_t value = 0;
  };
  struct GaugeValue {
    std::string name;
    double value = 0.0;
  };
  struct HistogramValue {
    std::string name;
    Histogram::Snapshot data;
  };
  std::vector<CounterValue> counters;
  std::vector<GaugeValue> gauges;
  std::vector<HistogramValue> histograms;

  /// One JSON object per line:
  ///   {"type":"counter","name":"...","value":N}
  ///   {"type":"gauge","name":"...","value":X}
  ///   {"type":"histogram","name":"...","count":N,"sum":X,
  ///    "buckets":[{"le":B,"count":N},...,{"le":"inf","count":N}]}
  void write_jsonl(std::ostream& os) const;
  void write_jsonl_file(const std::string& path) const;
};

/// Name -> metric registry. Handles returned by counter()/gauge()/
/// histogram() are stable for the registry's lifetime.
class Registry {
 public:
  /// The process-wide registry used by all fedvr instrumentation.
  static Registry& global();

  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Returns the counter registered under `name`, creating it on first use.
  /// Throws util::Error if `name` is already a different metric type.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// `upper_bounds` is consumed on first registration; later calls must
  /// pass the same bounds (or empty to mean "whatever was registered").
  Histogram& histogram(std::string_view name,
                       std::vector<double> upper_bounds);

  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// Zeroes every metric's value (registrations survive). For tests and
  /// run-scoped collection.
  void reset_values();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace fedvr::obs

// Hot-path counter increment: a relaxed enabled() check, then a sharded
// fetch_add on a handle cached in a function-local static. Compile out
// entirely with -DFEDVR_OBS_DISABLED for zero-cost builds.
#if defined(FEDVR_OBS_DISABLED)
#define FEDVR_OBS_COUNT(name, delta) \
  do {                               \
  } while (0)
#else
#define FEDVR_OBS_COUNT(name, delta)                              \
  do {                                                            \
    if (::fedvr::obs::enabled()) {                                \
      static ::fedvr::obs::Counter& fedvr_obs_counter =           \
          ::fedvr::obs::Registry::global().counter(name);         \
      fedvr_obs_counter.add(static_cast<std::uint64_t>(delta));   \
    }                                                             \
  } while (0)
#endif
