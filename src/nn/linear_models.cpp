#include "nn/linear_models.h"

#include <algorithm>

#include "tensor/vecops.h"
#include "util/error.h"

namespace fedvr::nn {

// ---------------- LinearRegressionModel ----------------

LinearRegressionModel::LinearRegressionModel(std::size_t dim, double l2_reg)
    : dim_(dim), l2_reg_(l2_reg) {
  FEDVR_CHECK(dim > 0 && l2_reg >= 0.0);
}

void LinearRegressionModel::initialize(util::Rng& rng,
                                       std::span<double> w) const {
  FEDVR_CHECK(w.size() == dim_);
  for (auto& v : w) v = rng.normal(0.0, 0.1);
}

namespace {
// Validates the (features, target) convention for the regression model.
void check_regression_sample(const data::Dataset& ds, std::size_t dim) {
  FEDVR_CHECK_MSG(ds.feature_dim() == dim + 1,
                  "regression samples need dim+1 = " << dim + 1
                      << " entries (features + target), dataset has "
                      << ds.feature_dim());
}
}  // namespace

double LinearRegressionModel::loss(std::span<const double> w,
                                   const data::Dataset& ds,
                                   std::span<const std::size_t> indices)
    const {
  FEDVR_CHECK(w.size() == dim_ && !indices.empty());
  check_regression_sample(ds, dim_);
  double total = 0.0;
  for (std::size_t i : indices) {
    const auto row = ds.sample(i);
    const double err = tensor::dot(row.subspan(0, dim_), w) - row[dim_];
    total += 0.5 * err * err;
  }
  double value = total / static_cast<double>(indices.size());
  if (l2_reg_ > 0.0) value += 0.5 * l2_reg_ * tensor::nrm2_squared(w);
  return value;
}

double LinearRegressionModel::loss_and_gradient(
    std::span<const double> w, const data::Dataset& ds,
    std::span<const std::size_t> indices, std::span<double> grad) const {
  FEDVR_CHECK(w.size() == dim_ && grad.size() == dim_ && !indices.empty());
  check_regression_sample(ds, dim_);
  tensor::fill(grad, 0.0);
  double total = 0.0;
  for (std::size_t i : indices) {
    const auto row = ds.sample(i);
    const auto x = row.subspan(0, dim_);
    const double err = tensor::dot(x, w) - row[dim_];
    total += 0.5 * err * err;
    tensor::axpy(err, x, grad);
  }
  const double inv = 1.0 / static_cast<double>(indices.size());
  tensor::scal(inv, grad);
  double value = total * inv;
  if (l2_reg_ > 0.0) {
    value += 0.5 * l2_reg_ * tensor::nrm2_squared(w);
    tensor::axpy(l2_reg_, w, grad);
  }
  return value;
}

void LinearRegressionModel::predict(std::span<const double> w,
                                    const data::Dataset& ds,
                                    std::span<const std::size_t> indices,
                                    std::span<std::size_t> out) const {
  FEDVR_CHECK(out.size() == indices.size());
  check_regression_sample(ds, dim_);
  for (std::size_t k = 0; k < indices.size(); ++k) {
    const auto row = ds.sample(indices[k]);
    out[k] = tensor::dot(row.subspan(0, dim_), w) >= 0.0 ? 1u : 0u;
  }
}

// ---------------- LinearSvmModel ----------------

LinearSvmModel::LinearSvmModel(std::size_t dim, double l2_reg)
    : dim_(dim), l2_reg_(l2_reg) {
  FEDVR_CHECK(dim > 0 && l2_reg >= 0.0);
}

void LinearSvmModel::initialize(util::Rng& rng, std::span<double> w) const {
  FEDVR_CHECK(w.size() == dim_ + 1);
  for (auto& v : w) v = rng.normal(0.0, 0.1);
  w[dim_] = 0.0;  // bias
}

double LinearSvmModel::loss(std::span<const double> w,
                            const data::Dataset& ds,
                            std::span<const std::size_t> indices) const {
  FEDVR_CHECK(w.size() == dim_ + 1 && !indices.empty());
  FEDVR_CHECK_MSG(ds.feature_dim() == dim_,
                  "SVM expects " << dim_ << " features, dataset has "
                                 << ds.feature_dim());
  const auto weights = w.subspan(0, dim_);
  const double bias = w[dim_];
  double total = 0.0;
  for (std::size_t i : indices) {
    const double y = ds.label(i) > 0 ? 1.0 : -1.0;
    const double margin =
        y * (tensor::dot(ds.sample(i), weights) + bias);
    total += std::max(0.0, 1.0 - margin);
  }
  double value = total / static_cast<double>(indices.size());
  if (l2_reg_ > 0.0) value += 0.5 * l2_reg_ * tensor::nrm2_squared(weights);
  return value;
}

double LinearSvmModel::loss_and_gradient(std::span<const double> w,
                                         const data::Dataset& ds,
                                         std::span<const std::size_t> indices,
                                         std::span<double> grad) const {
  FEDVR_CHECK(w.size() == dim_ + 1 && grad.size() == dim_ + 1);
  FEDVR_CHECK(!indices.empty());
  const auto weights = w.subspan(0, dim_);
  const double bias = w[dim_];
  tensor::fill(grad, 0.0);
  auto grad_w = grad.subspan(0, dim_);
  double total = 0.0;
  const double inv = 1.0 / static_cast<double>(indices.size());
  for (std::size_t i : indices) {
    const double y = ds.label(i) > 0 ? 1.0 : -1.0;
    const auto x = ds.sample(i);
    const double margin = y * (tensor::dot(x, weights) + bias);
    if (margin < 1.0) {
      total += 1.0 - margin;
      // Subgradient of max{0, 1 - margin}: -y x (and -y for the bias).
      tensor::axpy(-y * inv, x, grad_w);
      grad[dim_] -= y * inv;
    }
  }
  double value = total * inv;
  if (l2_reg_ > 0.0) {
    value += 0.5 * l2_reg_ * tensor::nrm2_squared(weights);
    tensor::axpy(l2_reg_, weights, grad_w);
  }
  return value;
}

void LinearSvmModel::predict(std::span<const double> w,
                             const data::Dataset& ds,
                             std::span<const std::size_t> indices,
                             std::span<std::size_t> out) const {
  FEDVR_CHECK(out.size() == indices.size());
  const auto weights = w.subspan(0, dim_);
  const double bias = w[dim_];
  for (std::size_t k = 0; k < indices.size(); ++k) {
    const double score =
        tensor::dot(ds.sample(indices[k]), weights) + bias;
    out[k] = score >= 0.0 ? 1u : 0u;
  }
}

}  // namespace fedvr::nn
