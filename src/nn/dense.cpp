#include "nn/dense.h"

#include <vector>

#include "tensor/kernels.h"
#include "tensor/random_init.h"
#include "tensor/vecops.h"
#include "util/error.h"

namespace fedvr::nn {

DenseLayer::DenseLayer(std::size_t in, std::size_t out) : in_(in), out_(out) {
  FEDVR_CHECK(in > 0 && out > 0);
}

void DenseLayer::init_params(util::Rng& rng, std::span<double> w) const {
  FEDVR_CHECK(w.size() == param_count());
  tensor::fill_glorot_uniform(rng, w.subspan(0, out_ * in_), in_, out_);
  tensor::fill(w.subspan(out_ * in_, out_), 0.0);
}

void DenseLayer::forward(std::span<const double> w, std::size_t batch,
                         std::span<const double> x, std::span<double> y,
                         LayerCache* cache) const {
  FEDVR_CHECK(w.size() == param_count());
  FEDVR_CHECK(x.size() == batch * in_ && y.size() == batch * out_);
  const auto weights = w.subspan(0, out_ * in_);
  const auto bias = w.subspan(out_ * in_, out_);
  // y (B x out) = x (B x in) * W^T (in x out)
  tensor::gemm_packed(tensor::Trans::kNo, tensor::Trans::kYes, batch, out_,
                      in_, 1.0, x, weights, 0.0, y);
  tensor::add_bias_rows(batch, out_, y, bias);
  if (cache != nullptr) {
    cache->input.assign(x.begin(), x.end());
  }
}

void DenseLayer::backward(std::span<const double> w, std::size_t batch,
                          std::span<const double> dy, std::span<double> dx,
                          std::span<double> dw,
                          const LayerCache& cache) const {
  FEDVR_CHECK(w.size() == param_count() && dw.size() == param_count());
  FEDVR_CHECK(dy.size() == batch * out_ && dx.size() == batch * in_);
  FEDVR_CHECK(cache.input.size() == batch * in_);
  const auto weights = w.subspan(0, out_ * in_);
  auto d_weights = dw.subspan(0, out_ * in_);
  auto d_bias = dw.subspan(out_ * in_, out_);
  // dx (B x in) = dy (B x out) * W (out x in)
  tensor::gemm_packed(tensor::Trans::kNo, tensor::Trans::kNo, batch, in_,
                      out_, 1.0, dy, weights, 0.0, dx);
  // dW (out x in) += dy^T (out x B) * x (B x in)
  tensor::gemm_packed(tensor::Trans::kYes, tensor::Trans::kNo, out_, in_,
                      batch, 1.0, dy, cache.input, 1.0, d_weights);
  // db += column sums of dy
  std::vector<double> bias_grad(out_);
  tensor::sum_rows(batch, out_, dy, bias_grad);
  tensor::axpy(1.0, bias_grad, d_bias);
}

}  // namespace fedvr::nn
