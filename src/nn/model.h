// The Model interface: everything the federated solvers need from a
// learning task.
//
// A Model is immutable and thread-safe; parameters travel as flat vectors
// owned by the caller. Gradients are *evaluable at arbitrary parameter
// vectors* — the property SVRG (eq. 8b) and SARAH (eq. 8a) rely on when they
// combine gradients at the current iterate with gradients at an anchor.
//
// All losses and gradients are averaged over the given index set, matching
// the paper's F_n(w) = (1/D_n) sum_i f_i(w) (eq. 1).
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "data/dataset.h"
#include "util/rng.h"

namespace fedvr::nn {

class Model {
 public:
  virtual ~Model() = default;

  [[nodiscard]] virtual std::size_t num_parameters() const = 0;

  /// Writes a fresh initialization into `w`.
  virtual void initialize(util::Rng& rng, std::span<double> w) const = 0;

  /// Mean loss over ds[indices] at parameters w.
  [[nodiscard]] virtual double loss(
      std::span<const double> w, const data::Dataset& ds,
      std::span<const std::size_t> indices) const = 0;

  /// Mean loss and gradient over ds[indices]; `grad` is overwritten.
  virtual double loss_and_gradient(std::span<const double> w,
                                   const data::Dataset& ds,
                                   std::span<const std::size_t> indices,
                                   std::span<double> grad) const = 0;

  /// Predicted class per sample.
  virtual void predict(std::span<const double> w, const data::Dataset& ds,
                       std::span<const std::size_t> indices,
                       std::span<std::size_t> out) const = 0;

  // ---- Convenience wrappers (implemented on the virtual core). ----

  /// Mean loss over the whole dataset.
  [[nodiscard]] double full_loss(std::span<const double> w,
                                 const data::Dataset& ds) const;

  /// Mean loss and full-batch gradient over the whole dataset — the
  /// v^(0) = grad F_n(w^(0)) anchor evaluation on Algorithm 1 line 4.
  double full_gradient(std::span<const double> w, const data::Dataset& ds,
                       std::span<double> grad) const;

  /// Fraction of correctly classified samples.
  [[nodiscard]] double accuracy(std::span<const double> w,
                                const data::Dataset& ds) const;

  /// Allocates and initializes a parameter vector.
  [[nodiscard]] std::vector<double> initial_parameters(util::Rng& rng) const;
};

/// All-sample index vector [0, n) — helper for full-batch calls.
[[nodiscard]] std::vector<std::size_t> all_indices(std::size_t n);

}  // namespace fedvr::nn
