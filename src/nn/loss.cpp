#include "nn/loss.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "tensor/kernels.h"
#include "util/error.h"

namespace fedvr::nn {

namespace {
// Numerically stable mean NLL via the log-sum-exp trick; probs output is
// optional (used by the backward pass).
double cross_entropy_core(std::size_t batch, std::size_t classes,
                          std::span<const double> logits,
                          std::span<const int> labels, double* probs) {
  FEDVR_CHECK(batch > 0);
  FEDVR_CHECK(logits.size() == batch * classes);
  FEDVR_CHECK(labels.size() == batch);
  double total = 0.0;
  for (std::size_t i = 0; i < batch; ++i) {
    const double* row = logits.data() + i * classes;
    const int label = labels[i];
    FEDVR_CHECK_MSG(label >= 0 && static_cast<std::size_t>(label) < classes,
                    "label " << label << " out of range");
    double max_v = -std::numeric_limits<double>::infinity();
    for (std::size_t j = 0; j < classes; ++j) max_v = std::max(max_v, row[j]);
    double sum_exp = 0.0;
    for (std::size_t j = 0; j < classes; ++j) {
      const double e = std::exp(row[j] - max_v);
      if (probs != nullptr) probs[i * classes + j] = e;
      sum_exp += e;
    }
    if (probs != nullptr) {
      const double inv = 1.0 / sum_exp;
      for (std::size_t j = 0; j < classes; ++j) probs[i * classes + j] *= inv;
    }
    const double log_z = max_v + std::log(sum_exp);
    total += log_z - row[static_cast<std::size_t>(label)];
  }
  return total / static_cast<double>(batch);
}
}  // namespace

double softmax_cross_entropy(std::size_t batch, std::size_t classes,
                             std::span<const double> logits,
                             std::span<const int> labels) {
  return cross_entropy_core(batch, classes, logits, labels, nullptr);
}

double softmax_cross_entropy_backward(std::size_t batch, std::size_t classes,
                                      std::span<const double> logits,
                                      std::span<const int> labels,
                                      std::span<double> d_logits) {
  FEDVR_CHECK(d_logits.size() == batch * classes);
  const double loss =
      cross_entropy_core(batch, classes, logits, labels, d_logits.data());
  const double inv_batch = 1.0 / static_cast<double>(batch);
  for (std::size_t i = 0; i < batch; ++i) {
    double* row = d_logits.data() + i * classes;
    row[static_cast<std::size_t>(labels[i])] -= 1.0;
    for (std::size_t j = 0; j < classes; ++j) row[j] *= inv_batch;
  }
  return loss;
}

}  // namespace fedvr::nn
