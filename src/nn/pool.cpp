#include "nn/pool.h"

#include <limits>

#include "tensor/vecops.h"
#include "util/error.h"

namespace fedvr::nn {

MaxPool2dLayer::MaxPool2dLayer(std::size_t channels, std::size_t height,
                               std::size_t width, std::size_t pool)
    : channels_(channels), height_(height), width_(width), pool_(pool) {
  FEDVR_CHECK(channels > 0 && pool >= 1);
  FEDVR_CHECK_MSG(height >= pool && width >= pool,
                  "pool window " << pool << " larger than plane " << height
                                 << "x" << width);
}

void MaxPool2dLayer::init_params(util::Rng& /*rng*/,
                                 std::span<double> w) const {
  FEDVR_CHECK(w.empty());
}

void MaxPool2dLayer::forward(std::span<const double> w, std::size_t batch,
                             std::span<const double> x, std::span<double> y,
                             LayerCache* cache) const {
  FEDVR_CHECK(w.empty());
  FEDVR_CHECK(x.size() == batch * in_size() && y.size() == batch * out_size());
  const std::size_t oh = out_h();
  const std::size_t ow = out_w();
  if (cache != nullptr) cache->indices.resize(batch * out_size());
  for (std::size_t s = 0; s < batch; ++s) {
    const double* in = x.data() + s * in_size();
    double* out = y.data() + s * out_size();
    std::size_t* arg = (cache != nullptr)
                           ? cache->indices.data() + s * out_size()
                           : nullptr;
    for (std::size_t c = 0; c < channels_; ++c) {
      const double* plane = in + c * height_ * width_;
      for (std::size_t oy = 0; oy < oh; ++oy) {
        for (std::size_t ox = 0; ox < ow; ++ox) {
          double best = -std::numeric_limits<double>::infinity();
          std::size_t best_idx = 0;
          for (std::size_t py = 0; py < pool_; ++py) {
            for (std::size_t px = 0; px < pool_; ++px) {
              const std::size_t iy = oy * pool_ + py;
              const std::size_t ix = ox * pool_ + px;
              const std::size_t idx = iy * width_ + ix;
              if (plane[idx] > best) {
                best = plane[idx];
                best_idx = idx;
              }
            }
          }
          const std::size_t out_idx = (c * oh + oy) * ow + ox;
          out[out_idx] = best;
          if (arg != nullptr) {
            arg[out_idx] = c * height_ * width_ + best_idx;
          }
        }
      }
    }
  }
}

void MaxPool2dLayer::backward(std::span<const double> w, std::size_t batch,
                              std::span<const double> dy,
                              std::span<double> dx, std::span<double> dw,
                              const LayerCache& cache) const {
  FEDVR_CHECK(w.empty() && dw.empty());
  FEDVR_CHECK(dy.size() == batch * out_size() &&
              dx.size() == batch * in_size());
  FEDVR_CHECK(cache.indices.size() == batch * out_size());
  tensor::fill(dx, 0.0);
  for (std::size_t s = 0; s < batch; ++s) {
    const double* d_out = dy.data() + s * out_size();
    double* d_in = dx.data() + s * in_size();
    const std::size_t* arg = cache.indices.data() + s * out_size();
    for (std::size_t o = 0; o < out_size(); ++o) {
      d_in[arg[o]] += d_out[o];
    }
  }
}

}  // namespace fedvr::nn
