// 2-D convolution layer (CHW layout), lowered to GEMM via im2col.
#pragma once

#include "nn/layer.h"
#include "tensor/im2col.h"

namespace fedvr::nn {

class Conv2dLayer final : public Layer {
 public:
  /// `geometry` describes the input plane stack and kernel; `out_channels`
  /// is the number of filters. Parameter layout: W (out_channels x
  /// channels*kh*kw) row-major, then b (out_channels).
  Conv2dLayer(tensor::ConvGeometry geometry, std::size_t out_channels);

  [[nodiscard]] std::size_t in_size() const override {
    return geometry_.image_size();
  }
  [[nodiscard]] std::size_t out_size() const override {
    return out_channels_ * geometry_.out_pixels();
  }
  [[nodiscard]] std::size_t param_count() const override {
    return out_channels_ * geometry_.col_rows() + out_channels_;
  }

  [[nodiscard]] const tensor::ConvGeometry& geometry() const {
    return geometry_;
  }
  [[nodiscard]] std::size_t out_channels() const { return out_channels_; }

  void init_params(util::Rng& rng, std::span<double> w) const override;

  void forward(std::span<const double> w, std::size_t batch,
               std::span<const double> x, std::span<double> y,
               LayerCache* cache) const override;

  void backward(std::span<const double> w, std::size_t batch,
                std::span<const double> dy, std::span<double> dx,
                std::span<double> dw, const LayerCache& cache) const override;

  [[nodiscard]] std::string name() const override { return "conv2d"; }

 private:
  tensor::ConvGeometry geometry_;
  std::size_t out_channels_;
};

}  // namespace fedvr::nn
