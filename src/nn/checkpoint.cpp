#include "nn/checkpoint.h"

#include <bit>
#include <cstdint>
#include <cstring>
#include <fstream>

#include "util/error.h"

namespace fedvr::nn {

namespace {
constexpr std::uint64_t kMagic = 0x46564452'43503031ULL;  // "FVDRCP01"
constexpr std::uint32_t kVersion = 1;

static_assert(std::endian::native == std::endian::little,
              "checkpoint format assumes a little-endian host");
}  // namespace

void save_parameters(const std::string& path, std::span<const double> w) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  FEDVR_CHECK_MSG(out.good(), "cannot open checkpoint for writing: " << path);
  const std::uint64_t count = w.size();
  out.write(reinterpret_cast<const char*>(&kMagic), sizeof kMagic);
  out.write(reinterpret_cast<const char*>(&kVersion), sizeof kVersion);
  out.write(reinterpret_cast<const char*>(&count), sizeof count);
  out.write(reinterpret_cast<const char*>(w.data()),
            static_cast<std::streamsize>(w.size_bytes()));
  FEDVR_CHECK_MSG(out.good(), "write failure on checkpoint " << path);
}

std::vector<double> load_parameters(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  FEDVR_CHECK_MSG(in.good(), "cannot open checkpoint: " << path);
  std::uint64_t magic = 0;
  std::uint32_t version = 0;
  std::uint64_t count = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof magic);
  in.read(reinterpret_cast<char*>(&version), sizeof version);
  in.read(reinterpret_cast<char*>(&count), sizeof count);
  FEDVR_CHECK_MSG(in.good(), "truncated checkpoint header in " << path);
  FEDVR_CHECK_MSG(magic == kMagic,
                  path << " is not a fedvr checkpoint (bad magic)");
  FEDVR_CHECK_MSG(version == kVersion,
                  "unsupported checkpoint version " << version << " in "
                                                    << path);
  std::vector<double> w(count);
  in.read(reinterpret_cast<char*>(w.data()),
          static_cast<std::streamsize>(count * sizeof(double)));
  FEDVR_CHECK_MSG(in.good(), "truncated checkpoint data in " << path);
  // The payload must end exactly here.
  char extra = 0;
  in.read(&extra, 1);
  FEDVR_CHECK_MSG(in.eof(), "trailing bytes after checkpoint data in "
                                << path);
  return w;
}

std::vector<double> load_parameters(const std::string& path,
                                    std::size_t expected) {
  auto w = load_parameters(path);
  FEDVR_CHECK_MSG(w.size() == expected,
                  "checkpoint " << path << " holds " << w.size()
                                << " parameters, model expects " << expected);
  return w;
}

}  // namespace fedvr::nn
