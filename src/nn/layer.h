// Layer abstraction for the hand-rolled neural network library.
//
// Layers are *stateless with respect to parameters*: weights are slices of a
// flat parameter vector owned by the caller and passed into every call. This
// is what lets the variance-reduction estimators (SVRG eq. 8b, SARAH eq. 8a)
// evaluate gradients at the anchor point w^(0) and the current iterate
// w^(t) with the same model object, and lets device threads share one model
// while each owns its parameter vector.
//
// Data layout: a batch is (batch x in_size) row-major; images inside a
// sample are CHW.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "util/rng.h"

namespace fedvr::nn {

/// Scratch saved by forward() for use in backward(). One cache per layer per
/// (thread, batch); reused across iterations to avoid churn.
struct LayerCache {
  std::vector<double> input;          // copy of the forward input batch
  std::vector<std::size_t> indices;   // e.g. argmax positions for max-pool
  std::vector<double> scratch;        // layer-specific extra storage
};

class Layer {
 public:
  virtual ~Layer() = default;

  /// Flat input feature count per sample.
  [[nodiscard]] virtual std::size_t in_size() const = 0;
  /// Flat output feature count per sample.
  [[nodiscard]] virtual std::size_t out_size() const = 0;
  /// Number of parameters this layer owns in the flat vector.
  [[nodiscard]] virtual std::size_t param_count() const = 0;

  /// Writes an initial value for this layer's parameter slice.
  virtual void init_params(util::Rng& rng, std::span<double> w) const = 0;

  /// y = f(x; w) for a batch. `cache` may be nullptr for inference-only
  /// calls (backward will not be invoked).
  virtual void forward(std::span<const double> w, std::size_t batch,
                       std::span<const double> x, std::span<double> y,
                       LayerCache* cache) const = 0;

  /// Given upstream gradient dy, writes dx (gradient w.r.t. the input) and
  /// *accumulates* into dw (gradient w.r.t. this layer's parameters).
  /// `cache` must come from a matching forward() call.
  virtual void backward(std::span<const double> w, std::size_t batch,
                        std::span<const double> dy, std::span<double> dx,
                        std::span<double> dw,
                        const LayerCache& cache) const = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

}  // namespace fedvr::nn
