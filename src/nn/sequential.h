// Linear chain of layers sharing one flat parameter vector.
#pragma once

#include <memory>
#include <vector>

#include "nn/layer.h"

namespace fedvr::nn {

class Sequential {
 public:
  explicit Sequential(std::vector<std::unique_ptr<Layer>> layers);

  [[nodiscard]] std::size_t in_size() const;
  [[nodiscard]] std::size_t out_size() const;
  [[nodiscard]] std::size_t param_count() const { return total_params_; }
  [[nodiscard]] std::size_t num_layers() const { return layers_.size(); }
  [[nodiscard]] const Layer& layer(std::size_t i) const { return *layers_[i]; }

  /// The [offset, offset+count) slice of the flat vector owned by layer i.
  [[nodiscard]] std::pair<std::size_t, std::size_t> param_slice(
      std::size_t i) const;

  void init_params(util::Rng& rng, std::span<double> w) const;

  /// Per-call workspace: activation buffers and per-layer caches. Reusable
  /// across calls from the same thread; cheap to construct.
  struct Workspace {
    std::vector<std::vector<double>> activations;  // layer outputs
    std::vector<LayerCache> caches;
    std::vector<std::vector<double>> grads;  // gradient buffers (backward)
  };

  /// Runs the batch through all layers; returns the final activation span
  /// (valid until the next call with the same workspace). `training` selects
  /// whether caches are populated for backward().
  [[nodiscard]] std::span<const double> forward(std::span<const double> w,
                                                std::size_t batch,
                                                std::span<const double> x,
                                                Workspace& ws,
                                                bool training) const;

  /// Backpropagates d_out (gradient w.r.t. the final activation) and
  /// accumulates parameter gradients into dw. Must follow a forward() with
  /// training == true on the same workspace and batch.
  void backward(std::span<const double> w, std::size_t batch,
                std::span<const double> x, std::span<const double> d_out,
                std::span<double> dw, Workspace& ws) const;

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
  std::vector<std::size_t> offsets_;  // param offset per layer
  std::size_t total_params_ = 0;
};

}  // namespace fedvr::nn
