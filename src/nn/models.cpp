#include "nn/models.h"

#include <vector>

#include "nn/activation.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/pool.h"
#include "util/error.h"

namespace fedvr::nn {

std::shared_ptr<FeedForwardModel> make_logistic_regression(
    std::size_t input_dim, std::size_t num_classes, double l2_reg) {
  std::vector<std::unique_ptr<Layer>> layers;
  layers.push_back(std::make_unique<DenseLayer>(input_dim, num_classes));
  auto net = std::make_shared<const Sequential>(std::move(layers));
  return std::make_shared<FeedForwardModel>(std::move(net), l2_reg);
}

namespace {
std::unique_ptr<Layer> make_activation(const std::string& kind,
                                       std::size_t size) {
  if (kind == "relu") return std::make_unique<ReluLayer>(size);
  if (kind == "tanh") return std::make_unique<TanhLayer>(size);
  if (kind == "sigmoid") return std::make_unique<SigmoidLayer>(size);
  FEDVR_CHECK_MSG(false, "unknown activation '" << kind
                             << "' (expected relu/tanh/sigmoid)");
  return nullptr;  // unreachable
}
}  // namespace

std::shared_ptr<FeedForwardModel> make_mlp(const MlpConfig& config) {
  FEDVR_CHECK(config.input_dim > 0 && config.num_classes >= 2);
  std::vector<std::unique_ptr<Layer>> layers;
  std::size_t width = config.input_dim;
  for (std::size_t hidden : config.hidden) {
    FEDVR_CHECK_MSG(hidden > 0, "hidden layer width must be positive");
    layers.push_back(std::make_unique<DenseLayer>(width, hidden));
    layers.push_back(make_activation(config.activation, hidden));
    width = hidden;
  }
  layers.push_back(std::make_unique<DenseLayer>(width, config.num_classes));
  auto net = std::make_shared<const Sequential>(std::move(layers));
  return std::make_shared<FeedForwardModel>(std::move(net), config.l2_reg);
}

std::shared_ptr<FeedForwardModel> make_two_layer_cnn(const CnnConfig& config) {
  FEDVR_CHECK_MSG(config.side % 4 == 0,
                  "CNN input side must be divisible by 4 (two 2x2 pools), got "
                      << config.side);
  const std::size_t pad = config.kernel / 2;  // 'same' padding for odd kernels
  std::vector<std::unique_ptr<Layer>> layers;

  tensor::ConvGeometry g1{.channels = config.in_channels,
                          .height = config.side,
                          .width = config.side,
                          .kernel_h = config.kernel,
                          .kernel_w = config.kernel,
                          .pad = pad,
                          .stride = 1};
  layers.push_back(std::make_unique<Conv2dLayer>(g1, config.conv1_channels));
  layers.push_back(std::make_unique<ReluLayer>(config.conv1_channels *
                                               config.side * config.side));
  layers.push_back(std::make_unique<MaxPool2dLayer>(
      config.conv1_channels, config.side, config.side, 2));

  const std::size_t half = config.side / 2;
  tensor::ConvGeometry g2{.channels = config.conv1_channels,
                          .height = half,
                          .width = half,
                          .kernel_h = config.kernel,
                          .kernel_w = config.kernel,
                          .pad = pad,
                          .stride = 1};
  layers.push_back(std::make_unique<Conv2dLayer>(g2, config.conv2_channels));
  layers.push_back(
      std::make_unique<ReluLayer>(config.conv2_channels * half * half));
  layers.push_back(
      std::make_unique<MaxPool2dLayer>(config.conv2_channels, half, half, 2));

  const std::size_t quarter = half / 2;
  layers.push_back(std::make_unique<DenseLayer>(
      config.conv2_channels * quarter * quarter, config.num_classes));

  auto net = std::make_shared<const Sequential>(std::move(layers));
  return std::make_shared<FeedForwardModel>(std::move(net), config.l2_reg);
}

}  // namespace fedvr::nn
