#include "nn/sequential.h"

#include "check/check.h"
#include "util/error.h"

namespace fedvr::nn {

Sequential::Sequential(std::vector<std::unique_ptr<Layer>> layers)
    : layers_(std::move(layers)) {
  FEDVR_CHECK_MSG(!layers_.empty(), "Sequential needs at least one layer");
  offsets_.reserve(layers_.size());
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    FEDVR_CHECK(layers_[i] != nullptr);
    if (i > 0) {
      FEDVR_CHECK_MSG(layers_[i - 1]->out_size() == layers_[i]->in_size(),
                      "layer " << i - 1 << " (" << layers_[i - 1]->name()
                               << ") outputs " << layers_[i - 1]->out_size()
                               << " features but layer " << i << " ("
                               << layers_[i]->name() << ") expects "
                               << layers_[i]->in_size());
    }
    offsets_.push_back(total_params_);
    total_params_ += layers_[i]->param_count();
  }
}

std::size_t Sequential::in_size() const { return layers_.front()->in_size(); }
std::size_t Sequential::out_size() const {
  return layers_.back()->out_size();
}

std::pair<std::size_t, std::size_t> Sequential::param_slice(
    std::size_t i) const {
  FEDVR_CHECK(i < layers_.size());
  return {offsets_[i], layers_[i]->param_count()};
}

void Sequential::init_params(util::Rng& rng, std::span<double> w) const {
  FEDVR_CHECK(w.size() == total_params_);
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    layers_[i]->init_params(rng,
                            w.subspan(offsets_[i], layers_[i]->param_count()));
  }
}

std::span<const double> Sequential::forward(std::span<const double> w,
                                            std::size_t batch,
                                            std::span<const double> x,
                                            Workspace& ws,
                                            bool training) const {
  FEDVR_CHECK_SHAPE(w.size(), total_params_);
  FEDVR_CHECK_SHAPE(x.size(), batch * in_size());
  ws.activations.resize(layers_.size());
  if (training) ws.caches.resize(layers_.size());
  std::span<const double> current = x;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    auto& out = ws.activations[i];
    out.resize(batch * layers_[i]->out_size());
    layers_[i]->forward(w.subspan(offsets_[i], layers_[i]->param_count()),
                        batch, current, out,
                        training ? &ws.caches[i] : nullptr);
    current = out;
  }
  return current;
}

void Sequential::backward(std::span<const double> w, std::size_t batch,
                          std::span<const double> x,
                          std::span<const double> d_out, std::span<double> dw,
                          Workspace& ws) const {
  FEDVR_CHECK_SHAPE(w.size(), total_params_);
  FEDVR_CHECK_SHAPE(dw.size(), total_params_);
  FEDVR_CHECK_SHAPE(d_out.size(), batch * out_size());
  FEDVR_CHECK_MSG(ws.caches.size() == layers_.size(),
                  "backward() without a training forward()");
  ws.grads.resize(layers_.size());
  FEDVR_CHECK_FINITE(d_out, "sequential upstream gradient");
  std::span<const double> upstream = d_out;
  for (std::size_t i = layers_.size(); i-- > 0;) {
    auto& d_in = ws.grads[i];
    d_in.resize(batch * layers_[i]->in_size());
    layers_[i]->backward(w.subspan(offsets_[i], layers_[i]->param_count()),
                         batch, upstream, d_in,
                         dw.subspan(offsets_[i], layers_[i]->param_count()),
                         ws.caches[i]);
    // A NaN born inside one layer's backward poisons every gradient below
    // it; catching it at the boundary names the guilty layer.
    FEDVR_CHECK_FINITE(d_in, layers_[i]->name().c_str());
    upstream = d_in;
  }
  (void)x;  // input gradient (ws.grads[0]) is available but unused here
}

}  // namespace fedvr::nn
