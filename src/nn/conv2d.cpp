#include "nn/conv2d.h"

#include <algorithm>
#include <vector>

#include "tensor/arena.h"
#include "tensor/kernels.h"
#include "tensor/random_init.h"
#include "tensor/vecops.h"
#include "util/error.h"
#include "util/thread_pool.h"

namespace fedvr::nn {

namespace {

// Samples per weight-gradient accumulation block in backward(). The block
// structure is fixed by this constant alone — never by the pool size — so
// the dW reduction order (ascending sample within a block, ascending block)
// is identical for serial and parallel runs: the determinism contract.
constexpr std::size_t kGradBlock = 4;

}  // namespace

Conv2dLayer::Conv2dLayer(tensor::ConvGeometry geometry,
                         std::size_t out_channels)
    : geometry_(geometry), out_channels_(out_channels) {
  FEDVR_CHECK(out_channels > 0);
  FEDVR_CHECK(geometry.channels > 0 && geometry.height > 0 &&
              geometry.width > 0);
}

void Conv2dLayer::init_params(util::Rng& rng, std::span<double> w) const {
  FEDVR_CHECK(w.size() == param_count());
  const std::size_t fan_in = geometry_.col_rows();
  const std::size_t fan_out =
      out_channels_ * geometry_.kernel_h * geometry_.kernel_w;
  tensor::fill_glorot_uniform(rng, w.subspan(0, out_channels_ * fan_in),
                              fan_in, fan_out);
  tensor::fill(w.subspan(out_channels_ * fan_in, out_channels_), 0.0);
}

void Conv2dLayer::forward(std::span<const double> w, std::size_t batch,
                          std::span<const double> x, std::span<double> y,
                          LayerCache* cache) const {
  FEDVR_CHECK(w.size() == param_count());
  FEDVR_CHECK(x.size() == batch * in_size() && y.size() == batch * out_size());
  const std::size_t col_rows = geometry_.col_rows();
  const std::size_t pixels = geometry_.out_pixels();
  const auto weights = w.subspan(0, out_channels_ * col_rows);
  const auto bias = w.subspan(out_channels_ * col_rows, out_channels_);

  // Samples are independent and write disjoint slices of y, so the batch
  // fans out across the pool; each worker keeps its own im2col scratch
  // (caching columns for every sample at once would cost
  // batch*col_rows*pixels doubles — tens of MB for the paper's CNN).
  util::ThreadPool::global().parallel_for(0, batch, [&](std::size_t s) {
    tensor::Workspace ws(tensor::scratch_arena());
    auto cols = ws.alloc<double>(col_rows * pixels);
    const auto image = x.subspan(s * in_size(), in_size());
    auto out = y.subspan(s * out_size(), out_size());
    tensor::im2col(geometry_, image, cols);
    // out (oc x pixels) = W (oc x col_rows) * cols (col_rows x pixels)
    tensor::gemm_packed(tensor::Trans::kNo, tensor::Trans::kNo, out_channels_,
                        pixels, col_rows, 1.0, weights, cols, 0.0, out);
    for (std::size_t oc = 0; oc < out_channels_; ++oc) {
      double* plane = out.data() + oc * pixels;
      const double b = bias[oc];
      for (std::size_t p = 0; p < pixels; ++p) plane[p] += b;
    }
  });
  if (cache != nullptr) cache->input.assign(x.begin(), x.end());
}

void Conv2dLayer::backward(std::span<const double> w, std::size_t batch,
                           std::span<const double> dy, std::span<double> dx,
                           std::span<double> dw,
                           const LayerCache& cache) const {
  FEDVR_CHECK(w.size() == param_count() && dw.size() == param_count());
  FEDVR_CHECK(dy.size() == batch * out_size() &&
              dx.size() == batch * in_size());
  FEDVR_CHECK(cache.input.size() == batch * in_size());
  const std::size_t col_rows = geometry_.col_rows();
  const std::size_t pixels = geometry_.out_pixels();
  const auto weights = w.subspan(0, out_channels_ * col_rows);
  auto d_weights = dw.subspan(0, out_channels_ * col_rows);
  auto d_bias = dw.subspan(out_channels_ * col_rows, out_channels_);
  const std::span<const double> input = cache.input;

  // dx is disjoint per sample, but dW/db sum over the batch. Each
  // kGradBlock-sample block accumulates into its own partial buffer in
  // parallel; the partials are then reduced serially in ascending block
  // order, so the floating-point reduction tree never depends on thread
  // scheduling. The dW partials are kept transposed (col_rows x oc): that
  // GEMM shape packs cols without a strided transpose pass and benchmarks
  // faster than the (oc x col_rows) form at the paper's layer shapes; the
  // partials are folded back with add_transposed in the serial reduce.
  const std::size_t nblocks = (batch + kGradBlock - 1) / kGradBlock;
  const std::size_t wsize = out_channels_ * col_rows;
  const std::size_t psize = wsize + out_channels_;  // dW^T partial + db partial
  tensor::Workspace ws(tensor::scratch_arena());
  auto partials = ws.alloc_zeroed<double>(nblocks * psize);
  // W^T materialized once so every d_cols GEMM reads unit-stride operands
  // instead of re-packing the transposed weights per sample.
  auto wt = ws.alloc<double>(col_rows * out_channels_);
  tensor::transpose(out_channels_, col_rows, weights, wt);

  util::ThreadPool::global().parallel_for(0, nblocks, [&](std::size_t blk) {
    tensor::Workspace wws(tensor::scratch_arena());
    auto cols = wws.alloc<double>(col_rows * pixels);
    auto d_cols = wws.alloc<double>(col_rows * pixels);
    auto pw = std::span<double>(partials).subspan(blk * psize, wsize);
    auto pb = std::span<double>(partials).subspan(blk * psize + wsize,
                                                  out_channels_);
    const std::size_t s_end = std::min(batch, (blk + 1) * kGradBlock);
    for (std::size_t s = blk * kGradBlock; s < s_end; ++s) {
      const auto image = input.subspan(s * in_size(), in_size());
      const auto d_out = dy.subspan(s * out_size(), out_size());
      auto d_image = dx.subspan(s * in_size(), in_size());

      // pw (col_rows x oc) += cols (col_rows x pixels) * d_out^T (pixels x
      // oc)
      tensor::im2col(geometry_, image, cols);
      tensor::gemm_packed(tensor::Trans::kNo, tensor::Trans::kYes, col_rows,
                          out_channels_, pixels, 1.0, cols, d_out, 1.0, pw);
      // pb[oc] += sum over pixels of d_out(oc, .), per sample in ascending
      // order.
      tensor::add_row_sums(out_channels_, pixels, d_out, pb);
      // d_cols (col_rows x pixels) = W^T (col_rows x oc) * d_out (oc x
      // pixels)
      tensor::gemm_packed(tensor::Trans::kNo, tensor::Trans::kNo, col_rows,
                          pixels, out_channels_, 1.0, wt, d_out, 0.0, d_cols);
      tensor::fill(d_image, 0.0);
      tensor::col2im(geometry_, d_cols, d_image);
    }
  });

  for (std::size_t blk = 0; blk < nblocks; ++blk) {
    const auto part =
        std::span<const double>(partials).subspan(blk * psize, psize);
    tensor::add_transposed(out_channels_, col_rows, part.subspan(0, wsize),
                           d_weights);
    tensor::axpy(1.0, part.subspan(wsize, out_channels_), d_bias);
  }
}

}  // namespace fedvr::nn
