// Max pooling over non-overlapping square windows (CHW layout).
#pragma once

#include "nn/layer.h"

namespace fedvr::nn {

class MaxPool2dLayer final : public Layer {
 public:
  /// Pools each (height x width) plane of `channels` planes with a
  /// `pool x pool` window and stride `pool`. Ragged edges are truncated
  /// (floor division), matching TensorFlow's 'VALID' pooling.
  MaxPool2dLayer(std::size_t channels, std::size_t height, std::size_t width,
                 std::size_t pool = 2);

  [[nodiscard]] std::size_t in_size() const override {
    return channels_ * height_ * width_;
  }
  [[nodiscard]] std::size_t out_size() const override {
    return channels_ * out_h() * out_w();
  }
  [[nodiscard]] std::size_t param_count() const override { return 0; }

  [[nodiscard]] std::size_t out_h() const { return height_ / pool_; }
  [[nodiscard]] std::size_t out_w() const { return width_ / pool_; }

  void init_params(util::Rng& rng, std::span<double> w) const override;

  void forward(std::span<const double> w, std::size_t batch,
               std::span<const double> x, std::span<double> y,
               LayerCache* cache) const override;

  void backward(std::span<const double> w, std::size_t batch,
                std::span<const double> dy, std::span<double> dx,
                std::span<double> dw, const LayerCache& cache) const override;

  [[nodiscard]] std::string name() const override { return "maxpool2d"; }

 private:
  std::size_t channels_;
  std::size_t height_;
  std::size_t width_;
  std::size_t pool_;
};

}  // namespace fedvr::nn
