// Parameter-free activation layers.
#pragma once

#include "nn/layer.h"

namespace fedvr::nn {

/// Base for elementwise parameter-free activations. Subclasses provide
/// value(x) and derivative-from-output (activations here are invertible
/// enough that dy/dx is a function of the *output*, which saves caching the
/// pre-activation for tanh/sigmoid).
class ElementwiseLayer : public Layer {
 public:
  explicit ElementwiseLayer(std::size_t size);

  [[nodiscard]] std::size_t in_size() const override { return size_; }
  [[nodiscard]] std::size_t out_size() const override { return size_; }
  [[nodiscard]] std::size_t param_count() const override { return 0; }
  void init_params(util::Rng& rng, std::span<double> w) const override;
  void forward(std::span<const double> w, std::size_t batch,
               std::span<const double> x, std::span<double> y,
               LayerCache* cache) const override;
  void backward(std::span<const double> w, std::size_t batch,
                std::span<const double> dy, std::span<double> dx,
                std::span<double> dw, const LayerCache& cache) const override;

 protected:
  [[nodiscard]] virtual double value(double x) const = 0;
  /// dy/dx expressed through the forward *output* y.
  [[nodiscard]] virtual double derivative_from_output(double y) const = 0;

 private:
  std::size_t size_;
};

class TanhLayer final : public ElementwiseLayer {
 public:
  using ElementwiseLayer::ElementwiseLayer;
  [[nodiscard]] std::string name() const override { return "tanh"; }

 protected:
  [[nodiscard]] double value(double x) const override;
  [[nodiscard]] double derivative_from_output(double y) const override {
    return 1.0 - y * y;
  }
};

class SigmoidLayer final : public ElementwiseLayer {
 public:
  using ElementwiseLayer::ElementwiseLayer;
  [[nodiscard]] std::string name() const override { return "sigmoid"; }

 protected:
  [[nodiscard]] double value(double x) const override;
  [[nodiscard]] double derivative_from_output(double y) const override {
    return y * (1.0 - y);
  }
};

class ReluLayer final : public Layer {
 public:
  explicit ReluLayer(std::size_t size);

  [[nodiscard]] std::size_t in_size() const override { return size_; }
  [[nodiscard]] std::size_t out_size() const override { return size_; }
  [[nodiscard]] std::size_t param_count() const override { return 0; }

  void init_params(util::Rng& rng, std::span<double> w) const override;

  void forward(std::span<const double> w, std::size_t batch,
               std::span<const double> x, std::span<double> y,
               LayerCache* cache) const override;

  void backward(std::span<const double> w, std::size_t batch,
                std::span<const double> dy, std::span<double> dx,
                std::span<double> dw, const LayerCache& cache) const override;

  [[nodiscard]] std::string name() const override { return "relu"; }

 private:
  std::size_t size_;
};

}  // namespace fedvr::nn
