// The paper's §3 example loss functions as ready-made models:
//   linear regression  f_i(w) = 0.5 (x_i^T w - y_i)^2
//   linear SVM         f_i(w) = max{0, 1 - y_i x_i^T w},  y_i in {-1, +1}
// both with optional L2 regularization.
//
// Conventions: features occupy a sample's first `dim` entries. For the
// regression model the target is the sample's LAST entry (feature vectors
// are dim+1 long); for the SVM the class label 0/1 maps to y = -1/+1.
// The hinge loss is non-smooth at the margin; the standard subgradient
// (zero at the kink) is used, which is what SGD practice does.
#pragma once

#include <memory>

#include "nn/model.h"

namespace fedvr::nn {

class LinearRegressionModel final : public Model {
 public:
  /// Samples are (dim features, 1 target); parameters are dim weights.
  explicit LinearRegressionModel(std::size_t dim, double l2_reg = 0.0);

  [[nodiscard]] std::size_t num_parameters() const override { return dim_; }
  void initialize(util::Rng& rng, std::span<double> w) const override;
  [[nodiscard]] double loss(std::span<const double> w,
                            const data::Dataset& ds,
                            std::span<const std::size_t> indices)
      const override;
  double loss_and_gradient(std::span<const double> w, const data::Dataset& ds,
                           std::span<const std::size_t> indices,
                           std::span<double> grad) const override;
  /// Classifies by the sign of the prediction (for accuracy plumbing).
  void predict(std::span<const double> w, const data::Dataset& ds,
               std::span<const std::size_t> indices,
               std::span<std::size_t> out) const override;

 private:
  std::size_t dim_;
  double l2_reg_;
};

class LinearSvmModel final : public Model {
 public:
  /// Binary hinge-loss SVM: labels 0/1 are treated as y = -1/+1;
  /// parameters are dim weights plus a bias.
  explicit LinearSvmModel(std::size_t dim, double l2_reg = 1e-3);

  [[nodiscard]] std::size_t num_parameters() const override {
    return dim_ + 1;
  }
  void initialize(util::Rng& rng, std::span<double> w) const override;
  [[nodiscard]] double loss(std::span<const double> w,
                            const data::Dataset& ds,
                            std::span<const std::size_t> indices)
      const override;
  double loss_and_gradient(std::span<const double> w, const data::Dataset& ds,
                           std::span<const std::size_t> indices,
                           std::span<double> grad) const override;
  void predict(std::span<const double> w, const data::Dataset& ds,
               std::span<const std::size_t> indices,
               std::span<std::size_t> out) const override;

 private:
  std::size_t dim_;
  double l2_reg_;
};

}  // namespace fedvr::nn
