// Factories for the two learning tasks evaluated in the paper (§5).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/feedforward.h"

namespace fedvr::nn {

/// Multinomial logistic regression (the paper's convex task): a single
/// dense layer into softmax cross-entropy, with optional L2 regularization.
[[nodiscard]] std::shared_ptr<FeedForwardModel> make_logistic_regression(
    std::size_t input_dim, std::size_t num_classes, double l2_reg = 0.0);

struct CnnConfig {
  std::size_t side = 28;        // square input image side
  std::size_t in_channels = 1;  // grayscale
  std::size_t conv1_channels = 32;  // paper: 32
  std::size_t conv2_channels = 64;  // paper: 64
  std::size_t kernel = 5;           // paper: 5x5 convs
  std::size_t num_classes = 10;
  double l2_reg = 0.0;
};

struct MlpConfig {
  std::size_t input_dim = 784;
  std::vector<std::size_t> hidden = {64, 32};  // hidden layer widths
  std::size_t num_classes = 10;
  /// "relu", "tanh", or "sigmoid".
  std::string activation = "relu";
  double l2_reg = 0.0;
};

/// Multi-layer perceptron: Dense/activation stacks into softmax
/// cross-entropy. A second non-convex model family besides the CNN —
/// useful when convolution cost is unwarranted.
[[nodiscard]] std::shared_ptr<FeedForwardModel> make_mlp(
    const MlpConfig& config);

/// The paper's non-convex task: conv5x5(32) -> ReLU -> maxpool2 ->
/// conv5x5(64) -> ReLU -> maxpool2 -> dense -> softmax ("structure similar
/// to that in [McMahan et al.]"). 'Same' padding keeps plane sizes stable
/// before each pool. Parameterized so benches can shrink the input for
/// single-core wall-clock budgets without changing the architecture.
[[nodiscard]] std::shared_ptr<FeedForwardModel> make_two_layer_cnn(
    const CnnConfig& config = {});

}  // namespace fedvr::nn
