#include "nn/activation.h"

#include <cmath>

#include "tensor/kernels.h"
#include "util/error.h"

namespace fedvr::nn {

ElementwiseLayer::ElementwiseLayer(std::size_t size) : size_(size) {
  FEDVR_CHECK(size > 0);
}

void ElementwiseLayer::init_params(util::Rng& /*rng*/,
                                   std::span<double> w) const {
  FEDVR_CHECK(w.empty());
}

void ElementwiseLayer::forward(std::span<const double> w, std::size_t batch,
                               std::span<const double> x,
                               std::span<double> y, LayerCache* cache) const {
  FEDVR_CHECK(w.empty());
  FEDVR_CHECK(x.size() == batch * size_ && y.size() == batch * size_);
  for (std::size_t i = 0; i < x.size(); ++i) y[i] = value(x[i]);
  if (cache != nullptr) {
    // Cache the *output*: derivative_from_output consumes it directly.
    cache->scratch.assign(y.begin(), y.end());
  }
}

void ElementwiseLayer::backward(std::span<const double> w, std::size_t batch,
                                std::span<const double> dy,
                                std::span<double> dx, std::span<double> dw,
                                const LayerCache& cache) const {
  FEDVR_CHECK(w.empty() && dw.empty());
  FEDVR_CHECK(dy.size() == batch * size_ && dx.size() == batch * size_);
  FEDVR_CHECK(cache.scratch.size() == batch * size_);
  for (std::size_t i = 0; i < dy.size(); ++i) {
    dx[i] = dy[i] * derivative_from_output(cache.scratch[i]);
  }
}

double TanhLayer::value(double x) const { return std::tanh(x); }

double SigmoidLayer::value(double x) const {
  // Stable in both tails.
  if (x >= 0.0) {
    return 1.0 / (1.0 + std::exp(-x));
  }
  const double e = std::exp(x);
  return e / (1.0 + e);
}

ReluLayer::ReluLayer(std::size_t size) : size_(size) {
  FEDVR_CHECK(size > 0);
}

void ReluLayer::init_params(util::Rng& /*rng*/, std::span<double> w) const {
  FEDVR_CHECK(w.empty());
}

void ReluLayer::forward(std::span<const double> w, std::size_t batch,
                        std::span<const double> x, std::span<double> y,
                        LayerCache* cache) const {
  FEDVR_CHECK(w.empty());
  FEDVR_CHECK(x.size() == batch * size_ && y.size() == batch * size_);
  tensor::relu(x, y);
  if (cache != nullptr) cache->input.assign(x.begin(), x.end());
}

void ReluLayer::backward(std::span<const double> w, std::size_t batch,
                         std::span<const double> dy, std::span<double> dx,
                         std::span<double> dw,
                         const LayerCache& cache) const {
  FEDVR_CHECK(w.empty() && dw.empty());
  FEDVR_CHECK(dy.size() == batch * size_ && dx.size() == batch * size_);
  FEDVR_CHECK(cache.input.size() == batch * size_);
  tensor::relu_backward(cache.input, dy, dx);
}

}  // namespace fedvr::nn
