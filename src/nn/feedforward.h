// Model implementation wrapping a Sequential network with a softmax
// cross-entropy head and optional L2 regularization.
#pragma once

#include <memory>

#include "nn/model.h"
#include "nn/sequential.h"

namespace fedvr::nn {

class FeedForwardModel final : public Model {
 public:
  /// `l2_reg` adds (l2/2)||w||^2 to the loss (and l2*w to the gradient) —
  /// used to make the convex task strongly convex when desired.
  /// `max_chunk` bounds the batch rows materialized at once so full-batch
  /// gradient calls on large shards stay memory-bounded.
  FeedForwardModel(std::shared_ptr<const Sequential> net, double l2_reg = 0.0,
                   std::size_t max_chunk = 64);

  [[nodiscard]] std::size_t num_parameters() const override {
    return net_->param_count();
  }
  [[nodiscard]] std::size_t num_classes() const { return net_->out_size(); }
  [[nodiscard]] const Sequential& net() const { return *net_; }
  [[nodiscard]] double l2_reg() const { return l2_reg_; }

  void initialize(util::Rng& rng, std::span<double> w) const override;

  [[nodiscard]] double loss(std::span<const double> w,
                            const data::Dataset& ds,
                            std::span<const std::size_t> indices)
      const override;

  double loss_and_gradient(std::span<const double> w, const data::Dataset& ds,
                           std::span<const std::size_t> indices,
                           std::span<double> grad) const override;

  void predict(std::span<const double> w, const data::Dataset& ds,
               std::span<const std::size_t> indices,
               std::span<std::size_t> out) const override;

 private:
  // Gathers the feature rows for a chunk of indices into `xbuf` and the
  // labels into `ybuf`.
  void gather(const data::Dataset& ds, std::span<const std::size_t> indices,
              std::vector<double>& xbuf, std::vector<int>& ybuf) const;

  std::shared_ptr<const Sequential> net_;
  double l2_reg_;
  std::size_t max_chunk_;
};

}  // namespace fedvr::nn
