// Softmax cross-entropy loss head.
#pragma once

#include <cstddef>
#include <span>

namespace fedvr::nn {

/// Mean cross-entropy of softmax(logits) against integer labels.
/// logits: (batch x classes) row-major. Returns the scalar loss.
[[nodiscard]] double softmax_cross_entropy(std::size_t batch,
                                           std::size_t classes,
                                           std::span<const double> logits,
                                           std::span<const int> labels);

/// Loss and its gradient with respect to the logits:
/// d_logits = (softmax(logits) - onehot(labels)) / batch.
[[nodiscard]] double softmax_cross_entropy_backward(
    std::size_t batch, std::size_t classes, std::span<const double> logits,
    std::span<const int> labels, std::span<double> d_logits);

}  // namespace fedvr::nn
