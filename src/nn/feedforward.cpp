#include "nn/feedforward.h"

#include <algorithm>

#include "check/check.h"
#include "nn/loss.h"
#include "tensor/kernels.h"
#include "tensor/vecops.h"
#include "util/error.h"

namespace fedvr::nn {

namespace {

// Per-thread evaluation scratch: the Sequential workspace plus every gather
// / gradient staging buffer loss(), loss_and_gradient() and predict() need.
// One model evaluation allocates these tens of times per local epoch;
// thread_local reuse makes repeat evaluations allocation-free in steady
// state (vector capacity is retained across calls). Safe because model
// evaluation never re-enters model code on the same thread.
struct EvalScratch {
  Sequential::Workspace ws;
  std::vector<double> xbuf;
  std::vector<int> ybuf;
  std::vector<double> d_logits;
  std::vector<double> chunk_grad;
};

EvalScratch& eval_scratch() {
  thread_local EvalScratch scratch;
  return scratch;
}

}  // namespace

FeedForwardModel::FeedForwardModel(std::shared_ptr<const Sequential> net,
                                   double l2_reg, std::size_t max_chunk)
    : net_(std::move(net)), l2_reg_(l2_reg), max_chunk_(max_chunk) {
  FEDVR_CHECK(net_ != nullptr);
  FEDVR_CHECK(l2_reg >= 0.0);
  FEDVR_CHECK(max_chunk_ >= 1);
}

void FeedForwardModel::initialize(util::Rng& rng, std::span<double> w) const {
  FEDVR_CHECK(w.size() == num_parameters());
  net_->init_params(rng, w);
}

void FeedForwardModel::gather(const data::Dataset& ds,
                              std::span<const std::size_t> indices,
                              std::vector<double>& xbuf,
                              std::vector<int>& ybuf) const {
  const std::size_t dim = ds.feature_dim();
  FEDVR_CHECK_MSG(dim == net_->in_size(),
                  "dataset features (" << dim << ") do not match model input ("
                                       << net_->in_size() << ")");
  xbuf.resize(indices.size() * dim);
  ybuf.resize(indices.size());
  for (std::size_t k = 0; k < indices.size(); ++k) {
    const auto row = ds.sample(indices[k]);
    std::copy(row.begin(), row.end(), xbuf.begin() + static_cast<std::ptrdiff_t>(k * dim));
    ybuf[k] = ds.label(indices[k]);
  }
}

double FeedForwardModel::loss(std::span<const double> w,
                              const data::Dataset& ds,
                              std::span<const std::size_t> indices) const {
  FEDVR_CHECK(w.size() == num_parameters());
  FEDVR_CHECK(!indices.empty());
  EvalScratch& scratch = eval_scratch();
  Sequential::Workspace& ws = scratch.ws;
  std::vector<double>& xbuf = scratch.xbuf;
  std::vector<int>& ybuf = scratch.ybuf;
  double weighted = 0.0;
  for (std::size_t start = 0; start < indices.size(); start += max_chunk_) {
    const std::size_t count = std::min(max_chunk_, indices.size() - start);
    gather(ds, indices.subspan(start, count), xbuf, ybuf);
    const auto logits = net_->forward(w, count, xbuf, ws, /*training=*/false);
    weighted += static_cast<double>(count) *
                softmax_cross_entropy(count, net_->out_size(), logits, ybuf);
  }
  double value = weighted / static_cast<double>(indices.size());
  if (l2_reg_ > 0.0) value += 0.5 * l2_reg_ * tensor::nrm2_squared(w);
  return value;
}

double FeedForwardModel::loss_and_gradient(
    std::span<const double> w, const data::Dataset& ds,
    std::span<const std::size_t> indices, std::span<double> grad) const {
  FEDVR_CHECK(w.size() == num_parameters());
  FEDVR_CHECK(grad.size() == num_parameters());
  FEDVR_CHECK(!indices.empty());
  tensor::fill(grad, 0.0);
  EvalScratch& scratch = eval_scratch();
  Sequential::Workspace& ws = scratch.ws;
  std::vector<double>& xbuf = scratch.xbuf;
  std::vector<int>& ybuf = scratch.ybuf;
  std::vector<double>& d_logits = scratch.d_logits;
  std::vector<double>& chunk_grad = scratch.chunk_grad;
  chunk_grad.resize(num_parameters());
  double weighted = 0.0;
  for (std::size_t start = 0; start < indices.size(); start += max_chunk_) {
    const std::size_t count = std::min(max_chunk_, indices.size() - start);
    gather(ds, indices.subspan(start, count), xbuf, ybuf);
    const auto logits = net_->forward(w, count, xbuf, ws, /*training=*/true);
    d_logits.resize(count * net_->out_size());
    const double chunk_loss = softmax_cross_entropy_backward(
        count, net_->out_size(), logits, ybuf, d_logits);
    weighted += static_cast<double>(count) * chunk_loss;
    // Chunk gradients are per-chunk means; rescale into a global mean.
    tensor::fill(chunk_grad, 0.0);
    net_->backward(w, count, xbuf, d_logits, chunk_grad, ws);
    tensor::axpy(static_cast<double>(count) /
                     static_cast<double>(indices.size()),
                 chunk_grad, grad);
  }
  double value = weighted / static_cast<double>(indices.size());
  if (l2_reg_ > 0.0) {
    value += 0.5 * l2_reg_ * tensor::nrm2_squared(w);
    tensor::axpy(l2_reg_, w, grad);
  }
  // Model boundary: a non-finite gradient here silently corrupts every
  // downstream estimator (SVRG/SARAH difference terms amplify it).
  FEDVR_CHECK_FINITE(grad, "model gradient");
  return value;
}

void FeedForwardModel::predict(std::span<const double> w,
                               const data::Dataset& ds,
                               std::span<const std::size_t> indices,
                               std::span<std::size_t> out) const {
  FEDVR_CHECK(w.size() == num_parameters());
  FEDVR_CHECK(out.size() == indices.size());
  EvalScratch& scratch = eval_scratch();
  Sequential::Workspace& ws = scratch.ws;
  std::vector<double>& xbuf = scratch.xbuf;
  std::vector<int>& ybuf = scratch.ybuf;
  for (std::size_t start = 0; start < indices.size(); start += max_chunk_) {
    const std::size_t count = std::min(max_chunk_, indices.size() - start);
    gather(ds, indices.subspan(start, count), xbuf, ybuf);
    const auto logits = net_->forward(w, count, xbuf, ws, /*training=*/false);
    tensor::argmax_rows(count, net_->out_size(), logits,
                        out.subspan(start, count));
  }
}

}  // namespace fedvr::nn
