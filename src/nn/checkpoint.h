// Model parameter checkpointing.
//
// Format: a small fixed header (magic, version, count) followed by raw
// little-endian IEEE-754 doubles. Deliberately minimal — parameters are the
// only state a fedvr model has.
#pragma once

#include <span>
#include <string>
#include <vector>

namespace fedvr::nn {

/// Writes `w` to `path` (truncating). Throws util::Error on I/O failure.
void save_parameters(const std::string& path, std::span<const double> w);

/// Reads a checkpoint written by save_parameters. Throws util::Error on
/// malformed files.
[[nodiscard]] std::vector<double> load_parameters(const std::string& path);

/// Loads and validates the parameter count against `expected` (e.g.
/// model.num_parameters()).
[[nodiscard]] std::vector<double> load_parameters(const std::string& path,
                                                  std::size_t expected);

}  // namespace fedvr::nn
