#include "nn/model.h"

#include <numeric>

#include "util/error.h"

namespace fedvr::nn {

std::vector<std::size_t> all_indices(std::size_t n) {
  std::vector<std::size_t> idx(n);
  std::iota(idx.begin(), idx.end(), 0);
  return idx;
}

double Model::full_loss(std::span<const double> w,
                        const data::Dataset& ds) const {
  const auto idx = all_indices(ds.size());
  return loss(w, ds, idx);
}

double Model::full_gradient(std::span<const double> w,
                            const data::Dataset& ds,
                            std::span<double> grad) const {
  const auto idx = all_indices(ds.size());
  return loss_and_gradient(w, ds, idx, grad);
}

double Model::accuracy(std::span<const double> w,
                       const data::Dataset& ds) const {
  FEDVR_CHECK(!ds.empty());
  const auto idx = all_indices(ds.size());
  std::vector<std::size_t> pred(ds.size());
  predict(w, ds, idx, pred);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < ds.size(); ++i) {
    if (pred[i] == static_cast<std::size_t>(ds.label(i))) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(ds.size());
}

std::vector<double> Model::initial_parameters(util::Rng& rng) const {
  std::vector<double> w(num_parameters());
  initialize(rng, w);
  return w;
}

}  // namespace fedvr::nn
