// Fully connected layer: y = x W^T + b.
#pragma once

#include "nn/layer.h"

namespace fedvr::nn {

class DenseLayer final : public Layer {
 public:
  /// Parameter layout inside the flat slice: W (out x in) row-major,
  /// followed by b (out).
  DenseLayer(std::size_t in, std::size_t out);

  [[nodiscard]] std::size_t in_size() const override { return in_; }
  [[nodiscard]] std::size_t out_size() const override { return out_; }
  [[nodiscard]] std::size_t param_count() const override {
    return out_ * in_ + out_;
  }

  void init_params(util::Rng& rng, std::span<double> w) const override;

  void forward(std::span<const double> w, std::size_t batch,
               std::span<const double> x, std::span<double> y,
               LayerCache* cache) const override;

  void backward(std::span<const double> w, std::size_t batch,
                std::span<const double> dy, std::span<double> dx,
                std::span<double> dw, const LayerCache& cache) const override;

  [[nodiscard]] std::string name() const override { return "dense"; }

 private:
  std::size_t in_;
  std::size_t out_;
};

}  // namespace fedvr::nn
