#include "tensor/vecops.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace fedvr::tensor {

namespace {
inline void check_same_size(std::span<const double> a,
                            std::span<const double> b) {
  FEDVR_CHECK_MSG(a.size() == b.size(),
                  "vector size mismatch: " << a.size() << " vs " << b.size());
}
}  // namespace

void axpy(double alpha, std::span<const double> x, std::span<double> y) {
  check_same_size(x, y);
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void axpby(double alpha, std::span<const double> x, double beta,
           std::span<double> y) {
  check_same_size(x, y);
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < n; ++i) y[i] = alpha * x[i] + beta * y[i];
}

void scal(double alpha, std::span<double> x) {
  for (double& v : x) v *= alpha;
}

double dot(std::span<const double> x, std::span<const double> y) {
  check_same_size(x, y);
  double acc = 0.0;
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < n; ++i) acc += x[i] * y[i];
  return acc;
}

double nrm2_squared(std::span<const double> x) {
  double acc = 0.0;
  for (double v : x) acc += v * v;
  return acc;
}

double nrm2(std::span<const double> x) { return std::sqrt(nrm2_squared(x)); }

double squared_distance(std::span<const double> x,
                        std::span<const double> y) {
  check_same_size(x, y);
  double acc = 0.0;
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < n; ++i) {
    const double d = x[i] - y[i];
    acc += d * d;
  }
  return acc;
}

void copy(std::span<const double> src, std::span<double> dst) {
  check_same_size(src, dst);
  std::copy(src.begin(), src.end(), dst.begin());
}

void sub(std::span<const double> x, std::span<const double> y,
         std::span<double> out) {
  check_same_size(x, y);
  check_same_size(x, out);
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < n; ++i) out[i] = x[i] - y[i];
}

void add(std::span<const double> x, std::span<const double> y,
         std::span<double> out) {
  check_same_size(x, y);
  check_same_size(x, out);
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < n; ++i) out[i] = x[i] + y[i];
}

void fill(std::span<double> x, double v) {
  std::fill(x.begin(), x.end(), v);
}

void accumulate_weighted(double w, std::span<const double> x,
                         std::span<double> acc) {
  axpy(w, x, acc);
}

double sum(std::span<const double> x) {
  double acc = 0.0;
  for (double v : x) acc += v;
  return acc;
}

double weighted_sum(std::span<const double> w, std::span<const double> v) {
  return dot(w, v);
}

void prox_quadratic(std::span<const double> x, std::span<const double> anchor,
                    double eta, double mu, std::span<double> out) {
  check_same_size(x, anchor);
  check_same_size(x, out);
  FEDVR_CHECK_MSG(eta > 0.0, "prox step eta must be positive, got " << eta);
  FEDVR_CHECK_MSG(mu >= 0.0, "penalty mu must be nonnegative, got " << mu);
  // prox_{eta h}(x) = argmin_w (mu/2)||w-anchor||^2 + (1/2 eta)||w-x||^2
  //                 = (mu*eta*anchor + x) / (1 + eta*mu),
  // which is the paper's eq. (10) rearranged. mu = 0 reduces to identity.
  const double denom = 1.0 + eta * mu;
  const double anchor_coef = eta * mu / denom;
  const double x_coef = 1.0 / denom;
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = anchor_coef * anchor[i] + x_coef * x[i];
  }
}

}  // namespace fedvr::tensor
