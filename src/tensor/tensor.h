// Dense row-major tensor of doubles.
//
// Design notes:
//  * Owning, contiguous storage; views are exposed as std::span so kernels
//    never copy.
//  * double throughout: the reproduction favours exact gradient checks and
//    faithful optimizer dynamics over raw throughput; problem sizes in the
//    paper's experiments are small enough for this on one core.
//  * No expression templates — kernels live in kernels.h and are explicit,
//    per the Core Guidelines ("express intent directly").
#pragma once

#include <span>
#include <vector>

#include "tensor/shape.h"
#include "util/error.h"

namespace fedvr::tensor {

class Tensor {
 public:
  Tensor() = default;

  explicit Tensor(Shape shape, double fill = 0.0)
      : shape_(shape), data_(shape.numel(), fill) {}

  Tensor(Shape shape, std::vector<double> data)
      : shape_(shape), data_(std::move(data)) {
    FEDVR_CHECK_MSG(data_.size() == shape_.numel(),
                    "data size " << data_.size() << " != shape numel "
                                 << shape_.numel());
  }

  [[nodiscard]] const Shape& shape() const { return shape_; }
  [[nodiscard]] std::size_t numel() const { return data_.size(); }
  [[nodiscard]] std::size_t dim(std::size_t axis) const {
    return shape_[axis];
  }

  [[nodiscard]] std::span<double> view() { return data_; }
  [[nodiscard]] std::span<const double> view() const { return data_; }
  [[nodiscard]] double* data() { return data_.data(); }
  [[nodiscard]] const double* data() const { return data_.data(); }

  // Element accessors for each supported rank. Bounds are checked only in
  // the rank dimension count; per-index checks would dominate kernel cost,
  // so indices are validated in debug-style helper at().
  [[nodiscard]] double& operator()(std::size_t i) { return data_[i]; }
  [[nodiscard]] double operator()(std::size_t i) const { return data_[i]; }

  [[nodiscard]] double& operator()(std::size_t i, std::size_t j) {
    return data_[i * shape_[1] + j];
  }
  [[nodiscard]] double operator()(std::size_t i, std::size_t j) const {
    return data_[i * shape_[1] + j];
  }

  [[nodiscard]] double& operator()(std::size_t i, std::size_t j,
                                   std::size_t k) {
    return data_[(i * shape_[1] + j) * shape_[2] + k];
  }
  [[nodiscard]] double operator()(std::size_t i, std::size_t j,
                                  std::size_t k) const {
    return data_[(i * shape_[1] + j) * shape_[2] + k];
  }

  [[nodiscard]] double& operator()(std::size_t i, std::size_t j,
                                   std::size_t k, std::size_t l) {
    return data_[((i * shape_[1] + j) * shape_[2] + k) * shape_[3] + l];
  }
  [[nodiscard]] double operator()(std::size_t i, std::size_t j, std::size_t k,
                                  std::size_t l) const {
    return data_[((i * shape_[1] + j) * shape_[2] + k) * shape_[3] + l];
  }

  /// Fully bounds-checked element access (rank-agnostic, slow; for tests).
  [[nodiscard]] double at(std::span<const std::size_t> idx) const;

  void fill(double v) { std::fill(data_.begin(), data_.end(), v); }

  /// Returns a tensor sharing no storage but viewing the same data under a
  /// new shape with equal numel (a copy; explicitness over cleverness).
  [[nodiscard]] Tensor reshaped(Shape new_shape) const {
    FEDVR_CHECK_MSG(new_shape.numel() == numel(),
                    "reshape " << shape_.str() << " -> " << new_shape.str()
                               << " changes numel");
    return Tensor(new_shape, data_);
  }

 private:
  Shape shape_;
  std::vector<double> data_;
};

}  // namespace fedvr::tensor
