// Flat-vector math: the currency of the federated algorithms.
//
// Model parameters, gradients, and variance-reduction directions all travel
// as flat std::vector<double>/std::span<double>. These kernels are the inner
// loop of every solver, so they are written as tight scalar loops the
// compiler can vectorize, with spans per the Core Guidelines (no raw
// pointer+length pairs in interfaces).
//
// Scratch-cap policy: none of these helpers allocate — every function
// writes through caller-provided spans, so the retained-capacity cap
// (tensor::kScratchCapDoubles, kernels.h) never applies *inside* vecops.
// It binds at the layer that owns the buffers these spans view: reusable
// vectors sized with scratch_resize() release capacity above the cap when
// a small request follows a huge one, and arena-backed scratch
// (tensor::scratch_arena) trims its slab to the same bound at episode end.
// Callers holding long-lived flat vectors (solver workspaces, accumulator
// slabs) therefore pass vecops views freely: capacity policy is decided
// where the vector is resized, never where it is read or written.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace fedvr::tensor {

/// y += alpha * x
void axpy(double alpha, std::span<const double> x, std::span<double> y);

/// y = alpha * x + beta * y
void axpby(double alpha, std::span<const double> x, double beta,
           std::span<double> y);

/// x *= alpha
void scal(double alpha, std::span<double> x);

/// <x, y>
[[nodiscard]] double dot(std::span<const double> x, std::span<const double> y);

/// ||x||_2
[[nodiscard]] double nrm2(std::span<const double> x);

/// ||x||_2^2 (avoids the sqrt+square round trip in convergence checks)
[[nodiscard]] double nrm2_squared(std::span<const double> x);

/// ||x - y||_2^2
[[nodiscard]] double squared_distance(std::span<const double> x,
                                      std::span<const double> y);

/// dst = src (sizes must match)
void copy(std::span<const double> src, std::span<double> dst);

/// out = x - y
void sub(std::span<const double> x, std::span<const double> y,
         std::span<double> out);

/// out = x + y
void add(std::span<const double> x, std::span<const double> y,
         std::span<double> out);

/// Sets every element to v.
void fill(std::span<double> x, double v);

/// acc += w * x  with acc zero-initialized by the caller: the weighted
/// aggregation on Algorithm 1 line 12.
void accumulate_weighted(double w, std::span<const double> x,
                         std::span<double> acc);

/// Σ x_i, accumulated serially in ascending index order. The sanctioned
/// scalar reduction for device/update collections: callers gather the
/// per-device values and reduce here, so the accumulation order is pinned
/// in one audited place (see the fp-reduction-in-seam analyzer rule).
[[nodiscard]] double sum(std::span<const double> x);

/// Σ w_i · v_i, serial ascending: the scalar companion of
/// accumulate_weighted for weighted means over per-device values
/// (e.g. the global loss Σ_n p_n F_n).
[[nodiscard]] double weighted_sum(std::span<const double> w,
                                  std::span<const double> v);

/// The closed-form proximal operator of h_s(w) = (mu/2)||w - anchor||^2 with
/// step eta (paper eq. (10)):  prox(x) = (eta / (1 + eta*mu)) * (mu*anchor + x/eta).
void prox_quadratic(std::span<const double> x, std::span<const double> anchor,
                    double eta, double mu, std::span<double> out);

}  // namespace fedvr::tensor
