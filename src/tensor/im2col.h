// im2col / col2im: lowers 2-D convolution to GEMM, the standard approach
// for CPU conv kernels.
//
// Image layout is CHW per sample (channels, height, width). The column
// matrix has one row per kernel element (c * kh * kw) and one column per
// output pixel (out_h * out_w), so that
//    conv_out (out_channels x out_pixels) =
//        W (out_channels x c*kh*kw) * cols (c*kh*kw x out_pixels).
#pragma once

#include <cstddef>
#include <span>

namespace fedvr::tensor {

struct ConvGeometry {
  std::size_t channels = 1;
  std::size_t height = 0;
  std::size_t width = 0;
  std::size_t kernel_h = 1;
  std::size_t kernel_w = 1;
  std::size_t pad = 0;     // symmetric zero padding
  std::size_t stride = 1;  // same in both dims

  [[nodiscard]] std::size_t out_h() const {
    return (height + 2 * pad - kernel_h) / stride + 1;
  }
  [[nodiscard]] std::size_t out_w() const {
    return (width + 2 * pad - kernel_w) / stride + 1;
  }
  [[nodiscard]] std::size_t out_pixels() const { return out_h() * out_w(); }
  [[nodiscard]] std::size_t col_rows() const {
    return channels * kernel_h * kernel_w;
  }
  [[nodiscard]] std::size_t image_size() const {
    return channels * height * width;
  }
};

/// image (CHW, geometry g) -> cols (col_rows x out_pixels), zero-padded.
void im2col(const ConvGeometry& g, std::span<const double> image,
            std::span<double> cols);

/// Strided variant: writes row r of the column matrix at
/// cols[r * ld_cols + col_offset ...], so several samples can be lowered
/// side by side into one (col_rows x B*out_pixels) block and consumed by a
/// single batched GEMM (the conv2d backward dW path).
void im2col(const ConvGeometry& g, std::span<const double> image,
            std::span<double> cols, std::size_t ld_cols,
            std::size_t col_offset);

/// Adjoint of im2col: scatters cols back into (and accumulates onto) the
/// image buffer. Caller zeroes `image` first when a pure adjoint is wanted.
void col2im(const ConvGeometry& g, std::span<const double> cols,
            std::span<double> image);

/// Strided adjoint: reads row r of the column matrix at
/// cols[r * ld_cols + col_offset ...] (one sample's slice of a batched
/// column block).
void col2im(const ConvGeometry& g, std::span<const double> cols,
            std::span<double> image, std::size_t ld_cols,
            std::size_t col_offset);

}  // namespace fedvr::tensor
