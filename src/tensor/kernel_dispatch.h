// Private: runtime-dispatched SIMD attribute shared by the tensor kernel
// TUs (kernels.cpp, im2col.cpp). On x86-64 GCC, FEDVR_KERNEL_CLONES emits
// an AVX2+FMA (x86-64-v3) clone of the annotated function next to the
// portable one and binds the best at load time via IFUNC, so a single
// binary is portable yet uses the wide units where they exist. FMA
// contraction changes rounding relative to the default clone, but the
// selected clone is fixed per machine, which is all the determinism
// contract (bit-identical runs on one host) requires.
//
// Sanitizer builds must not use target_clones: the IFUNC resolvers it
// emits run during relocation, before the sanitizer runtime initializes,
// and crash at process start. FEDVR_KERNEL_HAS_CLONES marks builds where
// target attributes are usable at all (e.g. for hand-picked AVX-512
// variants next to the cloned ones).
#pragma once

#if defined(__x86_64__) && defined(__GNUC__) && !defined(__clang__) && \
    !defined(__SANITIZE_THREAD__) && !defined(__SANITIZE_ADDRESS__)
#define FEDVR_KERNEL_HAS_CLONES 1
#define FEDVR_KERNEL_CLONES \
  __attribute__((target_clones("arch=x86-64-v3", "default")))
#else
#define FEDVR_KERNEL_CLONES
#endif
