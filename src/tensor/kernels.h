// Matrix kernels: GEMM/GEMV and the elementwise / reduction operations the
// nn layers are written in terms of.
//
// Matrices are dense row-major spans with explicit dimensions; the Tensor
// class provides storage and the layers slice views out of it. GEMM is a
// cache-blocked (MC x NC x KC panels, MR x NR register-tiled microkernel)
// implementation parallelized over disjoint row-blocks of C — no external
// BLAS per the reproduction rules. The k-accumulation order of every C
// element is fixed by the blocking constants alone, never by the thread
// partition, so results are bit-identical across pool sizes (the
// determinism contract; see DESIGN.md §10). Small products take a packed
// triple-loop path whose selection depends only on (m, n, k).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace fedvr::tensor {

enum class Trans { kNo, kYes };

/// Per-thread kernel scratch above this many doubles (8 MiB) is released
/// once the current episode no longer needs it, rather than retained for
/// the lifetime of the thread — one outlier shape must not pin that much
/// memory per pool worker forever. The kernels themselves draw scratch from
/// tensor::scratch_arena() (arena.h), whose trim policy enforces the same
/// cap; scratch_resize() applies it to plain reusable vectors (solver
/// workspaces, tests). The cap's interaction with the flat-vector helpers
/// is documented in vecops.h.
constexpr std::size_t kScratchCapDoubles = 1U << 20;

/// Resizes a reusable scratch vector to n doubles without preserving
/// contents: grows via fresh allocation + swap (never copies the stale
/// prefix the way resize() would), and releases retained capacity when it
/// exceeds kScratchCapDoubles and the new request fits under the cap —
/// one free + one allocation, not the free/realloc pair a shrink-through-
/// resize() would cost. Contents after the call are unspecified.
void scratch_resize(std::vector<double>& buf, std::size_t n);

/// C = alpha * op(A) * op(B) + beta * C.
/// A is (m x k) after op, B is (k x n) after op, C is (m x n).
/// Dimensions passed are the *post-op* m, n, k; lda/ldb are the true row
/// strides of the stored matrices.
void gemm(Trans trans_a, Trans trans_b, std::size_t m, std::size_t n,
          std::size_t k, double alpha, std::span<const double> a,
          std::size_t lda, std::span<const double> b, std::size_t ldb,
          double beta, std::span<double> c, std::size_t ldc);

/// Convenience GEMM for packed (stride == #cols) matrices.
void gemm_packed(Trans trans_a, Trans trans_b, std::size_t m, std::size_t n,
                 std::size_t k, double alpha, std::span<const double> a,
                 std::span<const double> b, double beta, std::span<double> c);

/// y = alpha * op(A) * x + beta * y, with A stored (rows x cols) row-major.
void gemv(Trans trans, std::size_t rows, std::size_t cols, double alpha,
          std::span<const double> a, std::span<const double> x, double beta,
          std::span<double> y);

/// out[i] = max(x[i], 0)
void relu(std::span<const double> x, std::span<double> out);

/// dx[i] = x[i] > 0 ? dy[i] : 0   (backward of relu given forward input x)
void relu_backward(std::span<const double> x, std::span<const double> dy,
                   std::span<double> dx);

/// Row-wise softmax of a (rows x cols) matrix, numerically stabilized.
void softmax_rows(std::size_t rows, std::size_t cols,
                  std::span<const double> logits, std::span<double> probs);

/// Row-wise argmax of a (rows x cols) matrix.
void argmax_rows(std::size_t rows, std::size_t cols,
                 std::span<const double> x, std::span<std::size_t> out);

/// Adds the bias vector (length cols) to each row of the matrix in place.
void add_bias_rows(std::size_t rows, std::size_t cols, std::span<double> x,
                   std::span<const double> bias);

/// bias_grad[j] = sum over rows of dy(row, j).
void sum_rows(std::size_t rows, std::size_t cols, std::span<const double> dy,
              std::span<double> bias_grad);

/// out (cols x rows) = in^T, with in a (rows x cols) row-major matrix.
/// Tiled + runtime-dispatched; used to materialize W^T once per conv
/// backward so every per-sample GEMM reads unit-stride operands.
void transpose(std::size_t rows, std::size_t cols, std::span<const double> in,
               std::span<double> out);

/// out (rows x cols) += in^T, with in a (cols x rows) row-major matrix.
/// The serial partial-block reduce of conv2d backward: out element order is
/// fixed by the caller's ascending block loop, so pool-size bit-identity is
/// unaffected.
void add_transposed(std::size_t rows, std::size_t cols,
                    std::span<const double> in, std::span<double> out);

/// out[i] += sum over j of m(i, j), each row summed in ascending-j order
/// (the conv2d db partial accumulation; the per-row order is what the
/// determinism contract pins).
void add_row_sums(std::size_t rows, std::size_t cols,
                  std::span<const double> m, std::span<double> out);

}  // namespace fedvr::tensor
