// Shape of a dense row-major tensor (up to 4 axes: N, C, H, W).
#pragma once

#include <array>
#include <cstddef>
#include <initializer_list>
#include <numeric>
#include <ostream>
#include <string>

#include "util/error.h"

namespace fedvr::tensor {

class Shape {
 public:
  static constexpr std::size_t kMaxRank = 4;

  Shape() = default;

  Shape(std::initializer_list<std::size_t> dims) {
    FEDVR_CHECK_MSG(dims.size() <= kMaxRank,
                    "tensor rank " << dims.size() << " exceeds " << kMaxRank);
    rank_ = dims.size();
    std::size_t i = 0;
    for (std::size_t d : dims) dims_[i++] = d;
  }

  [[nodiscard]] std::size_t rank() const { return rank_; }

  [[nodiscard]] std::size_t operator[](std::size_t axis) const {
    FEDVR_CHECK_MSG(axis < rank_,
                    "axis " << axis << " out of range for rank " << rank_);
    return dims_[axis];
  }

  /// Total number of elements (1 for a rank-0 scalar shape).
  [[nodiscard]] std::size_t numel() const {
    std::size_t n = 1;
    for (std::size_t i = 0; i < rank_; ++i) n *= dims_[i];
    return n;
  }

  [[nodiscard]] bool operator==(const Shape& other) const {
    if (rank_ != other.rank_) return false;
    for (std::size_t i = 0; i < rank_; ++i) {
      if (dims_[i] != other.dims_[i]) return false;
    }
    return true;
  }

  [[nodiscard]] std::string str() const {
    std::string s = "[";
    for (std::size_t i = 0; i < rank_; ++i) {
      if (i) s += ", ";
      s += std::to_string(dims_[i]);
    }
    return s + "]";
  }

  friend std::ostream& operator<<(std::ostream& os, const Shape& s) {
    return os << s.str();
  }

 private:
  std::array<std::size_t, kMaxRank> dims_{};
  std::size_t rank_ = 0;
};

}  // namespace fedvr::tensor
