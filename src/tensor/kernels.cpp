#include "tensor/kernels.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "check/check.h"
#include "obs/registry.h"
#include "util/error.h"

namespace fedvr::tensor {

namespace {

// C (m x n, row stride ldc) += alpha * A (m x k, packed) * B (k x n, packed),
// where A and B have already been materialized in non-transposed packed
// layout. ikj loop order keeps B and C accesses unit-stride.
void gemm_core(std::size_t m, std::size_t n, std::size_t k, double alpha,
               const double* a, const double* b, std::span<double> c,
               std::size_t ldc) {
  for (std::size_t i = 0; i < m; ++i) {
    double* c_row = c.data() + i * ldc;
    const double* a_row = a + i * k;
    for (std::size_t p = 0; p < k; ++p) {
      const double a_ip = alpha * a_row[p];
      if (a_ip == 0.0) continue;
      const double* b_row = b + p * n;
      for (std::size_t j = 0; j < n; ++j) {
        c_row[j] += a_ip * b_row[j];
      }
    }
  }
}

// Packs op(M) into `out` as a (rows x cols) row-major matrix.
void pack(Trans trans, std::size_t rows, std::size_t cols,
          std::span<const double> src, std::size_t ld,
          std::vector<double>& out) {
  out.resize(rows * cols);
  if (trans == Trans::kNo) {
    for (std::size_t i = 0; i < rows; ++i) {
      const double* s = src.data() + i * ld;
      std::copy(s, s + cols, out.data() + i * cols);
    }
  } else {
    // Stored matrix is (cols x rows) with row stride ld; emit its transpose.
    for (std::size_t i = 0; i < rows; ++i) {
      for (std::size_t j = 0; j < cols; ++j) {
        out[i * cols + j] = src[j * ld + i];
      }
    }
  }
}

}  // namespace

void gemm(Trans trans_a, Trans trans_b, std::size_t m, std::size_t n,
          std::size_t k, double alpha, std::span<const double> a,
          std::size_t lda, std::span<const double> b, std::size_t ldb,
          double beta, std::span<double> c, std::size_t ldc) {
  // Shape/stride preconditions via the gated fedvr::check layer: compiled
  // out under -DFEDVR_CHECKS=OFF, skippable at runtime via FEDVR_CHECKS=0.
  FEDVR_CHECK_PRE(ldc >= n, "gemm: ldc " << ldc << " < n " << n);
  const std::size_t a_rows = (trans_a == Trans::kNo) ? m : k;
  const std::size_t a_cols = (trans_a == Trans::kNo) ? k : m;
  const std::size_t b_rows = (trans_b == Trans::kNo) ? k : n;
  const std::size_t b_cols = (trans_b == Trans::kNo) ? n : k;
  FEDVR_CHECK_PRE(lda >= a_cols, "gemm: lda " << lda << " < " << a_cols);
  FEDVR_CHECK_PRE(ldb >= b_cols, "gemm: ldb " << ldb << " < " << b_cols);
  FEDVR_CHECK_PRE(a.size() >= (a_rows == 0 ? 0 : (a_rows - 1) * lda + a_cols),
                  "gemm: A storage " << a.size() << " too small");
  FEDVR_CHECK_PRE(b.size() >= (b_rows == 0 ? 0 : (b_rows - 1) * ldb + b_cols),
                  "gemm: B storage " << b.size() << " too small");
  FEDVR_CHECK_PRE(c.size() >= (m == 0 ? 0 : (m - 1) * ldc + n),
                  "gemm: C storage " << c.size() << " too small");

  // Scale C by beta first (handles beta == 0 without reading C garbage:
  // storage is always initialized doubles in this codebase).
  for (std::size_t i = 0; i < m; ++i) {
    double* row = c.data() + i * ldc;
    if (beta == 0.0) {
      std::fill(row, row + n, 0.0);
    } else if (beta != 1.0) {
      for (std::size_t j = 0; j < n; ++j) row[j] *= beta;
    }
  }
  FEDVR_OBS_COUNT("tensor.gemm.calls", 1);
  if (alpha == 0.0 || m == 0 || n == 0 || k == 0) return;
  FEDVR_OBS_COUNT("tensor.gemm.flops", 2ULL * m * n * k);

  // Pack operands into non-transposed layout. Simpler than four loop
  // variants, and the packing cost is linear while gemm is cubic.
  thread_local std::vector<double> a_pack;
  thread_local std::vector<double> b_pack;
  const double* a_ptr;
  const double* b_ptr;
  if (trans_a == Trans::kNo && lda == k) {
    a_ptr = a.data();
  } else {
    pack(trans_a, m, k, a, lda, a_pack);
    a_ptr = a_pack.data();
  }
  if (trans_b == Trans::kNo && ldb == n) {
    b_ptr = b.data();
  } else {
    pack(trans_b, k, n, b, ldb, b_pack);
    b_ptr = b_pack.data();
  }
  gemm_core(m, n, k, alpha, a_ptr, b_ptr, c, ldc);
}

void gemm_packed(Trans trans_a, Trans trans_b, std::size_t m, std::size_t n,
                 std::size_t k, double alpha, std::span<const double> a,
                 std::span<const double> b, double beta, std::span<double> c) {
  const std::size_t lda = (trans_a == Trans::kNo) ? k : m;
  const std::size_t ldb = (trans_b == Trans::kNo) ? n : k;
  gemm(trans_a, trans_b, m, n, k, alpha, a, lda, b, ldb, beta, c, n);
}

void gemv(Trans trans, std::size_t rows, std::size_t cols, double alpha,
          std::span<const double> a, std::span<const double> x, double beta,
          std::span<double> y) {
  FEDVR_CHECK_PRE(a.size() >= rows * cols,
                  "gemv: A storage " << a.size() << " < " << rows * cols);
  const std::size_t x_len = (trans == Trans::kNo) ? cols : rows;
  const std::size_t y_len = (trans == Trans::kNo) ? rows : cols;
  FEDVR_CHECK_SHAPE(x.size(), x_len);
  FEDVR_CHECK_SHAPE(y.size(), y_len);
  if (beta == 0.0) {
    std::fill(y.begin(), y.end(), 0.0);
  } else if (beta != 1.0) {
    for (double& v : y) v *= beta;
  }
  FEDVR_OBS_COUNT("tensor.gemv.calls", 1);
  if (alpha == 0.0) return;
  FEDVR_OBS_COUNT("tensor.gemv.flops", 2ULL * rows * cols);
  if (trans == Trans::kNo) {
    for (std::size_t i = 0; i < rows; ++i) {
      const double* row = a.data() + i * cols;
      double acc = 0.0;
      for (std::size_t j = 0; j < cols; ++j) acc += row[j] * x[j];
      y[i] += alpha * acc;
    }
  } else {
    for (std::size_t i = 0; i < rows; ++i) {
      const double* row = a.data() + i * cols;
      const double xi = alpha * x[i];
      if (xi == 0.0) continue;
      for (std::size_t j = 0; j < cols; ++j) y[j] += xi * row[j];
    }
  }
}

void relu(std::span<const double> x, std::span<double> out) {
  FEDVR_CHECK_SHAPE(x.size(), out.size());
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < n; ++i) out[i] = x[i] > 0.0 ? x[i] : 0.0;
}

void relu_backward(std::span<const double> x, std::span<const double> dy,
                   std::span<double> dx) {
  FEDVR_CHECK_SHAPE(x.size(), dy.size());
  FEDVR_CHECK_SHAPE(x.size(), dx.size());
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < n; ++i) dx[i] = x[i] > 0.0 ? dy[i] : 0.0;
}

void softmax_rows(std::size_t rows, std::size_t cols,
                  std::span<const double> logits, std::span<double> probs) {
  FEDVR_CHECK_SHAPE(logits.size(), rows * cols);
  FEDVR_CHECK_SHAPE(probs.size(), rows * cols);
  for (std::size_t i = 0; i < rows; ++i) {
    const double* in = logits.data() + i * cols;
    double* out = probs.data() + i * cols;
    double max_v = -std::numeric_limits<double>::infinity();
    for (std::size_t j = 0; j < cols; ++j) max_v = std::max(max_v, in[j]);
    double sum = 0.0;
    for (std::size_t j = 0; j < cols; ++j) {
      out[j] = std::exp(in[j] - max_v);
      sum += out[j];
    }
    const double inv = 1.0 / sum;
    for (std::size_t j = 0; j < cols; ++j) out[j] *= inv;
  }
}

void argmax_rows(std::size_t rows, std::size_t cols,
                 std::span<const double> x, std::span<std::size_t> out) {
  FEDVR_CHECK_SHAPE(x.size(), rows * cols);
  FEDVR_CHECK_SHAPE(out.size(), rows);
  for (std::size_t i = 0; i < rows; ++i) {
    const double* row = x.data() + i * cols;
    std::size_t best = 0;
    for (std::size_t j = 1; j < cols; ++j) {
      if (row[j] > row[best]) best = j;
    }
    out[i] = best;
  }
}

void add_bias_rows(std::size_t rows, std::size_t cols, std::span<double> x,
                   std::span<const double> bias) {
  FEDVR_CHECK_SHAPE(x.size(), rows * cols);
  FEDVR_CHECK_SHAPE(bias.size(), cols);
  for (std::size_t i = 0; i < rows; ++i) {
    double* row = x.data() + i * cols;
    for (std::size_t j = 0; j < cols; ++j) row[j] += bias[j];
  }
}

void sum_rows(std::size_t rows, std::size_t cols, std::span<const double> dy,
              std::span<double> bias_grad) {
  FEDVR_CHECK_SHAPE(dy.size(), rows * cols);
  FEDVR_CHECK_SHAPE(bias_grad.size(), cols);
  std::fill(bias_grad.begin(), bias_grad.end(), 0.0);
  for (std::size_t i = 0; i < rows; ++i) {
    const double* row = dy.data() + i * cols;
    for (std::size_t j = 0; j < cols; ++j) bias_grad[j] += row[j];
  }
}

}  // namespace fedvr::tensor
