#include "tensor/kernels.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "check/check.h"
#include "obs/registry.h"
#include "util/error.h"
#include "util/thread_pool.h"

namespace fedvr::tensor {

void scratch_resize(std::vector<double>& buf, std::size_t n) {
  if (buf.capacity() > kScratchCapDoubles && n <= kScratchCapDoubles) {
    std::vector<double>().swap(buf);
  }
  buf.resize(n);
}

namespace {

// Runtime-dispatched SIMD: on x86-64 GCC additionally emits an AVX2+FMA
// (x86-64-v3) clone of each hot kernel and binds the best one at load time
// via IFUNC, so a single binary is portable yet uses the wide units where
// they exist. FMA contraction changes rounding relative to the default
// clone, but the selected clone is fixed per machine, which is all the
// determinism contract (bit-identical runs on one host) requires.
// Sanitizer builds must not use target_clones: the IFUNC resolvers it
// emits run during relocation, before the sanitizer runtime initializes,
// and crash at process start.
#if defined(__x86_64__) && defined(__GNUC__) && !defined(__clang__) && \
    !defined(__SANITIZE_THREAD__) && !defined(__SANITIZE_ADDRESS__)
#define FEDVR_KERNEL_CLONES \
  __attribute__((target_clones("arch=x86-64-v3", "default")))
#else
#define FEDVR_KERNEL_CLONES
#endif

// ---- Blocked-GEMM parameters (rationale in DESIGN.md §10) ----
//
// The microkernel accumulates an MR x NR tile of C in registers while
// streaming a packed MR-wide sliver of A against an NR-wide sliver of B.
// A blocks (MC x KC, 128 KiB) target L2; B panels (KC x NC, 512 KiB) are
// shared read-only by all workers of one k-step. Every C element is summed
// over k in ascending KC-chunk order regardless of how row-blocks are
// scheduled onto threads, which is what keeps parallel runs bit-identical
// to serial ones.
constexpr std::size_t kMr = 3;
constexpr std::size_t kNr = 12;
constexpr std::size_t kMc = 60;
constexpr std::size_t kKc = 256;
constexpr std::size_t kNc = 256;

// Below this m*n*k volume the pack + dispatch overhead of the blocked path
// outweighs its cache wins; a packed triple loop runs instead. Selection
// depends only on the shape, never on the pool, so it cannot perturb
// determinism.
constexpr std::size_t kBlockedMinVolume = 32 * 32 * 32;

// Element (i, p) of op(A) stored with row stride ld.
inline double op_at(Trans trans, std::span<const double> m, std::size_t ld,
                    std::size_t i, std::size_t p) {
  return trans == Trans::kNo ? m[i * ld + p] : m[p * ld + i];
}

// C (m x n, row stride ldc) += alpha * A (m x k, packed) * B (k x n, packed),
// where A and B have already been materialized in non-transposed packed
// layout. ikj loop order keeps B and C accesses unit-stride.
FEDVR_KERNEL_CLONES
void gemm_core(std::size_t m, std::size_t n, std::size_t k, double alpha,
               const double* a, const double* b, std::span<double> c,
               std::size_t ldc) {
  for (std::size_t i = 0; i < m; ++i) {
    double* c_row = c.data() + i * ldc;
    const double* a_row = a + i * k;
    for (std::size_t p = 0; p < k; ++p) {
      const double a_ip = alpha * a_row[p];
      const double* b_row = b + p * n;
      for (std::size_t j = 0; j < n; ++j) {
        c_row[j] += a_ip * b_row[j];
      }
    }
  }
}

// Packs op(M) into `out` as a (rows x cols) row-major matrix.
void pack(Trans trans, std::size_t rows, std::size_t cols,
          std::span<const double> src, std::size_t ld,
          std::vector<double>& out) {
  scratch_resize(out, rows * cols);
  if (trans == Trans::kNo) {
    for (std::size_t i = 0; i < rows; ++i) {
      const double* s = src.data() + i * ld;
      std::copy(s, s + cols, out.data() + i * cols);
    }
  } else {
    // Stored matrix is (cols x rows) with row stride ld; emit its transpose.
    for (std::size_t i = 0; i < rows; ++i) {
      for (std::size_t j = 0; j < cols; ++j) {
        out[i * cols + j] = src[j * ld + i];
      }
    }
  }
}

// Packs rows [i0, i0+ib) x depth [p0, p0+pb) of op(A) into MR-row groups:
// group g holds its MR rows interleaved per depth step (column-major within
// the group), padded with zeros past the last real row so the microkernel
// never branches on the row remainder.
void pack_a_block(Trans trans, std::span<const double> a, std::size_t lda,
                  std::size_t i0, std::size_t ib, std::size_t p0,
                  std::size_t pb, std::vector<double>& out) {
  const std::size_t groups = (ib + kMr - 1) / kMr;
  scratch_resize(out, groups * pb * kMr);
  double* dst = out.data();
  for (std::size_t g = 0; g < groups; ++g) {
    const std::size_t rows = std::min(kMr, ib - g * kMr);
    for (std::size_t p = 0; p < pb; ++p) {
      for (std::size_t r = 0; r < kMr; ++r) {
        *dst++ = r < rows
                     ? op_at(trans, a, lda, i0 + g * kMr + r, p0 + p)
                     : 0.0;
      }
    }
  }
}

// Packs depth [p0, p0+pb) x cols [j0, j0+jb) of op(B) into NR-column
// slivers, zero-padded past the last real column.
void pack_b_panel(Trans trans, std::span<const double> b, std::size_t ldb,
                  std::size_t p0, std::size_t pb, std::size_t j0,
                  std::size_t jb, std::vector<double>& out) {
  const std::size_t slivers = (jb + kNr - 1) / kNr;
  scratch_resize(out, slivers * pb * kNr);
  double* dst = out.data();
  for (std::size_t g = 0; g < slivers; ++g) {
    const std::size_t cols = std::min(kNr, jb - g * kNr);
    if (trans == Trans::kNo) {
      const double* src = b.data() + j0 + g * kNr;
      for (std::size_t p = 0; p < pb; ++p) {
        const double* row = src + (p0 + p) * ldb;
        for (std::size_t c = 0; c < cols; ++c) *dst++ = row[c];
        for (std::size_t c = cols; c < kNr; ++c) *dst++ = 0.0;
      }
    } else {
      for (std::size_t p = 0; p < pb; ++p) {
        for (std::size_t c = 0; c < kNr; ++c) {
          *dst++ = c < cols
                       ? op_at(trans, b, ldb, p0 + p, j0 + g * kNr + c)
                       : 0.0;
        }
      }
    }
  }
}

// C tile (mr x nr, row stride ldc) += alpha * a_sliver * b_sliver over pb
// depth steps. The full MR x NR accumulator is always computed (padded
// lanes just accumulate zeros); only the valid mr x nr corner is written
// back.
FEDVR_KERNEL_CLONES
void micro_kernel(std::size_t pb, const double* a, const double* b,
                  double alpha, double* c, std::size_t ldc, std::size_t mr,
                  std::size_t nr) {
  double acc[kMr][kNr] = {};
  for (std::size_t p = 0; p < pb; ++p) {
    const double* ap = a + p * kMr;
    const double* bp = b + p * kNr;
    for (std::size_t r = 0; r < kMr; ++r) {
      const double av = ap[r];
      for (std::size_t j = 0; j < kNr; ++j) {
        acc[r][j] += av * bp[j];
      }
    }
  }
  for (std::size_t r = 0; r < mr; ++r) {
    double* c_row = c + r * ldc;
    for (std::size_t j = 0; j < nr; ++j) {
      c_row[j] += alpha * acc[r][j];
    }
  }
}

// The blocked path: jc (NC) -> pc (KC, serial so the k-order is fixed) ->
// parallel over ic (MC row-blocks of C, disjoint) -> jr (NR) -> ir (MR).
// beta has already been applied to C by the caller.
void gemm_blocked(Trans trans_a, Trans trans_b, std::size_t m, std::size_t n,
                  std::size_t k, double alpha, std::span<const double> a,
                  std::size_t lda, std::span<const double> b, std::size_t ldb,
                  std::span<double> c, std::size_t ldc) {
  thread_local std::vector<double> b_panel;
  for (std::size_t j0 = 0; j0 < n; j0 += kNc) {
    const std::size_t jb = std::min(kNc, n - j0);
    const std::size_t slivers = (jb + kNr - 1) / kNr;
    for (std::size_t p0 = 0; p0 < k; p0 += kKc) {
      const std::size_t pb = std::min(kKc, k - p0);
      // Packed once by the calling thread, then read-only for the workers
      // (parallel_for's task handoff publishes it). Captured as a raw
      // pointer: thread_local variables are not captured by lambdas, so
      // naming b_panel inside the worker body would resolve to the
      // worker's own (empty) instance.
      pack_b_panel(trans_b, b, ldb, p0, pb, j0, jb, b_panel);
      const double* b_packed = b_panel.data();
      const std::size_t iblocks = (m + kMc - 1) / kMc;
      util::ThreadPool::global().parallel_for(
          0, iblocks, [&](std::size_t blk) {
            thread_local std::vector<double> a_block;
            const std::size_t i0 = blk * kMc;
            const std::size_t ib = std::min(kMc, m - i0);
            pack_a_block(trans_a, a, lda, i0, ib, p0, pb, a_block);
            for (std::size_t jg = 0; jg < slivers; ++jg) {
              const double* b_sliver = b_packed + jg * pb * kNr;
              const std::size_t nr = std::min(kNr, jb - jg * kNr);
              for (std::size_t ig = 0; ig * kMr < ib; ++ig) {
                const double* a_sliver = a_block.data() + ig * pb * kMr;
                const std::size_t mr = std::min(kMr, ib - ig * kMr);
                micro_kernel(pb, a_sliver, b_sliver, alpha,
                             c.data() + (i0 + ig * kMr) * ldc + j0 + jg * kNr,
                             ldc, mr, nr);
              }
            }
          });
    }
  }
}

// y[i] += alpha * <A row i, x> for i in [lo, hi).
FEDVR_KERNEL_CLONES
void gemv_rows(std::size_t lo, std::size_t hi, std::size_t cols, double alpha,
               const double* a, const double* x, double* y) {
  for (std::size_t i = lo; i < hi; ++i) {
    const double* row = a + i * cols;
    double acc = 0.0;
    for (std::size_t j = 0; j < cols; ++j) acc += row[j] * x[j];
    y[i] += alpha * acc;
  }
}

// y[j] += alpha * sum_i x[i] * A(i, j) for j in [lo, hi): i ascending so
// the per-element order is chunk-invariant, unit-stride inner loop.
FEDVR_KERNEL_CLONES
void gemv_cols(std::size_t lo, std::size_t hi, std::size_t rows,
               std::size_t cols, double alpha, const double* a,
               const double* x, double* y) {
  for (std::size_t i = 0; i < rows; ++i) {
    const double* row = a + i * cols;
    const double xi = alpha * x[i];
    for (std::size_t j = lo; j < hi; ++j) y[j] += xi * row[j];
  }
}

}  // namespace

void gemm(Trans trans_a, Trans trans_b, std::size_t m, std::size_t n,
          std::size_t k, double alpha, std::span<const double> a,
          std::size_t lda, std::span<const double> b, std::size_t ldb,
          double beta, std::span<double> c, std::size_t ldc) {
  // Shape/stride preconditions via the gated fedvr::check layer: compiled
  // out under -DFEDVR_CHECKS=OFF, skippable at runtime via FEDVR_CHECKS=0.
  FEDVR_CHECK_PRE(ldc >= n, "gemm: ldc " << ldc << " < n " << n);
  [[maybe_unused]] const std::size_t a_rows = (trans_a == Trans::kNo) ? m : k;
  [[maybe_unused]] const std::size_t a_cols = (trans_a == Trans::kNo) ? k : m;
  [[maybe_unused]] const std::size_t b_rows = (trans_b == Trans::kNo) ? k : n;
  [[maybe_unused]] const std::size_t b_cols = (trans_b == Trans::kNo) ? n : k;
  FEDVR_CHECK_PRE(lda >= a_cols, "gemm: lda " << lda << " < " << a_cols);
  FEDVR_CHECK_PRE(ldb >= b_cols, "gemm: ldb " << ldb << " < " << b_cols);
  FEDVR_CHECK_PRE(a.size() >= (a_rows == 0 ? 0 : (a_rows - 1) * lda + a_cols),
                  "gemm: A storage " << a.size() << " too small");
  FEDVR_CHECK_PRE(b.size() >= (b_rows == 0 ? 0 : (b_rows - 1) * ldb + b_cols),
                  "gemm: B storage " << b.size() << " too small");
  FEDVR_CHECK_PRE(c.size() >= (m == 0 ? 0 : (m - 1) * ldc + n),
                  "gemm: C storage " << c.size() << " too small");

  // Scale C by beta first (handles beta == 0 without reading C garbage:
  // storage is always initialized doubles in this codebase).
  for (std::size_t i = 0; i < m; ++i) {
    double* row = c.data() + i * ldc;
    if (beta == 0.0) {
      std::fill(row, row + n, 0.0);
    } else if (beta != 1.0) {
      for (std::size_t j = 0; j < n; ++j) row[j] *= beta;
    }
  }
  FEDVR_OBS_COUNT("tensor.gemm.calls", 1);
  if (alpha == 0.0 || m == 0 || n == 0 || k == 0) return;
  FEDVR_OBS_COUNT("tensor.gemm.flops", 2ULL * m * n * k);

  if (m * n * k >= kBlockedMinVolume) {
    gemm_blocked(trans_a, trans_b, m, n, k, alpha, a, lda, b, ldb, c, ldc);
    return;
  }

  // Small-product path: pack operands into non-transposed layout. Simpler
  // than four loop variants, and the packing cost is linear while the
  // product is cubic.
  thread_local std::vector<double> a_pack;
  thread_local std::vector<double> b_pack;
  const double* a_ptr;
  const double* b_ptr;
  if (trans_a == Trans::kNo && lda == k) {
    a_ptr = a.data();
  } else {
    pack(trans_a, m, k, a, lda, a_pack);
    a_ptr = a_pack.data();
  }
  if (trans_b == Trans::kNo && ldb == n) {
    b_ptr = b.data();
  } else {
    pack(trans_b, k, n, b, ldb, b_pack);
    b_ptr = b_pack.data();
  }
  gemm_core(m, n, k, alpha, a_ptr, b_ptr, c, ldc);
}

void gemm_packed(Trans trans_a, Trans trans_b, std::size_t m, std::size_t n,
                 std::size_t k, double alpha, std::span<const double> a,
                 std::span<const double> b, double beta, std::span<double> c) {
  const std::size_t lda = (trans_a == Trans::kNo) ? k : m;
  const std::size_t ldb = (trans_b == Trans::kNo) ? n : k;
  gemm(trans_a, trans_b, m, n, k, alpha, a, lda, b, ldb, beta, c, n);
}

void gemv(Trans trans, std::size_t rows, std::size_t cols, double alpha,
          std::span<const double> a, std::span<const double> x, double beta,
          std::span<double> y) {
  FEDVR_CHECK_PRE(a.size() >= rows * cols,
                  "gemv: A storage " << a.size() << " < " << rows * cols);
  [[maybe_unused]] const std::size_t x_len = (trans == Trans::kNo) ? cols : rows;
  [[maybe_unused]] const std::size_t y_len = (trans == Trans::kNo) ? rows : cols;
  FEDVR_CHECK_SHAPE(x.size(), x_len);
  FEDVR_CHECK_SHAPE(y.size(), y_len);
  if (beta == 0.0) {
    std::fill(y.begin(), y.end(), 0.0);
  } else if (beta != 1.0) {
    for (double& v : y) v *= beta;
  }
  FEDVR_OBS_COUNT("tensor.gemv.calls", 1);
  if (alpha == 0.0) return;
  FEDVR_OBS_COUNT("tensor.gemv.flops", 2ULL * rows * cols);
  // Both orientations parallelize over disjoint slices of y, so each
  // element keeps one fixed accumulation order (ascending over the summed
  // dimension) no matter how the range is chunked: bit-identical across
  // pool sizes, including size 1. Small products skip the dispatch.
  constexpr std::size_t kGemvMinParallel = 1U << 15;
  const bool parallel = rows * cols >= kGemvMinParallel;
  if (trans == Trans::kNo) {
    auto run_rows = [&](std::size_t lo, std::size_t hi) {
      gemv_rows(lo, hi, cols, alpha, a.data(), x.data(), y.data());
    };
    if (parallel) {
      util::ThreadPool::global().parallel_ranges(0, rows, run_rows, 16);
    } else {
      run_rows(0, rows);
    }
  } else {
    auto run_cols = [&](std::size_t lo, std::size_t hi) {
      gemv_cols(lo, hi, rows, cols, alpha, a.data(), x.data(), y.data());
    };
    if (parallel) {
      util::ThreadPool::global().parallel_ranges(0, cols, run_cols, 64);
    } else {
      run_cols(0, cols);
    }
  }
}

void relu(std::span<const double> x, std::span<double> out) {
  FEDVR_CHECK_SHAPE(x.size(), out.size());
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < n; ++i) out[i] = x[i] > 0.0 ? x[i] : 0.0;
}

void relu_backward(std::span<const double> x, std::span<const double> dy,
                   std::span<double> dx) {
  FEDVR_CHECK_SHAPE(x.size(), dy.size());
  FEDVR_CHECK_SHAPE(x.size(), dx.size());
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < n; ++i) dx[i] = x[i] > 0.0 ? dy[i] : 0.0;
}

void softmax_rows(std::size_t rows, std::size_t cols,
                  std::span<const double> logits, std::span<double> probs) {
  FEDVR_CHECK_SHAPE(logits.size(), rows * cols);
  FEDVR_CHECK_SHAPE(probs.size(), rows * cols);
  for (std::size_t i = 0; i < rows; ++i) {
    const double* in = logits.data() + i * cols;
    double* out = probs.data() + i * cols;
    double max_v = -std::numeric_limits<double>::infinity();
    for (std::size_t j = 0; j < cols; ++j) max_v = std::max(max_v, in[j]);
    double sum = 0.0;
    for (std::size_t j = 0; j < cols; ++j) {
      out[j] = std::exp(in[j] - max_v);
      sum += out[j];
    }
    const double inv = 1.0 / sum;
    for (std::size_t j = 0; j < cols; ++j) out[j] *= inv;
  }
}

void argmax_rows(std::size_t rows, std::size_t cols,
                 std::span<const double> x, std::span<std::size_t> out) {
  FEDVR_CHECK_SHAPE(x.size(), rows * cols);
  FEDVR_CHECK_SHAPE(out.size(), rows);
  for (std::size_t i = 0; i < rows; ++i) {
    const double* row = x.data() + i * cols;
    std::size_t best = 0;
    for (std::size_t j = 1; j < cols; ++j) {
      if (row[j] > row[best]) best = j;
    }
    out[i] = best;
  }
}

void add_bias_rows(std::size_t rows, std::size_t cols, std::span<double> x,
                   std::span<const double> bias) {
  FEDVR_CHECK_SHAPE(x.size(), rows * cols);
  FEDVR_CHECK_SHAPE(bias.size(), cols);
  for (std::size_t i = 0; i < rows; ++i) {
    double* row = x.data() + i * cols;
    for (std::size_t j = 0; j < cols; ++j) row[j] += bias[j];
  }
}

void sum_rows(std::size_t rows, std::size_t cols, std::span<const double> dy,
              std::span<double> bias_grad) {
  FEDVR_CHECK_SHAPE(dy.size(), rows * cols);
  FEDVR_CHECK_SHAPE(bias_grad.size(), cols);
  std::fill(bias_grad.begin(), bias_grad.end(), 0.0);
  for (std::size_t i = 0; i < rows; ++i) {
    const double* row = dy.data() + i * cols;
    for (std::size_t j = 0; j < cols; ++j) bias_grad[j] += row[j];
  }
}

}  // namespace fedvr::tensor
