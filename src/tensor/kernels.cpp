#include "tensor/kernels.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "check/check.h"
#include "obs/registry.h"
#include "tensor/arena.h"
#include "tensor/kernel_dispatch.h"
#include "util/error.h"
#include "util/thread_pool.h"

namespace fedvr::tensor {

void scratch_resize(std::vector<double>& buf, std::size_t n) {
  const bool drop_oversize =
      buf.capacity() > kScratchCapDoubles && n <= kScratchCapDoubles;
  if (drop_oversize || n > buf.capacity()) {
    // Fresh-allocate + swap: contents are scratch, so never pay resize()'s
    // copy of the stale prefix into the new allocation (and the shrink path
    // costs exactly one free + one allocation).
    std::vector<double> fresh(n);
    buf.swap(fresh);
    return;
  }
  buf.resize(n);
}

namespace {

// FEDVR_KERNEL_CLONES / FEDVR_KERNEL_HAS_CLONES: see kernel_dispatch.h.

// ---- Blocked-GEMM parameters (rationale in DESIGN.md §10) ----
//
// The microkernel accumulates an MR x NR tile of C in registers while
// streaming a packed MR-wide sliver of A against an NR-wide sliver of B.
// A blocks (MC x KC, 128 KiB) target L2; B panels (KC x NC, 512 KiB) are
// shared read-only by all workers of one k-step. Every C element is summed
// over k in ascending KC-chunk order regardless of how row-blocks are
// scheduled onto threads, which is what keeps parallel runs bit-identical
// to serial ones.
// Register-tile shapes. The portable shape (3 x 12) fits AVX2's sixteen
// ymm registers; machines with AVX-512 get a wider 5 x 24 tile (15 zmm
// accumulators out of 32). The shape is picked once per process in
// kernel_shape() below. Tile shape is value-neutral: each C element's
// k-accumulation is a scalar FMA chain inside one microkernel invocation,
// so MR/NR only decide which elements share an invocation, never the
// per-element operation order.
constexpr std::size_t kMrAvx2 = 3;
constexpr std::size_t kNrAvx2 = 12;
constexpr std::size_t kMrAvx512 = 5;
constexpr std::size_t kNrAvx512 = 24;
constexpr std::size_t kMc = 60;  // divisible by both MR shapes
constexpr std::size_t kKc = 256;
constexpr std::size_t kNc = 256;

// Below this m*n*k volume the pack + dispatch overhead of the blocked path
// outweighs its cache wins; a packed triple loop runs instead. Selection
// depends only on the shape, never on the pool, so it cannot perturb
// determinism.
constexpr std::size_t kBlockedMinVolume = 32 * 32 * 32;

// Element (i, p) of op(A) stored with row stride ld.
inline double op_at(Trans trans, std::span<const double> m, std::size_t ld,
                    std::size_t i, std::size_t p) {
  return trans == Trans::kNo ? m[i * ld + p] : m[p * ld + i];
}

// C (m x n, row stride ldc) += alpha * A (m x k, packed) * B (k x n, packed),
// where A and B have already been materialized in non-transposed packed
// layout. ikj loop order keeps B and C accesses unit-stride.
FEDVR_KERNEL_CLONES
void gemm_core(std::size_t m, std::size_t n, std::size_t k, double alpha,
               const double* a, const double* b, std::span<double> c,
               std::size_t ldc) {
  for (std::size_t i = 0; i < m; ++i) {
    double* c_row = c.data() + i * ldc;
    const double* a_row = a + i * k;
    for (std::size_t p = 0; p < k; ++p) {
      const double a_ip = alpha * a_row[p];
      const double* b_row = b + p * n;
      for (std::size_t j = 0; j < n; ++j) {
        c_row[j] += a_ip * b_row[j];
      }
    }
  }
}

// Packs op(M) into `out` as a (rows x cols) row-major matrix. `out` is
// caller-provided (arena) storage of exactly rows * cols doubles.
void pack(Trans trans, std::size_t rows, std::size_t cols,
          std::span<const double> src, std::size_t ld, std::span<double> out) {
  if (trans == Trans::kNo) {
    for (std::size_t i = 0; i < rows; ++i) {
      const double* s = src.data() + i * ld;
      std::copy(s, s + cols, out.data() + i * cols);
    }
  } else {
    // Stored matrix is (cols x rows) with row stride ld; emit its transpose.
    for (std::size_t i = 0; i < rows; ++i) {
      for (std::size_t j = 0; j < cols; ++j) {
        out[i * cols + j] = src[j * ld + i];
      }
    }
  }
}

// Packs rows [i0, i0+ib) x depth [p0, p0+pb) of op(A) into mr_t-row groups:
// group g holds its mr_t rows interleaved per depth step (column-major
// within the group), padded with zeros past the last real row so the
// microkernel never branches on the row remainder.
void pack_a_block(Trans trans, std::size_t mr_t, std::span<const double> a,
                  std::size_t lda, std::size_t i0, std::size_t ib,
                  std::size_t p0, std::size_t pb, std::span<double> out) {
  const std::size_t groups = (ib + mr_t - 1) / mr_t;
  double* dst = out.data();
  for (std::size_t g = 0; g < groups; ++g) {
    const std::size_t rows = std::min(mr_t, ib - g * mr_t);
    for (std::size_t p = 0; p < pb; ++p) {
      for (std::size_t r = 0; r < mr_t; ++r) {
        *dst++ = r < rows
                     ? op_at(trans, a, lda, i0 + g * mr_t + r, p0 + p)
                     : 0.0;
      }
    }
  }
}

// Packs depth [p0, p0+pb) x cols [j0, j0+jb) of op(B) into nr_t-column
// slivers, zero-padded past the last real column.
void pack_b_panel(Trans trans, std::size_t nr_t, std::span<const double> b,
                  std::size_t ldb, std::size_t p0, std::size_t pb,
                  std::size_t j0, std::size_t jb, std::span<double> out) {
  const std::size_t slivers = (jb + nr_t - 1) / nr_t;
  double* dst = out.data();
  for (std::size_t g = 0; g < slivers; ++g) {
    const std::size_t cols = std::min(nr_t, jb - g * nr_t);
    if (trans == Trans::kNo) {
      const double* src = b.data() + j0 + g * nr_t;
      for (std::size_t p = 0; p < pb; ++p) {
        const double* row = src + (p0 + p) * ldb;
        for (std::size_t c = 0; c < cols; ++c) *dst++ = row[c];
        for (std::size_t c = cols; c < nr_t; ++c) *dst++ = 0.0;
      }
    } else {
      for (std::size_t p = 0; p < pb; ++p) {
        for (std::size_t c = 0; c < nr_t; ++c) {
          *dst++ = c < cols
                       ? op_at(trans, b, ldb, p0 + p, j0 + g * nr_t + c)
                       : 0.0;
        }
      }
    }
  }
}

// C tile (mr x nr, row stride ldc) += alpha * a_sliver * b_sliver over pb
// depth steps. The full MR x NR accumulator is always computed (padded
// lanes just accumulate zeros); only the valid mr x nr corner is written
// back. Shared body for every ISA-specific wrapper: inlined into the
// wrapper, it is compiled with the wrapper's target ISA.
template <std::size_t MR, std::size_t NR>
[[gnu::always_inline]] inline void micro_kernel_body(
    std::size_t pb, const double* a, const double* b, double alpha, double* c,
    std::size_t ldc, std::size_t mr, std::size_t nr) {
  double acc[MR][NR] = {};
  for (std::size_t p = 0; p < pb; ++p) {
    const double* ap = a + p * MR;
    const double* bp = b + p * NR;
    for (std::size_t r = 0; r < MR; ++r) {
      const double av = ap[r];
      for (std::size_t j = 0; j < NR; ++j) {
        acc[r][j] += av * bp[j];
      }
    }
  }
  for (std::size_t r = 0; r < mr; ++r) {
    double* c_row = c + r * ldc;
    for (std::size_t j = 0; j < nr; ++j) {
      c_row[j] += alpha * acc[r][j];
    }
  }
}

FEDVR_KERNEL_CLONES
void micro_kernel_avx2(std::size_t pb, const double* a, const double* b,
                       double alpha, double* c, std::size_t ldc,
                       std::size_t mr, std::size_t nr) {
  micro_kernel_body<kMrAvx2, kNrAvx2>(pb, a, b, alpha, c, ldc, mr, nr);
}

#if defined(FEDVR_KERNEL_HAS_CLONES)
__attribute__((target("arch=x86-64-v4")))
void micro_kernel_avx512(std::size_t pb, const double* a, const double* b,
                         double alpha, double* c, std::size_t ldc,
                         std::size_t mr, std::size_t nr) {
  micro_kernel_body<kMrAvx512, kNrAvx512>(pb, a, b, alpha, c, ldc, mr, nr);
}
#endif

// The register-tile shape and matching microkernel, fixed once per process.
// AVX-512 machines take the wide tile; everything else (including sanitizer
// builds, which cannot use target attributes) takes the portable one. The
// choice is per-machine, never per-run or per-thread, so it cannot perturb
// the determinism contract.
struct KernelShape {
  std::size_t mr;
  std::size_t nr;
  void (*kernel)(std::size_t, const double*, const double*, double, double*,
                 std::size_t, std::size_t, std::size_t);
};

const KernelShape& kernel_shape() {
  static const KernelShape shape = [] {
#if defined(FEDVR_KERNEL_HAS_CLONES)
    if (__builtin_cpu_supports("avx512f")) {
      return KernelShape{kMrAvx512, kNrAvx512, micro_kernel_avx512};
    }
#endif
    return KernelShape{kMrAvx2, kNrAvx2, micro_kernel_avx2};
  }();
  return shape;
}

// The blocked path: jc (NC) -> pc (KC, serial so the k-order is fixed) ->
// parallel over ic (MC row-blocks of C, disjoint) -> jr (NR) -> ir (MR).
// beta has already been applied to C by the caller.
void gemm_blocked(Trans trans_a, Trans trans_b, std::size_t m, std::size_t n,
                  std::size_t k, double alpha, std::span<const double> a,
                  std::size_t lda, std::span<const double> b, std::size_t ldb,
                  std::span<double> c, std::size_t ldc) {
  // One B-panel allocation per gemm call, sized for the largest (p0, j0)
  // panel; each iteration packs into its prefix. The panel lives on the
  // calling thread's arena and is read-only for the workers (parallel_for's
  // task handoff publishes it); workers draw their A blocks from their own
  // per-thread arenas (inline execution nests scopes LIFO on this one).
  const KernelShape& ks = kernel_shape();
  const std::size_t mr_t = ks.mr;
  const std::size_t nr_t = ks.nr;
  Workspace ws(scratch_arena());
  const std::size_t max_pb = std::min(kKc, k);
  auto b_panel =
      ws.alloc<double>((std::min(kNc, n) + nr_t - 1) / nr_t * max_pb * nr_t);
  const std::size_t a_block_doubles = (kMc + mr_t - 1) / mr_t * max_pb * mr_t;
  for (std::size_t j0 = 0; j0 < n; j0 += kNc) {
    const std::size_t jb = std::min(kNc, n - j0);
    const std::size_t slivers = (jb + nr_t - 1) / nr_t;
    for (std::size_t p0 = 0; p0 < k; p0 += kKc) {
      const std::size_t pb = std::min(kKc, k - p0);
      pack_b_panel(trans_b, nr_t, b, ldb, p0, pb, j0, jb,
                   b_panel.subspan(0, slivers * pb * nr_t));
      const double* b_packed = b_panel.data();
      const std::size_t iblocks = (m + kMc - 1) / kMc;
      util::ThreadPool::global().parallel_for(
          0, iblocks, [&](std::size_t blk) {
            Workspace wws(scratch_arena());
            const auto a_block = wws.alloc<double>(a_block_doubles);
            const std::size_t i0 = blk * kMc;
            const std::size_t ib = std::min(kMc, m - i0);
            const std::size_t groups = (ib + mr_t - 1) / mr_t;
            pack_a_block(trans_a, mr_t, a, lda, i0, ib, p0, pb,
                         a_block.subspan(0, groups * pb * mr_t));
            for (std::size_t jg = 0; jg < slivers; ++jg) {
              const double* b_sliver = b_packed + jg * pb * nr_t;
              const std::size_t nr = std::min(nr_t, jb - jg * nr_t);
              for (std::size_t ig = 0; ig * mr_t < ib; ++ig) {
                const double* a_sliver = a_block.data() + ig * pb * mr_t;
                const std::size_t mr = std::min(mr_t, ib - ig * mr_t);
                ks.kernel(pb, a_sliver, b_sliver, alpha,
                          c.data() + (i0 + ig * mr_t) * ldc + j0 + jg * nr_t,
                          ldc, mr, nr);
              }
            }
          });
    }
  }
}

// ---- Dot-product GEMM path (small C, long k, both operands k-major) ----
//
// When A is untransposed and B is transposed, both operands stream
// unit-stride along k; when C is also tiny (e.g. conv1's 25 x 32 dW with
// k = 784), the blocked path has almost no operand reuse to exploit and
// spends most of its time packing and re-streaming slivers. Computing each
// C element directly as a register-resident dot product wins there.
//
// Determinism: each element is accumulated into kDotLanes independent
// partial sums (lane l takes the k indices congruent to l modulo
// kDotLanes, tail indices fold into lanes 0..k%kDotLanes), then reduced in
// ascending lane order. The tile grouping below never changes any
// element's arithmetic, and path selection depends only on the shape.
constexpr std::size_t kDotLanes = 8;
constexpr std::size_t kDotMaxC = 4096;  // m * n at or below: C fits L1 easily
constexpr std::size_t kDotMinK = 128;   // long enough to amortize the reduce

template <std::size_t TI, std::size_t TJ>
[[gnu::always_inline]] inline void dot_tile(std::size_t k, double alpha,
                                            const double* a, std::size_t lda,
                                            const double* b, std::size_t ldb,
                                            double* c, std::size_t ldc) {
  double acc[TI][TJ][kDotLanes] = {};
  const std::size_t k8 = k - k % kDotLanes;
  for (std::size_t p = 0; p < k8; p += kDotLanes) {
    for (std::size_t i = 0; i < TI; ++i) {
      for (std::size_t j = 0; j < TJ; ++j) {
        const double* ap = a + i * lda + p;
        const double* bp = b + j * ldb + p;
        for (std::size_t l = 0; l < kDotLanes; ++l) {
          acc[i][j][l] += ap[l] * bp[l];
        }
      }
    }
  }
  for (std::size_t p = k8; p < k; ++p) {
    for (std::size_t i = 0; i < TI; ++i) {
      for (std::size_t j = 0; j < TJ; ++j) {
        acc[i][j][p - k8] += a[i * lda + p] * b[j * ldb + p];
      }
    }
  }
  for (std::size_t i = 0; i < TI; ++i) {
    for (std::size_t j = 0; j < TJ; ++j) {
      double s = acc[i][j][0];
      for (std::size_t l = 1; l < kDotLanes; ++l) s += acc[i][j][l];
      c[i * ldc + j] += alpha * s;
    }
  }
}

FEDVR_KERNEL_CLONES
void gemm_dot_core(std::size_t m, std::size_t n, std::size_t k, double alpha,
                   const double* a, std::size_t lda, const double* b,
                   std::size_t ldb, double* c, std::size_t ldc) {
  const std::size_t m2 = m - m % 2;
  const std::size_t n2 = n - n % 2;
  for (std::size_t i = 0; i < m2; i += 2) {
    for (std::size_t j = 0; j < n2; j += 2) {
      dot_tile<2, 2>(k, alpha, a + i * lda, lda, b + j * ldb, ldb,
                     c + i * ldc + j, ldc);
    }
    if (n2 < n) {
      dot_tile<2, 1>(k, alpha, a + i * lda, lda, b + n2 * ldb, ldb,
                     c + i * ldc + n2, ldc);
    }
  }
  if (m2 < m) {
    for (std::size_t j = 0; j < n2; j += 2) {
      dot_tile<1, 2>(k, alpha, a + m2 * lda, lda, b + j * ldb, ldb,
                     c + m2 * ldc + j, ldc);
    }
    if (n2 < n) {
      dot_tile<1, 1>(k, alpha, a + m2 * lda, lda, b + n2 * ldb, ldb,
                     c + m2 * ldc + n2, ldc);
    }
  }
}

// y[i] += alpha * <A row i, x> for i in [lo, hi).
FEDVR_KERNEL_CLONES
void gemv_rows(std::size_t lo, std::size_t hi, std::size_t cols, double alpha,
               const double* a, const double* x, double* y) {
  for (std::size_t i = lo; i < hi; ++i) {
    const double* row = a + i * cols;
    double acc = 0.0;
    for (std::size_t j = 0; j < cols; ++j) acc += row[j] * x[j];
    y[i] += alpha * acc;
  }
}

// y[j] += alpha * sum_i x[i] * A(i, j) for j in [lo, hi): i ascending so
// the per-element order is chunk-invariant, unit-stride inner loop.
FEDVR_KERNEL_CLONES
void gemv_cols(std::size_t lo, std::size_t hi, std::size_t rows,
               std::size_t cols, double alpha, const double* a,
               const double* x, double* y) {
  for (std::size_t i = 0; i < rows; ++i) {
    const double* row = a + i * cols;
    const double xi = alpha * x[i];
    for (std::size_t j = lo; j < hi; ++j) y[j] += xi * row[j];
  }
}

}  // namespace

void gemm(Trans trans_a, Trans trans_b, std::size_t m, std::size_t n,
          std::size_t k, double alpha, std::span<const double> a,
          std::size_t lda, std::span<const double> b, std::size_t ldb,
          double beta, std::span<double> c, std::size_t ldc) {
  // Shape/stride preconditions via the gated fedvr::check layer: compiled
  // out under -DFEDVR_CHECKS=OFF, skippable at runtime via FEDVR_CHECKS=0.
  FEDVR_CHECK_PRE(ldc >= n, "gemm: ldc " << ldc << " < n " << n);
  [[maybe_unused]] const std::size_t a_rows = (trans_a == Trans::kNo) ? m : k;
  [[maybe_unused]] const std::size_t a_cols = (trans_a == Trans::kNo) ? k : m;
  [[maybe_unused]] const std::size_t b_rows = (trans_b == Trans::kNo) ? k : n;
  [[maybe_unused]] const std::size_t b_cols = (trans_b == Trans::kNo) ? n : k;
  FEDVR_CHECK_PRE(lda >= a_cols, "gemm: lda " << lda << " < " << a_cols);
  FEDVR_CHECK_PRE(ldb >= b_cols, "gemm: ldb " << ldb << " < " << b_cols);
  FEDVR_CHECK_PRE(a.size() >= (a_rows == 0 ? 0 : (a_rows - 1) * lda + a_cols),
                  "gemm: A storage " << a.size() << " too small");
  FEDVR_CHECK_PRE(b.size() >= (b_rows == 0 ? 0 : (b_rows - 1) * ldb + b_cols),
                  "gemm: B storage " << b.size() << " too small");
  FEDVR_CHECK_PRE(c.size() >= (m == 0 ? 0 : (m - 1) * ldc + n),
                  "gemm: C storage " << c.size() << " too small");

  // Scale C by beta first (handles beta == 0 without reading C garbage:
  // storage is always initialized doubles in this codebase).
  for (std::size_t i = 0; i < m; ++i) {
    double* row = c.data() + i * ldc;
    if (beta == 0.0) {
      std::fill(row, row + n, 0.0);
    } else if (beta != 1.0) {
      for (std::size_t j = 0; j < n; ++j) row[j] *= beta;
    }
  }
  FEDVR_OBS_COUNT("tensor.gemm.calls", 1);
  if (alpha == 0.0 || m == 0 || n == 0 || k == 0) return;
  FEDVR_OBS_COUNT("tensor.gemm.flops", 2ULL * m * n * k);

  // Shape-only path selection (see the path comments for why each exists);
  // the dot path must be tested before the blocked one — its shapes usually
  // clear the blocked volume floor but run far faster unblocked.
  if (trans_a == Trans::kNo && trans_b == Trans::kYes && m * n <= kDotMaxC &&
      k >= kDotMinK) {
    gemm_dot_core(m, n, k, alpha, a.data(), lda, b.data(), ldb, c.data(),
                  ldc);
    return;
  }

  if (m * n * k >= kBlockedMinVolume) {
    gemm_blocked(trans_a, trans_b, m, n, k, alpha, a, lda, b, ldb, c, ldc);
    return;
  }

  // Small-product path: pack operands into non-transposed layout. Simpler
  // than four loop variants, and the packing cost is linear while the
  // product is cubic. Pack storage comes from the per-thread arena scope.
  Workspace ws(scratch_arena());
  const double* a_ptr;
  const double* b_ptr;
  if (trans_a == Trans::kNo && lda == k) {
    a_ptr = a.data();
  } else {
    auto a_pack = ws.alloc<double>(m * k);
    pack(trans_a, m, k, a, lda, a_pack);
    a_ptr = a_pack.data();
  }
  if (trans_b == Trans::kNo && ldb == n) {
    b_ptr = b.data();
  } else {
    auto b_pack = ws.alloc<double>(k * n);
    pack(trans_b, k, n, b, ldb, b_pack);
    b_ptr = b_pack.data();
  }
  gemm_core(m, n, k, alpha, a_ptr, b_ptr, c, ldc);
}

void gemm_packed(Trans trans_a, Trans trans_b, std::size_t m, std::size_t n,
                 std::size_t k, double alpha, std::span<const double> a,
                 std::span<const double> b, double beta, std::span<double> c) {
  const std::size_t lda = (trans_a == Trans::kNo) ? k : m;
  const std::size_t ldb = (trans_b == Trans::kNo) ? n : k;
  gemm(trans_a, trans_b, m, n, k, alpha, a, lda, b, ldb, beta, c, n);
}

void gemv(Trans trans, std::size_t rows, std::size_t cols, double alpha,
          std::span<const double> a, std::span<const double> x, double beta,
          std::span<double> y) {
  FEDVR_CHECK_PRE(a.size() >= rows * cols,
                  "gemv: A storage " << a.size() << " < " << rows * cols);
  [[maybe_unused]] const std::size_t x_len = (trans == Trans::kNo) ? cols : rows;
  [[maybe_unused]] const std::size_t y_len = (trans == Trans::kNo) ? rows : cols;
  FEDVR_CHECK_SHAPE(x.size(), x_len);
  FEDVR_CHECK_SHAPE(y.size(), y_len);
  if (beta == 0.0) {
    std::fill(y.begin(), y.end(), 0.0);
  } else if (beta != 1.0) {
    for (double& v : y) v *= beta;
  }
  FEDVR_OBS_COUNT("tensor.gemv.calls", 1);
  if (alpha == 0.0) return;
  FEDVR_OBS_COUNT("tensor.gemv.flops", 2ULL * rows * cols);
  // Both orientations parallelize over disjoint slices of y, so each
  // element keeps one fixed accumulation order (ascending over the summed
  // dimension) no matter how the range is chunked: bit-identical across
  // pool sizes, including size 1. Small products skip the dispatch.
  constexpr std::size_t kGemvMinParallel = 1U << 15;
  const bool parallel = rows * cols >= kGemvMinParallel;
  if (trans == Trans::kNo) {
    auto run_rows = [&](std::size_t lo, std::size_t hi) {
      gemv_rows(lo, hi, cols, alpha, a.data(), x.data(), y.data());
    };
    if (parallel) {
      util::ThreadPool::global().parallel_ranges(0, rows, run_rows, 16);
    } else {
      run_rows(0, rows);
    }
  } else {
    auto run_cols = [&](std::size_t lo, std::size_t hi) {
      gemv_cols(lo, hi, rows, cols, alpha, a.data(), x.data(), y.data());
    };
    if (parallel) {
      util::ThreadPool::global().parallel_ranges(0, cols, run_cols, 64);
    } else {
      run_cols(0, cols);
    }
  }
}

void relu(std::span<const double> x, std::span<double> out) {
  FEDVR_CHECK_SHAPE(x.size(), out.size());
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < n; ++i) out[i] = x[i] > 0.0 ? x[i] : 0.0;
}

void relu_backward(std::span<const double> x, std::span<const double> dy,
                   std::span<double> dx) {
  FEDVR_CHECK_SHAPE(x.size(), dy.size());
  FEDVR_CHECK_SHAPE(x.size(), dx.size());
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < n; ++i) dx[i] = x[i] > 0.0 ? dy[i] : 0.0;
}

void softmax_rows(std::size_t rows, std::size_t cols,
                  std::span<const double> logits, std::span<double> probs) {
  FEDVR_CHECK_SHAPE(logits.size(), rows * cols);
  FEDVR_CHECK_SHAPE(probs.size(), rows * cols);
  for (std::size_t i = 0; i < rows; ++i) {
    const double* in = logits.data() + i * cols;
    double* out = probs.data() + i * cols;
    double max_v = -std::numeric_limits<double>::infinity();
    for (std::size_t j = 0; j < cols; ++j) max_v = std::max(max_v, in[j]);
    double sum = 0.0;
    for (std::size_t j = 0; j < cols; ++j) {
      out[j] = std::exp(in[j] - max_v);
      sum += out[j];
    }
    const double inv = 1.0 / sum;
    for (std::size_t j = 0; j < cols; ++j) out[j] *= inv;
  }
}

void argmax_rows(std::size_t rows, std::size_t cols,
                 std::span<const double> x, std::span<std::size_t> out) {
  FEDVR_CHECK_SHAPE(x.size(), rows * cols);
  FEDVR_CHECK_SHAPE(out.size(), rows);
  for (std::size_t i = 0; i < rows; ++i) {
    const double* row = x.data() + i * cols;
    std::size_t best = 0;
    for (std::size_t j = 1; j < cols; ++j) {
      if (row[j] > row[best]) best = j;
    }
    out[i] = best;
  }
}

void add_bias_rows(std::size_t rows, std::size_t cols, std::span<double> x,
                   std::span<const double> bias) {
  FEDVR_CHECK_SHAPE(x.size(), rows * cols);
  FEDVR_CHECK_SHAPE(bias.size(), cols);
  for (std::size_t i = 0; i < rows; ++i) {
    double* row = x.data() + i * cols;
    for (std::size_t j = 0; j < cols; ++j) row[j] += bias[j];
  }
}

void sum_rows(std::size_t rows, std::size_t cols, std::span<const double> dy,
              std::span<double> bias_grad) {
  FEDVR_CHECK_SHAPE(dy.size(), rows * cols);
  FEDVR_CHECK_SHAPE(bias_grad.size(), cols);
  std::fill(bias_grad.begin(), bias_grad.end(), 0.0);
  for (std::size_t i = 0; i < rows; ++i) {
    const double* row = dy.data() + i * cols;
    for (std::size_t j = 0; j < cols; ++j) bias_grad[j] += row[j];
  }
}

namespace {

// Blocked so both the read and the write side stay within a few cache
// lines per tile; 16 doubles = 2 lines.
constexpr std::size_t kTransposeTile = 16;

FEDVR_KERNEL_CLONES
void transpose_core(std::size_t rows, std::size_t cols, const double* in,
                    double* out) {
  for (std::size_t i0 = 0; i0 < rows; i0 += kTransposeTile) {
    const std::size_t ih = std::min(rows, i0 + kTransposeTile);
    for (std::size_t j0 = 0; j0 < cols; j0 += kTransposeTile) {
      const std::size_t jh = std::min(cols, j0 + kTransposeTile);
      for (std::size_t i = i0; i < ih; ++i) {
        const double* src = in + i * cols;
        for (std::size_t j = j0; j < jh; ++j) {
          out[j * rows + i] = src[j];
        }
      }
    }
  }
}

FEDVR_KERNEL_CLONES
void add_transposed_core(std::size_t rows, std::size_t cols, const double* in,
                         double* out) {
  for (std::size_t i0 = 0; i0 < rows; i0 += kTransposeTile) {
    const std::size_t ih = std::min(rows, i0 + kTransposeTile);
    for (std::size_t j0 = 0; j0 < cols; j0 += kTransposeTile) {
      const std::size_t jh = std::min(cols, j0 + kTransposeTile);
      for (std::size_t i = i0; i < ih; ++i) {
        double* dst = out + i * cols;
        for (std::size_t j = j0; j < jh; ++j) {
          dst[j] += in[j * rows + i];
        }
      }
    }
  }
}

FEDVR_KERNEL_CLONES
void add_row_sums_core(std::size_t rows, std::size_t cols, const double* m,
                       double* out) {
  for (std::size_t i = 0; i < rows; ++i) {
    const double* row = m + i * cols;
    // Single serial ascending accumulator: the FP order the determinism
    // contract pins for the conv2d db partials.
    double acc = 0.0;
    for (std::size_t j = 0; j < cols; ++j) acc += row[j];
    out[i] += acc;
  }
}

}  // namespace

void transpose(std::size_t rows, std::size_t cols, std::span<const double> in,
               std::span<double> out) {
  FEDVR_CHECK_SHAPE(in.size(), rows * cols);
  FEDVR_CHECK_SHAPE(out.size(), rows * cols);
  transpose_core(rows, cols, in.data(), out.data());
}

void add_transposed(std::size_t rows, std::size_t cols,
                    std::span<const double> in, std::span<double> out) {
  FEDVR_CHECK_SHAPE(in.size(), rows * cols);
  FEDVR_CHECK_SHAPE(out.size(), rows * cols);
  add_transposed_core(rows, cols, in.data(), out.data());
}

void add_row_sums(std::size_t rows, std::size_t cols,
                  std::span<const double> m, std::span<double> out) {
  FEDVR_CHECK_SHAPE(m.size(), rows * cols);
  FEDVR_CHECK_SHAPE(out.size(), rows);
  add_row_sums_core(rows, cols, m.data(), out.data());
}

}  // namespace fedvr::tensor
