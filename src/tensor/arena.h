// Preallocated bump-allocator scratch for the kernel / solver hot paths.
//
// An Arena owns one cache-line-aligned slab; a Workspace is an RAII scope
// that hands out spans by bumping the arena cursor and rewinds it on
// destruction. Scopes nest LIFO (a conv backward scope opens nested GEMM
// scopes on the same per-thread arena), so steady-state inner loops touch
// the allocator only by moving a cursor — zero heap traffic. Requests that
// do not fit the slab still succeed through individually heap-allocated
// overflow blocks; the arena then regrows at the end of the outermost scope
// (when no spans are live) so the *next* episode runs allocation-free.
// Every heap acquisition — initial slab, regrow, trim, overflow block — is
// counted in a process-wide stat (arena_heap_events()) that benchmarks and
// tests assert stays flat across steady-state rounds.
//
// Determinism: arenas hand back raw storage; every consumer fully overwrites
// what it reads (or uses alloc_zeroed), so buffer placement cannot leak into
// results. The FP story is unchanged by construction — callers run the same
// arithmetic on differently-owned memory.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

namespace fedvr::tensor {

class Workspace;

class Arena {
 public:
  /// Every span handed out is aligned to this (one x86 cache line, and
  /// enough for any vector ISA the kernels' target_clones dispatch to).
  static constexpr std::size_t kAlignment = 64;

  /// `trim_bytes` caps long-term slab retention: when > 0 and an episode
  /// (outermost scope) finishes having used no more than the cap while the
  /// slab had grown beyond it, the slab shrinks back — one outlier shape
  /// must not pin memory forever (same policy as scratch_resize's
  /// kScratchCapDoubles, see kernels.h).
  explicit Arena(std::size_t capacity_bytes = 0, std::size_t trim_bytes = 0);
  ~Arena();
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  [[nodiscard]] std::size_t capacity_bytes() const { return capacity_; }
  [[nodiscard]] std::size_t used_bytes() const { return cursor_; }
  [[nodiscard]] bool in_scope() const { return depth_ > 0; }

  struct Stats {
    std::uint64_t span_allocs = 0;     // Workspace::alloc calls served
    std::uint64_t heap_events = 0;     // slab (re)allocations + overflows
    std::uint64_t overflow_allocs = 0; // requests that missed the slab
    std::size_t high_water_bytes = 0;  // peak bytes live at once, ever
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

  /// Manually applies the end-of-episode policy (regrow after overflow,
  /// trim oversized slabs). Only legal outside any Workspace; Workspace
  /// destructors call this automatically at outermost-scope exit.
  void reset();

 private:
  friend class Workspace;

  std::byte* raw_alloc(std::size_t bytes);
  void end_episode();
  void replace_slab(std::size_t new_capacity);

  std::unique_ptr<std::byte[]> slab_;
  std::size_t capacity_ = 0;
  std::size_t cursor_ = 0;
  std::size_t trim_ = 0;
  std::size_t depth_ = 0;
  std::size_t episode_peak_ = 0;   // cursor + overflow high water, episode
  std::size_t overflow_bytes_ = 0; // live overflow bytes this episode
  std::vector<std::unique_ptr<std::byte[]>> overflow_;
  Stats stats_;
};

/// RAII allocation scope over an Arena. All spans obtained from a Workspace
/// die when it does; scopes on one arena must nest LIFO (guaranteed by
/// construction for per-thread arenas — the pool's nested-inline execution
/// keeps every scope on the thread that opened it).
class Workspace {
 public:
  explicit Workspace(Arena& arena);
  ~Workspace();
  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;

  /// Uninitialized storage for `count` elements of a trivial type. The
  /// caller must fully overwrite before reading (determinism: results must
  /// never depend on what a previous scope left behind).
  template <typename T>
  [[nodiscard]] std::span<T> alloc(std::size_t count) {
    static_assert(std::is_trivially_copyable_v<T> &&
                      std::is_trivially_default_constructible_v<T>,
                  "arena spans are raw storage");
    static_assert(alignof(T) <= Arena::kAlignment);
    std::byte* p = arena_.raw_alloc(count * sizeof(T));
    return {reinterpret_cast<T*>(p), count};
  }

  /// Like alloc(), but zero-filled — for accumulator buffers.
  template <typename T>
  [[nodiscard]] std::span<T> alloc_zeroed(std::size_t count) {
    auto s = alloc<T>(count);
    std::fill(s.begin(), s.end(), T{});
    return s;
  }

 private:
  Arena& arena_;
  std::size_t saved_cursor_;
  std::size_t saved_overflow_count_;
  std::size_t saved_overflow_bytes_;
};

/// The calling thread's scratch arena: the unified home of all transient
/// kernel scratch (GEMM pack buffers, im2col columns, conv partials).
/// Trimmed back to kScratchCapDoubles * sizeof(double) per the policy in
/// kernels.h.
Arena& scratch_arena();

/// Process-wide count of heap acquisitions made by all arenas (slab
/// allocations, regrows, trims, overflow blocks). Steady-state hot loops
/// must leave this flat; bench/micro_rounds reports its per-round delta and
/// tests assert it is zero after warm-up.
std::uint64_t arena_heap_events();

}  // namespace fedvr::tensor
