// Parameter initialization schemes.
#pragma once

#include <span>

#include "util/rng.h"

namespace fedvr::tensor {

/// Fills with N(mean, stddev^2).
void fill_normal(util::Rng& rng, std::span<double> x, double mean,
                 double stddev);

/// Fills with U[lo, hi).
void fill_uniform(util::Rng& rng, std::span<double> x, double lo, double hi);

/// Glorot/Xavier uniform: U[-a, a] with a = sqrt(6 / (fan_in + fan_out)).
/// The standard choice for tanh/linear layers; used for all dense and conv
/// weights here (matches common TF defaults of the paper's era).
void fill_glorot_uniform(util::Rng& rng, std::span<double> x,
                         std::size_t fan_in, std::size_t fan_out);

}  // namespace fedvr::tensor
