#include "tensor/random_init.h"

#include <cmath>

#include "util/error.h"

namespace fedvr::tensor {

void fill_normal(util::Rng& rng, std::span<double> x, double mean,
                 double stddev) {
  for (double& v : x) v = rng.normal(mean, stddev);
}

void fill_uniform(util::Rng& rng, std::span<double> x, double lo, double hi) {
  for (double& v : x) v = rng.uniform(lo, hi);
}

void fill_glorot_uniform(util::Rng& rng, std::span<double> x,
                         std::size_t fan_in, std::size_t fan_out) {
  FEDVR_CHECK(fan_in + fan_out > 0);
  const double a =
      std::sqrt(6.0 / static_cast<double>(fan_in + fan_out));
  fill_uniform(rng, x, -a, a);
}

}  // namespace fedvr::tensor
