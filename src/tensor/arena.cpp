#include "tensor/arena.h"

#include <algorithm>
#include <atomic>
#include <cstdint>

#include "tensor/kernels.h"
#include "util/error.h"

namespace fedvr::tensor {

namespace {

// Relaxed is enough: readers only ever diff the counter around code they
// themselves ran (or after a pool join, which orders the accesses).
std::atomic<std::uint64_t> g_heap_events{0};

std::size_t round_up(std::size_t bytes, std::size_t align) {
  return (bytes + align - 1) / align * align;
}

}  // namespace

std::uint64_t arena_heap_events() {
  return g_heap_events.load(std::memory_order_relaxed);
}

Arena::Arena(std::size_t capacity_bytes, std::size_t trim_bytes)
    : trim_(trim_bytes) {
  if (capacity_bytes > 0) replace_slab(round_up(capacity_bytes, kAlignment));
}

Arena::~Arena() = default;

void Arena::replace_slab(std::size_t new_capacity) {
  // A replaced slab would dangle every live span; the scope discipline
  // guarantees none exist here.
  FEDVR_CHECK_MSG(cursor_ == 0 && depth_ == 0,
                  "arena slab replaced while spans are live");
  slab_.reset();
  if (new_capacity > 0) {
    // Headroom so per-allocation alignment padding never tips a sized-to-fit
    // slab into overflow.
    slab_ = std::make_unique<std::byte[]>(new_capacity + kAlignment);
    g_heap_events.fetch_add(1, std::memory_order_relaxed);
    ++stats_.heap_events;
  }
  capacity_ = new_capacity;
}

std::byte* Arena::raw_alloc(std::size_t bytes) {
  FEDVR_CHECK_MSG(depth_ > 0, "arena allocation outside any Workspace scope");
  ++stats_.span_allocs;
  bytes = round_up(std::max<std::size_t>(bytes, 1), kAlignment);
  if (slab_ != nullptr && cursor_ + bytes <= capacity_) {
    // Align the slab base once (the +kAlignment headroom in replace_slab
    // pays for it); every span size is a multiple of kAlignment, so cursor
    // offsets need no per-span padding — and a slab regrown to exactly the
    // episode footprint fits that episode with zero overflow.
    auto addr = reinterpret_cast<std::uintptr_t>(slab_.get());
    std::byte* base = slab_.get() + (round_up(addr, kAlignment) - addr);
    std::byte* p = base + cursor_;
    cursor_ += bytes;
    episode_peak_ = std::max(episode_peak_, cursor_ + overflow_bytes_);
    stats_.high_water_bytes =
        std::max(stats_.high_water_bytes, episode_peak_);
    return p;
  }
  // Slab miss: serve from an individually owned block so the request still
  // succeeds, and remember the episode's true footprint so end_episode()
  // regrows the slab and the next episode stays on the fast path.
  auto block = std::make_unique<std::byte[]>(bytes + kAlignment);
  g_heap_events.fetch_add(1, std::memory_order_relaxed);
  ++stats_.heap_events;
  ++stats_.overflow_allocs;
  auto addr = reinterpret_cast<std::uintptr_t>(block.get());
  std::byte* p = block.get() + (round_up(addr, kAlignment) - addr);
  overflow_.push_back(std::move(block));
  overflow_bytes_ += bytes;
  episode_peak_ = std::max(episode_peak_, cursor_ + overflow_bytes_);
  stats_.high_water_bytes = std::max(stats_.high_water_bytes, episode_peak_);
  return p;
}

void Arena::end_episode() {
  if (!overflow_.empty() || episode_peak_ > capacity_) {
    // Geometric growth: repeated slightly-larger episodes must not realloc
    // every round.
    replace_slab(std::max(round_up(episode_peak_, kAlignment),
                          capacity_ * 2));
  } else if (trim_ > 0 && capacity_ > trim_ && episode_peak_ > 0 &&
             episode_peak_ <= trim_) {
    replace_slab(round_up(episode_peak_, kAlignment));
  }
  episode_peak_ = 0;
}

void Arena::reset() {
  FEDVR_CHECK_MSG(depth_ == 0, "Arena::reset() inside a Workspace scope");
  overflow_.clear();
  overflow_bytes_ = 0;
  cursor_ = 0;
  end_episode();
}

Workspace::Workspace(Arena& arena)
    : arena_(arena),
      saved_cursor_(arena.cursor_),
      saved_overflow_count_(arena.overflow_.size()),
      saved_overflow_bytes_(arena.overflow_bytes_) {
  ++arena_.depth_;
}

Workspace::~Workspace() {
  arena_.cursor_ = saved_cursor_;
  arena_.overflow_.resize(saved_overflow_count_);
  arena_.overflow_bytes_ = saved_overflow_bytes_;
  if (--arena_.depth_ == 0) arena_.end_episode();
}

Arena& scratch_arena() {
  // One arena per thread; pool workers and the main thread never share.
  // Trim mirrors the historical thread_local scratch cap (kernels.h).
  thread_local Arena arena(/*capacity_bytes=*/0,
                           /*trim_bytes=*/kScratchCapDoubles *
                               sizeof(double));
  return arena;
}

}  // namespace fedvr::tensor
