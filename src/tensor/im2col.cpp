#include "tensor/im2col.h"

#include <algorithm>
#include <cstddef>

#include "check/check.h"
#include "obs/registry.h"
#include "tensor/kernel_dispatch.h"

namespace fedvr::tensor {

namespace {
// Geometry preconditions via the gated fedvr::check layer (im2col runs once
// per sample per conv layer; the checks vanish under -DFEDVR_CHECKS=OFF,
// leaving the parameters otherwise unused).
void check_geometry([[maybe_unused]] const ConvGeometry& g,
                    [[maybe_unused]] std::size_t image_size,
                    [[maybe_unused]] std::size_t cols_size,
                    [[maybe_unused]] std::size_t ld_cols,
                    [[maybe_unused]] std::size_t col_offset) {
  FEDVR_CHECK_PRE(g.height + 2 * g.pad >= g.kernel_h &&
                      g.width + 2 * g.pad >= g.kernel_w,
                  "kernel " << g.kernel_h << "x" << g.kernel_w
                            << " larger than padded image");
  FEDVR_CHECK_PRE(g.stride >= 1, "stride must be at least 1");
  FEDVR_CHECK_PRE(ld_cols >= col_offset + g.out_pixels(),
                  "cols row stride " << ld_cols << " too small for offset "
                                     << col_offset << " + " << g.out_pixels()
                                     << " pixels");
  FEDVR_CHECK_SHAPE(image_size, g.image_size());
  FEDVR_CHECK_PRE(
      cols_size >= (g.col_rows() - 1) * ld_cols + col_offset + g.out_pixels(),
      "cols storage " << cols_size << " too small");
}

// For stride == 1, output row (c, kh, kw) of the column matrix is the input
// row shifted by (kh - pad, kw - pad): a zero prefix/suffix around one
// contiguous copy (im2col) or one unit-stride add run (col2im). The valid
// output ranges below are exactly the pixels whose input coordinate lands
// inside the unpadded image.
struct ValidRange {
  std::ptrdiff_t lo;
  std::ptrdiff_t hi;  // may be < lo when the whole row is padding
};

inline ValidRange valid_range(std::size_t out_extent, std::size_t in_extent,
                              std::size_t k, std::size_t pad) {
  const auto kk = static_cast<std::ptrdiff_t>(k);
  const auto pp = static_cast<std::ptrdiff_t>(pad);
  return {std::max<std::ptrdiff_t>(0, pp - kk),
          std::min(static_cast<std::ptrdiff_t>(out_extent),
                   static_cast<std::ptrdiff_t>(in_extent) + pp - kk)};
}

FEDVR_KERNEL_CLONES
void im2col_core(const ConvGeometry& g, const double* image, double* cols,
                 std::size_t ld_cols, std::size_t col_offset) {
  const std::size_t out_h = g.out_h();
  const std::size_t out_w = g.out_w();
  std::size_t row = 0;
  for (std::size_t c = 0; c < g.channels; ++c) {
    const double* plane = image + c * g.height * g.width;
    for (std::size_t kh = 0; kh < g.kernel_h; ++kh) {
      for (std::size_t kw = 0; kw < g.kernel_w; ++kw, ++row) {
        double* out_row = cols + row * ld_cols + col_offset;
        if (g.stride == 1) {
          const ValidRange vy = valid_range(out_h, g.height, kh, g.pad);
          const ValidRange vx = valid_range(out_w, g.width, kw, g.pad);
          const std::ptrdiff_t run = std::max<std::ptrdiff_t>(0, vx.hi - vx.lo);
          std::ptrdiff_t oy = 0;
          for (; oy < vy.lo; ++oy) std::fill_n(out_row + oy * out_w, out_w, 0.0);
          for (; oy < vy.hi; ++oy) {
            double* dst = out_row + oy * out_w;
            std::fill_n(dst, vx.lo, 0.0);
            const std::size_t iy = static_cast<std::size_t>(oy + kh - g.pad);
            const double* src = plane + iy * g.width +
                                static_cast<std::size_t>(vx.lo + kw - g.pad);
            std::copy_n(src, run, dst + vx.lo);
            std::fill_n(dst + vx.lo + run, out_w - static_cast<std::size_t>(vx.lo + run), 0.0);
          }
          for (; oy < static_cast<std::ptrdiff_t>(out_h); ++oy) {
            std::fill_n(out_row + oy * out_w, out_w, 0.0);
          }
          continue;
        }
        for (std::size_t oy = 0; oy < out_h; ++oy) {
          // Input coordinates may be in the padding; signed arithmetic keeps
          // the borrow explicit.
          const std::ptrdiff_t iy =
              static_cast<std::ptrdiff_t>(oy * g.stride + kh) -
              static_cast<std::ptrdiff_t>(g.pad);
          for (std::size_t ox = 0; ox < out_w; ++ox) {
            const std::ptrdiff_t ix =
                static_cast<std::ptrdiff_t>(ox * g.stride + kw) -
                static_cast<std::ptrdiff_t>(g.pad);
            double v = 0.0;
            if (iy >= 0 && iy < static_cast<std::ptrdiff_t>(g.height) &&
                ix >= 0 && ix < static_cast<std::ptrdiff_t>(g.width)) {
              v = plane[static_cast<std::size_t>(iy) * g.width +
                        static_cast<std::size_t>(ix)];
            }
            out_row[oy * out_w + ox] = v;
          }
        }
      }
    }
  }
}

FEDVR_KERNEL_CLONES
void col2im_core(const ConvGeometry& g, const double* cols, double* image,
                 std::size_t ld_cols, std::size_t col_offset) {
  const std::size_t out_h = g.out_h();
  const std::size_t out_w = g.out_w();
  std::size_t row = 0;
  for (std::size_t c = 0; c < g.channels; ++c) {
    double* plane = image + c * g.height * g.width;
    for (std::size_t kh = 0; kh < g.kernel_h; ++kh) {
      for (std::size_t kw = 0; kw < g.kernel_w; ++kw, ++row) {
        const double* in_row = cols + row * ld_cols + col_offset;
        if (g.stride == 1) {
          // For fixed (kh, kw) each output pixel maps to a distinct image
          // element, so the unit-stride add run leaves every element's
          // accumulation order (ascending column row) unchanged.
          const ValidRange vy = valid_range(out_h, g.height, kh, g.pad);
          const ValidRange vx = valid_range(out_w, g.width, kw, g.pad);
          const std::ptrdiff_t run = std::max<std::ptrdiff_t>(0, vx.hi - vx.lo);
          for (std::ptrdiff_t oy = vy.lo; oy < vy.hi; ++oy) {
            const std::size_t iy = static_cast<std::size_t>(oy + kh - g.pad);
            double* dst = plane + iy * g.width +
                          static_cast<std::size_t>(vx.lo + kw - g.pad);
            const double* src = in_row + oy * out_w + vx.lo;
            for (std::ptrdiff_t i = 0; i < run; ++i) dst[i] += src[i];
          }
          continue;
        }
        for (std::size_t oy = 0; oy < out_h; ++oy) {
          const std::ptrdiff_t iy =
              static_cast<std::ptrdiff_t>(oy * g.stride + kh) -
              static_cast<std::ptrdiff_t>(g.pad);
          if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(g.height)) continue;
          for (std::size_t ox = 0; ox < out_w; ++ox) {
            const std::ptrdiff_t ix =
                static_cast<std::ptrdiff_t>(ox * g.stride + kw) -
                static_cast<std::ptrdiff_t>(g.pad);
            if (ix < 0 || ix >= static_cast<std::ptrdiff_t>(g.width)) continue;
            plane[static_cast<std::size_t>(iy) * g.width +
                  static_cast<std::size_t>(ix)] += in_row[oy * out_w + ox];
          }
        }
      }
    }
  }
}

}  // namespace

void im2col(const ConvGeometry& g, std::span<const double> image,
            std::span<double> cols) {
  im2col(g, image, cols, g.out_pixels(), 0);
}

void im2col(const ConvGeometry& g, std::span<const double> image,
            std::span<double> cols, std::size_t ld_cols,
            std::size_t col_offset) {
  check_geometry(g, image.size(), cols.size(), ld_cols, col_offset);
  FEDVR_OBS_COUNT("tensor.im2col.calls", 1);
  FEDVR_OBS_COUNT("tensor.im2col.elems", g.col_rows() * g.out_pixels());
  im2col_core(g, image.data(), cols.data(), ld_cols, col_offset);
}

void col2im(const ConvGeometry& g, std::span<const double> cols,
            std::span<double> image) {
  col2im(g, cols, image, g.out_pixels(), 0);
}

void col2im(const ConvGeometry& g, std::span<const double> cols,
            std::span<double> image, std::size_t ld_cols,
            std::size_t col_offset) {
  check_geometry(g, image.size(), cols.size(), ld_cols, col_offset);
  FEDVR_OBS_COUNT("tensor.col2im.calls", 1);
  FEDVR_OBS_COUNT("tensor.col2im.elems", g.col_rows() * g.out_pixels());
  col2im_core(g, cols.data(), image.data(), ld_cols, col_offset);
}

}  // namespace fedvr::tensor
