#include "tensor/im2col.h"

#include "check/check.h"
#include "obs/registry.h"

namespace fedvr::tensor {

namespace {
// Geometry preconditions via the gated fedvr::check layer (im2col runs once
// per sample per conv layer; the checks vanish under -DFEDVR_CHECKS=OFF,
// leaving the parameters otherwise unused).
void check_geometry([[maybe_unused]] const ConvGeometry& g,
                    [[maybe_unused]] std::size_t image_size,
                    [[maybe_unused]] std::size_t cols_size) {
  FEDVR_CHECK_PRE(g.height + 2 * g.pad >= g.kernel_h &&
                      g.width + 2 * g.pad >= g.kernel_w,
                  "kernel " << g.kernel_h << "x" << g.kernel_w
                            << " larger than padded image");
  FEDVR_CHECK_PRE(g.stride >= 1, "stride must be at least 1");
  FEDVR_CHECK_SHAPE(image_size, g.image_size());
  FEDVR_CHECK_SHAPE(cols_size, g.col_rows() * g.out_pixels());
}
}  // namespace

void im2col(const ConvGeometry& g, std::span<const double> image,
            std::span<double> cols) {
  check_geometry(g, image.size(), cols.size());
  FEDVR_OBS_COUNT("tensor.im2col.calls", 1);
  FEDVR_OBS_COUNT("tensor.im2col.elems", cols.size());
  const std::size_t out_h = g.out_h();
  const std::size_t out_w = g.out_w();
  std::size_t row = 0;
  for (std::size_t c = 0; c < g.channels; ++c) {
    const double* plane = image.data() + c * g.height * g.width;
    for (std::size_t kh = 0; kh < g.kernel_h; ++kh) {
      for (std::size_t kw = 0; kw < g.kernel_w; ++kw, ++row) {
        double* out_row = cols.data() + row * out_h * out_w;
        for (std::size_t oy = 0; oy < out_h; ++oy) {
          // Input coordinates may be in the padding; signed arithmetic keeps
          // the borrow explicit.
          const std::ptrdiff_t iy =
              static_cast<std::ptrdiff_t>(oy * g.stride + kh) -
              static_cast<std::ptrdiff_t>(g.pad);
          for (std::size_t ox = 0; ox < out_w; ++ox) {
            const std::ptrdiff_t ix =
                static_cast<std::ptrdiff_t>(ox * g.stride + kw) -
                static_cast<std::ptrdiff_t>(g.pad);
            double v = 0.0;
            if (iy >= 0 && iy < static_cast<std::ptrdiff_t>(g.height) &&
                ix >= 0 && ix < static_cast<std::ptrdiff_t>(g.width)) {
              v = plane[static_cast<std::size_t>(iy) * g.width +
                        static_cast<std::size_t>(ix)];
            }
            out_row[oy * out_w + ox] = v;
          }
        }
      }
    }
  }
}

void col2im(const ConvGeometry& g, std::span<const double> cols,
            std::span<double> image) {
  check_geometry(g, image.size(), cols.size());
  FEDVR_OBS_COUNT("tensor.col2im.calls", 1);
  FEDVR_OBS_COUNT("tensor.col2im.elems", cols.size());
  const std::size_t out_h = g.out_h();
  const std::size_t out_w = g.out_w();
  std::size_t row = 0;
  for (std::size_t c = 0; c < g.channels; ++c) {
    double* plane = image.data() + c * g.height * g.width;
    for (std::size_t kh = 0; kh < g.kernel_h; ++kh) {
      for (std::size_t kw = 0; kw < g.kernel_w; ++kw, ++row) {
        const double* in_row = cols.data() + row * out_h * out_w;
        for (std::size_t oy = 0; oy < out_h; ++oy) {
          const std::ptrdiff_t iy =
              static_cast<std::ptrdiff_t>(oy * g.stride + kh) -
              static_cast<std::ptrdiff_t>(g.pad);
          if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(g.height)) continue;
          for (std::size_t ox = 0; ox < out_w; ++ox) {
            const std::ptrdiff_t ix =
                static_cast<std::ptrdiff_t>(ox * g.stride + kw) -
                static_cast<std::ptrdiff_t>(g.pad);
            if (ix < 0 || ix >= static_cast<std::ptrdiff_t>(g.width)) continue;
            plane[static_cast<std::size_t>(iy) * g.width +
                  static_cast<std::size_t>(ix)] += in_row[oy * out_w + ox];
          }
        }
      }
    }
  }
}

}  // namespace fedvr::tensor
