#include "tensor/tensor.h"

namespace fedvr::tensor {

double Tensor::at(std::span<const std::size_t> idx) const {
  FEDVR_CHECK_MSG(idx.size() == shape_.rank(),
                  "index rank " << idx.size() << " != tensor rank "
                                << shape_.rank());
  std::size_t flat = 0;
  for (std::size_t axis = 0; axis < idx.size(); ++axis) {
    FEDVR_CHECK_MSG(idx[axis] < shape_[axis],
                    "index " << idx[axis] << " out of bounds for axis "
                             << axis << " of " << shape_.str());
    flat = flat * shape_[axis] + idx[axis];
  }
  return data_[flat];
}

}  // namespace fedvr::tensor
