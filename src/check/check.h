// fedvr::check — the invariant layer: zero-cost-when-off precondition and
// numerical-sanity macros for hot paths, plus parameter-vector hashing for
// determinism auditing.
//
// Two gates, compile time and run time:
//   * CMake `-DFEDVR_CHECKS=OFF` defines FEDVR_CHECKS_DISABLED and every
//     FEDVR_CHECK_* macro below expands to nothing — arguments are not even
//     evaluated, so a shipped Release build pays zero instructions.
//   * When compiled in, checks still guard on check::enabled(): a single
//     relaxed atomic load, togglable at runtime via check::set_enabled() or
//     the FEDVR_CHECKS environment variable (FEDVR_CHECKS=0/off/false
//     disables; anything else, or unset, enables).
//
// Division of labour with util/error.h: FEDVR_CHECK / FEDVR_CHECK_MSG stay
// always-on and validate cheap, once-per-call API contracts (constructor
// options, file formats). This layer carries the checks that are either on
// a per-element hot path (shape/stride preconditions inside kernels, index
// bounds) or O(n) scans (gradient finiteness), where "free when off"
// matters. Violations throw the same util::Error, so callers and tests
// handle both layers uniformly.
//
// Like fedvr::obs, this subsystem depends only on header-only
// util/error.h, so every layer — tensor, nn, opt, fl — can use it without
// dependency cycles.
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <string_view>

#include "util/error.h"

namespace fedvr::check {

/// True when the FEDVR_CHECK_* macros are compiled in for THIS translation
/// unit (internal linkage on purpose: a TU may opt out with its own
/// FEDVR_CHECKS_DISABLED without violating the one-definition rule).
#if defined(FEDVR_CHECKS_DISABLED)
constexpr bool kCompiledIn = false;
#else
constexpr bool kCompiledIn = true;
#endif

namespace detail {
// Initialised from the FEDVR_CHECKS environment variable at load time.
extern std::atomic<bool> g_enabled;

[[noreturn]] void shape_failure(const char* actual_expr,
                                const char* expected_expr, std::size_t actual,
                                std::size_t expected, const char* file,
                                int line);
[[noreturn]] void index_failure(const char* index_expr, const char* bound_expr,
                                std::size_t index, std::size_t bound,
                                const char* file, int line);
[[noreturn]] void finite_failure(const char* what, std::size_t index,
                                 double value, const char* file, int line);
}  // namespace detail

/// Runtime toggle (relaxed load; one instruction on the hot path).
inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

/// Flips the runtime toggle process-wide; returns the previous value so
/// scoped users can restore it.
bool set_enabled(bool on);

/// True when the library's FEDVR_CHECK_* sites would actually execute right
/// now (compiled in when fedvr_check was built, and runtime-enabled).
/// Tests use this to skip violation cases in checks-off builds.
[[nodiscard]] bool active();

/// Index of the first NaN or ±Inf element, or `v.size()` when all finite.
[[nodiscard]] std::size_t first_non_finite(std::span<const double> v);

[[nodiscard]] inline bool all_finite(std::span<const double> v) {
  return first_non_finite(v) == v.size();
}

/// FNV-1a over the raw bytes of a parameter vector. Deterministic across
/// runs and platforms of equal endianness; bit-identical vectors — and only
/// those — hash equal, which is exactly the determinism audit we want
/// (an "almost equal" run is a reproducibility bug, not a match).
[[nodiscard]] std::uint64_t hash_span(std::span<const double> v);

/// Folds `value` into a running FNV-1a state (e.g. to hash a whole trace).
[[nodiscard]] std::uint64_t hash_combine(std::uint64_t seed,
                                         std::uint64_t value);

}  // namespace fedvr::check

#if defined(FEDVR_CHECKS_DISABLED)

#define FEDVR_CHECK_SHAPE(actual, expected) \
  do {                                      \
  } while (0)
#define FEDVR_CHECK_INDEX(index, bound) \
  do {                                  \
  } while (0)
#define FEDVR_CHECK_FINITE(values, what) \
  do {                                   \
  } while (0)
#define FEDVR_CHECK_PRE(expr, streamed) \
  do {                                  \
  } while (0)

#else

/// Shape precondition: two extents must agree.
///   FEDVR_CHECK_SHAPE(x.size(), rows * cols);
#define FEDVR_CHECK_SHAPE(actual, expected)                                  \
  do {                                                                       \
    if (::fedvr::check::enabled()) {                                         \
      const std::size_t fedvr_chk_a = (actual);                              \
      const std::size_t fedvr_chk_e = (expected);                            \
      if (fedvr_chk_a != fedvr_chk_e) {                                      \
        ::fedvr::check::detail::shape_failure(#actual, #expected,            \
                                              fedvr_chk_a, fedvr_chk_e,     \
                                              __FILE__, __LINE__);           \
      }                                                                      \
    }                                                                        \
  } while (0)

/// Bounds precondition: index < bound.
///   FEDVR_CHECK_INDEX(device, fed.num_devices());
#define FEDVR_CHECK_INDEX(index, bound)                                      \
  do {                                                                       \
    if (::fedvr::check::enabled()) {                                         \
      const std::size_t fedvr_chk_i = (index);                               \
      const std::size_t fedvr_chk_b = (bound);                               \
      if (fedvr_chk_i >= fedvr_chk_b) {                                      \
        ::fedvr::check::detail::index_failure(#index, #bound, fedvr_chk_i,   \
                                              fedvr_chk_b, __FILE__,         \
                                              __LINE__);                     \
      }                                                                      \
    }                                                                        \
  } while (0)

/// Numerical sanity: every element of a span must be finite. O(n) scan —
/// this is the check that most needs the off switch.
///   FEDVR_CHECK_FINITE(grad, "layer gradient");
#define FEDVR_CHECK_FINITE(values, what)                                     \
  do {                                                                       \
    if (::fedvr::check::enabled()) {                                         \
      const ::std::span<const double> fedvr_chk_v = (values);                \
      const std::size_t fedvr_chk_bad =                                      \
          ::fedvr::check::first_non_finite(fedvr_chk_v);                     \
      if (fedvr_chk_bad != fedvr_chk_v.size()) {                             \
        ::fedvr::check::detail::finite_failure(what, fedvr_chk_bad,          \
                                               fedvr_chk_v[fedvr_chk_bad],   \
                                               __FILE__, __LINE__);          \
      }                                                                      \
    }                                                                        \
  } while (0)

/// General gated precondition with streamed context, for conditions that do
/// not fit the shape/index/finite forms (e.g. stride lower bounds):
///   FEDVR_CHECK_PRE(ldc >= n, "gemm: ldc " << ldc << " < n " << n);
#define FEDVR_CHECK_PRE(expr, streamed)                                      \
  do {                                                                       \
    if (::fedvr::check::enabled() && !(expr)) {                              \
      ::fedvr::util::detail::MessageBuilder fedvr_chk_mb;                    \
      fedvr_chk_mb << streamed;                                              \
      ::fedvr::util::detail::raise_check_failure(#expr, __FILE__, __LINE__,  \
                                                 fedvr_chk_mb.str());        \
    }                                                                        \
  } while (0)

#endif  // FEDVR_CHECKS_DISABLED
