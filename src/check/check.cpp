#include "check/check.h"

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <sstream>

namespace fedvr::check {

namespace detail {

namespace {
bool enabled_from_env() {
  const char* env = std::getenv("FEDVR_CHECKS");
  if (env == nullptr) return true;
  const std::string_view v(env);
  return !(v == "0" || v == "off" || v == "OFF" || v == "false" ||
           v == "FALSE");
}
}  // namespace

std::atomic<bool> g_enabled{enabled_from_env()};

[[noreturn]] void shape_failure(const char* actual_expr,
                                const char* expected_expr, std::size_t actual,
                                std::size_t expected, const char* file,
                                int line) {
  std::ostringstream os;
  os << "shape mismatch: " << actual_expr << " = " << actual << " but "
     << expected_expr << " = " << expected;
  util::detail::raise_check_failure("FEDVR_CHECK_SHAPE", file, line, os.str());
}

[[noreturn]] void index_failure(const char* index_expr, const char* bound_expr,
                                std::size_t index, std::size_t bound,
                                const char* file, int line) {
  std::ostringstream os;
  os << "index out of range: " << index_expr << " = " << index
     << " must be < " << bound_expr << " = " << bound;
  util::detail::raise_check_failure("FEDVR_CHECK_INDEX", file, line, os.str());
}

[[noreturn]] void finite_failure(const char* what, std::size_t index,
                                 double value, const char* file, int line) {
  std::ostringstream os;
  os << "non-finite value in " << what << ": element " << index << " is "
     << value;
  util::detail::raise_check_failure("FEDVR_CHECK_FINITE", file, line,
                                    os.str());
}

}  // namespace detail

bool set_enabled(bool on) {
  return detail::g_enabled.exchange(on, std::memory_order_relaxed);
}

bool active() { return kCompiledIn && enabled(); }

std::size_t first_non_finite(std::span<const double> v) {
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (!std::isfinite(v[i])) return i;
  }
  return v.size();
}

namespace {
constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x00000100000001b3ULL;

std::uint64_t fnv1a_bytes(std::uint64_t state, const unsigned char* bytes,
                          std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    state ^= bytes[i];
    state *= kFnvPrime;
  }
  return state;
}
}  // namespace

std::uint64_t hash_span(std::span<const double> v) {
  std::uint64_t state = kFnvOffset;
  for (const double d : v) {
    unsigned char bytes[sizeof d];
    std::memcpy(bytes, &d, sizeof d);
    state = fnv1a_bytes(state, bytes, sizeof d);
  }
  return state;
}

std::uint64_t hash_combine(std::uint64_t seed, std::uint64_t value) {
  unsigned char bytes[sizeof value];
  std::memcpy(bytes, &value, sizeof value);
  return fnv1a_bytes(seed == 0 ? kFnvOffset : seed, bytes, sizeof value);
}

}  // namespace fedvr::check
