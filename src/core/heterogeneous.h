// Per-device hyperparameters (paper §3: "all of the results in this work
// are unchanged even when we allow heterogeneous values of L_n and
// lambda_n") and theory-driven configuration (§4.3).
#pragma once

#include <span>
#include <vector>

#include "core/algorithms.h"
#include "fl/trainer.h"
#include "theory/param_opt.h"

namespace fedvr::core {

/// Builds one solver per device from a shared spec plus per-device
/// smoothness constants: device n runs with eta_n = 1/(beta L_n) while tau,
/// mu, estimator, and batch size stay shared (the synchronous protocol
/// requires a common tau budget; the timing model charges the max).
[[nodiscard]] std::vector<opt::LocalSolver> make_heterogeneous_solvers(
    std::shared_ptr<const nn::Model> model, const AlgorithmSpec& spec,
    double beta, std::span<const double> smoothness_per_device);

/// Runs a spec with per-device smoothness constants end to end.
[[nodiscard]] fl::TrainingTrace run_federated_heterogeneous(
    std::shared_ptr<const nn::Model> model, const data::FederatedDataset& fed,
    const AlgorithmSpec& spec, double beta,
    std::span<const double> smoothness_per_device,
    const fl::TrainerOptions& trainer_options);

/// Theory-driven configuration: solves the §4.3 training-time minimization
/// for the deployment's gamma and problem constants, and returns ready-made
/// HyperParams (beta, mu, tau from eqs. 15-16/22-24; smoothness_L = pc.L).
/// Throws util::Error when no feasible parameters exist.
[[nodiscard]] HyperParams plan_hyperparams(double gamma,
                                           const theory::ProblemConstants& pc,
                                           std::size_t batch_size = 32);

}  // namespace fedvr::core
