// ProxSkip-VR: communication-skipping proximal gradient with variance
// reduction (Malinovsky, Yi & Richtárik, "Variance Reduced ProxSkip",
// arXiv:2207.04338; ProxSkip/Scaffnew: Mishchenko et al., ICML 2022).
//
// Where Algorithm 1 (FedProxVR) communicates every tau local iterations on
// a fixed schedule, ProxSkip flips a shared Bernoulli(p) coin each
// iteration and only synchronizes when it lands heads — in expectation one
// communication every 1/p iterations — while per-device control variates
// h_n correct the client drift that plain local SGD accumulates:
//
//   per device n, iteration t:
//     g_n^t     = SVRG estimator at x_n^t (anchor gradient refreshed at
//                 every communication round)
//     x̂_n^{t+1} = x_n^t − γ (g_n^t − h_n^t)
//   shared coin θ_t ~ Bernoulli(p) (same draw on every device):
//     θ_t = 1:  x_{t+1}   = Σ_n (D_n/D) (x̂_n^{t+1} − (γ/p) h_n^t)
//               h_n^{t+1} = h_n^t + (p/γ)(x_{t+1} − x̂_n^{t+1})
//               x_n^{t+1} = x_{t+1}           (broadcast)
//     θ_t = 0:  x_n^{t+1} = x̂_n^{t+1},  h unchanged,  no communication
//
// The prox step of ProxSkip is consensus averaging (the indicator of the
// consensus set), i.e. exactly the paper's line-12 weighted mean.
//
// Communication goes through comm::Channel: each device uploads
// y_n − anchor (its proposal as a delta against the last broadcast model),
// so TopK/RandK sparsification, error feedback, and lossy wire dtypes
// apply unchanged, and uplink/downlink bytes are measured from serialized
// comm::Message sizes. Every skipped round is a round of zero
// communication cost — the whole point of the method.
//
// Determinism: the skip coin for iteration t is drawn from
// fork(seed, 0, t, stream::kComm) — device coordinate 0, which never
// collides with per-device comm streams at coordinates >= 1 — and all
// per-device randomness (minibatch, compressor) uses the same
// per-(seed, device, round) forking as fl::Trainer, so traces are
// bit-identical for any thread-pool size.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "comm/channel.h"
#include "data/dataset.h"
#include "fl/faults.h"
#include "fl/metrics.h"
#include "fl/timing_model.h"
#include "nn/model.h"

namespace fedvr::core {

struct ProxSkipVROptions {
  /// Total ProxSkip iterations T. One iteration = one local SVRG step on
  /// every device (tau = 1 in eq. 19 terms); only ~p*T of them communicate.
  std::size_t iterations = 200;
  std::uint64_t seed = 1;
  /// Local step size γ.
  double step_size = 0.1;
  /// Communication probability p ∈ (0, 1]: the shared per-iteration coin.
  /// p = 1 communicates every iteration; the paper's regime is p ≈ 1/√κ.
  double skip_prob = 0.1;
  /// SVRG minibatch size per local step (clamped to the device's D_n).
  std::size_t batch_size = 8;
  /// Analytic timing (eq. 19 with tau = 1): skipped iterations charge only
  /// d_cmp, communication iterations add d_com (byte-derived when
  /// comm.byte_timing is set).
  fl::TimingModel timing;
  std::size_t eval_every = 10;
  bool eval_initial = false;
  std::optional<double> target_accuracy;
  /// The uplink seam (compression, error feedback, wire dtypes,
  /// byte-derived link timing) — same options as fl::TrainerOptions::comm.
  comm::ChannelOptions comm;
  /// Crash / straggler / lossy-uplink injection. Corruption faults are not
  /// supported by this engine (no server-side defense layer here); enabling
  /// them is a configuration error.
  fl::FaultModel faults;
  bool parallel = true;

  /// Always-on validation (util/error.h), called by run_proxskip_vr.
  void validate() const;
};

/// Runs ProxSkip-VR and returns a trace in the same schema as fl::Trainer.
///
/// Metrics are evaluated at the virtual weighted average
/// x̄_t = Σ_n (D_n/D) x_n^t — the iterate ProxSkip's analysis tracks —
/// which coincides with the broadcast server model at every communication
/// round. final_parameters is x̄_T. RoundMetrics::round counts ProxSkip
/// iterations (not communication rounds); uplink_bytes / downlink_bytes
/// grow only on communication iterations.
///
/// Fault semantics: a crashed device skips its local step (its x_n, h_n
/// stay put) and is excluded from the average; an uplink-exhausted device
/// keeps its local step but its proposal is lost (survivor weights are
/// renormalized); the downlink broadcast is reliable — every device,
/// including crashed ones, adopts the new consensus and updates h_n, which
/// keeps the shared delta-compression anchor consistent across the fleet.
/// A communication round with zero survivors degrades to a skip round
/// (uplink attempts are still charged).
[[nodiscard]] fl::TrainingTrace run_proxskip_vr(
    std::shared_ptr<const nn::Model> model, const data::FederatedDataset& fed,
    const ProxSkipVROptions& options, const std::string& name = "proxskip_vr",
    std::optional<std::vector<double>> w0 = std::nullopt);

}  // namespace fedvr::core
