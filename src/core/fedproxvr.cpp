#include "core/fedproxvr.h"

#include "util/log.h"

namespace fedvr::core {

fl::TrainingTrace run_federated(std::shared_ptr<const nn::Model> model,
                                const data::FederatedDataset& fed,
                                const AlgorithmSpec& spec,
                                const fl::TrainerOptions& trainer_options,
                                std::optional<std::vector<double>> w0) {
  fl::Trainer trainer(model, fed, trainer_options);
  const opt::LocalSolver solver = make_solver(model, spec);
  return trainer.run(solver, spec.name, std::move(w0));
}

std::vector<fl::TrainingTrace> compare_algorithms(
    std::shared_ptr<const nn::Model> model, const data::FederatedDataset& fed,
    std::span<const AlgorithmSpec> specs,
    const fl::TrainerOptions& trainer_options) {
  fl::Trainer trainer(model, fed, trainer_options);
  // Shared initialization: every algorithm starts from the same w̄^(0).
  util::Rng init_rng =
      util::fork(trainer_options.seed, 0, 0, util::stream::kInit);
  const std::vector<double> w0 = model->initial_parameters(init_rng);

  std::vector<fl::TrainingTrace> traces;
  traces.reserve(specs.size());
  for (const auto& spec : specs) {
    FEDVR_LOG_INFO << "running " << spec.name << " for "
                   << trainer_options.rounds << " rounds";
    const opt::LocalSolver solver = make_solver(model, spec);
    traces.push_back(trainer.run(solver, spec.name, w0));
  }
  return traces;
}

}  // namespace fedvr::core
