// Public facade: run a named federated algorithm end to end.
//
// Quickstart:
//   auto fed   = data::make_synthetic({});                  // devices + data
//   auto model = nn::make_logistic_regression(60, 10);
//   core::HyperParams hp{.beta = 5, .tau = 20, .mu = 0.1};
//   auto trace = core::run_federated(model, fed,
//                                    core::fedproxvr_sarah(hp), {});
//   trace.write_csv("trace.csv");
#pragma once

#include "core/algorithms.h"
#include "fl/trainer.h"

namespace fedvr::core {

/// Runs `spec` for trainer_options.rounds global rounds and returns the
/// trace. Convenience over constructing fl::Trainer + opt::LocalSolver
/// directly (which remains the composable path).
[[nodiscard]] fl::TrainingTrace run_federated(
    std::shared_ptr<const nn::Model> model, const data::FederatedDataset& fed,
    const AlgorithmSpec& spec, const fl::TrainerOptions& trainer_options,
    std::optional<std::vector<double>> w0 = std::nullopt);

/// Runs several specs on the same data from the same initialization (the
/// §5 comparison protocol) and returns one trace per spec.
[[nodiscard]] std::vector<fl::TrainingTrace> compare_algorithms(
    std::shared_ptr<const nn::Model> model, const data::FederatedDataset& fed,
    std::span<const AlgorithmSpec> specs,
    const fl::TrainerOptions& trainer_options);

}  // namespace fedvr::core
