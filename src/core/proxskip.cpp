#include "core/proxskip.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <numeric>

#include "check/check.h"
#include "fl/event_engine.h"
#include "fl/trainer.h"
#include "opt/workspace.h"
#include "tensor/vecops.h"
#include "util/error.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace fedvr::core {

void ProxSkipVROptions::validate() const {
  FEDVR_CHECK_MSG(iterations >= 1, "iterations must be >= 1");
  FEDVR_CHECK_MSG(std::isfinite(step_size) && step_size > 0.0,
                  "step_size must be positive and finite, got " << step_size);
  FEDVR_CHECK_MSG(skip_prob > 0.0 && skip_prob <= 1.0,
                  "skip_prob must be in (0, 1], got " << skip_prob);
  FEDVR_CHECK_MSG(batch_size >= 1, "batch_size must be >= 1");
  FEDVR_CHECK_MSG(eval_every >= 1, "eval_every must be >= 1");
  timing.validate();
  comm.validate();
  FEDVR_CHECK_MSG(!faults.config().corruption_enabled(),
                  "ProxSkip-VR does not model update corruption (no "
                  "server-side defense layer); use fl::Trainer for "
                  "Byzantine experiments");
}

fl::TrainingTrace run_proxskip_vr(std::shared_ptr<const nn::Model> model,
                                  const data::FederatedDataset& fed,
                                  const ProxSkipVROptions& options,
                                  const std::string& name,
                                  std::optional<std::vector<double>> w0) {
  FEDVR_CHECK_MSG(model != nullptr, "model must not be null");
  FEDVR_CHECK_MSG(fed.num_devices() >= 1, "need at least one device");
  options.validate();

  const std::size_t num_devices = fed.num_devices();
  const std::size_t dim = model->num_parameters();
  const double gamma = options.step_size;
  const double p = options.skip_prob;
  const double gamma_over_p = gamma / p;
  const double p_over_gamma = p / gamma;
  const double backoff = options.faults.config().retry_backoff;

  // Evaluation helper: reuse the trainer's pooled-test / global-objective
  // machinery (eq. 2) without running its round loop.
  const fl::Trainer evaluator(model, fed, fl::TrainerOptions{});

  std::vector<double> anchor;  // last broadcast consensus model
  if (w0.has_value()) {
    FEDVR_CHECK_MSG(w0->size() == dim,
                    "w0 has " << w0->size() << " parameters, model needs "
                              << dim);
    anchor = std::move(*w0);
  } else {
    util::Rng init_rng =
        util::fork(options.seed, 0, 0, util::stream::kInit);
    anchor = model->initial_parameters(init_rng);
  }

  // Per-device state in flat num_devices×dim slabs: one allocation each for
  // the whole run instead of num_devices heap vectors per array, and
  // device n's view is a subspan. Each view is touched only from its own
  // device's parallel_for index (determinism contract). ProxSkip-VR is a
  // full-participation algorithm — every device holds a live iterate and
  // control variate between rounds — so O(N·dim) state is inherent here;
  // the sampled O(m·dim) engine is fl::Trainer.
  std::vector<double> x_slab(num_devices * dim);  // local iterates
  for (std::size_t n = 0; n < num_devices; ++n) {
    std::copy(anchor.begin(), anchor.end(),
              x_slab.begin() + static_cast<std::ptrdiff_t>(n * dim));
  }
  std::vector<double> h_slab(num_devices * dim, 0.0);  // control variates
  std::vector<double> anchor_grad_slab(num_devices * dim,
                                       0.0);  // ∇F_n(anchor), SVRG
  std::vector<double> uploads_slab(num_devices * dim, 0.0);
  const auto device_view = [dim](std::vector<double>& slab, std::size_t n) {
    return std::span<double>(slab).subspan(n * dim, dim);
  };
  std::vector<std::size_t> realized_uplink(num_devices, 0);
  std::vector<std::size_t> grad_evals(num_devices, 0);  // cumulative
  std::vector<fl::FaultEvent> events(num_devices);

  // Pooled per-iteration solver scratch (batch indices, the two SVRG
  // gradients): leased per device activation, so the inner loop allocates
  // nothing once the pool is warm.
  opt::WorkspacePool ws_pool;

  comm::Channel channel(options.comm, num_devices, dim);
  const bool byte_timing = options.comm.byte_timing;
  fl::TimingModel timing = options.timing;
  if (byte_timing) timing.d_com = channel.link_round_time(options.timing);

  util::ThreadPool& pool = util::ThreadPool::global();
  const bool run_parallel = options.parallel && pool.size() > 1;

  const auto refresh_anchor_gradients = [&](std::size_t n) {
    model->full_gradient(anchor, fed.train[n], device_view(anchor_grad_slab, n));
    grad_evals[n] += fed.train[n].size();
  };
  const auto for_each_device = [&](const std::function<void(std::size_t)>& f) {
    if (run_parallel) {
      pool.parallel_for(0, num_devices, f);
    } else {
      for (std::size_t n = 0; n < num_devices; ++n) f(n);
    }
  };
  for_each_device(refresh_anchor_gradients);

  fl::TrainingTrace trace;
  trace.algorithm = name;

  // Cumulative accounting (trace schema of fl::Trainer).
  double model_time = 0.0;
  std::size_t total_uplink_bytes = 0;
  std::size_t total_downlink_bytes = 0;
  std::size_t total_dropped = 0;
  std::size_t total_undelivered = 0;
  std::size_t total_stragglers = 0;
  std::size_t total_uplink_retries = 0;

  // x̄_t = Σ_n (D_n/D) x_n — the analysis-side average iterate; equals the
  // broadcast model at communication rounds. Serial ascending accumulation.
  std::vector<double> xbar(dim, 0.0);
  const auto virtual_average = [&]() {
    tensor::fill(xbar, 0.0);
    for (std::size_t n = 0; n < num_devices; ++n) {
      tensor::axpy(fed.weight(n), device_view(x_slab, n), xbar);
    }
  };
  const auto record = [&](std::size_t t, double realized_round_time) {
    virtual_average();
    fl::RoundMetrics m;
    m.round = t;
    m.train_loss = evaluator.global_loss(xbar);
    m.test_accuracy = evaluator.test_accuracy(xbar);
    m.model_time = model_time;
    m.uplink_bytes = total_uplink_bytes;
    m.downlink_bytes = total_downlink_bytes;
    m.comm_bytes = total_uplink_bytes + total_downlink_bytes;
    m.sample_grad_evals =
        std::accumulate(grad_evals.begin(), grad_evals.end(), std::size_t{0});
    m.dropped_devices = total_dropped;
    m.undelivered_updates = total_undelivered;
    m.straggler_devices = total_stragglers;
    m.uplink_retries = total_uplink_retries;
    m.realized_round_time = realized_round_time;
    m.param_hash = check::hash_span(xbar);
    trace.rounds.push_back(m);
  };

  bool target_reached = false;
  if (options.eval_initial) {
    record(0, 0.0);
    // Early stop can trigger at round 0: a run whose starting model already
    // meets target_accuracy pays for no iterations at all. (The target
    // check used to live only inside the iteration loop, so such a run
    // still paid a full iteration before stopping.)
    if (options.target_accuracy.has_value() &&
        trace.rounds.back().test_accuracy >= *options.target_accuracy) {
      target_reached = true;
    }
  }

  std::vector<double> x_next(dim, 0.0);
  // Head-round survivor bookkeeping, hoisted so capacity is reused.
  std::vector<double> survivor_weights;
  std::vector<std::size_t> uplinkers;
  survivor_weights.reserve(num_devices);
  uplinkers.reserve(num_devices);
  // The iteration as a discrete-event schedule (fl/event_engine.h): slot n
  // is device n (full participation).
  fl::RoundSchedule schedule;

  for (std::size_t t = 1; t <= options.iterations && !target_reached; ++t) {
    // The shared skip coin: one draw per iteration, device coordinate 0 of
    // the kComm stream (per-device comm streams use coordinates >= 1).
    util::Rng coin_rng = util::fork(options.seed, 0, t, util::stream::kComm);
    const bool communicate = coin_rng.uniform() < p;

    for (std::size_t n = 0; n < num_devices; ++n) {
      events[n] = options.faults.sample(options.seed, n, t);
    }
    std::fill(realized_uplink.begin(), realized_uplink.end(), 0);

    // Build the event schedule before any device runs: completion
    // timestamps are d_cmp·slowdown (tau = 1 local step) plus, on
    // communication rounds, d_com times the retry backoff multiplier. No
    // deadline here — the realized round time is the last non-crashed
    // arrival, and the survivor set is exactly the devices whose proposal
    // reaches the prox step.
    std::vector<fl::ParticipantOutcome>& outcomes =
        schedule.reset(num_devices);
    for (std::size_t n = 0; n < num_devices; ++n) {
      const fl::FaultEvent& e = events[n];
      fl::ParticipantOutcome& oc = outcomes[n];
      oc.device = n;
      if (e.dropped) {
        oc.crashed = true;
        continue;
      }
      double t_n = timing.d_cmp * e.slowdown;
      if (communicate) t_n += timing.d_com * e.com_multiplier(backoff);
      oc.completion_time = t_n;
      oc.undelivered = communicate && e.uplink_failed;
    }
    schedule.build(std::nullopt);

    if (communicate && options.comm.error_feedback) {
      // Serial registration of this round's uplinkers' error-feedback
      // residual slots: the parallel section below must never mutate keyed
      // channel state.
      uplinkers.clear();
      for (std::size_t n = 0; n < num_devices; ++n) {
        if (!events[n].dropped && !events[n].uplink_failed) {
          uplinkers.push_back(n);
        }
      }
      channel.prepare(uplinkers);
    }

    // Local step (Alg. line "x̂ = x − γ(g − h)") on every live device.
    for_each_device([&](std::size_t n) {
      if (events[n].dropped) return;  // crashed: x_n, h_n stay put
      const data::Dataset& ds = fed.train[n];
      const std::size_t batch = std::min(options.batch_size, ds.size());
      util::Rng rng = util::fork(options.seed, n + 1, t,
                                 util::stream::kSampling);
      const opt::WorkspacePool::Lease lease(ws_pool);
      opt::SolverWorkspace& ws = *lease;
      std::vector<std::size_t>& idx = ws.batch;
      // lint:allow(no-alloc-in-hot-loop) no-op once the pooled workspace is warm
      idx.resize(batch);
      for (auto& i : idx) i = rng.below(ds.size());

      // SVRG estimator: ∇f_B(x_n) − ∇f_B(anchor) + ∇F_n(anchor), with the
      // same minibatch at both points (eq. 8b).
      std::vector<double>& g = ws.grad_curr;
      // lint:allow(no-alloc-in-hot-loop) no-op once the pooled workspace is warm
      g.resize(dim);
      std::vector<double>& g_anchor = ws.grad_ref;
      // lint:allow(no-alloc-in-hot-loop) no-op once the pooled workspace is warm
      g_anchor.resize(dim);
      const std::span<double> xn = device_view(x_slab, n);
      const std::span<const double> hn = device_view(h_slab, n);
      const std::span<const double> agn = device_view(anchor_grad_slab, n);
      model->loss_and_gradient(xn, ds, idx, g);
      model->loss_and_gradient(anchor, ds, idx, g_anchor);
      grad_evals[n] += 2 * batch;
      // v = g − g_anchor + anchor_grad; x̂ = x − γ(v − h), written in place.
      for (std::size_t i = 0; i < dim; ++i) {
        const double v = g[i] - g_anchor[i] + agn[i];
        xn[i] -= gamma * (v - hn[i]);
      }

      if (communicate && !events[n].uplink_failed) {
        // Proposal y_n = x̂_n − (γ/p) h_n, uploaded as a delta against the
        // shared anchor so sparsification/quantization compress the small
        // innovation, not the full model.
        const std::span<double> up = device_view(uploads_slab, n);
        for (std::size_t i = 0; i < dim; ++i) {
          up[i] = xn[i] - gamma_over_p * hn[i] - anchor[i];
        }
        util::Rng comm_rng =
            util::fork(options.seed, n + 1, t, util::stream::kComm);
        realized_uplink[n] = channel.uplink(n, up, comm_rng);
      }
    });

    // ---- Serial accounting & (on heads) the consensus prox step. ----
    for (std::size_t n = 0; n < num_devices; ++n) {
      const fl::FaultEvent& e = events[n];
      if (e.dropped) {
        ++total_dropped;
        continue;  // a crash is detected immediately: no time charged
      }
      if (e.straggler) ++total_stragglers;
      if (communicate) {
        total_uplink_retries += e.uplink_retries;
        // Transmitted but lost after the retry budget: undelivered, not
        // "dropped" — dropped counts crashes only (CSV schema v2).
        if (e.uplink_failed) ++total_undelivered;
      }
    }
    // The iteration costs model time until the event queue drains: the last
    // non-crashed arrival's timestamp from the schedule built above.
    const double realized_round_time = schedule.realized_round_time();
    model_time += realized_round_time;

    if (communicate) {
      // Byte accounting: every non-crashed device transmits (lost attempts
      // included, at the a-priori wire size); the broadcast reaches the
      // whole fleet.
      for (std::size_t n = 0; n < num_devices; ++n) {
        if (events[n].dropped) continue;
        const std::size_t per_attempt = realized_uplink[n] > 0
                                            ? realized_uplink[n]
                                            : channel.uplink_wire_bytes();
        total_uplink_bytes += events[n].uplink_attempts() * per_attempt;
      }

      // Survivors straight off the event schedule (slot == device here):
      // not crashed, proposal delivered — ascending device order.
      const std::span<const std::size_t> survivors = schedule.survivors();
      survivor_weights.clear();
      for (const std::size_t n : survivors) {
        survivor_weights.push_back(fed.weight(n));
      }
      // Reduced through the sanctioned helper — bit-identical to the
      // historical inline accumulation.
      const double weight_sum = tensor::sum(survivor_weights);
      if (!survivors.empty()) {
        total_downlink_bytes += num_devices * channel.downlink_wire_bytes();
        // x_{t+1} = anchor + Σ survivors (w_n / Σw) (decoded delta_n),
        // ascending device order (determinism contract).
        tensor::copy(anchor, x_next);
        for (const std::size_t n : survivors) {
          tensor::axpy(fed.weight(n) / weight_sum,
                       device_view(uploads_slab, n), x_next);
        }
        // Reliable downlink: every device adopts the consensus and updates
        // its control variate against its own x̂ (a crashed device's x̂ is
        // its unchanged x_n).
        for_each_device([&](std::size_t n) {
          const std::span<double> hn = device_view(h_slab, n);
          const std::span<double> xn = device_view(x_slab, n);
          for (std::size_t i = 0; i < dim; ++i) {
            hn[i] += p_over_gamma * (x_next[i] - xn[i]);
          }
          tensor::copy(x_next, xn);
        });
        tensor::copy(x_next, anchor);
        // Refresh the SVRG anchor gradients at the new consensus.
        for_each_device(refresh_anchor_gradients);
      }
      // Zero survivors: the round degrades to a skip round — no broadcast,
      // no h update; the uplink attempts above are still charged.
    }

    const bool last = t == options.iterations;
    if (t % options.eval_every == 0 || last) {
      record(t, realized_round_time);
      if (options.target_accuracy.has_value() &&
          trace.rounds.back().test_accuracy >= *options.target_accuracy) {
        target_reached = true;
      }
    }
  }

  virtual_average();
  trace.final_parameters = xbar;
  trace.final_param_hash = check::hash_span(trace.final_parameters);
  return trace;
}

}  // namespace fedvr::core
