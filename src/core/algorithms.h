// The paper's algorithms, expressed as named configurations of the unified
// device-local solver (see opt/local_solver.h):
//
//   FedAvg            = SGD estimator,  mu = 0        (McMahan et al. [20])
//   FedProx           = SGD estimator,  mu > 0        (Li et al. [16])
//   FedProxVR (SVRG)  = SVRG estimator, mu > 0        (this paper, eq. 8b)
//   FedProxVR (SARAH) = SARAH estimator, mu > 0       (this paper, eq. 8a)
//   FedGD             = full-gradient,  mu = 0        (Wang et al. [31])
//
// The FedProxVR step size is parametrized as eta = 1/(beta L) (§4.2); the
// same parametrization is applied to every baseline so comparisons share
// beta, tau, and batch size, as in §5 ("all algorithms use the same
// parameters beta, tau, N, T").
#pragma once

#include <string>

#include "opt/local_solver.h"

namespace fedvr::core {

/// A named algorithm: a display name plus fully-resolved solver options.
struct AlgorithmSpec {
  std::string name;
  opt::LocalSolverOptions options;
};

/// Shared hyperparameters for building comparable specs.
struct HyperParams {
  double beta = 5.0;         // step-size parameter: eta = 1/(beta L)
  double smoothness_L = 1.0; // L estimate for the task
  std::size_t tau = 20;      // local iterations
  double mu = 0.1;           // proximal penalty (ignored where mu = 0)
  std::size_t batch_size = 32;
  opt::IterateSelection selection = opt::IterateSelection::kLast;
  bool diagnostics = false;

  [[nodiscard]] double eta() const;
};

[[nodiscard]] AlgorithmSpec fedavg(const HyperParams& hp);
[[nodiscard]] AlgorithmSpec fedprox(const HyperParams& hp);
[[nodiscard]] AlgorithmSpec fedproxvr_svrg(const HyperParams& hp);
[[nodiscard]] AlgorithmSpec fedproxvr_sarah(const HyperParams& hp);
[[nodiscard]] AlgorithmSpec fedgd(const HyperParams& hp);

/// Builds the solver for a spec.
[[nodiscard]] opt::LocalSolver make_solver(
    std::shared_ptr<const nn::Model> model, const AlgorithmSpec& spec);

}  // namespace fedvr::core
