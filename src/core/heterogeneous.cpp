#include "core/heterogeneous.h"

#include <cmath>

#include "util/error.h"

namespace fedvr::core {

std::vector<opt::LocalSolver> make_heterogeneous_solvers(
    std::shared_ptr<const nn::Model> model, const AlgorithmSpec& spec,
    double beta, std::span<const double> smoothness_per_device) {
  FEDVR_CHECK_MSG(beta > 0.0, "beta must be positive");
  FEDVR_CHECK(!smoothness_per_device.empty());
  std::vector<opt::LocalSolver> solvers;
  solvers.reserve(smoothness_per_device.size());
  for (double L_n : smoothness_per_device) {
    FEDVR_CHECK_MSG(L_n > 0.0,
                    "per-device smoothness must be positive, got " << L_n);
    auto options = spec.options;
    options.eta = 1.0 / (beta * L_n);
    solvers.emplace_back(model, options);
  }
  return solvers;
}

fl::TrainingTrace run_federated_heterogeneous(
    std::shared_ptr<const nn::Model> model, const data::FederatedDataset& fed,
    const AlgorithmSpec& spec, double beta,
    std::span<const double> smoothness_per_device,
    const fl::TrainerOptions& trainer_options) {
  FEDVR_CHECK_MSG(smoothness_per_device.size() == fed.num_devices(),
                  "need one smoothness constant per device");
  const auto solvers =
      make_heterogeneous_solvers(model, spec, beta, smoothness_per_device);
  fl::Trainer trainer(std::move(model), fed, trainer_options);
  return trainer.run(solvers, spec.name);
}

HyperParams plan_hyperparams(double gamma,
                             const theory::ProblemConstants& pc,
                             std::size_t batch_size) {
  const auto optimum = theory::optimize_parameters(gamma, pc);
  FEDVR_CHECK_MSG(optimum.has_value(),
                  "no feasible FedProxVR parameters for gamma = " << gamma);
  HyperParams hp;
  hp.beta = optimum->beta;
  hp.smoothness_L = pc.L;
  hp.tau = static_cast<std::size_t>(std::llround(optimum->tau));
  hp.mu = optimum->mu;
  hp.batch_size = batch_size;
  return hp;
}

}  // namespace fedvr::core
