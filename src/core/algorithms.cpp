#include "core/algorithms.h"

#include "util/error.h"

namespace fedvr::core {

double HyperParams::eta() const {
  FEDVR_CHECK_MSG(beta > 0.0 && smoothness_L > 0.0,
                  "beta and L must be positive (beta=" << beta << ", L="
                                                       << smoothness_L << ")");
  return 1.0 / (beta * smoothness_L);
}

namespace {
opt::LocalSolverOptions base_options(const HyperParams& hp) {
  opt::LocalSolverOptions o;
  o.tau = hp.tau;
  o.eta = hp.eta();
  o.batch_size = hp.batch_size;
  o.selection = hp.selection;
  o.compute_diagnostics = hp.diagnostics;
  return o;
}
}  // namespace

AlgorithmSpec fedavg(const HyperParams& hp) {
  auto o = base_options(hp);
  o.estimator = opt::Estimator::kSgd;
  o.mu = 0.0;
  return {"FedAvg", o};
}

AlgorithmSpec fedprox(const HyperParams& hp) {
  auto o = base_options(hp);
  o.estimator = opt::Estimator::kSgd;
  o.mu = hp.mu;
  return {"FedProx", o};
}

AlgorithmSpec fedproxvr_svrg(const HyperParams& hp) {
  auto o = base_options(hp);
  o.estimator = opt::Estimator::kSvrg;
  o.mu = hp.mu;
  return {"FedProxVR(SVRG)", o};
}

AlgorithmSpec fedproxvr_sarah(const HyperParams& hp) {
  auto o = base_options(hp);
  o.estimator = opt::Estimator::kSarah;
  o.mu = hp.mu;
  return {"FedProxVR(SARAH)", o};
}

AlgorithmSpec fedgd(const HyperParams& hp) {
  auto o = base_options(hp);
  o.estimator = opt::Estimator::kFullGradient;
  o.mu = 0.0;
  return {"FedGD", o};
}

opt::LocalSolver make_solver(std::shared_ptr<const nn::Model> model,
                             const AlgorithmSpec& spec) {
  return opt::LocalSolver(std::move(model), spec.options);
}

}  // namespace fedvr::core
