#include "theory/param_opt.h"

#include <cmath>
#include <limits>
#include <span>

#include "util/error.h"

namespace fedvr::theory {

std::optional<double> training_time_objective(double beta, double mu,
                                              double gamma,
                                              const ProblemConstants& pc) {
  FEDVR_CHECK(gamma > 0.0);
  if (beta <= 3.0) return std::nullopt;
  if (mu_tilde(mu, pc.lambda) <= 0.0) return std::nullopt;
  const double theta_sq = theta_squared_sarah(beta, mu, pc);
  if (!(theta_sq > 0.0) || theta_sq >= 1.0) return std::nullopt;
  const double theta = std::sqrt(theta_sq);
  const double Theta = federated_factor(theta, mu, pc);
  if (Theta <= 0.0) return std::nullopt;
  const double tau = tau_upper_sarah(beta);
  return (1.0 + gamma * tau) / Theta;
}

namespace {

OptimalParams fill_params(double beta, double mu, double gamma,
                          const ProblemConstants& pc) {
  OptimalParams p;
  p.beta = beta;
  p.mu = mu;
  p.tau = tau_upper_sarah(beta);
  p.theta = std::sqrt(theta_squared_sarah(beta, mu, pc));
  p.Theta = federated_factor(p.theta, mu, pc);
  p.objective = (1.0 + gamma * p.tau) / p.Theta;
  return p;
}

// Log-spaced grid over [lo, hi].
std::vector<double> log_grid(double lo, double hi, std::size_t n) {
  std::vector<double> xs(n);
  const double llo = std::log(lo);
  const double lhi = std::log(hi);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = n == 1 ? 0.0
                            : static_cast<double>(i) /
                                  static_cast<double>(n - 1);
    xs[i] = std::exp(llo + t * (lhi - llo));
  }
  return xs;
}

}  // namespace

std::optional<OptimalParams> optimize_parameters(double gamma,
                                                 const ProblemConstants& pc,
                                                 const ParamOptOptions& opt) {
  FEDVR_CHECK(opt.grid >= 2);
  // Coarse scan. beta is shifted-log-spaced above 3; mu log-spaced above
  // lambda.
  double best = std::numeric_limits<double>::infinity();
  double best_beta = 0.0, best_mu = 0.0;
  const auto beta_offsets =
      log_grid(opt.beta_lo - 3.0, opt.beta_hi - 3.0, opt.grid);
  const double mu_lo = pc.lambda > 0.0 ? pc.lambda * (1.0 + 1e-6) : 1e-6;
  const auto mus = log_grid(mu_lo, std::max(mu_lo * 2.0,
                                            pc.lambda * opt.mu_hi_factor +
                                                1.0),
                            opt.grid);
  for (double boff : beta_offsets) {
    const double beta = 3.0 + boff;
    for (double mu : mus) {
      const auto obj = training_time_objective(beta, mu, gamma, pc);
      if (obj && *obj < best) {
        best = *obj;
        best_beta = beta;
        best_mu = mu;
      }
    }
  }
  if (!std::isfinite(best)) return std::nullopt;

  // Coordinate refinement: shrink a bracket around the incumbent with
  // golden-section-style probes on each axis in turn.
  double beta = best_beta, mu = best_mu;
  double beta_radius = 0.5 * (best_beta - 3.0);
  double mu_radius = 0.5 * (best_mu - pc.lambda);
  for (std::size_t round = 0; round < opt.refine_rounds; ++round) {
    for (int axis = 0; axis < 2; ++axis) {
      const double center = axis == 0 ? beta : mu;
      const double radius = axis == 0 ? beta_radius : mu_radius;
      for (double t : {-1.0, -0.5, 0.5, 1.0}) {
        const double candidate = center + t * radius;
        const double cand_beta = axis == 0 ? candidate : beta;
        const double cand_mu = axis == 0 ? mu : candidate;
        const auto obj =
            training_time_objective(cand_beta, cand_mu, gamma, pc);
        if (obj && *obj < best) {
          best = *obj;
          beta = cand_beta;
          mu = cand_mu;
        }
      }
    }
    beta_radius *= 0.7;
    mu_radius *= 0.7;
  }
  return fill_params(beta, mu, gamma, pc);
}

std::vector<std::pair<double, OptimalParams>> sweep_gamma(
    std::span<const double> gammas, const ProblemConstants& pc,
    const ParamOptOptions& opt) {
  std::vector<std::pair<double, OptimalParams>> out;
  out.reserve(gammas.size());
  for (double gamma : gammas) {
    const auto p = optimize_parameters(gamma, pc, opt);
    FEDVR_CHECK_MSG(p.has_value(),
                    "no feasible FedProxVR parameters for gamma = " << gamma);
    out.emplace_back(gamma, *p);
  }
  return out;
}

}  // namespace fedvr::theory
