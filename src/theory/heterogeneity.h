// Empirical estimation of the paper's sigma_n-divergence (Assumption 1,
// eq. 5):  ||grad F_n(w) - grad F̄(w)|| <= sigma_n ||grad F̄(w)||.
//
// For each probe point w we measure the ratio per device and keep the
// worst case over probes (the assumption must hold for all w; a handful of
// random probes plus the initialization give a usable lower estimate).
// The aggregate sigma-bar^2 = sum_n (D_n/D) sigma_n^2 feeds Theorem 1's
// federated factor and the §4.3 parameter optimizer.
#pragma once

#include <vector>

#include "data/dataset.h"
#include "nn/model.h"
#include "util/rng.h"

namespace fedvr::theory {

struct HeterogeneityEstimate {
  std::vector<double> sigma_n;  // per-device divergence estimates
  double sigma_bar_sq = 0.0;    // D_n/D-weighted mean of sigma_n^2
};

struct HeterogeneityOptions {
  std::size_t probes = 4;        // random probe points beyond the init
  double probe_scale = 1.0;      // stddev of the random probe offsets
  double min_global_norm = 1e-9; // skip probes with a vanishing ||grad F̄||
};

/// Estimates sigma_n for every device and the weighted sigma-bar^2.
/// Probes are w0 (a fresh initialization from `rng`) plus `probes` random
/// perturbations of it.
[[nodiscard]] HeterogeneityEstimate estimate_heterogeneity(
    const nn::Model& model, const data::FederatedDataset& fed,
    util::Rng& rng, const HeterogeneityOptions& opt = {});

}  // namespace fedvr::theory
