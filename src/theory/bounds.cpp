#include "theory/bounds.h"

#include <cmath>

#include "util/error.h"

namespace fedvr::theory {

double mu_tilde(double mu, double lambda) { return mu - lambda; }

double tau_lower_bound(double beta, double mu, double theta,
                       const ProblemConstants& pc) {
  FEDVR_CHECK_MSG(beta > 3.0, "tau_lower_bound requires beta > 3, got "
                                  << beta);
  const double mt = mu_tilde(mu, pc.lambda);
  FEDVR_CHECK_MSG(mt > 0.0,
                  "requires mu_tilde = mu - lambda > 0 (mu=" << mu
                      << ", lambda=" << pc.lambda << ")");
  FEDVR_CHECK_MSG(theta > 0.0 && theta <= 1.0,
                  "theta must be in (0, 1], got " << theta);
  const double numerator =
      3.0 * (beta * beta * pc.L * pc.L + mu * mu);
  const double denominator = theta * theta * mt * pc.L * (beta - 3.0);
  return numerator / denominator;
}

double tau_upper_sarah(double beta) {
  return (5.0 * beta * beta - 4.0 * beta) / 8.0;
}

double svrg_a_min(double tau) {
  FEDVR_CHECK(tau >= 0.0);
  // a - 4 = 4 sqrt(a(tau+1)); substituting s = sqrt(a):
  // s^2 - 4 s sqrt(tau+1) - 4 = 0  =>  s = 2 sqrt(tau+1) + 2 sqrt(tau+2).
  const double s = 2.0 * (std::sqrt(tau + 1.0) + std::sqrt(tau + 2.0));
  return s * s;
}

std::optional<double> tau_upper_svrg(double beta) {
  // tau <= (5 b^2 - 4 b)/(8 a_min(tau)) - 2. The right side decreases in
  // tau while the left increases, so scan upward for the largest feasible
  // integer tau (the crossing is unique).
  const double budget = 5.0 * beta * beta - 4.0 * beta;
  if (budget <= 0.0) return std::nullopt;
  auto feasible = [&](double tau) {
    return tau <= budget / (8.0 * svrg_a_min(tau)) - 2.0;
  };
  if (!feasible(0.0)) return std::nullopt;
  // Exponential then binary search on integer tau.
  double lo = 0.0, hi = 1.0;
  while (feasible(hi)) {
    lo = hi;
    hi *= 2.0;
    if (hi > 1e12) return hi;  // effectively unbounded; clamp defensively
  }
  while (hi - lo > 1.0) {
    const double mid = std::floor((lo + hi) / 2.0);
    if (feasible(mid)) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

double theta_squared_sarah(double beta, double mu,
                           const ProblemConstants& pc) {
  FEDVR_CHECK_MSG(beta > 3.0, "theta_squared_sarah requires beta > 3");
  const double mt = mu_tilde(mu, pc.lambda);
  FEDVR_CHECK_MSG(mt > 0.0, "requires mu - lambda > 0");
  const double numerator = 24.0 * (beta * beta * pc.L * pc.L + mu * mu);
  const double denominator =
      mt * pc.L * (5.0 * beta * beta - 4.0 * beta) * (beta - 3.0);
  return numerator / denominator;
}

std::optional<double> beta_min_sarah(double theta, double mu,
                                     const ProblemConstants& pc,
                                     double beta_max) {
  FEDVR_CHECK(theta > 0.0 && theta <= 1.0);
  // Eq. (15): find beta > 3 where lower(beta) == upper(beta). Equivalently
  // theta_squared_sarah(beta) == theta^2; theta_squared_sarah decreases in
  // beta (for beta > 3 it behaves like 1/beta), so bisection applies.
  const double target = theta * theta;
  auto gap = [&](double beta) {
    return theta_squared_sarah(beta, mu, pc) - target;
  };
  double lo = 3.0 + 1e-9;
  if (gap(lo) < 0.0) return lo;  // already feasible at beta -> 3+
  double hi = 4.0;
  while (gap(hi) > 0.0) {
    hi *= 2.0;
    if (hi > beta_max) return std::nullopt;
  }
  for (int it = 0; it < 200; ++it) {
    const double mid = 0.5 * (lo + hi);
    if (gap(mid) > 0.0) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return hi;
}

double federated_factor(double theta, double mu, const ProblemConstants& pc) {
  FEDVR_CHECK_MSG(mu > 0.0, "federated factor needs mu > 0");
  const double mt = mu_tilde(mu, pc.lambda);
  FEDVR_CHECK_MSG(mt > 0.0, "federated factor needs mu - lambda > 0");
  const double one_plus_sigma = 1.0 + pc.sigma_bar_sq;
  const double one_plus_theta_sq = 1.0 + theta * theta;
  const double term1 = theta * std::sqrt(2.0 * one_plus_sigma);
  const double term2 =
      (2.0 * pc.L / mt) * std::sqrt(one_plus_theta_sq * one_plus_sigma);
  const double term3 =
      (2.0 * pc.L * mu / (mt * mt)) * one_plus_theta_sq * one_plus_sigma;
  return (1.0 - term1 - term2 - term3) / mu;
}

double global_rounds_needed(double initial_gap, double Theta,
                            double epsilon) {
  FEDVR_CHECK_MSG(Theta > 0.0,
                  "convergence requires Theta > 0, got " << Theta);
  FEDVR_CHECK(epsilon > 0.0 && initial_gap >= 0.0);
  return initial_gap / (Theta * epsilon);
}

}  // namespace fedvr::theory
