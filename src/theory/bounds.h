// The paper's convergence theory as executable formulas.
//
// Lemma 1 (local convergence): device n reaches the theta-accurate solution
// of the surrogate problem (eq. 11) if beta (step-size parameter, eta =
// 1/(beta L)) and tau (local iterations) satisfy
//   SARAH:  tau_lower(beta) <= tau <= (5 beta^2 - 4 beta)/8          (13)
//   SVRG:   tau_lower(beta) <= tau <= (5 beta^2 - 4 beta)/(8a) - 2   (14)
//           with a > 0 such that a - 4 >= 4 sqrt(a (tau+1))
// where tau_lower = 3(beta^2 L^2 + mu^2) / (theta^2 mu_tilde L (beta - 3))
// and mu_tilde = mu - lambda > 0.
//
// Theorem 1 (global convergence): (1/T) sum_s E||grad F̄(w̄^(s))||^2 <=
// Delta / (Theta T) with the federated factor Theta given below.
#pragma once

#include <cstddef>
#include <optional>

namespace fedvr::theory {

/// Problem constants shared by the formulas: L-smoothness, the bounded
/// non-convexity parameter lambda (F_n is (-lambda)-strongly convex), and
/// the data-heterogeneity sigma-bar squared.
struct ProblemConstants {
  double L = 1.0;
  double lambda = 0.5;
  double sigma_bar_sq = 0.2;
};

/// mu_tilde = mu - lambda; the surrogate J_n is mu_tilde-strongly convex.
[[nodiscard]] double mu_tilde(double mu, double lambda);

/// Lower bound on tau (both variants share it; eq. 13/14 left side).
/// Requires beta > 3, mu_tilde > 0, theta in (0, 1].
[[nodiscard]] double tau_lower_bound(double beta, double mu, double theta,
                                     const ProblemConstants& pc);

/// SARAH upper bound (eq. 13 right side): (5 beta^2 - 4 beta) / 8.
[[nodiscard]] double tau_upper_sarah(double beta);

/// Smallest valid Young parameter a for SVRG at a given tau: the equality
/// case of a - 4 = 4 sqrt(a (tau+1)), i.e. a = (2 sqrt(tau+1) + 2
/// sqrt(tau+2))^2.
[[nodiscard]] double svrg_a_min(double tau);

/// SVRG upper bound (eq. 14 right side) maximized over valid a: the largest
/// integer tau with tau <= (5 beta^2 - 4 beta) / (8 a_min(tau)) - 2, or
/// nullopt when no tau >= 0 is feasible.
[[nodiscard]] std::optional<double> tau_upper_svrg(double beta);

/// theta^2 implied by running tau at the SARAH upper bound (eq. 22):
///   theta^2 = 24 (beta^2 L^2 + mu^2) / (mu_tilde L (5 beta^2 - 4 beta)(beta - 3)).
/// Requires beta > 3 and mu_tilde > 0.
[[nodiscard]] double theta_squared_sarah(double beta, double mu,
                                         const ProblemConstants& pc);

/// Smallest beta > 3 satisfying eq. (15) (SARAH lower == upper bound) for a
/// target theta; nullopt if no beta <= beta_max works.
[[nodiscard]] std::optional<double> beta_min_sarah(
    double theta, double mu, const ProblemConstants& pc,
    double beta_max = 1e6);

/// The federated factor Theta of Theorem 1. Returns the signed value; the
/// algorithm requires it to be positive.
[[nodiscard]] double federated_factor(double theta, double mu,
                                      const ProblemConstants& pc);

/// Corollary 1 (eq. 18): global iterations to an epsilon-accurate solution.
[[nodiscard]] double global_rounds_needed(double initial_gap, double Theta,
                                          double epsilon);

}  // namespace fedvr::theory
