// Empirical estimation of the smoothness constant L.
//
// Fig. 1's caption notes L "can be estimated by sampling [a] real-world
// dataset". We estimate the largest Hessian eigenvalue of the empirical
// loss by power iteration on finite-difference Hessian-vector products:
//   H v ≈ (grad F(w + eps v) - grad F(w - eps v)) / (2 eps).
// Works for any Model (convex or not); for the non-convex CNN it returns a
// local curvature estimate at w, which is what step-size selection needs.
#pragma once

#include <memory>

#include "data/dataset.h"
#include "nn/model.h"
#include "util/rng.h"

namespace fedvr::theory {

struct SmoothnessOptions {
  std::size_t power_iterations = 25;
  double fd_epsilon = 1e-4;
  std::size_t max_samples = 512;  // subsample large datasets for speed
};

/// Estimates L = lambda_max(Hessian of the mean loss) at parameters `w`.
[[nodiscard]] double estimate_smoothness(const nn::Model& model,
                                         const data::Dataset& ds,
                                         std::span<const double> w,
                                         util::Rng& rng,
                                         const SmoothnessOptions& opt = {});

}  // namespace fedvr::theory
