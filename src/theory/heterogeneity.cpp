#include "theory/heterogeneity.h"

#include <algorithm>
#include <cmath>

#include "tensor/vecops.h"
#include "util/error.h"

namespace fedvr::theory {

HeterogeneityEstimate estimate_heterogeneity(
    const nn::Model& model, const data::FederatedDataset& fed,
    util::Rng& rng, const HeterogeneityOptions& opt) {
  FEDVR_CHECK(fed.num_devices() > 0);
  const std::size_t dim = model.num_parameters();
  const std::size_t devices = fed.num_devices();

  HeterogeneityEstimate est;
  est.sigma_n.assign(devices, 0.0);

  std::vector<double> w(dim);
  model.initialize(rng, w);
  std::vector<double> probe = w;
  std::vector<double> global_grad(dim);
  std::vector<double> local_grad(dim);
  std::vector<std::vector<double>> device_grads(devices,
                                                std::vector<double>(dim));

  for (std::size_t p = 0; p <= opt.probes; ++p) {
    if (p > 0) {
      for (std::size_t i = 0; i < dim; ++i) {
        probe[i] = w[i] + rng.normal(0.0, opt.probe_scale);
      }
    } else {
      probe = w;
    }
    // grad F̄ = sum_n (D_n/D) grad F_n, reusing the per-device gradients.
    tensor::fill(global_grad, 0.0);
    for (std::size_t n = 0; n < devices; ++n) {
      (void)model.full_gradient(probe, fed.train[n], device_grads[n]);
      tensor::axpy(fed.weight(n), device_grads[n], global_grad);
    }
    const double global_norm = tensor::nrm2(global_grad);
    if (global_norm < opt.min_global_norm) continue;
    for (std::size_t n = 0; n < devices; ++n) {
      tensor::sub(device_grads[n], global_grad, local_grad);
      const double ratio = tensor::nrm2(local_grad) / global_norm;
      est.sigma_n[n] = std::max(est.sigma_n[n], ratio);
    }
  }

  est.sigma_bar_sq = 0.0;
  for (std::size_t n = 0; n < devices; ++n) {
    est.sigma_bar_sq += fed.weight(n) * est.sigma_n[n] * est.sigma_n[n];
  }
  return est;
}

}  // namespace fedvr::theory
