// Training-time minimization (§4.3, problems 20-24).
//
// Minimize over (beta, mu):
//     f(beta, mu) = (1/Theta) * (1 + gamma * (5 beta^2 - 4 beta)/8)
// subject to beta > 3 and Theta > 0, where theta is eliminated via eq. (22)
// (tau is run at its SARAH upper bound). The problem is non-convex but
// 2-dimensional, so a dense log-grid scan followed by coordinate refinement
// finds the global optimum — exactly the "numerical methods" the paper uses
// for Fig. 1.
#pragma once

#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "theory/bounds.h"

namespace fedvr::theory {

struct OptimalParams {
  double beta = 0.0;
  double mu = 0.0;
  double tau = 0.0;       // (5 beta^2 - 4 beta)/8, eq. (16)
  double theta = 0.0;     // from eq. (22)
  double Theta = 0.0;     // federated factor at the optimum
  double objective = 0.0; // (1/Theta)(1 + gamma tau)
};

struct ParamOptOptions {
  double beta_lo = 3.0 + 1e-6;
  double beta_hi = 400.0;
  double mu_hi_factor = 400.0;  // mu scanned in (lambda, lambda*factor]
  std::size_t grid = 160;       // points per axis in the coarse scan
  std::size_t refine_rounds = 40;
};

/// Objective value at (beta, mu), or nullopt when the point is infeasible
/// (beta <= 3, mu <= lambda, theta not in (0,1), or Theta <= 0).
[[nodiscard]] std::optional<double> training_time_objective(
    double beta, double mu, double gamma, const ProblemConstants& pc);

/// Global numerical optimum of problem (23)-(24) for a given gamma.
/// Returns nullopt only if no feasible point exists in the search box.
[[nodiscard]] std::optional<OptimalParams> optimize_parameters(
    double gamma, const ProblemConstants& pc, const ParamOptOptions& opt = {});

/// Fig. 1 sweep: optimal parameters for each gamma in `gammas`.
[[nodiscard]] std::vector<std::pair<double, OptimalParams>> sweep_gamma(
    std::span<const double> gammas, const ProblemConstants& pc,
    const ParamOptOptions& opt = {});

}  // namespace fedvr::theory
