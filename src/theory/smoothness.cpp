#include "theory/smoothness.h"

#include <cmath>

#include "tensor/vecops.h"
#include "util/error.h"

namespace fedvr::theory {

double estimate_smoothness(const nn::Model& model, const data::Dataset& ds,
                           std::span<const double> w, util::Rng& rng,
                           const SmoothnessOptions& opt) {
  FEDVR_CHECK(!ds.empty());
  FEDVR_CHECK(w.size() == model.num_parameters());
  FEDVR_CHECK(opt.power_iterations >= 1 && opt.fd_epsilon > 0.0);

  // Subsample indices once (uniform without replacement) when the dataset
  // is large; curvature concentrates quickly.
  std::vector<std::size_t> idx;
  if (ds.size() > opt.max_samples) {
    idx = rng.sample_without_replacement(ds.size(), opt.max_samples);
  } else {
    idx = nn::all_indices(ds.size());
  }

  const std::size_t dim = w.size();
  std::vector<double> v(dim);
  for (auto& x : v) x = rng.normal();
  const double v0_norm = tensor::nrm2(v);
  FEDVR_CHECK(v0_norm > 0.0);
  tensor::scal(1.0 / v0_norm, v);

  std::vector<double> probe(dim);
  std::vector<double> grad_plus(dim);
  std::vector<double> grad_minus(dim);
  std::vector<double> hv(dim);
  double eigenvalue = 0.0;
  for (std::size_t it = 0; it < opt.power_iterations; ++it) {
    // hv = (grad(w + eps v) - grad(w - eps v)) / (2 eps)
    tensor::copy(w, probe);
    tensor::axpy(opt.fd_epsilon, v, probe);
    (void)model.loss_and_gradient(probe, ds, idx, grad_plus);
    tensor::copy(w, probe);
    tensor::axpy(-opt.fd_epsilon, v, probe);
    (void)model.loss_and_gradient(probe, ds, idx, grad_minus);
    tensor::sub(grad_plus, grad_minus, hv);
    tensor::scal(1.0 / (2.0 * opt.fd_epsilon), hv);

    const double norm = tensor::nrm2(hv);
    if (norm < 1e-15) return 0.0;  // flat direction; curvature ~ 0
    eigenvalue = tensor::dot(v, hv);  // Rayleigh quotient (||v|| == 1)
    tensor::copy(hv, v);
    tensor::scal(1.0 / norm, v);
  }
  return std::abs(eigenvalue);
}

}  // namespace fedvr::theory
