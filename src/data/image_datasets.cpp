#include "data/image_datasets.h"

#include "data/idx_loader.h"
#include "util/log.h"

namespace fedvr::data {

std::string idx_images_path(const ImageDatasetConfig& config) {
  const std::string base = config.family == ImageFamily::kDigits
                               ? config.data_dir
                               : config.data_dir + "/fashion";
  return base + "/train-images-idx3-ubyte";
}

std::string idx_labels_path(const ImageDatasetConfig& config) {
  const std::string base = config.family == ImageFamily::kDigits
                               ? config.data_dir
                               : config.data_dir + "/fashion";
  return base + "/train-labels-idx1-ubyte";
}

ImageDatasetResult make_federated_images(const ImageDatasetConfig& config) {
  ImageDatasetResult result;
  const std::string images = idx_images_path(config);
  const std::string labels = idx_labels_path(config);
  Dataset pool;
  if (idx_pair_available(images, labels)) {
    FEDVR_LOG_INFO << "loading real IDX dataset from " << images;
    pool = load_idx(images, labels);
    result.used_real_files = true;
  } else {
    FEDVR_LOG_INFO << "real IDX files not found under '" << config.data_dir
                   << "'; generating procedural "
                   << (config.family == ImageFamily::kDigits ? "digit"
                                                             : "fashion")
                   << " images (side=" << config.side
                   << ", pool=" << config.pool_size << ")";
    ProceduralImageConfig pc;
    pc.family = config.family;
    pc.side = config.side;
    pool = make_procedural_pool(pc, config.pool_size, config.seed);
  }
  result.fed = shard_by_label(pool, config.shard);
  return result;
}

}  // namespace fedvr::data
