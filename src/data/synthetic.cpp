#include "data/synthetic.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "tensor/kernels.h"
#include "util/rng.h"

namespace fedvr::data {

std::vector<std::size_t> power_law_sizes(std::size_t num_devices,
                                         std::size_t min_samples,
                                         std::size_t max_samples,
                                         double lognormal_sigma,
                                         std::uint64_t seed) {
  FEDVR_CHECK(num_devices > 0);
  FEDVR_CHECK_MSG(min_samples >= 2,
                  "need >= 2 samples per device for a train/test split");
  FEDVR_CHECK(max_samples >= min_samples);
  util::Rng rng = util::fork(seed, 0, 0, util::stream::kData);
  // Draw lognormal "masses" and map them into [min, max] by rank-preserving
  // rescaling, so a handful of devices get large shards (power-law tail).
  std::vector<double> mass(num_devices);
  double lo = 1e300, hi = -1e300;
  for (auto& m : mass) {
    m = rng.lognormal(0.0, lognormal_sigma);
    lo = std::min(lo, m);
    hi = std::max(hi, m);
  }
  std::vector<std::size_t> sizes(num_devices);
  const double span_in = (hi > lo) ? (hi - lo) : 1.0;
  const double span_out = static_cast<double>(max_samples - min_samples);
  for (std::size_t k = 0; k < num_devices; ++k) {
    const double t = (mass[k] - lo) / span_in;
    sizes[k] = min_samples + static_cast<std::size_t>(std::llround(t * span_out));
  }
  return sizes;
}

Dataset make_synthetic_device(const SyntheticConfig& config,
                              std::size_t device, std::size_t num_samples) {
  const std::size_t d = config.dim;
  const std::size_t c = config.num_classes;
  util::Rng rng =
      util::fork(config.seed, device + 1, 0, util::stream::kData);

  // Device-level latent variables.
  const double u_k = rng.normal(0.0, std::sqrt(std::max(config.alpha, 0.0)));
  const double b_mean = rng.normal(0.0, std::sqrt(std::max(config.beta, 0.0)));
  std::vector<double> v(d);
  for (auto& vj : v) vj = rng.normal(b_mean, 1.0);

  // Device-local ground-truth model.
  std::vector<double> w_true(c * d);
  std::vector<double> b_true(c);
  for (auto& w : w_true) w = rng.normal(u_k, 1.0);
  for (auto& b : b_true) b = rng.normal(u_k, 1.0);

  // Diagonal covariance Sigma_jj = j^{-1.2}.
  std::vector<double> sigma_diag(d);
  for (std::size_t j = 0; j < d; ++j) {
    sigma_diag[j] = std::pow(static_cast<double>(j + 1), -1.2);
  }

  Dataset out(tensor::Shape({d}), num_samples, c);
  std::vector<double> logits(c);
  std::vector<std::size_t> pred(1);
  for (std::size_t i = 0; i < num_samples; ++i) {
    auto x = out.mutable_sample(i);
    for (std::size_t j = 0; j < d; ++j) {
      x[j] = rng.normal(v[j], std::sqrt(sigma_diag[j]));
    }
    tensor::gemv(tensor::Trans::kNo, c, d, 1.0, w_true, x, 0.0, logits);
    for (std::size_t j = 0; j < c; ++j) logits[j] += b_true[j];
    tensor::argmax_rows(1, c, logits, pred);
    out.set_label(i, static_cast<int>(pred[0]));
  }
  return out;
}

FederatedDataset make_synthetic_iid(const SyntheticConfig& config) {
  // One shared pool, carved into power-law shards: exactly the same model
  // and feature distribution everywhere.
  const auto sizes =
      power_law_sizes(config.num_devices, config.min_samples,
                      config.max_samples, config.lognormal_sigma, config.seed);
  std::size_t total = 0;
  for (auto s : sizes) total += s;
  const Dataset pool = make_synthetic_device(config, 0, total);
  FederatedDataset fed;
  fed.train.reserve(config.num_devices);
  fed.test.reserve(config.num_devices);
  std::size_t cursor = 0;
  for (std::size_t k = 0; k < config.num_devices; ++k) {
    std::vector<std::size_t> idx(sizes[k]);
    for (std::size_t i = 0; i < sizes[k]; ++i) idx[i] = cursor + i;
    cursor += sizes[k];
    Dataset local = pool.subset(idx);
    util::Rng split_rng =
        util::fork(config.seed, k + 1, 3, util::stream::kData);
    auto [train, test] = local.split(split_rng, config.train_fraction);
    fed.train.push_back(std::move(train));
    fed.test.push_back(std::move(test));
  }
  return fed;
}

FederatedDataset make_synthetic(const SyntheticConfig& config) {
  const auto sizes =
      power_law_sizes(config.num_devices, config.min_samples,
                      config.max_samples, config.lognormal_sigma, config.seed);
  FederatedDataset fed;
  fed.train.reserve(config.num_devices);
  fed.test.reserve(config.num_devices);
  for (std::size_t k = 0; k < config.num_devices; ++k) {
    Dataset local = make_synthetic_device(config, k, sizes[k]);
    util::Rng split_rng =
        util::fork(config.seed, k + 1, 1, util::stream::kData);
    auto [train, test] = local.split(split_rng, config.train_fraction);
    fed.train.push_back(std::move(train));
    fed.test.push_back(std::move(test));
  }
  return fed;
}

}  // namespace fedvr::data
