#include "data/federated_split.h"

#include <algorithm>
#include <numeric>
#include <vector>

#include "data/synthetic.h"  // power_law_sizes
#include "util/rng.h"

namespace fedvr::data {

std::vector<int> device_label_set(std::size_t device, std::size_t num_classes,
                                  std::size_t labels_per_device) {
  FEDVR_CHECK(labels_per_device >= 1);
  FEDVR_CHECK_MSG(labels_per_device <= num_classes,
                  "cannot assign " << labels_per_device << " labels from "
                                   << num_classes << " classes");
  std::vector<int> labels;
  labels.reserve(labels_per_device);
  // First label cycles through classes; subsequent labels are offset by a
  // device-dependent stride so label *pairs* also vary across devices.
  const std::size_t stride = 1 + device / num_classes;
  std::size_t current = device % num_classes;
  for (std::size_t j = 0; j < labels_per_device; ++j) {
    labels.push_back(static_cast<int>(current));
    current = (current + stride) % num_classes;
    // Avoid duplicates when stride is a multiple of num_classes.
    while (std::find(labels.begin(), labels.end(),
                     static_cast<int>(current)) != labels.end() &&
           labels.size() < labels_per_device) {
      current = (current + 1) % num_classes;
    }
  }
  return labels;
}

FederatedDataset shard_by_label(const Dataset& pool,
                                const LabelShardConfig& config) {
  FEDVR_CHECK(!pool.empty());
  const std::size_t num_classes = pool.num_classes();

  // Per-class index pools, shuffled.
  std::vector<std::vector<std::size_t>> class_pools(num_classes);
  for (std::size_t i = 0; i < pool.size(); ++i) {
    class_pools[static_cast<std::size_t>(pool.label(i))].push_back(i);
  }
  util::Rng shuffle_rng = util::fork(config.seed, 0, 1, util::stream::kData);
  for (auto& p : class_pools) {
    FEDVR_CHECK_MSG(!p.empty(),
                    "pooled dataset is missing a class; cannot shard");
    shuffle_rng.shuffle(std::span<std::size_t>(p));
  }
  std::vector<std::size_t> cursors(num_classes, 0);

  const auto sizes =
      power_law_sizes(config.num_devices, config.min_samples,
                      config.max_samples, config.lognormal_sigma, config.seed);

  FederatedDataset fed;
  fed.train.reserve(config.num_devices);
  fed.test.reserve(config.num_devices);
  for (std::size_t k = 0; k < config.num_devices; ++k) {
    const auto labels =
        device_label_set(k, num_classes, config.labels_per_device);
    // Split the device budget roughly evenly across its labels.
    std::vector<std::size_t> indices;
    indices.reserve(sizes[k]);
    for (std::size_t j = 0; j < labels.size(); ++j) {
      const std::size_t want =
          sizes[k] / labels.size() + (j < sizes[k] % labels.size() ? 1 : 0);
      auto& cls_pool = class_pools[static_cast<std::size_t>(labels[j])];
      auto& cursor = cursors[static_cast<std::size_t>(labels[j])];
      for (std::size_t c = 0; c < want; ++c) {
        indices.push_back(cls_pool[cursor]);
        cursor = (cursor + 1) % cls_pool.size();  // wrap: sampling with reuse
      }
    }
    Dataset local = pool.subset(indices);
    util::Rng split_rng =
        util::fork(config.seed, k + 1, 2, util::stream::kData);
    auto [train, test] = local.split(split_rng, config.train_fraction);
    fed.train.push_back(std::move(train));
    fed.test.push_back(std::move(test));
  }
  return fed;
}

}  // namespace fedvr::data
