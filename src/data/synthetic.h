// Synthetic(alpha, beta): the heterogeneous synthetic dataset of Li et al.
// (FedProx), which the paper's §5 uses to "capture statistical
// heterogeneity".
//
// Per device k:
//   u_k ~ N(0, alpha)                  — controls how much local models differ
//   B_k ~ N(0, beta),  v_k,j ~ N(B_k, 1)   — controls how much local data differ
//   W_k ~ N(u_k, 1)^{classes x dim},  b_k ~ N(u_k, 1)^{classes}
//   x ~ N(v_k, Sigma) with Sigma_jj = j^{-1.2} (diagonal)
//   y = argmax(softmax(W_k x + b_k))
//
// alpha = beta = 0 still yields non-IID data (each device has its own
// model); the paper's "Synthetic" follows this recipe. Device sample counts
// follow a power law (lognormal sizes clipped to a range), matching the
// paper's ranges such as [37, 3277].
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "data/dataset.h"

namespace fedvr::data {

struct SyntheticConfig {
  std::size_t num_devices = 100;
  std::size_t dim = 60;          // feature dimension (FedProx uses 60)
  std::size_t num_classes = 10;  // output classes (FedProx uses 10)
  double alpha = 1.0;            // model heterogeneity
  double beta = 1.0;             // data (feature) heterogeneity
  std::size_t min_samples = 37;   // paper's Synthetic range low end
  std::size_t max_samples = 3277; // paper's Synthetic range high end
  double lognormal_sigma = 1.5;   // spread of the power-law sample sizes
  double train_fraction = 0.75;   // paper: 75% train / 25% test
  std::uint64_t seed = 1;
};

/// Generates the full federated dataset: one (train, test) pair per device.
[[nodiscard]] FederatedDataset make_synthetic(const SyntheticConfig& config);

/// Generates device k's raw (unsplit) local dataset — exposed for tests.
[[nodiscard]] Dataset make_synthetic_device(const SyntheticConfig& config,
                                            std::size_t device,
                                            std::size_t num_samples);

/// IID control federation: every device samples from the *same* global
/// model and feature distribution (u_k, v_k, W_k, b_k shared), so the only
/// cross-device differences are sampling noise and the power-law sizes.
/// Used as the homogeneous baseline in heterogeneity experiments.
[[nodiscard]] FederatedDataset make_synthetic_iid(
    const SyntheticConfig& config);

/// Power-law device sample sizes in [min_samples, max_samples]:
/// lognormal draws rescaled into the range. Deterministic in config.seed.
[[nodiscard]] std::vector<std::size_t> power_law_sizes(
    std::size_t num_devices, std::size_t min_samples, std::size_t max_samples,
    double lognormal_sigma, std::uint64_t seed);

}  // namespace fedvr::data
