// Device-population abstraction for the event-driven round engine.
//
// A `Federation` answers the only questions a round actually asks about the
// fleet: how many devices exist, how big each local shard is (for the D_n/D
// aggregation weights), and "give me device n's training data" — without
// promising that all N shards live in memory at once. Two implementations:
//
//   * InMemoryFederation — borrows a materialized FederatedDataset (the
//     paper-scale path, N ≈ 100). `train(n, ...)` returns the stored shard.
//   * VirtualFederation — the million-device path. Shards are *generated on
//     demand* from a pure function of the device index (in fedvr always a
//     counter-based RNG fork(seed, device, ..., kData) recipe), so the whole
//     population costs O(1) memory and a round touches only the m sampled
//     participants. Identical device index ⇒ bit-identical shard, however
//     devices are scheduled onto threads — the same determinism contract the
//     fault layer already relies on.
//
// weight(n) = D_n / D uses a total cached at construction: the historical
// FederatedDataset::weight recomputed the O(N) total on every call, which is
// quadratic in fleet size over a round of weight lookups.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "data/dataset.h"
#include "data/synthetic.h"

namespace fedvr::data {

class Federation {
 public:
  virtual ~Federation() = default;

  [[nodiscard]] virtual std::size_t num_devices() const = 0;

  /// Device n's local training-set size D_n. Must be O(1) memory and pure
  /// (same n ⇒ same answer), cheap enough to call per weight lookup.
  [[nodiscard]] virtual std::size_t device_train_size(std::size_t n) const = 0;

  /// Device n's training shard. `scratch` is caller-owned storage an
  /// on-demand implementation may materialize into (one per worker thread
  /// keeps the parallel solve path allocation-bounded); an in-memory
  /// implementation ignores it and returns its stored shard. Thread-safe
  /// for concurrent calls with distinct `scratch` objects.
  [[nodiscard]] virtual const Dataset& train(std::size_t n,
                                             Dataset& scratch) const = 0;

  /// The pooled test set global accuracy is reported on.
  [[nodiscard]] virtual const Dataset& pooled_test() const = 0;

  /// True when train() generates shards on demand (so callers can reason
  /// about materialization cost in tests and benches).
  [[nodiscard]] virtual bool materializes_on_demand() const = 0;

  /// Total training samples across the fleet (the paper's D), cached.
  [[nodiscard]] std::size_t total_train_size() const {
    return total_train_size_;
  }

  /// Aggregation weight D_n / D — same arithmetic as the historical
  /// FederatedDataset::weight (a double division of the same two integers),
  /// so traces stay hash-identical.
  [[nodiscard]] double weight(std::size_t n) const {
    return static_cast<double>(device_train_size(n)) /
           static_cast<double>(total_train_size_);
  }

 protected:
  /// Implementations compute the fleet total once at construction.
  void set_total_train_size(std::size_t total) { total_train_size_ = total; }

 private:
  std::size_t total_train_size_ = 0;
};

/// Borrows a fully materialized FederatedDataset; the dataset must outlive
/// the federation (same lifetime contract the Trainer has always had).
class InMemoryFederation final : public Federation {
 public:
  explicit InMemoryFederation(const FederatedDataset& fed);

  [[nodiscard]] std::size_t num_devices() const override {
    return fed_.num_devices();
  }
  [[nodiscard]] std::size_t device_train_size(std::size_t n) const override;
  [[nodiscard]] const Dataset& train(std::size_t n,
                                     Dataset& scratch) const override;
  [[nodiscard]] const Dataset& pooled_test() const override {
    return pooled_test_;
  }
  [[nodiscard]] bool materializes_on_demand() const override { return false; }

 private:
  const FederatedDataset& fed_;
  Dataset pooled_test_;
};

/// Million-device population: shard sizes and contents come from pure
/// per-device functions, so storage is O(1) in the fleet size and only the
/// devices a round actually touches are ever materialized.
class VirtualFederation final : public Federation {
 public:
  /// D_n for device n. Must be pure and > 0 for every device.
  using SizeFn = std::function<std::size_t(std::size_t device)>;
  /// Materializes device n's shard (exactly `num_samples` samples) into
  /// `out`. Must be pure in `device` and safe to call concurrently with
  /// distinct `out` objects.
  using Generator = std::function<void(std::size_t device,
                                       std::size_t num_samples, Dataset& out)>;

  /// Walks `size_fn` once over the fleet to cache the total (O(N) time at
  /// construction, O(1) memory).
  VirtualFederation(std::size_t num_devices, SizeFn size_fn,
                    Generator generator, Dataset pooled_test);

  /// Movable despite the atomic materialization counter (its value
  /// transfers), so factories like make_synthetic_virtual can return by
  /// value straight into a shared_ptr. Not movable while another thread is
  /// concurrently calling train() on the source.
  VirtualFederation(VirtualFederation&& other) noexcept;
  VirtualFederation& operator=(VirtualFederation&&) = delete;

  [[nodiscard]] std::size_t num_devices() const override {
    return num_devices_;
  }
  [[nodiscard]] std::size_t device_train_size(std::size_t n) const override;
  [[nodiscard]] const Dataset& train(std::size_t n,
                                     Dataset& scratch) const override;
  [[nodiscard]] const Dataset& pooled_test() const override {
    return pooled_test_;
  }
  [[nodiscard]] bool materializes_on_demand() const override { return true; }

  /// Number of train() materializations so far — the observable behind the
  /// "a round touches only its m participants" tests.
  [[nodiscard]] std::uint64_t materializations() const {
    return materializations_.load(std::memory_order_relaxed);
  }

 private:
  std::size_t num_devices_;
  SizeFn size_fn_;
  Generator generator_;
  Dataset pooled_test_;
  mutable std::atomic<std::uint64_t> materializations_{0};
};

/// A virtual Synthetic(alpha, beta) federation over config.num_devices
/// devices: shard contents from make_synthetic_device, per-device power-law
/// sizes from an *independent* lognormal draw per device (rank-free — the
/// fleet-wide rescaling of power_law_sizes needs all N draws at once), and
/// a pooled test set generated from the reserved device index
/// config.num_devices. Deterministic in config.seed.
[[nodiscard]] VirtualFederation make_synthetic_virtual(
    const SyntheticConfig& config, std::size_t pooled_test_samples = 256);

}  // namespace fedvr::data
