// Procedural MNIST / Fashion-MNIST substitutes.
//
// The paper evaluates on MNIST and Fashion-MNIST, which cannot be downloaded
// in this offline environment. These generators produce the closest
// synthetic equivalent that exercises the same code paths: 10-class 28x28
// grayscale images with genuine intra-class variation.
//
// Each class is a small vector drawing (line segments, ellipse arcs, filled
// boxes) in a normalized [0,1]^2 canvas: digit glyphs for "mnist", garment
// silhouettes for "fashion". A sample is rendered by pushing the class
// drawing through a random affine transform (shift, rotation, scale, shear),
// stroking with a soft pen, and adding pixel noise — so a linear model
// reaches high-but-not-perfect accuracy and a CNN does better, mirroring the
// real datasets' qualitative behaviour (see DESIGN.md §3).
#pragma once

#include <cstddef>
#include <cstdint>

#include "data/dataset.h"
#include "util/rng.h"

namespace fedvr::data {

enum class ImageFamily { kDigits, kFashion };

struct ProceduralImageConfig {
  ImageFamily family = ImageFamily::kDigits;
  std::size_t side = 28;          // square image side (28 matches MNIST)
  double max_shift = 0.08;        // fraction of canvas
  double max_rotate = 0.20;       // radians (~11.5 degrees)
  double min_scale = 0.85;
  double max_scale = 1.15;
  double max_shear = 0.12;
  double stroke_width = 0.055;    // pen radius as fraction of canvas
  double noise_stddev = 0.06;     // additive Gaussian pixel noise
};

/// Renders one sample of class `label` (0..9) into `pixels`
/// (side*side doubles in [0,1], row-major). Deterministic in `rng`.
void render_procedural_image(const ProceduralImageConfig& config, int label,
                             util::Rng& rng, std::span<double> pixels);

/// Generates a pooled dataset of `n` samples with labels drawn uniformly.
[[nodiscard]] Dataset make_procedural_pool(const ProceduralImageConfig& config,
                                           std::size_t n, std::uint64_t seed);

/// Generates a pooled dataset with exactly `per_class` samples per class
/// (deterministic label sequence; useful for partitioners that shard by
/// label).
[[nodiscard]] Dataset make_procedural_pool_balanced(
    const ProceduralImageConfig& config, std::size_t per_class,
    std::uint64_t seed);

}  // namespace fedvr::data
