// Non-IID federated partitioning of a pooled dataset.
//
// Reproduces the paper's device data protocol (§5): each device's sample
// count follows a power law, and "each device contains only two different
// labels over 10 labels" — the classic label-sharding recipe of McMahan et
// al. / Li et al. Each device's local data is then split 75/25 into local
// train and test sets.
#pragma once

#include <cstdint>

#include "data/dataset.h"

namespace fedvr::data {

struct LabelShardConfig {
  std::size_t num_devices = 100;
  std::size_t labels_per_device = 2;
  std::size_t min_samples = 37;    // per-device total (train + test)
  std::size_t max_samples = 3939;  // paper's MNIST high end is 3939
  double lognormal_sigma = 1.5;
  double train_fraction = 0.75;
  std::uint64_t seed = 1;
};

/// Shards `pool` across devices so each holds only `labels_per_device`
/// distinct classes with power-law sizes.
///
/// Device k's label set is chosen deterministically to cycle through all
/// classes (device k gets labels {k mod C, (k + 1 + k/C) mod C, ...}) so
/// every class is represented across the federation. Samples are drawn from
/// per-class pools shuffled by `seed`; a pool that runs dry wraps around
/// (sampling with reuse), which keeps the partition well-defined for small
/// pools — noted in DESIGN.md.
[[nodiscard]] FederatedDataset shard_by_label(const Dataset& pool,
                                              const LabelShardConfig& config);

/// The label set device k draws from (exposed for tests).
[[nodiscard]] std::vector<int> device_label_set(std::size_t device,
                                                std::size_t num_classes,
                                                std::size_t labels_per_device);

}  // namespace fedvr::data
