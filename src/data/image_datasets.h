// Front door for the paper's image datasets.
//
// Prefers real MNIST / Fashion-MNIST IDX files when they are present in
// `data_dir` (standard file names); otherwise falls back to the procedural
// substitutes (see procedural_images.h and DESIGN.md §3). Either way the
// pooled data is sharded non-IID per the paper's protocol.
#pragma once

#include <cstdint>
#include <string>

#include "data/dataset.h"
#include "data/federated_split.h"
#include "data/procedural_images.h"

namespace fedvr::data {

struct ImageDatasetConfig {
  ImageFamily family = ImageFamily::kDigits;  // kDigits = MNIST-like
  std::string data_dir = "data";  // where real IDX files would live
  std::size_t side = 28;          // image side for the procedural fallback
  std::size_t pool_size = 12000;  // procedural pool size (images)
  LabelShardConfig shard;
  std::uint64_t seed = 1;
};

/// Result of make_federated_images plus provenance for logging.
struct ImageDatasetResult {
  FederatedDataset fed;
  bool used_real_files = false;
};

/// Builds the pooled dataset (real or procedural) and shards it.
[[nodiscard]] ImageDatasetResult make_federated_images(
    const ImageDatasetConfig& config);

/// The standard IDX file names for the family ("train-images-idx3-ubyte",
/// ...), resolved inside config.data_dir (fashion files live in a
/// "fashion" subdirectory, mirroring common layouts).
[[nodiscard]] std::string idx_images_path(const ImageDatasetConfig& config);
[[nodiscard]] std::string idx_labels_path(const ImageDatasetConfig& config);

}  // namespace fedvr::data
