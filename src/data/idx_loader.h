// Loader for the IDX (ubyte) format used by MNIST and Fashion-MNIST.
//
// When the real dataset files (train-images-idx3-ubyte etc.) are placed in a
// directory, mnist.h prefers them over the procedural substitutes; this
// module parses the format. Big-endian header per Yann LeCun's spec:
//   images: magic 0x00000803, count, rows, cols, then count*rows*cols bytes
//   labels: magic 0x00000801, count, then count bytes
#pragma once

#include <cstdint>
#include <string>

#include "data/dataset.h"

namespace fedvr::data {

/// Parses an images + labels IDX file pair into a Dataset with pixel values
/// scaled to [0, 1]. Throws util::Error on malformed files or count
/// mismatch.
[[nodiscard]] Dataset load_idx(const std::string& images_path,
                               const std::string& labels_path,
                               std::size_t num_classes = 10);

/// True if both files exist and start with the correct IDX magics.
[[nodiscard]] bool idx_pair_available(const std::string& images_path,
                                      const std::string& labels_path);

}  // namespace fedvr::data
