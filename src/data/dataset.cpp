#include "data/dataset.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace fedvr::data {

Dataset Dataset::subset(std::span<const std::size_t> indices) const {
  Dataset out(sample_shape_, indices.size(), num_classes_);
  for (std::size_t k = 0; k < indices.size(); ++k) {
    const std::size_t i = indices[k];
    const auto src = sample(i);
    std::copy(src.begin(), src.end(), out.mutable_sample(k).begin());
    out.set_label(k, label(i));
  }
  return out;
}

std::pair<Dataset, Dataset> Dataset::split(util::Rng& rng,
                                           double train_fraction) const {
  FEDVR_CHECK_MSG(train_fraction > 0.0 && train_fraction < 1.0,
                  "train_fraction must be in (0,1), got " << train_fraction);
  std::vector<std::size_t> order(size());
  std::iota(order.begin(), order.end(), 0);
  rng.shuffle(std::span<std::size_t>(order));
  // Ceil so tiny devices keep at least one training sample.
  const auto n_train = static_cast<std::size_t>(
      std::min<double>(static_cast<double>(size()),
                       std::ceil(train_fraction * static_cast<double>(size()))));
  const std::span<const std::size_t> train_idx(order.data(), n_train);
  const std::span<const std::size_t> test_idx(order.data() + n_train,
                                              size() - n_train);
  return {subset(train_idx), subset(test_idx)};
}

void Dataset::append(const Dataset& other) {
  if (other.empty()) return;
  if (empty() && feature_dim() != other.feature_dim()) {
    // Adopt the shape when this dataset was default-constructed.
    FEDVR_CHECK_MSG(labels_.empty() && features_.empty(),
                    "append shape mismatch on non-empty dataset");
    sample_shape_ = other.sample_shape_;
    num_classes_ = other.num_classes_;
  }
  FEDVR_CHECK_MSG(sample_shape_ == other.sample_shape_,
                  "append: sample shape mismatch " << sample_shape_.str()
                                                   << " vs "
                                                   << other.sample_shape_.str());
  FEDVR_CHECK_MSG(num_classes_ == other.num_classes_,
                  "append: class count mismatch");
  features_.insert(features_.end(), other.features_.begin(),
                   other.features_.end());
  labels_.insert(labels_.end(), other.labels_.begin(), other.labels_.end());
}

std::vector<std::size_t> Dataset::class_histogram() const {
  std::vector<std::size_t> hist(num_classes_, 0);
  for (int y : labels_) hist[static_cast<std::size_t>(y)]++;
  return hist;
}

Dataset FederatedDataset::pooled_test() const {
  FEDVR_CHECK(!test.empty());
  Dataset pooled(test.front().sample_shape(), 0,
                 test.front().num_classes());
  for (const auto& d : test) pooled.append(d);
  return pooled;
}

}  // namespace fedvr::data
