// In-memory labeled dataset.
//
// Samples are stored contiguously (one row per sample, row length =
// sample_shape.numel()) so models can view them as flat feature vectors or,
// via sample_shape, as CHW images. Labels are class indices.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "tensor/shape.h"
#include "util/error.h"
#include "util/rng.h"

namespace fedvr::data {

class Dataset {
 public:
  Dataset() = default;

  /// Allocates storage for `n` samples of the given per-sample shape with
  /// `num_classes` distinct labels.
  Dataset(tensor::Shape sample_shape, std::size_t n, std::size_t num_classes)
      : sample_shape_(sample_shape),
        num_classes_(num_classes),
        features_(n * sample_shape.numel(), 0.0),
        labels_(n, 0) {
    FEDVR_CHECK(num_classes >= 2);
  }

  [[nodiscard]] std::size_t size() const { return labels_.size(); }
  [[nodiscard]] bool empty() const { return labels_.empty(); }
  [[nodiscard]] std::size_t feature_dim() const {
    return sample_shape_.numel();
  }
  [[nodiscard]] const tensor::Shape& sample_shape() const {
    return sample_shape_;
  }
  [[nodiscard]] std::size_t num_classes() const { return num_classes_; }

  [[nodiscard]] std::span<const double> sample(std::size_t i) const {
    FEDVR_CHECK_MSG(i < size(), "sample index " << i << " >= " << size());
    return {features_.data() + i * feature_dim(), feature_dim()};
  }
  [[nodiscard]] std::span<double> mutable_sample(std::size_t i) {
    FEDVR_CHECK_MSG(i < size(), "sample index " << i << " >= " << size());
    return {features_.data() + i * feature_dim(), feature_dim()};
  }

  [[nodiscard]] int label(std::size_t i) const {
    FEDVR_CHECK_MSG(i < size(), "label index " << i << " >= " << size());
    return labels_[i];
  }
  void set_label(std::size_t i, int y) {
    FEDVR_CHECK_MSG(i < size(), "label index " << i << " >= " << size());
    FEDVR_CHECK_MSG(y >= 0 && static_cast<std::size_t>(y) < num_classes_,
                    "label " << y << " out of range [0, " << num_classes_
                             << ")");
    labels_[i] = y;
  }

  /// New dataset containing the given samples (copies).
  [[nodiscard]] Dataset subset(std::span<const std::size_t> indices) const;

  /// Splits into (train, test) with `train_fraction` of samples (shuffled by
  /// `rng`) going to train. The paper uses 75/25.
  [[nodiscard]] std::pair<Dataset, Dataset> split(util::Rng& rng,
                                                  double train_fraction) const;

  /// Appends all samples of `other` (shapes and class counts must match).
  void append(const Dataset& other);

  /// Per-class sample counts (length num_classes()).
  [[nodiscard]] std::vector<std::size_t> class_histogram() const;

 private:
  tensor::Shape sample_shape_;
  std::size_t num_classes_ = 0;
  std::vector<double> features_;
  std::vector<int> labels_;
};

/// A federated dataset: one local train and test set per device, plus the
/// pooled test set used for global accuracy reporting.
struct FederatedDataset {
  std::vector<Dataset> train;  // one per device
  std::vector<Dataset> test;   // one per device

  [[nodiscard]] std::size_t num_devices() const { return train.size(); }

  /// Total training samples across devices (the paper's D).
  [[nodiscard]] std::size_t total_train_size() const {
    std::size_t total = 0;
    for (const auto& d : train) total += d.size();
    return total;
  }

  /// Aggregation weight D_n / D for device n.
  [[nodiscard]] double weight(std::size_t n) const {
    return static_cast<double>(train[n].size()) /
           static_cast<double>(total_train_size());
  }

  /// All device test sets pooled into one (for global test accuracy).
  [[nodiscard]] Dataset pooled_test() const;
};

}  // namespace fedvr::data
