#include "data/federation.h"

#include <cmath>
#include <utility>

#include "check/check.h"
#include "util/error.h"
#include "util/rng.h"

namespace fedvr::data {

InMemoryFederation::InMemoryFederation(const FederatedDataset& fed)
    : fed_(fed), pooled_test_(fed.pooled_test()) {
  FEDVR_CHECK_MSG(fed.num_devices() > 0, "need at least one device");
  std::size_t total = 0;
  for (const auto& shard : fed_.train) total += shard.size();
  set_total_train_size(total);
}

std::size_t InMemoryFederation::device_train_size(std::size_t n) const {
  FEDVR_CHECK_INDEX(n, fed_.train.size());
  return fed_.train[n].size();
}

const Dataset& InMemoryFederation::train(std::size_t n,
                                         Dataset& /*scratch*/) const {
  FEDVR_CHECK_INDEX(n, fed_.train.size());
  return fed_.train[n];
}

VirtualFederation::VirtualFederation(std::size_t num_devices, SizeFn size_fn,
                                     Generator generator, Dataset pooled_test)
    : num_devices_(num_devices),
      size_fn_(std::move(size_fn)),
      generator_(std::move(generator)),
      pooled_test_(std::move(pooled_test)) {
  FEDVR_CHECK_MSG(num_devices_ > 0, "need at least one device");
  FEDVR_CHECK_MSG(size_fn_ != nullptr, "size_fn must not be null");
  FEDVR_CHECK_MSG(generator_ != nullptr, "generator must not be null");
  std::size_t total = 0;
  for (std::size_t n = 0; n < num_devices_; ++n) {
    const std::size_t size = size_fn_(n);
    FEDVR_CHECK_MSG(size > 0, "device " << n << " has no training data");
    total += size;
  }
  set_total_train_size(total);
}

VirtualFederation::VirtualFederation(VirtualFederation&& other) noexcept
    : Federation(other),
      num_devices_(other.num_devices_),
      size_fn_(std::move(other.size_fn_)),
      generator_(std::move(other.generator_)),
      pooled_test_(std::move(other.pooled_test_)),
      materializations_(
          other.materializations_.load(std::memory_order_relaxed)) {}

std::size_t VirtualFederation::device_train_size(std::size_t n) const {
  FEDVR_CHECK_INDEX(n, num_devices_);
  return size_fn_(n);
}

const Dataset& VirtualFederation::train(std::size_t n,
                                        Dataset& scratch) const {
  FEDVR_CHECK_INDEX(n, num_devices_);
  const std::size_t size = size_fn_(n);
  generator_(n, size, scratch);
  FEDVR_CHECK_MSG(scratch.size() == size,
                  "generator produced " << scratch.size() << " samples for "
                                        << size << "-sample device " << n);
  materializations_.fetch_add(1, std::memory_order_relaxed);
  return scratch;
}

VirtualFederation make_synthetic_virtual(const SyntheticConfig& config,
                                         std::size_t pooled_test_samples) {
  FEDVR_CHECK_MSG(config.num_devices > 0, "need at least one device");
  FEDVR_CHECK_MSG(pooled_test_samples > 0, "need a non-empty pooled test set");
  FEDVR_CHECK(config.max_samples >= config.min_samples);
  FEDVR_CHECK_MSG(config.min_samples >= 1, "need >= 1 sample per device");
  // Per-device power-law-ish size: an independent lognormal mass mapped
  // into [min, max] via the monotone squash m ↦ m/(m+1). Each device's size
  // is a pure function of its own index — no fleet-wide rescaling pass —
  // which is what keeps the population O(1) in memory. Coordinate b = 1
  // keeps this stream disjoint from make_synthetic_device's (b = 0) draws.
  const auto size_fn = [config](std::size_t device) -> std::size_t {
    util::Rng rng =
        util::fork(config.seed, device + 1, 1, util::stream::kData);
    const double mass = rng.lognormal(0.0, config.lognormal_sigma);
    const double t = mass / (mass + 1.0);
    const double span =
        static_cast<double>(config.max_samples - config.min_samples);
    return config.min_samples +
           static_cast<std::size_t>(std::llround(t * span));
  };
  const auto generator = [config](std::size_t device, std::size_t num_samples,
                                  Dataset& out) {
    out = make_synthetic_device(config, device, num_samples);
  };
  // The pooled test set comes from the reserved device index num_devices
  // (fork coordinate num_devices + 1), which no training device uses.
  Dataset pooled =
      make_synthetic_device(config, config.num_devices, pooled_test_samples);
  return VirtualFederation(config.num_devices, size_fn, generator,
                           std::move(pooled));
}

}  // namespace fedvr::data
