#include "data/idx_loader.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <vector>

namespace fedvr::data {

namespace {

constexpr std::uint32_t kImagesMagic = 0x00000803;
constexpr std::uint32_t kLabelsMagic = 0x00000801;

std::uint32_t read_be32(std::istream& in, const std::string& path) {
  unsigned char bytes[4];
  in.read(reinterpret_cast<char*>(bytes), 4);
  FEDVR_CHECK_MSG(in.good(), "truncated IDX header in " << path);
  return (std::uint32_t{bytes[0]} << 24) | (std::uint32_t{bytes[1]} << 16) |
         (std::uint32_t{bytes[2]} << 8) | std::uint32_t{bytes[3]};
}

std::uint32_t peek_magic(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return 0;
  unsigned char bytes[4];
  in.read(reinterpret_cast<char*>(bytes), 4);
  if (!in.good()) return 0;
  return (std::uint32_t{bytes[0]} << 24) | (std::uint32_t{bytes[1]} << 16) |
         (std::uint32_t{bytes[2]} << 8) | std::uint32_t{bytes[3]};
}

}  // namespace

Dataset load_idx(const std::string& images_path,
                 const std::string& labels_path, std::size_t num_classes) {
  std::ifstream images(images_path, std::ios::binary);
  FEDVR_CHECK_MSG(images.good(), "cannot open IDX images file "
                                     << images_path);
  std::ifstream labels(labels_path, std::ios::binary);
  FEDVR_CHECK_MSG(labels.good(), "cannot open IDX labels file "
                                     << labels_path);

  const std::uint32_t img_magic = read_be32(images, images_path);
  FEDVR_CHECK_MSG(img_magic == kImagesMagic,
                  images_path << " has magic " << img_magic
                              << ", expected 0x803 (images)");
  const std::uint32_t n_images = read_be32(images, images_path);
  const std::uint32_t rows = read_be32(images, images_path);
  const std::uint32_t cols = read_be32(images, images_path);

  const std::uint32_t lbl_magic = read_be32(labels, labels_path);
  FEDVR_CHECK_MSG(lbl_magic == kLabelsMagic,
                  labels_path << " has magic " << lbl_magic
                              << ", expected 0x801 (labels)");
  const std::uint32_t n_labels = read_be32(labels, labels_path);
  FEDVR_CHECK_MSG(n_images == n_labels,
                  "IDX pair mismatch: " << n_images << " images vs "
                                        << n_labels << " labels");

  Dataset out(tensor::Shape({1, rows, cols}), n_images, num_classes);
  std::vector<unsigned char> pixel_row(static_cast<std::size_t>(rows) * cols);
  for (std::uint32_t i = 0; i < n_images; ++i) {
    images.read(reinterpret_cast<char*>(pixel_row.data()),
                static_cast<std::streamsize>(pixel_row.size()));
    FEDVR_CHECK_MSG(images.good(),
                    "truncated image data at sample " << i << " in "
                                                      << images_path);
    auto dst = out.mutable_sample(i);
    for (std::size_t p = 0; p < pixel_row.size(); ++p) {
      dst[p] = static_cast<double>(pixel_row[p]) / 255.0;
    }
    char label = 0;
    labels.read(&label, 1);
    FEDVR_CHECK_MSG(labels.good(),
                    "truncated label data at sample " << i << " in "
                                                      << labels_path);
    out.set_label(i, static_cast<int>(static_cast<unsigned char>(label)));
  }
  return out;
}

bool idx_pair_available(const std::string& images_path,
                        const std::string& labels_path) {
  return peek_magic(images_path) == kImagesMagic &&
         peek_magic(labels_path) == kLabelsMagic;
}

}  // namespace fedvr::data
