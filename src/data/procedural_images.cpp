#include "data/procedural_images.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <vector>

namespace fedvr::data {

namespace {

// ---- Vector-drawing primitives in the normalized [0,1]^2 canvas. ----

struct Segment {
  double x0, y0, x1, y1;
};

struct Arc {  // ellipse arc, angles in radians, CCW from +x axis
  double cx, cy, rx, ry;
  double a0, a1;
};

struct Box {  // filled axis-aligned rectangle
  double x0, y0, x1, y1;
};

struct Drawing {
  std::vector<Segment> segments;
  std::vector<Arc> arcs;
  std::vector<Box> boxes;
};

double dist_to_segment(double px, double py, const Segment& s) {
  const double dx = s.x1 - s.x0;
  const double dy = s.y1 - s.y0;
  const double len2 = dx * dx + dy * dy;
  double t = 0.0;
  if (len2 > 0.0) {
    t = ((px - s.x0) * dx + (py - s.y0) * dy) / len2;
    t = std::clamp(t, 0.0, 1.0);
  }
  const double qx = s.x0 + t * dx;
  const double qy = s.y0 + t * dy;
  return std::hypot(px - qx, py - qy);
}

double dist_to_arc(double px, double py, const Arc& a) {
  // Sampled polyline approximation; 24 points is plenty at 28x28.
  constexpr int kSteps = 24;
  double best = 1e9;
  double prev_x = 0.0, prev_y = 0.0;
  for (int i = 0; i <= kSteps; ++i) {
    const double t = a.a0 + (a.a1 - a.a0) * i / kSteps;
    const double x = a.cx + a.rx * std::cos(t);
    const double y = a.cy + a.ry * std::sin(t);
    if (i > 0) {
      best = std::min(best,
                      dist_to_segment(px, py, Segment{prev_x, prev_y, x, y}));
    }
    prev_x = x;
    prev_y = y;
  }
  return best;
}

double dist_outside_box(double px, double py, const Box& b) {
  const double dx = std::max({b.x0 - px, 0.0, px - b.x1});
  const double dy = std::max({b.y0 - py, 0.0, py - b.y1});
  return std::hypot(dx, dy);
}

// "Ink" at a canvas point: 1 inside a stroke, soft anti-aliased edge.
double ink_at(const Drawing& d, double px, double py, double pen) {
  double dist = 1e9;
  for (const auto& s : d.segments) {
    dist = std::min(dist, dist_to_segment(px, py, s));
  }
  for (const auto& a : d.arcs) dist = std::min(dist, dist_to_arc(px, py, a));
  for (const auto& b : d.boxes) {
    dist = std::min(dist, dist_outside_box(px, py, b));
  }
  // Smoothstep falloff over one pen radius.
  const double t = std::clamp(1.0 - (dist - pen) / pen, 0.0, 1.0);
  return t * t * (3.0 - 2.0 * t);
}

// ---- Class drawings. Canvas: x right, y DOWN (image convention), glyphs
// centred in [0.2, 0.8]. ----

constexpr double kPi = std::numbers::pi;

Drawing digit_drawing(int label) {
  Drawing d;
  auto seg = [&d](double x0, double y0, double x1, double y1) {
    d.segments.push_back({x0, y0, x1, y1});
  };
  auto arc = [&d](double cx, double cy, double rx, double ry, double a0,
                  double a1) {
    d.arcs.push_back({cx, cy, rx, ry, a0, a1});
  };
  switch (label) {
    case 0:
      arc(0.5, 0.5, 0.20, 0.28, 0.0, 2.0 * kPi);
      break;
    case 1:
      seg(0.5, 0.22, 0.5, 0.78);
      seg(0.40, 0.32, 0.5, 0.22);
      break;
    case 2:
      arc(0.5, 0.37, 0.18, 0.15, -kPi, 0.35);
      seg(0.66, 0.43, 0.33, 0.78);
      seg(0.33, 0.78, 0.70, 0.78);
      break;
    case 3:
      arc(0.48, 0.37, 0.16, 0.14, -kPi * 0.9, kPi * 0.5);
      arc(0.48, 0.64, 0.18, 0.15, -kPi * 0.5, kPi * 0.9);
      break;
    case 4:
      seg(0.60, 0.22, 0.60, 0.78);
      seg(0.60, 0.22, 0.33, 0.58);
      seg(0.33, 0.58, 0.72, 0.58);
      break;
    case 5:
      seg(0.68, 0.24, 0.38, 0.24);
      seg(0.38, 0.24, 0.36, 0.50);
      arc(0.50, 0.62, 0.17, 0.15, -kPi * 0.55, kPi * 0.75);
      break;
    case 6:
      arc(0.50, 0.62, 0.17, 0.15, 0.0, 2.0 * kPi);
      arc(0.56, 0.40, 0.23, 0.30, kPi * 0.75, kPi * 1.35);
      break;
    case 7:
      seg(0.32, 0.24, 0.70, 0.24);
      seg(0.70, 0.24, 0.44, 0.78);
      break;
    case 8:
      arc(0.5, 0.36, 0.14, 0.12, 0.0, 2.0 * kPi);
      arc(0.5, 0.64, 0.17, 0.14, 0.0, 2.0 * kPi);
      break;
    case 9:
      arc(0.50, 0.38, 0.16, 0.14, 0.0, 2.0 * kPi);
      arc(0.44, 0.58, 0.23, 0.28, -kPi * 0.35, kPi * 0.30);
      break;
    default:
      FEDVR_CHECK_MSG(false, "digit label must be 0..9, got " << label);
  }
  return d;
}

Drawing fashion_drawing(int label) {
  Drawing d;
  auto seg = [&d](double x0, double y0, double x1, double y1) {
    d.segments.push_back({x0, y0, x1, y1});
  };
  auto box = [&d](double x0, double y0, double x1, double y1) {
    d.boxes.push_back({x0, y0, x1, y1});
  };
  auto arc = [&d](double cx, double cy, double rx, double ry, double a0,
                  double a1) {
    d.arcs.push_back({cx, cy, rx, ry, a0, a1});
  };
  switch (label) {
    case 0:  // t-shirt: torso box + short sleeves
      box(0.38, 0.32, 0.62, 0.74);
      box(0.24, 0.32, 0.38, 0.46);
      box(0.62, 0.32, 0.76, 0.46);
      break;
    case 1:  // trouser: two legs
      box(0.38, 0.26, 0.48, 0.78);
      box(0.52, 0.26, 0.62, 0.78);
      box(0.38, 0.26, 0.62, 0.38);
      break;
    case 2:  // pullover: torso + long sleeves angled
      box(0.38, 0.30, 0.62, 0.74);
      seg(0.36, 0.34, 0.22, 0.66);
      seg(0.64, 0.34, 0.78, 0.66);
      break;
    case 3:  // dress: narrow top flaring to wide hem
      seg(0.46, 0.24, 0.34, 0.78);
      seg(0.54, 0.24, 0.66, 0.78);
      seg(0.34, 0.78, 0.66, 0.78);
      seg(0.46, 0.24, 0.54, 0.24);
      break;
    case 4:  // coat: open front, long body
      box(0.36, 0.28, 0.48, 0.78);
      box(0.52, 0.28, 0.64, 0.78);
      seg(0.34, 0.32, 0.24, 0.60);
      seg(0.66, 0.32, 0.76, 0.60);
      break;
    case 5:  // sandal: sole + straps
      seg(0.26, 0.62, 0.74, 0.62);
      seg(0.26, 0.68, 0.74, 0.68);
      seg(0.36, 0.62, 0.46, 0.44);
      seg(0.56, 0.62, 0.50, 0.44);
      break;
    case 6:  // shirt: torso + collar + straight sleeves
      box(0.40, 0.30, 0.60, 0.76);
      box(0.26, 0.30, 0.40, 0.42);
      box(0.60, 0.30, 0.74, 0.42);
      seg(0.46, 0.30, 0.50, 0.38);
      seg(0.54, 0.30, 0.50, 0.38);
      break;
    case 7:  // sneaker: low profile with toe curve
      seg(0.24, 0.66, 0.76, 0.66);
      seg(0.24, 0.56, 0.24, 0.66);
      seg(0.24, 0.56, 0.52, 0.56);
      arc(0.52, 0.66, 0.24, 0.10, -kPi * 0.5, 0.0);
      break;
    case 8:  // bag: body + handle arc
      box(0.32, 0.46, 0.68, 0.74);
      arc(0.50, 0.46, 0.12, 0.12, -kPi, 0.0);
      break;
    case 9:  // ankle boot: tall shaft + foot
      box(0.40, 0.30, 0.54, 0.64);
      box(0.40, 0.58, 0.72, 0.70);
      break;
    default:
      FEDVR_CHECK_MSG(false, "fashion label must be 0..9, got " << label);
  }
  return d;
}

const Drawing& class_drawing(ImageFamily family, int label) {
  // Drawings are immutable after first construction; cache all 20.
  static const std::vector<Drawing> digits = [] {
    std::vector<Drawing> v;
    for (int c = 0; c < 10; ++c) v.push_back(digit_drawing(c));
    return v;
  }();
  static const std::vector<Drawing> fashion = [] {
    std::vector<Drawing> v;
    for (int c = 0; c < 10; ++c) v.push_back(fashion_drawing(c));
    return v;
  }();
  FEDVR_CHECK_MSG(label >= 0 && label < 10,
                  "class label must be 0..9, got " << label);
  return family == ImageFamily::kDigits
             ? digits[static_cast<std::size_t>(label)]
             : fashion[static_cast<std::size_t>(label)];
}

}  // namespace

void render_procedural_image(const ProceduralImageConfig& config, int label,
                             util::Rng& rng, std::span<double> pixels) {
  const std::size_t side = config.side;
  FEDVR_CHECK_MSG(pixels.size() == side * side,
                  "pixel buffer size " << pixels.size() << " != " << side
                                       << "^2");
  const Drawing& drawing = class_drawing(config.family, label);

  // Random affine transform: output pixel -> canvas point. We apply the
  // *inverse* transform while sampling, which for composition of
  // (translate, rotate, scale, shear) about the canvas center is easiest to
  // build directly.
  const double shift_x = rng.uniform(-config.max_shift, config.max_shift);
  const double shift_y = rng.uniform(-config.max_shift, config.max_shift);
  const double angle = rng.uniform(-config.max_rotate, config.max_rotate);
  const double scale = rng.uniform(config.min_scale, config.max_scale);
  const double shear = rng.uniform(-config.max_shear, config.max_shear);
  const double brightness = rng.uniform(0.85, 1.0);

  const double cos_a = std::cos(-angle);
  const double sin_a = std::sin(-angle);
  const double inv_scale = 1.0 / scale;

  for (std::size_t row = 0; row < side; ++row) {
    for (std::size_t col = 0; col < side; ++col) {
      // Pixel center in canvas coordinates.
      const double ox =
          (static_cast<double>(col) + 0.5) / static_cast<double>(side);
      const double oy =
          (static_cast<double>(row) + 0.5) / static_cast<double>(side);
      // Undo translation, then rotate/scale/shear about the center.
      double x = ox - 0.5 - shift_x;
      double y = oy - 0.5 - shift_y;
      const double rx = (cos_a * x - sin_a * y) * inv_scale;
      const double ry = (sin_a * x + cos_a * y) * inv_scale;
      const double sx = rx - shear * ry;
      const double sy = ry;
      const double ink =
          ink_at(drawing, sx + 0.5, sy + 0.5, config.stroke_width);
      double v = brightness * ink + rng.normal(0.0, config.noise_stddev);
      pixels[row * side + col] = std::clamp(v, 0.0, 1.0);
    }
  }
}

Dataset make_procedural_pool(const ProceduralImageConfig& config,
                             std::size_t n, std::uint64_t seed) {
  Dataset out(tensor::Shape({1, config.side, config.side}), n, 10);
  util::Rng label_rng = util::fork(seed, 0, 0, util::stream::kData);
  for (std::size_t i = 0; i < n; ++i) {
    const int label = static_cast<int>(label_rng.below(10));
    util::Rng sample_rng = util::fork(seed, i + 1, 0, util::stream::kData);
    render_procedural_image(config, label, sample_rng, out.mutable_sample(i));
    out.set_label(i, label);
  }
  return out;
}

Dataset make_procedural_pool_balanced(const ProceduralImageConfig& config,
                                      std::size_t per_class,
                                      std::uint64_t seed) {
  const std::size_t n = per_class * 10;
  Dataset out(tensor::Shape({1, config.side, config.side}), n, 10);
  for (std::size_t i = 0; i < n; ++i) {
    const int label = static_cast<int>(i % 10);
    util::Rng sample_rng = util::fork(seed, i + 1, 0, util::stream::kData);
    render_procedural_image(config, label, sample_rng, out.mutable_sample(i));
    out.set_label(i, label);
  }
  return out;
}

}  // namespace fedvr::data
