#include "opt/workspace.h"

namespace fedvr::opt {

std::size_t WorkspacePool::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return all_.size();
}

SolverWorkspace* WorkspacePool::take() {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (!free_.empty()) {
    SolverWorkspace* ws = free_.back();
    free_.pop_back();
    return ws;
  }
  all_.push_back(std::make_unique<SolverWorkspace>());
  return all_.back().get();
}

void WorkspacePool::give_back(SolverWorkspace* ws) {
  const std::lock_guard<std::mutex> lock(mutex_);
  free_.push_back(ws);
}

}  // namespace fedvr::opt
