// Per-device solver workspaces: every buffer one device activation of the
// local solver (and the code that drives it) touches, owned in one place
// and reused across local epochs and rounds.
//
// The local inner loop is the hot path of every federated round: without
// reuse each solve() allocates ~10 dim-sized vectors, and a trainer running
// R rounds x N devices pays R*N*10 heap round-trips that dwarf the actual
// arithmetic for small models. A SolverWorkspace is acquired once per
// device activation (via WorkspacePool when activations run on pool
// threads) and its vectors keep their capacity, so steady-state rounds
// perform no solver allocations at all — the property bench/micro_rounds
// asserts through the tensor::arena_heap_events() counter and the
// workspace tests assert directly.
#pragma once

#include <cstddef>
#include <memory>
#include <mutex>
#include <vector>

namespace fedvr::opt {

/// Reusable buffers for LocalSolver::solve() and its callers. All vectors
/// retain capacity between uses; solve() resizes them to the model
/// dimension (or batch/dataset size) it needs. Contents are scratch — no
/// state is carried between solves.
struct SolverWorkspace {
  // Inner-loop iterates and estimator directions (dim-sized).
  std::vector<double> w_prev;
  std::vector<double> w_curr;
  std::vector<double> step;
  std::vector<double> v;
  std::vector<double> grad_curr;
  std::vector<double> grad_ref;
  std::vector<double> v0;        // SVRG anchor direction
  std::vector<double> anchor_w;  // SVRG gradient reference point
  std::vector<double> snapshot;  // kUniformRandom iterate snapshot
  std::vector<double> grad_j;    // full surrogate gradient (theta checks,
                                 // diagnostics)
  // Index buffers.
  std::vector<std::size_t> batch;
  std::vector<std::size_t> full_idx;
  std::vector<std::size_t> permutation;  // kShuffledEpochs sampling order
  // Caller-side staging: upload deltas, per-device comm scratch.
  std::vector<double> delta;
};

/// Thread-safe pool of SolverWorkspaces for device activations that run on
/// thread-pool workers. Holds one workspace per peak-concurrent activation
/// (lazily created), so a trainer's steady state touches the heap only for
/// the pool bookkeeping mutex, never for solver buffers.
class WorkspacePool {
 public:
  WorkspacePool() = default;
  WorkspacePool(const WorkspacePool&) = delete;
  WorkspacePool& operator=(const WorkspacePool&) = delete;

  /// RAII lease: acquires a workspace on construction, returns it on
  /// destruction. Keep it on the stack for the span of one activation.
  class Lease {
   public:
    explicit Lease(WorkspacePool& pool) : pool_(&pool), ws_(pool.take()) {}
    ~Lease() {
      if (ws_ != nullptr) pool_->give_back(ws_);
    }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;

    SolverWorkspace& operator*() const { return *ws_; }
    SolverWorkspace* operator->() const { return ws_; }

   private:
    WorkspacePool* pool_;
    SolverWorkspace* ws_;
  };

  /// Number of workspaces ever created (== peak concurrent leases).
  [[nodiscard]] std::size_t size() const;

 private:
  SolverWorkspace* take();
  void give_back(SolverWorkspace* ws);

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<SolverWorkspace>> all_;
  std::vector<SolverWorkspace*> free_;
};

}  // namespace fedvr::opt
