// The device-local inner loop of Algorithm 1 (lines 3-10).
//
// Solves the surrogate problem (paper eq. 6)
//     min_w  J_n(w) = F_n(w) + (mu/2) ||w - anchor||^2
// by tau proximal steps  w_{t+1} = prox_{eta h_s}(w_t - eta v_t), where v_t
// is one of the estimators in estimator.h. With Estimator::kSgd and mu = 0
// this is exactly a FedAvg local epoch; with kSgd and mu > 0 it is FedProx;
// with kSvrg / kSarah it is FedProxVR; with kFullGradient it is the GD
// baseline. One implementation serves all algorithms the paper compares.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "data/dataset.h"
#include "nn/model.h"
#include "opt/estimator.h"
#include "opt/workspace.h"
#include "util/rng.h"

namespace fedvr::opt {

/// Which iterate the device returns as w_n^{(s)} (Algorithm 1 line 10).
enum class IterateSelection {
  kLast,           // w^{(tau+1)} — what practical implementations use (§5)
  kUniformRandom,  // t' uniform on {0..tau} — what the analysis assumes
};

/// How inner mini-batches are drawn (Algorithm 1 line 6).
enum class Sampling {
  kWithReplacement,  // i.i.d. uniform draws — what the analysis assumes
  kShuffledEpochs,   // cycle a reshuffled permutation — FedAvg practice
};

/// Step-size schedule. The paper argues a *fixed* step is the practical
/// choice (§4.2 footnote); the diminishing variant exists to test that
/// claim empirically (see bench/ablation_step_schedule).
enum class StepSchedule {
  kConstant,     // eta_t = eta
  kDiminishing,  // eta_t = eta / (1 + decay * t)
};

struct LocalSolverOptions {
  Estimator estimator = Estimator::kSvrg;
  std::size_t tau = 20;        // inner iterations (line 5)
  double eta = 0.1;            // step size; callers set eta = 1/(beta L)
  double mu = 0.1;             // proximal penalty of h_s (eq. 7)
  std::size_t batch_size = 1;  // mini-batch B (Alg. 1 samples 1; §5 uses B)
  IterateSelection selection = IterateSelection::kLast;
  Sampling sampling = Sampling::kWithReplacement;
  StepSchedule schedule = StepSchedule::kConstant;
  double schedule_decay = 0.1;  // only used by kDiminishing
  /// When true, the result carries ||grad J_n|| at the returned iterate and
  /// the measured local accuracy theta (eq. 11). Costs one full-batch
  /// gradient; off on the hot path.
  bool compute_diagnostics = false;

  /// Adaptive theta-stopping (the paper's eq. 11 as an actual stopping
  /// rule): when > 0, the inner loop additionally stops as soon as
  /// ||grad J_n(w^(t))|| <= adaptive_theta * ||grad F_n(anchor)||, checked
  /// every `theta_check_every` iterations with a full local gradient. tau
  /// remains the hard budget. 0 disables the check (the §5 experiments fix
  /// tau instead).
  double adaptive_theta = 0.0;
  std::size_t theta_check_every = 10;

  /// Optional inner-loop observer for instrumentation (tests, estimator
  /// ablations): called after each estimator update with (t, v_t, w_t)
  /// for t = 1..tau. Leave empty on the hot path.
  std::function<void(std::size_t t, std::span<const double> v,
                     std::span<const double> w)>
      observer;
};

struct LocalSolverResult {
  std::vector<double> w;  // the local model w_n^{(s)} sent to the server

  /// ||grad F_n(anchor)||, from the anchor full-gradient the algorithm
  /// computes anyway (line 4). Denominator of the theta criterion (eq. 11).
  double anchor_grad_norm = 0.0;

  /// F_n at the anchor (free byproduct, used for traces).
  double anchor_loss = 0.0;

  // -- Only populated when compute_diagnostics is set: --
  /// ||grad J_n(w)|| at the returned iterate.
  double surrogate_grad_norm = 0.0;
  /// Measured theta = surrogate_grad_norm / anchor_grad_norm (eq. 11).
  double measured_theta = 0.0;

  /// Number of per-sample gradient evaluations performed — the computation
  /// cost the paper's d_cmp models.
  std::size_t sample_gradient_evals = 0;

  /// Inner iterations actually executed (== tau unless adaptive theta
  /// stopping fired earlier).
  std::size_t iterations_run = 0;
};

class LocalSolver {
 public:
  LocalSolver(std::shared_ptr<const nn::Model> model,
              LocalSolverOptions options);

  [[nodiscard]] const LocalSolverOptions& options() const { return options_; }

  /// Runs the inner loop on `train` starting from `anchor` (the current
  /// global model w̄^{(s-1)}). `rng` drives mini-batch sampling and, for
  /// kUniformRandom, the returned-iterate choice.
  [[nodiscard]] LocalSolverResult solve(const data::Dataset& train,
                                        std::span<const double> anchor,
                                        util::Rng& rng) const;

  /// Workspace-based core with the identical floating-point and RNG
  /// sequence as solve() above (which wraps this with a throwaway
  /// workspace). Every buffer comes from `ws` and is reused across calls,
  /// so steady-state invocations allocate nothing. The chosen iterate is
  /// swapped into `w_out` (donating w_out's old capacity back to the
  /// workspace) and `result.w` stays empty. `w_out` must not alias
  /// `anchor` or any workspace buffer.
  [[nodiscard]] LocalSolverResult solve(const data::Dataset& train,
                                        std::span<const double> anchor,
                                        util::Rng& rng, SolverWorkspace& ws,
                                        std::vector<double>& w_out) const;

 private:
  std::shared_ptr<const nn::Model> model_;
  LocalSolverOptions options_;
};

}  // namespace fedvr::opt
