#include "opt/local_solver.h"

#include <algorithm>
#include <numeric>

#include "check/check.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "tensor/vecops.h"
#include "util/error.h"

namespace fedvr::opt {

namespace {

// Draws inner-loop mini-batches under either sampling scheme. A batch that
// covers the dataset degenerates to the deterministic full batch. The
// permutation buffer is caller-owned (SolverWorkspace) so repeat solves
// reuse its capacity.
class BatchSampler {
 public:
  BatchSampler(Sampling mode, std::size_t n, std::size_t batch_size,
               std::vector<std::size_t>& permutation)
      : mode_(mode),
        n_(n),
        batch_size_(std::min(batch_size, n)),
        permutation_(permutation) {
    if (mode_ == Sampling::kShuffledEpochs && batch_size_ < n_) {
      permutation_.resize(n_);
      std::iota(permutation_.begin(), permutation_.end(), 0);
      cursor_ = n_;  // force a shuffle on first use
    }
  }

  void next(util::Rng& rng, std::vector<std::size_t>& out) {
    out.resize(batch_size_);
    if (batch_size_ == n_) {
      std::iota(out.begin(), out.end(), 0);
      return;
    }
    if (mode_ == Sampling::kWithReplacement) {
      for (auto& idx : out) idx = rng.below(n_);
      return;
    }
    for (auto& idx : out) {
      if (cursor_ >= n_) {
        rng.shuffle(std::span<std::size_t>(permutation_));
        cursor_ = 0;
      }
      idx = permutation_[cursor_++];
    }
  }

 private:
  Sampling mode_;
  std::size_t n_;
  std::size_t batch_size_;
  std::vector<std::size_t>& permutation_;
  std::size_t cursor_ = 0;
};

}  // namespace

LocalSolver::LocalSolver(std::shared_ptr<const nn::Model> model,
                         LocalSolverOptions options)
    : model_(std::move(model)), options_(options) {
  FEDVR_CHECK(model_ != nullptr);
  FEDVR_CHECK_MSG(options_.eta > 0.0, "step size eta must be positive");
  FEDVR_CHECK_MSG(options_.mu >= 0.0, "penalty mu must be nonnegative");
  FEDVR_CHECK(options_.batch_size >= 1);
  FEDVR_CHECK_MSG(options_.schedule_decay >= 0.0,
                  "schedule decay must be nonnegative");
  FEDVR_CHECK_MSG(options_.adaptive_theta >= 0.0 &&
                      options_.adaptive_theta < 1.0,
                  "adaptive_theta must be in [0, 1)");
  FEDVR_CHECK(options_.theta_check_every >= 1);
}

LocalSolverResult LocalSolver::solve(const data::Dataset& train,
                                     std::span<const double> anchor,
                                     util::Rng& rng) const {
  SolverWorkspace ws;
  std::vector<double> w;
  LocalSolverResult result = solve(train, anchor, rng, ws, w);
  result.w = std::move(w);
  return result;
}

LocalSolverResult LocalSolver::solve(const data::Dataset& train,
                                     std::span<const double> anchor,
                                     util::Rng& rng, SolverWorkspace& ws,
                                     std::vector<double>& w_out) const {
  const std::size_t dim = model_->num_parameters();
  FEDVR_CHECK_SHAPE(anchor.size(), dim);
  FEDVR_CHECK_MSG(!train.empty(), "device has no training data");
  FEDVR_CHECK_FINITE(anchor, "solver anchor w^(0)");
  const std::size_t n = train.size();
  // full_idx is always the identity permutation; skip the refill when the
  // workspace already holds it for this dataset size.
  std::vector<std::size_t>& full_idx = ws.full_idx;
  if (full_idx.size() != n) {
    full_idx.resize(n);
    std::iota(full_idx.begin(), full_idx.end(), 0);
  }

  OBS_SPAN("solver.solve");
  LocalSolverResult result;

  // Step size at inner iteration t (t = 0 is the first prox step).
  auto eta_at = [this](std::size_t t) {
    return options_.schedule == StepSchedule::kConstant
               ? options_.eta
               : options_.eta /
                     (1.0 + options_.schedule_decay * static_cast<double>(t));
  };

  // Uniform-random iterate selection: decide t' up front and snapshot when
  // the loop passes it — avoids storing all tau+1 iterates.
  const std::size_t selected_t =
      options_.selection == IterateSelection::kUniformRandom
          ? static_cast<std::size_t>(rng.below(options_.tau + 1))
          : options_.tau + 1;  // sentinel: never snapshot, keep last

  // Line 3-4: w^(0) = anchor, v^(0) = full local gradient at the anchor.
  std::vector<double>& w_prev = ws.w_prev;
  w_prev.assign(anchor.begin(), anchor.end());
  std::vector<double>& v = ws.v;
  v.resize(dim);  // loss_and_gradient overwrites
  result.anchor_loss = model_->loss_and_gradient(w_prev, train, full_idx, v);
  result.sample_gradient_evals += n;
  result.anchor_grad_norm = tensor::nrm2(v);
  FEDVR_OBS_COUNT("solver.anchor_gradients", 1);

  // Cleared, not resized: an adaptive-theta break before t' must leave the
  // snapshot empty, exactly as a freshly constructed vector would be.
  std::vector<double>& snapshot = ws.snapshot;
  snapshot.clear();
  if (selected_t == 0) snapshot.assign(w_prev.begin(), w_prev.end());

  // First prox step: w^(1) = prox(w^(0) - eta_0 v^(0)).
  std::vector<double>& w_curr = ws.w_curr;
  w_curr.resize(dim);
  std::vector<double>& step = ws.step;
  step.resize(dim);
  tensor::copy(w_prev, step);
  tensor::axpy(-eta_at(0), v, step);
  tensor::prox_quadratic(step, anchor, eta_at(0), options_.mu, w_curr);

  // Scratch for the estimator updates.
  std::vector<double>& grad_curr = ws.grad_curr;
  grad_curr.resize(dim);
  std::vector<double>& grad_ref = ws.grad_ref;
  grad_ref.resize(dim);
  if (options_.estimator == Estimator::kSvrg) {
    ws.v0.assign(v.begin(), v.end());          // SVRG keeps the anchor direction
    ws.anchor_w.assign(w_prev.begin(), w_prev.end());  // reference point w^(0)
  }
  const std::vector<double>& v0 = ws.v0;
  const std::vector<double>& anchor_w = ws.anchor_w;
  BatchSampler sampler(options_.sampling, n, options_.batch_size,
                       ws.permutation);
  std::vector<std::size_t>& batch = ws.batch;

  // The eq. 11 stopping criterion, measured with a full local gradient:
  // ||grad J_n(w)|| <= theta ||grad F_n(anchor)||.
  auto theta_criterion_met = [&](std::span<const double> w) {
    std::vector<double>& grad_j = ws.grad_j;
    grad_j.resize(dim);
    (void)model_->loss_and_gradient(w, train, full_idx, grad_j);
    result.sample_gradient_evals += n;
    for (std::size_t i = 0; i < dim; ++i) {
      grad_j[i] += options_.mu * (w[i] - anchor[i]);
    }
    return tensor::nrm2(grad_j) <=
           options_.adaptive_theta * result.anchor_grad_norm;
  };

  // Lines 5-9: tau inner iterations. Iteration t consumes w^(t) (w_curr)
  // and w^(t-1) (w_prev) and produces w^(t+1).
  for (std::size_t t = 1; t <= options_.tau; ++t) {
    if (t == selected_t) snapshot.assign(w_curr.begin(), w_curr.end());
    result.iterations_run = t;
    if (options_.adaptive_theta > 0.0 &&
        t % options_.theta_check_every == 0 && theta_criterion_met(w_curr)) {
      result.iterations_run = t - 1;  // w_curr already satisfies eq. 11
      break;
    }
    switch (options_.estimator) {
      case Estimator::kSgd: {
        sampler.next(rng, batch);
        (void)model_->loss_and_gradient(w_curr, train, batch, v);
        result.sample_gradient_evals += batch.size();
        break;
      }
      case Estimator::kSvrg: {
        // v_t = grad f_i(w_t) - grad f_i(w_0) + v_0   (eq. 8b)
        sampler.next(rng, batch);
        (void)model_->loss_and_gradient(w_curr, train, batch, grad_curr);
        (void)model_->loss_and_gradient(anchor_w, train, batch, grad_ref);
        result.sample_gradient_evals += 2 * batch.size();
        tensor::copy(grad_curr, v);
        tensor::axpy(-1.0, grad_ref, v);
        tensor::axpy(1.0, v0, v);
        break;
      }
      case Estimator::kSarah: {
        // v_t = grad f_i(w_t) - grad f_i(w_{t-1}) + v_{t-1}   (eq. 8a)
        sampler.next(rng, batch);
        (void)model_->loss_and_gradient(w_curr, train, batch, grad_curr);
        (void)model_->loss_and_gradient(w_prev, train, batch, grad_ref);
        result.sample_gradient_evals += 2 * batch.size();
        // v (currently v_{t-1}) += grad_curr - grad_ref.
        tensor::axpy(1.0, grad_curr, v);
        tensor::axpy(-1.0, grad_ref, v);
        break;
      }
      case Estimator::kFullGradient: {
        (void)model_->loss_and_gradient(w_curr, train, full_idx, v);
        result.sample_gradient_evals += n;
        break;
      }
    }
    if (options_.observer) options_.observer(t, v, w_curr);
    // A diverging FedProx run first shows up as NaN/Inf in the estimator
    // direction or the prox output; catch it at the iteration that made it.
    FEDVR_CHECK_FINITE(v, "estimator direction v^(t)");
    // Line 8: w^(t+1) = prox_{eta h_s}(w^(t) - eta v^(t)).
    const double eta_t = eta_at(t);
    tensor::copy(w_curr, step);
    tensor::axpy(-eta_t, v, step);
    w_prev.swap(w_curr);  // w_prev now holds w^(t)
    tensor::prox_quadratic(step, anchor, eta_t, options_.mu, w_curr);
    FEDVR_CHECK_FINITE(w_curr, "local iterate w^(t+1)");
  }

  // Swap, don't copy: w_out takes the chosen iterate and donates its old
  // capacity back to the workspace for the next solve.
  std::vector<double>& chosen =
      (options_.selection == IterateSelection::kUniformRandom &&
       selected_t <= options_.tau)
          ? snapshot
          : w_curr;
  w_out.swap(chosen);

  if (options_.compute_diagnostics) {
    // grad J_n(w) = grad F_n(w) + mu (w - anchor)  (paper eq. 68).
    std::vector<double>& grad_j = ws.grad_j;
    grad_j.resize(dim);
    (void)model_->loss_and_gradient(w_out, train, full_idx, grad_j);
    for (std::size_t i = 0; i < dim; ++i) {
      grad_j[i] += options_.mu * (w_out[i] - anchor[i]);
    }
    result.surrogate_grad_norm = tensor::nrm2(grad_j);
    result.measured_theta =
        result.anchor_grad_norm > 0.0
            ? result.surrogate_grad_norm / result.anchor_grad_norm
            : 0.0;
  }
  FEDVR_OBS_COUNT("solver.inner_iterations", result.iterations_run);
  FEDVR_OBS_COUNT("solver.sample_grad_evals", result.sample_gradient_evals);
  return result;
}

}  // namespace fedvr::opt
