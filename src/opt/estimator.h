// Stochastic gradient estimators for the local inner loop (paper eq. 8).
#pragma once

#include <string>

namespace fedvr::opt {

/// Which direction v_{n,s}^{(t)} the inner loop uses (Algorithm 1 line 7).
enum class Estimator {
  kSgd,           // v_t = grad f_it(w_t)                     (vanilla SGD)
  kSvrg,          // v_t = grad f_it(w_t) - grad f_it(w_0) + v_0     (eq. 8b)
  kSarah,         // v_t = grad f_it(w_t) - grad f_it(w_{t-1}) + v_{t-1} (8a)
  kFullGradient,  // v_t = grad F_n(w_t)                 (GD baseline, [31])
};

[[nodiscard]] constexpr const char* estimator_name(Estimator e) {
  switch (e) {
    case Estimator::kSgd: return "sgd";
    case Estimator::kSvrg: return "svrg";
    case Estimator::kSarah: return "sarah";
    case Estimator::kFullGradient: return "gd";
  }
  return "?";
}

}  // namespace fedvr::opt
