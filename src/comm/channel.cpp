#include "comm/channel.h"

#include <vector>

#include "tensor/vecops.h"
#include "util/error.h"

namespace fedvr::comm {

LinkModel LinkModel::derive(const fl::TimingModel& timing,
                            std::size_t reference_bytes,
                            double latency_fraction) {
  timing.validate();
  FEDVR_CHECK_MSG(reference_bytes > 0, "reference_bytes must be positive");
  FEDVR_CHECK_MSG(latency_fraction >= 0.0 && latency_fraction < 1.0,
                  "latency_fraction must be in [0, 1), got "
                      << latency_fraction);
  const double latency = latency_fraction * timing.d_com;
  const double transfer = (1.0 - latency_fraction) * timing.d_com;
  return LinkModel{
      .latency = latency,
      .bytes_per_time = static_cast<double>(reference_bytes) / transfer};
}

void ChannelOptions::validate() const {
  FEDVR_CHECK_MSG(latency_fraction >= 0.0 && latency_fraction < 1.0,
                  "latency_fraction must be in [0, 1), got "
                      << latency_fraction);
  // dtype_name throws on an out-of-range tag (possible via memcpy'd enums).
  (void)dtype_name(uplink_dtype);
  (void)dtype_name(downlink_dtype);
}

bool ChannelOptions::transforms_uplink() const {
  return compressor != nullptr || error_feedback ||
         uplink_dtype != DType::kFloat64;
}

std::string ChannelOptions::label() const {
  std::string s = compressor ? compressor->name() : "dense";
  if (error_feedback) s += "+ef";
  s += "/" + dtype_name(uplink_dtype);
  return s;
}

Channel::Channel(ChannelOptions options, std::size_t num_devices,
                 std::size_t dim)
    : options_(std::move(options)), dim_(dim) {
  FEDVR_CHECK_MSG(num_devices > 0, "channel needs >= 1 device");
  FEDVR_CHECK_MSG(dim > 0, "channel needs dim >= 1");
  options_.validate();
  // Keyed (lazy) residual storage: slots appear via prepare()/first uplink,
  // so a sampled run over a million-device fleet never allocates N·dim of
  // residual state.
  if (options_.error_feedback) ef_ = ErrorFeedback(dim);
}

void Channel::prepare(std::span<const std::size_t> devices) {
  if (!options_.error_feedback) return;
  for (const std::size_t device : devices) ef_.ensure(device);
}

std::size_t Channel::uplink(std::size_t device, std::span<double> delta,
                            util::Rng& rng) {
  FEDVR_CHECK_MSG(delta.size() == dim_, "uplink delta size mismatch");
  if (!options_.transforms_uplink()) {
    // Pure accounting: dense float64 round-trips bit-exactly, so skip the
    // encode/decode and leave the update untouched (this keeps the
    // no-channel trainer path arithmetically identical to the pre-comm
    // engine while still charging measured message sizes).
    return uplink_wire_bytes();
  }
  // Error-feedback recursion (error_feedback.h): compensate, transmit,
  // absorb the round's compression + quantization error. The lazy ensure()
  // covers serial callers; parallel callers must prepare() first.
  std::vector<double> corrected;
  if (options_.error_feedback) {
    if (!ef_.has(device)) ef_.ensure(device);
    ef_.compensate(device, delta);
    corrected.assign(delta.begin(), delta.end());
  }
  if (options_.compressor) {
    options_.compressor->compress(delta, rng);
  }
  const Message msg =
      options_.compressor
          ? Message::encode_nonzeros(delta, options_.uplink_dtype)
          : Message::encode_dense(delta, options_.uplink_dtype);
  msg.decode(delta);  // what the server actually receives
  if (options_.error_feedback) {
    ef_.absorb(device, corrected, delta);
  }
  return msg.wire_size();
}

std::size_t Channel::uplink_wire_bytes() const {
  const std::size_t kept =
      options_.compressor ? options_.compressor->kept(dim_) : dim_;
  return wire_bytes(options_.uplink_dtype, dim_, kept,
                    /*sparse=*/options_.compressor != nullptr);
}

std::size_t Channel::downlink_wire_bytes() const {
  return wire_bytes(options_.downlink_dtype, dim_, dim_, /*sparse=*/false);
}

double Channel::link_round_time(const fl::TimingModel& timing) const {
  // Reference: the dense float64 down+up exchange the analytic d_com was
  // calibrated against.
  const std::size_t reference =
      2 * wire_bytes(DType::kFloat64, dim_, dim_, /*sparse=*/false);
  const LinkModel link =
      LinkModel::derive(timing, reference, options_.latency_fraction);
  return link.transfer_time(downlink_wire_bytes() + uplink_wire_bytes());
}

void Channel::reset() {
  if (options_.error_feedback) ef_.reset();
}

}  // namespace fedvr::comm
