#include "comm/message.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "util/error.h"

namespace fedvr::comm {

namespace {

constexpr std::uint8_t kMagic0 = 'F';
constexpr std::uint8_t kMagic1 = 'V';
constexpr std::uint8_t kVersion = 1;
constexpr std::uint8_t kFlagSparse = 0x01;

// Offsets into the fixed header (see the layout table in message.h).
constexpr std::size_t kOffMagic = 0;
constexpr std::size_t kOffVersion = 2;
constexpr std::size_t kOffDType = 3;
constexpr std::size_t kOffFlags = 4;
constexpr std::size_t kOffDim = 8;
constexpr std::size_t kOffCount = 16;

void put_u64(std::span<std::uint8_t> buf, std::size_t off, std::uint64_t v) {
  for (std::size_t i = 0; i < 8; ++i) {
    buf[off + i] = static_cast<std::uint8_t>(v >> (8 * i));
  }
}

std::uint64_t get_u64(std::span<const std::uint8_t> buf, std::size_t off) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(buf[off + i]) << (8 * i);
  }
  return v;
}

void put_u32(std::span<std::uint8_t> buf, std::size_t off, std::uint32_t v) {
  for (std::size_t i = 0; i < 4; ++i) {
    buf[off + i] = static_cast<std::uint8_t>(v >> (8 * i));
  }
}

std::uint32_t get_u32(std::span<const std::uint8_t> buf, std::size_t off) {
  std::uint32_t v = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(buf[off + i]) << (8 * i);
  }
  return v;
}

// float32 values cross the wire via memcpy of the IEEE-754 bit pattern;
// fedvr targets little-endian only (as does the committed IDX loader).
void put_f32(std::span<std::uint8_t> buf, std::size_t off, float v) {
  std::memcpy(buf.data() + off, &v, 4);
}

float get_f32(std::span<const std::uint8_t> buf, std::size_t off) {
  float v;
  std::memcpy(&v, buf.data() + off, 4);
  return v;
}

void put_f64(std::span<std::uint8_t> buf, std::size_t off, double v) {
  std::memcpy(buf.data() + off, &v, 8);
}

double get_f64(std::span<const std::uint8_t> buf, std::size_t off) {
  double v;
  std::memcpy(&v, buf.data() + off, 8);
  return v;
}

bool valid_dtype(std::uint8_t tag) {
  return tag <= static_cast<std::uint8_t>(DType::kInt8Block);
}

// Serializes `values` into buf starting at `off` (payload_bytes worth).
void encode_values(std::span<const double> values, DType dtype,
                   std::span<std::uint8_t> buf, std::size_t off) {
  switch (dtype) {
    case DType::kFloat64:
      for (std::size_t i = 0; i < values.size(); ++i) {
        put_f64(buf, off + 8 * i, values[i]);
      }
      return;
    case DType::kFloat32:
      for (std::size_t i = 0; i < values.size(); ++i) {
        put_f32(buf, off + 4 * i, static_cast<float>(values[i]));
      }
      return;
    case DType::kInt8Block: {
      // ggml-style blocks: scale = max|block| / 127 as float32, then one
      // int8 per value. llround is round-half-away, deterministic across
      // platforms for these magnitudes (|q| <= 127 by construction of the
      // scale, with a clamp as belt and braces against float32 rounding).
      const std::size_t nblocks = (values.size() + kQuantBlock - 1) /
                                  kQuantBlock;
      for (std::size_t b = 0; b < nblocks; ++b) {
        const std::size_t lo = b * kQuantBlock;
        const std::size_t len = std::min(kQuantBlock, values.size() - lo);
        double amax = 0.0;
        for (std::size_t i = 0; i < len; ++i) {
          amax = std::max(amax, std::abs(values[lo + i]));
        }
        const float scale = static_cast<float>(amax / 127.0);
        const std::size_t boff = off + b * (4 + kQuantBlock);
        put_f32(buf, boff, scale);
        const double inv =
            scale > 0.0f ? 1.0 / static_cast<double>(scale) : 0.0;
        for (std::size_t i = 0; i < kQuantBlock; ++i) {
          const double v = i < len ? values[lo + i] : 0.0;
          const long q = std::lround(v * inv);
          buf[boff + 4 + i] = static_cast<std::uint8_t>(static_cast<int8_t>(
              std::clamp<long>(q, -127, 127)));
        }
      }
      return;
    }
  }
  FEDVR_CHECK_MSG(false, "unreachable: bad dtype");
}

void decode_values(std::span<const std::uint8_t> buf, std::size_t off,
                   DType dtype, std::span<double> out) {
  switch (dtype) {
    case DType::kFloat64:
      for (std::size_t i = 0; i < out.size(); ++i) {
        out[i] = get_f64(buf, off + 8 * i);
      }
      return;
    case DType::kFloat32:
      for (std::size_t i = 0; i < out.size(); ++i) {
        out[i] = static_cast<double>(get_f32(buf, off + 4 * i));
      }
      return;
    case DType::kInt8Block: {
      const std::size_t nblocks =
          (out.size() + kQuantBlock - 1) / kQuantBlock;
      for (std::size_t b = 0; b < nblocks; ++b) {
        const std::size_t lo = b * kQuantBlock;
        const std::size_t len = std::min(kQuantBlock, out.size() - lo);
        const std::size_t boff = off + b * (4 + kQuantBlock);
        const double scale = static_cast<double>(get_f32(buf, boff));
        for (std::size_t i = 0; i < len; ++i) {
          out[lo + i] =
              scale * static_cast<double>(
                          static_cast<int8_t>(buf[boff + 4 + i]));
        }
      }
      return;
    }
  }
  FEDVR_CHECK_MSG(false, "unreachable: bad dtype");
}

std::vector<std::uint8_t> build(std::size_t dim,
                                std::span<const std::uint32_t> indices,
                                std::span<const double> values, DType dtype,
                                bool sparse) {
  const std::size_t total =
      wire_bytes(dtype, dim, values.size(), sparse);
  std::vector<std::uint8_t> buf(total, 0);
  buf[kOffMagic] = kMagic0;
  buf[kOffMagic + 1] = kMagic1;
  buf[kOffVersion] = kVersion;
  buf[kOffDType] = static_cast<std::uint8_t>(dtype);
  buf[kOffFlags] = sparse ? kFlagSparse : 0;
  put_u64(buf, kOffDim, dim);
  put_u64(buf, kOffCount, values.size());
  std::size_t off = kHeaderBytes;
  if (sparse) {
    for (std::size_t i = 0; i < indices.size(); ++i) {
      put_u32(buf, off + 4 * i, indices[i]);
    }
    off += 4 * indices.size();
  }
  encode_values(values, dtype, buf, off);
  return buf;
}

}  // namespace

std::string dtype_name(DType dtype) {
  switch (dtype) {
    case DType::kFloat64:
      return "f64";
    case DType::kFloat32:
      return "f32";
    case DType::kInt8Block:
      return "q8";
  }
  return "unknown";
}

std::size_t payload_bytes(DType dtype, std::size_t count) {
  switch (dtype) {
    case DType::kFloat64:
      return count * 8;
    case DType::kFloat32:
      return count * 4;
    case DType::kInt8Block: {
      const std::size_t nblocks = (count + kQuantBlock - 1) / kQuantBlock;
      return nblocks * (4 + kQuantBlock);
    }
  }
  FEDVR_CHECK_MSG(false, "bad dtype tag "
                             << static_cast<unsigned>(dtype));
  return 0;
}

std::size_t wire_bytes(DType dtype, std::size_t dim, std::size_t count,
                       bool sparse) {
  FEDVR_CHECK_MSG(count <= dim, "count " << count << " exceeds dim " << dim);
  return kHeaderBytes + (sparse ? 4 * count : 0) +
         payload_bytes(dtype, count);
}

Message Message::encode_dense(std::span<const double> values, DType dtype) {
  FEDVR_CHECK_MSG(!values.empty(), "cannot encode an empty vector");
  return Message(build(values.size(), {}, values, dtype, /*sparse=*/false));
}

Message Message::encode_sparse(std::size_t dim,
                               std::span<const std::uint32_t> indices,
                               std::span<const double> values, DType dtype) {
  FEDVR_CHECK_MSG(indices.size() == values.size(),
                  "index/value size mismatch: " << indices.size() << " vs "
                                                << values.size());
  FEDVR_CHECK_MSG(dim <= std::numeric_limits<std::uint32_t>::max(),
                  "sparse indices are u32; dim " << dim << " overflows");
  for (std::size_t i = 0; i < indices.size(); ++i) {
    FEDVR_CHECK_MSG(indices[i] < dim, "sparse index " << indices[i]
                                                      << " out of range");
    FEDVR_CHECK_MSG(i == 0 || indices[i] > indices[i - 1],
                    "sparse indices must be strictly ascending");
  }
  return Message(build(dim, indices, values, dtype, /*sparse=*/true));
}

Message Message::encode_nonzeros(std::span<const double> delta, DType dtype) {
  std::vector<std::uint32_t> indices;
  std::vector<double> values;
  for (std::size_t i = 0; i < delta.size(); ++i) {
    if (delta[i] != 0.0) {
      indices.push_back(static_cast<std::uint32_t>(i));
      values.push_back(delta[i]);
    }
  }
  return encode_sparse(delta.size(), indices, values, dtype);
}

Message Message::from_bytes(std::vector<std::uint8_t> bytes) {
  FEDVR_CHECK_MSG(bytes.size() >= kHeaderBytes,
                  "message truncated: " << bytes.size() << " bytes");
  FEDVR_CHECK_MSG(bytes[kOffMagic] == kMagic0 &&
                      bytes[kOffMagic + 1] == kMagic1,
                  "bad message magic");
  FEDVR_CHECK_MSG(bytes[kOffVersion] == kVersion,
                  "unsupported wire-format version "
                      << static_cast<unsigned>(bytes[kOffVersion]));
  FEDVR_CHECK_MSG(valid_dtype(bytes[kOffDType]),
                  "bad dtype tag " << static_cast<unsigned>(bytes[kOffDType]));
  FEDVR_CHECK_MSG((bytes[kOffFlags] & ~kFlagSparse) == 0,
                  "unknown message flags "
                      << static_cast<unsigned>(bytes[kOffFlags]));
  const auto dtype = static_cast<DType>(bytes[kOffDType]);
  const bool sparse = (bytes[kOffFlags] & kFlagSparse) != 0;
  const std::uint64_t dim = get_u64(bytes, kOffDim);
  const std::uint64_t count = get_u64(bytes, kOffCount);
  FEDVR_CHECK_MSG(dim > 0, "message dim must be positive");
  FEDVR_CHECK_MSG(sparse ? count <= dim : count == dim,
                  "bad value count " << count << " for dim " << dim);
  FEDVR_CHECK_MSG(bytes.size() == wire_bytes(dtype, dim, count, sparse),
                  "message size " << bytes.size() << " does not match header"
                                  << " (expected "
                                  << wire_bytes(dtype, dim, count, sparse)
                                  << ")");
  if (sparse) {
    std::uint32_t prev = 0;
    for (std::size_t i = 0; i < count; ++i) {
      const std::uint32_t idx = get_u32(bytes, kHeaderBytes + 4 * i);
      FEDVR_CHECK_MSG(idx < dim, "sparse index " << idx << " out of range");
      FEDVR_CHECK_MSG(i == 0 || idx > prev,
                      "sparse indices must be strictly ascending");
      prev = idx;
    }
  }
  return Message(std::move(bytes));
}

void Message::decode(std::span<double> out) const {
  FEDVR_CHECK_MSG(out.size() == dim(),
                  "decode buffer size " << out.size() << " != dim " << dim());
  const std::size_t n = count();
  if (!sparse()) {
    decode_values(bytes_, kHeaderBytes, dtype(), out);
    return;
  }
  // Sparse: decode the packed values, then scatter; untouched coordinates
  // are zero (the server's reconstruction of a sparsified update).
  std::fill(out.begin(), out.end(), 0.0);
  std::vector<double> packed(n);
  decode_values(bytes_, kHeaderBytes + 4 * n, dtype(), packed);
  for (std::size_t i = 0; i < n; ++i) {
    out[get_u32(bytes_, kHeaderBytes + 4 * i)] = packed[i];
  }
}

DType Message::dtype() const { return static_cast<DType>(bytes_[kOffDType]); }

bool Message::sparse() const {
  return (bytes_[kOffFlags] & kFlagSparse) != 0;
}

std::size_t Message::dim() const { return get_u64(bytes_, kOffDim); }

std::size_t Message::count() const { return get_u64(bytes_, kOffCount); }

}  // namespace fedvr::comm
