// Per-device error-feedback accumulators (EF / "SGD with memory").
//
// Biased compressors (TopK) drop mass every round; plain TopK training
// therefore stalls at an error floor instead of converging. Error feedback
// repairs this by remembering what compression threw away and re-injecting
// it into the next update (Stich, Cordonnier & Jaggi, 2018; Karimireddy et
// al., 2019). The per-device recursion the channel runs on every uplink:
//
//     corrected_n  = delta_n + e_n            (compensate)
//     sent_n       = decode(encode(C(corrected_n)))   (what the server sees)
//     e_n         <- corrected_n - sent_n     (remember the new residual)
//
// Note the residual is measured against the *decoded* payload, so it also
// absorbs quantization error from the float32/int8 wire dtypes — EF makes
// aggressive dtypes safe the same way it makes TopK safe.
//
// Determinism: residuals are strictly per-device state, touched only from
// that device's uplink; rounds are sequential, so the recursion's history
// is independent of how devices are scheduled onto threads.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace fedvr::comm {

class ErrorFeedback {
 public:
  /// Disabled accumulator (no devices); apply() must not be called.
  ErrorFeedback() = default;

  /// One dim-sized residual per device, zero-initialized.
  ErrorFeedback(std::size_t num_devices, std::size_t dim);

  /// delta += e_device (the compensation step).
  void compensate(std::size_t device, std::span<double> delta) const;

  /// e_device = corrected - reconstructed (the memory update). `corrected`
  /// is the compensated pre-compression delta, `reconstructed` the decoded
  /// message payload the server will aggregate.
  void absorb(std::size_t device, std::span<const double> corrected,
              std::span<const double> reconstructed);

  /// The current residual of one device (diagnostics, tests).
  [[nodiscard]] std::span<const double> residual(std::size_t device) const;

  /// Zeroes every residual (fresh training run over the same channel).
  void reset();

  [[nodiscard]] std::size_t num_devices() const { return residuals_.size(); }
  [[nodiscard]] std::size_t dim() const { return dim_; }

 private:
  std::size_t dim_ = 0;
  std::vector<std::vector<double>> residuals_;
};

}  // namespace fedvr::comm
