// Per-device error-feedback accumulators (EF / "SGD with memory").
//
// Biased compressors (TopK) drop mass every round; plain TopK training
// therefore stalls at an error floor instead of converging. Error feedback
// repairs this by remembering what compression threw away and re-injecting
// it into the next update (Stich, Cordonnier & Jaggi, 2018; Karimireddy et
// al., 2019). The per-device recursion the channel runs on every uplink:
//
//     corrected_n  = delta_n + e_n            (compensate)
//     sent_n       = decode(encode(C(corrected_n)))   (what the server sees)
//     e_n         <- corrected_n - sent_n     (remember the new residual)
//
// Note the residual is measured against the *decoded* payload, so it also
// absorbs quantization error from the float32/int8 wire dtypes — EF makes
// aggressive dtypes safe the same way it makes TopK safe.
//
// Storage is KEYED BY DEVICE, not dense over the fleet: residual slots are
// registered on first use (ensure()), so a run that samples m of 1,000,000
// devices holds O(devices-ever-sampled · dim) residual state instead of
// O(N · dim). Registration mutates the map and must happen serially (the
// channel's prepare() pass); compensate/absorb only read the map structure
// and write one device's own vector, so the parallel solve path is safe
// once its devices are registered.
//
// Determinism: residuals are strictly per-device state, touched only from
// that device's uplink; rounds are sequential, so the recursion's history
// is independent of how devices are scheduled onto threads. A fresh zero
// slot behaves exactly like an eagerly allocated one (compensate still runs
// the axpy, which is NOT a bitwise no-op: -0.0 + 0.0 normalizes to +0.0),
// so keyed and dense storage produce bit-identical traces.
#pragma once

#include <cstddef>
#include <span>
#include <unordered_map>
#include <vector>

namespace fedvr::comm {

class ErrorFeedback {
 public:
  /// Disabled accumulator (no slots, dim 0); apply() must not be called.
  ErrorFeedback() = default;

  /// Keyed accumulator with no registered slots: devices appear via
  /// ensure() (directly or through Channel::prepare).
  explicit ErrorFeedback(std::size_t dim);

  /// Eager form: pre-registers every device in [0, num_devices). Right for
  /// full-participation runs over small fleets; sampled large-fleet runs
  /// should use the keyed constructor plus ensure().
  ErrorFeedback(std::size_t num_devices, std::size_t dim);

  /// Registers `device` with a zero residual if it has none. NOT thread-
  /// safe (rehash): call serially, before any parallel compensate/absorb.
  void ensure(std::size_t device);

  /// True when `device` has a registered residual slot.
  [[nodiscard]] bool has(std::size_t device) const {
    return residuals_.contains(device);
  }

  /// delta += e_device (the compensation step). `device` must be
  /// registered.
  void compensate(std::size_t device, std::span<double> delta) const;

  /// e_device = corrected - reconstructed (the memory update). `corrected`
  /// is the compensated pre-compression delta, `reconstructed` the decoded
  /// message payload the server will aggregate. `device` must be
  /// registered.
  void absorb(std::size_t device, std::span<const double> corrected,
              std::span<const double> reconstructed);

  /// The current residual of one device (diagnostics, tests).
  [[nodiscard]] std::span<const double> residual(std::size_t device) const;

  /// Zeroes every registered residual (fresh run over the same channel).
  void reset();

  /// Registered residual slots (== the fleet size for the eager
  /// constructor; devices seen so far for the keyed one).
  [[nodiscard]] std::size_t num_devices() const { return residuals_.size(); }
  [[nodiscard]] std::size_t dim() const { return dim_; }

 private:
  std::size_t dim_ = 0;
  std::unordered_map<std::size_t, std::vector<double>> residuals_;
};

}  // namespace fedvr::comm
