#include "comm/error_feedback.h"

#include <algorithm>

#include "tensor/vecops.h"
#include "util/error.h"

namespace fedvr::comm {

ErrorFeedback::ErrorFeedback(std::size_t num_devices, std::size_t dim)
    : dim_(dim), residuals_(num_devices, std::vector<double>(dim, 0.0)) {
  FEDVR_CHECK_MSG(num_devices > 0, "error feedback needs >= 1 device");
  FEDVR_CHECK_MSG(dim > 0, "error feedback needs dim >= 1");
}

void ErrorFeedback::compensate(std::size_t device,
                               std::span<double> delta) const {
  FEDVR_CHECK_MSG(device < residuals_.size(),
                  "device " << device << " out of range");
  FEDVR_CHECK_MSG(delta.size() == dim_, "delta size mismatch");
  tensor::axpy(1.0, residuals_[device], delta);
}

void ErrorFeedback::absorb(std::size_t device,
                           std::span<const double> corrected,
                           std::span<const double> reconstructed) {
  FEDVR_CHECK_MSG(device < residuals_.size(),
                  "device " << device << " out of range");
  FEDVR_CHECK_MSG(corrected.size() == dim_ && reconstructed.size() == dim_,
                  "residual size mismatch");
  tensor::sub(corrected, reconstructed, residuals_[device]);
}

std::span<const double> ErrorFeedback::residual(std::size_t device) const {
  FEDVR_CHECK_MSG(device < residuals_.size(),
                  "device " << device << " out of range");
  return residuals_[device];
}

void ErrorFeedback::reset() {
  for (auto& e : residuals_) std::fill(e.begin(), e.end(), 0.0);
}

}  // namespace fedvr::comm
