#include "comm/error_feedback.h"

#include <algorithm>

#include "tensor/vecops.h"
#include "util/error.h"

namespace fedvr::comm {

ErrorFeedback::ErrorFeedback(std::size_t dim) : dim_(dim) {
  FEDVR_CHECK_MSG(dim > 0, "error feedback needs dim >= 1");
}

ErrorFeedback::ErrorFeedback(std::size_t num_devices, std::size_t dim)
    : dim_(dim) {
  FEDVR_CHECK_MSG(num_devices > 0, "error feedback needs >= 1 device");
  FEDVR_CHECK_MSG(dim > 0, "error feedback needs dim >= 1");
  residuals_.reserve(num_devices);
  for (std::size_t n = 0; n < num_devices; ++n) ensure(n);
}

void ErrorFeedback::ensure(std::size_t device) {
  FEDVR_CHECK_MSG(dim_ > 0, "error feedback is disabled (dim 0)");
  const auto [it, inserted] = residuals_.try_emplace(device);
  if (inserted) it->second.assign(dim_, 0.0);
}

void ErrorFeedback::compensate(std::size_t device,
                               std::span<double> delta) const {
  const auto it = residuals_.find(device);
  FEDVR_CHECK_MSG(it != residuals_.end(),
                  "device " << device << " has no residual slot (ensure() or "
                  "Channel::prepare() it before uplinking)");
  FEDVR_CHECK_MSG(delta.size() == dim_, "delta size mismatch");
  tensor::axpy(1.0, it->second, delta);
}

void ErrorFeedback::absorb(std::size_t device,
                           std::span<const double> corrected,
                           std::span<const double> reconstructed) {
  const auto it = residuals_.find(device);
  FEDVR_CHECK_MSG(it != residuals_.end(),
                  "device " << device << " has no residual slot");
  FEDVR_CHECK_MSG(corrected.size() == dim_ && reconstructed.size() == dim_,
                  "residual size mismatch");
  tensor::sub(corrected, reconstructed, it->second);
}

std::span<const double> ErrorFeedback::residual(std::size_t device) const {
  const auto it = residuals_.find(device);
  FEDVR_CHECK_MSG(it != residuals_.end(),
                  "device " << device << " has no residual slot");
  return it->second;
}

void ErrorFeedback::reset() {
  // lint:allow(no-unordered-iteration-in-reduction) independent per-slot zero fills; order is unobservable
  for (auto& [device, e] : residuals_) std::fill(e.begin(), e.end(), 0.0);
}

}  // namespace fedvr::comm
