// The device<->server link: every uplink update flows through one Channel.
//
// A channel owns the whole transmission pipeline for a training run —
//
//     delta --(error feedback)--> corrected --(compressor)--> sparse
//           --(comm::Message encode)--> bytes on the wire
//           --(decode)--> the reconstruction the server aggregates
//
// — and is therefore the single place where (a) biased compressors get
// their error-feedback correction, (b) wire bytes are *measured* from the
// serialized message instead of estimated, and (c) per-link time is derived
// from those bytes. Callers never invoke Compressor::compress directly
// (tools/lint.py, compression-in-seam).
//
// Timing: the paper's TimingModel charges a flat d_com per round,
// calibrated to a dense float64 exchange. LinkModel::derive splits that
// d_com into a latency floor plus a bandwidth term such that the dense
// reference exchange still costs exactly d_com; a compressed/quantized
// exchange then costs latency + bytes/bandwidth — communication savings
// show up in eq. 19 round time, not just in the byte counters.
//
// Determinism: uplink() mutates only the calling device's error-feedback
// residual, and every random draw comes through the caller's forked rng, so
// channel traffic is bit-identical across thread-pool sizes.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <string>

#include "comm/compression.h"
#include "comm/error_feedback.h"
#include "comm/message.h"
#include "fl/timing_model.h"
#include "util/rng.h"

namespace fedvr::comm {

/// Per-link latency + bandwidth, derived from the analytic TimingModel.
struct LinkModel {
  double latency = 0.0;          // model-time floor per exchange
  double bytes_per_time = 1.0;   // bandwidth in bytes per model-time unit

  /// Transfer time of one `bytes`-sized exchange on this link.
  [[nodiscard]] double transfer_time(std::size_t bytes) const {
    return latency + static_cast<double>(bytes) / bytes_per_time;
  }

  /// Splits `timing.d_com` so that a `reference_bytes` exchange costs
  /// exactly d_com: latency = latency_fraction * d_com and the remainder is
  /// bandwidth. latency_fraction in [0, 1).
  [[nodiscard]] static LinkModel derive(const fl::TimingModel& timing,
                                        std::size_t reference_bytes,
                                        double latency_fraction);
};

struct ChannelOptions {
  /// Uplink sparsifier/quantizer applied to the update delta. Null = dense.
  std::shared_ptr<const Compressor> compressor;
  /// Error-feedback compensation (see error_feedback.h). Makes biased
  /// compressors (TopK) and lossy dtypes convergent; a no-op for the
  /// exact dense float64 path.
  bool error_feedback = false;
  /// Value encoding of uplink payloads (device -> server).
  DType uplink_dtype = DType::kFloat64;
  /// Value encoding of the downlink model broadcast (server -> device).
  DType downlink_dtype = DType::kFloat64;
  /// When true, per-device round time uses d_com derived from the actual
  /// serialized message bytes via LinkModel::derive (calibrated so an
  /// uncompressed float64 exchange costs the TimingModel's d_com); when
  /// false, the analytic flat d_com is charged as before.
  bool byte_timing = false;
  /// Fraction of d_com that is latency floor under byte_timing.
  double latency_fraction = 0.5;

  /// Always-on validation (util/error.h): dtype tags and latency_fraction
  /// must be meaningful in every build configuration.
  void validate() const;

  /// True when the uplink transforms values at all (compression, lossy
  /// dtype, or error feedback) — false means the channel is pure
  /// accounting and the trainer may skip encode/decode entirely.
  [[nodiscard]] bool transforms_uplink() const;

  /// Short human-readable label for sweep tables ("top-k(0.1)+ef/q8").
  [[nodiscard]] std::string label() const;
};

class Channel {
 public:
  /// A channel for a fleet of `num_devices` devices exchanging dim-sized
  /// vectors. Per-device state (error-feedback residuals) is keyed by
  /// device and registered on first use, so the channel's footprint scales
  /// with the devices that actually uplink, not the fleet size.
  Channel(ChannelOptions options, std::size_t num_devices, std::size_t dim);

  /// Serially registers per-device channel state (error-feedback residual
  /// slots) for the given devices. REQUIRED before uplinking a device from
  /// a parallel section — uplink() lazily registers missing slots, which
  /// is only safe single-threaded. No-op devices already registered and
  /// the whole call is a no-op when the channel keeps no per-device state.
  void prepare(std::span<const std::size_t> devices);

  /// Transmits one update delta for `device`: error-feedback compensation,
  /// compression, serialization, and server-side decode back into `delta`
  /// (on return, `delta` is exactly the reconstruction the server
  /// aggregates). Returns the serialized message size actually sent.
  /// Thread-safe across distinct prepared devices.
  std::size_t uplink(std::size_t device, std::span<double> delta,
                     util::Rng& rng);

  /// A-priori uplink message size (header + indices + payload for the
  /// compressor's kept-coordinate count). The realized size from uplink()
  /// can only be smaller (a compressed delta may have fewer nonzeros than
  /// the compressor keeps); lost transmissions and the timing pre-pass are
  /// charged at this size.
  [[nodiscard]] std::size_t uplink_wire_bytes() const;

  /// Serialized size of the dense downlink model broadcast.
  [[nodiscard]] std::size_t downlink_wire_bytes() const;

  /// Round-trip link time (downlink + one uplink) under byte_timing,
  /// derived from `timing`; callers multiply uplink retries on top.
  [[nodiscard]] double link_round_time(const fl::TimingModel& timing) const;

  /// Zeroes error-feedback state (fresh run over the same channel).
  void reset();

  [[nodiscard]] const ChannelOptions& options() const { return options_; }
  [[nodiscard]] std::size_t dim() const { return dim_; }
  [[nodiscard]] const ErrorFeedback& error_feedback() const { return ef_; }

 private:
  ChannelOptions options_;
  std::size_t dim_;
  ErrorFeedback ef_;  // engaged only when options_.error_feedback
};

}  // namespace fedvr::comm
