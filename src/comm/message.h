// The wire format: what actually crosses a device<->server link.
//
// Every model update travels as one comm::Message — a flat byte buffer with
// a fixed 24-byte header followed by the payload. Three value encodings are
// supported (dtype tag in the header):
//
//   kFloat64   8 bytes/value, bit-exact round trip (the determinism dtype);
//   kFloat32   4 bytes/value, one float cast per value — relative error
//              bounded by 2^-24 per coordinate (round-to-nearest);
//   kInt8Block 1 byte/value plus one float32 scale per 32-value block
//              (the ggml-style block-quantization layout): v is stored as
//              round(v / scale) with scale = max|block| / 127, so the
//              absolute error per coordinate is at most max|block| / 254
//              (half a quantization step). A block of zeros stores scale 0.
//
// A message is either dense (count == dim values in coordinate order) or
// sparse (count u32 coordinate indices, ascending, then count values — the
// TopK/RandK payload shape). decode() zero-fills coordinates a sparse
// message does not carry.
//
// Layout (little-endian, the only byte order fedvr targets):
//
//   offset  size  field
//        0     2  magic "FV"
//        2     1  format version (kVersion)
//        3     1  dtype tag (DType)
//        4     1  flags (bit 0: sparse)
//        5     3  reserved (zero)
//        8     8  dim    — coordinates of the full vector (u64)
//       16     8  count  — encoded values (== dim when dense) (u64)
//       24     …  [sparse only] count × u32 ascending coordinate indices
//        …     …  values (dtype-dependent; see payload_bytes())
//
// Encoding is a pure function of (values, dtype): encoding the same vector
// twice yields byte-identical buffers, which the determinism tests rely on.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace fedvr::comm {

enum class DType : std::uint8_t {
  kFloat64 = 0,
  kFloat32 = 1,
  kInt8Block = 2,
};

/// Human-readable dtype tag for trace/CSV labels.
[[nodiscard]] std::string dtype_name(DType dtype);

/// Values per int8 quantization block (one float32 scale each).
inline constexpr std::size_t kQuantBlock = 32;

/// Fixed header size in bytes.
inline constexpr std::size_t kHeaderBytes = 24;

/// Serialized bytes of `count` values in `dtype` (values only, no header or
/// index section).
[[nodiscard]] std::size_t payload_bytes(DType dtype, std::size_t count);

/// Total wire size of a message without building it: header + optional
/// sparse index section + value payload. The a-priori size used for
/// communication accounting of transmissions whose payload is never
/// materialized (lost uplink attempts, the timing pre-pass).
[[nodiscard]] std::size_t wire_bytes(DType dtype, std::size_t dim,
                                     std::size_t count, bool sparse);

class Message {
 public:
  /// Serializes a full vector (count == dim, no index section).
  [[nodiscard]] static Message encode_dense(std::span<const double> values,
                                            DType dtype);

  /// Serializes a sparse vector: `indices` are ascending coordinates into a
  /// vector of `dim` coordinates, `values[i]` the value at `indices[i]`.
  [[nodiscard]] static Message encode_sparse(
      std::size_t dim, std::span<const std::uint32_t> indices,
      std::span<const double> values, DType dtype);

  /// Convenience: serializes the nonzero coordinates of `delta` as a sparse
  /// message (the shape a TopK/RandK-compressed update has after the zeroed
  /// coordinates are dropped).
  [[nodiscard]] static Message encode_nonzeros(std::span<const double> delta,
                                               DType dtype);

  /// Parses and validates a received byte buffer (magic, version, dtype,
  /// flags, section sizes, ascending indices). Throws util::Error on any
  /// malformed input — a server must reject a corrupt frame, not decode it.
  [[nodiscard]] static Message from_bytes(std::vector<std::uint8_t> bytes);

  /// Deserializes into `out` (size must equal dim()). Dense messages
  /// overwrite every coordinate; sparse messages zero-fill the coordinates
  /// they do not carry, so `out` is exactly the server's reconstruction.
  void decode(std::span<double> out) const;

  [[nodiscard]] DType dtype() const;
  [[nodiscard]] bool sparse() const;
  [[nodiscard]] std::size_t dim() const;
  [[nodiscard]] std::size_t count() const;
  [[nodiscard]] std::size_t wire_size() const { return bytes_.size(); }
  [[nodiscard]] std::span<const std::uint8_t> bytes() const { return bytes_; }

 private:
  explicit Message(std::vector<std::uint8_t> bytes)
      : bytes_(std::move(bytes)) {}

  std::vector<std::uint8_t> bytes_;
};

}  // namespace fedvr::comm
