// Uplink compression for device -> server model updates.
//
// The paper buys communication efficiency with more local computation
// (large tau); sparsifying the uplink is the orthogonal, widely-used lever
// (Konecny et al., "Federated Learning: Strategies for Improving
// Communication Efficiency" — the paper's ref. [13]). A compressor acts on
// the update *delta* w_n - w̄^(s-1): the server reconstructs
// w̄^(s-1) + C(delta), so compression error never touches the anchor.
//
// Compressors are one stage of the comm::Channel uplink pipeline
// (error-feedback compensation -> compress -> serialize as a comm::Message
// -> decode). Outside this subsystem nothing calls compress() directly —
// tools/lint.py's compression-in-seam rule enforces it — because a raw
// compressor silently drops the error-feedback correction and the wire-byte
// accounting the channel provides.
#pragma once

#include <memory>
#include <span>
#include <string>

#include "util/rng.h"

namespace fedvr::comm {

class Compressor {
 public:
  virtual ~Compressor() = default;

  /// Sparsifies/quantizes `delta` in place. `rng` drives any randomization
  /// (deterministic per (device, round) via the caller's stream fork).
  virtual void compress(std::span<double> delta, util::Rng& rng) const = 0;

  /// Coordinates that survive compression of a `dim`-vector — the sparse
  /// payload size the channel's a-priori wire accounting uses. Dense
  /// compressors keep everything.
  [[nodiscard]] virtual std::size_t kept(std::size_t dim) const {
    return dim;
  }

  /// Bytes on the wire for one compressed vector of length `dim`
  /// (values + indices for sparse formats). DEPRECATED: an analytic
  /// estimate that predates the wire format; comm::Channel accounts from
  /// actual serialized comm::Message sizes instead.
  [[nodiscard]] virtual std::size_t wire_bytes(std::size_t dim) const = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

/// Keeps the `fraction` largest-magnitude coordinates, zeroing the rest.
/// Biased but low-distortion; the FL deployment default. Pair with the
/// channel's error feedback: plain TopK stalls at a compression-error floor
/// on ill-aligned objectives, TopK+EF provably converges (Stich et al.,
/// "Sparsified SGD with Memory").
class TopKCompressor final : public Compressor {
 public:
  explicit TopKCompressor(double fraction);
  void compress(std::span<double> delta, util::Rng& rng) const override;
  [[nodiscard]] std::size_t wire_bytes(std::size_t dim) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::size_t kept(std::size_t dim) const override;

 private:
  double fraction_;
};

/// Keeps k = max(1, llround(fraction * dim)) uniformly random coordinates,
/// rescaled by dim/k so the compressed delta is unbiased: E[C(x)] = x.
/// The rescale must use the *realized* keep-rate k/dim — for small or
/// awkward dims k/dim != fraction, and scaling by 1/fraction would bias
/// the estimator.
class RandKCompressor final : public Compressor {
 public:
  explicit RandKCompressor(double fraction);
  void compress(std::span<double> delta, util::Rng& rng) const override;
  [[nodiscard]] std::size_t wire_bytes(std::size_t dim) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::size_t kept(std::size_t dim) const override;

 private:
  double fraction_;
};

}  // namespace fedvr::comm
