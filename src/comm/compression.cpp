#include "comm/compression.h"

#include <algorithm>
#include <cstdio>
#include <cmath>
#include <numeric>
#include <vector>

#include "util/error.h"

namespace fedvr::comm {

namespace {
std::size_t kept_count(double fraction, std::size_t dim) {
  if (dim == 0) return 0;
  return std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::llround(fraction * static_cast<double>(dim))));
}

// Sparse wire format: 8-byte value + 4-byte index per kept coordinate.
std::size_t sparse_bytes(std::size_t kept) { return kept * (8 + 4); }

// Shortest round-trip decimal for name()/label() strings: "0.25", not
// std::to_string's "0.250000".
std::string format_fraction(double fraction) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", fraction);
  return buf;
}
}  // namespace

TopKCompressor::TopKCompressor(double fraction) : fraction_(fraction) {
  FEDVR_CHECK_MSG(fraction > 0.0 && fraction <= 1.0,
                  "top-k fraction must be in (0, 1], got " << fraction);
}

std::size_t TopKCompressor::kept(std::size_t dim) const {
  return kept_count(fraction_, dim);
}

void TopKCompressor::compress(std::span<double> delta,
                              util::Rng& /*rng*/) const {
  const std::size_t k = kept(delta.size());
  if (k >= delta.size()) return;
  // Find the magnitude threshold with nth_element over index permutation.
  // The comparator breaks magnitude ties by index, making it a strict
  // total order: the kept set is then uniquely determined, instead of
  // depending on nth_element's unspecified permutation of tied elements
  // (which varies across standard libraries and would break the
  // determinism contract on param_hash traces).
  std::vector<std::size_t> order(delta.size());
  std::iota(order.begin(), order.end(), 0);
  std::nth_element(order.begin(), order.begin() + static_cast<std::ptrdiff_t>(k - 1),
                   order.end(), [&delta](std::size_t a, std::size_t b) {
                     const double ma = std::abs(delta[a]);
                     const double mb = std::abs(delta[b]);
                     if (ma != mb) return ma > mb;
                     return a < b;
                   });
  std::vector<bool> keep(delta.size(), false);
  for (std::size_t i = 0; i < k; ++i) keep[order[i]] = true;
  for (std::size_t i = 0; i < delta.size(); ++i) {
    if (!keep[i]) delta[i] = 0.0;
  }
}

std::size_t TopKCompressor::wire_bytes(std::size_t dim) const {
  return sparse_bytes(kept(dim));
}

std::string TopKCompressor::name() const {
  return "top-k(" + format_fraction(fraction_) + ")";
}

RandKCompressor::RandKCompressor(double fraction) : fraction_(fraction) {
  FEDVR_CHECK_MSG(fraction > 0.0 && fraction <= 1.0,
                  "rand-k fraction must be in (0, 1], got " << fraction);
}

std::size_t RandKCompressor::kept(std::size_t dim) const {
  return kept_count(fraction_, dim);
}

void RandKCompressor::compress(std::span<double> delta,
                               util::Rng& rng) const {
  const std::size_t k = kept(delta.size());
  if (k >= delta.size()) return;
  const auto chosen = rng.sample_without_replacement(delta.size(), k);
  // Unbiasedness: each coordinate survives with probability k/dim, so the
  // survivors are scaled by dim/k.
  const double scale =
      static_cast<double>(delta.size()) / static_cast<double>(k);
  std::vector<bool> keep(delta.size(), false);
  for (std::size_t i : chosen) keep[i] = true;
  for (std::size_t i = 0; i < delta.size(); ++i) {
    delta[i] = keep[i] ? delta[i] * scale : 0.0;
  }
}

std::size_t RandKCompressor::wire_bytes(std::size_t dim) const {
  return sparse_bytes(kept(dim));
}

std::string RandKCompressor::name() const {
  return "rand-k(" + format_fraction(fraction_) + ")";
}

}  // namespace fedvr::comm
