// Wall-clock stopwatch for harness timing (not for the paper's analytical
// timing model, which lives in fl/timing_model.h).
#pragma once

#include <chrono>

namespace fedvr::util {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  [[nodiscard]] double milliseconds() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace fedvr::util
