// Tiny declarative CLI flag parser used by the bench and example binaries.
//
//   util::Flags flags("fig2_convex_fmnist", "Reproduces Fig. 2 ...");
//   int rounds = 200;
//   flags.add("rounds", &rounds, "number of global rounds T");
//   flags.parse(argc, argv);   // accepts --rounds=300 and --rounds 300
//
// Unknown flags are an error (typos must not silently change experiments);
// --help prints the registered flags and exits.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace fedvr::util {

class Flags {
 public:
  Flags(std::string program, std::string description)
      : program_(std::move(program)), description_(std::move(description)) {}

  void add(std::string_view name, int* target, std::string_view help);
  void add(std::string_view name, std::int64_t* target, std::string_view help);
  void add(std::string_view name, std::size_t* target, std::string_view help);
  void add(std::string_view name, double* target, std::string_view help);
  void add(std::string_view name, bool* target, std::string_view help);
  void add(std::string_view name, std::string* target, std::string_view help);

  /// Parses argv. Throws util::Error on unknown flags or malformed values.
  /// If --help is present, prints usage and std::exit(0)s.
  void parse(int argc, const char* const* argv);

  [[nodiscard]] std::string usage() const;

 private:
  struct Entry {
    std::string help;
    std::string default_repr;
    bool is_bool = false;
    std::function<void(const std::string&)> assign;
  };

  void register_entry(std::string_view name, Entry entry);

  std::string program_;
  std::string description_;
  std::map<std::string, Entry, std::less<>> entries_;
};

}  // namespace fedvr::util
