#include "util/csv.h"

#include <charconv>
#include <cstdio>
#include <filesystem>

#include "util/error.h"

namespace fedvr::util {

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : path_(path), out_(path, std::ios::trunc), columns_(header.size()) {
  FEDVR_CHECK_MSG(out_.good(), "cannot open CSV file for writing: " << path);
  FEDVR_CHECK(!header.empty());
  row(header);
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  FEDVR_CHECK_MSG(cells.size() == columns_,
                  "CSV row has " << cells.size() << " cells, header has "
                                 << columns_ << " (" << path_ << ")");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
  FEDVR_CHECK_MSG(out_.good(), "write failure on CSV file " << path_);
}

CsvWriter::RowBuilder& CsvWriter::RowBuilder::add(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.10g", v);
  cells_.emplace_back(buf);
  return *this;
}

CsvWriter::RowBuilder& CsvWriter::RowBuilder::add(long long v) {
  cells_.emplace_back(std::to_string(v));
  return *this;
}

void CsvWriter::RowBuilder::commit() {
  writer_.row(cells_);
  cells_.clear();
}

std::string CsvWriter::escape(std::string_view cell) {
  const bool needs_quotes =
      cell.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quotes) return std::string(cell);
  std::string quoted;
  quoted.reserve(cell.size() + 2);
  quoted.push_back('"');
  for (char c : cell) {
    if (c == '"') quoted.push_back('"');
    quoted.push_back(c);
  }
  quoted.push_back('"');
  return quoted;
}

std::string ensure_results_dir(const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  FEDVR_CHECK_MSG(!ec, "cannot create results directory " << dir << ": "
                                                          << ec.message());
  return dir;
}

}  // namespace fedvr::util
