// Deterministic, splittable random number generation.
//
// Everything in fedvr that needs randomness derives it from a single master
// seed through *named stream forking*: fork(seed, device, round, purpose)
// hashes its arguments into an independent stream. This makes federated runs
// bit-reproducible no matter how devices are scheduled onto threads, which is
// essential both for debugging and for paper-style "same data, different
// algorithm" comparisons.
//
// The core generator is xoshiro256** (Blackman & Vigna) seeded via
// SplitMix64, a standard, fast, high-quality combination.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

namespace fedvr::util {

/// SplitMix64 step: used for seeding and for hashing fork coordinates.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// xoshiro256** generator. Satisfies std::uniform_random_bit_generator so it
/// can drive <random> distributions, though fedvr ships its own (portable
/// across standard libraries).
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four 64-bit words of state from `seed` via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x853C49E6748FEA9BULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    for (auto& word : state_) word = splitmix64(seed);
    // All-zero state is the one invalid state; SplitMix64 cannot emit four
    // zeros in a row from any seed, so no further guard is needed.
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) with 53 bits of precision.
  [[nodiscard]] double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n). Uses Lemire's multiply-shift rejection
  /// method: unbiased and fast.
  [[nodiscard]] std::uint64_t below(std::uint64_t n);

  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Standard normal via Box–Muller (caches the second variate).
  [[nodiscard]] double normal();

  /// Normal with the given mean and standard deviation.
  [[nodiscard]] double normal(double mean, double stddev) {
    return mean + stddev * normal();
  }

  /// Samples from a log-normal distribution: exp(N(mu, sigma^2)).
  [[nodiscard]] double lognormal(double mu, double sigma) {
    return std::exp(normal(mu, sigma));
  }

  /// Fisher–Yates shuffle of a span.
  template <typename T>
  void shuffle(std::span<T> xs) {
    for (std::size_t i = xs.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(xs[i - 1], xs[j]);
    }
  }

  /// k distinct indices sampled uniformly from [0, n) (k <= n).
  [[nodiscard]] std::vector<std::size_t> sample_without_replacement(
      std::size_t n, std::size_t k);

  /// k distinct indices sampled uniformly from [0, n), returned in ascending
  /// order, appended to `out` (cleared first; capacity is reused). Floyd's
  /// algorithm: O(k) draws and O(k) memory however large n is, which is what
  /// makes sampling m of 1,000,000 devices per round affordable — the O(n)
  /// selection scan above walks the whole population. The two methods draw
  /// different streams, so they are not interchangeable under a pinned seed.
  void sample_subset_sorted(std::size_t n, std::size_t k,
                            std::vector<std::size_t>& out);

  /// Index sampled from an (unnormalized, nonnegative) weight vector.
  [[nodiscard]] std::size_t categorical(std::span<const double> weights);

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

/// Deterministically derives an independent stream from a master seed and up
/// to three named coordinates (e.g. device id, round, purpose tag). Streams
/// with different coordinates are statistically independent for all
/// practical purposes (SplitMix64 avalanche).
[[nodiscard]] Rng fork(std::uint64_t master_seed, std::uint64_t a,
                       std::uint64_t b = 0, std::uint64_t c = 0);

/// Well-known purpose tags for fork()'s last coordinate, so call sites do
/// not collide by accident.
namespace stream {
inline constexpr std::uint64_t kData = 1;       // dataset generation
inline constexpr std::uint64_t kInit = 2;       // parameter initialization
inline constexpr std::uint64_t kSampling = 3;   // minibatch sampling
inline constexpr std::uint64_t kSelection = 4;  // iterate/client selection
inline constexpr std::uint64_t kSearch = 5;     // hyperparameter search
inline constexpr std::uint64_t kFaults = 6;     // fault-event injection
inline constexpr std::uint64_t kComm = 7;       // comm: compressor draws
                                                // (device+1 coord) and
                                                // ProxSkip skip coins
                                                // (device coord 0)
}  // namespace stream

}  // namespace fedvr::util
