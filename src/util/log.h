// Minimal leveled logger writing to stderr.
//
// The engine logs round-level progress at Info; kernels and solvers log
// nothing on the hot path. Thread-safe: each message is formatted into a
// local buffer and written with a single mutex-guarded call.
#pragma once

#include <mutex>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>

namespace fedvr::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global minimum level; messages below it are discarded cheaply.
///
/// The initial level comes from the FEDVR_LOG_LEVEL environment variable
/// (parsed once at startup; see parse_log_level for accepted spellings) and
/// defaults to Info when unset or unrecognized — so benches can be silenced
/// with FEDVR_LOG_LEVEL=error without code edits.
void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();

/// Parses a level name: "debug"/"info"/"warn"/"warning"/"error" (any case)
/// or the numeric values "0".."3". Returns nullopt for anything else.
[[nodiscard]] std::optional<LogLevel> parse_log_level(std::string_view text);

namespace detail {
void write_log_line(LogLevel level, const std::string& message);

class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;
  ~LogStream() { write_log_line(level_, os_.str()); }

  template <typename T>
  LogStream& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};

struct NullStream {
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};
}  // namespace detail

}  // namespace fedvr::util

// Note the dangling-if shape: when the level is filtered out the streamed
// operands are never evaluated.
#define FEDVR_LOG(level)                                                  \
  if (::fedvr::util::LogLevel::level < ::fedvr::util::log_level()) {      \
  } else                                                                  \
    ::fedvr::util::detail::LogStream(::fedvr::util::LogLevel::level)

#define FEDVR_LOG_INFO FEDVR_LOG(kInfo)
#define FEDVR_LOG_WARN FEDVR_LOG(kWarn)
#define FEDVR_LOG_DEBUG FEDVR_LOG(kDebug)
#define FEDVR_LOG_ERROR FEDVR_LOG(kError)
