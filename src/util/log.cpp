#include "util/log.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <ctime>

namespace fedvr::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};
std::mutex g_write_mutex;

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
  }
  return "?????";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

namespace detail {
void write_log_line(LogLevel level, const std::string& message) {
  const auto now = std::chrono::system_clock::now();
  const std::time_t tt = std::chrono::system_clock::to_time_t(now);
  std::tm tm_buf{};
  localtime_r(&tt, &tm_buf);
  char stamp[32];
  std::strftime(stamp, sizeof stamp, "%H:%M:%S", &tm_buf);
  std::scoped_lock lock(g_write_mutex);
  std::fprintf(stderr, "[%s %s] %s\n", stamp, level_tag(level),
               message.c_str());
}
}  // namespace detail

}  // namespace fedvr::util
