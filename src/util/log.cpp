#include "util/log.h"

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>

namespace fedvr::util {

namespace {

// Startup level: FEDVR_LOG_LEVEL if set and recognized, else Info.
LogLevel initial_level() {
  const char* env = std::getenv("FEDVR_LOG_LEVEL");
  if (env == nullptr) return LogLevel::kInfo;
  return parse_log_level(env).value_or(LogLevel::kInfo);
}

std::atomic<LogLevel> g_level{initial_level()};
std::mutex g_write_mutex;

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
  }
  return "?????";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

std::optional<LogLevel> parse_log_level(std::string_view text) {
  std::string lower;
  lower.reserve(text.size());
  for (char c : text) {
    lower.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  if (lower == "debug" || lower == "0") return LogLevel::kDebug;
  if (lower == "info" || lower == "1") return LogLevel::kInfo;
  if (lower == "warn" || lower == "warning" || lower == "2") {
    return LogLevel::kWarn;
  }
  if (lower == "error" || lower == "3") return LogLevel::kError;
  return std::nullopt;
}

namespace detail {
void write_log_line(LogLevel level, const std::string& message) {
  // Log-line timestamps are presentation only: they never feed algorithm
  // state, traces hash parameters (not log text), so ambient time is safe
  // here and nowhere else outside obs/.
  // lint:allow(no-wallclock-outside-obs) presentation-only log timestamp
  const auto now = std::chrono::system_clock::now();
  // lint:allow(no-wallclock-outside-obs) presentation-only log timestamp
  const std::time_t tt = std::chrono::system_clock::to_time_t(now);
  std::tm tm_buf{};
  localtime_r(&tt, &tm_buf);
  char stamp[32];
  std::strftime(stamp, sizeof stamp, "%H:%M:%S", &tm_buf);
  std::scoped_lock lock(g_write_mutex);
  std::fprintf(stderr, "[%s %s] %s\n", stamp, level_tag(level),
               message.c_str());
}
}  // namespace detail

}  // namespace fedvr::util
