#include "util/flags.h"

#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "util/error.h"

namespace fedvr::util {

namespace {

template <typename T>
T parse_number(const std::string& name, const std::string& value) {
  T out{};
  const char* first = value.data();
  const char* last = value.data() + value.size();
  std::from_chars_result r{};
  if constexpr (std::is_floating_point_v<T>) {
    // from_chars for double is available in libstdc++ 11+.
    r = std::from_chars(first, last, out);
  } else {
    r = std::from_chars(first, last, out, 10);
  }
  FEDVR_CHECK_MSG(r.ec == std::errc{} && r.ptr == last,
                  "flag --" << name << " expects a number, got '" << value
                            << "'");
  return out;
}

bool parse_bool(const std::string& name, const std::string& value) {
  if (value == "true" || value == "1" || value == "yes" || value.empty()) {
    return true;
  }
  if (value == "false" || value == "0" || value == "no") return false;
  FEDVR_CHECK_MSG(false, "flag --" << name << " expects a boolean, got '"
                                   << value << "'");
  return false;  // unreachable
}

template <typename T>
std::string repr(const T& v) {
  std::ostringstream os;
  if constexpr (std::is_same_v<T, bool>) {
    os << (v ? "true" : "false");
  } else {
    os << v;
  }
  return os.str();
}

}  // namespace

void Flags::register_entry(std::string_view name, Entry entry) {
  auto [it, inserted] = entries_.emplace(std::string(name), std::move(entry));
  (void)it;
  FEDVR_CHECK_MSG(inserted, "duplicate flag --" << name);
}

void Flags::add(std::string_view name, int* target, std::string_view help) {
  register_entry(name, Entry{std::string(help), repr(*target), false,
                             [name = std::string(name), target](
                                 const std::string& v) {
                               *target = parse_number<int>(name, v);
                             }});
}

void Flags::add(std::string_view name, std::int64_t* target,
                std::string_view help) {
  register_entry(name, Entry{std::string(help), repr(*target), false,
                             [name = std::string(name), target](
                                 const std::string& v) {
                               *target = parse_number<std::int64_t>(name, v);
                             }});
}

void Flags::add(std::string_view name, std::size_t* target,
                std::string_view help) {
  register_entry(name, Entry{std::string(help), repr(*target), false,
                             [name = std::string(name), target](
                                 const std::string& v) {
                               *target = parse_number<std::size_t>(name, v);
                             }});
}

void Flags::add(std::string_view name, double* target, std::string_view help) {
  register_entry(name, Entry{std::string(help), repr(*target), false,
                             [name = std::string(name), target](
                                 const std::string& v) {
                               *target = parse_number<double>(name, v);
                             }});
}

void Flags::add(std::string_view name, bool* target, std::string_view help) {
  register_entry(name, Entry{std::string(help), repr(*target), true,
                             [name = std::string(name), target](
                                 const std::string& v) {
                               *target = parse_bool(name, v);
                             }});
}

void Flags::add(std::string_view name, std::string* target,
                std::string_view help) {
  register_entry(name,
                 Entry{std::string(help), *target, false,
                       [target](const std::string& v) { *target = v; }});
}

void Flags::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(usage().c_str(), stdout);
      std::exit(0);
    }
    FEDVR_CHECK_MSG(arg.rfind("--", 0) == 0,
                    "unexpected positional argument '" << arg << "'");
    arg.erase(0, 2);
    std::string value;
    bool have_value = false;
    if (const auto eq = arg.find('='); eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg.erase(eq);
      have_value = true;
    }
    const auto it = entries_.find(arg);
    FEDVR_CHECK_MSG(it != entries_.end(), "unknown flag --" << arg);
    if (!have_value && !it->second.is_bool) {
      FEDVR_CHECK_MSG(i + 1 < argc, "flag --" << arg << " needs a value");
      value = argv[++i];
    }
    it->second.assign(value);
  }
}

std::string Flags::usage() const {
  std::ostringstream os;
  os << program_ << " - " << description_ << "\n\nFlags:\n";
  for (const auto& [name, entry] : entries_) {
    os << "  --" << name << "  " << entry.help
       << " (default: " << entry.default_repr << ")\n";
  }
  os << "  --help  show this message\n";
  return os.str();
}

}  // namespace fedvr::util
