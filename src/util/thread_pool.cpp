#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>

#include "obs/registry.h"
#include "util/error.h"

namespace fedvr::util {

namespace {

// Set for the lifetime of every worker thread; parallel_for consults it to
// run nested invocations inline instead of deadlocking the pool.
thread_local bool tls_in_worker = false;

// The global pool lives behind an atomic pointer so the hot path (one
// acquire load) stays cheap while reset_global() can still swap pools.
std::unique_ptr<ThreadPool>& global_storage() {
  static std::unique_ptr<ThreadPool> storage;
  return storage;
}

std::mutex& global_mutex() {
  static std::mutex m;
  return m;
}

std::atomic<ThreadPool*> g_global_pool{nullptr};

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::scoped_lock lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::note_enqueued() {
  if (!obs::enabled()) return;
  FEDVR_OBS_COUNT("pool.tasks_submitted", 1);
  obs::Registry::global().gauge("pool.queue_depth").add(1.0);
}

void ThreadPool::note_dequeued() {
  if (!obs::enabled()) return;
  FEDVR_OBS_COUNT("pool.tasks_executed", 1);
  obs::Registry::global().gauge("pool.queue_depth").add(-1.0);
}

// TSAN: all queue and stopping_ state is exchanged under mutex_, and
// submit()'s std::future provides the release/acquire edge that publishes a
// task's side effects to the waiter. The only lock-free traffic here is the
// obs counters above, which are sharded atomics (see obs/registry.h).
void ThreadPool::worker_loop() {
  tls_in_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      // Time spent blocked here is worker idle time (observability only).
      const std::uint64_t wait_start = obs::enabled() ? obs::now_ns() : 0;
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (wait_start != 0) {
        FEDVR_OBS_COUNT("pool.idle_ns", obs::now_ns() - wait_start);
      }
      if (tasks_.empty()) return;  // stopping_ and drained
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    note_dequeued();
    task();
  }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& fn,
                              std::size_t grain) {
  parallel_ranges(
      begin, end,
      [&fn](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) fn(i);
      },
      grain);
}

void ThreadPool::parallel_ranges(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& fn,
    std::size_t grain) {
  FEDVR_CHECK(begin <= end);
  const std::size_t n = end - begin;
  if (n == 0) return;
  grain = std::max<std::size_t>(grain, 1);
  const std::size_t max_chunks = std::max<std::size_t>(size(), 1);
  const std::size_t chunks =
      tls_in_worker ? 1 : std::min(max_chunks, (n + grain - 1) / grain);
  if (chunks <= 1) {
    fn(begin, end);
    return;
  }
  const std::size_t chunk_len = (n + chunks - 1) / chunks;
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = begin + c * chunk_len;
    const std::size_t hi = std::min(end, lo + chunk_len);
    if (lo >= hi) break;
    futures.push_back(submit([lo, hi, &fn] { fn(lo, hi); }));
  }
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

bool ThreadPool::in_worker() { return tls_in_worker; }

ThreadPool& ThreadPool::global() {
  ThreadPool* pool = g_global_pool.load(std::memory_order_acquire);
  if (pool != nullptr) return *pool;
  std::scoped_lock lock(global_mutex());
  auto& storage = global_storage();
  if (!storage) {
    storage = std::make_unique<ThreadPool>();
    g_global_pool.store(storage.get(), std::memory_order_release);
  }
  return *storage;
}

void ThreadPool::reset_global(std::size_t threads) {
  std::scoped_lock lock(global_mutex());
  auto& storage = global_storage();
  g_global_pool.store(nullptr, std::memory_order_release);
  storage.reset();  // joins the old workers before the new pool spins up
  storage = std::make_unique<ThreadPool>(threads);
  g_global_pool.store(storage.get(), std::memory_order_release);
}

}  // namespace fedvr::util
