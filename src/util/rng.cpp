#include "util/rng.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <unordered_set>

#include "util/error.h"

namespace fedvr::util {

std::uint64_t Rng::below(std::uint64_t n) {
  FEDVR_CHECK(n > 0);
  // Lemire's method: multiply a 64-bit variate by n and keep the high word,
  // rejecting the small biased region of the low word.
  using u128 = unsigned __int128;
  std::uint64_t x = (*this)();
  u128 m = static_cast<u128>(x) * static_cast<u128>(n);
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = (0 - n) % n;
    while (lo < threshold) {
      x = (*this)();
      m = static_cast<u128>(x) * static_cast<u128>(n);
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller on (0,1] uniforms; 1-uniform() avoids log(0).
  const double u1 = 1.0 - uniform();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(angle);
  has_cached_normal_ = true;
  return r * std::cos(angle);
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n,
                                                         std::size_t k) {
  FEDVR_CHECK_MSG(k <= n, "cannot draw " << k << " distinct items from " << n);
  // Selection sampling (Knuth 3.4.2 algorithm S): O(n), no scratch of size n
  // beyond the output when k << n would matter, but n here is small.
  std::vector<std::size_t> out;
  out.reserve(k);
  std::size_t remaining = n;
  std::size_t needed = k;
  for (std::size_t i = 0; i < n && needed > 0; ++i) {
    if (below(remaining) < needed) {
      out.push_back(i);
      --needed;
    }
    --remaining;
  }
  return out;
}

void Rng::sample_subset_sorted(std::size_t n, std::size_t k,
                               std::vector<std::size_t>& out) {
  FEDVR_CHECK_MSG(k <= n, "cannot draw " << k << " distinct items from " << n);
  out.clear();
  // Floyd's algorithm (Bentley & Floyd, 1987): for j = n-k .. n-1 draw
  // t ∈ [0, j]; take t unless already taken, in which case take j (which
  // cannot have been taken before this step). Exactly k draws, uniform over
  // all k-subsets. Membership tests never iterate the set, so the result
  // does not depend on hash iteration order.
  std::unordered_set<std::size_t> chosen;
  chosen.reserve(k);
  for (std::size_t j = n - k; j < n; ++j) {
    const auto t = static_cast<std::size_t>(below(j + 1));
    if (chosen.insert(t).second) {
      out.push_back(t);
    } else {
      chosen.insert(j);
      out.push_back(j);
    }
  }
  std::sort(out.begin(), out.end());
}

std::size_t Rng::categorical(std::span<const double> weights) {
  FEDVR_CHECK(!weights.empty());
  double total = 0.0;
  std::size_t last_nonzero = 0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i];
    FEDVR_CHECK_MSG(w >= 0.0, "negative categorical weight " << w);
    total += w;
    if (w > 0.0) last_nonzero = i;
  }
  FEDVR_CHECK_MSG(total > 0.0, "categorical weights sum to zero");
  double r = uniform() * total;
  for (std::size_t i = 0; i + 1 < weights.size(); ++i) {
    // Zero-weight indices never win: r can dip below 0 under fp rounding
    // (the pairwise subtractions need not reproduce `total`), and without
    // the w > 0 guard such an r would select the next index regardless of
    // its weight.
    if (weights[i] > 0.0 && r < weights[i]) return i;
    r -= weights[i];
  }
  // Fallthrough when rounding walks r past every weight: clamp to the last
  // index with positive weight, not blindly to weights.size() - 1 (whose
  // weight may be zero — an index the distribution can never produce).
  return last_nonzero;
}

Rng fork(std::uint64_t master_seed, std::uint64_t a, std::uint64_t b,
         std::uint64_t c) {
  // Run the coordinates through SplitMix64 sequentially; each absorption
  // fully avalanches, so (seed, a, b, c) tuples map to well-separated seeds.
  std::uint64_t s = master_seed;
  (void)splitmix64(s);
  s ^= a + 0x9E3779B97F4A7C15ULL;
  (void)splitmix64(s);
  s ^= b + 0xD1B54A32D192ED03ULL;
  (void)splitmix64(s);
  s ^= c + 0x2545F4914F6CDD1DULL;
  const std::uint64_t derived = splitmix64(s);
  return Rng(derived);
}

}  // namespace fedvr::util
