// CSV trace writer for experiment outputs.
//
// Every bench binary writes one CSV per figure/table under results/ so the
// curves can be plotted externally. Values are written with full precision;
// strings containing separators or quotes are quoted per RFC 4180.
#pragma once

#include <fstream>
#include <string>
#include <string_view>
#include <vector>

namespace fedvr::util {

class CsvWriter {
 public:
  /// Opens `path` for writing (truncates) and emits the header row.
  /// Parent directories must exist; create_directories() helpers live in
  /// the caller. Throws util::Error on I/O failure.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  /// Appends one row; the cell count must match the header.
  void row(const std::vector<std::string>& cells);

  /// Convenience: formats doubles/ints/strings in one call.
  class RowBuilder {
   public:
    explicit RowBuilder(CsvWriter& w) : writer_(w) {}
    RowBuilder& add(std::string_view s) {
      cells_.emplace_back(s);
      return *this;
    }
    RowBuilder& add(double v);
    RowBuilder& add(long long v);
    RowBuilder& add(std::size_t v) {
      return add(static_cast<long long>(v));
    }
    RowBuilder& add(int v) { return add(static_cast<long long>(v)); }
    /// Writes the accumulated row.
    void commit();

   private:
    CsvWriter& writer_;
    std::vector<std::string> cells_;
  };

  [[nodiscard]] RowBuilder builder() { return RowBuilder(*this); }
  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] std::size_t columns() const { return columns_; }

 private:
  static std::string escape(std::string_view cell);

  std::string path_;
  std::ofstream out_;
  std::size_t columns_;
};

/// Ensures the directory for experiment outputs exists and returns it.
[[nodiscard]] std::string ensure_results_dir(
    const std::string& dir = "results");

}  // namespace fedvr::util
