// A small fixed-size thread pool plus a blocking parallel_for.
//
// The federated engine uses this to run device-local training in parallel
// (Algorithm 1's "for n in N do in parallel"); the tensor kernels use
// parallel_for for data-parallel loops. Per the Core Guidelines concurrency
// rules, tasks share no mutable state: each device owns its slice, and
// parallel_for hands each worker a disjoint index range.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace fedvr::util {

class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means std::thread::hardware_concurrency()
  /// (at least 1).
  explicit ThreadPool(std::size_t threads = 0);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains outstanding tasks, then joins all workers.
  ~ThreadPool();

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// Enqueues a task and returns a future for its result.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    {
      std::scoped_lock lock(mutex_);
      tasks_.emplace([task] { (*task)(); });
    }
    note_enqueued();
    cv_.notify_one();
    return result;
  }

  /// Runs fn(i) for i in [begin, end), partitioned into contiguous chunks
  /// across the pool, blocking until every index is done. Exceptions from
  /// any chunk propagate (the first one observed is rethrown).
  ///
  /// Degenerates to a serial loop when the range is small, the pool has a
  /// single worker, or the caller is itself a pool worker (nested
  /// parallelism would deadlock a fixed-size pool: every worker could end
  /// up blocked waiting for queued chunks no thread is free to run).
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& fn,
                    std::size_t grain = 1);

  /// Range-granular variant: fn(lo, hi) is invoked once per contiguous
  /// chunk instead of once per index, letting the body keep unit-stride
  /// inner loops. Chunk boundaries depend on the pool size, so only use
  /// this when per-element results are chunk-invariant (disjoint writes or
  /// per-element accumulation order fixed by the body) — the determinism
  /// contract requires bit-identical results across pool sizes.
  void parallel_ranges(
      std::size_t begin, std::size_t end,
      const std::function<void(std::size_t, std::size_t)>& fn,
      std::size_t grain = 1);

  /// True when the calling thread is a worker of any ThreadPool in this
  /// process. The kernels use this to fall back to serial execution when
  /// already running inside a parallel region.
  [[nodiscard]] static bool in_worker();

  /// Process-wide pool sized to the hardware. Prefer passing a pool
  /// explicitly; this exists for call sites (tensor kernels) where threading
  /// a pool through every expression would obscure the math.
  static ThreadPool& global();

  /// Replaces the global pool with one of `threads` workers (0 = hardware
  /// concurrency), joining the old pool first. Test/bench hook for
  /// comparing pool sizes; the caller must ensure no other thread is using
  /// the global pool during the swap.
  static void reset_global(std::size_t threads = 0);

 private:
  void worker_loop();
  // Out-of-line fedvr::obs hooks (pool.* counters/gauges) so this header
  // stays free of obs includes; no-ops while observability is disabled.
  static void note_enqueued();
  static void note_dequeued();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace fedvr::util
