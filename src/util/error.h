// Error-handling primitives used across the fedvr libraries.
//
// Invariant violations are programming errors: they throw fedvr::util::Error
// with a formatted message carrying the failing expression and location.
// Recoverable conditions (file not found, malformed input) also use Error but
// are raised with explicit, user-actionable messages.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>

namespace fedvr::util {

/// Exception type thrown by all fedvr libraries.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

[[noreturn]] inline void raise_check_failure(std::string_view expr,
                                             std::string_view file, int line,
                                             const std::string& msg) {
  std::ostringstream os;
  os << "check failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " - " << msg;
  throw Error(os.str());
}

// Accumulates streamed context for FEDVR_CHECK_MSG.
class MessageBuilder {
 public:
  template <typename T>
  MessageBuilder& operator<<(const T& v) {
    os_ << v;
    return *this;
  }
  std::string str() const { return os_.str(); }

 private:
  std::ostringstream os_;
};

}  // namespace detail
}  // namespace fedvr::util

/// Always-on invariant check: FEDVR_CHECK(n > 0);
#define FEDVR_CHECK(expr)                                                     \
  do {                                                                        \
    if (!(expr)) {                                                            \
      ::fedvr::util::detail::raise_check_failure(#expr, __FILE__, __LINE__,   \
                                                 "");                         \
    }                                                                         \
  } while (0)

/// Invariant check with streamed context:
///   FEDVR_CHECK_MSG(n > 0, "need positive device count, got " << n);
#define FEDVR_CHECK_MSG(expr, streamed)                                       \
  do {                                                                        \
    if (!(expr)) {                                                            \
      ::fedvr::util::detail::MessageBuilder fedvr_mb;                         \
      fedvr_mb << streamed;                                                   \
      ::fedvr::util::detail::raise_check_failure(#expr, __FILE__, __LINE__,   \
                                                 fedvr_mb.str());             \
    }                                                                         \
  } while (0)
