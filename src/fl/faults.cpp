#include "fl/faults.h"

#include <cmath>

#include "util/error.h"
#include "util/rng.h"

namespace fedvr::fl {

namespace {
bool is_probability(double p) { return p >= 0.0 && p <= 1.0; }

/// One sponge step: XOR the next coordinate into the running hash, then run
/// a full SplitMix64 finalization whose OUTPUT becomes the new hash.
std::uint64_t absorb(std::uint64_t h, std::uint64_t v) {
  std::uint64_t s = h ^ v;
  return util::splitmix64(s);
}

/// Derives the fault stream for (seed, device, round). util::fork() is NOT
/// used here: it XOR-absorbs raw coordinates between finalizer calls but
/// discards the intermediate outputs, and for small seeds and coordinates
/// (exactly the fault layer's regime — device and round indices start at
/// 0/1) the derived seeds cluster badly enough that the first uniform draw
/// is measurably non-uniform: across seeds 1-5, devices 0-5, rounds 1-8,
/// ZERO of 240 first draws fall below 0.1, so dropout_prob = 0.1 would
/// never crash anyone. Chaining full finalizations — each output feeds the
/// next absorption — restores per-decile uniformity. Existing fork()
/// streams (init, sampling, selection) are left untouched to preserve the
/// traces pinned by pre-fault builds.
util::Rng fault_stream(std::uint64_t seed, std::size_t device,
                       std::size_t round) {
  std::uint64_t h = absorb(seed, util::stream::kFaults);
  h = absorb(h, static_cast<std::uint64_t>(device) + 1);
  h = absorb(h, static_cast<std::uint64_t>(round));
  return util::Rng(h);
}
}  // namespace

namespace {
/// Draws the corruption kind from the configured weight mix. Fixed kind
/// order (nan, sign, scale, stale) keeps the draw a pure function of the
/// stream position for a given configuration.
CorruptionKind draw_corruption_kind(util::Rng& rng,
                                    const FaultModelConfig& cfg) {
  const double total = cfg.corrupt_nan_weight + cfg.corrupt_sign_weight +
                       cfg.corrupt_scale_weight + cfg.corrupt_stale_weight;
  double x = rng.uniform() * total;
  if ((x -= cfg.corrupt_nan_weight) < 0.0) return CorruptionKind::kNanInject;
  if ((x -= cfg.corrupt_sign_weight) < 0.0) return CorruptionKind::kSignFlip;
  if ((x -= cfg.corrupt_scale_weight) < 0.0) return CorruptionKind::kScale;
  return CorruptionKind::kStaleReplay;
}
}  // namespace

FaultModel::FaultModel(FaultModelConfig config) : config_(config) {
  FEDVR_CHECK_MSG(is_probability(config_.dropout_prob),
                  "dropout_prob must be in [0, 1], got "
                      << config_.dropout_prob);
  FEDVR_CHECK_MSG(is_probability(config_.straggler_prob),
                  "straggler_prob must be in [0, 1], got "
                      << config_.straggler_prob);
  FEDVR_CHECK_MSG(is_probability(config_.uplink_loss_prob),
                  "uplink_loss_prob must be in [0, 1], got "
                      << config_.uplink_loss_prob);
  FEDVR_CHECK_MSG(config_.straggler_slowdown >= 1.0,
                  "straggler_slowdown must be >= 1, got "
                      << config_.straggler_slowdown);
  FEDVR_CHECK_MSG(config_.retry_backoff >= 1.0,
                  "retry_backoff must be >= 1, got " << config_.retry_backoff);
  FEDVR_CHECK_MSG(is_probability(config_.corrupt_prob),
                  "corrupt_prob must be in [0, 1], got "
                      << config_.corrupt_prob);
  FEDVR_CHECK_MSG(is_probability(config_.byzantine_fraction),
                  "byzantine_fraction must be in [0, 1], got "
                      << config_.byzantine_fraction);
  FEDVR_CHECK_MSG(config_.corrupt_nan_weight >= 0.0 &&
                      config_.corrupt_sign_weight >= 0.0 &&
                      config_.corrupt_scale_weight >= 0.0 &&
                      config_.corrupt_stale_weight >= 0.0,
                  "corruption kind weights must be >= 0");
  FEDVR_CHECK_MSG(!config_.corruption_enabled() ||
                      config_.corrupt_nan_weight + config_.corrupt_sign_weight +
                              config_.corrupt_scale_weight +
                              config_.corrupt_stale_weight >
                          0.0,
                  "corruption is enabled but every kind weight is zero");
  FEDVR_CHECK_MSG(std::isfinite(config_.corrupt_scale_factor) &&
                      config_.corrupt_scale_factor > 0.0,
                  "corrupt_scale_factor must be finite and > 0, got "
                      << config_.corrupt_scale_factor);
}

bool FaultModel::is_byzantine(std::uint64_t seed, std::size_t device) const {
  if (config_.byzantine_fraction <= 0.0) return false;
  // Round 0 is never drawn by per-round sampling (trainer rounds are
  // 1-based), so it is free for the device-level adversary draw.
  util::Rng rng = fault_stream(seed, device, 0);
  return rng.uniform() < config_.byzantine_fraction;
}

FaultEvent FaultModel::sample(std::uint64_t seed, std::size_t device,
                              std::size_t round) const {
  FaultEvent event;
  if (!enabled()) return event;
  // Dedicated (seed, device, round) stream under the kFaults purpose tag:
  // fault draws never perturb minibatch sampling, and vice versa.
  util::Rng rng = fault_stream(seed, device, round);
  // Fixed draw order (dropout, straggler, uplink attempts) keeps the event
  // a pure function of the coordinates for a given configuration.
  if (rng.uniform() < config_.dropout_prob) {
    event.dropped = true;
    return event;  // a crashed device neither computes nor transmits
  }
  if (rng.uniform() < config_.straggler_prob) {
    event.straggler = true;
    event.slowdown = config_.straggler_slowdown;
  }
  if (config_.uplink_loss_prob > 0.0) {
    // First attempt plus up to uplink_max_retries retransmissions; each is
    // lost independently. uniform() < 1.0 always holds, so loss_prob = 1
    // deterministically exhausts the retry budget.
    std::size_t attempt = 0;
    while (rng.uniform() < config_.uplink_loss_prob) {
      if (attempt == config_.uplink_max_retries) {
        event.uplink_failed = true;
        break;
      }
      ++attempt;
    }
    event.uplink_retries = attempt;
  }
  // Corruption draws come last and fire only when configured, so a config
  // without corruption reproduces the exact pre-corruption event sequence.
  if (config_.corruption_enabled() && !event.uplink_failed) {
    event.byzantine = is_byzantine(seed, device);
    const bool fires =
        event.byzantine ||
        (config_.corrupt_prob > 0.0 && rng.uniform() < config_.corrupt_prob);
    if (fires) {
      event.corruption = draw_corruption_kind(rng, config_);
    }
  }
  return event;
}

}  // namespace fedvr::fl
