#include "fl/event_engine.h"

#include <algorithm>

namespace fedvr::fl {

std::vector<ParticipantOutcome>& RoundSchedule::reset(std::size_t slots) {
  outcomes_.clear();
  outcomes_.resize(slots);
  arrivals_.clear();
  survivors_.clear();
  realized_round_time_ = 0.0;
  return outcomes_;
}

void RoundSchedule::build(std::optional<double> deadline) {
  // reserve() ahead of the loop: the push_backs below are amortization-free
  // once round capacity is warm (no-alloc-in-hot-loop).
  arrivals_.reserve(outcomes_.size());
  survivors_.reserve(outcomes_.size());
  for (std::size_t k = 0; k < outcomes_.size(); ++k) {
    ParticipantOutcome& oc = outcomes_[k];
    if (oc.crashed) {
      oc.missed_deadline = false;
      continue;
    }
    oc.missed_deadline = deadline && oc.completion_time > *deadline;
    // The server stops waiting at the deadline, however late the device
    // would have been.
    const double waited =
        oc.missed_deadline ? *deadline : oc.completion_time;
    realized_round_time_ = std::max(realized_round_time_, waited);
    arrivals_.push_back(ArrivalEvent{oc.completion_time, k});
    if (!oc.undelivered && !oc.missed_deadline) survivors_.push_back(k);
  }
  // (time, slot) key: slots are ascending device order, so ties resolve by
  // device id and the queue order is pool-size-independent.
  std::sort(arrivals_.begin(), arrivals_.end(),
            [](const ArrivalEvent& a, const ArrivalEvent& b) {
              if (a.time != b.time) return a.time < b.time;
              return a.slot < b.slot;
            });
}

}  // namespace fedvr::fl
