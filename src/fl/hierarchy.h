// Hierarchical (edge-aggregator → server) weighted-mean aggregation.
//
// At million-device scale the server cannot fold every update itself:
// production FL systems interpose a tree of edge aggregators, each merging
// the partial sums of `fanout` children, so one level is O(fanout) work per
// node, the tree is O(log_fanout N) deep, and nodes at a level merge in
// parallel. This file provides that topology behind the existing
// fl::Aggregator seam (tree_mean plugs into TrainerOptions::aggregator like
// any other rule).
//
// Determinism contract (same as every aggregator):
//   * the tree shape is a pure function of (survivor count, fanout): node b
//     at each level owns children [b·fanout, (b+1)·fanout), in order;
//   * each node merges its children SERIALLY in ascending order — only the
//     node→thread assignment varies with pool size, and nodes write
//     disjoint output slots — so results are bit-identical across pool
//     sizes 1/2/N;
//   * a single-level tree (fanout == 0, or survivors ≤ fanout) runs the
//     exact operation sequence of the default MeanAggregator, so flat
//     tree_mean traces are hash-identical to legacy weighted-mean traces
//     (pinned by tests). Deeper trees associate the same weighted sum
//     differently and produce different (equally valid) last-bit rounding.
#pragma once

#include <cstddef>
#include <memory>

#include "fl/aggregation.h"

namespace fedvr::fl {

struct TreeAggregatorOptions {
  /// Children per tree node. 0 = always flat (the degenerate single-level
  /// tree, bit-identical to AggregatorKind::kMean); 1 is invalid (the tree
  /// would never contract). Production-shaped values: 16–64.
  std::size_t fanout = 32;
  /// Merge the nodes of a level in parallel (bit-identical either way).
  bool parallel = true;

  /// Always-on validation (util/error.h).
  void validate() const;
};

/// Builds the tree weighted-mean aggregator ("tree_mean"). Stateless and
/// immutable — share it across trainers freely.
[[nodiscard]] std::shared_ptr<const Aggregator> make_tree_aggregator(
    TreeAggregatorOptions options = {});

}  // namespace fedvr::fl
