// Deterministic fault injection for the federated engine.
//
// The paper's Algorithm 1 assumes every device returns every round; real
// deployments (FedProx, Li et al.; probabilistically activated agents,
// Rostami & Kia) see crashes, stragglers, and flaky uplinks. A FaultModel
// samples one FaultEvent per (device, round):
//
//   * crash/dropout — the device never reports this round and is excluded
//     from line-12 aggregation (the survivors are reweighted to sum to 1);
//   * straggler     — the device computes `slowdown` times slower, which
//     multiplies the d_cmp term of its round time (timing_model.h);
//   * uplink loss   — each uplink transmission is lost independently with
//     `uplink_loss_prob`; the device retries up to `uplink_max_retries`
//     times with geometric backoff, each retry charging extra d_com
//     (FaultEvent::com_multiplier). A device that exhausts its retries is
//     excluded from aggregation like a crash, but still holds up the
//     synchronous barrier for its full (retried) round time.
//
// Determinism contract: sample() is a pure function of (seed, device,
// round) — the RNG is forked by coordinates exactly like the solver's
// minibatch stream (util::stream::kFaults) — so the realized fault sequence
// is bit-identical however devices are scheduled onto threads and for any
// thread-pool size.
#pragma once

#include <cstddef>
#include <cstdint>

namespace fedvr::fl {

struct FaultModelConfig {
  /// P(device crashes this round). The device does not report at all.
  double dropout_prob = 0.0;
  /// P(device computes `straggler_slowdown` times slower this round).
  double straggler_prob = 0.0;
  /// Compute-delay multiplier applied when the straggler event fires (>= 1).
  double straggler_slowdown = 4.0;
  /// P(one uplink transmission is lost). Each attempt is independent.
  double uplink_loss_prob = 0.0;
  /// Retransmissions a device may attempt after the first lost uplink.
  std::size_t uplink_max_retries = 3;
  /// Geometric backoff base: retry i (1-based) charges an extra
  /// retry_backoff^i * d_com of communication delay (>= 1).
  double retry_backoff = 2.0;
};

/// The realized fault outcome for one (device, round) pair.
struct FaultEvent {
  bool dropped = false;      // crashed: no uplink, no time charged
  bool straggler = false;    // slowdown fired this round
  double slowdown = 1.0;     // compute-delay multiplier (>= 1)
  std::size_t uplink_retries = 0;  // retransmissions after lost uplinks
  bool uplink_failed = false;      // every attempt lost: update discarded

  /// Uplink transmissions actually sent (first attempt + retries); used for
  /// communication-byte accounting. Zero only conceptually for a crash —
  /// callers skip crashed devices before charging uplink bytes.
  [[nodiscard]] std::size_t uplink_attempts() const {
    return uplink_retries + 1;
  }

  /// Communication-delay multiplier from uplink retries with geometric
  /// backoff: 1 + sum_{i=1..retries} backoff^i.
  [[nodiscard]] double com_multiplier(double backoff) const {
    double mult = 1.0;
    double step = 1.0;
    for (std::size_t i = 0; i < uplink_retries; ++i) {
      step *= backoff;
      mult += step;
    }
    return mult;
  }

  /// True when the device's update reaches the server (it may still miss a
  /// round deadline — the trainer layers that check on top).
  [[nodiscard]] bool delivers_update() const {
    return !dropped && !uplink_failed;
  }
};

/// Samples per-device, per-round fault events. Default-constructed models
/// are disabled: sample() always returns the no-fault event and the trainer
/// takes the exact pre-fault code path (traces are bit-identical to runs
/// that predate fault injection).
class FaultModel {
 public:
  /// Disabled model (all probabilities zero).
  FaultModel() = default;

  /// Validates the configuration (always-on: probabilities in [0, 1],
  /// straggler_slowdown >= 1, retry_backoff >= 1).
  explicit FaultModel(FaultModelConfig config);

  [[nodiscard]] const FaultModelConfig& config() const { return config_; }

  /// True when any fault has nonzero probability.
  [[nodiscard]] bool enabled() const {
    return config_.dropout_prob > 0.0 || config_.straggler_prob > 0.0 ||
           config_.uplink_loss_prob > 0.0;
  }

  /// The fault event for (device, round) under master seed `seed`. Pure:
  /// same coordinates, same event, regardless of call order or thread.
  /// Rounds are 1-based, matching the trainer's global iteration s.
  [[nodiscard]] FaultEvent sample(std::uint64_t seed, std::size_t device,
                                  std::size_t round) const;

 private:
  FaultModelConfig config_{};
};

}  // namespace fedvr::fl
