// Deterministic fault injection for the federated engine.
//
// The paper's Algorithm 1 assumes every device returns every round; real
// deployments (FedProx, Li et al.; probabilistically activated agents,
// Rostami & Kia) see crashes, stragglers, and flaky uplinks. A FaultModel
// samples one FaultEvent per (device, round):
//
//   * crash/dropout — the device never reports this round and is excluded
//     from line-12 aggregation (the survivors are reweighted to sum to 1);
//   * straggler     — the device computes `slowdown` times slower, which
//     multiplies the d_cmp term of its round time (timing_model.h);
//   * uplink loss   — each uplink transmission is lost independently with
//     `uplink_loss_prob`; the device retries up to `uplink_max_retries`
//     times with geometric backoff, each retry charging extra d_com
//     (FaultEvent::com_multiplier). A device that exhausts its retries is
//     excluded from aggregation like a crash, but still holds up the
//     synchronous barrier for its full (retried) round time;
//   * corruption    — the delivered update is garbage: NaN/Inf-poisoned,
//     sign-flipped, magnitude-scaled, or a stale replay of the device's
//     previous upload. Fired per round with `corrupt_prob`, or every round
//     by the `byzantine_fraction` of permanently adversarial devices (a
//     per-(seed, device) draw, stable across rounds). Corruption is a
//     transmission-layer fault: the server must detect and reject it
//     (fl/aggregation.h), not trust the update.
//
// Determinism contract: sample() is a pure function of (seed, device,
// round) — the RNG is forked by coordinates exactly like the solver's
// minibatch stream (util::stream::kFaults) — so the realized fault sequence
// is bit-identical however devices are scheduled onto threads and for any
// thread-pool size.
#pragma once

#include <cstddef>
#include <cstdint>

namespace fedvr::fl {

/// How a corrupted update is mangled before upload.
enum class CorruptionKind : std::uint8_t {
  kNone = 0,
  kNanInject,   // NaN / +Inf written into a deterministic coordinate stride
  kSignFlip,    // the update delta w_n - w̄^(s-1) is negated
  kScale,       // the delta is multiplied by corrupt_scale_factor
  kStaleReplay,  // the device re-sends its previously uploaded model
};

struct FaultModelConfig {
  /// P(device crashes this round). The device does not report at all.
  double dropout_prob = 0.0;
  /// P(device computes `straggler_slowdown` times slower this round).
  double straggler_prob = 0.0;
  /// Compute-delay multiplier applied when the straggler event fires (>= 1).
  double straggler_slowdown = 4.0;
  /// P(one uplink transmission is lost). Each attempt is independent.
  double uplink_loss_prob = 0.0;
  /// Retransmissions a device may attempt after the first lost uplink.
  std::size_t uplink_max_retries = 3;
  /// Geometric backoff base: retry i (1-based) charges an extra
  /// retry_backoff^i * d_com of communication delay (>= 1).
  double retry_backoff = 2.0;

  /// P(an otherwise-honest device's delivered update is corrupted this
  /// round) — transient bit rot, a buggy client build, a flaky NIC.
  double corrupt_prob = 0.0;
  /// Fraction of the fleet that is permanently Byzantine. Whether a device
  /// is Byzantine is a pure per-(seed, device) draw — stable across rounds,
  /// so the same devices attack every round (the regime quarantine exists
  /// for). Byzantine devices corrupt every update they deliver.
  double byzantine_fraction = 0.0;
  /// Relative weights of the corruption kinds drawn when corruption fires
  /// (normalized internally; must not all be zero if corruption can fire).
  double corrupt_nan_weight = 1.0;
  double corrupt_sign_weight = 1.0;
  double corrupt_scale_weight = 1.0;
  double corrupt_stale_weight = 1.0;
  /// Delta multiplier used by CorruptionKind::kScale (> 0, finite; large
  /// models a magnitude explosion, < 1 a vanishing update).
  double corrupt_scale_factor = 100.0;

  [[nodiscard]] bool corruption_enabled() const {
    return corrupt_prob > 0.0 || byzantine_fraction > 0.0;
  }
};

/// The realized fault outcome for one (device, round) pair.
struct FaultEvent {
  bool dropped = false;      // crashed: no uplink, no time charged
  bool straggler = false;    // slowdown fired this round
  double slowdown = 1.0;     // compute-delay multiplier (>= 1)
  std::size_t uplink_retries = 0;  // retransmissions after lost uplinks
  bool uplink_failed = false;      // every attempt lost: update discarded
  /// How (and whether) this round's delivered update is mangled. Sampled
  /// only for devices that deliver: a crashed or uplink-exhausted device
  /// has nothing to corrupt.
  CorruptionKind corruption = CorruptionKind::kNone;
  /// Device-level adversary flag (stable across rounds for a given seed).
  bool byzantine = false;

  [[nodiscard]] bool corrupted() const {
    return corruption != CorruptionKind::kNone;
  }

  /// Uplink transmissions actually sent (first attempt + retries); used for
  /// communication-byte accounting. Zero only conceptually for a crash —
  /// callers skip crashed devices before charging uplink bytes.
  [[nodiscard]] std::size_t uplink_attempts() const {
    return uplink_retries + 1;
  }

  /// Communication-delay multiplier from uplink retries with geometric
  /// backoff: 1 + sum_{i=1..retries} backoff^i.
  [[nodiscard]] double com_multiplier(double backoff) const {
    double mult = 1.0;
    double step = 1.0;
    for (std::size_t i = 0; i < uplink_retries; ++i) {
      step *= backoff;
      mult += step;
    }
    return mult;
  }

  /// True when the device's update reaches the server (it may still miss a
  /// round deadline — the trainer layers that check on top).
  [[nodiscard]] bool delivers_update() const {
    return !dropped && !uplink_failed;
  }
};

/// Samples per-device, per-round fault events. Default-constructed models
/// are disabled: sample() always returns the no-fault event and the trainer
/// takes the exact pre-fault code path (traces are bit-identical to runs
/// that predate fault injection).
class FaultModel {
 public:
  /// Disabled model (all probabilities zero).
  FaultModel() = default;

  /// Validates the configuration (always-on: probabilities in [0, 1],
  /// straggler_slowdown >= 1, retry_backoff >= 1, corruption weights
  /// nonnegative with a positive sum when corruption can fire).
  explicit FaultModel(FaultModelConfig config);

  [[nodiscard]] const FaultModelConfig& config() const { return config_; }

  /// True when any fault has nonzero probability.
  [[nodiscard]] bool enabled() const {
    return config_.dropout_prob > 0.0 || config_.straggler_prob > 0.0 ||
           config_.uplink_loss_prob > 0.0 || config_.corruption_enabled();
  }

  /// The fault event for (device, round) under master seed `seed`. Pure:
  /// same coordinates, same event, regardless of call order or thread.
  /// Rounds are 1-based, matching the trainer's global iteration s.
  /// Corruption draws happen after (and conditionally on) the legacy
  /// crash/straggler/uplink draws, so enabling corruption never perturbs a
  /// pre-existing fault sequence.
  [[nodiscard]] FaultEvent sample(std::uint64_t seed, std::size_t device,
                                  std::size_t round) const;

  /// Whether `device` is permanently Byzantine under `seed`: a pure
  /// per-(seed, device) draw against byzantine_fraction, independent of the
  /// round (uses the round-0 slot of the fault stream, which per-round
  /// sampling never touches — trainer rounds are 1-based).
  [[nodiscard]] bool is_byzantine(std::uint64_t seed,
                                  std::size_t device) const;

 private:
  FaultModelConfig config_{};
};

}  // namespace fedvr::fl
