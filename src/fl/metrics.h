// Per-round metrics and the training trace written by every experiment.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace fedvr::fl {

/// Measured per-phase wall-clock seconds, cumulative since round 1 (same
/// convention as RoundMetrics::wall_seconds). Populated by the trainer when
/// TrainerOptions::observability is enabled.
struct PhaseTimings {
  double broadcast = 0.0;    // participant selection + model distribution
  double local_solve = 0.0;  // device-parallel local solver execution
  double aggregate = 0.0;    // weighted averaging + cost accounting
  double eval = 0.0;         // global loss / accuracy evaluation

  [[nodiscard]] double sum() const {
    return broadcast + local_solve + aggregate + eval;
  }
};

/// Measured counterpart of the §4.3 analytic TimingModel, estimated from
/// profiled rounds: d_com ≈ mean broadcast+aggregate seconds per round,
/// d_cmp ≈ mean device solve seconds per inner iteration. Lets benches
/// compare eq. 19's predicted round time against what actually happened.
struct MeasuredTiming {
  double d_com = 0.0;
  double d_cmp = 0.0;

  [[nodiscard]] double round_time(std::size_t tau) const {
    return d_com + d_cmp * static_cast<double>(tau);
  }
};

struct RoundMetrics {
  std::size_t round = 0;          // global iteration s (1-based)
  double train_loss = 0.0;        // global objective F̄(w̄^(s)) (eq. 2)
  double test_accuracy = 0.0;     // pooled-test accuracy
  double grad_norm_sq = -1.0;     // ||∇F̄(w̄^(s))||² when evaluated, else -1
  double model_time = 0.0;        // cumulative analytic time (eq. 19)
  double wall_seconds = 0.0;      // cumulative wall-clock
  double mean_local_theta = -1.0; // measured θ across devices (diagnostics)

  // Cost accounting (cumulative since round 1). Bytes are measured from
  // serialized comm::Message sizes (header + index section + payload), not
  // analytic estimates: uplink counts every transmission that crossed the
  // wire (retries and lost attempts included), downlink counts one dense
  // model broadcast per scheduled participant.
  std::size_t comm_bytes = 0;        // uplink_bytes + downlink_bytes
  std::size_t uplink_bytes = 0;      // device -> server
  std::size_t downlink_bytes = 0;    // server -> device
  std::size_t sample_grad_evals = 0; // per-sample gradient evaluations

  // Fault accounting (cumulative since round 1; all zero when the run's
  // FaultModel is disabled and no round_deadline is set). dropped_devices
  // and undelivered_updates were one conflated counter before the v2 CSV
  // schema (DESIGN.md §11): "dropped" now means crashes ONLY.
  std::size_t dropped_devices = 0;   // crashed participants (computed
                                     // nothing, transmitted nothing)
  std::size_t undelivered_updates = 0; // participants that computed and
                                       // transmitted but whose update never
                                       // reached aggregation: deadline miss
                                       // or uplink exhaustion (counted once
                                       // when both apply)
  std::size_t straggler_devices = 0; // straggler slowdown events
  std::size_t uplink_retries = 0;    // uplink retransmissions
  std::size_t deadline_misses = 0;   // deadline-missed devices (a subset of
                                     // undelivered_updates)

  // Corruption & server-defense accounting (cumulative since round 1; all
  // zero when no update corruption fires and no defense rejects anything):
  std::size_t corrupted_updates = 0;   // delivered updates the fault layer
                                       // corrupted (NaN/sign/scale/stale)
  std::size_t rejected_updates = 0;    // updates rejected by server-side
                                       // validation before aggregation
  std::size_t quarantined_device_rounds = 0; // device-rounds skipped because
                                             // the device was quarantined
                                             // (one device quarantined for 5
                                             // rounds counts 5)

  /// Realized synchronous-barrier time of THIS round (not cumulative): the
  /// max over participants' fault-adjusted round times, capped at
  /// round_deadline when one is set. Equals the analytic per-round
  /// eq. 19 time when faults are off.
  double realized_round_time = 0.0;

  /// FNV-1a hash of w̄^(s) (check::hash_span). Equal-seed runs must agree
  /// round-for-round; a divergence pinpoints the first nondeterministic one.
  std::uint64_t param_hash = 0;

  /// Measured phase timings (cumulative); present only when the trainer ran
  /// with observability enabled.
  std::optional<PhaseTimings> measured;
};

struct TrainingTrace {
  std::string algorithm;
  std::vector<RoundMetrics> rounds;
  /// The global model w̄^(T) after the last round — checkpoint or deploy it
  /// (see nn::save_parameters).
  std::vector<double> final_parameters;
  /// FNV-1a hash of final_parameters — the determinism-audit fingerprint.
  std::uint64_t final_param_hash = 0;

  /// Measured timing-model estimate (observability runs only): compare
  /// measured_timing->round_time(tau) against TimingModel::round_time(tau).
  std::optional<MeasuredTiming> measured_timing;

  [[nodiscard]] bool empty() const { return rounds.empty(); }
  [[nodiscard]] const RoundMetrics& back() const { return rounds.back(); }

  /// Best test accuracy over the trace and the first round that achieved it.
  [[nodiscard]] std::pair<double, std::size_t> best_accuracy() const;

  // NaN policy for the loss statistics below: a NaN round loss is treated
  // as +infinity (maximally bad) — it can never be "the minimum", never
  // counts as reaching a target, and forces the maximum to +inf — and any
  // NaN anywhere in the trace makes diverged() true. NaN comparisons are
  // all false, so without this policy a NaN-poisoned trace sails through
  // every detector (the worst possible trace reads as "fine").

  /// First round whose train loss drops to `target` or below; nullopt if
  /// never reached. Used for time-to-target comparisons. NaN rounds never
  /// qualify.
  [[nodiscard]] std::optional<std::size_t> first_round_below_loss(
      double target) const;

  /// Minimum training loss over the trace (NaN rounds count as +inf).
  [[nodiscard]] double min_train_loss() const;

  /// Maximum training loss over the trace (spikes reveal instability; any
  /// NaN round makes this +inf).
  [[nodiscard]] double max_train_loss() const;

  /// True when the loss curve exploded: any NaN loss anywhere in the trace,
  /// or a tail that grew past `factor` times the starting loss — the
  /// divergence detector used by the Fig. 4 mu-sweep.
  [[nodiscard]] bool diverged(double factor = 2.0) const;

  /// Writes all rounds to a CSV at `path`.
  void write_csv(const std::string& path) const;
};

}  // namespace fedvr::fl
