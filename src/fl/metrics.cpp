#include "fl/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/csv.h"
#include "util/error.h"

namespace fedvr::fl {

std::pair<double, std::size_t> TrainingTrace::best_accuracy() const {
  FEDVR_CHECK_MSG(!rounds.empty(), "empty training trace");
  double best = -1.0;
  std::size_t best_round = 0;
  for (const auto& r : rounds) {
    if (r.test_accuracy > best) {
      best = r.test_accuracy;
      best_round = r.round;
    }
  }
  return {best, best_round};
}

namespace {
/// The NaN policy shared by the loss statistics: a NaN round loss reads as
/// +inf (maximally bad), so min/max/threshold comparisons — where NaN would
/// silently compare false — behave as documented in metrics.h.
double nan_as_inf(double loss) {
  return std::isnan(loss) ? std::numeric_limits<double>::infinity() : loss;
}
}  // namespace

std::optional<std::size_t> TrainingTrace::first_round_below_loss(
    double target) const {
  for (const auto& r : rounds) {
    if (nan_as_inf(r.train_loss) <= target) return r.round;
  }
  return std::nullopt;
}

double TrainingTrace::min_train_loss() const {
  FEDVR_CHECK_MSG(!rounds.empty(), "empty training trace");
  double best = std::numeric_limits<double>::infinity();
  for (const auto& r : rounds) best = std::min(best, nan_as_inf(r.train_loss));
  return best;
}

double TrainingTrace::max_train_loss() const {
  FEDVR_CHECK_MSG(!rounds.empty(), "empty training trace");
  double worst = -std::numeric_limits<double>::infinity();
  for (const auto& r : rounds) {
    worst = std::max(worst, nan_as_inf(r.train_loss));
  }
  return worst;
}

bool TrainingTrace::diverged(double factor) const {
  // A NaN loss at ANY round is divergence, full stop. The previous
  // last-round-only check let a mid-trace NaN (or a NaN starting loss, which
  // makes `last > factor * first` vacuously false) pass the detector.
  for (const auto& r : rounds) {
    if (std::isnan(r.train_loss)) return true;
  }
  if (rounds.size() < 2) return false;
  const double first = rounds.front().train_loss;
  const double last = rounds.back().train_loss;
  return !std::isfinite(last) || last > factor * first;
}

void TrainingTrace::write_csv(const std::string& path) const {
  // CSV schema v2 (DESIGN.md §11): dropped_devices narrowed to crashes
  // only, quarantined_devices renamed to quarantined_device_rounds (it
  // always counted device-rounds), and undelivered_updates appended. Column
  // order is otherwise unchanged.
  util::CsvWriter csv(path,
                      {"algorithm", "round", "train_loss", "test_accuracy",
                       "grad_norm_sq", "model_time", "wall_seconds",
                       "mean_local_theta", "comm_bytes", "sample_grad_evals",
                       "param_hash", "dropped_devices", "straggler_devices",
                       "uplink_retries", "deadline_misses",
                       "realized_round_time", "t_broadcast", "t_local_solve",
                       "t_aggregate", "t_eval", "corrupted_updates",
                       "rejected_updates", "quarantined_device_rounds",
                       "uplink_bytes", "downlink_bytes",
                       "undelivered_updates"});
  for (const auto& r : rounds) {
    // Measured phase columns are -1 when the run was not profiled, matching
    // the grad_norm_sq "not evaluated" convention.
    const PhaseTimings timings =
        r.measured.value_or(PhaseTimings{-1.0, -1.0, -1.0, -1.0});
    csv.builder()
        .add(algorithm)
        .add(r.round)
        .add(r.train_loss)
        .add(r.test_accuracy)
        .add(r.grad_norm_sq)
        .add(r.model_time)
        .add(r.wall_seconds)
        .add(r.mean_local_theta)
        .add(r.comm_bytes)
        .add(r.sample_grad_evals)
        .add(static_cast<std::size_t>(r.param_hash))
        .add(r.dropped_devices)
        .add(r.straggler_devices)
        .add(r.uplink_retries)
        .add(r.deadline_misses)
        .add(r.realized_round_time)
        .add(timings.broadcast)
        .add(timings.local_solve)
        .add(timings.aggregate)
        .add(timings.eval)
        .add(r.corrupted_updates)
        .add(r.rejected_updates)
        .add(r.quarantined_device_rounds)
        .add(r.uplink_bytes)
        .add(r.downlink_bytes)
        .add(r.undelivered_updates)
        .commit();
  }
}

}  // namespace fedvr::fl
