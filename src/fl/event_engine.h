// The discrete-event round schedule: a round as timestamps, not a barrier.
//
// The synchronous engines never actually wait on a clock — a "round" is
// model time, and every per-device completion time is a pure function of
// (timing model, fault event). This class makes that explicit: callers fill
// one ParticipantOutcome per scheduled participant (device id, fault-
// adjusted completion timestamp, crashed / undelivered flags), and build()
// derives everything the server's event loop needs —
//
//   * deadline misses (completion after the cutoff),
//   * the arrival order (updates sorted by completion time — the order the
//     server would drain its event queue),
//   * the survivor set (participants whose update reaches the server),
//   * the realized round time (when the server stops waiting: the last
//     non-crashed arrival, capped at the deadline).
//
// Determinism: outcomes are filled in ascending-device slot order from pure
// per-(seed, device, round) inputs, arrivals sort with a (time, slot) key,
// and survivors keep ascending slot order — nothing here depends on thread
// scheduling. Capacity is reused across rounds (reset() keeps buffers), so
// a steady-state round allocates nothing and costs O(participants), however
// large the fleet is.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

namespace fedvr::fl {

/// One scheduled participant's round, from the server's point of view.
struct ParticipantOutcome {
  std::size_t device = 0;
  /// Fault-adjusted completion timestamp (d_com·mult + d_cmp·τ·slowdown in
  /// the trainer's units). Meaningless when crashed.
  double completion_time = 0.0;
  /// Crash/dropout: computed nothing, transmitted nothing, holds up nothing.
  bool crashed = false;
  /// Transmitted but never arrived (uplink exhaustion): charged time and
  /// bytes, excluded from aggregation.
  bool undelivered = false;
  /// Set by build(): completed after the round deadline.
  bool missed_deadline = false;
};

/// One update hitting the server, in arrival order.
struct ArrivalEvent {
  double time = 0.0;
  std::size_t slot = 0;  // index into outcomes()
};

class RoundSchedule {
 public:
  /// Starts a new round with `slots` participants and returns the outcome
  /// array for the caller to fill (device, completion_time, crashed,
  /// undelivered — in ascending device order). Reuses capacity.
  std::vector<ParticipantOutcome>& reset(std::size_t slots);

  /// Derives deadline misses, arrival order, survivors, and the realized
  /// round time from the filled outcomes. Call once per reset().
  void build(std::optional<double> deadline);

  [[nodiscard]] const std::vector<ParticipantOutcome>& outcomes() const {
    return outcomes_;
  }
  [[nodiscard]] const ParticipantOutcome& outcome(std::size_t k) const {
    return outcomes_[k];
  }

  /// Non-crashed participants' completions, sorted by (time, slot) — the
  /// server's event queue for this round. Includes undelivered and
  /// deadline-missed transmissions (they crossed the wire).
  [[nodiscard]] std::span<const ArrivalEvent> arrivals() const {
    return arrivals_;
  }

  /// Slots whose update reaches the server in time (not crashed, not
  /// undelivered, not past the deadline), ascending — the set line-12
  /// aggregation averages over.
  [[nodiscard]] std::span<const std::size_t> survivors() const {
    return survivors_;
  }

  /// When the server stops waiting: max over non-crashed participants of
  /// min(completion, deadline); 0 when nothing reports.
  [[nodiscard]] double realized_round_time() const {
    return realized_round_time_;
  }

 private:
  std::vector<ParticipantOutcome> outcomes_;
  std::vector<ArrivalEvent> arrivals_;
  std::vector<std::size_t> survivors_;
  double realized_round_time_ = 0.0;
};

}  // namespace fedvr::fl
