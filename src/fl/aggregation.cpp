#include "fl/aggregation.h"

#include <algorithm>
#include <array>
#include <cmath>

#include "tensor/vecops.h"
#include "util/error.h"
#include "util/thread_pool.h"

namespace fedvr::fl {

namespace {

/// Coordinate chunk processed per pool task. Fixed (never pool-sized) so the
/// per-coordinate work — and hence every rounding decision — is identical
/// for any thread count; only the chunk→thread assignment varies.
constexpr std::size_t kCoordChunk = 256;

/// Runs fn(j) for every coordinate j, chunk-parallel with disjoint writes.
template <typename Fn>
void for_each_coordinate(std::size_t dim, const Fn& fn) {
  const std::size_t nchunks = (dim + kCoordChunk - 1) / kCoordChunk;
  util::ThreadPool::global().parallel_for(0, nchunks, [&](std::size_t c) {
    const std::size_t lo = c * kCoordChunk;
    const std::size_t hi = std::min(lo + kCoordChunk, dim);
    for (std::size_t j = lo; j < hi; ++j) fn(j);
  });
}

/// Collects the finite values of coordinate j across updates, in update
/// (ascending device) order. Returns the count written to `vals`.
std::size_t finite_coordinate_values(
    std::span<const std::span<const double>> updates, std::size_t j,
    std::span<double> vals) {
  std::size_t count = 0;
  for (const auto& u : updates) {
    if (std::isfinite(u[j])) vals[count++] = u[j];
  }
  return count;
}

/// Median of vals[0..count): sorts in place; even counts average the two
/// middle values (ascending order, so the sum is order-fixed).
double median_in_place(std::span<double> vals, std::size_t count) {
  std::sort(vals.begin(), vals.begin() + static_cast<std::ptrdiff_t>(count));
  const std::size_t mid = count / 2;
  if (count % 2 == 1) return vals[mid];
  return 0.5 * (vals[mid - 1] + vals[mid]);
}

/// The survivor-reweighted weighted average the trainer has always run:
/// weight_sum accumulated in update order, then fill(0) + one
/// accumulate_weighted per update in the same order. Any change to this
/// sequence of operations breaks the bit-identity of pre-seam traces.
class MeanAggregator final : public Aggregator {
 public:
  [[nodiscard]] std::string_view name() const override { return "mean"; }

  void aggregate(std::span<const double> /*anchor*/,
                 std::span<const std::span<const double>> updates,
                 std::span<const double> weights,
                 std::span<double> out) const override {
    double weight_sum = 0.0;
    for (double w : weights) weight_sum += w;
    tensor::fill(out, 0.0);
    for (std::size_t i = 0; i < updates.size(); ++i) {
      tensor::accumulate_weighted(weights[i] / weight_sum, updates[i], out);
    }
  }
};

/// Coordinate-wise median, ignoring non-finite values per coordinate (a
/// NaN-poisoned update simply loses its vote at the poisoned coordinates).
/// Unweighted: a Byzantine device cannot buy influence with a large D_n.
class MedianAggregator final : public Aggregator {
 public:
  [[nodiscard]] std::string_view name() const override { return "median"; }

  void aggregate(std::span<const double> anchor,
                 std::span<const std::span<const double>> updates,
                 std::span<const double> /*weights*/,
                 std::span<double> out) const override {
    for_each_coordinate(anchor.size(), [&](std::size_t j) {
      std::array<double, 64> small;
      std::vector<double> large;
      std::span<double> vals(small);
      if (updates.size() > small.size()) {
        large.resize(updates.size());
        vals = large;
      }
      const std::size_t count = finite_coordinate_values(updates, j, vals);
      out[j] = count == 0 ? anchor[j] : median_in_place(vals, count);
    });
  }
};

/// Coordinate-wise trimmed mean: sort the finite values, drop
/// floor(trim_fraction * count) from each tail, average the rest in
/// ascending order. trim_fraction = 0 is the unweighted coordinate mean.
class TrimmedMeanAggregator final : public Aggregator {
 public:
  explicit TrimmedMeanAggregator(double trim_fraction)
      : trim_fraction_(trim_fraction) {}

  [[nodiscard]] std::string_view name() const override {
    return "trimmed_mean";
  }

  void aggregate(std::span<const double> anchor,
                 std::span<const std::span<const double>> updates,
                 std::span<const double> /*weights*/,
                 std::span<double> out) const override {
    for_each_coordinate(anchor.size(), [&](std::size_t j) {
      std::array<double, 64> small;
      std::vector<double> large;
      std::span<double> vals(small);
      if (updates.size() > small.size()) {
        large.resize(updates.size());
        vals = large;
      }
      const std::size_t count = finite_coordinate_values(updates, j, vals);
      if (count == 0) {
        out[j] = anchor[j];
        return;
      }
      std::sort(vals.begin(),
                vals.begin() + static_cast<std::ptrdiff_t>(count));
      // trim < 0.5 guarantees count - 2k >= 1.
      const std::size_t k = static_cast<std::size_t>(
          trim_fraction_ * static_cast<double>(count));
      double sum = 0.0;
      for (std::size_t i = k; i < count - k; ++i) sum += vals[i];
      out[j] = sum / static_cast<double>(count - 2 * k);
    });
  }

 private:
  double trim_fraction_;
};

/// Weighted mean of norm-clipped deltas: each finite update contributes
/// anchor + min(1, c/||δ_n||)·δ_n with its D_n/D weight. Bounds any single
/// device's influence on the step to the clip norm; with the adaptive bound
/// (median survivor norm) a magnitude-exploded update is shrunk to an
/// honest-sized one.
class NormClippedMeanAggregator final : public Aggregator {
 public:
  explicit NormClippedMeanAggregator(double clip_norm)
      : clip_norm_(clip_norm) {}

  [[nodiscard]] std::string_view name() const override { return "norm_clip"; }

  void aggregate(std::span<const double> anchor,
                 std::span<const std::span<const double>> updates,
                 std::span<const double> weights,
                 std::span<double> out) const override {
    const std::size_t n = updates.size();
    // Delta norms in update order; non-finite updates (possible only when
    // reject_non_finite is off) are excluded from both the bound estimate
    // and the average rather than poisoning them.
    std::vector<double> norms(n);
    std::vector<bool> finite(n);
    double weight_sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double d2 = tensor::squared_distance(updates[i], anchor);
      finite[i] = std::isfinite(d2);
      norms[i] = finite[i] ? std::sqrt(d2) : 0.0;
      if (finite[i]) weight_sum += weights[i];
    }
    if (weight_sum <= 0.0) {
      tensor::copy(anchor, out);
      return;
    }
    double bound = clip_norm_;
    if (bound <= 0.0) {
      std::vector<double> finite_norms;
      finite_norms.reserve(n);
      for (std::size_t i = 0; i < n; ++i) {
        if (finite[i]) finite_norms.push_back(norms[i]);
      }
      bound = median_in_place(finite_norms, finite_norms.size());
    }
    tensor::copy(anchor, out);
    std::vector<double> delta(anchor.size());
    for (std::size_t i = 0; i < n; ++i) {
      if (!finite[i]) continue;
      // norms[i] <= bound (including the 0/0 case) leaves δ unscaled.
      const double clip = norms[i] > bound ? bound / norms[i] : 1.0;
      tensor::sub(updates[i], anchor, delta);
      tensor::axpy(weights[i] / weight_sum * clip, delta, out);
    }
  }

 private:
  double clip_norm_;
};

constexpr std::array<std::string_view, 4> kAggregatorNames = {
    "mean", "median", "trimmed_mean", "norm_clip"};

}  // namespace

void DefenseOptions::validate() const {
  FEDVR_CHECK_MSG(std::isfinite(update_norm_bound) && update_norm_bound >= 0.0,
                  "update_norm_bound must be finite and >= 0 (0 disables), "
                  "got " << update_norm_bound);
  FEDVR_CHECK_MSG(!quarantine_enabled() || quarantine_rounds >= 1,
                  "quarantine_rounds must be >= 1 when quarantine_strikes > "
                  "0, got " << quarantine_rounds);
}

std::shared_ptr<const Aggregator> make_aggregator(AggregatorKind kind,
                                                  AggregatorOptions options) {
  FEDVR_CHECK_MSG(options.trim_fraction >= 0.0 && options.trim_fraction < 0.5,
                  "trim_fraction must be in [0, 0.5), got "
                      << options.trim_fraction);
  FEDVR_CHECK_MSG(std::isfinite(options.clip_norm),
                  "clip_norm must be finite (<= 0 selects the adaptive "
                  "median bound), got " << options.clip_norm);
  switch (kind) {
    case AggregatorKind::kMean:
      return std::make_shared<MeanAggregator>();
    case AggregatorKind::kMedian:
      return std::make_shared<MedianAggregator>();
    case AggregatorKind::kTrimmedMean:
      return std::make_shared<TrimmedMeanAggregator>(options.trim_fraction);
    case AggregatorKind::kNormClippedMean:
      return std::make_shared<NormClippedMeanAggregator>(options.clip_norm);
  }
  FEDVR_CHECK_MSG(false, "unknown AggregatorKind "
                             << static_cast<int>(kind));
  return nullptr;  // unreachable
}

std::optional<AggregatorKind> aggregator_kind_from_name(
    std::string_view name) {
  for (std::size_t i = 0; i < kAggregatorNames.size(); ++i) {
    if (name == kAggregatorNames[i]) {
      return static_cast<AggregatorKind>(i);
    }
  }
  return std::nullopt;
}

std::span<const std::string_view> aggregator_names() {
  return kAggregatorNames;
}

}  // namespace fedvr::fl
