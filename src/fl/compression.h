// DEPRECATED forwarding header: compression moved into the comm subsystem
// (src/comm/compression.h) when the wire format landed — compressors are a
// stage of the comm::Channel uplink pipeline, not a trainer bolt-on.
// Include "comm/compression.h" (or "comm/channel.h") in new code; the
// aliases below keep existing call sites compiling.
#pragma once

#include "comm/compression.h"

namespace fedvr::fl {

using Compressor = comm::Compressor;
using TopKCompressor = comm::TopKCompressor;
using RandKCompressor = comm::RandKCompressor;

}  // namespace fedvr::fl
