#include "fl/trainer.h"

#include <algorithm>
#include <fstream>
#include <limits>
#include <numeric>
#include <unordered_map>

#include "check/check.h"
#include "fl/event_engine.h"
#include "obs/obs.h"
#include "opt/workspace.h"
#include "obs/profiler.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "tensor/vecops.h"
#include "util/error.h"
#include "util/log.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace fedvr::fl {

namespace {

// Flips the global obs collection flag for the duration of a profiled run
// and restores the previous state on exit (exceptions included).
class ScopedObsEnable {
 public:
  explicit ScopedObsEnable(bool enable)
      : active_(enable), previous_(enable ? obs::set_enabled(true) : false) {}
  ScopedObsEnable(const ScopedObsEnable&) = delete;
  ScopedObsEnable& operator=(const ScopedObsEnable&) = delete;
  ~ScopedObsEnable() {
    if (active_) obs::set_enabled(previous_);
  }

 private:
  bool active_;
  bool previous_;
};

}  // namespace

Trainer::Trainer(std::shared_ptr<const nn::Model> model,
                 const data::FederatedDataset& fed, TrainerOptions options)
    : Trainer(std::move(model),
              std::make_shared<const data::InMemoryFederation>(fed),
              std::move(options)) {}

Trainer::Trainer(std::shared_ptr<const nn::Model> model,
                 std::shared_ptr<const data::Federation> fed,
                 TrainerOptions options)
    : model_(std::move(model)), fed_(std::move(fed)), options_(options) {
  // All constructor validation is ALWAYS-ON (util/error.h macros, not the
  // FEDVR_CHECKS-gated layer): a Release/no-checks build must reject a
  // malformed configuration loudly, not train garbage. Tested under
  // check::set_enabled(false).
  FEDVR_CHECK(model_ != nullptr);
  FEDVR_CHECK(fed_ != nullptr);
  FEDVR_CHECK_MSG(fed_->num_devices() > 0, "need at least one device");
  FEDVR_CHECK_MSG(options_.rounds >= 1, "rounds must be >= 1, got 0");
  FEDVR_CHECK_MSG(options_.eval_every >= 1,
                  "eval_every must be >= 1 (0 would evaluate nothing and "
                  "divide by zero on the eval cadence)");
  if (options_.devices_per_round) {
    FEDVR_CHECK_MSG(*options_.devices_per_round >= 1 &&
                        *options_.devices_per_round <= fed_->num_devices(),
                    "devices_per_round must be in [1, "
                        << fed_->num_devices() << "], got "
                        << *options_.devices_per_round);
  }
  options_.defense.validate();
  // Adopt the deprecated pre-comm-seam compressor knob into the channel;
  // configuring both is ambiguous and rejected.
  if (options_.uplink_compressor) {
    FEDVR_CHECK_MSG(options_.comm.compressor == nullptr,
                    "set either TrainerOptions::comm.compressor or the "
                    "deprecated uplink_compressor, not both");
    options_.comm.compressor = options_.uplink_compressor;
  }
  options_.comm.validate();
  FEDVR_CHECK_MSG(options_.per_device_timing.empty() ||
                      options_.per_device_timing.size() == fed_->num_devices(),
                  "per_device_timing needs one entry per device");
  // Fail fast on malformed timing models (always-on validation — a release
  // build must reject d_com <= 0 here, not silently produce garbage time).
  options_.timing.validate();
  for (const auto& tm : options_.per_device_timing) tm.validate();
  if (options_.round_deadline) {
    FEDVR_CHECK_MSG(*options_.round_deadline > 0.0,
                    "round_deadline must be positive, got "
                        << *options_.round_deadline);
  }
  // Shard-size validation goes through device_train_size (O(1) per device,
  // no materialization): an empty shard would divide by zero in the local
  // solver's sampling and produce a zero aggregation weight.
  for (std::size_t n = 0; n < fed_->num_devices(); ++n) {
    FEDVR_CHECK_MSG(fed_->device_train_size(n) > 0,
                    "device " << n << " has no training data");
  }
}

// The eval path dominates wall time at eval_every=1, so all three metrics
// fan out across the pool. Determinism across pool sizes holds because
// every floating-point reduction happens serially in ascending device (or
// chunk) order over per-device partials — only the independent per-device
// work is scheduled onto threads. Global metrics are inherently O(fleet):
// sampled large-fleet runs keep eval_every high (or rely on param hashes)
// instead of paying a million-shard materialization per round.

double Trainer::global_loss(std::span<const double> w) const {
  const std::size_t num_devices = fed_->num_devices();
  std::vector<double> per_device(num_devices, 0.0);
  std::vector<double> weights(num_devices, 0.0);
  util::ThreadPool::global().parallel_for(0, num_devices, [&](std::size_t n) {
    data::Dataset scratch;
    per_device[n] = model_->full_loss(w, fed_->train(n, scratch));
    weights[n] = fed_->weight(n);
  });
  // Σ_n p_n F_n via the sanctioned serial ascending reduction — same
  // accumulation order as the historical inline loop, so traces stay
  // hash-identical.
  return tensor::weighted_sum(weights, per_device);
}

double Trainer::global_grad_norm_sq(std::span<const double> w) const {
  const std::size_t dim = model_->num_parameters();
  const std::size_t num_devices = fed_->num_devices();
  // Per-device gradients land in wave-local scratch (kWave * dim bounds the
  // footprint however many devices there are) and are folded into the total
  // serially, ascending by device index.
  constexpr std::size_t kWave = 4;
  const std::size_t wave = std::min(kWave, num_devices);
  std::vector<double> total(dim, 0.0);
  std::vector<double> scratch(wave * dim);
  for (std::size_t base = 0; base < num_devices; base += wave) {
    const std::size_t count = std::min(wave, num_devices - base);
    util::ThreadPool::global().parallel_for(0, count, [&](std::size_t i) {
      data::Dataset ds_scratch;
      (void)model_->full_gradient(
          w, fed_->train(base + i, ds_scratch),
          std::span<double>(scratch).subspan(i * dim, dim));
    });
    for (std::size_t i = 0; i < count; ++i) {
      tensor::axpy(fed_->weight(base + i),
                   std::span<const double>(scratch).subspan(i * dim, dim),
                   total);
    }
  }
  return tensor::nrm2_squared(total);
}

double Trainer::test_accuracy(std::span<const double> w) const {
  const data::Dataset& pooled = fed_->pooled_test();
  FEDVR_CHECK(!pooled.empty());
  const std::size_t size = pooled.size();
  // Fixed-size chunks (never pool-sized) keep the per-sample forward-pass
  // batching identical across pool sizes; the correct-count reduction is
  // integer arithmetic, so it is order-independent anyway.
  constexpr std::size_t kChunk = 256;
  const std::size_t nchunks = (size + kChunk - 1) / kChunk;
  const std::vector<std::size_t> indices = nn::all_indices(size);
  std::vector<std::size_t> predicted(size);
  util::ThreadPool::global().parallel_for(0, nchunks, [&](std::size_t c) {
    const std::size_t lo = c * kChunk;
    const std::size_t len = std::min(kChunk, size - lo);
    model_->predict(w, pooled,
                    std::span<const std::size_t>(indices).subspan(lo, len),
                    std::span<std::size_t>(predicted).subspan(lo, len));
  });
  std::size_t correct = 0;
  for (std::size_t i = 0; i < size; ++i) {
    if (predicted[i] == static_cast<std::size_t>(pooled.label(i))) {
      ++correct;
    }
  }
  return static_cast<double>(correct) / static_cast<double>(size);
}

TrainingTrace Trainer::run(const opt::LocalSolver& solver,
                           const std::string& name,
                           std::optional<std::vector<double>> w0) const {
  return run_impl([&solver](std::size_t) -> const opt::LocalSolver& {
                    return solver;
                  },
                  solver.options().tau, name, std::move(w0));
}

TrainingTrace Trainer::run(std::span<const opt::LocalSolver> solvers,
                           const std::string& name,
                           std::optional<std::vector<double>> w0) const {
  FEDVR_CHECK_MSG(solvers.size() == fed_->num_devices(),
                  "got " << solvers.size() << " solvers for "
                         << fed_->num_devices() << " devices");
  // Synchronous rounds wait for the slowest device.
  std::size_t max_tau = 0;
  for (const auto& s : solvers) {
    max_tau = std::max(max_tau, s.options().tau);
  }
  return run_impl([solvers](std::size_t device) -> const opt::LocalSolver& {
                    return solvers[device];
                  },
                  max_tau, name, std::move(w0));
}

TrainingTrace Trainer::run_impl(
    const std::function<const opt::LocalSolver&(std::size_t)>& solver_for,
    std::size_t timing_tau, const std::string& name,
    std::optional<std::vector<double>> w0) const {
  const std::size_t dim = model_->num_parameters();
  const std::size_t num_devices = fed_->num_devices();

  std::vector<double> w_global;
  if (w0.has_value()) {
    FEDVR_CHECK(w0->size() == dim);
    w_global = std::move(*w0);
  } else {
    util::Rng init_rng =
        util::fork(options_.seed, 0, 0, util::stream::kInit);
    w_global = model_->initial_parameters(init_rng);
  }

  TrainingTrace trace;
  trace.algorithm = name;
  util::Stopwatch wall;
  double model_time = 0.0;

  const bool obs_on = options_.observability.enabled;
  ScopedObsEnable obs_guard(obs_on);
  obs::RoundProfiler profiler(obs_on);

  // Early stop can trigger at round 0: a run whose starting model already
  // meets target_accuracy pays for no rounds at all. (The target check used
  // to live only inside the round loop, so such a run still trained a full
  // round before stopping.)
  bool target_reached = false;
  if (options_.eval_initial) {
    RoundMetrics m;
    m.round = 0;
    m.train_loss = global_loss(w_global);
    m.test_accuracy = test_accuracy(w_global);
    if (options_.eval_grad_norm) {
      m.grad_norm_sq = global_grad_norm_sq(w_global);
    }
    trace.rounds.push_back(m);
    if (options_.target_accuracy &&
        m.test_accuracy >= *options_.target_accuracy) {
      target_reached = true;
    }
  }

  // Round state keyed by participant SLOT (index into this round's
  // `participants`), never by device id: every buffer is sized by the
  // participant count m, so a round costs O(m·dim) memory at any fleet
  // size. Buffers keep their capacity across rounds — a steady-state round
  // allocates nothing here.
  std::vector<std::vector<double>> locals;   // slot-keyed local models
  std::vector<double> thetas;                // slot-keyed θ diagnostics
  std::vector<std::size_t> grad_evals;       // slot-keyed, this round
  std::size_t total_uplink_bytes = 0;
  std::size_t total_downlink_bytes = 0;
  std::size_t total_grad_evals = 0;

  // The device<->server link (src/comm): every uplink flows through the
  // channel — error feedback, compression, serialization — and all byte
  // accounting is measured from serialized comm::Message sizes. Per-run
  // state (error-feedback residuals) lives here, keyed by device and
  // registered per round via prepare().
  comm::Channel channel(options_.comm, num_devices, dim);
  const bool channel_transforms = options_.comm.transforms_uplink();
  const bool byte_timing = options_.comm.byte_timing;
  // Realized uplink message size per slot this round (0 = not uplinked
  // through the channel; charged at the a-priori size instead). Written
  // only from each device's own solve slot, so the parallel path is safe.
  std::vector<std::size_t> realized_uplink;

  // Cumulative fault accounting (all stay zero on the no-fault path).
  const bool faults_on = options_.faults.enabled();
  std::size_t total_dropped = 0;
  std::size_t total_undelivered = 0;
  std::size_t total_stragglers = 0;
  std::size_t total_uplink_retries = 0;
  std::size_t total_deadline_misses = 0;
  std::size_t total_corrupted = 0;
  std::size_t total_rejected = 0;
  std::size_t total_quarantined = 0;

  // The line-12 aggregation rule: a null option selects the weighted mean,
  // whose reduce order and arithmetic are bit-identical to the pre-seam
  // trainer (tested against pinned trace hashes).
  const std::shared_ptr<const Aggregator> aggregator =
      options_.aggregator ? options_.aggregator
                          : make_aggregator(AggregatorKind::kMean);

  // Server-defense state, keyed by device id (a sampled run only ever
  // touches the devices that actually participate): per-device strike
  // counters and the round until which each device stays quarantined
  // (inclusive). Mutated only in serial passes, never iterated — map order
  // could not be deterministic, and nothing here needs it.
  std::unordered_map<std::size_t, std::size_t> strikes;
  std::unordered_map<std::size_t, std::size_t> quarantined_until;

  // Stale-replay cache, keyed by device id: the last update each device
  // actually sent (post-corruption bytes), re-sent verbatim when a
  // kStaleReplay round fires. Entries are created serially before the
  // parallel solve pass; the parallel path only reads the map and writes
  // each device's own pre-existing vector. Engaged only when the fault
  // model can draw kStaleReplay at all.
  const bool stale_replay_possible =
      faults_on && options_.faults.config().corruption_enabled() &&
      options_.faults.config().corrupt_stale_weight > 0.0;
  std::unordered_map<std::size_t, std::vector<double>> replay_cache;

  // Round-scoped scratch, hoisted out of the loop: the pre-defense global
  // model w̄^(s-1) (the aggregation anchor and norm-bound reference), the
  // accepted-update views handed to the aggregator, and the participation
  // bookkeeping — all keep their capacity across rounds.
  std::vector<double> w_prev(dim);
  std::vector<std::size_t> accepted;
  std::vector<std::span<const double>> update_views;
  std::vector<double> update_weights;
  // This round's scheduled participants, ascending device order (all N, or
  // m of them drawn by Floyd's sampler in O(m)).
  std::vector<std::size_t> participants;
  // Survivor device ids handed to channel.prepare() each round.
  std::vector<std::size_t> uplinkers;
  std::vector<FaultEvent> events;
  // The round as a discrete-event schedule (fl/event_engine.h): completion
  // timestamps, arrival order, survivors, realized round time.
  RoundSchedule schedule;

  // Per-device solver workspaces, one per peak-concurrent activation:
  // every inner-loop buffer (iterates, estimator directions, batch
  // indices, the uplink delta) is acquired once and reused across local
  // epochs and rounds, so steady-state solves are allocation-free.
  opt::WorkspacePool ws_pool;

  for (std::size_t s = 1; !target_reached && s <= options_.rounds; ++s) {
    profiler.begin_round(s, num_devices);
    {
      OBS_SPAN("round");

      // Realized synchronous-barrier time of this round: when the server's
      // event queue drains (capped by the deadline). Set after build().
      double realized_round_time = 0.0;
      {
        obs::RoundProfiler::ScopedPhase phase(profiler,
                                              obs::Phase::kBroadcast);
        OBS_SPAN("round.broadcast");
        if (options_.devices_per_round &&
            *options_.devices_per_round < num_devices) {
          util::Rng select_rng =
              util::fork(options_.seed, 0, s, util::stream::kSelection);
          // Floyd's subset sampler: O(m) time and memory however large the
          // fleet is (the historical partial Fisher-Yates pass shuffled an
          // N-sized index array per round).
          select_rng.sample_subset_sorted(
              num_devices, *options_.devices_per_round, participants);
        } else {
          participants.resize(num_devices);
          std::iota(participants.begin(), participants.end(), 0);
        }

        // Quarantined devices are not scheduled at all: no broadcast, no
        // compute, no uplink. Filtered AFTER the selection draw so enabling
        // quarantine never perturbs the kSelection RNG stream.
        if (options_.defense.quarantine_enabled()) {
          std::erase_if(participants, [&](std::size_t device) {
            const auto it = quarantined_until.find(device);
            if (it == quarantined_until.end() || it->second < s) return false;
            ++total_quarantined;
            OBS_SPAN("round.defense.quarantined");
            FEDVR_OBS_COUNT("fl.defense.quarantined_device_rounds", 1);
            return true;
          });
        }

        // Fault + timing pre-pass, two passes over the slots. Pass 1 fills
        // the event schedule: fault events are a pure function of
        // (seed, device, round) — bit-identical across thread-pool sizes —
        // and completion timestamps are model time (d_com·mult + d_cmp·τ·
        // slowdown), so arrival order, survivor status, and the realized
        // round time are all known before any solver runs.
        events.assign(participants.size(), FaultEvent{});
        std::vector<ParticipantOutcome>& outcomes =
            schedule.reset(participants.size());
        for (std::size_t k = 0; k < participants.size(); ++k) {
          const std::size_t device = participants[k];
          if (faults_on) {
            events[k] = options_.faults.sample(options_.seed, device, s);
          }
          ParticipantOutcome& oc = outcomes[k];
          oc.device = device;
          if (events[k].dropped) {
            oc.crashed = true;
            continue;
          }
          TimingModel timing = options_.per_device_timing.empty()
                                   ? options_.timing
                                   : options_.per_device_timing[device];
          if (byte_timing) {
            // d_com from actual serialized bytes: the link model splits the
            // analytic d_com into latency + bandwidth calibrated so a dense
            // float64 exchange still costs exactly d_com; compressed or
            // quantized messages cost proportionally less.
            timing.d_com = channel.link_round_time(timing);
          }
          oc.completion_time =
              faults_on ? timing.round_time(
                              timing_tau, events[k].slowdown,
                              events[k].com_multiplier(
                                  options_.faults.config().retry_backoff))
                        : timing.round_time(timing_tau);
          oc.undelivered = events[k].uplink_failed;
        }
        schedule.build(options_.round_deadline);
        realized_round_time = schedule.realized_round_time();

        // Pass 2: fault accounting + obs spans, ascending slot order (the
        // same per-device emission order as the historical barrier loop).
        for (std::size_t k = 0; k < participants.size(); ++k) {
          const FaultEvent& event = events[k];
          const ParticipantOutcome& oc = schedule.outcome(k);
          if (oc.crashed) {
            // A crash is detected immediately (connection loss): the device
            // holds up neither the event queue nor the model.
            ++total_dropped;
            OBS_SPAN("round.fault.dropout");
            FEDVR_OBS_COUNT("fl.faults.dropout", 1);
            continue;
          }
          if (event.straggler) {
            ++total_stragglers;
            OBS_SPAN("round.fault.straggler");
            FEDVR_OBS_COUNT("fl.faults.straggler", 1);
          }
          if (event.uplink_retries > 0) {
            total_uplink_retries += event.uplink_retries;
            OBS_SPAN("round.fault.uplink_retry");
            FEDVR_OBS_COUNT("fl.faults.uplink_retries", event.uplink_retries);
          }
          if (oc.missed_deadline) {
            ++total_deadline_misses;
            OBS_SPAN("round.fault.deadline_miss");
            FEDVR_OBS_COUNT("fl.faults.deadline_misses", 1);
          }
          if (event.uplink_failed) {
            OBS_SPAN("round.fault.uplink_failed");
            FEDVR_OBS_COUNT("fl.faults.uplink_failed", 1);
          }
          if (oc.missed_deadline || oc.undelivered) {
            // Computed and transmitted, never aggregated: undelivered, not
            // "dropped" — dropped counts crashes only (CSV schema v2).
            ++total_undelivered;
          } else if (event.corrupted()) {
            // Counted here — per delivered update — so the counter says
            // how many corrupted updates the server actually had to
            // survive, not how many corruption events fired into the void.
            ++total_corrupted;
            OBS_SPAN("round.fault.corrupt");
            FEDVR_OBS_COUNT("fl.faults.corrupted_updates", 1);
          }
        }
      }

      const std::span<const std::size_t> survivors = schedule.survivors();

      // Slot-keyed round state (inner capacities survive the resize), plus
      // serial registration of everything the parallel solve pass may only
      // read: channel residual slots and replay-cache entries.
      locals.resize(participants.size());
      thetas.assign(participants.size(), -1.0);
      grad_evals.assign(participants.size(), 0);
      if (channel_transforms) {
        realized_uplink.assign(participants.size(), 0);
        if (options_.comm.error_feedback) {
          uplinkers.clear();
          for (const std::size_t k : survivors) {
            uplinkers.push_back(participants[k]);
          }
          channel.prepare(uplinkers);
        }
      }
      if (stale_replay_possible) {
        // Pre-create this round's replay-cache entries: the parallel pass
        // writes only each device's own pre-existing vector and never
        // mutates the map structure.
        for (const std::size_t k : survivors) {
          if (events[k].corruption != CorruptionKind::kStaleReplay) {
            replay_cache.try_emplace(participants[k]);
          }
        }
      }

      // Local updates (Algorithm 1 lines 2-11), device-parallel. Only the
      // round's survivors run: a crashed device computes nothing, and a
      // device whose update cannot reach the server in time (uplink
      // exhaustion, deadline miss) is not simulated — its wasted compute
      // shows up in the fault counters, not in sample_grad_evals.
      auto run_device = [&](std::size_t i) {
        const std::size_t k = survivors[i];
        const std::size_t device = participants[k];
        const FaultEvent& event = events[k];
        std::vector<double>& local = locals[k];
        if (event.corruption == CorruptionKind::kStaleReplay) {
          // The device free-rides: it re-sends whatever it uploaded last
          // (or echoes the broadcast model verbatim if it never uploaded)
          // without running the solver, so it contributes no fresh work.
          // The θ/grad-eval slots already hold their -1/0 defaults.
          const auto it = replay_cache.find(device);
          if (it != replay_cache.end() && !it->second.empty()) {
            local.assign(it->second.begin(), it->second.end());
          } else {
            local.assign(w_global.begin(), w_global.end());
          }
          return;
        }
        OBS_SPAN("device.solve");
        const std::uint64_t solve_start = obs_on ? obs::now_ns() : 0;
        util::Rng rng = util::fork(options_.seed, device + 1, s,
                                   util::stream::kSampling);
        const opt::WorkspacePool::Lease lease(ws_pool);
        opt::SolverWorkspace& ws = *lease;
        // On-demand shard materialization (data/federation.h): an in-memory
        // federation returns its stored shard, a virtual one generates into
        // this device-local scratch — either way the round only ever holds
        // the shards of devices it actually runs.
        data::Dataset shard_scratch;
        const data::Dataset& shard = fed_->train(device, shard_scratch);
        const auto result =
            solver_for(device).solve(shard, w_global, rng, ws, local);
        if (channel_transforms) {
          // Uplink the update delta through the comm seam (error feedback,
          // compression, wire encode/decode); the server reconstructs
          // anchor + decoded delta. Compressor calls outside comm::Channel
          // are a lint error (compression-in-seam).
          std::vector<double>& delta = ws.delta;
          delta.resize(dim);
          tensor::sub(local, w_global, delta);
          util::Rng comm_rng =
              util::fork(options_.seed, device + 1, s, util::stream::kComm);
          realized_uplink[k] = channel.uplink(device, delta, comm_rng);
          tensor::copy(w_global, local);
          tensor::axpy(1.0, delta, local);
        }
        // Corruption mangles the transmitted bytes, so it applies after
        // compression. Deterministic per (seed, device, round): the kind
        // was fixed in the pre-pass and the mangling reads only device-local
        // state, so corrupted traces stay pool-size-independent.
        switch (event.corruption) {
          case CorruptionKind::kNanInject: {
            // Sparse deterministic poison: coordinate (device + s) mod dim,
            // then every 64th after it, alternating NaN and +Inf.
            bool use_nan = true;
            for (std::size_t j = (device + s) % dim; j < dim; j += 64) {
              local[j] = use_nan ? std::numeric_limits<double>::quiet_NaN()
                                 : std::numeric_limits<double>::infinity();
              use_nan = !use_nan;
            }
            break;
          }
          case CorruptionKind::kSignFlip:
            // w̄ - δ, i.e. 2·w̄ - w_n: the update pushes the wrong way.
            tensor::scal(-1.0, local);
            tensor::axpy(2.0, w_global, local);
            break;
          case CorruptionKind::kScale: {
            // w̄ + f·δ, i.e. f·w_n + (1-f)·w̄: a magnitude explosion (or
            // collapse) along the honest direction.
            const double f = options_.faults.config().corrupt_scale_factor;
            tensor::scal(f, local);
            tensor::axpy(1.0 - f, w_global, local);
            break;
          }
          case CorruptionKind::kNone:
          case CorruptionKind::kStaleReplay:
            break;  // replay already returned above
        }
        if (stale_replay_possible) {
          // Remember what this device just sent (post-corruption bytes) so
          // a later kStaleReplay round re-sends exactly that. The entry was
          // created serially above; only this device's vector is written.
          replay_cache.find(device)->second.assign(local.begin(), local.end());
        }
        thetas[k] = result.measured_theta;
        grad_evals[k] = result.sample_gradient_evals;
        if (obs_on) {
          profiler.record_device(
              device,
              static_cast<double>(obs::now_ns() - solve_start) / 1e9,
              result.iterations_run);
        }
      };
      {
        obs::RoundProfiler::ScopedPhase phase(profiler,
                                              obs::Phase::kLocalSolve);
        OBS_SPAN("round.local_solve");
        if (options_.parallel && util::ThreadPool::global().size() > 1) {
          util::ThreadPool::global().parallel_for(0, survivors.size(),
                                                  run_device);
        } else {
          for (std::size_t i = 0; i < survivors.size(); ++i) run_device(i);
        }
      }

      {
        obs::RoundProfiler::ScopedPhase phase(profiler,
                                              obs::Phase::kAggregate);
        OBS_SPAN("round.aggregate");
        // Server-side defense, then global aggregation (line 12) through
        // the pluggable seam (fl/aggregation.h). Validation is ALWAYS-ON —
        // plain function calls, not FEDVR_CHECKS-gated macros — because a
        // production server must reject a poisoned update, not assert on
        // it: one NaN in the weighted average corrupts every later round.
        tensor::copy(w_global, w_prev);
        accepted.clear();
        for (std::size_t k : survivors) {
          const std::size_t device = participants[k];
          FEDVR_CHECK_SHAPE(locals[k].size(), dim);
          bool ok = !options_.defense.reject_non_finite ||
                    check::all_finite(locals[k]);
          if (ok && options_.defense.update_norm_bound > 0.0) {
            const double bound = options_.defense.update_norm_bound;
            // NaN distances compare false, so a non-finite update that
            // slipped past a disabled finiteness check still fails here.
            ok = tensor::squared_distance(locals[k], w_prev) <= bound * bound;
          }
          if (ok) {
            accepted.push_back(k);
            continue;
          }
          ++total_rejected;
          OBS_SPAN("round.defense.reject");
          FEDVR_OBS_COUNT("fl.defense.rejected_updates", 1);
          if (options_.defense.quarantine_enabled() &&
              ++strikes[device] >= options_.defense.quarantine_strikes) {
            // Quarantine starts next round; the strike counter resets so a
            // repeat offender re-earns its next quarantine from zero.
            quarantined_until[device] = s + options_.defense.quarantine_rounds;
            strikes[device] = 0;
            FEDVR_OBS_COUNT("fl.defense.quarantines", 1);
          }
        }
        // Aggregate the accepted updates, ascending device order. A round
        // with nothing accepted keeps w̄^(s-1) unchanged.
        if (!accepted.empty()) {
          update_views.clear();
          update_weights.clear();
          for (std::size_t k : accepted) {
            update_views.emplace_back(locals[k]);
            update_weights.push_back(fed_->weight(participants[k]));
          }
          aggregator->aggregate(w_prev, update_views, update_weights,
                                w_global);
          // Belt and braces on top of the defense layer: with
          // reject_non_finite force-disabled and a non-robust aggregator,
          // fail at the round that aggregated the poison.
          FEDVR_CHECK_FINITE(w_global, "aggregated global model");
        }

        // The round costs model time until the server's event queue drains:
        // the last non-crashed arrival, capped at the deadline.
        model_time += realized_round_time;

        // Wire accounting from serialized message sizes: one dense model
        // broadcast down per scheduled participant, plus one (possibly
        // compressed) update message up per transmission in the arrival
        // queue — lost attempts and late arrivals still crossed the wire.
        // Devices that uplinked through the channel are charged their
        // realized message size; transmissions whose payload was never
        // materialized (lost attempts, crashed-out retries, stale replays)
        // are charged the a-priori size. Integer sums, so the queue order
        // cannot perturb the totals.
        const std::size_t up_bytes_apriori = channel.uplink_wire_bytes();
        total_downlink_bytes +=
            participants.size() * channel.downlink_wire_bytes();
        for (const ArrivalEvent& ev : schedule.arrivals()) {
          const std::size_t realized =
              channel_transforms ? realized_uplink[ev.slot] : 0;
          total_uplink_bytes += events[ev.slot].uplink_attempts() *
                                (realized > 0 ? realized : up_bytes_apriori);
        }
        for (std::size_t k : survivors) {
          total_grad_evals += grad_evals[k];
        }
      }

      if (s % options_.eval_every == 0 ||
          (s == options_.rounds && options_.eval_final)) {
        RoundMetrics m;
        m.round = s;
        {
          obs::RoundProfiler::ScopedPhase phase(profiler, obs::Phase::kEval);
          OBS_SPAN("round.eval");
          m.train_loss = global_loss(w_global);
          m.test_accuracy = test_accuracy(w_global);
          if (options_.eval_grad_norm) {
            m.grad_norm_sq = global_grad_norm_sq(w_global);
          }
        }
        m.model_time = model_time;
        m.wall_seconds = wall.seconds();
        m.uplink_bytes = total_uplink_bytes;
        m.downlink_bytes = total_downlink_bytes;
        m.comm_bytes = total_uplink_bytes + total_downlink_bytes;
        m.sample_grad_evals = total_grad_evals;
        m.dropped_devices = total_dropped;
        m.undelivered_updates = total_undelivered;
        m.straggler_devices = total_stragglers;
        m.uplink_retries = total_uplink_retries;
        m.deadline_misses = total_deadline_misses;
        m.corrupted_updates = total_corrupted;
        m.rejected_updates = total_rejected;
        m.quarantined_device_rounds = total_quarantined;
        m.realized_round_time = realized_round_time;
        // Determinism audit: two runs with the same seed must produce
        // bit-identical parameters, hence equal hashes, at every eval round.
        m.param_hash = check::hash_span(w_global);
        if (obs_on) {
          const obs::PhaseTotals& totals = profiler.totals();
          m.measured =
              PhaseTimings{.broadcast = totals.phase(obs::Phase::kBroadcast),
                           .local_solve =
                               totals.phase(obs::Phase::kLocalSolve),
                           .aggregate = totals.phase(obs::Phase::kAggregate),
                           .eval = totals.phase(obs::Phase::kEval)};
        }
        if (options_.collect_theta) {
          double sum = 0.0;
          std::size_t count = 0;
          for (std::size_t k : survivors) {
            if (thetas[k] >= 0.0) {
              // Predicate-filtered diagnostic mean, ascending survivor
              // order; trace-only, never fed back into the model.
              // lint:allow(fp-reduction-in-seam) trace-only diagnostic mean
              sum += thetas[k];
              ++count;
            }
          }
          m.mean_local_theta =
              count > 0 ? sum / static_cast<double>(count) : -1.0;
        }
        trace.rounds.push_back(m);
        FEDVR_LOG_DEBUG << name << " round " << s << " loss " << m.train_loss
                        << " acc " << m.test_accuracy;
        if (options_.target_accuracy &&
            m.test_accuracy >= *options_.target_accuracy) {
          target_reached = true;
        }
      }
    }
    profiler.end_round();
  }
  trace.final_parameters = std::move(w_global);
  trace.final_param_hash = check::hash_span(trace.final_parameters);

  if (obs_on) {
    const obs::TimingEstimate est = profiler.estimate();
    if (est.valid()) {
      trace.measured_timing = MeasuredTiming{est.d_com, est.d_cmp};
    }
    if (!options_.observability.chrome_trace_path.empty()) {
      obs::write_chrome_trace_file(options_.observability.chrome_trace_path);
    }
    if (!options_.observability.metrics_jsonl_path.empty()) {
      std::ofstream out(options_.observability.metrics_jsonl_path);
      FEDVR_CHECK_MSG(out.good(),
                      "cannot open '"
                          << options_.observability.metrics_jsonl_path
                          << "' for writing");
      obs::Registry::global().snapshot().write_jsonl(out);
      obs::write_span_summary_jsonl(out);
    }
  }
  return trace;
}

}  // namespace fedvr::fl
