#include "fl/hierarchy.h"

#include <algorithm>
#include <vector>

#include "tensor/vecops.h"
#include "util/error.h"
#include "util/thread_pool.h"

namespace fedvr::fl {

namespace {

/// Weighted mean computed over an edge-aggregator tree. Every node holds an
/// UNNORMALIZED partial sum Σ w_i·u_i plus its weight mass Σ w_i; the root
/// divides once. The flat case bypasses all of that and replays the default
/// MeanAggregator's exact operation sequence.
class TreeMeanAggregator final : public Aggregator {
 public:
  explicit TreeMeanAggregator(TreeAggregatorOptions options)
      : options_(options) {}

  [[nodiscard]] std::string_view name() const override { return "tree_mean"; }

  void aggregate(std::span<const double> /*anchor*/,
                 std::span<const std::span<const double>> updates,
                 std::span<const double> weights,
                 std::span<double> out) const override {
    const std::size_t n = updates.size();
    const std::size_t dim = out.size();
    const std::size_t fanout = options_.fanout;
    if (fanout == 0 || n <= fanout) {
      // Single-level tree: the server is the only aggregator. This MUST
      // stay the exact operation sequence of MeanAggregator (weight_sum in
      // update order, fill(0), one accumulate_weighted per update) — the
      // flat-tree ≡ legacy-mean hash-equality tests pin it.
      double weight_sum = 0.0;
      for (double w : weights) weight_sum += w;
      tensor::fill(out, 0.0);
      for (std::size_t i = 0; i < n; ++i) {
        tensor::accumulate_weighted(weights[i] / weight_sum, updates[i], out);
      }
      return;
    }

    // Leaf level: edge aggregator b folds updates [b·fanout, (b+1)·fanout),
    // serially ascending; nodes run in parallel and write disjoint slots.
    std::size_t nodes = (n + fanout - 1) / fanout;
    std::vector<double> sums(nodes * dim);
    std::vector<double> masses(nodes);
    const auto for_nodes = [&](std::size_t count, const auto& fn) {
      if (options_.parallel && util::ThreadPool::global().size() > 1) {
        util::ThreadPool::global().parallel_for(0, count, fn);
      } else {
        for (std::size_t b = 0; b < count; ++b) fn(b);
      }
    };
    for_nodes(nodes, [&](std::size_t b) {
      const std::size_t lo = b * fanout;
      const std::size_t hi = std::min(lo + fanout, n);
      const std::span<double> acc(sums.data() + b * dim, dim);
      tensor::fill(acc, 0.0);
      double mass = 0.0;
      for (std::size_t i = lo; i < hi; ++i) {
        mass += weights[i];
        tensor::axpy(weights[i], updates[i], acc);
      }
      masses[b] = mass;
    });

    // Interior levels: each parent merges `fanout` child partials, again
    // serially ascending within the parent. Buffers are allocated once at
    // the widest interior level; later levels only shrink, so the resizes
    // below never reallocate.
    const std::size_t widest = (nodes + fanout - 1) / fanout;
    std::vector<double> next_sums(widest * dim);
    std::vector<double> next_masses(widest);
    while (nodes > 1) {
      const std::size_t parents = (nodes + fanout - 1) / fanout;
      // lint:allow(no-alloc-in-hot-loop) shrink-only; capacity from the widest level
      next_sums.resize(parents * dim);
      // lint:allow(no-alloc-in-hot-loop) shrink-only; capacity from the widest level
      next_masses.resize(parents);
      for_nodes(parents, [&](std::size_t b) {
        const std::size_t lo = b * fanout;
        const std::size_t hi = std::min(lo + fanout, nodes);
        const std::span<double> acc(next_sums.data() + b * dim, dim);
        tensor::fill(acc, 0.0);
        double mass = 0.0;
        for (std::size_t c = lo; c < hi; ++c) {
          mass += masses[c];
          tensor::axpy(1.0, std::span<const double>(sums.data() + c * dim, dim),
                       acc);
        }
        next_masses[b] = mass;
      });
      sums.swap(next_sums);
      masses.swap(next_masses);
      nodes = parents;
    }

    // Root: one normalization by the total survivor mass.
    const double inv_mass = 1.0 / masses[0];
    for (std::size_t j = 0; j < dim; ++j) out[j] = sums[j] * inv_mass;
  }

 private:
  TreeAggregatorOptions options_;
};

}  // namespace

void TreeAggregatorOptions::validate() const {
  FEDVR_CHECK_MSG(fanout != 1,
                  "tree fanout 1 never contracts (each level would have as "
                  "many nodes as the last); use 0 for flat or >= 2");
}

std::shared_ptr<const Aggregator> make_tree_aggregator(
    TreeAggregatorOptions options) {
  options.validate();
  return std::make_shared<TreeMeanAggregator>(options);
}

}  // namespace fedvr::fl
