// The paper's analytical training-time model (§4.3, eq. 19):
//     T_total = T * (d_com + d_cmp * tau)
// where d_cmp is the device computation delay per inner iteration (Alg. 1
// lines 7-8) and d_com the per-round communication delay to the server.
// gamma = d_cmp / d_com is the weight factor swept in Fig. 1.
#pragma once

#include "util/error.h"

namespace fedvr::fl {

struct TimingModel {
  double d_com = 1.0;  // communication delay per global round
  double d_cmp = 0.1;  // computation delay per local iteration

  /// Model time for one global round with tau local iterations. Validates
  /// the same way gamma() does: delays must be meaningful (d_com > 0,
  /// d_cmp >= 0) and Algorithm 1 runs at least one local iteration.
  [[nodiscard]] double round_time(std::size_t tau) const {
    FEDVR_CHECK_MSG(d_com > 0.0, "d_com must be positive, got " << d_com);
    FEDVR_CHECK_MSG(d_cmp >= 0.0, "d_cmp must be nonnegative, got " << d_cmp);
    FEDVR_CHECK_MSG(tau >= 1, "round_time needs tau >= 1");
    return d_com + d_cmp * static_cast<double>(tau);
  }

  /// Model time for T rounds (paper eq. 19).
  [[nodiscard]] double total_time(std::size_t rounds, std::size_t tau) const {
    FEDVR_CHECK_MSG(rounds >= 1, "total_time needs rounds >= 1");
    return static_cast<double>(rounds) * round_time(tau);
  }

  /// The weight factor gamma = d_cmp / d_com.
  [[nodiscard]] double gamma() const {
    FEDVR_CHECK_MSG(d_com > 0.0, "d_com must be positive");
    return d_cmp / d_com;
  }

  /// Builds a model from gamma with d_com normalized to 1.
  [[nodiscard]] static TimingModel from_gamma(double gamma) {
    FEDVR_CHECK_MSG(gamma > 0.0, "gamma must be positive, got " << gamma);
    return TimingModel{.d_com = 1.0, .d_cmp = gamma};
  }
};

}  // namespace fedvr::fl
