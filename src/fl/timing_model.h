// The paper's analytical training-time model (§4.3, eq. 19):
//     T_total = T * (d_com + d_cmp * tau)
// where d_cmp is the device computation delay per inner iteration (Alg. 1
// lines 7-8) and d_com the per-round communication delay to the server.
// gamma = d_cmp / d_com is the weight factor swept in Fig. 1.
//
// Heterogeneous extension (DESIGN.md §11): each device may carry its own
// TimingModel, and a fault event scales its delays —
//     t_n = d_com * com_multiplier + d_cmp * slowdown * tau
// A synchronous round then costs the *maximum* over participants (the
// barrier wall clock), optionally capped by TrainerOptions::round_deadline.
//
// Validation here is ALWAYS ON: these are once-per-round argument checks
// via util/error.h's FEDVR_CHECK_MSG, which — unlike the compile-gated
// fedvr::check hot-path macros (FEDVR_CHECK_SHAPE & co.) — survives
// -DFEDVR_CHECKS=OFF Release builds. A release build must reject
// d_com <= 0 loudly instead of silently producing garbage gamma; the
// FEDVR_CHECKS=OFF CI leg locks this in.
#pragma once

#include "util/error.h"

namespace fedvr::fl {

struct TimingModel {
  double d_com = 1.0;  // communication delay per global round
  double d_cmp = 0.1;  // computation delay per local iteration

  /// Always-on argument validation: delays must be meaningful (d_com > 0,
  /// d_cmp >= 0). Called by every accessor below and by fl::Trainer at
  /// construction so malformed models fail fast in every build config.
  void validate() const {
    FEDVR_CHECK_MSG(d_com > 0.0, "d_com must be positive, got " << d_com);
    FEDVR_CHECK_MSG(d_cmp >= 0.0, "d_cmp must be nonnegative, got " << d_cmp);
  }

  /// Model time for one global round with tau local iterations. Algorithm 1
  /// runs at least one local iteration, so tau >= 1.
  [[nodiscard]] double round_time(std::size_t tau) const {
    validate();
    FEDVR_CHECK_MSG(tau >= 1, "round_time needs tau >= 1");
    return d_com + d_cmp * static_cast<double>(tau);
  }

  /// Fault-adjusted round time for one device:
  ///     d_com * com_multiplier + d_cmp * compute_slowdown * tau
  /// `compute_slowdown` models a straggler (>= 1); `com_multiplier` models
  /// uplink retransmissions with backoff (>= 1; see FaultEvent).
  /// Bit-identical to round_time(tau) when both factors are exactly 1.
  [[nodiscard]] double round_time(std::size_t tau, double compute_slowdown,
                                  double com_multiplier) const {
    validate();
    FEDVR_CHECK_MSG(tau >= 1, "round_time needs tau >= 1");
    FEDVR_CHECK_MSG(compute_slowdown >= 1.0,
                    "compute_slowdown must be >= 1, got " << compute_slowdown);
    FEDVR_CHECK_MSG(com_multiplier >= 1.0,
                    "com_multiplier must be >= 1, got " << com_multiplier);
    return d_com * com_multiplier +
           d_cmp * compute_slowdown * static_cast<double>(tau);
  }

  /// Model time for T rounds (paper eq. 19).
  [[nodiscard]] double total_time(std::size_t rounds, std::size_t tau) const {
    FEDVR_CHECK_MSG(rounds >= 1, "total_time needs rounds >= 1");
    return static_cast<double>(rounds) * round_time(tau);
  }

  /// The weight factor gamma = d_cmp / d_com.
  [[nodiscard]] double gamma() const {
    validate();
    return d_cmp / d_com;
  }

  /// Builds a model from gamma with d_com normalized to 1.
  [[nodiscard]] static TimingModel from_gamma(double gamma) {
    FEDVR_CHECK_MSG(gamma > 0.0, "gamma must be positive, got " << gamma);
    return TimingModel{.d_com = 1.0, .d_cmp = gamma};
  }
};

}  // namespace fedvr::fl
