// The synchronous federated engine: Algorithm 1's outer loop, run as a
// discrete-event simulation over the round's participants.
//
// Each global round s:
//   1. sample/select this round's participants (all N, or m of them drawn
//      by Floyd's algorithm in O(m)) and broadcast w̄^(s-1) to them,
//   2. build the round's event schedule (fl/event_engine.h): per-
//      participant fault events and (d_com + d_cmp·τ) completion
//      timestamps, deadline misses, the survivor set, and the realized
//      round time — all before any solver runs,
//   3. run the device-local solver on every surviving participant — in
//      parallel on a thread pool ("for n in N do in parallel"), device
//      shards materialized on demand through data::Federation,
//   4. aggregate w̄^(s) = sum_n (D_n/D) w_n^(s)   (line 12) through the
//      pluggable fl::Aggregator seam (flat mean, robust rules, or the
//      hierarchical tree of fl/hierarchy.h),
//   5. evaluate metrics and append to the trace.
//
// Every per-participant buffer (local models, θ diagnostics, error-feedback
// residuals, uplink accounting) is keyed by round slot or device, never
// sized by the fleet: a round over m sampled participants costs O(m·dim)
// memory at any fleet size.
//
// Determinism: the per-device, per-round RNG is forked from the master seed
// by (device, round) coordinates, and every cross-device reduction runs in
// a fixed (ascending-device) order, so traces are bit-identical however
// devices are scheduled onto threads.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <span>

#include "comm/channel.h"
#include "data/dataset.h"
#include "data/federation.h"
#include "fl/aggregation.h"
#include "fl/compression.h"
#include "fl/faults.h"
#include "fl/metrics.h"
#include "fl/timing_model.h"
#include "nn/model.h"
#include "opt/local_solver.h"
#include "util/thread_pool.h"

namespace fedvr::fl {

/// Run-scoped observability (fedvr::obs). Off by default: the null sink
/// costs one relaxed atomic load per instrumentation site. When enabled,
/// the run records phase/device trace spans, pool and solver counters, and
/// fills RoundMetrics::measured + TrainingTrace::measured_timing.
/// Collection is process-global while the run is active (the previous
/// enable state is restored when run() returns).
struct ObservabilityOptions {
  bool enabled = false;
  /// When non-empty, a Chrome trace_event JSON file written at the end of
  /// run() — open in chrome://tracing or https://ui.perfetto.dev.
  std::string chrome_trace_path;
  /// When non-empty, a JSONL file with the metrics-registry snapshot plus
  /// per-span-name summaries, written at the end of run().
  std::string metrics_jsonl_path;
};

struct TrainerOptions {
  std::size_t rounds = 100;       // T global iterations
  std::uint64_t seed = 1;
  TimingModel timing;
  std::size_t eval_every = 1;     // metric cadence (rounds)
  bool eval_initial = false;      // record a round-0 entry at w̄^(0)
  /// Force an eval entry on the last round even when eval_every does not
  /// land on it (the historical behavior, and the default). Global metrics
  /// are O(fleet) — a sampled million-device smoke run turns this off and
  /// relies purely on param hashes.
  bool eval_final = true;
  bool eval_grad_norm = false;    // ||∇F̄||² costs a full pass; opt-in
  bool collect_theta = false;     // per-device θ diagnostics (costly)
  /// Devices participating per round; nullopt = all (the paper's setting).
  std::optional<std::size_t> devices_per_round;
  /// Stop early once pooled-test accuracy reaches this value (if set).
  std::optional<double> target_accuracy;
  /// The device<->server link (src/comm): uplink compression with optional
  /// error feedback, wire dtypes (float64/float32/int8), and byte-derived
  /// link timing. Every update crosses this seam; with default options the
  /// channel is pure accounting and the arithmetic is bit-identical to the
  /// pre-comm engine.
  comm::ChannelOptions comm;
  /// DEPRECATED: pre-comm-seam compressor knob. When set (and comm has no
  /// compressor of its own) it is adopted as comm.compressor at
  /// construction; setting both is a configuration error. Prefer
  /// options.comm.compressor in new code.
  std::shared_ptr<const comm::Compressor> uplink_compressor;
  /// Optional per-device timing models (heterogeneous hardware): when
  /// non-empty (one per device), a synchronous round costs the *maximum*
  /// participant time instead of options.timing.
  std::vector<TimingModel> per_device_timing;
  /// Deterministic fault injection (crashes, stragglers, lossy uplinks,
  /// update corruption). Disabled by default; see fl/faults.h. Devices that
  /// deliver no update are dropped from line-12 aggregation and the
  /// survivors' weights are renormalized to sum to 1 (a zero-survivor round
  /// keeps w̄^(s-1)).
  FaultModel faults;
  /// The line-12 aggregation rule. Null selects the survivor-reweighted
  /// weighted mean — arithmetic bit-identical to the pre-seam trainer.
  /// Robust alternatives: make_aggregator(AggregatorKind::kMedian /
  /// kTrimmedMean / kNormClippedMean).
  std::shared_ptr<const Aggregator> aggregator;
  /// Server-side update validation and quarantine (fl/aggregation.h).
  /// Validation is always-on and independent of FEDVR_CHECKS: non-finite
  /// (and, when configured, norm-bound-violating) updates are rejected
  /// before they reach the aggregator, repeat offenders are quarantined.
  DefenseOptions defense;
  /// Optional synchronous-round deadline in model-time units: participants
  /// whose fault-adjusted round time exceeds it are excluded from
  /// aggregation, and the server charges at most the deadline per round
  /// (it stops waiting once the deadline passes).
  std::optional<double> round_deadline;
  /// Parallel device execution. Deterministic either way.
  bool parallel = true;
  /// Per-phase / per-device profiling + metrics collection (fedvr::obs).
  ObservabilityOptions observability;
};

class Trainer {
 public:
  /// The trainer borrows the dataset; it must outlive the trainer.
  /// (Wraps `fed` in a data::InMemoryFederation.)
  Trainer(std::shared_ptr<const nn::Model> model,
          const data::FederatedDataset& fed, TrainerOptions options);

  /// Federation-backed construction — the million-device path. With a
  /// data::VirtualFederation, device shards are materialized on demand
  /// inside each participant's solve, so a round of m sampled participants
  /// costs O(m·dim) memory regardless of the fleet size.
  Trainer(std::shared_ptr<const nn::Model> model,
          std::shared_ptr<const data::Federation> fed, TrainerOptions options);

  /// Runs `solver` for options().rounds global rounds starting from a fresh
  /// initialization (or `w0` if provided). `name` labels the trace.
  [[nodiscard]] TrainingTrace run(
      const opt::LocalSolver& solver, const std::string& name,
      std::optional<std::vector<double>> w0 = std::nullopt) const;

  /// Heterogeneous-device variant (paper §3: per-device L_n, lambda_n):
  /// device n runs solvers[n], which may differ in step size, tau, or
  /// estimator. solvers.size() must equal the device count. The timing
  /// model charges the slowest device's tau per round (synchronous rounds).
  [[nodiscard]] TrainingTrace run(
      std::span<const opt::LocalSolver> solvers, const std::string& name,
      std::optional<std::vector<double>> w0 = std::nullopt) const;

  /// The global objective F̄(w) = sum_n (D_n/D) F_n(w) (eq. 2).
  [[nodiscard]] double global_loss(std::span<const double> w) const;

  /// ||∇F̄(w)||², the paper's stationarity gap (eq. 12).
  [[nodiscard]] double global_grad_norm_sq(std::span<const double> w) const;

  /// Accuracy on the pooled test set.
  [[nodiscard]] double test_accuracy(std::span<const double> w) const;

  [[nodiscard]] const TrainerOptions& options() const { return options_; }

 private:
  TrainingTrace run_impl(
      const std::function<const opt::LocalSolver&(std::size_t)>& solver_for,
      std::size_t timing_tau, const std::string& name,
      std::optional<std::vector<double>> w0) const;

  std::shared_ptr<const nn::Model> model_;
  std::shared_ptr<const data::Federation> fed_;
  TrainerOptions options_;
};

}  // namespace fedvr::fl
