// Server-side aggregation: the pluggable line-12 seam.
//
// Algorithm 1 line 12 is a D_n/D-weighted average of the survivors' local
// models — and a single corrupted update (one NaN, a flipped sign, a 100×
// delta) poisons it for every later round. This header carves that
// reduction out of the trainer into an abstract `Aggregator` so robust
// alternatives plug in behind one interface, plus the server-side defense
// policy (`DefenseOptions`) that validates updates *before* any aggregator
// sees them.
//
// Implementations (make_aggregator):
//   * mean          — the survivor-reweighted weighted average the trainer
//                     has always computed, reduce order and arithmetic
//                     bit-identical to the pre-seam code path (the default;
//                     a null TrainerOptions::aggregator selects it);
//   * median        — coordinate-wise median, ignoring non-finite values
//                     per coordinate; tolerates < 50% arbitrary corruption;
//   * trimmed_mean  — coordinate-wise mean after dropping the lowest and
//                     highest trim_fraction of values per coordinate;
//   * norm_clip     — weighted mean of updates whose deltas from the
//                     anchor are clipped to a norm bound (fixed, or the
//                     median survivor norm when clip_norm <= 0).
//
// Determinism contract: every implementation reduces in a fixed order that
// does not depend on the thread-pool size. The coordinate-wise aggregators
// parallelize over fixed 256-coordinate chunks (each coordinate's result is
// independent and written to a disjoint output slot), so traces stay
// bit-identical across pool sizes 1/2/N.
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

namespace fedvr::fl {

enum class AggregatorKind {
  kMean,           // survivor-reweighted weighted average (the default)
  kMedian,         // coordinate-wise median
  kTrimmedMean,    // coordinate-wise trimmed mean
  kNormClippedMean,  // weighted mean of norm-clipped deltas
};

struct AggregatorOptions {
  /// Trimmed mean: fraction of values dropped from EACH tail per
  /// coordinate, in [0, 0.5). 0.1 with 10 survivors drops the single
  /// smallest and largest value per coordinate.
  double trim_fraction = 0.1;
  /// Norm clip: updates with ||w_n - anchor|| above this are scaled down to
  /// the bound. <= 0 selects an adaptive bound per round: the median of the
  /// survivors' delta norms (robust as long as most devices are honest).
  double clip_norm = 0.0;
};

/// Combines one round's accepted updates into the next global model.
class Aggregator {
 public:
  virtual ~Aggregator() = default;

  /// Stable identifier ("mean", "median", ...) for traces and CLIs.
  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Aggregates `updates` into `out`. `updates[i]` is one device's full
  /// local model w_n^(s) and `weights[i]` its raw aggregation weight D_n/D,
  /// both in ascending device order; `anchor` is w̄^(s-1), the model the
  /// round started from (robust aggregators fall back to it coordinate-wise
  /// when every value is non-finite). All spans have equal length except
  /// `weights` (one entry per update). Called with >= 1 update; a
  /// zero-survivor round never reaches the aggregator. `out` must not alias
  /// `anchor` or any update.
  virtual void aggregate(std::span<const double> anchor,
                         std::span<const std::span<const double>> updates,
                         std::span<const double> weights,
                         std::span<double> out) const = 0;
};

/// Builds an aggregator; validates `options` (always-on). The returned
/// object is stateless and immutable — share it across trainers freely.
[[nodiscard]] std::shared_ptr<const Aggregator> make_aggregator(
    AggregatorKind kind, AggregatorOptions options = {});

/// Parses "mean" / "median" / "trimmed_mean" / "norm_clip"; nullopt on
/// anything else.
[[nodiscard]] std::optional<AggregatorKind> aggregator_kind_from_name(
    std::string_view name);

/// The canonical names, in AggregatorKind order (for CLI sweeps and --help).
[[nodiscard]] std::span<const std::string_view> aggregator_names();

/// Server-side update validation and quarantine. Validation is ALWAYS-ON —
/// it is the production defense layer, independent of the FEDVR_CHECKS
/// build/runtime gates: a release build with checks compiled out must still
/// reject a NaN update rather than fold it into the global model.
struct DefenseOptions {
  /// Reject updates containing NaN or ±Inf before aggregation. On by
  /// default; with no corruption in flight nothing is ever rejected, so the
  /// healthy path's traces are unchanged (the scan does no FP arithmetic).
  bool reject_non_finite = true;
  /// When > 0, reject updates with ||w_n - w̄^(s-1)|| > bound (catches
  /// finite but magnitude-exploded updates the finiteness scan cannot).
  double update_norm_bound = 0.0;
  /// After this many rejected updates, a device is quarantined — excluded
  /// from participation entirely — for `quarantine_rounds` rounds. Its
  /// strike counter resets when the quarantine is imposed, so a repeat
  /// offender is re-quarantined after another full strike count. 0 disables
  /// quarantine (rejections still count in RoundMetrics).
  std::size_t quarantine_strikes = 0;
  /// Quarantine length in rounds (>= 1 when quarantine is enabled).
  std::size_t quarantine_rounds = 5;

  /// Always-on validation with clear messages (throws util::Error).
  void validate() const;

  [[nodiscard]] bool quarantine_enabled() const {
    return quarantine_strikes > 0;
  }
};

}  // namespace fedvr::fl
