// Extending fedvr with your own learning task.
//
// Any objective can ride the full FedProxVR machinery by implementing the
// four-virtual nn::Model interface: parameter count, initialization, batch
// loss+gradient (evaluable at any parameter vector — that is what the
// SVRG/SARAH anchors need), and prediction. This example trains a
// federated *ridge regression* (a model the built-in factories do not
// provide) across heterogeneous devices.
#include <cmath>
#include <cstdio>

#include "core/fedproxvr.h"
#include "tensor/vecops.h"
#include "util/flags.h"

namespace {

using namespace fedvr;

// Ridge regression: features x in R^d, target encoded in the label slot is
// not expressive enough (labels are class ids), so the convention here is
// that the target is the last feature column. Loss per sample:
//   f_i(w) = 0.5 (x_i^T w - y_i)^2 + (reg/2)||w||^2 / n_total-ish (folded
//   into the mean below).
class RidgeRegression final : public nn::Model {
 public:
  RidgeRegression(std::size_t dim, double reg) : dim_(dim), reg_(reg) {}

  [[nodiscard]] std::size_t num_parameters() const override { return dim_; }

  void initialize(util::Rng& rng, std::span<double> w) const override {
    for (auto& v : w) v = rng.normal(0.0, 0.1);
  }

  [[nodiscard]] double loss(std::span<const double> w,
                            const data::Dataset& ds,
                            std::span<const std::size_t> indices)
      const override {
    double total = 0.0;
    for (std::size_t i : indices) {
      const auto row = ds.sample(i);
      const auto x = row.subspan(0, dim_);
      const double target = row[dim_];
      const double err = tensor::dot(x, w) - target;
      total += 0.5 * err * err;
    }
    return total / static_cast<double>(indices.size()) +
           0.5 * reg_ * tensor::nrm2_squared(w);
  }

  double loss_and_gradient(std::span<const double> w, const data::Dataset& ds,
                           std::span<const std::size_t> indices,
                           std::span<double> grad) const override {
    tensor::fill(grad, 0.0);
    double total = 0.0;
    for (std::size_t i : indices) {
      const auto row = ds.sample(i);
      const auto x = row.subspan(0, dim_);
      const double target = row[dim_];
      const double err = tensor::dot(x, w) - target;
      total += 0.5 * err * err;
      tensor::axpy(err, x, grad);
    }
    const double inv = 1.0 / static_cast<double>(indices.size());
    tensor::scal(inv, grad);
    tensor::axpy(reg_, w, grad);
    return total * inv + 0.5 * reg_ * tensor::nrm2_squared(w);
  }

  void predict(std::span<const double> w, const data::Dataset& ds,
               std::span<const std::size_t> indices,
               std::span<std::size_t> out) const override {
    // Classification view: sign of the prediction (for accuracy plumbing).
    for (std::size_t k = 0; k < indices.size(); ++k) {
      const auto row = ds.sample(indices[k]);
      out[k] = tensor::dot(row.subspan(0, dim_), w) >= 0.0 ? 1u : 0u;
    }
  }

 private:
  std::size_t dim_;
  double reg_;
};

// Heterogeneous regression federation: each device draws its own true
// weight vector near a shared one (client drift!), then samples (x, y).
data::FederatedDataset make_regression_federation(std::size_t devices,
                                                  std::size_t dim,
                                                  std::uint64_t seed) {
  util::Rng shared_rng = util::fork(seed, 0, 0, util::stream::kData);
  std::vector<double> w_shared(dim);
  for (auto& v : w_shared) v = shared_rng.normal();

  data::FederatedDataset fed;
  for (std::size_t k = 0; k < devices; ++k) {
    util::Rng rng = util::fork(seed, k + 1, 0, util::stream::kData);
    std::vector<double> w_true = w_shared;
    for (auto& v : w_true) v += rng.normal(0.0, 0.3);  // device drift
    const std::size_t n = 40 + rng.below(120);
    data::Dataset local(tensor::Shape({dim + 1}), n, 2);
    for (std::size_t i = 0; i < n; ++i) {
      auto row = local.mutable_sample(i);
      double y = rng.normal(0.0, 0.05);  // observation noise
      for (std::size_t j = 0; j < dim; ++j) {
        row[j] = rng.normal();
        y += row[j] * w_true[j];
      }
      row[dim] = y;
      local.set_label(i, y >= 0.0 ? 1 : 0);
    }
    auto [train, test] = local.split(rng, 0.75);
    fed.train.push_back(std::move(train));
    fed.test.push_back(std::move(test));
  }
  return fed;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t devices = 12, dim = 25, rounds = 25;
  std::uint64_t seed = 1;
  util::Flags flags("custom_model",
                    "federated ridge regression via a user-defined Model");
  flags.add("devices", &devices, "number of devices");
  flags.add("dim", &dim, "feature dimension");
  flags.add("rounds", &rounds, "global rounds");
  flags.add("seed", &seed, "master seed");
  flags.parse(argc, argv);

  const auto fed = make_regression_federation(devices, dim, seed);
  const auto model = std::make_shared<RidgeRegression>(dim, 1e-4);

  // Least squares on ~N(0,1) features: L ~ E||x||^2 ~ dim.
  core::HyperParams hp;
  hp.beta = 5.0;
  hp.smoothness_L = static_cast<double>(dim);
  hp.tau = 25;
  hp.mu = 0.1;
  hp.batch_size = 4;
  fl::TrainerOptions run_cfg;
  run_cfg.rounds = rounds;
  run_cfg.seed = seed;
  const auto trace = core::run_federated(model, fed,
                                         core::fedproxvr_svrg(hp), run_cfg);
  std::printf("%6s  %14s\n", "round", "train_mse*2");
  for (const auto& r : trace.rounds) {
    if (r.round % 5 == 0 || r.round == 1) {
      std::printf("%6zu  %14.6f\n", r.round, r.train_loss);
    }
  }
  // A single global model cannot fit every device's drifted w_true: the
  // irreducible *federated* loss is ~ 0.5 E||w_true_k - w_mean||^2 =
  // 0.5 * dim * drift^2, far above the observation-noise floor. Converging
  // to that level is success.
  const double federated_floor = 0.5 * static_cast<double>(dim) * 0.3 * 0.3;
  std::printf("\nfinal loss %.4f vs irreducible client-drift floor ~ %.4f "
              "(observation noise alone: %.5f)\n",
              trace.back().train_loss, federated_floor, 0.5 * 0.05 * 0.05);
  return 0;
}
