// Non-convex federated training: the paper's two-layer CNN (Fig. 3
// scenario) on a small digit federation.
//
// Defaults are sized for a single-core machine (12x12 images, slim
// channels); pass --side 28 --conv1 32 --conv2 64 for the paper's exact
// architecture.
//
//   ./build/examples/cnn_nonconvex --devices 5 --rounds 5 --tau 5
#include <cstdio>

#include "core/fedproxvr.h"
#include "data/image_datasets.h"
#include "nn/models.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  using namespace fedvr;

  std::size_t devices = 5, rounds = 5, tau = 5, batch = 8, side = 12,
              conv1 = 8, conv2 = 16, pool = 600;
  double beta = 10.0, mu = 0.01, smoothness = 8.0;
  std::uint64_t seed = 1;
  util::Flags flags("cnn_nonconvex",
                    "FedProxVR with a two-layer CNN (non-convex task)");
  flags.add("devices", &devices, "number of devices");
  flags.add("rounds", &rounds, "global rounds T");
  flags.add("tau", &tau, "local iterations");
  flags.add("batch", &batch, "mini-batch size B");
  flags.add("side", &side, "image side (divisible by 4; paper: 28)");
  flags.add("conv1", &conv1, "first conv channels (paper: 32)");
  flags.add("conv2", &conv2, "second conv channels (paper: 64)");
  flags.add("pool", &pool, "procedural pool size");
  flags.add("beta", &beta, "step parameter");
  flags.add("mu", &mu, "proximal penalty");
  flags.add("L", &smoothness, "smoothness estimate used for eta = 1/(beta L)");
  flags.add("seed", &seed, "master seed");
  flags.parse(argc, argv);

  data::ImageDatasetConfig cfg;
  cfg.family = data::ImageFamily::kDigits;
  cfg.side = side;
  cfg.pool_size = pool;
  cfg.shard.num_devices = devices;
  cfg.shard.min_samples = 40;
  cfg.shard.max_samples = 160;
  cfg.shard.seed = seed;
  cfg.seed = seed;
  const auto dataset = data::make_federated_images(cfg);

  nn::CnnConfig cnn;
  cnn.side = side;
  cnn.conv1_channels = conv1;
  cnn.conv2_channels = conv2;
  const auto model = nn::make_two_layer_cnn(cnn);
  std::printf("CNN with %zu parameters on %zux%zu images, %zu devices\n",
              model->num_parameters(), side, side, devices);

  core::HyperParams hp;
  hp.beta = beta;
  hp.smoothness_L = smoothness;
  hp.tau = tau;
  hp.mu = mu;
  hp.batch_size = batch;
  fl::TrainerOptions run_cfg;
  run_cfg.rounds = rounds;
  run_cfg.seed = seed;
  const auto trace = core::run_federated(model, dataset.fed,
                                         core::fedproxvr_svrg(hp), run_cfg);

  std::printf("\n%6s  %12s  %10s\n", "round", "train_loss", "test_acc");
  for (const auto& r : trace.rounds) {
    std::printf("%6zu  %12.5f  %9.2f%%\n", r.round, r.train_loss,
                100.0 * r.test_accuracy);
  }
  return 0;
}
