// Training-time comparison under the paper's cost model (eq. 19):
//     T_total = T * (d_com + d_cmp * tau).
//
// Two FedProxVR configurations — few long local runs vs many short ones —
// reach the same target loss with very different round counts T. Which one
// is *faster* depends on gamma = d_cmp/d_com, exactly the trade-off §4.3
// optimizes. This example measures T empirically for both configurations,
// then prices them across a gamma sweep.
//
//   ./build/examples/time_to_target --target 0.8
#include <cstdio>
#include <optional>

#include "core/fedproxvr.h"
#include "data/synthetic.h"
#include "nn/models.h"
#include "theory/smoothness.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  using namespace fedvr;

  std::size_t devices = 15, max_rounds = 60;
  double target = 0.8;
  std::uint64_t seed = 1;
  util::Flags flags("time_to_target",
                    "price tau-vs-T trade-offs with the eq. 19 cost model");
  flags.add("devices", &devices, "number of devices");
  flags.add("max_rounds", &max_rounds, "round budget per run");
  flags.add("target", &target, "target training loss");
  flags.add("seed", &seed, "master seed");
  flags.parse(argc, argv);

  data::SyntheticConfig cfg;
  cfg.num_devices = devices;
  cfg.min_samples = 40;
  cfg.max_samples = 200;
  cfg.seed = seed;
  const auto fed = data::make_synthetic(cfg);
  const auto model =
      nn::make_logistic_regression(cfg.dim, cfg.num_classes);
  data::Dataset pooled(fed.train.front().sample_shape(), 0,
                       cfg.num_classes);
  for (const auto& d : fed.train) pooled.append(d);
  util::Rng rng(seed);
  const auto w_probe = model->initial_parameters(rng);
  const double L = theory::estimate_smoothness(*model, pooled, w_probe, rng);

  struct Config {
    const char* name;
    std::size_t tau;
  };
  const Config configs[] = {{"short local runs (tau=10)", 10},
                            {"long local runs  (tau=80)", 80}};

  struct Outcome {
    std::optional<std::size_t> rounds_to_target;
    std::size_t tau;
  };
  std::vector<Outcome> outcomes;
  std::printf("task: Synthetic, L = %.2f, target loss %.3f\n\n", L, target);
  for (const auto& config : configs) {
    core::HyperParams hp;
    hp.beta = 5.0;
    hp.smoothness_L = L;
    hp.tau = config.tau;
    hp.mu = 0.1;
    hp.batch_size = 4;
    fl::TrainerOptions run_cfg;
    run_cfg.rounds = max_rounds;
    run_cfg.seed = seed;
    const auto trace = core::run_federated(model, fed,
                                           core::fedproxvr_sarah(hp),
                                           run_cfg);
    const auto hit = trace.first_round_below_loss(target);
    if (hit) {
      std::printf("%s: reached %.3f at round T = %zu\n", config.name, target,
                  *hit);
    } else {
      std::printf("%s: did not reach %.3f in %zu rounds (best %.3f)\n",
                  config.name, target, max_rounds, trace.min_train_loss());
    }
    outcomes.push_back({hit, config.tau});
  }

  std::printf("\ntotal training time T*(d_com + d_cmp*tau), d_com = 1:\n");
  std::printf("%10s", "gamma");
  for (const auto& config : configs) std::printf("  %26s", config.name);
  std::printf("  %s\n", "faster");
  for (double gamma : {0.001, 0.01, 0.1, 1.0}) {
    const auto tm = fl::TimingModel::from_gamma(gamma);
    std::printf("%10.3f", gamma);
    double best = 1e300;
    std::size_t best_idx = 0;
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
      if (!outcomes[i].rounds_to_target) {
        std::printf("  %26s", "n/a");
        continue;
      }
      const double cost =
          tm.total_time(*outcomes[i].rounds_to_target, outcomes[i].tau);
      std::printf("  %26.1f", cost);
      if (cost < best) {
        best = cost;
        best_idx = i;
      }
    }
    std::printf("  %s\n", configs[best_idx].name);
  }
  std::printf("\n(small gamma — costly communication — favors long local "
              "runs; large gamma favors short ones: the Fig. 1 trade-off)\n");
  return 0;
}
