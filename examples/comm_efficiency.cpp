// Communication efficiency: bytes on the wire vs accuracy across the
// algorithm × compressor × error-feedback × wire-dtype grid, plus
// ProxSkip-VR's communication skipping against the FedProxVR baseline.
//
//   ./build/examples/comm_efficiency [--rounds 30] [--devices 8] [--tau 5]
//                                    [--mu 0.1] [--beta 5] [--batch 8]
//                                    [--seed 1] [--skip 0.2] [--frac 0.1]
//                                    [--out results/comm_efficiency.csv]
//
// Part 1 runs FedProxVR(SARAH) through every uplink channel configuration:
// dense float64/float32/int8-block, TopK and RandK sparsification with and
// without error feedback, and the combined top-k+ef/q8 stack. All runs
// share the seed, data, and initialization; only the comm::ChannelOptions
// differ, so the bytes/accuracy trade-off is isolated. Byte-derived timing
// is on, so model_time also reflects the smaller messages. One row is a
// deliberate cautionary tale: rand-k+ef diverges, because error feedback
// assumes a contractive compressor and RandK's unbiased dim/k rescale is
// anything but — reinjected residuals get re-amplified every round. That
// is why the channel pairs EF with TopK.
//
// Part 2 gives FedProxVR and ProxSkip-VR the same local-step budget
// (rounds × tau ProxSkip iterations) and sweeps the communication
// probability p: at p = 1 ProxSkip communicates every iteration; at the
// paper's p ≈ 1/√κ regime it matches the baseline loss with a fraction of
// the uplink bytes — and compression stacks multiplicatively on top.
//
// Part 3 prints the per-round ledger (cumulative uplink/downlink bytes and
// accuracy) for the two headline configs, and the full grid summary is
// written to --out as CSV. Every number is a pure function of the flags,
// so the committed CSV is reproducible bit-for-bit.
#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "comm/channel.h"
#include "core/fedproxvr.h"
#include "core/proxskip.h"
#include "data/synthetic.h"
#include "nn/models.h"
#include "theory/smoothness.h"
#include "util/csv.h"
#include "util/flags.h"

namespace {

struct Row {
  std::string algorithm;
  std::string channel;
  double train_loss = 0.0;
  double test_accuracy = 0.0;
  std::size_t uplink_bytes = 0;
  std::size_t downlink_bytes = 0;
  double model_time = 0.0;
};

void print_row(const Row& r) {
  std::printf("%-22s %-18s %10.4f %8.2f%% %10.1f %10.1f %10.2f\n",
              r.algorithm.c_str(), r.channel.c_str(), r.train_loss,
              100.0 * r.test_accuracy, r.uplink_bytes / 1024.0,
              r.downlink_bytes / 1024.0, r.model_time);
}

void print_header() {
  std::printf("%-22s %-18s %10s %9s %10s %10s %10s\n", "algorithm", "channel",
              "train_loss", "test_acc", "up_KiB", "down_KiB", "model_time");
}

Row to_row(const std::string& algorithm, const std::string& channel,
           const fedvr::fl::TrainingTrace& trace) {
  return Row{algorithm,
             channel,
             trace.back().train_loss,
             trace.back().test_accuracy,
             trace.back().uplink_bytes,
             trace.back().downlink_bytes,
             trace.back().model_time};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fedvr;

  std::size_t rounds = 30, devices = 8, tau = 5, batch = 8;
  double mu = 0.1, beta = 5.0, skip = 0.2, frac = 0.1;
  std::uint64_t seed = 1;
  std::string out = "results/comm_efficiency.csv";
  util::Flags flags("comm_efficiency",
                    "bytes-on-wire vs accuracy across the comm grid");
  flags.add("rounds", &rounds, "FedProxVR global rounds T");
  flags.add("devices", &devices, "number of devices N");
  flags.add("tau", &tau, "local iterations per FedProxVR round");
  flags.add("mu", &mu, "proximal penalty");
  flags.add("beta", &beta, "step parameter (eta = 1/(beta L))");
  flags.add("batch", &batch, "mini-batch size B");
  flags.add("seed", &seed, "master seed");
  flags.add("skip", &skip, "ProxSkip-VR communication probability p");
  flags.add("frac", &frac, "TopK/RandK kept-coordinate fraction");
  flags.add("out", &out, "summary CSV path (empty = skip)");
  flags.parse(argc, argv);

  data::SyntheticConfig data_cfg;
  data_cfg.num_devices = devices;
  data_cfg.min_samples = 40;
  data_cfg.max_samples = 200;
  data_cfg.seed = seed;
  const data::FederatedDataset fed = data::make_synthetic(data_cfg);
  const auto model =
      nn::make_logistic_regression(data_cfg.dim, data_cfg.num_classes);

  data::Dataset pooled(fed.train[0].sample_shape(), 0, data_cfg.num_classes);
  for (const auto& d : fed.train) pooled.append(d);
  util::Rng rng(seed);
  const auto w_probe = model->initial_parameters(rng);
  const double L = theory::estimate_smoothness(*model, pooled, w_probe, rng);

  core::HyperParams hp;
  hp.beta = beta;
  hp.smoothness_L = L;
  hp.tau = tau;
  hp.mu = mu;
  hp.batch_size = batch;

  std::vector<Row> rows;

  // ---- Part 1: FedProxVR(SARAH) x channel grid -------------------------
  const auto topk = std::make_shared<comm::TopKCompressor>(frac);
  const auto randk = std::make_shared<comm::RandKCompressor>(frac);
  std::vector<comm::ChannelOptions> grid;
  const auto add = [&](std::shared_ptr<const comm::Compressor> c, bool ef,
                       comm::DType dtype) {
    comm::ChannelOptions o;
    o.compressor = std::move(c);
    o.error_feedback = ef;
    o.uplink_dtype = dtype;
    o.byte_timing = true;
    grid.push_back(std::move(o));
  };
  add(nullptr, false, comm::DType::kFloat64);
  add(nullptr, false, comm::DType::kFloat32);
  add(nullptr, false, comm::DType::kInt8Block);
  add(topk, false, comm::DType::kFloat64);
  add(topk, true, comm::DType::kFloat64);
  add(topk, true, comm::DType::kInt8Block);
  add(randk, false, comm::DType::kFloat64);
  add(randk, true, comm::DType::kFloat64);

  std::printf("Part 1: FedProxVR(SARAH), %zu rounds x tau=%zu, byte-derived "
              "timing\n", rounds, tau);
  print_header();
  fl::TrainingTrace dense_trace;
  for (const auto& channel : grid) {
    fl::TrainerOptions run_cfg;
    run_cfg.rounds = rounds;
    run_cfg.seed = seed;
    run_cfg.comm = channel;
    const auto trace =
        core::run_federated(model, fed, core::fedproxvr_sarah(hp), run_cfg);
    rows.push_back(to_row("fedproxvr-sarah", channel.label(), trace));
    print_row(rows.back());
    if (!channel.compressor &&
        channel.uplink_dtype == comm::DType::kFloat64) {
      dense_trace = trace;
    }
  }

  // ---- Part 2: ProxSkip-VR skip-probability sweep ----------------------
  // Same local-step budget as part 1: rounds*tau iterations of tau = 1.
  // ProxSkip pays one (possibly compressed) exchange on a p-coin instead of
  // every round, and its control variates h_n absorb the heterogeneity.
  const std::size_t iters = rounds * tau;
  std::printf("\nPart 2: ProxSkip-VR, %zu iterations (same local-step "
              "budget), gamma = eta\n", iters);
  print_header();
  print_row(rows.front());  // the dense FedProxVR baseline, for reference
  const std::vector<std::pair<double, bool>> sweep = {
      {1.0, false}, {0.5, false}, {0.2, false}, {0.1, false}, {skip, true}};
  fl::TrainingTrace headline;
  for (const auto& [p, compressed] : sweep) {
    core::ProxSkipVROptions opts;
    opts.iterations = iters;
    opts.seed = seed;
    opts.step_size = hp.eta();
    opts.skip_prob = p;
    opts.batch_size = batch;
    // The headline compressed run feeds the part-3 ledger, so it evaluates
    // at round granularity; the rest only need the final numbers.
    opts.eval_every = compressed ? 5 * tau : iters;
    if (compressed) {
      opts.comm.compressor = topk;
      opts.comm.error_feedback = true;
      opts.comm.uplink_dtype = comm::DType::kInt8Block;
    }
    opts.comm.byte_timing = true;
    const auto trace = core::run_proxskip_vr(model, fed, opts);
    char label[64];
    std::snprintf(label, sizeof(label), "p=%g %s", p,
                  opts.comm.label().c_str());
    rows.push_back(to_row("proxskip-vr", label, trace));
    print_row(rows.back());
    if (p == skip && compressed) headline = trace;
  }

  // ---- Part 3: per-round ledger for the headline configs ---------------
  std::printf("\nPart 3: per-round cumulative bytes + accuracy\n");
  std::printf("%-24s %6s %10s %10s %9s\n", "config", "round", "up_KiB",
              "down_KiB", "test_acc");
  const auto ledger = [&](const char* name, const fl::TrainingTrace& trace,
                          std::size_t every) {
    for (const auto& r : trace.rounds) {
      if (r.round % every != 0 && r.round != trace.back().round) continue;
      std::printf("%-24s %6zu %10.1f %10.1f %8.2f%%\n", name, r.round,
                  r.uplink_bytes / 1024.0, r.downlink_bytes / 1024.0,
                  100.0 * r.test_accuracy);
    }
  };
  ledger("fedproxvr dense/f64", dense_trace, 5);
  if (!headline.rounds.empty()) {
    char name[64];
    std::snprintf(name, sizeof(name), "proxskip p=%g compressed", skip);
    // ProxSkip iterations are cheap; sample the ledger at round granularity.
    ledger(name, headline, 5 * tau);
  }

  if (!out.empty()) {
    util::CsvWriter csv(out, {"algorithm", "channel", "train_loss",
                              "test_accuracy", "uplink_bytes",
                              "downlink_bytes", "model_time"});
    for (const auto& r : rows) {
      csv.builder()
          .add(r.algorithm)
          .add(r.channel)
          .add(r.train_loss)
          .add(r.test_accuracy)
          .add(r.uplink_bytes)
          .add(r.downlink_bytes)
          .add(r.model_time)
          .commit();
    }
    std::printf("\nwrote %s (%zu configs)\n", out.c_str(), rows.size());
  }
  return 0;
}
