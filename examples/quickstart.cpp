// Quickstart: train FedProxVR (SARAH) on the heterogeneous Synthetic
// dataset and watch it converge.
//
//   ./build/examples/quickstart [--rounds 30] [--devices 20] [--tau 20]
//                               [--mu 0.1] [--beta 5] [--batch 8]
//                               [--trace trace.json]
//                               [--obs-metrics metrics.jsonl]
//
// Walks through the whole public API: generate federated data, build a
// model, estimate the smoothness constant, pick hyperparameters, run, and
// inspect the trace. Passing --trace or --obs-metrics turns on the
// fedvr::obs profiler: the run exports a Chrome trace_event file (load it
// in chrome://tracing or https://ui.perfetto.dev) plus a metrics JSONL
// snapshot, and prints the measured per-round delays next to the analytic
// eq. 19 model.
#include <cstdio>

#include "core/fedproxvr.h"
#include "data/synthetic.h"
#include "nn/models.h"
#include "theory/smoothness.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  using namespace fedvr;

  std::size_t rounds = 30, devices = 20, tau = 20, batch = 8;
  double mu = 0.1, beta = 5.0;
  std::uint64_t seed = 1;
  std::string trace_path, metrics_path;
  util::Flags flags("quickstart", "FedProxVR(SARAH) on Synthetic(1,1)");
  flags.add("rounds", &rounds, "global rounds T");
  flags.add("devices", &devices, "number of devices N");
  flags.add("tau", &tau, "local iterations");
  flags.add("mu", &mu, "proximal penalty");
  flags.add("beta", &beta, "step parameter (eta = 1/(beta L))");
  flags.add("batch", &batch, "mini-batch size B");
  flags.add("seed", &seed, "master seed");
  flags.add("trace", &trace_path, "write a Chrome trace_event JSON here");
  flags.add("obs-metrics", &metrics_path, "write a metrics JSONL here");
  flags.parse(argc, argv);

  // 1. Federated data: power-law device sizes, per-device train/test split.
  data::SyntheticConfig data_cfg;
  data_cfg.num_devices = devices;
  data_cfg.min_samples = 40;
  data_cfg.max_samples = 400;
  data_cfg.seed = seed;
  const data::FederatedDataset fed = data::make_synthetic(data_cfg);
  std::printf("generated %zu devices, %zu training samples total\n",
              fed.num_devices(), fed.total_train_size());

  // 2. Model: multinomial logistic regression (the paper's convex task).
  const auto model =
      nn::make_logistic_regression(data_cfg.dim, data_cfg.num_classes);

  // 3. Estimate L from pooled data so eta = 1/(beta L) is well-scaled.
  data::Dataset pooled(fed.train[0].sample_shape(), 0, data_cfg.num_classes);
  for (const auto& d : fed.train) pooled.append(d);
  util::Rng rng(seed);
  const auto w_probe = model->initial_parameters(rng);
  const double L = theory::estimate_smoothness(*model, pooled, w_probe, rng);
  std::printf("estimated smoothness L = %.3f  =>  eta = %.5f\n", L,
              1.0 / (beta * L));

  // 4. Configure and run FedProxVR with the SARAH estimator.
  core::HyperParams hp;
  hp.beta = beta;
  hp.smoothness_L = L;
  hp.tau = tau;
  hp.mu = mu;
  hp.batch_size = batch;
  fl::TrainerOptions run_cfg;
  run_cfg.rounds = rounds;
  run_cfg.seed = seed;
  if (!trace_path.empty() || !metrics_path.empty()) {
    run_cfg.observability.enabled = true;
    run_cfg.observability.chrome_trace_path = trace_path;
    run_cfg.observability.metrics_jsonl_path = metrics_path;
  }
  const fl::TrainingTrace trace =
      core::run_federated(model, fed, core::fedproxvr_sarah(hp), run_cfg);

  // 5. Inspect results.
  std::printf("\n%6s  %12s  %10s\n", "round", "train_loss", "test_acc");
  for (const auto& r : trace.rounds) {
    if (r.round % 5 == 0 || r.round == 1 || r.round == rounds) {
      std::printf("%6zu  %12.5f  %9.2f%%\n", r.round, r.train_loss,
                  100.0 * r.test_accuracy);
    }
  }
  const auto [best_acc, best_round] = trace.best_accuracy();
  std::printf("\nbest test accuracy %.2f%% at round %zu\n", 100.0 * best_acc,
              best_round);

  // 6. If profiling was on, compare the measured per-round delays with the
  // analytic eq. 19 model the trainer charges to model_time.
  if (trace.measured_timing) {
    const fl::MeasuredTiming& m = *trace.measured_timing;
    const fl::TimingModel& a = run_cfg.timing;
    std::printf("\neq. 19 round time  T_round = d_com + d_cmp * tau\n");
    std::printf("  analytic: d_com = %.4g s, d_cmp = %.4g s  =>  %.4g s\n",
                a.d_com, a.d_cmp, a.round_time(tau));
    std::printf("  measured: d_com = %.4g s, d_cmp = %.4g s  =>  %.4g s\n",
                m.d_com, m.d_cmp, m.round_time(tau));
    if (!trace_path.empty()) {
      std::printf("Chrome trace written to %s (open in chrome://tracing)\n",
                  trace_path.c_str());
    }
    if (!metrics_path.empty()) {
      std::printf("metrics snapshot written to %s\n", metrics_path.c_str());
    }
  }
  return 0;
}
