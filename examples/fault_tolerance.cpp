// Fault tolerance: how FedProxVR, FedProx, and FedAvg degrade when devices
// crash, straggle, or lose uplink packets — and what a synchronous-round
// deadline buys.
//
//   ./build/examples/fault_tolerance [--rounds 15] [--devices 10] [--tau 10]
//                                    [--mu 0.1] [--beta 5] [--batch 8]
//                                    [--seed 1] [--deadline 0]
//                                    [--corrupt 0.2]
//
// Part 1 sweeps dropout rates {0, 0.1, 0.3, 0.5} across the three
// algorithms: every run shares the seed, data, and initialization, so the
// only difference is how many devices each round aggregates. Part 2 runs
// one detailed FedProxVR session under a mixed fault model (crashes +
// stragglers + lossy uplink, optionally deadline-capped) and prints the
// per-round fault log the trainer records.
//
// Part 3 turns the faults Byzantine: a corruption-rate × aggregator grid
// (finite sign-flip/scale attacks, which the server's finiteness rejection
// alone cannot catch) showing the weighted mean degrade while the robust
// aggregators hold. Part 4 runs one NaN-injecting session at the --corrupt
// rate with rejection + quarantine armed and prints the defense log.
//
// Fault sequences are a pure function of (seed, device, round): rerunning
// with the same flags reproduces every crash, retry, and straggler event —
// and every corrupted update — bit for bit, on any thread-pool size.
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "core/fedproxvr.h"
#include "fl/aggregation.h"
#include "data/synthetic.h"
#include "nn/models.h"
#include "theory/smoothness.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  using namespace fedvr;

  std::size_t rounds = 15, devices = 10, tau = 10, batch = 8;
  double mu = 0.1, beta = 5.0, deadline = 0.0, corrupt = 0.2;
  std::uint64_t seed = 1;
  util::Flags flags("fault_tolerance",
                    "algorithm robustness under device faults");
  flags.add("rounds", &rounds, "global rounds T");
  flags.add("devices", &devices, "number of devices N");
  flags.add("tau", &tau, "local iterations");
  flags.add("mu", &mu, "proximal penalty");
  flags.add("beta", &beta, "step parameter (eta = 1/(beta L))");
  flags.add("batch", &batch, "mini-batch size B");
  flags.add("seed", &seed, "master seed (also drives fault sampling)");
  flags.add("deadline", &deadline,
            "round deadline in model-time units (0 = none) for part 2");
  flags.add("corrupt", &corrupt,
            "per-update corruption probability for the part 4 defense log");
  flags.parse(argc, argv);

  data::SyntheticConfig data_cfg;
  data_cfg.num_devices = devices;
  data_cfg.min_samples = 40;
  data_cfg.max_samples = 200;
  data_cfg.seed = seed;
  const data::FederatedDataset fed = data::make_synthetic(data_cfg);
  const auto model =
      nn::make_logistic_regression(data_cfg.dim, data_cfg.num_classes);

  data::Dataset pooled(fed.train[0].sample_shape(), 0, data_cfg.num_classes);
  for (const auto& d : fed.train) pooled.append(d);
  util::Rng rng(seed);
  const auto w_probe = model->initial_parameters(rng);
  const double L = theory::estimate_smoothness(*model, pooled, w_probe, rng);

  core::HyperParams hp;
  hp.beta = beta;
  hp.smoothness_L = L;
  hp.tau = tau;
  hp.mu = mu;
  hp.batch_size = batch;
  const std::vector<core::AlgorithmSpec> specs = {
      core::fedavg(hp), core::fedprox(hp), core::fedproxvr_sarah(hp)};

  // ---- Part 1: dropout sweep across algorithms -------------------------
  // Same seed and data everywhere; only the crash rate changes. Variance-
  // reduced aggregation has to absorb the thinner (renormalized) averages.
  const std::vector<double> dropout_rates = {0.0, 0.1, 0.3, 0.5};
  std::printf("Part 1: final train loss after %zu rounds, by dropout rate\n",
              rounds);
  std::printf("%-18s", "algorithm");
  for (double p : dropout_rates) std::printf("  p=%-8.1f", p);
  std::printf("\n");
  for (const auto& spec : specs) {
    std::printf("%-18s", spec.name.c_str());
    for (double p : dropout_rates) {
      fl::TrainerOptions run_cfg;
      run_cfg.rounds = rounds;
      run_cfg.seed = seed;
      fl::FaultModelConfig faults;
      faults.dropout_prob = p;
      run_cfg.faults = fl::FaultModel(faults);
      const auto trace = core::run_federated(model, fed, spec, run_cfg);
      std::printf("  %-10.4f", trace.back().train_loss);
    }
    std::printf("\n");
  }

  // ---- Part 2: one detailed run under a mixed fault model --------------
  fl::TrainerOptions run_cfg;
  run_cfg.rounds = rounds;
  run_cfg.seed = seed;
  fl::FaultModelConfig faults;
  faults.dropout_prob = 0.1;
  faults.straggler_prob = 0.2;
  faults.straggler_slowdown = 4.0;
  faults.uplink_loss_prob = 0.15;
  faults.uplink_max_retries = 3;
  faults.retry_backoff = 2.0;
  run_cfg.faults = fl::FaultModel(faults);
  if (deadline > 0.0) run_cfg.round_deadline = deadline;

  std::printf("\nPart 2: FedProxVR(SARAH), dropout 10%%, stragglers 20%% "
              "(4x), uplink loss 15%%");
  if (deadline > 0.0) {
    std::printf(", deadline %.2f", deadline);
  }
  std::printf("\n%6s  %12s  %9s  %8s  %10s  %8s  %8s  %11s\n", "round",
              "train_loss", "test_acc", "dropped", "straggling", "retries",
              "missed", "round_time");
  const auto trace =
      core::run_federated(model, fed, core::fedproxvr_sarah(hp), run_cfg);
  // Counters in the trace are cumulative; print per-round deltas.
  std::size_t prev_dropped = 0, prev_stragglers = 0, prev_retries = 0,
              prev_missed = 0;
  for (const auto& r : trace.rounds) {
    std::printf("%6zu  %12.5f  %8.2f%%  %8zu  %10zu  %8zu  %8zu  %11.3f\n",
                r.round, r.train_loss, 100.0 * r.test_accuracy,
                r.dropped_devices - prev_dropped,
                r.straggler_devices - prev_stragglers,
                r.uplink_retries - prev_retries,
                r.deadline_misses - prev_missed, r.realized_round_time);
    prev_dropped = r.dropped_devices;
    prev_stragglers = r.straggler_devices;
    prev_retries = r.uplink_retries;
    prev_missed = r.deadline_misses;
  }
  std::printf("\ntotals: %zu dropped, %zu straggler events, %zu uplink "
              "retries, %zu deadline misses over %zu rounds\n",
              trace.back().dropped_devices, trace.back().straggler_devices,
              trace.back().uplink_retries, trace.back().deadline_misses,
              trace.rounds.size());
  std::printf("model time %.3f vs fault-free %.3f (eq. 19)\n",
              trace.back().model_time,
              run_cfg.timing.total_time(trace.rounds.size(), tau));

  // ---- Part 3: corruption rate × aggregator grid -----------------------
  // Finite attacks only (sign flips + 50x-scaled updates): the server's
  // always-on finiteness rejection never fires, so whatever robustness the
  // table shows comes from the aggregation rule alone. Same seed, data,
  // and initialization in every cell.
  const std::vector<double> corrupt_rates = {0.0, 0.1, 0.2, 0.4};
  std::printf("\nPart 3: FedProxVR(SARAH) final train loss, corruption rate "
              "x aggregator\n(finite sign-flip/scale attacks; rejection "
              "cannot catch these)\n");
  std::printf("%-14s", "aggregator");
  for (double p : corrupt_rates) std::printf("  p=%-8.1f", p);
  std::printf("\n");
  for (const std::string_view agg_name : fl::aggregator_names()) {
    std::printf("%-14s", std::string(agg_name).c_str());
    for (double p : corrupt_rates) {
      fl::TrainerOptions cell_cfg;
      cell_cfg.rounds = rounds;
      cell_cfg.seed = seed;
      cell_cfg.aggregator =
          fl::make_aggregator(*fl::aggregator_kind_from_name(agg_name));
      if (p > 0.0) {
        fl::FaultModelConfig attack;
        attack.corrupt_prob = p;
        attack.corrupt_nan_weight = 0.0;
        attack.corrupt_stale_weight = 0.0;
        attack.corrupt_scale_factor = 50.0;
        cell_cfg.faults = fl::FaultModel(attack);
      }
      const auto cell =
          core::run_federated(model, fed, core::fedproxvr_sarah(hp), cell_cfg);
      std::printf("  %-10.4f", cell.back().train_loss);
    }
    std::printf("\n");
  }

  // ---- Part 4: NaN injection vs rejection + quarantine -----------------
  fl::TrainerOptions defense_cfg;
  defense_cfg.rounds = rounds;
  defense_cfg.seed = seed;
  fl::FaultModelConfig nan_attack;
  nan_attack.corrupt_prob = corrupt;
  nan_attack.corrupt_sign_weight = 0.0;
  nan_attack.corrupt_scale_weight = 0.0;
  nan_attack.corrupt_stale_weight = 0.0;
  defense_cfg.faults = fl::FaultModel(nan_attack);
  defense_cfg.defense.quarantine_strikes = 2;
  defense_cfg.defense.quarantine_rounds = 3;
  std::printf("\nPart 4: NaN injection at rate %.2f vs always-on rejection "
              "(quarantine after 2 strikes, 3 rounds)\n", corrupt);
  std::printf("%6s  %12s  %10s  %9s  %12s\n", "round", "train_loss",
              "corrupted", "rejected", "quarantined");
  const auto defended = core::run_federated(
      model, fed, core::fedproxvr_sarah(hp), defense_cfg);
  std::size_t prev_corrupted = 0, prev_rejected = 0, prev_quarantined = 0;
  for (const auto& r : defended.rounds) {
    std::printf("%6zu  %12.5f  %10zu  %9zu  %12zu\n", r.round, r.train_loss,
                r.corrupted_updates - prev_corrupted,
                r.rejected_updates - prev_rejected,
                r.quarantined_device_rounds - prev_quarantined);
    prev_corrupted = r.corrupted_updates;
    prev_rejected = r.rejected_updates;
    prev_quarantined = r.quarantined_device_rounds;
  }
  std::printf("\ndefense totals: %zu corrupted updates delivered, %zu "
              "rejected, %zu quarantined device-rounds; final model %s\n",
              defended.back().corrupted_updates,
              defended.back().rejected_updates,
              defended.back().quarantined_device_rounds,
              defended.diverged() ? "DIVERGED" : "healthy");
  return 0;
}
