// Parameter planner: the §4.3 training-time minimization as a tool.
//
// Given your deployment's communication/computation cost ratio gamma and
// problem constants (L, lambda, sigma-bar^2), prints the FedProxVR
// parameters that minimize total training time, plus the predicted number
// of global rounds for a target epsilon.
//
//   ./build/examples/param_planner --gamma 0.01 --L 1 --lambda 0.5
//       --sigma2 0.2 --epsilon 0.01 --delta0 10   (one command line)
#include <cstdio>

#include "theory/bounds.h"
#include "theory/param_opt.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  using namespace fedvr;

  double gamma = 0.01, L = 1.0, lambda = 0.5, sigma2 = 0.2;
  double epsilon = 0.01, delta0 = 10.0;
  util::Flags flags("param_planner",
                    "optimal FedProxVR parameters for your cost ratio");
  flags.add("gamma", &gamma, "d_cmp / d_com weight factor");
  flags.add("L", &L, "smoothness constant");
  flags.add("lambda", &lambda, "bounded non-convexity constant");
  flags.add("sigma2", &sigma2, "data heterogeneity sigma-bar^2");
  flags.add("epsilon", &epsilon, "target stationarity gap");
  flags.add("delta0", &delta0, "initial cost gap F(w0) - F(w*)");
  flags.parse(argc, argv);

  const theory::ProblemConstants pc{.L = L,
                                    .lambda = lambda,
                                    .sigma_bar_sq = sigma2};
  const auto p = theory::optimize_parameters(gamma, pc);
  if (!p) {
    std::printf("no feasible FedProxVR parameters for gamma = %g\n", gamma);
    return 1;
  }
  std::printf("optimal parameters for gamma = %g (L=%g, lambda=%g, "
              "sigma^2=%g):\n\n",
              gamma, L, lambda, sigma2);
  std::printf("  beta   = %10.3f   (step size eta = 1/(beta L) = %.6f)\n",
              p->beta, 1.0 / (p->beta * L));
  std::printf("  mu     = %10.3f   (proximal penalty)\n", p->mu);
  std::printf("  tau    = %10.1f   (local iterations, eq. 16)\n", p->tau);
  std::printf("  theta  = %10.4f   (local accuracy, eq. 22)\n", p->theta);
  std::printf("  Theta  = %10.5f   (federated factor, Thm. 1)\n", p->Theta);
  const double T = theory::global_rounds_needed(delta0, p->Theta, epsilon);
  std::printf("\npredicted global rounds for epsilon = %g: T >= %.0f\n",
              epsilon, T);
  std::printf("predicted training time (d_com = 1): %.1f\n",
              T * (1.0 + gamma * p->tau));

  // Context: how the optimum shifts across the gamma range (Fig. 1).
  std::printf("\n%10s  %10s  %10s  %10s  %8s  %9s\n", "gamma", "beta*",
              "mu*", "tau*", "theta*", "Theta*");
  const double sweep[] = {1e-4, 1e-3, 1e-2, 1e-1, 1.0};
  for (double g : sweep) {
    const auto q = theory::optimize_parameters(g, pc);
    if (q) {
      std::printf("%10.4f  %10.2f  %10.2f  %10.1f  %8.4f  %9.5f\n", g,
                  q->beta, q->mu, q->tau, q->theta, q->Theta);
    }
  }
  return 0;
}
