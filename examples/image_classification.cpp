// Federated image classification with a convex model — the paper's Fig. 2
// scenario as a runnable example.
//
// Compares FedAvg against both FedProxVR variants on a non-IID image
// federation (2 labels per device, power-law sizes). Uses real
// MNIST/Fashion-MNIST IDX files from --data_dir when present, otherwise the
// procedural substitutes.
//
//   ./build/examples/image_classification --family fashion --devices 30
//       --rounds 15 --tau 20 --beta 7 --mu 0.1   (one command line)
#include <array>
#include <cstdio>

#include "core/fedproxvr.h"
#include "data/image_datasets.h"
#include "nn/models.h"
#include "theory/smoothness.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  using namespace fedvr;

  std::string family = "fashion";
  std::string data_dir = "data";
  std::size_t devices = 30, rounds = 15, tau = 20, batch = 32, side = 28,
              pool = 4000;
  double beta = 7.0, mu = 0.1;
  std::uint64_t seed = 1;
  util::Flags flags("image_classification",
                    "FedAvg vs FedProxVR on federated image data (convex)");
  flags.add("family", &family, "'mnist' or 'fashion'");
  flags.add("data_dir", &data_dir, "directory with real IDX files (optional)");
  flags.add("devices", &devices, "number of devices");
  flags.add("rounds", &rounds, "global rounds T");
  flags.add("tau", &tau, "local iterations");
  flags.add("batch", &batch, "mini-batch size B");
  flags.add("beta", &beta, "step parameter");
  flags.add("mu", &mu, "proximal penalty");
  flags.add("side", &side, "image side for procedural fallback");
  flags.add("pool", &pool, "procedural pool size");
  flags.add("seed", &seed, "master seed");
  flags.parse(argc, argv);

  data::ImageDatasetConfig cfg;
  cfg.family = family == "mnist" ? data::ImageFamily::kDigits
                                 : data::ImageFamily::kFashion;
  cfg.data_dir = data_dir;
  cfg.side = side;
  cfg.pool_size = pool;
  cfg.shard.num_devices = devices;
  cfg.shard.min_samples = 37;
  cfg.shard.max_samples = 400;
  cfg.shard.seed = seed;
  cfg.seed = seed;
  const auto dataset = data::make_federated_images(cfg);
  std::printf("dataset: %s (%s), %zu devices, %zu train samples\n",
              family.c_str(),
              dataset.used_real_files ? "real IDX files" : "procedural",
              dataset.fed.num_devices(), dataset.fed.total_train_size());

  const std::size_t dim = dataset.fed.train[0].feature_dim();
  const auto model = nn::make_logistic_regression(dim, 10);

  data::Dataset pooled(dataset.fed.train[0].sample_shape(), 0, 10);
  for (const auto& d : dataset.fed.train) pooled.append(d);
  util::Rng rng(seed);
  const auto w_probe = model->initial_parameters(rng);
  const double L = theory::estimate_smoothness(*model, pooled, w_probe, rng);
  std::printf("estimated L = %.3f, eta = %.5f\n", L, 1.0 / (beta * L));

  core::HyperParams hp;
  hp.beta = beta;
  hp.smoothness_L = L;
  hp.tau = tau;
  hp.mu = mu;
  hp.batch_size = batch;
  const std::array specs = {core::fedavg(hp), core::fedproxvr_svrg(hp),
                            core::fedproxvr_sarah(hp)};
  fl::TrainerOptions run_cfg;
  run_cfg.rounds = rounds;
  run_cfg.seed = seed;
  const auto traces =
      core::compare_algorithms(model, dataset.fed, specs, run_cfg);

  std::printf("\n%-18s  %12s  %12s  %10s\n", "algorithm", "final_loss",
              "best_acc", "at_round");
  for (const auto& t : traces) {
    const auto [acc, round] = t.best_accuracy();
    std::printf("%-18s  %12.5f  %11.2f%%  %10zu\n", t.algorithm.c_str(),
                t.back().train_loss, 100.0 * acc, round);
  }
  return 0;
}
