#include "tensor/kernels.h"

#include "check/check.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/error.h"
#include "util/rng.h"

namespace fedvr::tensor {
namespace {

using fedvr::util::Error;
using fedvr::util::Rng;

// Naive reference GEMM for property tests.
std::vector<double> ref_gemm(Trans ta, Trans tb, std::size_t m, std::size_t n,
                             std::size_t k, const std::vector<double>& a,
                             const std::vector<double>& b) {
  auto A = [&](std::size_t i, std::size_t p) {
    return ta == Trans::kNo ? a[i * k + p] : a[p * m + i];
  };
  auto B = [&](std::size_t p, std::size_t j) {
    return tb == Trans::kNo ? b[p * n + j] : b[j * k + p];
  };
  std::vector<double> c(m * n, 0.0);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::size_t p = 0; p < k; ++p) acc += A(i, p) * B(p, j);
      c[i * n + j] = acc;
    }
  }
  return c;
}

TEST(Gemm, SmallKnownProduct) {
  // [1 2; 3 4] * [5 6; 7 8] = [19 22; 43 50]
  const std::vector<double> a = {1, 2, 3, 4};
  const std::vector<double> b = {5, 6, 7, 8};
  std::vector<double> c(4, 0.0);
  gemm_packed(Trans::kNo, Trans::kNo, 2, 2, 2, 1.0, a, b, 0.0, c);
  EXPECT_DOUBLE_EQ(c[0], 19);
  EXPECT_DOUBLE_EQ(c[1], 22);
  EXPECT_DOUBLE_EQ(c[2], 43);
  EXPECT_DOUBLE_EQ(c[3], 50);
}

TEST(Gemm, AlphaBetaCombine) {
  const std::vector<double> a = {1, 0, 0, 1};  // identity
  const std::vector<double> b = {2, 3, 4, 5};
  std::vector<double> c = {10, 10, 10, 10};
  gemm_packed(Trans::kNo, Trans::kNo, 2, 2, 2, 2.0, a, b, 0.5, c);
  // c = 2*b + 0.5*10
  EXPECT_DOUBLE_EQ(c[0], 9);
  EXPECT_DOUBLE_EQ(c[1], 11);
  EXPECT_DOUBLE_EQ(c[2], 13);
  EXPECT_DOUBLE_EQ(c[3], 15);
}

TEST(Gemm, BetaZeroIgnoresExistingC) {
  const std::vector<double> a = {1};
  const std::vector<double> b = {1};
  std::vector<double> c = {123456.0};
  gemm_packed(Trans::kNo, Trans::kNo, 1, 1, 1, 1.0, a, b, 0.0, c);
  EXPECT_DOUBLE_EQ(c[0], 1.0);
}

struct GemmCase {
  Trans ta;
  Trans tb;
  std::size_t m, n, k;
};

class GemmProperty : public ::testing::TestWithParam<GemmCase> {};

TEST_P(GemmProperty, MatchesNaiveReference) {
  const auto [ta, tb, m, n, k] = GetParam();
  Rng rng(m * 1000 + n * 100 + k * 10 +
          static_cast<std::size_t>(ta == Trans::kYes) * 2 +
          static_cast<std::size_t>(tb == Trans::kYes));
  std::vector<double> a(m * k), b(k * n);
  for (auto& v : a) v = rng.normal();
  for (auto& v : b) v = rng.normal();
  std::vector<double> c(m * n, 0.0);
  gemm_packed(ta, tb, m, n, k, 1.0, a, b, 0.0, c);
  const auto ref = ref_gemm(ta, tb, m, n, k, a, b);
  for (std::size_t i = 0; i < c.size(); ++i) {
    EXPECT_NEAR(c[i], ref[i], 1e-10 * (1.0 + std::abs(ref[i])));
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllTransposeAndShapeCombos, GemmProperty,
    ::testing::Values(GemmCase{Trans::kNo, Trans::kNo, 3, 4, 5},
                      GemmCase{Trans::kYes, Trans::kNo, 3, 4, 5},
                      GemmCase{Trans::kNo, Trans::kYes, 3, 4, 5},
                      GemmCase{Trans::kYes, Trans::kYes, 3, 4, 5},
                      GemmCase{Trans::kNo, Trans::kNo, 1, 1, 1},
                      GemmCase{Trans::kNo, Trans::kNo, 16, 16, 16},
                      GemmCase{Trans::kYes, Trans::kNo, 7, 2, 9},
                      GemmCase{Trans::kNo, Trans::kYes, 2, 13, 1},
                      GemmCase{Trans::kYes, Trans::kYes, 5, 5, 8}));

TEST(Gemm, StridedCRegion) {
  // Write a 2x2 product into the top-left of a 2x4 buffer (ldc = 4).
  const std::vector<double> a = {1, 0, 0, 1};
  const std::vector<double> b = {1, 2, 3, 4};
  std::vector<double> c(8, -1.0);
  gemm(Trans::kNo, Trans::kNo, 2, 2, 2, 1.0, a, 2, b, 2, 0.0, c, 4);
  EXPECT_DOUBLE_EQ(c[0], 1);
  EXPECT_DOUBLE_EQ(c[1], 2);
  EXPECT_DOUBLE_EQ(c[2], -1);  // untouched
  EXPECT_DOUBLE_EQ(c[4], 3);
  EXPECT_DOUBLE_EQ(c[5], 4);
}

TEST(Gemm, TooSmallStorageThrows) {
  if (!check::active()) GTEST_SKIP() << "fedvr::check inactive";
  const std::vector<double> a = {1, 2, 3};  // needs 4 for 2x2
  const std::vector<double> b = {1, 2, 3, 4};
  std::vector<double> c(4);
  EXPECT_THROW(gemm_packed(Trans::kNo, Trans::kNo, 2, 2, 2, 1.0, a, b, 0.0,
                           c),
               Error);
}

TEST(Gemv, NoTransposeMatchesManual) {
  // A = [1 2 3; 4 5 6], x = [1, 1, 1] -> [6, 15]
  const std::vector<double> a = {1, 2, 3, 4, 5, 6};
  const std::vector<double> x = {1, 1, 1};
  std::vector<double> y(2, 0.0);
  gemv(Trans::kNo, 2, 3, 1.0, a, x, 0.0, y);
  EXPECT_DOUBLE_EQ(y[0], 6);
  EXPECT_DOUBLE_EQ(y[1], 15);
}

TEST(Gemv, TransposeMatchesManual) {
  // A^T * x with A (2x3), x len 2: [1 4; 2 5; 3 6] * [1; 2] = [9, 12, 15]
  const std::vector<double> a = {1, 2, 3, 4, 5, 6};
  const std::vector<double> x = {1, 2};
  std::vector<double> y(3, 0.0);
  gemv(Trans::kYes, 2, 3, 1.0, a, x, 0.0, y);
  EXPECT_DOUBLE_EQ(y[0], 9);
  EXPECT_DOUBLE_EQ(y[1], 12);
  EXPECT_DOUBLE_EQ(y[2], 15);
}

TEST(Gemv, BetaAccumulates) {
  const std::vector<double> a = {1, 0, 0, 1};
  const std::vector<double> x = {3, 4};
  std::vector<double> y = {100, 200};
  gemv(Trans::kNo, 2, 2, 1.0, a, x, 1.0, y);
  EXPECT_DOUBLE_EQ(y[0], 103);
  EXPECT_DOUBLE_EQ(y[1], 204);
}

TEST(Gemv, WrongVectorLengthThrows) {
  if (!check::active()) GTEST_SKIP() << "fedvr::check inactive";
  const std::vector<double> a = {1, 2, 3, 4};
  const std::vector<double> x = {1.0};  // should be 2
  std::vector<double> y(2);
  EXPECT_THROW(gemv(Trans::kNo, 2, 2, 1.0, a, x, 0.0, y), Error);
}

TEST(Relu, ClampsNegatives) {
  const std::vector<double> x = {-2, -0.0, 0.5, 3};
  std::vector<double> out(4);
  relu(x, out);
  EXPECT_DOUBLE_EQ(out[0], 0);
  EXPECT_DOUBLE_EQ(out[1], 0);
  EXPECT_DOUBLE_EQ(out[2], 0.5);
  EXPECT_DOUBLE_EQ(out[3], 3);
}

TEST(Relu, BackwardMasksByForwardInput) {
  const std::vector<double> x = {-1, 2, 0, 3};
  const std::vector<double> dy = {10, 10, 10, 10};
  std::vector<double> dx(4);
  relu_backward(x, dy, dx);
  EXPECT_DOUBLE_EQ(dx[0], 0);
  EXPECT_DOUBLE_EQ(dx[1], 10);
  EXPECT_DOUBLE_EQ(dx[2], 0);  // subgradient at 0 chosen as 0
  EXPECT_DOUBLE_EQ(dx[3], 10);
}

TEST(Softmax, RowsSumToOne) {
  Rng rng(7);
  const std::size_t rows = 5, cols = 9;
  std::vector<double> logits(rows * cols);
  for (auto& v : logits) v = rng.normal(0.0, 3.0);
  std::vector<double> probs(rows * cols);
  softmax_rows(rows, cols, logits, probs);
  for (std::size_t i = 0; i < rows; ++i) {
    double sum = 0.0;
    for (std::size_t j = 0; j < cols; ++j) {
      EXPECT_GT(probs[i * cols + j], 0.0);
      sum += probs[i * cols + j];
    }
    EXPECT_NEAR(sum, 1.0, 1e-12);
  }
}

TEST(Softmax, IsStableForHugeLogits) {
  const std::vector<double> logits = {1000.0, 1000.0, -1000.0};
  std::vector<double> probs(3);
  softmax_rows(1, 3, logits, probs);
  EXPECT_NEAR(probs[0], 0.5, 1e-12);
  EXPECT_NEAR(probs[1], 0.5, 1e-12);
  EXPECT_NEAR(probs[2], 0.0, 1e-12);
}

TEST(Softmax, ShiftInvariance) {
  const std::vector<double> a = {1.0, 2.0, 3.0};
  const std::vector<double> b = {11.0, 12.0, 13.0};
  std::vector<double> pa(3), pb(3);
  softmax_rows(1, 3, a, pa);
  softmax_rows(1, 3, b, pb);
  for (int j = 0; j < 3; ++j) EXPECT_NEAR(pa[j], pb[j], 1e-12);
}

TEST(ArgmaxRows, PicksFirstMaximum) {
  const std::vector<double> x = {0, 5, 5, 1,   // -> 1 (first of ties)
                                 9, 2, 3, 4};  // -> 0
  std::vector<std::size_t> out(2);
  argmax_rows(2, 4, x, out);
  EXPECT_EQ(out[0], 1u);
  EXPECT_EQ(out[1], 0u);
}

TEST(AddBiasRows, AddsPerColumn) {
  std::vector<double> x = {1, 2, 3, 4};
  const std::vector<double> bias = {10, 20};
  add_bias_rows(2, 2, x, bias);
  EXPECT_DOUBLE_EQ(x[0], 11);
  EXPECT_DOUBLE_EQ(x[1], 22);
  EXPECT_DOUBLE_EQ(x[2], 13);
  EXPECT_DOUBLE_EQ(x[3], 24);
}

TEST(SumRows, ComputesColumnSums) {
  const std::vector<double> dy = {1, 2, 3, 4, 5, 6};
  std::vector<double> g(3, 99.0);
  sum_rows(2, 3, dy, g);
  EXPECT_DOUBLE_EQ(g[0], 5);
  EXPECT_DOUBLE_EQ(g[1], 7);
  EXPECT_DOUBLE_EQ(g[2], 9);
}

}  // namespace
}  // namespace fedvr::tensor
