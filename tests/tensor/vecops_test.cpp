#include "tensor/vecops.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/error.h"
#include "util/rng.h"

namespace fedvr::tensor {
namespace {

using fedvr::util::Error;
using fedvr::util::Rng;

TEST(Vecops, AxpyAccumulates) {
  const std::vector<double> x = {1, 2, 3};
  std::vector<double> y = {10, 20, 30};
  axpy(2.0, x, y);
  EXPECT_DOUBLE_EQ(y[0], 12);
  EXPECT_DOUBLE_EQ(y[1], 24);
  EXPECT_DOUBLE_EQ(y[2], 36);
}

TEST(Vecops, AxpySizeMismatchThrows) {
  const std::vector<double> x = {1, 2};
  std::vector<double> y = {1};
  EXPECT_THROW(axpy(1.0, x, y), Error);
}

TEST(Vecops, AxpbyBlends) {
  const std::vector<double> x = {4, 8};
  std::vector<double> y = {1, 1};
  axpby(0.5, x, 2.0, y);
  EXPECT_DOUBLE_EQ(y[0], 4);  // 0.5*4 + 2*1
  EXPECT_DOUBLE_EQ(y[1], 6);
}

TEST(Vecops, ScalMultiplies) {
  std::vector<double> x = {1, -2, 3};
  scal(-2.0, x);
  EXPECT_DOUBLE_EQ(x[0], -2);
  EXPECT_DOUBLE_EQ(x[1], 4);
  EXPECT_DOUBLE_EQ(x[2], -6);
}

TEST(Vecops, DotMatchesManual) {
  const std::vector<double> x = {1, 2, 3};
  const std::vector<double> y = {4, -5, 6};
  EXPECT_DOUBLE_EQ(dot(x, y), 4 - 10 + 18);
}

TEST(Vecops, Nrm2OfUnitVectors) {
  const std::vector<double> e = {0, 1, 0};
  EXPECT_DOUBLE_EQ(nrm2(e), 1.0);
  const std::vector<double> v = {3, 4};
  EXPECT_DOUBLE_EQ(nrm2(v), 5.0);
  EXPECT_DOUBLE_EQ(nrm2_squared(v), 25.0);
}

TEST(Vecops, SquaredDistance) {
  const std::vector<double> x = {1, 2};
  const std::vector<double> y = {4, 6};
  EXPECT_DOUBLE_EQ(squared_distance(x, y), 9 + 16);
}

TEST(Vecops, CopySubAddFill) {
  const std::vector<double> x = {1, 2, 3};
  const std::vector<double> y = {10, 20, 30};
  std::vector<double> out(3);
  copy(x, out);
  EXPECT_EQ(out, x);
  sub(y, x, out);
  EXPECT_DOUBLE_EQ(out[1], 18);
  add(y, x, out);
  EXPECT_DOUBLE_EQ(out[2], 33);
  fill(out, 7.0);
  for (double v : out) EXPECT_DOUBLE_EQ(v, 7.0);
}

TEST(Vecops, SumIsSerialAscending) {
  // sum() is the sanctioned scalar reduction (fp-reduction-in-seam): its
  // contract is bit-identical equality with the serial ascending loop it
  // replaced at call sites like proxskip's survivor-weight total.
  Rng rng(11);
  std::vector<double> x(257);
  for (auto& v : x) v = rng.normal() * 1e3;
  double reference = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) reference += x[i];
  EXPECT_EQ(sum(x), reference);  // bit-exact, not just EXPECT_DOUBLE_EQ
}

TEST(Vecops, SumOfEmptyIsZero) {
  EXPECT_DOUBLE_EQ(sum({}), 0.0);
  EXPECT_DOUBLE_EQ(weighted_sum({}, {}), 0.0);
}

TEST(Vecops, WeightedSumMatchesAscendingLoopBitExact) {
  // weighted_sum() pins the accumulation order the trainer's global-loss
  // reduction has always used: acc += w[i] * v[i], ascending i.
  Rng rng(13);
  std::vector<double> w(129), v(129);
  for (auto& e : w) e = rng.uniform();
  for (auto& e : v) e = rng.normal();
  double reference = 0.0;
  for (std::size_t i = 0; i < w.size(); ++i) reference += w[i] * v[i];
  EXPECT_EQ(weighted_sum(w, v), reference);
  EXPECT_EQ(weighted_sum(w, v), dot(w, v));
}

TEST(Vecops, WeightedSumSizeMismatchThrows) {
  const std::vector<double> w = {1, 2};
  const std::vector<double> v = {1};
  EXPECT_THROW(weighted_sum(w, v), Error);
}

TEST(Vecops, AccumulateWeightedIsWeightedSum) {
  const std::vector<double> w1 = {1, 1};
  const std::vector<double> w2 = {3, 5};
  std::vector<double> acc(2, 0.0);
  accumulate_weighted(0.25, w1, acc);
  accumulate_weighted(0.75, w2, acc);
  EXPECT_DOUBLE_EQ(acc[0], 0.25 + 2.25);
  EXPECT_DOUBLE_EQ(acc[1], 0.25 + 3.75);
}

// --- prox_quadratic: the paper's eq. (10). ---

TEST(Prox, MuZeroIsIdentity) {
  const std::vector<double> x = {1.5, -2.0};
  const std::vector<double> anchor = {0.0, 0.0};
  std::vector<double> out(2);
  prox_quadratic(x, anchor, 0.1, 0.0, out);
  EXPECT_DOUBLE_EQ(out[0], 1.5);
  EXPECT_DOUBLE_EQ(out[1], -2.0);
}

TEST(Prox, LargeMuPullsToAnchor) {
  const std::vector<double> x = {10.0};
  const std::vector<double> anchor = {2.0};
  std::vector<double> out(1);
  prox_quadratic(x, anchor, 1.0, 1e9, out);
  EXPECT_NEAR(out[0], 2.0, 1e-6);
}

TEST(Prox, MatchesArgminDefinition) {
  // prox minimizes g(w) = (mu/2)||w-anchor||^2 + (1/(2 eta))||w-x||^2.
  // Verify the first-order condition mu(w-anchor) + (w-x)/eta = 0 holds.
  Rng rng(3);
  const double eta = 0.05, mu = 2.0;
  std::vector<double> x(8), anchor(8), out(8);
  for (auto& v : x) v = rng.normal();
  for (auto& v : anchor) v = rng.normal();
  prox_quadratic(x, anchor, eta, mu, out);
  for (std::size_t i = 0; i < out.size(); ++i) {
    const double foc = mu * (out[i] - anchor[i]) + (out[i] - x[i]) / eta;
    EXPECT_NEAR(foc, 0.0, 1e-10);
  }
}

TEST(Prox, MatchesPaperClosedFormEq10) {
  // Paper eq. (10): prox(x) = eta/(1+eta mu) * (mu anchor + x/eta).
  const double eta = 0.2, mu = 1.5;
  const std::vector<double> x = {0.7};
  const std::vector<double> anchor = {-0.3};
  std::vector<double> out(1);
  prox_quadratic(x, anchor, eta, mu, out);
  const double expected = eta / (1.0 + eta * mu) * (mu * -0.3 + 0.7 / eta);
  EXPECT_NEAR(out[0], expected, 1e-14);
}

TEST(Prox, IsNonExpansive) {
  // ||prox(x) - prox(y)|| <= ||x - y|| for any prox of a convex function.
  Rng rng(5);
  std::vector<double> x(16), y(16), anchor(16), px(16), py(16);
  for (auto& v : x) v = rng.normal();
  for (auto& v : y) v = rng.normal();
  for (auto& v : anchor) v = rng.normal();
  prox_quadratic(x, anchor, 0.3, 4.0, px);
  prox_quadratic(y, anchor, 0.3, 4.0, py);
  EXPECT_LE(std::sqrt(squared_distance(px, py)),
            std::sqrt(squared_distance(x, y)) + 1e-12);
}

TEST(Prox, InvalidParamsThrow) {
  const std::vector<double> x = {1.0};
  const std::vector<double> anchor = {0.0};
  std::vector<double> out(1);
  EXPECT_THROW(prox_quadratic(x, anchor, 0.0, 1.0, out), Error);
  EXPECT_THROW(prox_quadratic(x, anchor, -0.1, 1.0, out), Error);
  EXPECT_THROW(prox_quadratic(x, anchor, 0.1, -1.0, out), Error);
}

}  // namespace
}  // namespace fedvr::tensor
