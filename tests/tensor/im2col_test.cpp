#include "tensor/im2col.h"

#include "check/check.h"

#include <gtest/gtest.h>

#include <vector>

#include "tensor/vecops.h"
#include "util/error.h"
#include "util/rng.h"

namespace fedvr::tensor {
namespace {

using fedvr::util::Error;
using fedvr::util::Rng;

TEST(ConvGeometry, OutputDims) {
  ConvGeometry g{.channels = 1,
                 .height = 28,
                 .width = 28,
                 .kernel_h = 5,
                 .kernel_w = 5,
                 .pad = 2,
                 .stride = 1};
  EXPECT_EQ(g.out_h(), 28u);  // 'same' conv
  EXPECT_EQ(g.out_w(), 28u);
  EXPECT_EQ(g.col_rows(), 25u);
}

TEST(ConvGeometry, StridedOutputDims) {
  ConvGeometry g{.channels = 3,
                 .height = 8,
                 .width = 8,
                 .kernel_h = 3,
                 .kernel_w = 3,
                 .pad = 0,
                 .stride = 2};
  EXPECT_EQ(g.out_h(), 3u);
  EXPECT_EQ(g.out_w(), 3u);
  EXPECT_EQ(g.col_rows(), 27u);
}

TEST(Im2col, IdentityKernelReproducesImage) {
  // 1x1 kernel, no padding: cols should equal the image itself.
  ConvGeometry g{.channels = 2,
                 .height = 3,
                 .width = 3,
                 .kernel_h = 1,
                 .kernel_w = 1,
                 .pad = 0,
                 .stride = 1};
  std::vector<double> image(g.image_size());
  for (std::size_t i = 0; i < image.size(); ++i) {
    image[i] = static_cast<double>(i);
  }
  std::vector<double> cols(g.col_rows() * g.out_pixels());
  im2col(g, image, cols);
  EXPECT_EQ(cols, image);
}

TEST(Im2col, KnownPatchExtraction) {
  // 3x3 single-channel image, 2x2 kernel, stride 1, no pad:
  // out is 2x2; row (kh,kw)=(0,0) picks the top-left of each window.
  ConvGeometry g{.channels = 1,
                 .height = 3,
                 .width = 3,
                 .kernel_h = 2,
                 .kernel_w = 2,
                 .pad = 0,
                 .stride = 1};
  const std::vector<double> image = {1, 2, 3, 4, 5, 6, 7, 8, 9};
  std::vector<double> cols(g.col_rows() * g.out_pixels());
  im2col(g, image, cols);
  // rows: (0,0) (0,1) (1,0) (1,1); columns: windows at (0,0),(0,1),(1,0),(1,1)
  const std::vector<double> expected = {
      1, 2, 4, 5,   // kernel element (0,0)
      2, 3, 5, 6,   // (0,1)
      4, 5, 7, 8,   // (1,0)
      5, 6, 8, 9};  // (1,1)
  EXPECT_EQ(cols, expected);
}

TEST(Im2col, PaddingYieldsZeros) {
  ConvGeometry g{.channels = 1,
                 .height = 2,
                 .width = 2,
                 .kernel_h = 3,
                 .kernel_w = 3,
                 .pad = 1,
                 .stride = 1};
  const std::vector<double> image = {1, 2, 3, 4};
  std::vector<double> cols(g.col_rows() * g.out_pixels());
  im2col(g, image, cols);
  // Kernel element (0,0) at output (0,0) reads input (-1,-1): padding zero.
  EXPECT_DOUBLE_EQ(cols[0], 0.0);
  // Kernel element (1,1) (center) at output (0,0) reads input (0,0) = 1.
  const std::size_t center_row = 1 * 3 + 1;
  EXPECT_DOUBLE_EQ(cols[center_row * g.out_pixels() + 0], 1.0);
}

TEST(Im2col, WrongBufferSizesThrow) {
  if (!check::active()) GTEST_SKIP() << "fedvr::check inactive";
  ConvGeometry g{.channels = 1,
                 .height = 3,
                 .width = 3,
                 .kernel_h = 2,
                 .kernel_w = 2,
                 .pad = 0,
                 .stride = 1};
  std::vector<double> image(9), cols(10);  // cols should be 16
  EXPECT_THROW(im2col(g, image, cols), Error);
  std::vector<double> image_bad(8), cols_ok(16);
  EXPECT_THROW(im2col(g, image_bad, cols_ok), Error);
}

TEST(Col2im, IsAdjointOfIm2col) {
  // <im2col(x), y> == <x, col2im(y)> for all x, y — the defining property
  // used by conv backprop. Check with random vectors on several geometries.
  const std::vector<ConvGeometry> geometries = {
      {.channels = 1, .height = 4, .width = 4, .kernel_h = 3, .kernel_w = 3,
       .pad = 0, .stride = 1},
      {.channels = 2, .height = 5, .width = 4, .kernel_h = 3, .kernel_w = 2,
       .pad = 1, .stride = 2},
      {.channels = 3, .height = 6, .width = 6, .kernel_h = 5, .kernel_w = 5,
       .pad = 2, .stride = 1},
  };
  Rng rng(11);
  for (const auto& g : geometries) {
    std::vector<double> x(g.image_size());
    std::vector<double> y(g.col_rows() * g.out_pixels());
    for (auto& v : x) v = rng.normal();
    for (auto& v : y) v = rng.normal();
    std::vector<double> ax(y.size());
    im2col(g, x, ax);
    std::vector<double> aty(x.size(), 0.0);
    col2im(g, y, aty);
    EXPECT_NEAR(dot(ax, y), dot(x, aty), 1e-10);
  }
}

TEST(Col2im, AccumulatesOntoImage) {
  ConvGeometry g{.channels = 1,
                 .height = 2,
                 .width = 2,
                 .kernel_h = 1,
                 .kernel_w = 1,
                 .pad = 0,
                 .stride = 1};
  const std::vector<double> cols = {1, 2, 3, 4};
  std::vector<double> image = {10, 10, 10, 10};
  col2im(g, cols, image);
  EXPECT_DOUBLE_EQ(image[0], 11);
  EXPECT_DOUBLE_EQ(image[3], 14);
}

TEST(Im2col, StridedVariantMatchesPackedPerSample) {
  // Lowering B samples side by side into one (col_rows x B*out_pixels)
  // block must reproduce, column-slice by column-slice, what the packed
  // overload produces per sample — on both the stride-1 fast path and the
  // generic strided path.
  const std::vector<ConvGeometry> geometries = {
      {.channels = 2, .height = 5, .width = 4, .kernel_h = 3, .kernel_w = 3,
       .pad = 1, .stride = 1},
      {.channels = 1, .height = 6, .width = 6, .kernel_h = 3, .kernel_w = 2,
       .pad = 2, .stride = 2},
  };
  Rng rng(23);
  for (const auto& g : geometries) {
    constexpr std::size_t kBatch = 3;
    const std::size_t pixels = g.out_pixels();
    const std::size_t ld = kBatch * pixels;
    std::vector<std::vector<double>> images(kBatch,
                                            std::vector<double>(g.image_size()));
    for (auto& img : images) {
      for (auto& v : img) v = rng.normal();
    }
    std::vector<double> block(g.col_rows() * ld);
    for (std::size_t s = 0; s < kBatch; ++s) {
      im2col(g, images[s], block, ld, s * pixels);
    }
    std::vector<double> packed(g.col_rows() * pixels);
    for (std::size_t s = 0; s < kBatch; ++s) {
      im2col(g, images[s], packed);
      for (std::size_t r = 0; r < g.col_rows(); ++r) {
        for (std::size_t px = 0; px < pixels; ++px) {
          EXPECT_EQ(block[r * ld + s * pixels + px], packed[r * pixels + px])
              << "sample " << s << " row " << r << " pixel " << px;
        }
      }
    }
  }
}

TEST(Col2im, StridedVariantMatchesPackedPerSample) {
  const std::vector<ConvGeometry> geometries = {
      {.channels = 2, .height = 5, .width = 4, .kernel_h = 3, .kernel_w = 3,
       .pad = 1, .stride = 1},
      {.channels = 1, .height = 6, .width = 6, .kernel_h = 3, .kernel_w = 2,
       .pad = 2, .stride = 2},
  };
  Rng rng(29);
  for (const auto& g : geometries) {
    constexpr std::size_t kBatch = 3;
    const std::size_t pixels = g.out_pixels();
    const std::size_t ld = kBatch * pixels;
    std::vector<double> block(g.col_rows() * ld);
    for (auto& v : block) v = rng.normal();
    for (std::size_t s = 0; s < kBatch; ++s) {
      // Scatter sample s's slice of the batched block...
      std::vector<double> from_strided(g.image_size(), 0.0);
      col2im(g, block, from_strided, ld, s * pixels);
      // ...and the same slice, repacked, through the packed overload.
      std::vector<double> slice(g.col_rows() * pixels);
      for (std::size_t r = 0; r < g.col_rows(); ++r) {
        for (std::size_t px = 0; px < pixels; ++px) {
          slice[r * pixels + px] = block[r * ld + s * pixels + px];
        }
      }
      std::vector<double> from_packed(g.image_size(), 0.0);
      col2im(g, slice, from_packed);
      for (std::size_t i = 0; i < g.image_size(); ++i) {
        EXPECT_EQ(from_strided[i], from_packed[i]) << "sample " << s;
      }
    }
  }
}

TEST(Im2col, KernelLargerThanPaddedImageThrows) {
  if (!check::active()) GTEST_SKIP() << "fedvr::check inactive";
  ConvGeometry g{.channels = 1,
                 .height = 2,
                 .width = 2,
                 .kernel_h = 5,
                 .kernel_w = 5,
                 .pad = 0,
                 .stride = 1};
  std::vector<double> image(4), cols(1);
  EXPECT_THROW(im2col(g, image, cols), Error);
}

}  // namespace
}  // namespace fedvr::tensor
