#include "tensor/random_init.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace fedvr::tensor {
namespace {

using fedvr::util::Rng;

TEST(RandomInit, NormalMatchesMoments) {
  Rng rng(1);
  std::vector<double> x(100000);
  fill_normal(rng, x, 2.0, 3.0);
  double sum = 0.0, sumsq = 0.0;
  for (double v : x) {
    sum += v;
    sumsq += v * v;
  }
  const double mean = sum / static_cast<double>(x.size());
  const double var = sumsq / static_cast<double>(x.size()) - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.05);
  EXPECT_NEAR(var, 9.0, 0.2);
}

TEST(RandomInit, UniformStaysInRange) {
  Rng rng(2);
  std::vector<double> x(10000);
  fill_uniform(rng, x, -1.0, 2.0);
  for (double v : x) {
    EXPECT_GE(v, -1.0);
    EXPECT_LT(v, 2.0);
  }
}

TEST(RandomInit, GlorotBoundsMatchFanInFanOut) {
  Rng rng(3);
  std::vector<double> x(10000);
  const std::size_t fan_in = 100, fan_out = 50;
  fill_glorot_uniform(rng, x, fan_in, fan_out);
  const double a = std::sqrt(6.0 / (fan_in + fan_out));
  double max_abs = 0.0;
  for (double v : x) max_abs = std::max(max_abs, std::abs(v));
  EXPECT_LE(max_abs, a);
  EXPECT_GT(max_abs, 0.9 * a);  // bound is actually approached
}

TEST(RandomInit, IsDeterministicPerSeed) {
  Rng a(7), b(7);
  std::vector<double> xa(100), xb(100);
  fill_glorot_uniform(a, xa, 10, 10);
  fill_glorot_uniform(b, xb, 10, 10);
  EXPECT_EQ(xa, xb);
}

}  // namespace
}  // namespace fedvr::tensor
