// Randomized oracle sweep for the blocked GEMM/GEMV kernels: every result
// is compared against a naive triple-loop reference across all four
// transpose combos, strided leading dimensions, degenerate shapes
// (m/n/k in {0,1}), and non-unit alpha/beta — both with runtime checks on
// (default) and off, since the kernels must not depend on check-side
// effects. A final test pins the determinism contract: the blocked path
// must produce bit-identical C for pool sizes 1 and 3.
#include <cmath>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "check/check.h"
#include "tensor/kernels.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace fedvr::tensor {
namespace {

double ref_at(Trans t, const std::vector<double>& m, std::size_t ld,
              std::size_t i, std::size_t p) {
  return t == Trans::kNo ? m[i * ld + p] : m[p * ld + i];
}

struct GemmCase {
  std::size_t m, n, k;
};

// Degenerate shapes, remainder-heavy shapes around the register tile, and
// shapes large enough to take the blocked parallel path.
const GemmCase kShapes[] = {
    {0, 0, 0},  {0, 5, 3},    {4, 0, 3},     {4, 5, 0},      {1, 1, 1},
    {2, 3, 1},  {5, 1, 7},    {17, 9, 3},    {23, 31, 19},   {40, 48, 56},
    {70, 65, 72}, {1, 50, 1}, {61, 263, 129}, {128, 61, 300},
};

void sweep_gemm() {
  util::Rng rng(20240805);
  const std::pair<double, double> coeffs[] = {
      {1.0, 0.0}, {0.5, 1.0}, {2.0, -0.25}};
  for (Trans ta : {Trans::kNo, Trans::kYes}) {
    for (Trans tb : {Trans::kNo, Trans::kYes}) {
      for (const GemmCase& s : kShapes) {
        for (std::size_t extra : {std::size_t{0}, std::size_t{3}}) {
          for (const auto& [alpha, beta] : coeffs) {
            const std::size_t a_rows = ta == Trans::kNo ? s.m : s.k;
            const std::size_t a_cols = ta == Trans::kNo ? s.k : s.m;
            const std::size_t b_rows = tb == Trans::kNo ? s.k : s.n;
            const std::size_t b_cols = tb == Trans::kNo ? s.n : s.k;
            const std::size_t lda = a_cols + extra;
            const std::size_t ldb = b_cols + extra;
            const std::size_t ldc = s.n + extra;
            std::vector<double> a(a_rows * lda), b(b_rows * ldb),
                c(s.m * ldc);
            for (auto& v : a) v = rng.normal();
            for (auto& v : b) v = rng.normal();
            for (auto& v : c) v = rng.normal();
            const std::vector<double> c0 = c;
            gemm(ta, tb, s.m, s.n, s.k, alpha, a, lda, b, ldb, beta, c, ldc);
            const double tol = 1e-12 * static_cast<double>(s.k + 1);
            for (std::size_t i = 0; i < s.m; ++i) {
              for (std::size_t j = 0; j < s.n; ++j) {
                double acc = 0.0;
                for (std::size_t p = 0; p < s.k; ++p) {
                  acc += ref_at(ta, a, lda, i, p) * ref_at(tb, b, ldb, p, j);
                }
                const double want = alpha * acc + beta * c0[i * ldc + j];
                ASSERT_NEAR(c[i * ldc + j], want,
                            tol * (1.0 + std::fabs(want)))
                    << "m=" << s.m << " n=" << s.n << " k=" << s.k
                    << " ta=" << static_cast<int>(ta)
                    << " tb=" << static_cast<int>(tb) << " extra=" << extra
                    << " alpha=" << alpha << " beta=" << beta << " at (" << i
                    << "," << j << ")";
              }
            }
            // Padding columns beyond n must be untouched.
            for (std::size_t i = 0; i < s.m; ++i) {
              for (std::size_t j = s.n; j < ldc; ++j) {
                ASSERT_EQ(c[i * ldc + j], c0[i * ldc + j])
                    << "clobbered C padding at (" << i << "," << j << ")";
              }
            }
          }
        }
      }
    }
  }
}

void sweep_gemv() {
  util::Rng rng(77);
  const std::pair<double, double> coeffs[] = {
      {1.0, 0.0}, {0.5, 1.0}, {-2.0, 0.75}};
  const GemmCase shapes[] = {{0, 7, 0},   {1, 1, 0},   {1, 9, 0},
                             {13, 1, 0},  {37, 29, 0}, {64, 200, 0},
                             {300, 257, 0}};
  for (Trans t : {Trans::kNo, Trans::kYes}) {
    for (const GemmCase& s : shapes) {
      for (const auto& [alpha, beta] : coeffs) {
        const std::size_t xn = t == Trans::kNo ? s.n : s.m;
        const std::size_t yn = t == Trans::kNo ? s.m : s.n;
        std::vector<double> a(s.m * s.n), x(xn), y(yn);
        for (auto& v : a) v = rng.normal();
        for (auto& v : x) v = rng.normal();
        for (auto& v : y) v = rng.normal();
        const std::vector<double> y0 = y;
        gemv(t, s.m, s.n, alpha, a, x, beta, y);
        const std::size_t inner = t == Trans::kNo ? s.n : s.m;
        const double tol = 1e-12 * static_cast<double>(inner + 1);
        for (std::size_t i = 0; i < yn; ++i) {
          double acc = 0.0;
          for (std::size_t p = 0; p < inner; ++p) {
            acc += (t == Trans::kNo ? a[i * s.n + p] : a[p * s.n + i]) * x[p];
          }
          const double want = alpha * acc + beta * y0[i];
          ASSERT_NEAR(y[i], want, tol * (1.0 + std::fabs(want)))
              << "rows=" << s.m << " cols=" << s.n
              << " t=" << static_cast<int>(t) << " alpha=" << alpha
              << " beta=" << beta << " at " << i;
        }
      }
    }
  }
}

TEST(GemmOracle, MatchesNaiveReference) { sweep_gemm(); }

TEST(GemvOracle, MatchesNaiveReference) { sweep_gemv(); }

// The kernels must be pure compute: identical behavior with the runtime
// invariant checks toggled off (the shipped-Release configuration).
TEST(GemmOracle, MatchesNaiveReferenceWithChecksDisabled) {
  const bool previous = check::set_enabled(false);
  sweep_gemm();
  sweep_gemv();
  check::set_enabled(previous);
}

// Determinism contract: the blocked parallel path must be bit-identical
// across pool sizes, because the k-accumulation order of every C element is
// fixed by the blocking constants, never the thread partition.
TEST(GemmOracle, BitIdenticalAcrossPoolSizes) {
  const std::size_t m = 300, n = 200, k = 150;
  util::Rng rng(3);
  std::vector<double> a(m * k), b(k * n);
  for (auto& v : a) v = rng.normal();
  for (auto& v : b) v = rng.normal();
  std::vector<double> c1(m * n, 0.0), c3(m * n, 0.0);
  util::ThreadPool::reset_global(1);
  gemm_packed(Trans::kNo, Trans::kYes, m, n, k, 1.0, a, b, 0.0, c1);
  util::ThreadPool::reset_global(3);
  gemm_packed(Trans::kNo, Trans::kYes, m, n, k, 1.0, a, b, 0.0, c3);
  util::ThreadPool::reset_global(0);
  EXPECT_EQ(0, std::memcmp(c1.data(), c3.data(), c1.size() * sizeof(double)));
  EXPECT_EQ(check::hash_span(c1), check::hash_span(c3));
}

}  // namespace
}  // namespace fedvr::tensor
