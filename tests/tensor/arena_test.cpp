// Arena / Workspace: the preallocated scratch discipline behind the
// zero-allocation hot paths. These tests pin the allocator contract the
// kernels and solver workspaces rely on: alignment, LIFO scope rewind,
// overflow fallback with regrow, the trim policy, and per-thread
// isolation of scratch_arena().
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "tensor/arena.h"
#include "tensor/kernels.h"
#include "util/thread_pool.h"

namespace fedvr::tensor {
namespace {

bool aligned(const void* p) {
  return reinterpret_cast<std::uintptr_t>(p) % Arena::kAlignment == 0;
}

TEST(Arena, SpansAreCacheLineAligned) {
  Arena arena(1 << 12);
  Workspace ws(arena);
  // Deliberately awkward sizes: every span must still come back aligned.
  for (std::size_t count : {1U, 3U, 7U, 13U, 64U, 65U}) {
    EXPECT_TRUE(aligned(ws.alloc<double>(count).data())) << count;
    EXPECT_TRUE(aligned(ws.alloc<std::uint8_t>(count).data())) << count;
  }
}

TEST(Arena, ScopeExitRewindsCursorAndReusesStorage) {
  Arena arena(1 << 12);
  double* first = nullptr;
  {
    Workspace ws(arena);
    first = ws.alloc<double>(100).data();
    EXPECT_GT(arena.used_bytes(), 0U);
  }
  EXPECT_EQ(arena.used_bytes(), 0U);
  const std::uint64_t heap_before = arena.stats().heap_events;
  // Steady state: the next scope gets the same storage back, with no new
  // heap traffic.
  for (int round = 0; round < 10; ++round) {
    Workspace ws(arena);
    EXPECT_EQ(ws.alloc<double>(100).data(), first);
  }
  EXPECT_EQ(arena.stats().heap_events, heap_before);
}

TEST(Arena, NestedScopesRewindLifo) {
  Arena arena(1 << 12);
  Workspace outer(arena);
  (void)outer.alloc<double>(8);
  const std::size_t outer_used = arena.used_bytes();
  double* inner_ptr = nullptr;
  {
    Workspace inner(arena);
    inner_ptr = inner.alloc<double>(8).data();
    EXPECT_GT(arena.used_bytes(), outer_used);
  }
  EXPECT_EQ(arena.used_bytes(), outer_used);
  // The inner slot is free again: a sibling scope re-serves the same spot.
  Workspace sibling(arena);
  EXPECT_EQ(sibling.alloc<double>(8).data(), inner_ptr);
}

TEST(Arena, OverCapacityRequestsFallBackToHeapThenRegrow) {
  Arena arena(/*capacity_bytes=*/128);
  {
    Workspace ws(arena);
    auto big = ws.alloc<double>(1024);  // 8 KiB >> 128 B slab
    EXPECT_EQ(big.size(), 1024U);
    EXPECT_TRUE(aligned(big.data()));
    big[0] = 1.0;
    big[1023] = 2.0;  // the whole span must be writable
    EXPECT_EQ(big[0] + big[1023], 3.0);
  }
  EXPECT_GE(arena.stats().overflow_allocs, 1U);
  // End of episode regrew the slab: the same request now fits.
  EXPECT_GE(arena.capacity_bytes(), 1024 * sizeof(double));
  const std::uint64_t overflows = arena.stats().overflow_allocs;
  const std::uint64_t heap_before = arena.stats().heap_events;
  {
    Workspace ws(arena);
    (void)ws.alloc<double>(1024);
  }
  EXPECT_EQ(arena.stats().overflow_allocs, overflows);
  EXPECT_EQ(arena.stats().heap_events, heap_before);
}

TEST(Arena, TrimShrinksSlabAfterSmallEpisode) {
  Arena arena(/*capacity_bytes=*/0, /*trim_bytes=*/1 << 10);
  {
    Workspace ws(arena);
    (void)ws.alloc<double>(4096);  // 32 KiB episode grows the slab
  }
  EXPECT_GE(arena.capacity_bytes(), 4096 * sizeof(double));
  {
    Workspace ws(arena);
    (void)ws.alloc<double>(16);  // tiny episode under the trim cap
  }
  EXPECT_LE(arena.capacity_bytes(), std::size_t{1} << 10);
}

TEST(Arena, StatsTrackHighWaterAcrossScopes) {
  Arena arena(1 << 14);
  {
    Workspace ws(arena);
    (void)ws.alloc<double>(256);
    (void)ws.alloc<double>(256);
  }
  EXPECT_GE(arena.stats().high_water_bytes, 2 * 256 * sizeof(double));
  EXPECT_EQ(arena.stats().span_allocs, 2U);
}

TEST(Arena, ScratchArenaIsPerThread) {
  Arena* main_arena = &scratch_arena();
  Arena* other_arena = nullptr;
  std::thread t([&] { other_arena = &scratch_arena(); });
  t.join();
  ASSERT_NE(other_arena, nullptr);
  EXPECT_NE(main_arena, other_arena);
  EXPECT_EQ(main_arena, &scratch_arena());
}

TEST(Arena, PoolWorkersUseIsolatedArenas) {
  util::ThreadPool& pool = util::ThreadPool::global();
  // Each task records its thread's arena; per-thread arenas mean no two
  // concurrently-running tasks can collide on scratch, which is what lets
  // kernels use workspaces from inside parallel_for bodies.
  std::vector<Arena*> seen(8, nullptr);
  pool.parallel_for(0, seen.size(), [&](std::size_t i) {
    Workspace ws(scratch_arena());
    auto s = ws.alloc<double>(64);
    s[0] = static_cast<double>(i);
    seen[i] = &scratch_arena();
    EXPECT_EQ(s[0], static_cast<double>(i));
  });
  for (Arena* a : seen) EXPECT_NE(a, nullptr);
}

TEST(Arena, HeapEventCounterIsFlatInSteadyState) {
  Arena& arena = scratch_arena();
  // Warm up with the episode shape, then demand zero heap events.
  for (int warm = 0; warm < 2; ++warm) {
    Workspace ws(arena);
    (void)ws.alloc<double>(512);
  }
  const std::uint64_t before = arena_heap_events();
  for (int round = 0; round < 100; ++round) {
    Workspace ws(arena);
    auto s = ws.alloc<double>(512);
    s[511] = static_cast<double>(round);
  }
  EXPECT_EQ(arena_heap_events(), before);
}

}  // namespace
}  // namespace fedvr::tensor
