// Parameterized algebraic property sweeps for GEMM: linearity, identity,
// associativity-with-transpose — checked across shapes and alpha/beta.
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "tensor/kernels.h"
#include "util/rng.h"

namespace fedvr::tensor {
namespace {

using fedvr::util::Rng;

std::vector<double> random_matrix(std::size_t rows, std::size_t cols,
                                  Rng& rng) {
  std::vector<double> m(rows * cols);
  for (auto& v : m) v = rng.normal();
  return m;
}

std::vector<double> identity(std::size_t n) {
  std::vector<double> id(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) id[i * n + i] = 1.0;
  return id;
}

using ShapeAlphaBeta = std::tuple<std::size_t, std::size_t, std::size_t,
                                  double, double>;

class GemmAlgebra : public ::testing::TestWithParam<ShapeAlphaBeta> {};

TEST_P(GemmAlgebra, IdentityLeavesOperandScaled) {
  const auto [m, n, k, alpha, beta] = GetParam();
  (void)k;
  Rng rng(m * 31 + n * 7);
  const auto b = random_matrix(m, n, rng);
  auto c = random_matrix(m, n, rng);
  const auto c0 = c;
  gemm_packed(Trans::kNo, Trans::kNo, m, n, m, alpha, identity(m), b, beta,
              c);
  for (std::size_t i = 0; i < c.size(); ++i) {
    EXPECT_NEAR(c[i], alpha * b[i] + beta * c0[i], 1e-12);
  }
}

TEST_P(GemmAlgebra, LinearityInAlpha) {
  const auto [m, n, k, alpha, beta] = GetParam();
  (void)beta;
  Rng rng(m * 13 + k * 3);
  const auto a = random_matrix(m, k, rng);
  const auto b = random_matrix(k, n, rng);
  std::vector<double> c1(m * n, 0.0), c2(m * n, 0.0);
  gemm_packed(Trans::kNo, Trans::kNo, m, n, k, alpha, a, b, 0.0, c1);
  gemm_packed(Trans::kNo, Trans::kNo, m, n, k, 2.0 * alpha, a, b, 0.0, c2);
  for (std::size_t i = 0; i < c1.size(); ++i) {
    EXPECT_NEAR(c2[i], 2.0 * c1[i], 1e-10);
  }
}

TEST_P(GemmAlgebra, TransposeOfProductMatchesReversedProduct) {
  // (A B)^T == B^T A^T: compute both sides through the kernel itself.
  const auto [m, n, k, alpha, beta] = GetParam();
  (void)alpha;
  (void)beta;
  Rng rng(n * 17 + k * 5);
  const auto a = random_matrix(m, k, rng);
  const auto b = random_matrix(k, n, rng);
  std::vector<double> ab(m * n, 0.0);
  gemm_packed(Trans::kNo, Trans::kNo, m, n, k, 1.0, a, b, 0.0, ab);
  // B^T A^T via the transpose flags, storing an (n x m) result.
  std::vector<double> btat(n * m, 0.0);
  gemm_packed(Trans::kYes, Trans::kYes, n, m, k, 1.0, b, a, 0.0, btat);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      EXPECT_NEAR(ab[i * n + j], btat[j * m + i], 1e-10);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    ShapesAndScales, GemmAlgebra,
    ::testing::Values(ShapeAlphaBeta{1, 1, 1, 1.0, 0.0},
                      ShapeAlphaBeta{3, 5, 2, 0.5, 1.0},
                      ShapeAlphaBeta{8, 8, 8, -1.0, 0.5},
                      ShapeAlphaBeta{16, 4, 32, 2.0, -0.25},
                      ShapeAlphaBeta{7, 13, 11, 1.0, 1.0}));

}  // namespace
}  // namespace fedvr::tensor
