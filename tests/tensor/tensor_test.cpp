#include "tensor/tensor.h"

#include <gtest/gtest.h>

#include <array>

#include "util/error.h"

namespace fedvr::tensor {
namespace {

using fedvr::util::Error;

TEST(Shape, NumelMultipliesDims) {
  EXPECT_EQ(Shape({2, 3, 4}).numel(), 24u);
  EXPECT_EQ(Shape({7}).numel(), 7u);
  EXPECT_EQ(Shape({}).numel(), 1u);
}

TEST(Shape, EqualityComparesRankAndDims) {
  EXPECT_EQ(Shape({2, 3}), Shape({2, 3}));
  EXPECT_FALSE(Shape({2, 3}) == Shape({3, 2}));
  EXPECT_FALSE(Shape({2, 3}) == Shape({2, 3, 1}));
}

TEST(Shape, IndexOutOfRankThrows) {
  const Shape s({2, 3});
  EXPECT_THROW((void)s[2], Error);
}

TEST(Shape, StrFormats) { EXPECT_EQ(Shape({2, 3}).str(), "[2, 3]"); }

TEST(Tensor, ConstructsZeroFilled) {
  const Tensor t(Shape({2, 3}));
  EXPECT_EQ(t.numel(), 6u);
  for (double v : t.view()) EXPECT_EQ(v, 0.0);
}

TEST(Tensor, ConstructsWithFillValue) {
  const Tensor t(Shape({4}), 2.5);
  for (double v : t.view()) EXPECT_EQ(v, 2.5);
}

TEST(Tensor, AdoptsDataVector) {
  const Tensor t(Shape({2, 2}), {1.0, 2.0, 3.0, 4.0});
  EXPECT_EQ(t(1, 0), 3.0);
}

TEST(Tensor, DataSizeMismatchThrows) {
  EXPECT_THROW(Tensor(Shape({2, 2}), {1.0, 2.0}), Error);
}

TEST(Tensor, RowMajorIndexing2D) {
  Tensor t(Shape({2, 3}));
  t(1, 2) = 9.0;
  EXPECT_EQ(t.view()[5], 9.0);
}

TEST(Tensor, RowMajorIndexing3D) {
  Tensor t(Shape({2, 3, 4}));
  t(1, 2, 3) = 7.0;
  EXPECT_EQ(t.view()[1 * 12 + 2 * 4 + 3], 7.0);
}

TEST(Tensor, RowMajorIndexing4D) {
  Tensor t(Shape({2, 3, 4, 5}));
  t(1, 2, 3, 4) = 6.0;
  EXPECT_EQ(t.view()[((1 * 3 + 2) * 4 + 3) * 5 + 4], 6.0);
}

TEST(Tensor, AtChecksBounds) {
  Tensor t(Shape({2, 3}));
  t(0, 1) = 5.0;
  const std::array<std::size_t, 2> ok = {0, 1};
  EXPECT_EQ(t.at(ok), 5.0);
  const std::array<std::size_t, 2> bad = {0, 3};
  EXPECT_THROW((void)t.at(bad), Error);
  const std::array<std::size_t, 1> wrong_rank = {0};
  EXPECT_THROW((void)t.at(wrong_rank), Error);
}

TEST(Tensor, FillOverwritesAll) {
  Tensor t(Shape({3, 3}), 1.0);
  t.fill(-2.0);
  for (double v : t.view()) EXPECT_EQ(v, -2.0);
}

TEST(Tensor, ReshapedKeepsDataChangesShape) {
  Tensor t(Shape({2, 3}), {1, 2, 3, 4, 5, 6});
  const Tensor r = t.reshaped(Shape({3, 2}));
  EXPECT_EQ(r.shape(), Shape({3, 2}));
  EXPECT_EQ(r(2, 1), 6.0);
}

TEST(Tensor, ReshapeNumelMismatchThrows) {
  const Tensor t(Shape({2, 3}));
  EXPECT_THROW((void)t.reshaped(Shape({4, 2})), Error);
}

}  // namespace
}  // namespace fedvr::tensor
