#include "check/check.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <vector>

#include "data/dataset.h"
#include "nn/models.h"
#include "tensor/kernels.h"
#include "tensor/shape.h"
#include "util/error.h"

namespace fedvr::check {
namespace {

using fedvr::util::Error;

// Restores the process-global runtime toggle so tests cannot leak state
// into each other (gtest runs every suite in one process).
class ScopedChecks {
 public:
  explicit ScopedChecks(bool on) : previous_(set_enabled(on)) {}
  ScopedChecks(const ScopedChecks&) = delete;
  ScopedChecks& operator=(const ScopedChecks&) = delete;
  ~ScopedChecks() { set_enabled(previous_); }

 private:
  bool previous_;
};

TEST(Check, ShapeMismatchTrips) {
  if (!kCompiledIn) GTEST_SKIP() << "checks compiled out";
  ScopedChecks on(true);
  const std::vector<double> x(3);
  try {
    FEDVR_CHECK_SHAPE(x.size(), 4U);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("shape mismatch"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("3"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("4"), std::string::npos);
  }
  FEDVR_CHECK_SHAPE(x.size(), 3U);  // equal shapes pass
}

TEST(Check, IndexOutOfRangeTrips) {
  if (!kCompiledIn) GTEST_SKIP() << "checks compiled out";
  ScopedChecks on(true);
  FEDVR_CHECK_INDEX(2U, 3U);
  try {
    FEDVR_CHECK_INDEX(3U, 3U);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("index out of range"),
              std::string::npos);
  }
}

TEST(Check, FiniteTripsOnNanAndInfWithElementIndex) {
  if (!kCompiledIn) GTEST_SKIP() << "checks compiled out";
  ScopedChecks on(true);
  std::vector<double> v = {0.0, 1.0, std::nan(""), 2.0};
  try {
    FEDVR_CHECK_FINITE(std::span<const double>(v), "test vector");
    FAIL() << "expected Error";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("non-finite value in test vector"),
              std::string::npos);
    EXPECT_NE(what.find("element 2"), std::string::npos);
  }
  v[2] = std::numeric_limits<double>::infinity();
  EXPECT_THROW(FEDVR_CHECK_FINITE(std::span<const double>(v), "v"), Error);
  v[2] = 0.5;
  FEDVR_CHECK_FINITE(std::span<const double>(v), "v");  // all finite passes
}

TEST(Check, PreconditionTripsWithStreamedContext) {
  if (!kCompiledIn) GTEST_SKIP() << "checks compiled out";
  ScopedChecks on(true);
  [[maybe_unused]] const int n = 7;
  try {
    FEDVR_CHECK_PRE(n > 10, "need more than ten, got " << n);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("need more than ten, got 7"),
              std::string::npos);
  }
}

TEST(Check, RuntimeDisableSkipsChecksAndArgumentEvaluation) {
  if (!kCompiledIn) GTEST_SKIP() << "checks compiled out";
  ScopedChecks off(false);
  int evaluations = 0;
  [[maybe_unused]] auto counted = [&evaluations](std::size_t v) {
    ++evaluations;
    return v;
  };
  FEDVR_CHECK_SHAPE(counted(1), counted(2));
  FEDVR_CHECK_INDEX(counted(9), counted(3));
  FEDVR_CHECK_PRE(counted(0) == 1, "never evaluated");
  EXPECT_EQ(evaluations, 0);  // disabled checks cost one load, nothing else
  EXPECT_FALSE(active());
}

TEST(Check, SetEnabledReturnsPreviousState) {
  const bool original = set_enabled(true);
  EXPECT_TRUE(set_enabled(false));
  EXPECT_FALSE(set_enabled(original));
}

TEST(Check, GemmShapePreconditionTripsThroughKernel) {
  if (!active()) GTEST_SKIP() << "fedvr::check inactive";
  ScopedChecks on(true);
  const std::vector<double> a = {1, 2, 3, 4};
  const std::vector<double> x = {1.0};  // gemv expects length 2
  std::vector<double> y(2);
  EXPECT_THROW(tensor::gemv(tensor::Trans::kNo, 2, 2, 1.0, a, x, 0.0, y),
               Error);
}

TEST(Check, NanGradientTripsAtModelBoundary) {
  if (!active()) GTEST_SKIP() << "fedvr::check inactive";
  ScopedChecks on(true);
  auto model = nn::make_logistic_regression(/*input_dim=*/3,
                                            /*num_classes=*/2);
  data::Dataset ds(tensor::Shape({3}), /*n=*/2, /*num_classes=*/2);
  ds.mutable_sample(0)[0] = 1.0;
  ds.mutable_sample(1)[1] = std::nan("");  // one poisoned feature
  ds.set_label(0, 0);
  ds.set_label(1, 1);
  const std::vector<std::size_t> idx = {0, 1};
  std::vector<double> w(model->num_parameters(), 0.1);
  std::vector<double> grad(model->num_parameters());
  EXPECT_THROW((void)model->loss_and_gradient(w, ds, idx, grad), Error);
}

TEST(Check, HashSpanIsDeterministicAndBitSensitive) {
  const std::vector<double> a = {1.0, 2.0, 3.0};
  const std::vector<double> b = {1.0, 2.0, 3.0};
  EXPECT_EQ(hash_span(a), hash_span(b));

  std::vector<double> flipped = a;
  flipped[1] = std::nextafter(flipped[1], 10.0);  // one-ulp change
  EXPECT_NE(hash_span(a), hash_span(flipped));

  const std::vector<double> reordered = {2.0, 1.0, 3.0};
  EXPECT_NE(hash_span(a), hash_span(reordered));

  // +0.0 and -0.0 compare equal but are different bit patterns; the
  // determinism audit must distinguish them.
  const std::vector<double> pos_zero = {0.0};
  const std::vector<double> neg_zero = {-0.0};
  EXPECT_NE(hash_span(pos_zero), hash_span(neg_zero));
}

TEST(Check, HashCombineFoldsOrderSensitively) {
  const std::uint64_t h1 = hash_combine(hash_combine(0, 1), 2);
  const std::uint64_t h2 = hash_combine(hash_combine(0, 2), 1);
  EXPECT_NE(h1, h2);
  EXPECT_EQ(hash_combine(hash_combine(0, 1), 2),
            hash_combine(hash_combine(0, 1), 2));
}

TEST(Check, FirstNonFiniteFindsEarliestOffender) {
  const std::vector<double> clean = {1.0, 2.0};
  EXPECT_EQ(first_non_finite(clean), clean.size());
  EXPECT_TRUE(all_finite(clean));
  const std::vector<double> dirty = {
      1.0, std::numeric_limits<double>::infinity(), std::nan("")};
  EXPECT_EQ(first_non_finite(dirty), 1U);
  EXPECT_FALSE(all_finite(dirty));
}

}  // namespace
}  // namespace fedvr::check
