// Determinism regression: two identical Trainer runs (same seed, invariant
// checks enabled, device-parallel execution) must produce bit-identical
// parameter vectors and traces — verified through the check::hash_span
// fingerprints the trainer records. This is the reproducibility claim the
// fedvr::check layer exists to audit: thread scheduling, profiling, and
// NaN-guard scans must all leave the numerics untouched.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "check/check.h"
#include "data/synthetic.h"
#include "fl/trainer.h"
#include "nn/models.h"
#include "opt/local_solver.h"
#include "testing/quadratic_model.h"
#include "util/thread_pool.h"

namespace fedvr::fl {
namespace {

using fedvr::testing::quadratic_dataset;
using fedvr::testing::QuadraticModel;

constexpr std::size_t kDim = 6;

data::FederatedDataset heterogeneous_fed() {
  data::FederatedDataset fed;
  // Four devices, unequal sizes and centers: heterogeneous enough that a
  // scheduling-dependent aggregation order would actually change bits.
  fed.train.push_back(quadratic_dataset(17, kDim, -1.0, 0.3, 11));
  fed.train.push_back(quadratic_dataset(8, kDim, 2.0, 0.3, 22));
  fed.train.push_back(quadratic_dataset(29, kDim, 0.5, 0.3, 33));
  fed.train.push_back(quadratic_dataset(12, kDim, -0.25, 0.3, 44));
  for (std::size_t n = 0; n < 4; ++n) {
    fed.test.push_back(quadratic_dataset(6, kDim, 0.0, 0.3, 100 + n));
  }
  return fed;
}

opt::LocalSolver svrg_solver(const std::shared_ptr<const nn::Model>& model) {
  opt::LocalSolverOptions o;
  o.estimator = opt::Estimator::kSvrg;
  o.sampling = opt::Sampling::kWithReplacement;  // exercises RNG streams
  o.tau = 12;
  o.batch_size = 3;
  o.eta = 0.05;
  o.mu = 0.1;
  return opt::LocalSolver(model, o);
}

TrainingTrace run_once(const TrainerOptions& options) {
  auto model = std::make_shared<QuadraticModel>(kDim);
  const auto fed = heterogeneous_fed();
  const Trainer trainer(model, fed, options);
  return trainer.run(svrg_solver(model), "determinism");
}

TrainerOptions base_options() {
  TrainerOptions options;
  options.rounds = 8;
  options.seed = 42;
  options.parallel = true;
  return options;
}

void expect_hash_equal_traces(const TrainingTrace& a,
                              const TrainingTrace& b) {
  ASSERT_EQ(a.rounds.size(), b.rounds.size());
  ASSERT_NE(a.final_param_hash, 0U);
  EXPECT_EQ(a.final_param_hash, b.final_param_hash);
  EXPECT_EQ(a.final_parameters, b.final_parameters);  // bitwise, not "near"
  for (std::size_t i = 0; i < a.rounds.size(); ++i) {
    EXPECT_EQ(a.rounds[i].param_hash, b.rounds[i].param_hash)
        << "first divergent round: " << a.rounds[i].round;
    EXPECT_EQ(a.rounds[i].train_loss, b.rounds[i].train_loss);
    EXPECT_EQ(a.rounds[i].test_accuracy, b.rounds[i].test_accuracy);
  }
}

TEST(Determinism, IdenticalSeededRunsAreHashEqual) {
  const bool previous = check::set_enabled(true);
  const auto a = run_once(base_options());
  const auto b = run_once(base_options());
  check::set_enabled(previous);
  expect_hash_equal_traces(a, b);
}

TEST(Determinism, SerialAndParallelExecutionAgree) {
  const bool previous = check::set_enabled(true);
  const auto parallel = run_once(base_options());
  TrainerOptions serial_opts = base_options();
  serial_opts.parallel = false;
  const auto serial = run_once(serial_opts);
  check::set_enabled(previous);
  expect_hash_equal_traces(parallel, serial);
}

TEST(Determinism, ProfilingDoesNotPerturbParameters) {
  const bool previous = check::set_enabled(true);
  const auto plain = run_once(base_options());
  TrainerOptions profiled_opts = base_options();
  profiled_opts.observability.enabled = true;
  const auto profiled = run_once(profiled_opts);
  check::set_enabled(previous);
  // Wall-clock fields differ; the model trajectory must not.
  ASSERT_EQ(plain.rounds.size(), profiled.rounds.size());
  EXPECT_EQ(plain.final_param_hash, profiled.final_param_hash);
  for (std::size_t i = 0; i < plain.rounds.size(); ++i) {
    EXPECT_EQ(plain.rounds[i].param_hash, profiled.rounds[i].param_hash);
  }
}

// The kernel-level parallelism (blocked GEMM row-blocks, batched conv,
// parallel eval) must be invisible in the numerics: the same run on global
// pools of 1, 2, and hardware-default threads is bit-identical.
TEST(Determinism, HashEqualAcrossPoolSizes) {
  const bool previous = check::set_enabled(true);
  util::ThreadPool::reset_global(1);
  const auto one = run_once(base_options());
  util::ThreadPool::reset_global(2);
  const auto two = run_once(base_options());
  util::ThreadPool::reset_global(0);
  const auto dflt = run_once(base_options());
  check::set_enabled(previous);
  expect_hash_equal_traces(one, two);
  expect_hash_equal_traces(one, dflt);
}

// Same contract on a model big enough to engage the blocked parallel GEMM
// path (784-dim inputs: forward/backward products exceed the small-path
// volume threshold), so intra-kernel row-block scheduling is exercised, not
// just device-level fan-out.
TEST(Determinism, MlpRunHashEqualAcrossPoolSizes) {
  const auto run_mlp = [] {
    nn::MlpConfig mcfg;
    mcfg.input_dim = 784;
    mcfg.hidden = {32};
    mcfg.num_classes = 10;
    const auto model = nn::make_mlp(mcfg);
    data::SyntheticConfig cfg;
    cfg.dim = mcfg.input_dim;
    cfg.num_classes = mcfg.num_classes;
    data::FederatedDataset fed;
    for (std::size_t n = 0; n < 3; ++n) {
      fed.train.push_back(data::make_synthetic_device(cfg, n, 60));
      fed.test.push_back(data::make_synthetic_device(cfg, 10 + n, 20));
    }
    TrainerOptions options;
    options.rounds = 2;
    options.seed = 42;
    options.parallel = true;
    const Trainer trainer(model, fed, options);
    return trainer.run(svrg_solver(model), "determinism-mlp");
  };
  const bool previous = check::set_enabled(true);
  util::ThreadPool::reset_global(1);
  const auto one = run_mlp();
  util::ThreadPool::reset_global(2);
  const auto two = run_mlp();
  util::ThreadPool::reset_global(0);
  check::set_enabled(previous);
  expect_hash_equal_traces(one, two);
}

TEST(Determinism, DifferentSeedsProduceDifferentHashes) {
  TrainerOptions other = base_options();
  other.seed = 43;
  const auto a = run_once(base_options());
  const auto b = run_once(other);
  EXPECT_NE(a.final_param_hash, b.final_param_hash);
}

}  // namespace
}  // namespace fedvr::fl
