// Compiled with FEDVR_CHECKS_DISABLED defined for this translation unit
// (see tests/CMakeLists.txt): proves the FEDVR_CHECK_* macros are true
// no-ops when compiled out — no throw, and no argument evaluation at all —
// independent of how the fedvr_check library itself was built. In a
// -DFEDVR_CHECKS=OFF build the macro arrives from the command line already.
#ifndef FEDVR_CHECKS_DISABLED
#define FEDVR_CHECKS_DISABLED
#endif

#include "check/check.h"

#include <gtest/gtest.h>

#include <cmath>
#include <span>
#include <vector>

namespace fedvr::check {
namespace {

TEST(CheckDisabled, CompiledOutInThisTranslationUnit) {
  EXPECT_FALSE(kCompiledIn);
}

TEST(CheckDisabled, MacrosDoNotThrowOnViolations) {
  const bool previous = set_enabled(true);  // runtime toggle must not matter
  const std::vector<double> v = {std::nan("")};
  FEDVR_CHECK_SHAPE(v.size(), 99U);
  FEDVR_CHECK_INDEX(7U, 3U);
  FEDVR_CHECK_FINITE(std::span<const double>(v), "poisoned");
  FEDVR_CHECK_PRE(false, "unreachable");
  set_enabled(previous);
  SUCCEED();
}

TEST(CheckDisabled, MacroArgumentsAreNeverEvaluated) {
  const bool previous = set_enabled(true);
  int evaluations = 0;
  [[maybe_unused]] auto counted = [&evaluations](std::size_t x) {
    ++evaluations;
    return x;
  };
  FEDVR_CHECK_SHAPE(counted(1), counted(2));
  FEDVR_CHECK_INDEX(counted(9), counted(3));
  FEDVR_CHECK_PRE(counted(0) == 1, "zero overhead means zero evaluations");
  EXPECT_EQ(evaluations, 0);
  set_enabled(previous);
}

TEST(CheckDisabled, HashingStaysAvailableWhenChecksAreOut) {
  // The determinism-audit helpers are plain functions, not macros; a
  // checks-off Release build still hashes parameter vectors.
  const std::vector<double> w = {1.0, 2.0};
  EXPECT_EQ(hash_span(w), hash_span(w));
  EXPECT_NE(hash_span(w), 0U);
}

}  // namespace
}  // namespace fedvr::check
