// Integration tests: whole pipelines across modules.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <filesystem>
#include <fstream>

#include "core/fedproxvr.h"
#include "data/image_datasets.h"
#include "data/synthetic.h"
#include "nn/checkpoint.h"
#include "nn/models.h"
#include "testing/temp_dir.h"
#include "theory/bounds.h"
#include "theory/heterogeneity.h"
#include "theory/smoothness.h"

namespace fedvr {
namespace {

class PipelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = testing::make_temp_dir("fedvr_pipeline_test");
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }
  std::filesystem::path dir_;
};

TEST_F(PipelineTest, ProceduralImageFederationTrainsAboveChance) {
  // data -> shard -> model -> train -> evaluate, end to end.
  data::ImageDatasetConfig cfg;
  cfg.side = 12;
  cfg.pool_size = 400;
  cfg.shard.num_devices = 8;
  cfg.shard.min_samples = 20;
  cfg.shard.max_samples = 80;
  cfg.data_dir = path("no_such_dir");  // force the procedural path
  const auto dataset = data::make_federated_images(cfg);
  EXPECT_FALSE(dataset.used_real_files);

  const auto model = nn::make_logistic_regression(
      dataset.fed.train.front().feature_dim(), 10);
  util::Rng rng(1);
  const auto w_probe = model->initial_parameters(rng);
  core::HyperParams hp;
  hp.beta = 5.0;
  hp.smoothness_L = theory::estimate_smoothness(
      *model, dataset.fed.train.front(), w_probe, rng);
  hp.tau = 15;
  hp.mu = 0.1;
  hp.batch_size = 8;
  fl::TrainerOptions run_cfg;
  run_cfg.rounds = 12;
  run_cfg.seed = 5;
  const auto trace = core::run_federated(model, dataset.fed,
                                         core::fedproxvr_svrg(hp), run_cfg);
  // 10 classes, 2 per device: sharded-test chance is ~10-ish%, a trained
  // linear model must clear 35%.
  EXPECT_GT(trace.best_accuracy().first, 0.35);
  EXPECT_LT(trace.back().train_loss, trace.rounds.front().train_loss);
}

TEST_F(PipelineTest, RealIdxFilesAreDetectedAndUsed) {
  // Fabricate a tiny-but-valid IDX pair in the expected location and check
  // the facade prefers it over the procedural generator.
  const auto data_dir = dir_ / "data";
  std::filesystem::create_directories(data_dir);
  auto write_be32 = [](std::ofstream& out, std::uint32_t v) {
    const unsigned char bytes[4] = {static_cast<unsigned char>(v >> 24),
                                    static_cast<unsigned char>(v >> 16),
                                    static_cast<unsigned char>(v >> 8),
                                    static_cast<unsigned char>(v)};
    out.write(reinterpret_cast<const char*>(bytes), 4);
  };
  const std::size_t n = 120, side = 6;
  {
    std::ofstream img((data_dir / "train-images-idx3-ubyte").string(),
                      std::ios::binary);
    write_be32(img, 0x803);
    write_be32(img, n);
    write_be32(img, side);
    write_be32(img, side);
    for (std::size_t i = 0; i < n * side * side; ++i) {
      img.put(static_cast<char>(i % 251));
    }
  }
  {
    std::ofstream lbl((data_dir / "train-labels-idx1-ubyte").string(),
                      std::ios::binary);
    write_be32(lbl, 0x801);
    write_be32(lbl, n);
    for (std::size_t i = 0; i < n; ++i) {
      lbl.put(static_cast<char>(i % 10));
    }
  }
  data::ImageDatasetConfig cfg;
  cfg.data_dir = data_dir.string();
  cfg.shard.num_devices = 4;
  cfg.shard.min_samples = 10;
  cfg.shard.max_samples = 30;
  const auto dataset = data::make_federated_images(cfg);
  EXPECT_TRUE(dataset.used_real_files);
  EXPECT_EQ(dataset.fed.train.front().sample_shape(),
            tensor::Shape({1, side, side}));
}

TEST_F(PipelineTest, FullRunsAreBitReproducible) {
  data::SyntheticConfig cfg;
  cfg.num_devices = 6;
  cfg.min_samples = 30;
  cfg.max_samples = 60;
  const auto fed = data::make_synthetic(cfg);
  const auto model = nn::make_logistic_regression(cfg.dim, cfg.num_classes);
  core::HyperParams hp;
  hp.beta = 5.0;
  hp.tau = 10;
  hp.mu = 0.1;
  hp.batch_size = 4;
  fl::TrainerOptions run_cfg;
  run_cfg.rounds = 8;
  run_cfg.seed = 77;
  const auto a = core::run_federated(model, fed, core::fedproxvr_sarah(hp),
                                     run_cfg);
  const auto b = core::run_federated(model, fed, core::fedproxvr_sarah(hp),
                                     run_cfg);
  ASSERT_EQ(a.rounds.size(), b.rounds.size());
  for (std::size_t i = 0; i < a.rounds.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.rounds[i].train_loss, b.rounds[i].train_loss);
    EXPECT_DOUBLE_EQ(a.rounds[i].test_accuracy, b.rounds[i].test_accuracy);
    EXPECT_EQ(a.rounds[i].comm_bytes, b.rounds[i].comm_bytes);
  }
}

TEST_F(PipelineTest, TraceCsvRoundTripsThroughDisk) {
  data::SyntheticConfig cfg;
  cfg.num_devices = 3;
  cfg.min_samples = 20;
  cfg.max_samples = 40;
  const auto fed = data::make_synthetic(cfg);
  const auto model = nn::make_logistic_regression(cfg.dim, cfg.num_classes);
  core::HyperParams hp;
  hp.tau = 5;
  hp.batch_size = 4;
  fl::TrainerOptions run_cfg;
  run_cfg.rounds = 3;
  const auto trace =
      core::run_federated(model, fed, core::fedavg(hp), run_cfg);
  const std::string csv_path = path("trace.csv");
  trace.write_csv(csv_path);
  std::ifstream in(csv_path);
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) ++lines;
  EXPECT_EQ(lines, 1 + trace.rounds.size());  // header + one row per round
}

TEST_F(PipelineTest, CheckpointPreservesModelBehaviour) {
  // Train, checkpoint, reload: losses and predictions identical.
  data::SyntheticConfig cfg;
  cfg.num_devices = 4;
  cfg.min_samples = 30;
  cfg.max_samples = 50;
  const auto fed = data::make_synthetic(cfg);
  const auto model = nn::make_logistic_regression(cfg.dim, cfg.num_classes);
  core::HyperParams hp;
  hp.tau = 8;
  hp.batch_size = 4;
  fl::TrainerOptions run_cfg;
  run_cfg.rounds = 5;
  const auto trace =
      core::run_federated(model, fed, core::fedproxvr_svrg(hp), run_cfg);
  ASSERT_EQ(trace.final_parameters.size(), model->num_parameters());
  nn::save_parameters(path("w.ckpt"), trace.final_parameters);
  const auto reloaded =
      nn::load_parameters(path("w.ckpt"), model->num_parameters());
  EXPECT_EQ(reloaded, trace.final_parameters);
  const auto pooled = fed.pooled_test();
  EXPECT_DOUBLE_EQ(model->accuracy(reloaded, pooled),
                   trace.back().test_accuracy);
}

TEST_F(PipelineTest, MeasuredConstantsFeedTheoryPipeline) {
  // data -> (L, sigma^2) estimation -> Theta -> rounds prediction: the
  // full theory pipeline must produce finite, positive outputs on real
  // federated data.
  data::SyntheticConfig cfg;
  cfg.num_devices = 6;
  cfg.min_samples = 40;
  cfg.max_samples = 80;
  const auto fed = data::make_synthetic(cfg);
  const auto model = nn::make_logistic_regression(cfg.dim, cfg.num_classes);
  util::Rng rng(11);
  const auto w0 = model->initial_parameters(rng);
  data::Dataset pooled(fed.train.front().sample_shape(), 0,
                       cfg.num_classes);
  for (const auto& d : fed.train) pooled.append(d);
  const double L = theory::estimate_smoothness(*model, pooled, w0, rng);
  const auto het = theory::estimate_heterogeneity(*model, fed, rng);
  EXPECT_GT(L, 0.0);
  EXPECT_GT(het.sigma_bar_sq, 0.0);
  const theory::ProblemConstants pc{.L = L,
                                    .lambda = 0.01,
                                    .sigma_bar_sq = het.sigma_bar_sq};
  // A sufficiently large mu and small theta must give a usable Theta.
  double mu = 10.0 * L;
  while (theory::federated_factor(0.01, mu, pc) <= 0.0 && mu < 1e8) {
    mu *= 2.0;
  }
  const double Theta = theory::federated_factor(0.01, mu, pc);
  EXPECT_GT(Theta, 0.0);
  const double T = theory::global_rounds_needed(5.0, Theta, 0.01);
  EXPECT_GT(T, 0.0);
  EXPECT_TRUE(std::isfinite(T));
}

}  // namespace
}  // namespace fedvr
