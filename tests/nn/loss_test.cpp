#include "nn/loss.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/error.h"
#include "util/rng.h"

namespace fedvr::nn {
namespace {

using fedvr::util::Error;
using fedvr::util::Rng;

TEST(SoftmaxCrossEntropy, UniformLogitsGiveLogC) {
  const std::vector<double> logits = {0, 0, 0, 0};
  const std::vector<int> labels = {2};
  EXPECT_NEAR(softmax_cross_entropy(1, 4, logits, labels), std::log(4.0),
              1e-12);
}

TEST(SoftmaxCrossEntropy, ConfidentCorrectPredictionHasLowLoss) {
  const std::vector<double> logits = {10, 0, 0};
  const std::vector<int> labels = {0};
  EXPECT_LT(softmax_cross_entropy(1, 3, logits, labels), 1e-3);
}

TEST(SoftmaxCrossEntropy, ConfidentWrongPredictionHasHighLoss) {
  const std::vector<double> logits = {10, 0, 0};
  const std::vector<int> labels = {1};
  EXPECT_GT(softmax_cross_entropy(1, 3, logits, labels), 9.0);
}

TEST(SoftmaxCrossEntropy, AveragesOverBatch) {
  const std::vector<double> logits = {0, 0, 0,   // sample 0, label 0
                                      0, 10, 0}; // sample 1, label 1
  const std::vector<int> labels = {0, 1};
  const std::span<const double> row0(logits.data(), 3);
  const std::span<const double> row1(logits.data() + 3, 3);
  const std::span<const int> lab0(labels.data(), 1);
  const std::span<const int> lab1(labels.data() + 1, 1);
  const double l0 = softmax_cross_entropy(1, 3, row0, lab0);
  const double l1 = softmax_cross_entropy(1, 3, row1, lab1);
  const double both = softmax_cross_entropy(2, 3, logits, labels);
  EXPECT_NEAR(both, (l0 + l1) / 2.0, 1e-12);
  EXPECT_NEAR(l0, std::log(3.0), 1e-12);
}

TEST(SoftmaxCrossEntropy, StableForExtremeLogits) {
  const std::vector<double> logits = {1e4, -1e4, 0.0};
  const std::vector<int> labels = {0};
  const double loss = softmax_cross_entropy(1, 3, logits, labels);
  EXPECT_TRUE(std::isfinite(loss));
  EXPECT_NEAR(loss, 0.0, 1e-12);
}

TEST(SoftmaxCrossEntropy, InvalidLabelThrows) {
  const std::vector<double> logits = {0, 0};
  const std::vector<int> bad_high = {2};
  const std::vector<int> bad_low = {-1};
  EXPECT_THROW((void)softmax_cross_entropy(1, 2, logits, bad_high), Error);
  EXPECT_THROW((void)softmax_cross_entropy(1, 2, logits, bad_low), Error);
}

TEST(SoftmaxCrossEntropyBackward, GradientSumsToZeroPerRow) {
  // d_logits rows sum to zero because softmax probabilities sum to one.
  Rng rng(3);
  const std::size_t batch = 4, classes = 6;
  std::vector<double> logits(batch * classes);
  for (auto& v : logits) v = rng.normal(0, 2);
  const std::vector<int> labels = {0, 3, 5, 2};
  std::vector<double> d(batch * classes);
  (void)softmax_cross_entropy_backward(batch, classes, logits, labels, d);
  for (std::size_t i = 0; i < batch; ++i) {
    double row_sum = 0.0;
    for (std::size_t j = 0; j < classes; ++j) row_sum += d[i * classes + j];
    EXPECT_NEAR(row_sum, 0.0, 1e-12);
  }
}

TEST(SoftmaxCrossEntropyBackward, MatchesFiniteDifferences) {
  Rng rng(5);
  const std::size_t batch = 3, classes = 4;
  std::vector<double> logits(batch * classes);
  for (auto& v : logits) v = rng.normal();
  const std::vector<int> labels = {1, 0, 3};
  std::vector<double> d(batch * classes);
  const double base =
      softmax_cross_entropy_backward(batch, classes, logits, labels, d);
  EXPECT_NEAR(base, softmax_cross_entropy(batch, classes, logits, labels),
              1e-12);
  const double step = 1e-6;
  for (std::size_t i = 0; i < logits.size(); ++i) {
    const double orig = logits[i];
    logits[i] = orig + step;
    const double up = softmax_cross_entropy(batch, classes, logits, labels);
    logits[i] = orig - step;
    const double down = softmax_cross_entropy(batch, classes, logits, labels);
    logits[i] = orig;
    EXPECT_NEAR(d[i], (up - down) / (2 * step), 1e-7);
  }
}

TEST(SoftmaxCrossEntropyBackward, GradientAtLabelIsNegative) {
  const std::vector<double> logits = {0, 0, 0};
  const std::vector<int> labels = {1};
  std::vector<double> d(3);
  (void)softmax_cross_entropy_backward(1, 3, logits, labels, d);
  EXPECT_LT(d[1], 0.0);
  EXPECT_GT(d[0], 0.0);
  EXPECT_GT(d[2], 0.0);
}

}  // namespace
}  // namespace fedvr::nn
