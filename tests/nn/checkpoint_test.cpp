#include "nn/checkpoint.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "nn/models.h"
#include "testing/temp_dir.h"
#include "util/error.h"
#include "util/rng.h"

namespace fedvr::nn {
namespace {

using fedvr::util::Error;
using fedvr::util::Rng;

class CheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fedvr::testing::make_temp_dir("fedvr_ckpt_test");
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }
  std::filesystem::path dir_;
};

TEST_F(CheckpointTest, RoundTripsExactDoubles) {
  const std::vector<double> w = {0.0, -1.5, 3.14159265358979,
                                 1e-300, 1e300, -0.0};
  save_parameters(path("a.ckpt"), w);
  const auto loaded = load_parameters(path("a.ckpt"));
  ASSERT_EQ(loaded.size(), w.size());
  for (std::size_t i = 0; i < w.size(); ++i) {
    EXPECT_EQ(loaded[i], w[i]) << i;  // bit-exact
  }
}

TEST_F(CheckpointTest, RoundTripsEmptyVector) {
  save_parameters(path("empty.ckpt"), std::vector<double>{});
  EXPECT_TRUE(load_parameters(path("empty.ckpt")).empty());
}

TEST_F(CheckpointTest, RoundTripsRealModelParameters) {
  const auto model = make_logistic_regression(30, 10);
  Rng rng(3);
  const auto w = model->initial_parameters(rng);
  save_parameters(path("model.ckpt"), w);
  const auto loaded =
      load_parameters(path("model.ckpt"), model->num_parameters());
  EXPECT_EQ(loaded, w);
}

TEST_F(CheckpointTest, CountMismatchThrows) {
  save_parameters(path("b.ckpt"), std::vector<double>{1.0, 2.0});
  EXPECT_THROW((void)load_parameters(path("b.ckpt"), 3), Error);
}

TEST_F(CheckpointTest, MissingFileThrows) {
  EXPECT_THROW((void)load_parameters(path("missing.ckpt")), Error);
}

TEST_F(CheckpointTest, BadMagicThrows) {
  {
    std::ofstream out(path("junk.ckpt"), std::ios::binary);
    out << "this is definitely not a checkpoint file at all";
  }
  EXPECT_THROW((void)load_parameters(path("junk.ckpt")), Error);
}

TEST_F(CheckpointTest, TruncatedDataThrows) {
  save_parameters(path("c.ckpt"), std::vector<double>(10, 1.0));
  std::filesystem::resize_file(path("c.ckpt"), 40);  // cut into the payload
  EXPECT_THROW((void)load_parameters(path("c.ckpt")), Error);
}

TEST_F(CheckpointTest, TrailingGarbageThrows) {
  save_parameters(path("d.ckpt"), std::vector<double>{1.0});
  {
    std::ofstream out(path("d.ckpt"), std::ios::binary | std::ios::app);
    out << "x";
  }
  EXPECT_THROW((void)load_parameters(path("d.ckpt")), Error);
}

}  // namespace
}  // namespace fedvr::nn
