#include "nn/linear_models.h"

#include <gtest/gtest.h>

#include <cmath>

#include "tensor/vecops.h"
#include "testing/gradient_check.h"
#include "util/error.h"
#include "util/rng.h"

namespace fedvr::nn {
namespace {

using fedvr::util::Error;
using fedvr::util::Rng;

// Regression data with known true weights: target = x^T w_true + noise.
data::Dataset regression_data(std::size_t n, std::size_t dim,
                              std::span<const double> w_true, double noise,
                              std::uint64_t seed) {
  data::Dataset ds(tensor::Shape({dim + 1}), n, 2);
  Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    auto row = ds.mutable_sample(i);
    double y = rng.normal(0.0, noise);
    for (std::size_t j = 0; j < dim; ++j) {
      row[j] = rng.normal();
      y += row[j] * w_true[j];
    }
    row[dim] = y;
    ds.set_label(i, y >= 0.0 ? 1 : 0);
  }
  return ds;
}

// Linearly separable binary data: y = sign(x^T w_true + b).
data::Dataset svm_data(std::size_t n, std::size_t dim,
                       std::span<const double> w_true, double margin,
                       std::uint64_t seed) {
  data::Dataset ds(tensor::Shape({dim}), n, 2);
  Rng rng(seed);
  std::size_t i = 0;
  while (i < n) {
    auto row = ds.mutable_sample(i);
    double score = 0.0;
    for (std::size_t j = 0; j < dim; ++j) {
      row[j] = rng.normal();
      score += row[j] * w_true[j];
    }
    if (std::abs(score) < margin) continue;  // enforce a margin
    ds.set_label(i, score >= 0.0 ? 1 : 0);
    ++i;
  }
  return ds;
}

TEST(LinearRegression, LossIsHalfSquaredError) {
  const LinearRegressionModel model(2);
  data::Dataset ds(tensor::Shape({3}), 1, 2);
  auto row = ds.mutable_sample(0);
  row[0] = 1.0;
  row[1] = 2.0;
  row[2] = 5.0;  // target
  const std::vector<double> w = {1.0, 1.0};  // prediction 3, error -2
  const auto idx = all_indices(1);
  EXPECT_DOUBLE_EQ(model.loss(w, ds, idx), 2.0);
}

TEST(LinearRegression, GradientMatchesFiniteDifferences) {
  const std::size_t dim = 6;
  const LinearRegressionModel model(dim, 0.01);
  const std::vector<double> w_true = {1, -2, 0.5, 3, -1, 2};
  const auto ds = regression_data(20, dim, w_true, 0.1, 3);
  Rng rng(5);
  std::vector<double> w(dim);
  model.initialize(rng, w);
  const auto idx = all_indices(ds.size());
  std::vector<double> grad(dim);
  (void)model.loss_and_gradient(w, ds, idx, grad);
  testing::expect_gradient_matches(
      [&](std::span<const double> probe) { return model.loss(probe, ds, idx); },
      w, grad);
}

TEST(LinearRegression, GradientDescentRecoversTrueWeights) {
  const std::size_t dim = 4;
  const LinearRegressionModel model(dim);
  const std::vector<double> w_true = {2.0, -1.0, 0.5, 1.5};
  const auto ds = regression_data(200, dim, w_true, 0.0, 7);
  Rng rng(9);
  std::vector<double> w(dim);
  model.initialize(rng, w);
  std::vector<double> grad(dim);
  for (int it = 0; it < 200; ++it) {
    (void)model.full_gradient(w, ds, grad);
    tensor::axpy(-0.3, grad, w);
  }
  for (std::size_t j = 0; j < dim; ++j) {
    EXPECT_NEAR(w[j], w_true[j], 1e-6);
  }
}

TEST(LinearRegression, WrongSampleWidthThrows) {
  const LinearRegressionModel model(4);
  data::Dataset ds(tensor::Shape({4}), 2, 2);  // missing the target column
  const auto idx = all_indices(2);
  std::vector<double> w(4, 0.0);
  EXPECT_THROW((void)model.loss(w, ds, idx), Error);
}

TEST(LinearSvm, LossMatchesHingeByHand) {
  const LinearSvmModel model(2, 0.0);
  data::Dataset ds(tensor::Shape({2}), 2, 2);
  ds.mutable_sample(0)[0] = 1.0;  // y = +1, score = w0 + b
  ds.set_label(0, 1);
  ds.mutable_sample(1)[1] = 1.0;  // y = -1, score = w1 + b
  ds.set_label(1, 0);
  const std::vector<double> w = {0.5, 2.0, 0.0};  // weights + bias
  // sample 0: margin 0.5 -> hinge 0.5; sample 1: margin -2 -> hinge 3.
  const auto idx = all_indices(2);
  EXPECT_DOUBLE_EQ(model.loss(w, ds, idx), (0.5 + 3.0) / 2.0);
}

TEST(LinearSvm, GradientMatchesFiniteDifferencesAwayFromKink) {
  const std::size_t dim = 5;
  const LinearSvmModel model(dim, 0.1);
  const std::vector<double> w_true = {1, -1, 2, 0.5, -2};
  const auto ds = svm_data(30, dim, w_true, 0.3, 11);
  Rng rng(13);
  std::vector<double> w(dim + 1);
  model.initialize(rng, w);
  const auto idx = all_indices(ds.size());
  std::vector<double> grad(dim + 1);
  (void)model.loss_and_gradient(w, ds, idx, grad);
  // The hinge is piecewise linear; FD is exact unless a sample's margin
  // sits within `step` of 1. Random init + margin-enforced data makes that
  // event measure-zero at this seed.
  testing::expect_gradient_matches(
      [&](std::span<const double> probe) { return model.loss(probe, ds, idx); },
      w, grad, 1e-7, 1e-4);
}

TEST(LinearSvm, LearnsSeparableData) {
  const std::size_t dim = 4;
  const LinearSvmModel model(dim, 1e-3);
  const std::vector<double> w_true = {1.0, -2.0, 1.5, 0.5};
  const auto ds = svm_data(150, dim, w_true, 0.4, 17);
  Rng rng(19);
  std::vector<double> w(dim + 1);
  model.initialize(rng, w);
  std::vector<double> grad(dim + 1);
  for (int it = 0; it < 300; ++it) {
    (void)model.full_gradient(w, ds, grad);
    tensor::axpy(-0.5, grad, w);
  }
  EXPECT_GT(model.accuracy(w, ds), 0.97);
}

TEST(LinearSvm, ZeroLossRegionHasOnlyRegularizerGradient) {
  // All margins > 1: hinge contributes nothing; gradient = l2 * w (weights
  // only).
  const LinearSvmModel model(2, 0.5);
  data::Dataset ds(tensor::Shape({2}), 1, 2);
  ds.mutable_sample(0)[0] = 10.0;
  ds.set_label(0, 1);
  const std::vector<double> w = {1.0, -3.0, 0.0};
  const auto idx = all_indices(1);
  std::vector<double> grad(3);
  (void)model.loss_and_gradient(w, ds, idx, grad);
  EXPECT_DOUBLE_EQ(grad[0], 0.5 * 1.0);
  EXPECT_DOUBLE_EQ(grad[1], 0.5 * -3.0);
  EXPECT_DOUBLE_EQ(grad[2], 0.0);
}

}  // namespace
}  // namespace fedvr::nn
