// Workspace-reuse and composite-network regression tests.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "nn/activation.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/models.h"
#include "nn/pool.h"
#include "nn/sequential.h"
#include "opt/estimator.h"
#include "util/rng.h"

namespace fedvr::nn {
namespace {

using fedvr::util::Rng;

std::shared_ptr<const Sequential> small_net() {
  std::vector<std::unique_ptr<Layer>> layers;
  layers.push_back(std::make_unique<DenseLayer>(4, 6));
  layers.push_back(std::make_unique<ReluLayer>(6));
  layers.push_back(std::make_unique<DenseLayer>(6, 2));
  return std::make_shared<const Sequential>(std::move(layers));
}

TEST(SequentialWorkspace, ReuseAcrossDifferentBatchSizes) {
  // A workspace sized by a big batch must produce identical results when
  // reused for a smaller one (buffers shrink/regrow correctly).
  const auto net = small_net();
  Rng rng(3);
  std::vector<double> w(net->param_count());
  net->init_params(rng, w);
  std::vector<double> x_big(8 * 4), x_small(2 * 4);
  for (auto& v : x_big) v = rng.normal();
  for (std::size_t i = 0; i < x_small.size(); ++i) x_small[i] = x_big[i];

  Sequential::Workspace reused;
  (void)net->forward(w, 8, x_big, reused, /*training=*/true);
  const auto out_reused = net->forward(w, 2, x_small, reused, true);
  Sequential::Workspace fresh;
  const auto out_fresh = net->forward(w, 2, x_small, fresh, true);
  ASSERT_EQ(out_reused.size(), out_fresh.size());
  for (std::size_t i = 0; i < out_fresh.size(); ++i) {
    EXPECT_DOUBLE_EQ(out_reused[i], out_fresh[i]);
  }

  // Backward through the reused workspace matches the fresh one too.
  std::vector<double> d_out(2 * 2, 1.0);
  std::vector<double> dw_reused(w.size(), 0.0), dw_fresh(w.size(), 0.0);
  net->backward(w, 2, x_small, d_out, dw_reused, reused);
  net->backward(w, 2, x_small, d_out, dw_fresh, fresh);
  for (std::size_t i = 0; i < w.size(); ++i) {
    EXPECT_DOUBLE_EQ(dw_reused[i], dw_fresh[i]);
  }
}

TEST(SequentialWorkspace, InferenceThenTrainingOnSameWorkspace) {
  const auto net = small_net();
  Rng rng(5);
  std::vector<double> w(net->param_count());
  net->init_params(rng, w);
  std::vector<double> x(3 * 4);
  for (auto& v : x) v = rng.normal();
  Sequential::Workspace ws;
  (void)net->forward(w, 3, x, ws, /*training=*/false);
  (void)net->forward(w, 3, x, ws, /*training=*/true);
  std::vector<double> d_out(3 * 2, 0.5);
  std::vector<double> dw(w.size(), 0.0);
  EXPECT_NO_THROW(net->backward(w, 3, x, d_out, dw, ws));
}

TEST(CnnComposite, ForwardShapesChainThroughAllLayerTypes) {
  // The full paper stack on a tiny input: conv -> relu -> pool -> conv ->
  // relu -> pool -> dense. Verifies inter-layer size bookkeeping.
  CnnConfig cfg;
  cfg.side = 8;
  cfg.conv1_channels = 3;
  cfg.conv2_channels = 5;
  cfg.kernel = 3;
  cfg.num_classes = 4;
  const auto model = make_two_layer_cnn(cfg);
  const auto& net = model->net();
  ASSERT_EQ(net.num_layers(), 7u);
  EXPECT_EQ(net.in_size(), 64u);
  EXPECT_EQ(net.layer(0).out_size(), 3u * 64u);   // conv1, same padding
  EXPECT_EQ(net.layer(2).out_size(), 3u * 16u);   // pool to 4x4
  EXPECT_EQ(net.layer(3).out_size(), 5u * 16u);   // conv2
  EXPECT_EQ(net.layer(5).out_size(), 5u * 4u);    // pool to 2x2
  EXPECT_EQ(net.out_size(), 4u);
}

TEST(Estimators, NamesAreStable) {
  using opt_e = fedvr::opt::Estimator;
  EXPECT_STREQ(fedvr::opt::estimator_name(opt_e::kSgd), "sgd");
  EXPECT_STREQ(fedvr::opt::estimator_name(opt_e::kSvrg), "svrg");
  EXPECT_STREQ(fedvr::opt::estimator_name(opt_e::kSarah), "sarah");
  EXPECT_STREQ(fedvr::opt::estimator_name(opt_e::kFullGradient), "gd");
}

}  // namespace
}  // namespace fedvr::nn
