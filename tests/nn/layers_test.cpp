// Unit tests for individual layers: shapes, forward values, and
// finite-difference checks of both parameter and input gradients.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "nn/activation.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/pool.h"
#include "tensor/vecops.h"
#include "util/error.h"
#include "util/rng.h"

namespace fedvr::nn {
namespace {

using fedvr::util::Error;
using fedvr::util::Rng;

// Scalar probe: s(w, x) = sum(forward(w, x)). Its gradient w.r.t. w is
// backward with dy = ones; checked against central differences.
double probe_sum(const Layer& layer, std::span<const double> w,
                 std::size_t batch, std::span<const double> x) {
  std::vector<double> y(batch * layer.out_size());
  layer.forward(w, batch, x, y, nullptr);
  double s = 0.0;
  for (double v : y) s += v;
  return s;
}

void check_layer_gradients(const Layer& layer, std::size_t batch,
                           Rng& rng, double tol = 1e-6) {
  std::vector<double> w(layer.param_count());
  layer.init_params(rng, w);
  std::vector<double> x(batch * layer.in_size());
  for (auto& v : x) v = rng.normal();

  // Analytic gradients via backward with dy = 1.
  std::vector<double> y(batch * layer.out_size());
  LayerCache cache;
  layer.forward(w, batch, x, y, &cache);
  std::vector<double> dy(y.size(), 1.0);
  std::vector<double> dx(x.size(), 0.0);
  std::vector<double> dw(w.size(), 0.0);
  layer.backward(w, batch, dy, dx, dw, cache);

  const double step = 1e-6;
  // Parameter gradient check.
  for (std::size_t i = 0; i < w.size(); ++i) {
    const double orig = w[i];
    w[i] = orig + step;
    const double up = probe_sum(layer, w, batch, x);
    w[i] = orig - step;
    const double down = probe_sum(layer, w, batch, x);
    w[i] = orig;
    const double fd = (up - down) / (2 * step);
    EXPECT_NEAR(dw[i], fd, tol * std::max(1.0, std::abs(fd)))
        << layer.name() << " dw[" << i << "]";
  }
  // Input gradient check.
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double orig = x[i];
    x[i] = orig + step;
    const double up = probe_sum(layer, w, batch, x);
    x[i] = orig - step;
    const double down = probe_sum(layer, w, batch, x);
    x[i] = orig;
    const double fd = (up - down) / (2 * step);
    EXPECT_NEAR(dx[i], fd, tol * std::max(1.0, std::abs(fd)))
        << layer.name() << " dx[" << i << "]";
  }
}

// ---------- Dense ----------

TEST(DenseLayer, ShapesAndParamCount) {
  const DenseLayer layer(5, 3);
  EXPECT_EQ(layer.in_size(), 5u);
  EXPECT_EQ(layer.out_size(), 3u);
  EXPECT_EQ(layer.param_count(), 18u);  // 15 weights + 3 biases
}

TEST(DenseLayer, ForwardMatchesManualComputation) {
  const DenseLayer layer(2, 2);
  // W = [1 2; 3 4], b = [10, 20]; x = [1, 1] -> y = [13, 27]
  const std::vector<double> w = {1, 2, 3, 4, 10, 20};
  const std::vector<double> x = {1, 1};
  std::vector<double> y(2);
  layer.forward(w, 1, x, y, nullptr);
  EXPECT_DOUBLE_EQ(y[0], 13);
  EXPECT_DOUBLE_EQ(y[1], 27);
}

TEST(DenseLayer, GradientsMatchFiniteDifferences) {
  Rng rng(1);
  check_layer_gradients(DenseLayer(4, 3), 5, rng);
}

TEST(DenseLayer, InitZeroesBiasAndBoundsWeights) {
  const DenseLayer layer(100, 50);
  Rng rng(2);
  std::vector<double> w(layer.param_count());
  layer.init_params(rng, w);
  for (std::size_t i = 100 * 50; i < w.size(); ++i) EXPECT_EQ(w[i], 0.0);
  const double bound = std::sqrt(6.0 / 150.0);
  for (std::size_t i = 0; i < 100 * 50; ++i) {
    EXPECT_LE(std::abs(w[i]), bound);
  }
}

TEST(DenseLayer, BackwardAccumulatesIntoDw) {
  const DenseLayer layer(2, 1);
  const std::vector<double> w = {1, 1, 0};
  const std::vector<double> x = {1, 2};
  std::vector<double> y(1);
  LayerCache cache;
  layer.forward(w, 1, x, y, &cache);
  const std::vector<double> dy = {1};
  std::vector<double> dx(2);
  std::vector<double> dw = {100, 100, 100};  // pre-existing content
  layer.backward(w, 1, dy, dx, dw, cache);
  EXPECT_DOUBLE_EQ(dw[0], 101);  // += x[0]*dy
  EXPECT_DOUBLE_EQ(dw[1], 102);
  EXPECT_DOUBLE_EQ(dw[2], 101);  // += dy
}

// ---------- ReLU ----------

TEST(ReluLayer, HasNoParameters) {
  const ReluLayer layer(7);
  EXPECT_EQ(layer.param_count(), 0u);
  EXPECT_EQ(layer.in_size(), layer.out_size());
}

TEST(ReluLayer, GradientsMatchFiniteDifferences) {
  // Shift inputs away from the kink at 0 so FD is well-defined.
  const ReluLayer layer(6);
  Rng rng(3);
  std::vector<double> x(12);
  for (auto& v : x) {
    v = rng.normal();
    if (std::abs(v) < 0.05) v = 0.1;  // keep clear of the kink
  }
  std::vector<double> y(12);
  LayerCache cache;
  layer.forward({}, 2, x, y, &cache);
  std::vector<double> dy(12, 1.0), dx(12);
  std::vector<double> dw;
  layer.backward({}, 2, dy, dx, dw, cache);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_DOUBLE_EQ(dx[i], x[i] > 0 ? 1.0 : 0.0);
  }
}

// ---------- Conv2d ----------

TEST(Conv2dLayer, ShapesAndParamCount) {
  tensor::ConvGeometry g{.channels = 1,
                         .height = 8,
                         .width = 8,
                         .kernel_h = 5,
                         .kernel_w = 5,
                         .pad = 2,
                         .stride = 1};
  const Conv2dLayer layer(g, 4);
  EXPECT_EQ(layer.in_size(), 64u);
  EXPECT_EQ(layer.out_size(), 4u * 64u);
  EXPECT_EQ(layer.param_count(), 4u * 25u + 4u);
}

TEST(Conv2dLayer, IdentityKernelPassesThrough) {
  // 1x1 kernel with weight 1, bias 0 => output == input.
  tensor::ConvGeometry g{.channels = 1,
                         .height = 3,
                         .width = 3,
                         .kernel_h = 1,
                         .kernel_w = 1,
                         .pad = 0,
                         .stride = 1};
  const Conv2dLayer layer(g, 1);
  const std::vector<double> w = {1.0, 0.0};
  const std::vector<double> x = {1, 2, 3, 4, 5, 6, 7, 8, 9};
  std::vector<double> y(9);
  layer.forward(w, 1, x, y, nullptr);
  EXPECT_EQ(y, x);
}

TEST(Conv2dLayer, KnownBoxFilter) {
  // 2x2 all-ones kernel on a 2x2 image of ones, no pad: single output 4.
  tensor::ConvGeometry g{.channels = 1,
                         .height = 2,
                         .width = 2,
                         .kernel_h = 2,
                         .kernel_w = 2,
                         .pad = 0,
                         .stride = 1};
  const Conv2dLayer layer(g, 1);
  const std::vector<double> w = {1, 1, 1, 1, 0.5};  // bias 0.5
  const std::vector<double> x = {1, 1, 1, 1};
  std::vector<double> y(1);
  layer.forward(w, 1, x, y, nullptr);
  EXPECT_DOUBLE_EQ(y[0], 4.5);
}

TEST(Conv2dLayer, GradientsMatchFiniteDifferences) {
  tensor::ConvGeometry g{.channels = 2,
                         .height = 5,
                         .width = 4,
                         .kernel_h = 3,
                         .kernel_w = 3,
                         .pad = 1,
                         .stride = 1};
  Rng rng(5);
  check_layer_gradients(Conv2dLayer(g, 3), 2, rng, 1e-5);
}

TEST(Conv2dLayer, GradientsWithStrideMatchFiniteDifferences) {
  tensor::ConvGeometry g{.channels = 1,
                         .height = 6,
                         .width = 6,
                         .kernel_h = 3,
                         .kernel_w = 3,
                         .pad = 0,
                         .stride = 2};
  Rng rng(6);
  check_layer_gradients(Conv2dLayer(g, 2), 2, rng, 1e-5);
}

// ---------- MaxPool ----------

TEST(MaxPool2dLayer, ShapesHalve) {
  const MaxPool2dLayer layer(3, 8, 8, 2);
  EXPECT_EQ(layer.in_size(), 3u * 64u);
  EXPECT_EQ(layer.out_size(), 3u * 16u);
  EXPECT_EQ(layer.param_count(), 0u);
}

TEST(MaxPool2dLayer, PicksWindowMaxima) {
  const MaxPool2dLayer layer(1, 2, 4, 2);
  const std::vector<double> x = {1, 5, 2, 0,
                                 3, 4, 8, 7};
  std::vector<double> y(2);
  layer.forward({}, 1, x, y, nullptr);
  EXPECT_DOUBLE_EQ(y[0], 5);
  EXPECT_DOUBLE_EQ(y[1], 8);
}

TEST(MaxPool2dLayer, BackwardRoutesToArgmax) {
  const MaxPool2dLayer layer(1, 2, 2, 2);
  const std::vector<double> x = {1, 9, 3, 2};
  std::vector<double> y(1);
  LayerCache cache;
  layer.forward({}, 1, x, y, &cache);
  const std::vector<double> dy = {5.0};
  std::vector<double> dx(4);
  std::vector<double> dw;
  layer.backward({}, 1, dy, dx, dw, cache);
  EXPECT_DOUBLE_EQ(dx[0], 0);
  EXPECT_DOUBLE_EQ(dx[1], 5);
  EXPECT_DOUBLE_EQ(dx[2], 0);
  EXPECT_DOUBLE_EQ(dx[3], 0);
}

TEST(MaxPool2dLayer, RaggedEdgeIsTruncated) {
  const MaxPool2dLayer layer(1, 5, 5, 2);
  EXPECT_EQ(layer.out_h(), 2u);
  EXPECT_EQ(layer.out_w(), 2u);
}

TEST(MaxPool2dLayer, TooSmallPlaneThrows) {
  EXPECT_THROW(MaxPool2dLayer(1, 1, 4, 2), Error);
}

}  // namespace
}  // namespace fedvr::nn
