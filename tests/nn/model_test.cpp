// Tests for Sequential composition and the FeedForwardModel / Model API,
// including end-to-end gradient checks for the paper's two tasks and a
// learnability smoke test.
#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <vector>

#include "data/procedural_images.h"
#include "data/synthetic.h"
#include "nn/activation.h"
#include "nn/dense.h"
#include "nn/models.h"
#include "nn/sequential.h"
#include "tensor/vecops.h"
#include "testing/gradient_check.h"
#include "util/error.h"
#include "util/rng.h"

namespace fedvr::nn {
namespace {

using fedvr::util::Error;
using fedvr::util::Rng;

data::Dataset small_vector_dataset(std::size_t n, std::size_t dim,
                                   std::size_t classes, std::uint64_t seed) {
  data::Dataset ds(tensor::Shape({dim}), n, classes);
  Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    auto x = ds.mutable_sample(i);
    for (auto& v : x) v = rng.normal();
    ds.set_label(i, static_cast<int>(rng.below(classes)));
  }
  return ds;
}

// ---------- Sequential ----------

TEST(Sequential, ValidatesLayerChaining) {
  std::vector<std::unique_ptr<Layer>> bad;
  bad.push_back(std::make_unique<DenseLayer>(4, 3));
  bad.push_back(std::make_unique<DenseLayer>(5, 2));  // expects 5, gets 3
  EXPECT_THROW(Sequential{std::move(bad)}, Error);
}

TEST(Sequential, ParamSlicesPartitionTheFlatVector) {
  std::vector<std::unique_ptr<Layer>> layers;
  layers.push_back(std::make_unique<DenseLayer>(4, 3));
  layers.push_back(std::make_unique<ReluLayer>(3));
  layers.push_back(std::make_unique<DenseLayer>(3, 2));
  const Sequential net(std::move(layers));
  EXPECT_EQ(net.param_count(), 15u + 0u + 8u);
  EXPECT_EQ(net.param_slice(0), (std::pair<std::size_t, std::size_t>{0, 15}));
  EXPECT_EQ(net.param_slice(1), (std::pair<std::size_t, std::size_t>{15, 0}));
  EXPECT_EQ(net.param_slice(2), (std::pair<std::size_t, std::size_t>{15, 8}));
}

TEST(Sequential, BackwardWithoutTrainingForwardThrows) {
  std::vector<std::unique_ptr<Layer>> layers;
  layers.push_back(std::make_unique<DenseLayer>(2, 2));
  const Sequential net(std::move(layers));
  std::vector<double> w(net.param_count(), 0.1);
  std::vector<double> x = {1, 2};
  Sequential::Workspace ws;
  (void)net.forward(w, 1, x, ws, /*training=*/false);
  std::vector<double> d_out = {1, 1};
  std::vector<double> dw(w.size());
  EXPECT_THROW(net.backward(w, 1, x, d_out, dw, ws), Error);
}

// ---------- LogisticRegression (paper's convex task) ----------

TEST(LogisticRegression, ParameterCount) {
  const auto model = make_logistic_regression(60, 10);
  EXPECT_EQ(model->num_parameters(), 60u * 10u + 10u);
}

TEST(LogisticRegression, GradientMatchesFiniteDifferences) {
  const auto model = make_logistic_regression(5, 3);
  const auto ds = small_vector_dataset(12, 5, 3, 7);
  Rng rng(1);
  auto w = model->initial_parameters(rng);
  const auto idx = all_indices(ds.size());
  std::vector<double> grad(w.size());
  const double loss = model->loss_and_gradient(w, ds, idx, grad);
  EXPECT_NEAR(loss, model->loss(w, ds, idx), 1e-12);
  testing::expect_gradient_matches(
      [&](std::span<const double> probe) {
        return model->loss(probe, ds, idx);
      },
      w, grad);
}

TEST(LogisticRegression, L2RegularizationEntersLossAndGradient) {
  const auto plain = make_logistic_regression(4, 2, 0.0);
  const auto reg = make_logistic_regression(4, 2, 0.5);
  const auto ds = small_vector_dataset(6, 4, 2, 3);
  Rng rng(2);
  auto w = plain->initial_parameters(rng);
  const auto idx = all_indices(ds.size());
  const double base = plain->loss(w, ds, idx);
  const double with_reg = reg->loss(w, ds, idx);
  EXPECT_NEAR(with_reg - base, 0.25 * tensor::nrm2_squared(w), 1e-12);

  std::vector<double> g0(w.size()), g1(w.size());
  (void)plain->loss_and_gradient(w, ds, idx, g0);
  (void)reg->loss_and_gradient(w, ds, idx, g1);
  for (std::size_t i = 0; i < w.size(); ++i) {
    EXPECT_NEAR(g1[i] - g0[i], 0.5 * w[i], 1e-12);
  }
}

TEST(LogisticRegression, ChunkedGradientEqualsUnchunked) {
  // max_chunk smaller than the batch must not change the result.
  auto net_layers = [] {
    std::vector<std::unique_ptr<Layer>> ls;
    ls.push_back(std::make_unique<DenseLayer>(4, 3));
    return ls;
  };
  const FeedForwardModel small_chunks(
      std::make_shared<const Sequential>(net_layers()), 0.0, /*max_chunk=*/2);
  const FeedForwardModel one_chunk(
      std::make_shared<const Sequential>(net_layers()), 0.0,
      /*max_chunk=*/1000);
  const auto ds = small_vector_dataset(11, 4, 3, 9);
  Rng rng(3);
  auto w = small_chunks.initial_parameters(rng);
  const auto idx = all_indices(ds.size());
  std::vector<double> ga(w.size()), gb(w.size());
  const double la = small_chunks.loss_and_gradient(w, ds, idx, ga);
  const double lb = one_chunk.loss_and_gradient(w, ds, idx, gb);
  EXPECT_NEAR(la, lb, 1e-12);
  for (std::size_t i = 0; i < w.size(); ++i) EXPECT_NEAR(ga[i], gb[i], 1e-12);
}

TEST(LogisticRegression, GradientDescentLearnsSeparableData) {
  // End-to-end learnability: full-batch GD on synthetic linear data must
  // drive training accuracy well above chance.
  data::SyntheticConfig cfg;
  cfg.num_devices = 1;
  cfg.dim = 10;
  cfg.num_classes = 4;
  const auto ds = data::make_synthetic_device(cfg, 0, 200);
  const auto model = make_logistic_regression(10, 4);
  Rng rng(5);
  auto w = model->initial_parameters(rng);
  std::vector<double> grad(w.size());
  const double initial_loss = model->full_loss(w, ds);
  for (int it = 0; it < 150; ++it) {
    (void)model->full_gradient(w, ds, grad);
    tensor::axpy(-0.5, grad, w);
  }
  EXPECT_LT(model->full_loss(w, ds), 0.6 * initial_loss);
  EXPECT_GT(model->accuracy(w, ds), 0.6);
}

TEST(Model, PredictReturnsArgmaxClass) {
  const auto model = make_logistic_regression(2, 2);
  // Weights that route x[0] to class 0 and x[1] to class 1.
  std::vector<double> w = {5, 0, 0, 5, 0, 0};
  data::Dataset ds(tensor::Shape({2}), 2, 2);
  ds.mutable_sample(0)[0] = 1.0;  // class 0 wins
  ds.mutable_sample(1)[1] = 1.0;  // class 1 wins
  const auto idx = all_indices(2);
  std::vector<std::size_t> pred(2);
  model->predict(w, ds, idx, pred);
  EXPECT_EQ(pred[0], 0u);
  EXPECT_EQ(pred[1], 1u);
}

TEST(Model, AccuracyCountsCorrectFraction) {
  const auto model = make_logistic_regression(2, 2);
  std::vector<double> w = {5, 0, 0, 5, 0, 0};
  data::Dataset ds(tensor::Shape({2}), 2, 2);
  ds.mutable_sample(0)[0] = 1.0;
  ds.set_label(0, 0);  // correct
  ds.mutable_sample(1)[1] = 1.0;
  ds.set_label(1, 0);  // model predicts 1 -> wrong
  EXPECT_DOUBLE_EQ(model->accuracy(w, ds), 0.5);
}

TEST(Model, MismatchedFeatureDimThrows) {
  const auto model = make_logistic_regression(5, 3);
  const auto ds = small_vector_dataset(4, 7, 3, 1);
  Rng rng(1);
  auto w = model->initial_parameters(rng);
  const auto idx = all_indices(ds.size());
  EXPECT_THROW((void)model->loss(w, ds, idx), Error);
}

// ---------- Two-layer CNN (paper's non-convex task) ----------

TEST(TwoLayerCnn, PaperArchitectureParameterCount) {
  const auto model = make_two_layer_cnn();  // 28x28, 32/64 channels, 5x5
  // conv1: 32*25+32, conv2: 64*(32*25)+64, dense: (64*7*7)*10+10
  const std::size_t expected =
      (32 * 25 + 32) + (64 * 32 * 25 + 64) + (64 * 7 * 7 * 10 + 10);
  EXPECT_EQ(model->num_parameters(), expected);
}

TEST(TwoLayerCnn, RejectsIndivisibleInputSide) {
  CnnConfig cfg;
  cfg.side = 30;  // not divisible by 4
  EXPECT_THROW((void)make_two_layer_cnn(cfg), Error);
}

TEST(TwoLayerCnn, GradientMatchesFiniteDifferencesOnTinyInstance) {
  // Full FD over every parameter of the real CNN would be slow; shrink the
  // architecture (same code paths) and check every coordinate.
  CnnConfig cfg;
  cfg.side = 8;
  cfg.conv1_channels = 2;
  cfg.conv2_channels = 3;
  cfg.kernel = 3;
  cfg.num_classes = 3;
  const auto model = make_two_layer_cnn(cfg);
  data::Dataset ds(tensor::Shape({1, 8, 8}), 4, 3);
  Rng rng(11);
  for (std::size_t i = 0; i < ds.size(); ++i) {
    for (auto& v : ds.mutable_sample(i)) v = rng.uniform();
    ds.set_label(i, static_cast<int>(rng.below(3)));
  }
  auto w = model->initial_parameters(rng);
  const auto idx = all_indices(ds.size());
  std::vector<double> grad(w.size());
  (void)model->loss_and_gradient(w, ds, idx, grad);
  testing::expect_gradient_matches(
      [&](std::span<const double> probe) {
        return model->loss(probe, ds, idx);
      },
      w, grad, 1e-6, 3e-5);
}

TEST(TwoLayerCnn, LearnsToSeparateTwoProceduralClasses) {
  data::ProceduralImageConfig pc;
  pc.side = 8;
  data::Dataset ds(tensor::Shape({1, 8, 8}), 40, 10);
  for (std::size_t i = 0; i < 40; ++i) {
    const int label = static_cast<int>(i % 2);  // classes 0 and 1 only
    Rng rng(100 + i);
    data::render_procedural_image(pc, label, rng, ds.mutable_sample(i));
    ds.set_label(i, label);
  }
  CnnConfig cfg;
  cfg.side = 8;
  cfg.conv1_channels = 4;
  cfg.conv2_channels = 8;
  cfg.kernel = 3;
  const auto model = make_two_layer_cnn(cfg);
  Rng rng(13);
  auto w = model->initial_parameters(rng);
  std::vector<double> grad(w.size());
  for (int it = 0; it < 60; ++it) {
    (void)model->full_gradient(w, ds, grad);
    tensor::axpy(-0.3, grad, w);
  }
  EXPECT_GT(model->accuracy(w, ds), 0.9);
}

}  // namespace
}  // namespace fedvr::nn
