// Tests for tanh/sigmoid activations and the MLP factory.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "data/synthetic.h"
#include "nn/activation.h"
#include "nn/models.h"
#include "tensor/vecops.h"
#include "testing/gradient_check.h"
#include "util/error.h"
#include "util/rng.h"

namespace fedvr::nn {
namespace {

using fedvr::util::Error;
using fedvr::util::Rng;

template <typename LayerT>
void check_elementwise_gradient(double tol = 1e-7) {
  const LayerT layer(5);
  Rng rng(3);
  std::vector<double> x(10);
  for (auto& v : x) v = rng.normal();
  std::vector<double> y(10);
  LayerCache cache;
  layer.forward({}, 2, x, y, &cache);
  std::vector<double> dy(10);
  for (auto& v : dy) v = rng.normal();
  std::vector<double> dx(10);
  std::vector<double> dw;
  layer.backward({}, 2, dy, dx, dw, cache);
  const double step = 1e-6;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double orig = x[i];
    std::vector<double> up(10), down(10);
    x[i] = orig + step;
    layer.forward({}, 2, x, up, nullptr);
    x[i] = orig - step;
    layer.forward({}, 2, x, down, nullptr);
    x[i] = orig;
    const double fd = (up[i] - down[i]) / (2 * step) * dy[i];
    EXPECT_NEAR(dx[i], fd, tol) << "coordinate " << i;
  }
}

TEST(TanhLayer, MatchesStdTanh) {
  const TanhLayer layer(3);
  const std::vector<double> x = {-2.0, 0.0, 1.5};
  std::vector<double> y(3);
  layer.forward({}, 1, x, y, nullptr);
  for (int i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(y[static_cast<std::size_t>(i)],
                     std::tanh(x[static_cast<std::size_t>(i)]));
  }
}

TEST(TanhLayer, GradientMatchesFiniteDifferences) {
  check_elementwise_gradient<TanhLayer>();
}

TEST(SigmoidLayer, MatchesClosedForm) {
  const SigmoidLayer layer(3);
  const std::vector<double> x = {-1.0, 0.0, 2.0};
  std::vector<double> y(3);
  layer.forward({}, 1, x, y, nullptr);
  for (int i = 0; i < 3; ++i) {
    const double expected =
        1.0 / (1.0 + std::exp(-x[static_cast<std::size_t>(i)]));
    EXPECT_NEAR(y[static_cast<std::size_t>(i)], expected, 1e-15);
  }
}

TEST(SigmoidLayer, StableInExtremeTails) {
  const SigmoidLayer layer(2);
  const std::vector<double> x = {-1000.0, 1000.0};
  std::vector<double> y(2);
  layer.forward({}, 1, x, y, nullptr);
  EXPECT_NEAR(y[0], 0.0, 1e-300);
  EXPECT_NEAR(y[1], 1.0, 1e-15);
  EXPECT_TRUE(std::isfinite(y[0]) && std::isfinite(y[1]));
}

TEST(SigmoidLayer, GradientMatchesFiniteDifferences) {
  check_elementwise_gradient<SigmoidLayer>();
}

TEST(Mlp, ParameterCountMatchesArchitecture) {
  MlpConfig cfg;
  cfg.input_dim = 20;
  cfg.hidden = {16, 8};
  cfg.num_classes = 4;
  const auto model = make_mlp(cfg);
  const std::size_t expected = (20 * 16 + 16) + (16 * 8 + 8) + (8 * 4 + 4);
  EXPECT_EQ(model->num_parameters(), expected);
}

TEST(Mlp, NoHiddenLayersIsLogisticRegression) {
  MlpConfig cfg;
  cfg.input_dim = 7;
  cfg.hidden = {};
  cfg.num_classes = 3;
  const auto mlp = make_mlp(cfg);
  const auto logreg = make_logistic_regression(7, 3);
  EXPECT_EQ(mlp->num_parameters(), logreg->num_parameters());
}

TEST(Mlp, RejectsUnknownActivation) {
  MlpConfig cfg;
  cfg.activation = "swish";
  EXPECT_THROW((void)make_mlp(cfg), Error);
}

TEST(Mlp, RejectsZeroWidthHiddenLayer) {
  MlpConfig cfg;
  cfg.hidden = {16, 0};
  EXPECT_THROW((void)make_mlp(cfg), Error);
}

class MlpGradient : public ::testing::TestWithParam<const char*> {};

TEST_P(MlpGradient, MatchesFiniteDifferencesForEveryActivation) {
  MlpConfig cfg;
  cfg.input_dim = 6;
  cfg.hidden = {5, 4};
  cfg.num_classes = 3;
  cfg.activation = GetParam();
  cfg.l2_reg = 0.01;
  const auto model = make_mlp(cfg);
  data::Dataset ds(tensor::Shape({6}), 8, 3);
  Rng rng(7);
  for (std::size_t i = 0; i < ds.size(); ++i) {
    for (auto& v : ds.mutable_sample(i)) v = rng.normal();
    ds.set_label(i, static_cast<int>(rng.below(3)));
  }
  auto w = model->initial_parameters(rng);
  const auto idx = all_indices(ds.size());
  std::vector<double> grad(w.size());
  (void)model->loss_and_gradient(w, ds, idx, grad);
  testing::expect_gradient_matches(
      [&](std::span<const double> probe) {
        return model->loss(probe, ds, idx);
      },
      w, grad, 1e-6, 2e-5);
}

INSTANTIATE_TEST_SUITE_P(AllActivations, MlpGradient,
                         ::testing::Values("relu", "tanh", "sigmoid"));

TEST(Mlp, LearnsSyntheticTask) {
  data::SyntheticConfig cfg;
  cfg.num_devices = 1;
  cfg.dim = 12;
  cfg.num_classes = 4;
  const auto ds = data::make_synthetic_device(cfg, 0, 300);
  MlpConfig mlp_cfg;
  mlp_cfg.input_dim = 12;
  mlp_cfg.hidden = {24};
  mlp_cfg.num_classes = 4;
  mlp_cfg.activation = "tanh";
  const auto model = make_mlp(mlp_cfg);
  Rng rng(11);
  auto w = model->initial_parameters(rng);
  std::vector<double> grad(w.size());
  const double initial = model->full_loss(w, ds);
  for (int it = 0; it < 120; ++it) {
    (void)model->full_gradient(w, ds, grad);
    tensor::axpy(-0.5, grad, w);
  }
  EXPECT_LT(model->full_loss(w, ds), 0.5 * initial);
  EXPECT_GT(model->accuracy(w, ds), 0.6);
}

}  // namespace
}  // namespace fedvr::nn
