// Fixture: the rules ported from tools/lint.py's regexes onto token/AST
// facts — no-std-rand, no-naked-new, aggregation-in-seam,
// compression-in-seam — plus a scope check that unordered iteration
// outside fl/core/comm/tensor stays quiet.
#include "util/fixture_prelude.h"

namespace fedvr::nn {

// Positives: ambient randomness in its three common spellings.
unsigned bad_rand(std::uint64_t seed) {
  std::srand(static_cast<unsigned>(seed));  // expect: no-std-rand
  return std::rand();  // expect: no-std-rand
}

unsigned bad_random_device() {
  std::random_device rd;  // expect: no-std-rand
  return rd();
}

// Positives: naked allocation — and the matching naked delete.
double* bad_new() {
  double* p = new double[8];  // expect: no-naked-new
  return p;
}

void bad_delete(double* p) {
  delete[] p;  // expect: no-naked-new
}

// Negative: `= delete;` declarations are not deallocations.
struct NoCopy {
  NoCopy(const NoCopy&) = delete;
  NoCopy& operator=(const NoCopy&) = delete;
};

// Positive: weighted averaging outside the fl::Aggregator seam.
void bad_accumulate(std::span<const double> x, std::span<double> acc) {
  tensor::accumulate_weighted(0.5, x, acc);  // expect: aggregation-in-seam
}

// Positive: raw compression outside the comm::Channel seam skips error
// feedback and wire-byte accounting.
std::vector<double> bad_compress(comm::Compressor& comp,
                                 std::span<const double> x) {
  return comp.compress(x);  // expect: compression-in-seam
}

// Negative (scope): unordered iteration only matters in the reduction /
// serialization dirs; src/nn/ is out of scope for that rule.
void scoped_unordered_ok(const std::unordered_map<int, double>& table,
                         std::vector<int>& keys) {
  for (const auto& kv : table) {
    keys.push_back(kv.first);
  }
}

// Allowed: escape hatch on a ported rule.
unsigned allowed_rand() {
  // lint:allow(no-std-rand) fixture: demonstrates the escape hatch
  return std::rand();
}

}  // namespace fedvr::nn
