// Fixture: no-wallclock-outside-obs — simulated time comes from the
// timing model; ambient clocks in algorithm paths make runs
// irreproducible and live only in src/obs/ + src/util/stopwatch.h.
#include "util/fixture_prelude.h"

namespace fedvr::nn {

// Positive: a monotonic clock is still ambient time.
long bad_steady_clock() {
  return std::chrono::steady_clock::now();  // expect: no-wallclock-outside-obs
}

// Positive: C-style wall time.
std::time_t bad_c_time() {
  return std::time(nullptr);  // expect: no-wallclock-outside-obs
}

// Positive: POSIX clock read.
long bad_clock_gettime() {
  long ts = 0;
  clock_gettime(1, &ts);  // expect: no-wallclock-outside-obs
  return ts;
}

// Negative: Stopwatch is the sanctioned wrapper (its implementation is
// exempt; call sites only see elapsed seconds).
double good_stopwatch(const util::Stopwatch& sw) {
  return sw.seconds();
}

// Negative: a *member* named time() on a domain type is simulated time,
// not an ambient clock.
struct SimSchedule {
  double time() const;
};
double good_sim_time(const SimSchedule& sched) {
  return sched.time();
}

// Allowed: with a justification the clock stays (e.g. a log-only
// timestamp that never feeds the simulation).
long allowed_clock() {
  // lint:allow(no-wallclock-outside-obs) fixture: log-only timestamp
  return std::chrono::high_resolution_clock::now();
}

}  // namespace fedvr::nn
