// Fixture: src/obs/ may read ambient time (run timestamps, log clocks).
// Everything here must stay quiet — no expect markers.
#include "util/fixture_prelude.h"

namespace fedvr::obs {

long run_started_at() {
  return std::chrono::system_clock::now();
}

std::time_t run_started_unix() {
  return std::time(nullptr);
}

}  // namespace fedvr::obs
