// Fixture: compression inside src/comm/ is the seam itself — a
// Channel-side compress() call is sanctioned, so this file must stay
// quiet (no expect markers).
#include "util/fixture_prelude.h"

namespace fedvr::comm {

std::vector<double> fixture_channel_uplink(Compressor& comp,
                                           std::span<const double> x) {
  return comp.compress(x);
}

}  // namespace fedvr::comm
