// Minimal stand-ins so the analyzer fixtures parse hermetically: no system
// headers (libclang then parses each fixture TU in milliseconds and the
// findings cannot depend on the host's standard library). Declarations
// only — nothing here may trip a rule, because frontends attribute facts
// to the file that *uses* these names, and this header is excluded from
// every scan.
#pragma once

namespace std {

using size_t = unsigned long;
using time_t = long;
using uint64_t = unsigned long long;

template <typename T>
struct vector {
  vector();
  explicit vector(size_t n);
  vector(size_t n, const T& v);
  T& operator[](size_t i);
  const T& operator[](size_t i) const;
  T* begin();
  T* end();
  const T* begin() const;
  const T* end() const;
  void push_back(const T& v);
  void emplace_back(const T& v);
  void resize(size_t n);
  void reserve(size_t n);
  size_t size() const;
};

template <typename A, typename B>
struct pair {
  A first;
  B second;
};

template <typename K, typename V>
struct unordered_map {
  using value_type = pair<const K, V>;
  value_type* begin();
  value_type* end();
  const value_type* begin() const;
  const value_type* end() const;
  size_t size() const;
};

template <typename K>
struct unordered_set {
  const K* begin() const;
  const K* end() const;
  size_t size() const;
};

template <typename T>
struct span {
  T& operator[](size_t i);
  T* begin();
  T* end();
  size_t size() const;
};

template <typename T>
struct atomic {
  atomic(T v);
  T load() const;
  atomic& operator+=(T v);
  atomic& operator=(T v);
};

namespace chrono {
struct system_clock {
  static long now();
  static time_t to_time_t(long tp);
};
struct steady_clock {
  static long now();
};
struct high_resolution_clock {
  static long now();
};
}  // namespace chrono

int rand();
void srand(unsigned seed);
time_t time(time_t* out);
struct random_device {
  unsigned operator()();
};

}  // namespace std

long clock_gettime(int clk, void* out);

namespace fedvr {

namespace util {

struct Rng {
  explicit Rng(std::uint64_t seed = 0);
  void reseed(std::uint64_t seed);
  double uniform();
  std::size_t below(std::size_t bound);
};

Rng fork(std::uint64_t master_seed, std::uint64_t a, std::uint64_t b,
         std::uint64_t purpose);

namespace stream {
inline constexpr std::uint64_t kInit = 1;
inline constexpr std::uint64_t kData = 2;
inline constexpr std::uint64_t kComm = 3;
inline constexpr std::uint64_t kSampling = 4;
}  // namespace stream

struct ThreadPool {
  static ThreadPool& global();
  std::size_t size() const;
  template <typename F>
  void parallel_for(std::size_t begin, std::size_t end, F&& fn,
                    std::size_t grain = 1);
  template <typename F>
  void parallel_ranges(std::size_t begin, std::size_t end, F&& fn,
                       std::size_t grain = 1);
  template <typename F>
  void submit(F&& fn);
};

struct Stopwatch {
  double seconds() const;
};

}  // namespace util

namespace tensor {
void accumulate_weighted(double w, std::span<const double> x,
                         std::span<double> acc);
double sum(std::span<const double> x);
double weighted_sum(std::span<const double> w, std::span<const double> v);
}  // namespace tensor

namespace comm {
struct Compressor {
  std::vector<double> compress(std::span<const double> x);
};
}  // namespace comm

}  // namespace fedvr
