// Fixture: src/util/stopwatch.h is the sanctioned wall-time wrapper —
// the no-wallclock-outside-obs rule exempts exactly this path, so the
// clock reads below must produce zero findings (no expect markers).
#pragma once
#include "util/fixture_prelude.h"

namespace fedvr::util {

struct FixtureStopwatch {
  long start_ = std::chrono::steady_clock::now();
  double seconds() const {
    return static_cast<double>(std::chrono::steady_clock::now() - start_);
  }
};

}  // namespace fedvr::util
