// Fixture: no-alloc-in-hot-loop — loops in src/opt, src/tensor and
// src/core are per-round/per-iteration hot paths; sized vector
// constructions, resize/push_back growth and new-expressions inside them
// must be hoisted into reused workspace buffers (or, for push_back,
// amortized with a reserve() ahead of the loop).
#include "util/fixture_prelude.h"

namespace fedvr::opt {

struct Workspace {
  std::vector<double> grad;
  std::vector<double> step;
};

// Positive: a dim-sized vector constructed on every inner iteration.
double bad_construct_per_iteration(std::size_t iters, std::size_t dim) {
  double total = 0.0;
  for (std::size_t t = 0; t < iters; ++t) {
    std::vector<double> grad(dim);  // expect: no-alloc-in-hot-loop
    grad[0] = static_cast<double>(t);
    total += grad[0];
  }
  return total;
}

// Positive: growth calls inside the loop body.
void bad_growth_calls(std::size_t iters, std::size_t dim,
                      std::vector<double>& out) {
  for (std::size_t t = 0; t < iters; ++t) {
    out.resize(dim);                          // expect: no-alloc-in-hot-loop
    out.push_back(1.0);                       // expect: no-alloc-in-hot-loop
    out.emplace_back(2.0);                    // expect: no-alloc-in-hot-loop
  }
}

// Positive: a new-expression in a loop trips both the naked-new ban and
// the hot-loop allocation rule.
double* bad_new_in_loop(std::size_t iters) {
  double* last = nullptr;
  for (std::size_t t = 0; t < iters; ++t) {
    last = new double[4];  // expect: no-alloc-in-hot-loop, no-naked-new
  }
  return last;
}

// Negative: reference bindings to workspace buffers alias preallocated
// storage, and a default-constructed vector owns nothing.
void good_workspace_reuse(Workspace& ws, std::size_t iters) {
  for (std::size_t t = 0; t < iters; ++t) {
    std::vector<double>& grad = ws.grad;
    std::vector<double> names;
    grad[0] = static_cast<double>(t);
    (void)names;
  }
}

// Negative: reserve() ahead of the loop makes push_back allocation-free.
void good_reserved_push_back(std::size_t iters) {
  std::vector<double> acc;
  acc.reserve(iters);
  for (std::size_t t = 0; t < iters; ++t) {
    acc.push_back(static_cast<double>(t));
  }
}

// Negative: constructing and sizing buffers outside the loop is the
// pattern the rule pushes toward.
double good_hoisted_buffer(std::size_t iters, std::size_t dim) {
  std::vector<double> grad(dim);
  double total = 0.0;
  for (std::size_t t = 0; t < iters; ++t) {
    grad[0] = static_cast<double>(t);
    total += grad[0];
  }
  return total;
}

// Allowed: the author asserts the resize is a steady-state no-op (the
// buffer keeps its capacity across leases) and says why.
void allowed_warm_resize(Workspace& ws, std::size_t iters, std::size_t dim) {
  for (std::size_t t = 0; t < iters; ++t) {
    // lint:allow(no-alloc-in-hot-loop) fixture: no-op once workspace is warm
    ws.step.resize(dim);
    ws.step[0] = static_cast<double>(t);
  }
}

}  // namespace fedvr::opt
