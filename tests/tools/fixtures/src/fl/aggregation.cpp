// Fixture: src/fl/aggregation.* is the sanctioned reduction seam — fp
// accumulation and accumulate_weighted() are *expected* here, so this
// whole file must stay quiet (no expect markers).
#include "util/fixture_prelude.h"

namespace fedvr::fl {

double fixture_seam_reduce(const std::vector<double>& updates) {
  double total = 0.0;
  for (double u : updates) {
    total += u;
  }
  return total;
}

void fixture_seam_accumulate(std::span<const double> x,
                             std::span<double> acc) {
  tensor::accumulate_weighted(0.25, x, acc);
}

}  // namespace fedvr::fl
