// Fixture: path scoping of no-alloc-in-hot-loop — the rule covers
// src/opt, src/tensor, src/core, and the per-round event-loop files
// src/fl/event_engine.* / src/fl/hierarchy.* (see event_engine.cpp in this
// directory). Other orchestration code in src/fl may allocate per round
// (the trainer's round loop is not the per-sample hot path), so every line
// here must stay quiet.
#include "util/fixture_prelude.h"

namespace fedvr::fl {

void out_of_scope_round_alloc(std::size_t rounds, std::size_t dim,
                              std::vector<double>& sink) {
  for (std::size_t s = 0; s < rounds; ++s) {
    std::vector<double> delta(dim);
    delta[0] = static_cast<double>(s);
    sink.resize(dim);
    sink[0] = delta[0];
  }
}

}  // namespace fedvr::fl
