// Fixture: no-unordered-iteration-in-reduction — iteration order of
// unordered containers is implementation-defined; inside the aggregation/
// serialization dirs it must never be observable.
#include "util/fixture_prelude.h"

namespace fedvr::fl {

// Positive: range-for over an unordered_map member-ish local.
void bad_range_for(const std::unordered_map<int, double>& per_device,
                   std::vector<int>& keys) {
  for (const auto& kv : per_device) {  // expect: no-unordered-iteration-in-reduction
    keys.push_back(kv.first);
  }
}

// Positive: explicit iterator walk over an unordered_set.
void bad_begin_walk(const std::unordered_set<int>& quarantine,
                    std::vector<int>& out) {
  for (auto it = quarantine.begin(); it != quarantine.end(); ++it) {  // expect: no-unordered-iteration-in-reduction
    out.push_back(*it);
  }
}

// Negative: ordered containers iterate freely.
void good_vector_walk(const std::vector<double>& updates,
                      std::vector<double>& out) {
  for (double u : updates) {
    out.push_back(u);
  }
}

// Negative: membership queries on unordered containers are fine — only
// *iteration* leaks the order.
std::size_t good_size_query(const std::unordered_map<int, double>& table) {
  return table.size();
}

// Allowed: escape hatch with justification (e.g. the order is sorted
// immediately after, or feeds nothing observable).
void allowed_iteration(const std::unordered_set<int>& seen,
                       std::vector<int>& out) {
  // lint:allow(no-unordered-iteration-in-reduction) fixture: sorted below
  for (int v : seen) {
    out.push_back(v);
  }
}

}  // namespace fedvr::fl
