// Fixture: no-alloc-in-hot-loop coverage of the event-engine files. The
// round schedule runs once per round over every participant, so
// src/fl/event_engine.* (and src/fl/hierarchy.*) are held to the solver
// hot-path standard: no per-iteration heap growth; reserve() ahead of the
// loop exempts push_back.
#include "util/fixture_prelude.h"

namespace fedvr::fl {

// Positive: growing the arrival queue without reserving first allocates
// (amortized) every round.
void bad_unreserved_arrivals(std::size_t slots, std::vector<double>& queue) {
  for (std::size_t k = 0; k < slots; ++k) {
    queue.push_back(static_cast<double>(k));  // expect: no-alloc-in-hot-loop
  }
}

// Positive: a per-slot scratch vector constructed inside the event loop.
double bad_per_slot_scratch(std::size_t slots) {
  double total_time = 0.0;
  for (std::size_t k = 0; k < slots; ++k) {
    std::vector<double> scratch(4);  // expect: no-alloc-in-hot-loop
    scratch[0] = static_cast<double>(k);
    total_time = scratch[0];
  }
  return total_time;
}

// Negative: reserve() in the same function, ahead of the loop, exempts the
// push_back growth — the pattern RoundSchedule::build uses.
void good_reserved_arrivals(std::size_t slots, std::vector<double>& times) {
  times.reserve(slots);
  for (std::size_t k = 0; k < slots; ++k) {
    times.push_back(static_cast<double>(k));
  }
}

// Negative: buffers sized once before the loop and reused per iteration.
double good_hoisted_buffer(std::size_t slots) {
  std::vector<double> completion(slots);
  double realized = 0.0;
  for (std::size_t k = 0; k < slots; ++k) {
    completion[k] = static_cast<double>(k);
    if (completion[k] > realized) realized = completion[k];
  }
  return realized;
}

// Allowed: justified escape hatch (the hierarchy's shrink-only resizes).
void allowed_shrinking_resize(std::size_t levels, std::vector<double>& sums) {
  sums.reserve(levels);
  for (std::size_t l = levels; l > 1; l /= 2) {
    // lint:allow(no-alloc-in-hot-loop) shrink-only; capacity reserved above
    sums.resize(l);
  }
}

}  // namespace fedvr::fl
