// Fixture: fp-reduction-in-seam — floating-point accumulation over a
// device/update collection is order-sensitive, so it lives behind
// fl::Aggregator / tensor::vecops where the order is pinned. Everything
// else in fl/core/comm must call the helpers.
#include "util/fixture_prelude.h"

namespace fedvr::fl {

// Positive: hand-rolled range-for reduction over a collection.
double bad_range_reduce(const std::vector<double>& updates) {
  double total = 0.0;
  for (double u : updates) {
    total += u;  // expect: fp-reduction-in-seam
  }
  return total;
}

// Positive: indexed reduction — the RHS walks the collection by the
// loop variable.
double bad_indexed_reduce(std::span<const double> w,
                          std::span<const double> x) {
  double acc = 0.0;
  for (std::size_t n = 0; n < x.size(); ++n) {
    acc += w[n] * x[n];  // expect: fp-reduction-in-seam
  }
  return acc;
}

// Negative: element-wise writes land in disjoint slots — no cross-item
// accumulation order to pin.
void good_elementwise(std::span<double> acc, std::span<const double> x) {
  for (std::size_t i = 0; i < x.size(); ++i) {
    acc[i] += x[i];
  }
}

// Negative: per-iteration local never crosses iterations.
void good_loop_local(const std::vector<double>& bases,
                     std::vector<double>& out, double overhead) {
  for (double base : bases) {
    double t = base;
    t += overhead;
    out.push_back(t);
  }
}

// Negative: scalar clock advanced by a loop-invariant step (the
// simulated-time pattern) — not a reduction over a collection.
double good_time_advance(std::size_t rounds, double fixed_step) {
  double model_time = 0.0;
  for (std::size_t r = 0; r < rounds; ++r) {
    model_time += fixed_step;
  }
  return model_time;
}

// Allowed: justified escape hatch.
double allowed_reduce(const std::vector<double>& updates) {
  double total = 0.0;
  for (double u : updates) {
    // lint:allow(fp-reduction-in-seam) fixture: diagnostics-only total
    total += u;
  }
  return total;
}

}  // namespace fedvr::fl
