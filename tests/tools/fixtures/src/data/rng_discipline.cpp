// Fixture: rng-fork-discipline — seeds must be pure functions of
// (seed, device, round, stream tag). `// expect: <rule>` markers name the
// findings tests/tools/analyzer_selftest.py demands on that exact line;
// unmarked lines must stay quiet.
#include "util/fixture_prelude.h"

namespace fedvr::data {

// Negative: the canonical derivations — master seed, device coordinate,
// round, named stream — stay quiet.
void good_forks(std::uint64_t seed, std::size_t device, std::size_t round) {
  util::Rng a = util::fork(seed, device + 1, round, util::stream::kData);
  util::Rng b(seed);
  util::Rng c = util::Rng(seed * 2 + device);
  util::Rng d(seed ^ (round << 8));
  a.reseed(seed + round);
  (void)b;
  (void)c;
  (void)d;
}

// Positive: wall time in a seed (also ambient time outside obs/).
void bad_time_seed() {
  util::Rng r(std::time(nullptr));  // expect: rng-fork-discipline, no-wallclock-outside-obs
  (void)r;
}

// Positive: an object address laundered into a fork coordinate.
void bad_address_seed(std::uint64_t seed, std::size_t device) {
  util::Rng r = util::fork(
      seed, reinterpret_cast<std::uint64_t>(&device), 0,  // expect: rng-fork-discipline
      util::stream::kInit);
  (void)r;
}

// Positive: ambient randomness reseeding a stream mid-run.
void bad_reseed(util::Rng& rng) {
  rng.reseed(std::rand());  // expect: rng-fork-discipline, no-std-rand
}

// Allowed: the escape hatch silences exactly this rule, with a mandatory
// justification.
void allowed_address_seed(std::size_t device) {
  // lint:allow(rng-fork-discipline) fixture: demonstrates the escape hatch
  util::Rng r(reinterpret_cast<std::uint64_t>(&device));
  (void)r;
}

}  // namespace fedvr::data
