// Fixture: parallel-capture-safety — lambdas handed to the thread pool
// may only write by-ref captures through an index derived from their
// range parameter (disjoint slices), through std::atomic, or under an
// explicit lint:allow.
#include "util/fixture_prelude.h"

namespace fedvr::core {

// Negative: every write lands in out[i] where i is the lambda's own
// range parameter — disjoint by contract.
void good_indexed_write(util::ThreadPool& pool, std::vector<double>& out,
                        const std::vector<double>& vals, std::size_t n) {
  pool.parallel_for(0, n, [&](std::size_t i) {
    out[i] = vals[i] * 2.0;
  });
}

// Negative: index derives from the range parameters via a body-local
// loop variable — still disjoint per invocation.
void good_range_chunk(util::ThreadPool& pool, std::vector<double>& out,
                      std::size_t n) {
  auto body = [&](std::size_t lo, std::size_t hi) {
    for (std::size_t j = lo; j < hi; ++j) {
      out[j] += 1.0;
    }
  };
  pool.parallel_ranges(0, n, body);
}

// Negative: atomics are race-free by construction (determinism of the
// *value* is the fp-reduction rule's business, not this one's).
void good_atomic_count(util::ThreadPool& pool, std::size_t n) {
  std::atomic<long> counter(0);
  pool.parallel_for(0, n, [&](std::size_t i) {
    (void)i;
    counter += 1;
  });
}

// Negative: body-local accumulator never escapes the invocation.
void good_body_local(util::ThreadPool& pool, const std::vector<double>& vals,
                     std::vector<double>& out, std::size_t n) {
  pool.parallel_for(0, n, [&](std::size_t i) {
    double local = vals[i] * 0.5;
    local += 1.0;
    out[i] = local;
  });
}

// Positive: cross-invocation scalar accumulated under a default by-ref
// capture — a data race and an ordering hazard in one line.
void bad_shared_accumulate(util::ThreadPool& pool,
                           const std::vector<double>& vals, std::size_t n) {
  double total = 0.0;
  pool.parallel_for(0, n, [&](std::size_t i) {
    total += vals[i];  // expect: parallel-capture-safety
  });
  (void)total;
}

// Positive: the explicit-capture spelling of the same bug.
void bad_explicit_ref_capture(util::ThreadPool& pool,
                              const std::vector<double>& vals,
                              std::size_t n) {
  double total = 0.0;
  pool.parallel_for(0, n, [&total, &vals](std::size_t i) {
    total += vals[i];  // expect: parallel-capture-safety
  });
  (void)total;
}

// Positive: unsynchronized flag write from a submitted task.
void bad_submit_flag(util::ThreadPool& pool) {
  bool done = false;
  pool.submit([&] {
    done = true;  // expect: parallel-capture-safety
  });
  (void)done;
}

// Positive: member write through a captured this (trailing-underscore
// member convention).
struct Accumulator {
  void bad_member_write(util::ThreadPool& pool, std::size_t n) {
    pool.parallel_for(0, n, [this](std::size_t i) {
      (void)i;
      acc_ += 1.0;  // expect: parallel-capture-safety
    });
  }
  double acc_ = 0.0;
};

// Allowed: the author asserts the reduction is safe (e.g. pool size
// pinned to 1 on this path) and says why.
void allowed_shared_write(util::ThreadPool& pool,
                          const std::vector<double>& vals, std::size_t n) {
  double total = 0.0;
  pool.parallel_for(0, n, [&](std::size_t i) {
    // lint:allow(parallel-capture-safety) fixture: serial pool on this path
    total += vals[i];
  });
  (void)total;
}

}  // namespace fedvr::core
