#!/usr/bin/env python3
"""Self-test for tools/analyze (fedvr-analyze).

The fixture tree under tests/tools/fixtures mirrors src/ so the
analyzer's path-scoped rules apply exactly as they do on the real tree.
Every line that must produce findings carries a trailing
`// expect: rule[, rule]` marker; every unmarked line must stay quiet.
The test runs the analyzer as a subprocess (the same entry point CI and
developers use) and demands the *exact* (file, line, rule) set — so it
fails on missed findings, phantom findings, and broken lint:allow
handling alike.

Usage: analyzer_selftest.py [token|clang]
Exit: 0 pass, 1 fail, 77 skip (clang frontend requested but no libclang
— ctest maps 77 to SKIP via SKIP_RETURN_CODE).
"""

from __future__ import annotations

import json
import re
import subprocess
import sys
import tempfile
from pathlib import Path

HERE = Path(__file__).resolve().parent
REPO = HERE.parent.parent
FIXTURES = HERE / "fixtures"
ANALYZER = REPO / "tools" / "analyze"
PRELUDE = "src/util/fixture_prelude.h"
SUFFIXES = {".h", ".hpp", ".cpp", ".cc"}

EXPECT_RE = re.compile(r"//\s*expect:\s*([a-z0-9-]+(?:\s*,\s*[a-z0-9-]+)*)")


def expected_findings() -> set[tuple[str, int, str]]:
    exp: set[tuple[str, int, str]] = set()
    for f in sorted(FIXTURES.rglob("*")):
        if not f.is_file() or f.suffix not in SUFFIXES:
            continue
        rel = f.relative_to(FIXTURES).as_posix()
        if rel == PRELUDE:
            continue
        for lineno, line in enumerate(
                f.read_text(encoding="utf-8").splitlines(), 1):
            m = EXPECT_RE.search(line)
            if m:
                for rule in re.split(r"\s*,\s*", m.group(1)):
                    exp.add((rel, lineno, rule))
    return exp


def run_analyzer(frontend: str, json_out: Path,
                 extra: list[str]) -> subprocess.CompletedProcess:
    cmd = [sys.executable, str(ANALYZER),
           "--root", str(FIXTURES),
           "--paths", "src",
           "--exclude", PRELUDE,
           "--frontend", frontend,
           "--json", str(json_out)] + extra
    return subprocess.run(cmd, capture_output=True, text=True)


def main() -> int:
    frontend = sys.argv[1] if len(sys.argv) > 1 else "token"
    if frontend not in ("token", "clang"):
        print(f"unknown frontend {frontend!r}", file=sys.stderr)
        return 1

    if frontend == "clang":
        probe = subprocess.run(
            [sys.executable, "-c",
             "import sys; sys.path.insert(0, sys.argv[1]); "
             "from analyze import clang_frontend; "
             "sys.exit(0 if clang_frontend.available() else 3)",
             str(ANALYZER.parent)],
            capture_output=True)
        if probe.returncode != 0:
            print("SKIP: clang.cindex / libclang not available")
            return 77

    failures: list[str] = []
    with tempfile.TemporaryDirectory(prefix="fedvr-analyze-selftest-") as td:
        tmp = Path(td)

        # 1. Exact findings set over the fixture tree.
        json_out = tmp / "findings.json"
        proc = run_analyzer(frontend, json_out,
                            ["--baseline", str(tmp / "no-baseline.json")])
        if proc.returncode != 1:
            failures.append(
                f"expected exit 1 (findings present), got {proc.returncode}\n"
                f"stdout:\n{proc.stdout}\nstderr:\n{proc.stderr}")
        got: set[tuple[str, int, str]] = set()
        if json_out.exists():
            data = json.loads(json_out.read_text(encoding="utf-8"))
            got = {(x["file"], x["line"], x["rule"])
                   for x in data["findings"]}
        else:
            failures.append("analyzer wrote no JSON output")

        exp = expected_findings()
        missed = sorted(exp - got)
        phantom = sorted(got - exp)
        for file, line, rule in missed:
            failures.append(f"MISSED   {file}:{line} [{rule}] "
                            "(expect marker, analyzer silent)")
        for file, line, rule in phantom:
            failures.append(f"PHANTOM  {file}:{line} [{rule}] "
                            "(no expect marker on that line)")

        # 2. Baseline round-trip: write all findings to a baseline, rerun,
        # tree must report clean with everything attributed to the baseline.
        baseline = tmp / "baseline.json"
        wb = run_analyzer(frontend, tmp / "wb.json",
                          ["--baseline", str(baseline), "--write-baseline"])
        if wb.returncode != 0:
            failures.append(f"--write-baseline exited {wb.returncode}: "
                            f"{wb.stderr}")
        rerun_json = tmp / "rerun.json"
        rerun = run_analyzer(frontend, rerun_json,
                             ["--baseline", str(baseline)])
        if rerun.returncode != 0:
            failures.append(
                f"baselined rerun expected exit 0, got {rerun.returncode}\n"
                f"stdout:\n{rerun.stdout}")
        elif rerun_json.exists():
            rd = json.loads(rerun_json.read_text(encoding="utf-8"))
            if rd["findings"]:
                failures.append(f"baselined rerun still reports "
                                f"{len(rd['findings'])} finding(s)")
            if rd["baselined"] != len(exp):
                failures.append(
                    f"baselined count {rd['baselined']} != expected "
                    f"finding count {len(exp)}")

        # 3. Rule catalogs: both tools advertise their rules.
        for tool, needle in ((["tools/analyze"], "rng-fork-discipline"),
                             (["tools/lint.py"], "no-iostream-in-headers")):
            lr = subprocess.run(
                [sys.executable, str(REPO / tool[0]), "--list-rules"],
                capture_output=True, text=True)
            if lr.returncode != 0 or needle not in lr.stdout:
                failures.append(f"{tool[0]} --list-rules broken "
                                f"(exit {lr.returncode})")

    if failures:
        print(f"analyzer_selftest [{frontend}]: FAIL")
        for f in failures:
            print(f"  {f}")
        return 1
    print(f"analyzer_selftest [{frontend}]: PASS "
          f"({len(exp)} expected findings matched exactly)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
