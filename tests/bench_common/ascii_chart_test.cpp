#include "common/ascii_chart.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.h"

namespace fedvr::bench {
namespace {

using fedvr::util::Error;

Series ramp(const std::string& label, double slope, std::size_t n = 10) {
  Series s;
  s.label = label;
  for (std::size_t i = 0; i < n; ++i) {
    s.x.push_back(static_cast<double>(i));
    s.y.push_back(slope * static_cast<double>(i) + 1.0);
  }
  return s;
}

TEST(AsciiChart, RendersTitleAxesAndLegend) {
  const auto text = render_chart({ramp("loss", -0.1)},
                                 {.title = "my title",
                                  .y_label = "why",
                                  .x_label = "ex"});
  EXPECT_NE(text.find("my title"), std::string::npos);
  EXPECT_NE(text.find("x: ex"), std::string::npos);
  EXPECT_NE(text.find("y: why"), std::string::npos);
  EXPECT_NE(text.find("[*] loss"), std::string::npos);
}

TEST(AsciiChart, MultipleSeriesGetDistinctMarkers) {
  const auto text =
      render_chart({ramp("a", 1.0), ramp("b", -1.0), ramp("c", 0.0)}, {});
  EXPECT_NE(text.find("[*] a"), std::string::npos);
  EXPECT_NE(text.find("[o] b"), std::string::npos);
  EXPECT_NE(text.find("[+] c"), std::string::npos);
}

TEST(AsciiChart, PlotsMarkersInsideTheGrid) {
  const auto text = render_chart({ramp("a", 1.0)}, {.width = 30, .height = 8});
  std::size_t stars = 0;
  for (char c : text) stars += (c == '*');
  EXPECT_GE(stars, 5u);  // most of the 10 points land on distinct cells
}

TEST(AsciiChart, SkipsNonFiniteValues) {
  Series s = ramp("a", 1.0);
  s.y[3] = std::nan("");
  s.y[5] = INFINITY;
  EXPECT_NO_THROW((void)render_chart({s}, {}));
}

TEST(AsciiChart, AllNonFiniteThrows) {
  Series s;
  s.label = "bad";
  s.x = {0.0, 1.0};
  s.y = {std::nan(""), std::nan("")};
  EXPECT_THROW((void)render_chart({s}, {}), Error);
}

TEST(AsciiChart, EmptySeriesListThrows) {
  EXPECT_THROW((void)render_chart({}, {}), Error);
}

TEST(AsciiChart, MismatchedXYThrows) {
  Series s;
  s.label = "bad";
  s.x = {0.0, 1.0};
  s.y = {1.0};
  EXPECT_THROW((void)render_chart({s}, {}), Error);
}

TEST(AsciiChart, LogScalesAnnotated) {
  Series s;
  s.label = "a";
  for (int i = 0; i < 5; ++i) {
    s.x.push_back(std::pow(10.0, i));
    s.y.push_back(std::pow(10.0, -i));
  }
  const auto text =
      render_chart({s}, {.log_y = true, .log_x = true});
  EXPECT_NE(text.find("(log-y)"), std::string::npos);
  EXPECT_NE(text.find("(log-x)"), std::string::npos);
}

TEST(AsciiChart, ConstantSeriesRendersWithoutDivisionByZero) {
  Series s;
  s.label = "flat";
  s.x = {0.0, 1.0, 2.0};
  s.y = {5.0, 5.0, 5.0};
  EXPECT_NO_THROW((void)render_chart({s}, {}));
}

TEST(AsciiChart, TooSmallDimensionsThrow) {
  EXPECT_THROW((void)render_chart({ramp("a", 1.0)}, {.width = 4}), Error);
  EXPECT_THROW((void)render_chart({ramp("a", 1.0)}, {.height = 2}), Error);
}

}  // namespace
}  // namespace fedvr::bench
