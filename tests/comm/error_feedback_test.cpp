// The EF recursion: e_n <- (delta_n + e_n) - C(delta_n + e_n), per device.
#include "comm/error_feedback.h"

#include <gtest/gtest.h>

#include <vector>

#include "tensor/vecops.h"

namespace fedvr::comm {
namespace {

TEST(ErrorFeedback, StartsWithZeroResiduals) {
  const ErrorFeedback ef(3, 4);
  EXPECT_EQ(ef.num_devices(), 3u);
  EXPECT_EQ(ef.dim(), 4u);
  for (std::size_t n = 0; n < 3; ++n) {
    for (const double e : ef.residual(n)) EXPECT_EQ(e, 0.0);
  }
}

TEST(ErrorFeedback, RecursionAccumulatesWhatCompressionDropped) {
  ErrorFeedback ef(2, 3);
  // Round 1 on device 0: delta {1, 2, 3}, "compressor" keeps only the last
  // coordinate — the reconstruction is {0, 0, 3}.
  std::vector<double> delta{1.0, 2.0, 3.0};
  ef.compensate(0, delta);  // e = 0: no change
  EXPECT_EQ(delta, (std::vector<double>{1.0, 2.0, 3.0}));
  const std::vector<double> corrected = delta;
  const std::vector<double> reconstructed{0.0, 0.0, 3.0};
  ef.absorb(0, corrected, reconstructed);
  EXPECT_EQ(std::vector<double>(ef.residual(0).begin(), ef.residual(0).end()),
            (std::vector<double>{1.0, 2.0, 0.0}));

  // Round 2: the dropped mass rides along with the next delta.
  std::vector<double> next{0.5, 0.5, 0.5};
  ef.compensate(0, next);
  EXPECT_EQ(next, (std::vector<double>{1.5, 2.5, 0.5}));

  // Device 1's residual never moved: EF state is strictly per-device.
  for (const double e : ef.residual(1)) EXPECT_EQ(e, 0.0);
}

TEST(ErrorFeedback, ExactTransmissionLeavesNoResidual) {
  ErrorFeedback ef(1, 4);
  std::vector<double> delta{1.0, -2.0, 3.0, -4.0};
  ef.compensate(0, delta);
  ef.absorb(0, delta, delta);  // lossless channel: sent == corrected
  for (const double e : ef.residual(0)) EXPECT_EQ(e, 0.0);
}

TEST(ErrorFeedback, ResetZeroesEveryDevice) {
  ErrorFeedback ef(2, 2);
  const std::vector<double> corrected{1.0, 1.0};
  const std::vector<double> sent{0.0, 0.0};
  ef.absorb(0, corrected, sent);
  ef.absorb(1, corrected, sent);
  ef.reset();
  for (std::size_t n = 0; n < 2; ++n) {
    for (const double e : ef.residual(n)) EXPECT_EQ(e, 0.0);
  }
}

}  // namespace
}  // namespace fedvr::comm
