// Wire-format round-trip properties: float64 is exact, float32 and
// int8-block round-trip within documented error bounds, sparse sections
// scatter back into place, and from_bytes() rejects malformed frames.
#include "comm/message.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "util/error.h"
#include "util/rng.h"

namespace fedvr::comm {
namespace {

using fedvr::util::Error;

std::vector<double> random_values(std::size_t n, std::uint64_t seed,
                                  double scale = 1.0) {
  util::Rng rng(seed);
  std::vector<double> v(n);
  for (auto& x : v) x = rng.normal(0.0, scale);
  return v;
}

TEST(Message, DenseFloat64RoundTripIsExact) {
  // Property test over sizes straddling quantization-block boundaries.
  for (const std::size_t n : {1u, 7u, 32u, 33u, 100u, 257u}) {
    const auto v = random_values(n, 41 + n, 1e6);
    const Message msg = Message::encode_dense(v, DType::kFloat64);
    EXPECT_EQ(msg.dtype(), DType::kFloat64);
    EXPECT_FALSE(msg.sparse());
    EXPECT_EQ(msg.dim(), n);
    EXPECT_EQ(msg.count(), n);
    EXPECT_EQ(msg.wire_size(), kHeaderBytes + n * sizeof(double));
    std::vector<double> out(n);
    msg.decode(out);
    EXPECT_EQ(out, v);  // bit-exact, not just approximate
  }
}

TEST(Message, DenseFloat32RoundTripWithinSinglePrecision) {
  const std::size_t n = 100;
  const auto v = random_values(n, 7);
  const Message msg = Message::encode_dense(v, DType::kFloat32);
  EXPECT_EQ(msg.wire_size(), kHeaderBytes + n * sizeof(float));
  std::vector<double> out(n);
  msg.decode(out);
  for (std::size_t i = 0; i < n; ++i) {
    // float32 has a 24-bit significand: relative error <= 2^-24.
    EXPECT_NEAR(out[i], v[i], std::abs(v[i]) * 0x1.0p-23 + 1e-30);
    EXPECT_EQ(out[i], static_cast<double>(static_cast<float>(v[i])));
  }
}

TEST(Message, Int8BlockRoundTripWithinPerBlockBound) {
  for (const std::size_t n : {5u, 32u, 70u, 256u}) {
    const auto v = random_values(n, 11 + n, 3.0);
    const Message msg = Message::encode_dense(v, DType::kInt8Block);
    std::vector<double> out(n);
    msg.decode(out);
    for (std::size_t b = 0; b * kQuantBlock < n; ++b) {
      const std::size_t lo = b * kQuantBlock;
      const std::size_t hi = std::min(n, lo + kQuantBlock);
      double amax = 0.0;
      for (std::size_t i = lo; i < hi; ++i) {
        amax = std::max(amax, std::abs(v[i]));
      }
      // scale = amax/127, so rounding error is at most scale/2 = amax/254
      // per element (plus float32 scale storage slack).
      const double bound = amax / 254.0 + amax * 1e-6;
      for (std::size_t i = lo; i < hi; ++i) {
        EXPECT_NEAR(out[i], v[i], bound) << "n=" << n << " i=" << i;
      }
    }
  }
}

TEST(Message, Int8BlockZeroVectorIsExact) {
  const std::vector<double> v(40, 0.0);
  const Message msg = Message::encode_dense(v, DType::kInt8Block);
  std::vector<double> out(40, 1.0);
  msg.decode(out);
  EXPECT_EQ(out, v);
}

TEST(Message, SparseRoundTripScattersIntoPlace) {
  const std::size_t dim = 50;
  const std::vector<std::uint32_t> idx{3, 7, 20, 49};
  const std::vector<double> vals{1.5, -2.25, 0.125, 9.0};
  const Message msg = Message::encode_sparse(dim, idx, vals, DType::kFloat64);
  EXPECT_TRUE(msg.sparse());
  EXPECT_EQ(msg.dim(), dim);
  EXPECT_EQ(msg.count(), idx.size());
  EXPECT_EQ(msg.wire_size(), kHeaderBytes + idx.size() * sizeof(std::uint32_t) +
                                 idx.size() * sizeof(double));
  std::vector<double> out(dim, 777.0);  // decode must zero-fill the gaps
  msg.decode(out);
  std::vector<double> expect(dim, 0.0);
  for (std::size_t k = 0; k < idx.size(); ++k) expect[idx[k]] = vals[k];
  EXPECT_EQ(out, expect);
}

TEST(Message, EncodeNonzerosKeepsOnlySupport) {
  std::vector<double> delta(30, 0.0);
  delta[2] = 1.0;
  delta[17] = -4.5;
  const Message msg = Message::encode_nonzeros(delta, DType::kFloat64);
  EXPECT_TRUE(msg.sparse());
  EXPECT_EQ(msg.count(), 2u);
  std::vector<double> out(30);
  msg.decode(out);
  EXPECT_EQ(out, delta);
}

TEST(Message, FromBytesRoundTripsSerializedFrames) {
  const auto v = random_values(65, 3);
  const Message msg = Message::encode_dense(v, DType::kInt8Block);
  std::vector<std::uint8_t> wire(msg.bytes().begin(), msg.bytes().end());
  const Message back = Message::from_bytes(std::move(wire));
  EXPECT_EQ(back.dtype(), DType::kInt8Block);
  EXPECT_EQ(back.dim(), 65u);
  std::vector<double> a(65), b(65);
  msg.decode(a);
  back.decode(b);
  EXPECT_EQ(a, b);
}

TEST(Message, FromBytesRejectsMalformedFrames) {
  const auto v = random_values(16, 5);
  const Message msg = Message::encode_dense(v, DType::kFloat64);
  const std::vector<std::uint8_t> good(msg.bytes().begin(),
                                       msg.bytes().end());

  auto corrupt = [&](std::size_t at, std::uint8_t value) {
    std::vector<std::uint8_t> bad = good;
    bad[at] = value;
    return bad;
  };
  // Bad magic, bad version, bad dtype tag, bad flags.
  EXPECT_THROW((void)Message::from_bytes(corrupt(0, 'X')), Error);
  EXPECT_THROW((void)Message::from_bytes(corrupt(2, 99)), Error);
  EXPECT_THROW((void)Message::from_bytes(corrupt(3, 7)), Error);
  EXPECT_THROW((void)Message::from_bytes(corrupt(4, 2)), Error);
  // Truncated payload and truncated header.
  std::vector<std::uint8_t> short_payload(good.begin(), good.end() - 1);
  EXPECT_THROW((void)Message::from_bytes(std::move(short_payload)), Error);
  std::vector<std::uint8_t> tiny(good.begin(), good.begin() + 8);
  EXPECT_THROW((void)Message::from_bytes(std::move(tiny)), Error);
}

TEST(Message, FromBytesRejectsUnsortedSparseIndices) {
  const std::vector<std::uint32_t> idx{9, 3};  // descending: invalid
  const std::vector<double> vals{1.0, 2.0};
  // encode_sparse itself validates, so build a descending frame by
  // re-serializing a valid one with its index section swapped.
  const std::vector<std::uint32_t> ascending{3, 9};
  const Message valid =
      Message::encode_sparse(10, ascending, vals, DType::kFloat64);
  std::vector<std::uint8_t> wire(valid.bytes().begin(), valid.bytes().end());
  for (std::size_t b = 0; b < sizeof(std::uint32_t); ++b) {
    std::swap(wire[kHeaderBytes + b], wire[kHeaderBytes + 4 + b]);
  }
  EXPECT_THROW((void)Message::from_bytes(std::move(wire)), Error);
  EXPECT_THROW(
      (void)Message::encode_sparse(10, idx, vals, DType::kFloat64), Error);
}

TEST(Message, WireBytesFormulaMatchesSerializedSize) {
  for (const DType dtype :
       {DType::kFloat64, DType::kFloat32, DType::kInt8Block}) {
    for (const std::size_t n : {1u, 32u, 33u, 200u}) {
      const auto v = random_values(n, 17 + n);
      const Message dense = Message::encode_dense(v, dtype);
      EXPECT_EQ(dense.wire_size(), wire_bytes(dtype, n, n, false));
      EXPECT_EQ(dense.bytes().size(), dense.wire_size());
    }
  }
  // Sparse: 2 of 100 kept.
  const std::vector<std::uint32_t> idx{1, 50};
  const std::vector<double> vals{1.0, 2.0};
  const Message sp = Message::encode_sparse(100, idx, vals, DType::kFloat32);
  EXPECT_EQ(sp.wire_size(), wire_bytes(DType::kFloat32, 100, 2, true));
}

TEST(Message, ValidatesEncodeArguments) {
  EXPECT_THROW((void)Message::encode_dense({}, DType::kFloat64), Error);
  // Sparse index out of range and index/value length mismatch.
  const std::vector<std::uint32_t> out_of_range{4};
  const std::vector<std::uint32_t> two{0, 1};
  const std::vector<double> one{1.0};
  EXPECT_THROW(
      (void)Message::encode_sparse(4, out_of_range, one, DType::kFloat64),
      Error);
  EXPECT_THROW((void)Message::encode_sparse(4, two, one, DType::kFloat64),
               Error);
}

}  // namespace
}  // namespace fedvr::comm
