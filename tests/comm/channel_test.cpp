// The channel seam: uplink = EF-compensate -> compress -> encode -> decode,
// plus the byte-derived LinkModel split of the analytic d_com.
#include "comm/channel.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "util/error.h"
#include "util/rng.h"

namespace fedvr::comm {
namespace {

using fedvr::util::Error;

std::vector<double> ramp(std::size_t n) {
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<double>(i + 1) * (i % 2 == 0 ? 1.0 : -1.0);
  }
  return v;
}

TEST(ChannelOptions, ValidatesLatencyFraction) {
  ChannelOptions bad;
  bad.byte_timing = true;
  bad.latency_fraction = 1.5;
  EXPECT_THROW(bad.validate(), Error);
}

TEST(ChannelOptions, LabelNamesThePipeline) {
  ChannelOptions plain;
  EXPECT_EQ(plain.label(), "dense/f64");
  ChannelOptions lossy;
  lossy.compressor = std::make_shared<TopKCompressor>(0.25);
  lossy.error_feedback = true;
  lossy.uplink_dtype = DType::kInt8Block;
  EXPECT_EQ(lossy.label(), "top-k(0.25)+ef/q8");
}

TEST(Channel, PassthroughChannelDoesNotTouchValues) {
  const std::size_t dim = 16;
  Channel ch(ChannelOptions{}, 2, dim);
  std::vector<double> delta = ramp(dim);
  const std::vector<double> original = delta;
  util::Rng rng(1);
  const std::size_t bytes = ch.uplink(0, delta, rng);
  EXPECT_EQ(delta, original);  // bit-identical: pure accounting
  EXPECT_EQ(bytes, ch.uplink_wire_bytes());
  EXPECT_EQ(bytes, kHeaderBytes + dim * sizeof(double));
  EXPECT_EQ(ch.downlink_wire_bytes(), kHeaderBytes + dim * sizeof(double));
}

TEST(Channel, TopKUplinkReconstructionKeepsLargestAndTracksResidual) {
  const std::size_t dim = 8;
  ChannelOptions opts;
  opts.compressor = std::make_shared<TopKCompressor>(0.25);  // keep 2 of 8
  opts.error_feedback = true;
  Channel ch(opts, 1, dim);
  std::vector<double> delta = ramp(dim);  // largest |.|: coords 7, 6
  const std::vector<double> original = delta;
  util::Rng rng(1);
  const std::size_t bytes = ch.uplink(0, delta, rng);
  // Reconstruction: the two largest-magnitude coordinates, zeros elsewhere.
  for (std::size_t i = 0; i < dim; ++i) {
    EXPECT_EQ(delta[i], i >= 6 ? original[i] : 0.0) << i;
  }
  // Sparse f64 message: header + 2 indices + 2 values.
  EXPECT_EQ(bytes, kHeaderBytes + 2 * 4 + 2 * 8);
  EXPECT_EQ(bytes, ch.uplink_wire_bytes());
  // The residual holds exactly what compression dropped.
  const auto e = ch.error_feedback().residual(0);
  for (std::size_t i = 0; i < dim; ++i) {
    EXPECT_EQ(e[i], original[i] - delta[i]) << i;
  }
}

TEST(Channel, ErrorFeedbackReinjectsResidualNextRound) {
  const std::size_t dim = 4;
  ChannelOptions opts;
  opts.compressor = std::make_shared<TopKCompressor>(0.25);  // keep 1 of 4
  opts.error_feedback = true;
  Channel ch(opts, 1, dim);
  util::Rng rng(1);
  std::vector<double> r1{4.0, 1.0, 1.0, 1.0};
  (void)ch.uplink(0, r1, rng);  // sends coord 0; e = {0,1,1,1}
  // Next round the compensated delta is {0+0, 1+3, 1+1, 1+1}: coordinate 1
  // now dominates and gets through — mass is deferred, never lost.
  std::vector<double> r2{0.0, 3.0, 1.0, 1.0};
  (void)ch.uplink(0, r2, rng);
  EXPECT_EQ(r2, (std::vector<double>{0.0, 4.0, 0.0, 0.0}));
  const auto e = ch.error_feedback().residual(0);
  EXPECT_EQ(std::vector<double>(e.begin(), e.end()),
            (std::vector<double>{0.0, 0.0, 2.0, 2.0}));
}

TEST(Channel, QuantizedUplinkBoundsError) {
  const std::size_t dim = 64;
  ChannelOptions opts;
  opts.uplink_dtype = DType::kInt8Block;
  Channel ch(opts, 1, dim);
  std::vector<double> delta = ramp(dim);
  const std::vector<double> original = delta;
  util::Rng rng(1);
  const std::size_t bytes = ch.uplink(0, delta, rng);
  EXPECT_LT(bytes, kHeaderBytes + dim * sizeof(double));  // actually smaller
  double amax = 0.0;
  for (const double v : original) amax = std::max(amax, std::abs(v));
  for (std::size_t i = 0; i < dim; ++i) {
    EXPECT_NEAR(delta[i], original[i], amax / 254.0 + amax * 1e-6);
  }
}

TEST(LinkModel, DeriveCalibratesReferenceExchangeToDcom) {
  const fl::TimingModel timing{.d_com = 2.0, .d_cmp = 0.1};
  const std::size_t ref_bytes = 1000;
  const LinkModel link = LinkModel::derive(timing, ref_bytes, 0.25);
  EXPECT_NEAR(link.transfer_time(ref_bytes), 2.0, 1e-12);
  EXPECT_NEAR(link.latency, 0.5, 1e-12);
  // Half the bytes: latency floor + half the bandwidth term.
  EXPECT_NEAR(link.transfer_time(ref_bytes / 2), 0.5 + 0.75, 1e-12);
}

TEST(Channel, ByteTimingChargesDcomForDenseAndLessWhenCompressed) {
  const std::size_t dim = 1000;
  const fl::TimingModel timing{.d_com = 1.0, .d_cmp = 0.1};
  ChannelOptions dense;
  dense.byte_timing = true;
  Channel dense_ch(dense, 1, dim);
  // The dense f64 down+up exchange is the calibration reference: exactly
  // d_com.
  EXPECT_NEAR(dense_ch.link_round_time(timing), 1.0, 1e-12);

  ChannelOptions lossy = dense;
  lossy.compressor = std::make_shared<TopKCompressor>(0.1);
  lossy.uplink_dtype = DType::kInt8Block;
  Channel lossy_ch(lossy, 1, dim);
  const double t = lossy_ch.link_round_time(timing);
  EXPECT_LT(t, 1.0);                              // cheaper than dense
  EXPECT_GT(t, lossy.latency_fraction * 1.0 / 2); // latency floor remains
}

TEST(Channel, ValidatesDeltaSize) {
  Channel ch(ChannelOptions{}, 1, 8);
  std::vector<double> wrong(4, 1.0);
  util::Rng rng(1);
  EXPECT_THROW((void)ch.uplink(0, wrong, rng), Error);
}

}  // namespace
}  // namespace fedvr::comm
