// SolverWorkspace / WorkspacePool: the per-device buffer reuse behind the
// zero-allocation local epochs. The load-bearing property is that the
// workspace overload of LocalSolver::solve is *bit-identical* to the
// classic overload — same floating-point sequence, same RNG draws — no
// matter how dirty the workspace is from previous solves, and that warm
// solves stop touching the heap (pinned here as "the buffer storage stops
// moving").
#include "opt/workspace.h"

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "opt/local_solver.h"
#include "testing/quadratic_model.h"
#include "util/rng.h"

namespace fedvr::opt {
namespace {

using fedvr::testing::quadratic_dataset;
using fedvr::testing::QuadraticModel;
using fedvr::util::Rng;

std::shared_ptr<const nn::Model> quad_model(std::size_t dim) {
  return std::make_shared<QuadraticModel>(dim);
}

LocalSolverOptions base_options() {
  LocalSolverOptions o;
  o.estimator = Estimator::kSvrg;
  o.tau = 15;
  o.eta = 0.2;
  o.mu = 0.5;
  o.batch_size = 2;
  return o;
}

void expect_same_result(const LocalSolverResult& classic,
                        const LocalSolverResult& pooled,
                        const std::vector<double>& pooled_w,
                        const std::string& label) {
  ASSERT_EQ(classic.w.size(), pooled_w.size()) << label;
  for (std::size_t i = 0; i < classic.w.size(); ++i) {
    EXPECT_EQ(classic.w[i], pooled_w[i]) << label << " coord " << i;
  }
  EXPECT_TRUE(pooled.w.empty()) << label;  // iterate lives in w_out instead
  EXPECT_EQ(classic.anchor_grad_norm, pooled.anchor_grad_norm) << label;
  EXPECT_EQ(classic.anchor_loss, pooled.anchor_loss) << label;
  EXPECT_EQ(classic.surrogate_grad_norm, pooled.surrogate_grad_norm) << label;
  EXPECT_EQ(classic.measured_theta, pooled.measured_theta) << label;
  EXPECT_EQ(classic.sample_gradient_evals, pooled.sample_gradient_evals)
      << label;
  EXPECT_EQ(classic.iterations_run, pooled.iterations_run) << label;
}

TEST(WorkspacePool, SequentialLeasesReuseOneWorkspace) {
  WorkspacePool pool;
  EXPECT_EQ(pool.size(), 0U);
  SolverWorkspace* first = nullptr;
  {
    const WorkspacePool::Lease lease(pool);
    first = &*lease;
    (*lease).w_curr.resize(64);
  }
  for (int i = 0; i < 5; ++i) {
    const WorkspacePool::Lease lease(pool);
    EXPECT_EQ(&*lease, first);
    // The warmed buffer keeps its capacity across leases.
    EXPECT_GE(lease->w_curr.capacity(), 64U);
  }
  EXPECT_EQ(pool.size(), 1U);
}

TEST(WorkspacePool, ConcurrentLeasesGetDistinctWorkspaces) {
  WorkspacePool pool;
  {
    const WorkspacePool::Lease a(pool);
    const WorkspacePool::Lease b(pool);
    EXPECT_NE(&*a, &*b);
    EXPECT_EQ(pool.size(), 2U);
  }
  // Both returned: the pool grows to peak concurrency, never beyond.
  {
    const WorkspacePool::Lease a(pool);
    const WorkspacePool::Lease b(pool);
    (void)a;
    (void)b;
  }
  EXPECT_EQ(pool.size(), 2U);
}

// Every estimator / selection / sampling combination the trainer can
// configure must produce the identical iterate and identical RNG
// consumption through the workspace overload.
TEST(SolverWorkspaceSolve, MatchesClassicSolveBitwise) {
  const std::size_t dim = 5;
  const auto model = quad_model(dim);
  const auto ds = quadratic_dataset(40, dim, 2.0, 1.0, 3);
  const std::vector<double> anchor(dim, 0.25);

  SolverWorkspace ws;  // deliberately shared (and dirtied) across configs
  std::vector<double> w_out;
  std::uint64_t seed = 100;
  for (auto estimator : {Estimator::kSgd, Estimator::kSvrg, Estimator::kSarah,
                         Estimator::kFullGradient}) {
    for (auto selection :
         {IterateSelection::kLast, IterateSelection::kUniformRandom}) {
      for (auto sampling :
           {Sampling::kWithReplacement, Sampling::kShuffledEpochs}) {
        auto opts = base_options();
        opts.estimator = estimator;
        opts.selection = selection;
        opts.sampling = sampling;
        opts.compute_diagnostics = true;
        const LocalSolver solver(model, opts);
        const std::string label =
            "estimator=" + std::to_string(static_cast<int>(estimator)) +
            " selection=" + std::to_string(static_cast<int>(selection)) +
            " sampling=" + std::to_string(static_cast<int>(sampling));
        ++seed;
        Rng rng_classic(seed);
        Rng rng_ws(seed);
        const auto classic = solver.solve(ds, anchor, rng_classic);
        const auto pooled = solver.solve(ds, anchor, rng_ws, ws, w_out);
        expect_same_result(classic, pooled, w_out, label);
      }
    }
  }
}

// The adaptive-theta early stop can fire before the uniform-random t' is
// reached, in which case the classic path returns an *empty* snapshot
// branchlessly resolved to w_curr. A stale snapshot from a previous solve
// must not resurrect the other branch.
TEST(SolverWorkspaceSolve, EarlyThetaStopWithDirtySnapshotMatchesClassic) {
  const std::size_t dim = 4;
  const auto model = quad_model(dim);
  const auto ds = quadratic_dataset(30, dim, 1.0, 1.0, 7);
  const std::vector<double> anchor(dim, 1.0);

  SolverWorkspace ws;
  std::vector<double> w_out;
  // First solve: kUniformRandom with no early stop populates ws.snapshot.
  {
    auto opts = base_options();
    opts.selection = IterateSelection::kUniformRandom;
    const LocalSolver solver(model, opts);
    Rng rng(41);
    (void)solver.solve(ds, anchor, rng, ws, w_out);
  }
  // Second solve: a theta threshold loose enough to stop at the first
  // check, before most t' draws.
  auto opts = base_options();
  opts.selection = IterateSelection::kUniformRandom;
  opts.adaptive_theta = 0.99;
  opts.theta_check_every = 1;
  const LocalSolver solver(model, opts);
  Rng rng_classic(43);
  Rng rng_ws(43);
  const auto classic = solver.solve(ds, anchor, rng_classic);
  const auto pooled = solver.solve(ds, anchor, rng_ws, ws, w_out);
  EXPECT_LT(pooled.iterations_run, base_options().tau);  // the stop fired
  expect_same_result(classic, pooled, w_out, "early-theta");
}

// One workspace serving solvers of different dimensionality: buffers must
// resize correctly and the results stay identical to fresh-workspace runs.
TEST(SolverWorkspaceSolve, SharedWorkspaceAcrossDimensionsStaysIdentical) {
  SolverWorkspace shared;
  std::vector<double> w_out;
  for (std::size_t dim : {6U, 3U, 6U}) {
    const auto model = quad_model(dim);
    const auto ds = quadratic_dataset(24, dim, 1.5, 1.0, dim);
    const std::vector<double> anchor(dim, 0.5);
    const LocalSolver solver(model, base_options());
    Rng rng_fresh(dim);
    Rng rng_shared(dim);
    SolverWorkspace fresh;
    std::vector<double> w_fresh;
    (void)solver.solve(ds, anchor, rng_fresh, fresh, w_fresh);
    (void)solver.solve(ds, anchor, rng_shared, shared, w_out);
    ASSERT_EQ(w_fresh.size(), dim);
    for (std::size_t i = 0; i < dim; ++i) {
      EXPECT_EQ(w_fresh[i], w_out[i]) << "dim " << dim << " coord " << i;
    }
  }
}

// The zero-allocation claim, pinned as an observable: once warm, repeated
// solves stop moving buffer storage. solve() swaps the chosen iterate into
// w_out (and w_prev/w_curr swap internally), so individual members trade
// pointers — but the *multiset* of backing allocations must be closed.
TEST(SolverWorkspaceSolve, WarmSolvesReuseBufferStorage) {
  const std::size_t dim = 5;
  const auto model = quad_model(dim);
  const auto ds = quadratic_dataset(40, dim, 2.0, 1.0, 3);
  const std::vector<double> anchor(dim, 0.25);
  auto opts = base_options();
  opts.selection = IterateSelection::kUniformRandom;  // exercises snapshot
  opts.sampling = Sampling::kShuffledEpochs;          // exercises permutation
  opts.compute_diagnostics = true;                    // exercises grad_j
  const LocalSolver solver(model, opts);

  SolverWorkspace ws;
  std::vector<double> w_out;
  Rng rng(17);
  for (int warm = 0; warm < 2; ++warm) {
    (void)solver.solve(ds, anchor, rng, ws, w_out);
  }
  const auto storage = [&] {
    return std::multiset<const void*>{
        ws.w_prev.data(),   ws.w_curr.data(),   ws.step.data(),
        ws.v.data(),        ws.grad_curr.data(), ws.grad_ref.data(),
        ws.v0.data(),       ws.anchor_w.data(), ws.snapshot.data(),
        ws.grad_j.data(),   ws.batch.data(),    ws.full_idx.data(),
        ws.permutation.data(), w_out.data()};
  };
  const auto warm_storage = storage();
  for (int round = 0; round < 10; ++round) {
    (void)solver.solve(ds, anchor, rng, ws, w_out);
    EXPECT_EQ(storage(), warm_storage) << "round " << round;
  }
}

}  // namespace
}  // namespace fedvr::opt
