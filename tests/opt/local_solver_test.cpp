#include "opt/local_solver.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>

#include "check/check.h"
#include "nn/models.h"
#include "tensor/vecops.h"
#include "testing/quadratic_model.h"
#include "util/error.h"

namespace fedvr::opt {
namespace {

using fedvr::testing::dataset_mean;
using fedvr::testing::quadratic_dataset;
using fedvr::testing::QuadraticModel;
using fedvr::util::Error;
using fedvr::util::Rng;

std::shared_ptr<const nn::Model> quad_model(std::size_t dim) {
  return std::make_shared<QuadraticModel>(dim);
}

LocalSolverOptions base_options() {
  LocalSolverOptions o;
  o.estimator = Estimator::kSvrg;
  o.tau = 15;
  o.eta = 0.2;
  o.mu = 0.0;
  o.batch_size = 2;
  return o;
}

TEST(LocalSolver, RejectsInvalidOptions) {
  auto model = quad_model(3);
  auto bad_eta = base_options();
  bad_eta.eta = 0.0;
  EXPECT_THROW(LocalSolver(model, bad_eta), Error);
  auto bad_mu = base_options();
  bad_mu.mu = -1.0;
  EXPECT_THROW(LocalSolver(model, bad_mu), Error);
  auto bad_batch = base_options();
  bad_batch.batch_size = 0;
  EXPECT_THROW(LocalSolver(model, bad_batch), Error);
  EXPECT_THROW(LocalSolver(nullptr, base_options()), Error);
}

TEST(LocalSolver, RejectsMismatchedAnchorAndEmptyData) {
  auto model = quad_model(3);
  const LocalSolver solver(model, base_options());
  const auto ds = quadratic_dataset(10, 3, 0.0, 1.0, 1);
  Rng rng(1);
  std::vector<double> wrong_anchor(4, 0.0);
  if (check::active()) {
    EXPECT_THROW((void)solver.solve(ds, wrong_anchor, rng), Error);
  }
  const data::Dataset empty(tensor::Shape({3}), 0, 2);
  std::vector<double> anchor(3, 0.0);
  EXPECT_THROW((void)solver.solve(empty, anchor, rng), Error);
}

TEST(LocalSolver, DecreasesTheSurrogateObjective) {
  auto model = quad_model(5);
  const auto ds = quadratic_dataset(40, 5, 2.0, 1.0, 3);
  auto opts = base_options();
  opts.mu = 0.5;
  opts.compute_diagnostics = true;
  const LocalSolver solver(model, opts);
  const std::vector<double> anchor(5, -1.0);
  Rng rng(7);
  const auto result = solver.solve(ds, anchor, rng);
  // J_n(result) < J_n(anchor): compare losses plus prox terms.
  const double j_anchor = result.anchor_loss;  // prox term is 0 at anchor
  const double f_result = model->full_loss(result.w, ds);
  const double prox_term =
      0.5 * opts.mu * tensor::squared_distance(result.w, anchor);
  EXPECT_LT(f_result + prox_term, j_anchor);
}

TEST(LocalSolver, DeterministicGivenSameRngFork) {
  auto model = quad_model(4);
  const auto ds = quadratic_dataset(30, 4, 0.0, 2.0, 5);
  const LocalSolver solver(model, base_options());
  const std::vector<double> anchor(4, 3.0);
  Rng r1 = util::fork(9, 1, 1, 0);
  Rng r2 = util::fork(9, 1, 1, 0);
  const auto a = solver.solve(ds, anchor, r1);
  const auto b = solver.solve(ds, anchor, r2);
  EXPECT_EQ(a.w, b.w);
  EXPECT_EQ(a.sample_gradient_evals, b.sample_gradient_evals);
}

// ---- Estimator exactness on quadratics: SVRG and SARAH reduce to exact
// full gradients, so all three trajectories coincide (see
// testing/quadratic_model.h). The definitive check that eq. (8a)/(8b) are
// implemented correctly. ----

TEST(LocalSolver, SvrgAndSarahMatchFullGradientOnQuadratic) {
  auto model = quad_model(6);
  const auto ds = quadratic_dataset(25, 6, 1.0, 2.0, 11);
  const std::vector<double> anchor(6, -2.0);

  auto make_result = [&](Estimator e) {
    auto opts = base_options();
    opts.estimator = e;
    opts.tau = 10;
    opts.mu = 0.3;
    opts.batch_size = 1;
    const LocalSolver solver(model, opts);
    Rng rng(21);
    return solver.solve(ds, anchor, rng);
  };
  const auto gd = make_result(Estimator::kFullGradient);
  const auto svrg = make_result(Estimator::kSvrg);
  const auto sarah = make_result(Estimator::kSarah);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_NEAR(svrg.w[i], gd.w[i], 1e-10);
    EXPECT_NEAR(sarah.w[i], gd.w[i], 1e-10);
  }
}

TEST(LocalSolver, SgdDiffersFromFullGradientOnQuadratic) {
  // Sanity check that the previous test is meaningful: plain SGD does NOT
  // collapse to GD on the same data.
  auto model = quad_model(6);
  const auto ds = quadratic_dataset(25, 6, 1.0, 2.0, 11);
  const std::vector<double> anchor(6, -2.0);
  auto opts = base_options();
  opts.batch_size = 1;
  opts.tau = 10;
  opts.estimator = Estimator::kSgd;
  const LocalSolver sgd_solver(model, opts);
  opts.estimator = Estimator::kFullGradient;
  const LocalSolver gd_solver(model, opts);
  Rng r1(21), r2(21);
  const auto sgd = sgd_solver.solve(ds, anchor, r1);
  const auto gd = gd_solver.solve(ds, anchor, r2);
  EXPECT_GT(tensor::squared_distance(sgd.w, gd.w), 1e-8);
}

TEST(LocalSolver, ProxGradientTrajectoryMatchesClosedForm) {
  // mu = 0, full gradient on the quadratic: w_{t+1} = w_t - eta (w_t - m),
  // so w_t = m + (1-eta)^t (w_0 - m).
  const std::size_t dim = 3;
  auto model = quad_model(dim);
  const auto ds = quadratic_dataset(10, dim, 0.5, 1.0, 13);
  const auto mean = dataset_mean(ds);
  LocalSolverOptions opts;
  opts.estimator = Estimator::kFullGradient;
  opts.tau = 8;
  opts.eta = 0.25;
  opts.mu = 0.0;
  const LocalSolver solver(model, opts);
  const std::vector<double> anchor(dim, 4.0);
  Rng rng(1);
  const auto result = solver.solve(ds, anchor, rng);
  const double shrink = std::pow(1.0 - opts.eta, opts.tau + 1.0);
  for (std::size_t i = 0; i < dim; ++i) {
    EXPECT_NEAR(result.w[i], mean[i] + shrink * (anchor[i] - mean[i]), 1e-10);
  }
}

TEST(LocalSolver, LargeMuPinsIterateToAnchor) {
  auto model = quad_model(4);
  const auto ds = quadratic_dataset(20, 4, 5.0, 1.0, 17);
  auto opts = base_options();
  opts.mu = 1e8;
  opts.tau = 10;
  const LocalSolver solver(model, opts);
  const std::vector<double> anchor(4, -1.0);
  Rng rng(3);
  const auto result = solver.solve(ds, anchor, rng);
  EXPECT_LT(std::sqrt(tensor::squared_distance(result.w, anchor)), 1e-3);
}

TEST(LocalSolver, AnchorGradNormMatchesAnalytic) {
  auto model = quad_model(3);
  const auto ds = quadratic_dataset(15, 3, 1.0, 0.5, 19);
  const auto mean = dataset_mean(ds);
  const LocalSolver solver(model, base_options());
  const std::vector<double> anchor = {3.0, -2.0, 0.0};
  Rng rng(5);
  const auto result = solver.solve(ds, anchor, rng);
  EXPECT_NEAR(result.anchor_grad_norm,
              std::sqrt(tensor::squared_distance(anchor, mean)), 1e-10);
}

TEST(LocalSolver, GradientEvaluationAccountingPerEstimator) {
  auto model = quad_model(3);
  const std::size_t n = 20;
  const auto ds = quadratic_dataset(n, 3, 0.0, 1.0, 23);
  const std::vector<double> anchor(3, 1.0);
  const std::size_t tau = 7, B = 4;
  auto count = [&](Estimator e) {
    LocalSolverOptions o;
    o.estimator = e;
    o.tau = tau;
    o.eta = 0.1;
    o.mu = 0.1;
    o.batch_size = B;
    const LocalSolver solver(model, o);
    Rng rng(29);
    return solver.solve(ds, anchor, rng).sample_gradient_evals;
  };
  EXPECT_EQ(count(Estimator::kSgd), n + tau * B);
  EXPECT_EQ(count(Estimator::kSvrg), n + 2 * tau * B);
  EXPECT_EQ(count(Estimator::kSarah), n + 2 * tau * B);
  EXPECT_EQ(count(Estimator::kFullGradient), n + tau * n);
}

TEST(LocalSolver, BatchLargerThanDatasetUsesFullBatch) {
  auto model = quad_model(3);
  const auto ds = quadratic_dataset(5, 3, 0.0, 1.0, 31);
  LocalSolverOptions o = base_options();
  o.batch_size = 100;  // > dataset
  o.estimator = Estimator::kSgd;
  o.tau = 3;
  const LocalSolver sgd(model, o);
  o.estimator = Estimator::kFullGradient;
  const LocalSolver gd(model, o);
  const std::vector<double> anchor(3, 2.0);
  Rng r1(1), r2(1);
  const auto a = sgd.solve(ds, anchor, r1);
  const auto b = gd.solve(ds, anchor, r2);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(a.w[i], b.w[i], 1e-12);
}

TEST(LocalSolver, DiagnosticsMeasureThetaCriterion) {
  auto model = quad_model(4);
  const auto ds = quadratic_dataset(30, 4, 1.0, 1.0, 37);
  auto opts = base_options();
  opts.estimator = Estimator::kFullGradient;
  opts.mu = 0.2;
  opts.tau = 40;
  opts.eta = 0.3;
  opts.compute_diagnostics = true;
  const LocalSolver solver(model, opts);
  const std::vector<double> anchor(4, 3.0);
  Rng rng(41);
  const auto result = solver.solve(ds, anchor, rng);
  EXPECT_GT(result.surrogate_grad_norm, 0.0);
  // Long, well-conditioned run: the theta criterion (eq. 11) is satisfied
  // with a tight theta.
  EXPECT_LT(result.measured_theta, 0.1);
  EXPECT_NEAR(result.measured_theta,
              result.surrogate_grad_norm / result.anchor_grad_norm, 1e-12);
}

TEST(LocalSolver, DiagnosticsOffLeavesFieldsZero) {
  auto model = quad_model(3);
  const auto ds = quadratic_dataset(10, 3, 0.0, 1.0, 43);
  const LocalSolver solver(model, base_options());
  const std::vector<double> anchor(3, 0.5);
  Rng rng(47);
  const auto result = solver.solve(ds, anchor, rng);
  EXPECT_EQ(result.surrogate_grad_norm, 0.0);
  EXPECT_EQ(result.measured_theta, 0.0);
}

TEST(LocalSolver, UniformRandomSelectionIsDeterministicAndValid) {
  auto model = quad_model(3);
  const auto ds = quadratic_dataset(12, 3, 0.0, 1.0, 53);
  auto opts = base_options();
  opts.selection = IterateSelection::kUniformRandom;
  opts.tau = 5;
  const LocalSolver solver(model, opts);
  const std::vector<double> anchor(3, 2.0);
  Rng r1(3), r2(3);
  const auto a = solver.solve(ds, anchor, r1);
  const auto b = solver.solve(ds, anchor, r2);
  EXPECT_EQ(a.w, b.w);
}

TEST(LocalSolver, UniformRandomCanReturnTheAnchor) {
  // With tau = 0 the only selectable iterate is t' = 0, i.e. the anchor.
  auto model = quad_model(3);
  const auto ds = quadratic_dataset(12, 3, 0.0, 1.0, 59);
  auto opts = base_options();
  opts.selection = IterateSelection::kUniformRandom;
  opts.tau = 0;
  const LocalSolver solver(model, opts);
  const std::vector<double> anchor = {1.0, 2.0, 3.0};
  Rng rng(5);
  const auto result = solver.solve(ds, anchor, rng);
  EXPECT_EQ(result.w, anchor);
}

TEST(LocalSolver, TauZeroWithLastSelectionTakesOneProxStep) {
  // tau = 0, kLast: returns w^(1) = prox(anchor - eta grad F(anchor)).
  const std::size_t dim = 3;
  auto model = quad_model(dim);
  const auto ds = quadratic_dataset(10, dim, 0.0, 1.0, 61);
  const auto mean = dataset_mean(ds);
  LocalSolverOptions opts;
  opts.estimator = Estimator::kSvrg;
  opts.tau = 0;
  opts.eta = 0.5;
  opts.mu = 0.0;
  const LocalSolver solver(model, opts);
  const std::vector<double> anchor(dim, 2.0);
  Rng rng(67);
  const auto result = solver.solve(ds, anchor, rng);
  for (std::size_t i = 0; i < dim; ++i) {
    EXPECT_NEAR(result.w[i], anchor[i] - 0.5 * (anchor[i] - mean[i]), 1e-10);
  }
}

TEST(LocalSolver, ShuffledEpochSamplingCoversDatasetOncePerEpoch) {
  // With batch 1 and tau == n, shuffled-epoch sampling touches every index
  // exactly once. Observe the batches via per-sample gradients on the
  // quadratic (v encodes which x_i was sampled is hard; instead instrument
  // with the observer and dataset size 1 batches — use a counting model).
  auto model = quad_model(2);
  const std::size_t n = 8;
  const auto ds = quadratic_dataset(n, 2, 0.0, 1.0, 83);
  auto opts = base_options();
  opts.estimator = Estimator::kSgd;
  opts.sampling = Sampling::kShuffledEpochs;
  opts.batch_size = 1;
  opts.tau = n;
  opts.mu = 0.0;
  opts.eta = 1e-12;  // freeze the iterate so v_t = w0 - x_{i_t} (+eps)
  // v_t = w_t - x_it with w_t ~ anchor: recover i_t by nearest sample.
  const std::vector<double> anchor(2, 0.0);
  std::vector<int> hits(n, 0);
  opts.observer = [&](std::size_t, std::span<const double> v,
                      std::span<const double> w) {
    double best = 1e300;
    std::size_t best_i = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const auto x = ds.sample(i);
      double d2 = 0.0;
      for (std::size_t j = 0; j < 2; ++j) {
        const double diff = (w[j] - x[j]) - v[j];
        d2 += diff * diff;
      }
      if (d2 < best) {
        best = d2;
        best_i = i;
      }
    }
    hits[best_i]++;
  };
  const LocalSolver solver(model, opts);
  Rng rng(3);
  (void)solver.solve(ds, anchor, rng);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(hits[i], 1) << "sample " << i;
  }
}

TEST(LocalSolver, WithReplacementSamplingRepeatsIndices) {
  // Over tau = 4n draws of batch 1, with-replacement almost surely repeats
  // some index within the first epoch-length window; shuffled epochs never
  // do. Compare the two hit distributions after one epoch length.
  auto model = quad_model(2);
  const std::size_t n = 16;
  const auto ds = quadratic_dataset(n, 2, 0.0, 1.0, 89);
  auto run_hits = [&](Sampling sampling) {
    auto opts = base_options();
    opts.estimator = Estimator::kSgd;
    opts.sampling = sampling;
    opts.batch_size = 1;
    opts.tau = n;
    opts.mu = 0.0;
    opts.eta = 1e-12;
    std::vector<int> hits(n, 0);
    opts.observer = [&](std::size_t, std::span<const double> v,
                        std::span<const double> w) {
      double best = 1e300;
      std::size_t best_i = 0;
      for (std::size_t i = 0; i < n; ++i) {
        const auto x = ds.sample(i);
        double d2 = 0.0;
        for (std::size_t j = 0; j < 2; ++j) {
          const double diff = (w[j] - x[j]) - v[j];
          d2 += diff * diff;
        }
        if (d2 < best) {
          best = d2;
          best_i = i;
        }
      }
      hits[best_i]++;
    };
    const LocalSolver solver(model, opts);
    const std::vector<double> anchor(2, 0.0);
    Rng rng(5);
    (void)solver.solve(ds, anchor, rng);
    return hits;
  };
  const auto epoch_hits = run_hits(Sampling::kShuffledEpochs);
  const auto iid_hits = run_hits(Sampling::kWithReplacement);
  EXPECT_EQ(*std::max_element(epoch_hits.begin(), epoch_hits.end()), 1);
  EXPECT_GT(*std::max_element(iid_hits.begin(), iid_hits.end()), 1);
}

TEST(LocalSolver, DiminishingScheduleMatchesManualTrajectory) {
  // Full-gradient quadratic with mu = 0:
  //   w_{t+1} = w_t - eta_t (w_t - m),  eta_t = eta/(1 + decay*t).
  const std::size_t dim = 2;
  auto model = quad_model(dim);
  const auto ds = quadratic_dataset(6, dim, 1.0, 0.5, 97);
  const auto mean = dataset_mean(ds);
  LocalSolverOptions opts;
  opts.estimator = Estimator::kFullGradient;
  opts.tau = 5;
  opts.eta = 0.4;
  opts.mu = 0.0;
  opts.schedule = StepSchedule::kDiminishing;
  opts.schedule_decay = 0.5;
  const LocalSolver solver(model, opts);
  const std::vector<double> anchor(dim, 3.0);
  Rng rng(7);
  const auto result = solver.solve(ds, anchor, rng);
  double shrink = 1.0;
  for (std::size_t t = 0; t <= opts.tau; ++t) {
    shrink *= 1.0 - 0.4 / (1.0 + 0.5 * static_cast<double>(t));
  }
  for (std::size_t i = 0; i < dim; ++i) {
    EXPECT_NEAR(result.w[i], mean[i] + shrink * (anchor[i] - mean[i]),
                1e-10);
  }
}

TEST(LocalSolver, NegativeScheduleDecayThrows) {
  auto model = quad_model(2);
  auto opts = base_options();
  opts.schedule_decay = -0.1;
  EXPECT_THROW(LocalSolver(model, opts), Error);
}

TEST(LocalSolver, AdaptiveThetaStopsEarlyOnEasyProblem) {
  // Full-gradient descent on a well-conditioned quadratic satisfies the
  // eq. 11 criterion long before a generous tau budget runs out.
  auto model = quad_model(3);
  const auto ds = quadratic_dataset(20, 3, 1.0, 0.2, 101);
  LocalSolverOptions opts;
  opts.estimator = Estimator::kFullGradient;
  opts.tau = 500;
  opts.eta = 0.3;
  opts.mu = 0.1;
  opts.adaptive_theta = 0.3;
  opts.theta_check_every = 5;
  opts.compute_diagnostics = true;
  const LocalSolver solver(model, opts);
  const std::vector<double> anchor(3, 4.0);
  Rng rng(3);
  const auto result = solver.solve(ds, anchor, rng);
  EXPECT_LT(result.iterations_run, 100u);
  // The returned iterate really satisfies the criterion.
  EXPECT_LE(result.measured_theta, opts.adaptive_theta);
}

TEST(LocalSolver, AdaptiveThetaDisabledRunsFullBudget) {
  auto model = quad_model(3);
  const auto ds = quadratic_dataset(10, 3, 0.0, 1.0, 103);
  auto opts = base_options();
  opts.tau = 12;
  opts.adaptive_theta = 0.0;
  const LocalSolver solver(model, opts);
  const std::vector<double> anchor(3, 1.0);
  Rng rng(5);
  EXPECT_EQ(solver.solve(ds, anchor, rng).iterations_run, 12u);
}

TEST(LocalSolver, AdaptiveThetaChecksCostFullGradients) {
  // Cost accounting must include the periodic criterion evaluations.
  auto model = quad_model(2);
  const std::size_t n = 10;
  const auto ds = quadratic_dataset(n, 2, 0.0, 1.0, 107);
  LocalSolverOptions opts;
  opts.estimator = Estimator::kFullGradient;
  opts.tau = 6;
  opts.eta = 1e-6;  // too small to ever satisfy the criterion
  opts.mu = 0.0;
  opts.adaptive_theta = 0.001;
  opts.theta_check_every = 2;
  const LocalSolver solver(model, opts);
  const std::vector<double> anchor(2, 5.0);
  Rng rng(7);
  const auto result = solver.solve(ds, anchor, rng);
  // anchor grad (n) + 6 inner full grads (6n) + 3 criterion checks (3n).
  EXPECT_EQ(result.sample_gradient_evals, n + 6 * n + 3 * n);
  EXPECT_EQ(result.iterations_run, 6u);
}

TEST(LocalSolver, AdaptiveThetaValidation) {
  auto model = quad_model(2);
  auto opts = base_options();
  opts.adaptive_theta = 1.0;
  EXPECT_THROW(LocalSolver(model, opts), Error);
  opts = base_options();
  opts.theta_check_every = 0;
  EXPECT_THROW(LocalSolver(model, opts), Error);
}

TEST(LocalSolver, ObserverSeesEveryInnerIteration) {
  auto model = quad_model(3);
  const auto ds = quadratic_dataset(10, 3, 0.0, 1.0, 73);
  auto opts = base_options();
  opts.tau = 6;
  std::vector<std::size_t> seen;
  opts.observer = [&seen](std::size_t t, std::span<const double> v,
                          std::span<const double> w) {
    EXPECT_EQ(v.size(), 3u);
    EXPECT_EQ(w.size(), 3u);
    seen.push_back(t);
  };
  const LocalSolver solver(model, opts);
  const std::vector<double> anchor(3, 1.0);
  Rng rng(7);
  (void)solver.solve(ds, anchor, rng);
  ASSERT_EQ(seen.size(), 6u);
  for (std::size_t t = 1; t <= 6; ++t) EXPECT_EQ(seen[t - 1], t);
}

TEST(LocalSolver, ObserverReportsExactGradientOnQuadratic) {
  // On quadratics the SVRG direction equals the exact full gradient
  // w_t - mean; the observer lets us verify eq. (8b) iterate by iterate.
  auto model = quad_model(2);
  const auto ds = quadratic_dataset(8, 2, 0.5, 1.0, 79);
  const auto mean = dataset_mean(ds);
  auto opts = base_options();
  opts.estimator = Estimator::kSvrg;
  opts.tau = 5;
  opts.mu = 0.0;
  opts.batch_size = 1;
  opts.observer = [&mean](std::size_t, std::span<const double> v,
                          std::span<const double> w) {
    for (std::size_t i = 0; i < v.size(); ++i) {
      EXPECT_NEAR(v[i], w[i] - mean[i], 1e-12);
    }
  };
  const LocalSolver solver(model, opts);
  const std::vector<double> anchor(2, -1.0);
  Rng rng(11);
  (void)solver.solve(ds, anchor, rng);
}

TEST(LocalSolver, WorksWithRealLogisticRegression) {
  // Integration: the solver must drive a real nn model, not just the test
  // quadratic.
  auto model = nn::make_logistic_regression(8, 3);
  data::Dataset ds(tensor::Shape({8}), 30, 3);
  Rng rng(71);
  for (std::size_t i = 0; i < ds.size(); ++i) {
    for (auto& v : ds.mutable_sample(i)) v = rng.normal();
    ds.set_label(i, static_cast<int>(rng.below(3)));
  }
  auto w0 = model->initial_parameters(rng);
  LocalSolverOptions opts;
  opts.estimator = Estimator::kSarah;
  opts.tau = 30;
  opts.eta = 0.2;
  opts.mu = 0.1;
  opts.batch_size = 4;
  const LocalSolver solver(model, opts);
  const double loss_before = model->full_loss(w0, ds);
  const auto result = solver.solve(ds, w0, rng);
  EXPECT_LT(model->full_loss(result.w, ds), loss_before);
}

}  // namespace
}  // namespace fedvr::opt
