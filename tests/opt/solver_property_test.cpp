// Parameterized property sweep: invariants that must hold for EVERY
// (estimator, sampling, selection, mu) combination the solver supports.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "opt/local_solver.h"
#include "tensor/vecops.h"
#include "testing/quadratic_model.h"

namespace fedvr::opt {
namespace {

using fedvr::testing::quadratic_dataset;
using fedvr::testing::QuadraticModel;
using fedvr::util::Rng;

using Combo = std::tuple<Estimator, Sampling, IterateSelection, double>;

class SolverProperties : public ::testing::TestWithParam<Combo> {
 protected:
  LocalSolverOptions options() const {
    const auto [estimator, sampling, selection, mu] = GetParam();
    LocalSolverOptions o;
    o.estimator = estimator;
    o.sampling = sampling;
    o.selection = selection;
    o.mu = mu;
    o.tau = 25;
    o.eta = 0.15;
    o.batch_size = 3;
    return o;
  }
};

TEST_P(SolverProperties, IsDeterministicInTheRngStream) {
  auto model = std::make_shared<QuadraticModel>(4);
  const auto ds = quadratic_dataset(30, 4, 1.0, 1.5, 211);
  const LocalSolver solver(model, options());
  const std::vector<double> anchor(4, -1.0);
  Rng r1 = util::fork(31, 2, 5, 0);
  Rng r2 = util::fork(31, 2, 5, 0);
  EXPECT_EQ(solver.solve(ds, anchor, r1).w, solver.solve(ds, anchor, r2).w);
}

TEST_P(SolverProperties, DecreasesTheSurrogateInExpectation) {
  // J_n(returned) < J_n(anchor) for this well-conditioned problem across
  // every configuration (kUniformRandom may return an early iterate, so
  // compare against the anchor, which every configuration must beat —
  // except the measure-zero case of returning t' = 0 itself, excluded by
  // the seed choice).
  auto model = std::make_shared<QuadraticModel>(4);
  const auto ds = quadratic_dataset(30, 4, 1.0, 1.0, 223);
  const auto opts = options();
  const LocalSolver solver(model, opts);
  const std::vector<double> anchor(4, 3.0);
  Rng rng = util::fork(37, 1, 1, 0);
  const auto result = solver.solve(ds, anchor, rng);
  const double j_anchor = result.anchor_loss;
  const double j_result =
      model->full_loss(result.w, ds) +
      0.5 * opts.mu * tensor::squared_distance(result.w, anchor);
  if (result.w == anchor) {
    GTEST_SKIP() << "uniform selection returned the anchor iterate";
  }
  EXPECT_LT(j_result, j_anchor);
}

TEST_P(SolverProperties, ResultIsFiniteAndCorrectlySized) {
  auto model = std::make_shared<QuadraticModel>(4);
  const auto ds = quadratic_dataset(15, 4, 0.0, 2.0, 227);
  const LocalSolver solver(model, options());
  const std::vector<double> anchor(4, 0.5);
  Rng rng = util::fork(41, 1, 1, 0);
  const auto result = solver.solve(ds, anchor, rng);
  ASSERT_EQ(result.w.size(), 4u);
  for (double v : result.w) EXPECT_TRUE(std::isfinite(v));
  EXPECT_GT(result.anchor_grad_norm, 0.0);
  EXPECT_GT(result.sample_gradient_evals, 0u);
  EXPECT_EQ(result.iterations_run, 25u);
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigurations, SolverProperties,
    ::testing::Combine(
        ::testing::Values(Estimator::kSgd, Estimator::kSvrg,
                          Estimator::kSarah, Estimator::kFullGradient),
        ::testing::Values(Sampling::kWithReplacement,
                          Sampling::kShuffledEpochs),
        ::testing::Values(IterateSelection::kLast,
                          IterateSelection::kUniformRandom),
        ::testing::Values(0.0, 0.5)));

}  // namespace
}  // namespace fedvr::opt
