// Unit tests for the hierarchical (edge-aggregator tree) weighted mean:
// the flat tree must be bit-identical to the default MeanAggregator, deeper
// trees must agree to rounding, and results must not depend on the thread
// pool size or the parallel toggle.
#include "fl/hierarchy.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "fl/aggregation.h"
#include "util/error.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace fedvr::fl {
namespace {

using fedvr::util::Error;

struct Updates {
  std::vector<std::vector<double>> storage;
  std::vector<std::span<const double>> views;
  std::vector<double> weights;
  std::vector<double> anchor;
};

Updates random_updates(std::size_t n, std::size_t dim, std::uint64_t seed) {
  util::Rng rng(seed);
  Updates u;
  u.storage.resize(n);
  u.views.reserve(n);
  u.weights.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    u.storage[i].resize(dim);
    for (double& x : u.storage[i]) x = rng.normal(0.0, 3.0);
    u.views.emplace_back(u.storage[i]);
    u.weights.push_back(rng.uniform(0.1, 5.0));
  }
  u.anchor.assign(dim, 0.25);
  return u;
}

std::vector<double> run(const Aggregator& agg, const Updates& u,
                        std::size_t dim) {
  std::vector<double> out(dim, -77.0);
  agg.aggregate(u.anchor, u.views, u.weights, out);
  return out;
}

TEST(TreeAggregator, FlatTreeIsBitIdenticalToMean) {
  const std::size_t dim = 33;
  const auto mean = make_aggregator(AggregatorKind::kMean);
  // fanout == 0 forces flat at any n; n <= fanout degenerates too.
  for (const TreeAggregatorOptions opts :
       {TreeAggregatorOptions{.fanout = 0},
        TreeAggregatorOptions{.fanout = 32}}) {
    const auto tree = make_tree_aggregator(opts);
    EXPECT_EQ(tree->name(), "tree_mean");
    for (const std::size_t n : {1u, 7u, 31u}) {
      const Updates u = random_updates(n, dim, 1000 + n);
      const auto a = run(*mean, u, dim);
      const auto b = run(*tree, u, dim);
      for (std::size_t j = 0; j < dim; ++j) {
        EXPECT_EQ(a[j], b[j]) << "n=" << n << " fanout=" << opts.fanout
                              << " coord " << j;
      }
    }
  }
}

TEST(TreeAggregator, MultiLevelAgreesWithMeanToRounding) {
  const std::size_t dim = 17;
  const std::size_t n = 100;  // fanout 4 → 25 → 7 → 2 → 1: four levels
  const Updates u = random_updates(n, dim, 42);
  const auto mean = make_aggregator(AggregatorKind::kMean);
  const auto tree = make_tree_aggregator({.fanout = 4});
  const auto a = run(*mean, u, dim);
  const auto b = run(*tree, u, dim);
  for (std::size_t j = 0; j < dim; ++j) {
    // Same weighted sum associated differently: equal to fp rounding, not
    // necessarily to the last bit.
    EXPECT_NEAR(a[j], b[j], 1e-12 * (1.0 + std::abs(a[j])));
  }
}

TEST(TreeAggregator, ResultIndependentOfPoolSizeAndParallelToggle) {
  const std::size_t dim = 29;
  const std::size_t n = 200;
  const Updates u = random_updates(n, dim, 7);
  const auto serial_tree = make_tree_aggregator({.fanout = 8,
                                                 .parallel = false});
  const auto parallel_tree = make_tree_aggregator({.fanout = 8,
                                                   .parallel = true});
  const auto reference = run(*serial_tree, u, dim);
  for (const std::size_t threads : {1u, 2u, 0u}) {
    util::ThreadPool::reset_global(threads);
    const auto got = run(*parallel_tree, u, dim);
    for (std::size_t j = 0; j < dim; ++j) {
      EXPECT_EQ(reference[j], got[j]) << "threads=" << threads << " coord "
                                      << j;
    }
  }
  util::ThreadPool::reset_global(0);
}

TEST(TreeAggregator, SingleSurvivorPassesThrough) {
  const std::size_t dim = 5;
  const Updates u = random_updates(1, dim, 3);
  const auto tree = make_tree_aggregator({.fanout = 16});
  const auto out = run(*tree, u, dim);
  // One survivor: the weighted mean is the update itself (w/w = 1), though
  // via the flat path's explicit normalization.
  for (std::size_t j = 0; j < dim; ++j) {
    EXPECT_DOUBLE_EQ(out[j], u.storage[0][j]);
  }
}

TEST(TreeAggregator, FanoutOneIsRejected) {
  EXPECT_THROW((void)make_tree_aggregator({.fanout = 1}), Error);
  TreeAggregatorOptions opts;
  opts.fanout = 1;
  EXPECT_THROW(opts.validate(), Error);
}

}  // namespace
}  // namespace fedvr::fl
