#include "fl/event_engine.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <optional>
#include <vector>

namespace fedvr::fl {
namespace {

TEST(RoundSchedule, ArrivalsSortByTimeThenSlot) {
  RoundSchedule sched;
  auto& oc = sched.reset(4);
  oc[0] = {.device = 10, .completion_time = 3.0};
  oc[1] = {.device = 11, .completion_time = 1.0};
  oc[2] = {.device = 12, .completion_time = 3.0};  // ties slot 0 on time
  oc[3] = {.device = 13, .completion_time = 2.0};
  sched.build(std::nullopt);
  const auto arrivals = sched.arrivals();
  ASSERT_EQ(arrivals.size(), 4u);
  EXPECT_EQ(arrivals[0].slot, 1u);
  EXPECT_EQ(arrivals[1].slot, 3u);
  // Equal times resolve by ascending slot — pool-size-independent order.
  EXPECT_EQ(arrivals[2].slot, 0u);
  EXPECT_EQ(arrivals[3].slot, 2u);
  EXPECT_DOUBLE_EQ(sched.realized_round_time(), 3.0);
}

TEST(RoundSchedule, CrashedParticipantsNeverArriveOrHoldUpTheRound) {
  RoundSchedule sched;
  auto& oc = sched.reset(3);
  oc[0] = {.device = 0, .completion_time = 1.0};
  oc[1] = {.device = 1, .completion_time = 99.0, .crashed = true};
  oc[2] = {.device = 2, .completion_time = 2.0};
  sched.build(std::nullopt);
  ASSERT_EQ(sched.arrivals().size(), 2u);
  const auto survivors = sched.survivors();
  ASSERT_EQ(survivors.size(), 2u);
  EXPECT_EQ(survivors[0], 0u);
  EXPECT_EQ(survivors[1], 2u);
  // A crash computes nothing and transmits nothing: the slow crashed
  // device must not stretch the realized round time.
  EXPECT_DOUBLE_EQ(sched.realized_round_time(), 2.0);
  EXPECT_FALSE(sched.outcome(1).missed_deadline);
}

TEST(RoundSchedule, DeadlineDerivesMissesAndCapsRoundTime) {
  RoundSchedule sched;
  auto& oc = sched.reset(3);
  oc[0] = {.device = 0, .completion_time = 1.0};
  oc[1] = {.device = 1, .completion_time = 5.0};  // past the cutoff
  oc[2] = {.device = 2, .completion_time = 4.0};  // exactly at the cutoff
  sched.build(4.0);
  EXPECT_FALSE(sched.outcome(0).missed_deadline);
  EXPECT_TRUE(sched.outcome(1).missed_deadline);
  EXPECT_FALSE(sched.outcome(2).missed_deadline);  // == deadline is on time
  const auto survivors = sched.survivors();
  ASSERT_EQ(survivors.size(), 2u);
  EXPECT_EQ(survivors[0], 0u);
  EXPECT_EQ(survivors[1], 2u);
  // The server stops waiting at the deadline, however late slot 1 is.
  EXPECT_DOUBLE_EQ(sched.realized_round_time(), 4.0);
  // The late update still crossed the wire: it stays in the arrival queue.
  EXPECT_EQ(sched.arrivals().size(), 3u);
}

TEST(RoundSchedule, UndeliveredArrivesButDoesNotSurvive) {
  RoundSchedule sched;
  auto& oc = sched.reset(2);
  oc[0] = {.device = 0, .completion_time = 2.0, .undelivered = true};
  oc[1] = {.device = 1, .completion_time = 1.0};
  sched.build(std::nullopt);
  EXPECT_EQ(sched.arrivals().size(), 2u);
  const auto survivors = sched.survivors();
  ASSERT_EQ(survivors.size(), 1u);
  EXPECT_EQ(survivors[0], 1u);
  // Transmission time was still spent waiting on the failed uplink.
  EXPECT_DOUBLE_EQ(sched.realized_round_time(), 2.0);
}

TEST(RoundSchedule, EmptyAndAllCrashedRoundsRealizeZeroTime) {
  RoundSchedule sched;
  sched.reset(0);
  sched.build(10.0);
  EXPECT_TRUE(sched.arrivals().empty());
  EXPECT_TRUE(sched.survivors().empty());
  EXPECT_DOUBLE_EQ(sched.realized_round_time(), 0.0);

  auto& oc = sched.reset(2);
  oc[0] = {.device = 0, .completion_time = 3.0, .crashed = true};
  oc[1] = {.device = 1, .completion_time = 4.0, .crashed = true};
  sched.build(std::nullopt);
  EXPECT_TRUE(sched.arrivals().empty());
  EXPECT_TRUE(sched.survivors().empty());
  EXPECT_DOUBLE_EQ(sched.realized_round_time(), 0.0);
}

TEST(RoundSchedule, ResetClearsPriorRoundState) {
  RoundSchedule sched;
  auto& first = sched.reset(3);
  first[0] = {.device = 0, .completion_time = 7.0};
  first[1] = {.device = 1, .completion_time = 8.0, .crashed = true};
  first[2] = {.device = 2, .completion_time = 9.0};
  sched.build(std::nullopt);
  ASSERT_EQ(sched.survivors().size(), 2u);

  // Shrinking reuse: outcomes come back default-initialized, and nothing
  // from the previous (larger) round leaks into the new one.
  auto& second = sched.reset(1);
  ASSERT_EQ(second.size(), 1u);
  EXPECT_FALSE(second[0].crashed);
  EXPECT_FALSE(second[0].undelivered);
  EXPECT_DOUBLE_EQ(second[0].completion_time, 0.0);
  second[0] = {.device = 5, .completion_time = 1.5};
  sched.build(std::nullopt);
  ASSERT_EQ(sched.arrivals().size(), 1u);
  EXPECT_EQ(sched.arrivals()[0].slot, 0u);
  ASSERT_EQ(sched.survivors().size(), 1u);
  EXPECT_DOUBLE_EQ(sched.realized_round_time(), 1.5);
}

}  // namespace
}  // namespace fedvr::fl
